# Resolve a GoogleTest to link tests against, preferring offline sources.
#
# Resolution order:
#   1. LRM_GTEST_SOURCE_DIR (explicit override) or the distro source package
#      at /usr/src/googletest — built in-tree, also provides gmock.
#   2. An installed GTest CMake package (find_package).
#   3. FetchContent download from GitHub (requires network).
#
# Defines the imported/alias targets GTest::gtest and GTest::gtest_main, and
# sets LRM_HAVE_GMOCK when gmock targets are available.

include(FetchContent)

set(LRM_GTEST_SOURCE_DIR "" CACHE PATH
  "Path to a GoogleTest source tree to build in-tree (empty = auto-detect)")

set(LRM_HAVE_GMOCK OFF)

set(_lrm_gtest_src "${LRM_GTEST_SOURCE_DIR}")
if(NOT _lrm_gtest_src AND EXISTS "/usr/src/googletest/CMakeLists.txt")
  set(_lrm_gtest_src "/usr/src/googletest")
endif()

if(_lrm_gtest_src)
  message(STATUS "GoogleTest: building from source tree at ${_lrm_gtest_src}")
  set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
  set(BUILD_GMOCK ON CACHE BOOL "" FORCE)
  # For Windows: prevent overriding the parent project's runtime settings.
  set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
  FetchContent_Declare(googletest SOURCE_DIR "${_lrm_gtest_src}")
  FetchContent_MakeAvailable(googletest)
  if(NOT TARGET GTest::gtest)
    add_library(GTest::gtest ALIAS gtest)
    add_library(GTest::gtest_main ALIAS gtest_main)
  endif()
  if(TARGET gmock)
    set(LRM_HAVE_GMOCK ON)
  endif()
else()
  find_package(GTest CONFIG QUIET)
  if(GTest_FOUND)
    message(STATUS "GoogleTest: using installed package ${GTest_DIR}")
    if(TARGET GTest::gmock)
      set(LRM_HAVE_GMOCK ON)
    endif()
  else()
    message(STATUS "GoogleTest: downloading via FetchContent")
    set(INSTALL_GTEST OFF CACHE BOOL "" FORCE)
    set(gtest_force_shared_crt ON CACHE BOOL "" FORCE)
    FetchContent_Declare(googletest
      URL https://github.com/google/googletest/archive/refs/tags/v1.14.0.tar.gz
      URL_HASH SHA256=8ad598c73ad796e0d8280b082cebd82a630d73e73cd3c70057938a6501bba5d7)
    FetchContent_MakeAvailable(googletest)
    set(LRM_HAVE_GMOCK ON)
  endif()
endif()
