#include "opt/quadratic_apg.h"

#include <cmath>
#include <utility>

#include "base/string_util.h"
#include "linalg/matrix_view.h"

namespace lrm::opt {

using linalg::Index;
using linalg::Matrix;

namespace {

// Largest eigenvalue of a symmetric PSD matrix by power iteration.
double EstimateLargestEigenvalue(const Matrix& h, int steps) {
  const Index r = h.rows();
  if (r == 0) return 0.0;
  linalg::Vector v(r, 1.0);
  // Deterministic perturbation avoids starting orthogonal to the top
  // eigenvector for structured H.
  for (Index i = 0; i < r; ++i) v[i] += 1e-3 * static_cast<double>(i % 7);
  double lambda = 0.0;
  for (int it = 0; it < steps; ++it) {
    linalg::Vector next = h * v;
    const double norm = linalg::Norm2(next);
    if (norm <= 1e-300) return 0.0;  // H ≈ 0
    next /= norm;
    lambda = linalg::Dot(next, h * next);
    v = std::move(next);
  }
  return std::max(lambda, 0.0);
}

}  // namespace

StatusOr<QuadraticApgResult> QuadraticApg(const Matrix& h, const Matrix& t,
                                          const MatrixProjection& projection,
                                          const Matrix& initial,
                                          const QuadraticApgOptions& options,
                                          QuadraticApgWorkspace* workspace) {
  if (!projection) {
    return Status::InvalidArgument("QuadraticApg: null projection");
  }
  if (h.rows() != h.cols() || h.rows() != t.rows()) {
    return Status::InvalidArgument(
        StrFormat("QuadraticApg: H is %td x %td, T is %td x %td", h.rows(),
                  h.cols(), t.rows(), t.cols()));
  }
  if (initial.rows() != t.rows() || initial.cols() != t.cols()) {
    return Status::InvalidArgument("QuadraticApg: bad initial shape");
  }

  QuadraticApgWorkspace local;
  QuadraticApgWorkspace& ws = workspace != nullptr ? *workspace : local;

  QuadraticApgResult result;
  // Safety margin on λmax covers the power iteration's underestimate.
  const double lipschitz =
      1.02 * EstimateLargestEigenvalue(h, options.power_iterations);
  result.lipschitz = lipschitz;

  ws.x = initial;
  projection(ws.x);
  if (lipschitz <= 0.0) {
    // H ≈ 0: the objective is linear; the minimizer over a bounded set is
    // the projection of an arbitrarily long step along +T.
    ws.x.Axpy(1e6 / std::max(1e-12, linalg::MaxAbs(t)), t);
    projection(ws.x);
    result.solution = std::move(ws.x);
    result.converged = true;
    return result;
  }

  const double inv_lipschitz = 1.0 / lipschitz;
  ws.x_prev = ws.x;
  double delta_prev = 0.0;
  double delta = 1.0;

  for (int it = 0; it < options.max_iterations; ++it) {
    // Momentum point S = X + α(X − X_prev), then one projected gradient
    // step from S with the exact 1/λmax(H) step size. All buffers live in
    // the workspace, so iterations after the first do not allocate.
    const double alpha = (delta_prev - 1.0) / delta;
    ws.s = ws.x;
    if (alpha != 0.0) {
      ws.movement = ws.x;  // borrow as the X − X_prev difference
      ws.movement -= ws.x_prev;
      ws.s.Axpy(alpha, ws.movement);
    }

    // The one expensive product per iteration.
    linalg::MultiplyInto(h, ws.s, &ws.grad);
    ws.grad -= t;
    ws.s.Axpy(-inv_lipschitz, ws.grad);  // S becomes X_next in place
    projection(ws.s);

    ws.movement = ws.s;
    ws.movement -= ws.x;
    const double move_norm = linalg::FrobeniusNorm(ws.movement);
    const double x_norm = linalg::FrobeniusNorm(ws.x);

    // Rotate buffers: X_prev ← X, X ← X_next; the old X_prev storage is
    // recycled as the next iteration's S scratch.
    std::swap(ws.x_prev, ws.x);
    std::swap(ws.x, ws.s);
    delta_prev = delta;
    delta = 0.5 * (1.0 + std::sqrt(1.0 + 4.0 * delta * delta));
    result.iterations = it + 1;

    if (move_norm <= options.tolerance * std::max(1.0, x_norm)) {
      result.converged = true;
      break;
    }
  }

  result.solution = std::move(ws.x);
  return result;
}

}  // namespace lrm::opt
