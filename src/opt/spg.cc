#include "opt/spg.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace lrm::opt {

using linalg::Index;
using linalg::Matrix;

namespace {

double InnerProduct(const Matrix& a, const Matrix& b) {
  double result = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) result += pa[i] * pb[i];
  return result;
}

}  // namespace

StatusOr<SpgResult> SpectralProjectedGradient(
    const MatrixObjective& objective, const MatrixGradient& gradient,
    const MatrixProjection& projection, const linalg::Matrix& initial,
    const SpgOptions& options) {
  if (!objective || !gradient || !projection) {
    return Status::InvalidArgument("SpectralProjectedGradient: null callback");
  }
  if (options.max_iterations <= 0 || options.history <= 0) {
    return Status::InvalidArgument(
        "SpectralProjectedGradient: iteration/history must be > 0");
  }

  Matrix x = initial;
  projection(x);
  double f_x = objective(x);
  Matrix grad = gradient(x);

  std::deque<double> recent{f_x};
  double step = 1.0;

  SpgResult result;
  for (int t = 0; t < options.max_iterations; ++t) {
    // Projected-gradient direction d = P(x − step·∇f) − x.
    Matrix candidate = x;
    candidate.Axpy(-step, grad);
    projection(candidate);
    Matrix d = candidate;
    d -= x;

    const double d_norm = linalg::FrobeniusNorm(d);
    if (d_norm <= options.tolerance * std::max(1.0, linalg::FrobeniusNorm(x))) {
      result.converged = true;
      result.iterations = t;
      break;
    }

    const double gtd = InnerProduct(grad, d);
    const double f_ref = *std::max_element(recent.begin(), recent.end());

    // Nonmonotone Armijo backtracking along x + λ·d.
    double lambda = 1.0;
    Matrix x_new;
    double f_new = 0.0;
    bool accepted = false;
    for (int ls = 0; ls < options.max_line_search; ++ls) {
      x_new = x;
      x_new.Axpy(lambda, d);
      f_new = objective(x_new);
      if (f_new <= f_ref + options.armijo * lambda * gtd) {
        accepted = true;
        break;
      }
      lambda *= 0.5;
    }
    if (!accepted) {
      result.iterations = t;
      break;  // stalled; return current iterate
    }

    Matrix grad_new = gradient(x_new);
    // Barzilai–Borwein step: <s,s>/<s,y> with s = x⁺−x, y = ∇f⁺−∇f.
    Matrix s = x_new;
    s -= x;
    Matrix y = grad_new;
    y -= grad;
    const double sty = InnerProduct(s, y);
    if (sty > 0.0) {
      step = std::clamp(InnerProduct(s, s) / sty, options.min_step,
                        options.max_step);
    } else {
      step = options.max_step;
    }

    x = std::move(x_new);
    grad = std::move(grad_new);
    f_x = f_new;
    recent.push_back(f_x);
    if (static_cast<int>(recent.size()) > options.history) {
      recent.pop_front();
    }
    result.iterations = t + 1;
  }

  result.solution = std::move(x);
  result.final_objective = f_x;
  return result;
}

}  // namespace lrm::opt
