#include "opt/apg.h"

#include <cmath>
#include <utility>

namespace lrm::opt {

using linalg::Index;
using linalg::Matrix;

namespace {

// <A, B> Frobenius inner product.
double InnerProduct(const Matrix& a, const Matrix& b) {
  double result = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) result += pa[i] * pb[i];
  return result;
}

// Per-solve scratch hoisted out of the iteration loop. The gradient matrix
// is still produced by the caller's callback each iteration (the generic
// std::function API returns by value); the specialized QuadraticApg solver
// is the fully allocation-free path.
struct ApgWorkspace {
  Matrix s, diff, x_next, step, movement;
};

}  // namespace

StatusOr<ApgResult> AcceleratedProjectedGradient(
    const MatrixObjective& objective, const MatrixGradient& gradient,
    const MatrixProjection& projection, const linalg::Matrix& initial,
    const ApgOptions& options) {
  if (!objective || !gradient || !projection) {
    return Status::InvalidArgument(
        "AcceleratedProjectedGradient: null callback");
  }
  if (options.max_iterations <= 0) {
    return Status::InvalidArgument(
        "AcceleratedProjectedGradient: max_iterations must be > 0");
  }

  Matrix x_prev = initial;
  projection(x_prev);
  Matrix x = x_prev;

  double omega = options.initial_lipschitz;
  double delta_prev = 0.0;  // δ_{t-2} in the paper's indexing
  double delta = 1.0;       // δ_{t-1}

  ApgResult result;
  ApgWorkspace ws;  // loop temporaries, allocated once
  for (int t = 0; t < options.max_iterations; ++t) {
    // Momentum extrapolation S = X_t + α (X_t − X_{t−1}).
    const double alpha =
        options.use_momentum ? (delta_prev - 1.0) / delta : 0.0;
    ws.s = x;
    if (alpha != 0.0) {
      ws.diff = x;
      ws.diff -= x_prev;
      ws.s.Axpy(alpha, ws.diff);
    }

    const Matrix grad_s = gradient(ws.s);
    const double f_s = objective(ws.s);

    // Backtracking: find ω with f(X⁺) ≤ f(S) + <∇f(S), X⁺−S> + ω/2‖X⁺−S‖².
    bool accepted = false;
    for (int j = 0; j < options.max_backtracks; ++j) {
      ws.x_next = ws.s;
      ws.x_next.Axpy(-1.0 / omega, grad_s);
      projection(ws.x_next);

      ws.step = ws.x_next;
      ws.step -= ws.s;
      const double step_sq = linalg::SquaredFrobeniusNorm(ws.step);
      const double upper =
          f_s + InnerProduct(grad_s, ws.step) + 0.5 * omega * step_sq;
      if (objective(ws.x_next) <= upper + 1e-12 * std::abs(upper)) {
        accepted = true;
        break;
      }
      omega *= options.lipschitz_growth;
    }
    if (!accepted) {
      // Lipschitz estimate blew up; return the best feasible iterate.
      result.solution = std::move(x);
      result.iterations = t;
      result.converged = false;
      result.final_objective = objective(result.solution);
      result.final_lipschitz = omega;
      return result;
    }

    ws.movement = ws.x_next;
    ws.movement -= x;
    const double move_norm = linalg::FrobeniusNorm(ws.movement);
    const double x_norm = linalg::FrobeniusNorm(x);

    // Rotate: X_prev ← X, X ← X_next; the displaced buffer becomes next
    // iteration's x_next scratch.
    std::swap(x_prev, x);
    std::swap(x, ws.x_next);

    const double next_delta =
        0.5 * (1.0 + std::sqrt(1.0 + 4.0 * delta * delta));
    delta_prev = delta;
    delta = next_delta;

    result.iterations = t + 1;
    if (move_norm <= options.tolerance * std::max(1.0, x_norm)) {
      result.converged = true;
      break;
    }
  }

  result.final_objective = objective(x);
  result.final_lipschitz = omega;
  result.solution = std::move(x);
  return result;
}

}  // namespace lrm::opt
