// Nesterov's accelerated projected gradient with backtracking line search —
// the engine behind paper Algorithm 2 (the L-subproblem of the ALM loop).
//
// Solves  min_X f(X)  s.t.  X ∈ C,  given ∇f and the Euclidean projector
// onto C. The backtracking rule doubles a local Lipschitz estimate ω until
// the standard quadratic upper bound holds (paper Algorithm 2, lines 6–13),
// and the momentum sequence is the usual δ_t = (1 + √(1 + 4δ_{t−1}²))/2.

#ifndef LRM_OPT_APG_H_
#define LRM_OPT_APG_H_

#include <functional>

#include "base/status_or.h"
#include "linalg/matrix.h"

namespace lrm::opt {

/// Objective value at X.
using MatrixObjective = std::function<double(const linalg::Matrix&)>;
/// Gradient ∇f(X).
using MatrixGradient = std::function<linalg::Matrix(const linalg::Matrix&)>;
/// In-place Euclidean projection onto the feasible set.
using MatrixProjection = std::function<void(linalg::Matrix&)>;

/// \brief Options for AcceleratedProjectedGradient.
struct ApgOptions {
  /// Hard cap on accepted iterations.
  int max_iterations = 200;
  /// Stop when ‖X_{t+1} − X_t‖_F ≤ tolerance · max(1, ‖X_t‖_F).
  double tolerance = 1e-8;
  /// Initial Lipschitz estimate ω⁽⁰⁾ (paper initializes to 1).
  double initial_lipschitz = 1.0;
  /// Backtracking growth factor (paper doubles: ω = 2ʲ ω⁽ᵗ⁻¹⁾).
  double lipschitz_growth = 2.0;
  /// Cap on backtracking steps per iteration.
  int max_backtracks = 60;
  /// If true, disables momentum, giving plain projected gradient descent —
  /// kept for the optimizer ablation benchmark.
  bool use_momentum = true;
};

/// \brief Result of an APG run.
struct ApgResult {
  linalg::Matrix solution;
  /// Accepted (outer) iterations.
  int iterations = 0;
  /// True if the movement tolerance was met before max_iterations.
  bool converged = false;
  /// Objective at the solution.
  double final_objective = 0.0;
  /// Final Lipschitz estimate (useful as a warm start).
  double final_lipschitz = 1.0;
};

/// \brief Minimizes f over the feasible set from `initial` (assumed
/// feasible; it is projected once on entry to be safe).
///
/// \returns kInvalidArgument for null callbacks; a NotConverged *status is
/// not* returned — hitting max_iterations is reported via
/// ApgResult::converged so callers inside ALM loops can keep the iterate.
StatusOr<ApgResult> AcceleratedProjectedGradient(
    const MatrixObjective& objective, const MatrixGradient& gradient,
    const MatrixProjection& projection, const linalg::Matrix& initial,
    const ApgOptions& options = {});

}  // namespace lrm::opt

#endif  // LRM_OPT_APG_H_
