// Log-sum-exp smoothing of max(v) — Appendix B of the paper.
//
// fμ(v) = max(v) + μ·log Σᵢ exp((vᵢ − max(v))/μ) satisfies
// max(v) ≤ fμ(v) ≤ max(v) + μ·log n and has a Lipschitz-continuous gradient
// with constant 1/μ. The matrix mechanism minimizes
// max(diag(M))·tr(WᵀWM⁻¹); the smoothing makes the first factor
// differentiable.

#ifndef LRM_OPT_SMOOTH_MAX_H_
#define LRM_OPT_SMOOTH_MAX_H_

#include "linalg/vector.h"

namespace lrm::opt {

/// \brief fμ(v); `mu` must be > 0, `v` non-empty.
double SmoothMax(const linalg::Vector& v, double mu);

/// \brief ∇fμ(v): the softmax weights exp((vᵢ − max)/μ) / Σⱼ exp((vⱼ −
/// max)/μ), computed in the overflow-safe form of Appendix B.
linalg::Vector SmoothMaxGradient(const linalg::Vector& v, double mu);

}  // namespace lrm::opt

#endif  // LRM_OPT_SMOOTH_MAX_H_
