#include "opt/smooth_max.h"

#include <cmath>

#include "base/check.h"

namespace lrm::opt {

using linalg::Index;
using linalg::Vector;

double SmoothMax(const Vector& v, double mu) {
  LRM_CHECK_GT(v.size(), 0);
  LRM_CHECK_GT(mu, 0.0);
  double vmax = v[0];
  for (Index i = 1; i < v.size(); ++i) vmax = std::max(vmax, v[i]);
  double sum = 0.0;
  for (Index i = 0; i < v.size(); ++i) {
    sum += std::exp((v[i] - vmax) / mu);
  }
  return vmax + mu * std::log(sum);
}

Vector SmoothMaxGradient(const Vector& v, double mu) {
  LRM_CHECK_GT(v.size(), 0);
  LRM_CHECK_GT(mu, 0.0);
  double vmax = v[0];
  for (Index i = 1; i < v.size(); ++i) vmax = std::max(vmax, v[i]);
  Vector weights(v.size());
  double sum = 0.0;
  for (Index i = 0; i < v.size(); ++i) {
    weights[i] = std::exp((v[i] - vmax) / mu);
    sum += weights[i];
  }
  weights /= sum;
  return weights;
}

}  // namespace lrm::opt
