// Specialized Nesterov solver for the constrained quadratic
//
//     min_X  ½·<X, H·X> − <T, X>    s.t.  X ∈ C,
//
// with H symmetric positive semi-definite — exactly the L-subproblem of the
// LRM decomposition (paper Formula 10: H = β·BᵀB, T = Bᵀ(βW + π)).
//
// Unlike the generic AcceleratedProjectedGradient, this solver
//  * computes the exact Lipschitz constant λmax(H) once by power iteration
//    (H is r×r — tiny next to the r×n iterate), eliminating backtracking,
//  * evaluates one H·X product per iteration total (the generic path costs
//    3–5 products between gradient, objective and line search).
// This is the hot loop of the whole library; the decomposition spends >90%
// of its time here.

#ifndef LRM_OPT_QUADRATIC_APG_H_
#define LRM_OPT_QUADRATIC_APG_H_

#include "base/status_or.h"
#include "linalg/matrix.h"
#include "opt/apg.h"  // MatrixProjection

namespace lrm::opt {

/// \brief Options for QuadraticApg.
struct QuadraticApgOptions {
  int max_iterations = 100;
  /// Stop when ‖X_{t+1} − X_t‖_F ≤ tolerance·max(1, ‖X_t‖_F).
  double tolerance = 1e-8;
  /// Power-iteration steps for λmax(H).
  int power_iterations = 30;
};

/// \brief Scratch buffers for QuadraticApg, hoisted out of the iteration
/// loop. Pass the same instance to successive solves (the ALM inner loop
/// issues thousands) so iterations are allocation-free after the first;
/// contents are overwritten by every call and are meaningless between calls.
struct QuadraticApgWorkspace {
  linalg::Matrix x, x_prev, s, grad, movement;
};

/// \brief Result of a QuadraticApg run.
struct QuadraticApgResult {
  linalg::Matrix solution;
  int iterations = 0;
  bool converged = false;
  /// λmax(H) estimate used as the step size.
  double lipschitz = 0.0;
};

/// \brief Minimizes ½<X,HX> − <T,X> over the set enforced by `projection`,
/// starting from `initial` (projected on entry). H must be symmetric PSD
/// with rows(H) == rows(T); the iterate has T's shape. `workspace` is
/// optional scratch — reuse one instance across calls to avoid per-call
/// allocation (the solution buffer itself is always freshly moved out).
StatusOr<QuadraticApgResult> QuadraticApg(
    const linalg::Matrix& h, const linalg::Matrix& t,
    const MatrixProjection& projection, const linalg::Matrix& initial,
    const QuadraticApgOptions& options = {},
    QuadraticApgWorkspace* workspace = nullptr);

}  // namespace lrm::opt

#endif  // LRM_OPT_QUADRATIC_APG_H_
