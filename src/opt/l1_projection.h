// Euclidean projection onto the L1 ball (Duchi, Shalev-Shwartz, Singer,
// Chandra, ICML 2008) — the projection step of paper Algorithm 2 / Formula
// (11). Each column of L is projected onto {v : ‖v‖₁ ≤ radius}.

#ifndef LRM_OPT_L1_PROJECTION_H_
#define LRM_OPT_L1_PROJECTION_H_

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace lrm::opt {

/// \brief Projects `v` in place onto {x : ‖x‖₁ ≤ radius} in O(d log d).
///
/// If v is already inside the ball it is returned unchanged (the projection
/// is the identity there). radius must be ≥ 0; radius = 0 zeroes the vector.
void ProjectOntoL1Ball(linalg::Vector& v, double radius);

/// \brief Scratch-buffer variant for hot loops: projects the `d` doubles at
/// `v` using `scratch` (capacity ≥ d) to avoid per-call allocation.
void ProjectOntoL1Ball(double* v, linalg::Index d, double radius,
                       double* scratch);

/// \brief Projects every column of `m` onto the L1 ball of the given radius
/// — Formula (11) decouples into independent per-column problems.
void ProjectColumnsOntoL1Ball(linalg::Matrix& m, double radius);

}  // namespace lrm::opt

#endif  // LRM_OPT_L1_PROJECTION_H_
