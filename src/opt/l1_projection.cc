#include "opt/l1_projection.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/check.h"

namespace lrm::opt {

using linalg::Index;

void ProjectOntoL1Ball(double* v, Index d, double radius, double* scratch) {
  LRM_CHECK_GE(radius, 0.0);
  if (d == 0) return;
  if (radius == 0.0) {
    std::fill(v, v + d, 0.0);
    return;
  }
  double l1 = 0.0;
  for (Index i = 0; i < d; ++i) l1 += std::abs(v[i]);
  if (l1 <= radius) return;  // already feasible

  // Duchi et al.: find the soft threshold theta from the sorted magnitudes.
  for (Index i = 0; i < d; ++i) scratch[i] = std::abs(v[i]);
  std::sort(scratch, scratch + d, std::greater<double>());
  double cumulative = 0.0;
  double theta = 0.0;
  Index rho = 0;
  for (Index j = 0; j < d; ++j) {
    cumulative += scratch[j];
    const double candidate =
        (cumulative - radius) / static_cast<double>(j + 1);
    if (scratch[j] - candidate > 0.0) {
      rho = j + 1;
      theta = candidate;
    } else {
      break;
    }
  }
  LRM_DCHECK(rho > 0);
  (void)rho;  // rho participates only in the debug check
  for (Index i = 0; i < d; ++i) {
    const double magnitude = std::abs(v[i]) - theta;
    v[i] = magnitude > 0.0 ? std::copysign(magnitude, v[i]) : 0.0;
  }
}

void ProjectOntoL1Ball(linalg::Vector& v, double radius) {
  std::vector<double> scratch(static_cast<std::size_t>(v.size()));
  ProjectOntoL1Ball(v.data(), v.size(), radius, scratch.data());
}

void ProjectColumnsOntoL1Ball(linalg::Matrix& m, double radius) {
  const Index rows = m.rows();
  const Index cols = m.cols();
  std::vector<double> column(static_cast<std::size_t>(rows));
  std::vector<double> scratch(static_cast<std::size_t>(rows));
  for (Index j = 0; j < cols; ++j) {
    for (Index i = 0; i < rows; ++i) column[static_cast<std::size_t>(i)] = m(i, j);
    ProjectOntoL1Ball(column.data(), rows, radius, scratch.data());
    for (Index i = 0; i < rows; ++i) m(i, j) = column[static_cast<std::size_t>(i)];
  }
}

}  // namespace lrm::opt
