// Nonmonotone spectral projected gradient (Birgin, Martínez, Raydan 2000) —
// the solver Appendix B prescribes for the matrix mechanism's smoothed
// semidefinite program.
//
// SPG takes Barzilai–Borwein (spectral) step lengths and accepts steps under
// a nonmonotone Armijo rule that compares against the maximum objective over
// the last `history` iterates, which lets it traverse the ill-conditioned
// landscape of M ↦ max(diag M)·tr(WᵀWM⁻¹) far faster than monotone descent.

#ifndef LRM_OPT_SPG_H_
#define LRM_OPT_SPG_H_

#include <functional>

#include "base/status_or.h"
#include "linalg/matrix.h"
#include "opt/apg.h"  // MatrixObjective / MatrixGradient / MatrixProjection

namespace lrm::opt {

/// \brief Options for SpectralProjectedGradient.
struct SpgOptions {
  int max_iterations = 150;
  /// Stop when the projected-gradient step is this small (relative).
  double tolerance = 1e-7;
  /// Window for the nonmonotone Armijo reference value.
  int history = 10;
  /// Armijo sufficient-decrease constant.
  double armijo = 1e-4;
  /// Spectral step clamps.
  double min_step = 1e-10;
  double max_step = 1e10;
  /// Cap on line-search halvings per iteration.
  int max_line_search = 40;
};

/// \brief Result of an SPG run.
struct SpgResult {
  linalg::Matrix solution;
  int iterations = 0;
  bool converged = false;
  double final_objective = 0.0;
};

/// \brief Minimizes f over the feasible set from `initial` (projected on
/// entry). Same callback contract as AcceleratedProjectedGradient.
StatusOr<SpgResult> SpectralProjectedGradient(
    const MatrixObjective& objective, const MatrixGradient& gradient,
    const MatrixProjection& projection, const linalg::Matrix& initial,
    const SpgOptions& options = {});

}  // namespace lrm::opt

#endif  // LRM_OPT_SPG_H_
