// Dataset substrate: count vectors standing in for the paper's three real
// datasets, plus the domain-size reduction the evaluation uses.
//
// The paper evaluates on Search Logs (65,536 counts), Net Trace (32,768) and
// Social Network (11,342). Those files are not redistributable, so this
// module synthesizes count vectors with the same statistical character (see
// DESIGN.md §4 for why this preserves every experimental shape: mechanism
// noise is data-independent; the data vector only enters through the exact
// answers and through the structural-error term of relaxed LRM).

#ifndef LRM_DATA_DATASET_H_
#define LRM_DATA_DATASET_H_

#include <cstdint>
#include <string>

#include "base/status_or.h"
#include "linalg/vector.h"

namespace lrm::data {

/// \brief A database as the paper defines it: a vector of n unit counts
/// (Section 3), plus a display name for reports.
struct Dataset {
  std::string name;
  linalg::Vector counts;

  /// Number of unit counts n.
  linalg::Index size() const { return counts.size(); }

  /// Σᵢ xᵢ² — the data-dependent term in the Theorem 3 error bound.
  double SquaredSum() const { return linalg::SquaredNorm(counts); }
};

/// \brief Identifies one of the three paper datasets.
enum class DatasetKind {
  kSearchLogs,
  kNetTrace,
  kSocialNetwork,
};

/// \brief Returns the display name used in the paper ("Search Logs", …).
std::string DatasetKindName(DatasetKind kind);

/// \brief Native entry count of each dataset in the paper
/// (65,536 / 32,768 / 11,342).
linalg::Index NativeDatasetSize(DatasetKind kind);

/// \brief Synthesizes the Search Logs surrogate: a keyword-frequency time
/// series 2004–2010 with weekly/annual seasonality and heavy-tailed bursts.
Dataset GenerateSearchLogs(linalg::Index n, std::uint64_t seed);

/// \brief Synthesizes the Net Trace surrogate: per-IP TCP packet counts,
/// Zipf-distributed with a large fraction of zero entries.
Dataset GenerateNetTrace(linalg::Index n, std::uint64_t seed);

/// \brief Synthesizes the Social Network surrogate: number of users per
/// social-graph degree, following a power law of exponent ≈ 2.5.
Dataset GenerateSocialNetwork(linalg::Index n, std::uint64_t seed);

/// \brief Generates the surrogate for `kind` at its native size.
Dataset GenerateDataset(DatasetKind kind, std::uint64_t seed);

/// \brief Generates the surrogate for `kind` with exactly n entries.
Dataset GenerateDataset(DatasetKind kind, linalg::Index n,
                        std::uint64_t seed);

/// \brief Reduces the domain to `target_size` buckets by summing consecutive
/// counts, exactly as the paper's evaluation varies the domain size n
/// ("we transform the original counts into a vector of fixed size n, by
/// merging consecutive counts in order").
///
/// \returns kInvalidArgument if target_size is not in [1, dataset size].
StatusOr<Dataset> MergeToDomainSize(const Dataset& dataset,
                                    linalg::Index target_size);

}  // namespace lrm::data

#endif  // LRM_DATA_DATASET_H_
