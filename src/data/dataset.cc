#include "data/dataset.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "base/string_util.h"
#include "rng/distributions.h"
#include "rng/engine.h"

namespace lrm::data {

using linalg::Index;
using linalg::Vector;

std::string DatasetKindName(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kSearchLogs:
      return "Search Logs";
    case DatasetKind::kNetTrace:
      return "Net Trace";
    case DatasetKind::kSocialNetwork:
      return "Social Network";
  }
  return "Unknown";
}

Index NativeDatasetSize(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kSearchLogs:
      return 65536;  // 2^16
    case DatasetKind::kNetTrace:
      return 32768;  // 2^15
    case DatasetKind::kSocialNetwork:
      return 11342;
  }
  return 0;
}

Dataset GenerateSearchLogs(Index n, std::uint64_t seed) {
  LRM_CHECK_GT(n, 0);
  rng::Engine engine(seed ^ 0x5EA2C410C5ULL);
  Vector counts(n);

  // Daily keyword-frequency series: smooth baseline + weekly and annual
  // periodicity + lognormal bursts (news events). Magnitudes sized so that
  // total counts resemble a six-year query log (mean count ~ a few hundred).
  const double base = 220.0;
  const double week = 7.0;
  const double year = 365.25;
  // A handful of burst events with heavy-tailed heights.
  const int num_bursts = static_cast<int>(std::max<Index>(4, n / 512));
  std::vector<double> burst_center(static_cast<std::size_t>(num_bursts));
  std::vector<double> burst_height(static_cast<std::size_t>(num_bursts));
  std::vector<double> burst_width(static_cast<std::size_t>(num_bursts));
  for (int b = 0; b < num_bursts; ++b) {
    burst_center[static_cast<std::size_t>(b)] =
        rng::SampleUniform(engine, 0.0, static_cast<double>(n));
    burst_height[static_cast<std::size_t>(b)] =
        std::exp(rng::SampleGaussian(engine) * 1.2 + 5.0);  // lognormal
    burst_width[static_cast<std::size_t>(b)] =
        rng::SampleUniform(engine, 2.0, 24.0);
  }

  for (Index i = 0; i < n; ++i) {
    const double t = static_cast<double>(i);
    double value = base;
    value += 60.0 * std::sin(2.0 * M_PI * t / week);
    value += 90.0 * std::sin(2.0 * M_PI * t / year + 0.7);
    // Slow multi-year drift in popularity.
    value += 40.0 * std::sin(2.0 * M_PI * t / (3.1 * year) + 2.1);
    for (int b = 0; b < num_bursts; ++b) {
      const double d =
          (t - burst_center[static_cast<std::size_t>(b)]) /
          burst_width[static_cast<std::size_t>(b)];
      value += burst_height[static_cast<std::size_t>(b)] *
               std::exp(-0.5 * d * d);
    }
    value += 25.0 * rng::SampleGaussian(engine);  // sampling noise
    counts[i] = std::max(0.0, std::round(value));
  }
  return Dataset{StrFormat("Search Logs (n=%td)", n), std::move(counts)};
}

Dataset GenerateNetTrace(Index n, std::uint64_t seed) {
  LRM_CHECK_GT(n, 0);
  rng::Engine engine(seed ^ 0x4E7721ACEULL);
  Vector counts(n);

  // Per-IP TCP packet counts in a campus trace: a Zipf-heavy tail over the
  // active hosts and a large population of silent addresses.
  const double active_fraction = 0.35;
  const rng::ZipfSampler zipf(std::max<std::size_t>(
                                  16, static_cast<std::size_t>(n) / 4),
                              1.2);
  const Index total_packets = 80 * n;  // average load per visible address
  Index remaining = total_packets;
  for (Index i = 0; i < n && remaining > 0; ++i) {
    if (!rng::SampleBernoulli(engine, active_fraction)) continue;
    // Rank-based packet volume: low Zipf ranks are chatty hosts.
    const auto rank = static_cast<double>(zipf.Sample(engine));
    const double volume = 4000.0 / std::pow(rank, 0.9) *
                          std::exp(0.25 * rng::SampleGaussian(engine));
    const Index packets =
        std::min<Index>(remaining, static_cast<Index>(volume));
    counts[i] = static_cast<double>(packets);
    remaining -= packets;
  }
  // Addresses are not ordered by volume in a real trace; shuffle.
  for (Index i = n - 1; i > 0; --i) {
    const Index j = rng::SampleUniformInt(engine, 0, i);
    std::swap(counts[i], counts[j]);
  }
  return Dataset{StrFormat("Net Trace (n=%td)", n), std::move(counts)};
}

Dataset GenerateSocialNetwork(Index n, std::uint64_t seed) {
  LRM_CHECK_GT(n, 0);
  rng::Engine engine(seed ^ 0x50C1A15ULL);
  Vector counts(n);

  // Entry i = number of users whose degree is i+1. Power law with exponent
  // 2.5 (typical for social graphs), multiplicative noise, and an
  // exponential cutoff at very high degrees.
  const double exponent = 2.5;
  const double users = 2.0e6;
  double normalizer = 0.0;
  for (Index d = 1; d <= n; ++d) {
    normalizer += std::pow(static_cast<double>(d), -exponent);
  }
  for (Index i = 0; i < n; ++i) {
    const double degree = static_cast<double>(i + 1);
    double expected = users * std::pow(degree, -exponent) / normalizer;
    expected *= std::exp(-degree / (0.9 * static_cast<double>(n)));
    expected *= std::exp(0.15 * rng::SampleGaussian(engine));
    counts[i] = std::round(expected);
  }
  return Dataset{StrFormat("Social Network (n=%td)", n), std::move(counts)};
}

Dataset GenerateDataset(DatasetKind kind, std::uint64_t seed) {
  return GenerateDataset(kind, NativeDatasetSize(kind), seed);
}

Dataset GenerateDataset(DatasetKind kind, Index n, std::uint64_t seed) {
  switch (kind) {
    case DatasetKind::kSearchLogs:
      return GenerateSearchLogs(n, seed);
    case DatasetKind::kNetTrace:
      return GenerateNetTrace(n, seed);
    case DatasetKind::kSocialNetwork:
      return GenerateSocialNetwork(n, seed);
  }
  LRM_CHECK(false);
  return {};
}

StatusOr<Dataset> MergeToDomainSize(const Dataset& dataset,
                                    Index target_size) {
  const Index n = dataset.size();
  if (target_size < 1 || target_size > n) {
    return Status::InvalidArgument(StrFormat(
        "MergeToDomainSize: target %td outside [1, %td]", target_size, n));
  }
  Vector merged(target_size);
  // Even partition of the n source counts into target_size consecutive
  // buckets (bucket sizes differ by at most one).
  for (Index b = 0; b < target_size; ++b) {
    const Index begin = b * n / target_size;
    const Index end = (b + 1) * n / target_size;
    double sum = 0.0;
    for (Index i = begin; i < end; ++i) sum += dataset.counts[i];
    merged[b] = sum;
  }
  return Dataset{
      StrFormat("%s merged to n=%td", dataset.name.c_str(), target_size),
      std::move(merged)};
}

}  // namespace lrm::data
