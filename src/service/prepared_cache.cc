#include "service/prepared_cache.h"

#include <chrono>
#include <utility>

#include "obs/stage_timer.h"

namespace lrm::service {

PreparedMechanismCache::PreparedMechanismCache(PreparedCacheOptions options)
    : options_(std::move(options)) {
  // Warm starts are driven explicitly via PrepareWithHint below; a session
  // mechanism retaining factors on its own would make cache entries depend
  // on preparation order.
  options_.mechanism.warm_start = false;
  registry_ = options_.registry != nullptr ? options_.registry
                                           : &owned_registry_;
  hits_ = registry_->counter("cache.hits");
  misses_ = registry_->counter("cache.misses");
  warm_misses_ = registry_->counter("cache.warm_misses");
  evictions_ = registry_->counter("cache.evictions");
  prepare_seconds_ = registry_->histogram("cache.prepare_seconds");
  solver_metrics_.iteration_seconds =
      registry_->histogram("alm.iteration_seconds");
  solver_metrics_.iterations = registry_->counter("alm.iterations");
}

StatusOr<PreparedLease> PreparedMechanismCache::GetOrPrepare(
    std::shared_ptr<const workload::Workload> workload, CancelToken token) {
  if (workload == nullptr) {
    return Status::InvalidArgument(
        "PreparedMechanismCache::GetOrPrepare: null workload");
  }
  const WorkloadFingerprint fp = FingerprintWorkload(*workload);

  std::shared_ptr<InFlight> flight;
  bool owner = false;
  std::shared_ptr<const core::LowRankMechanism> donor;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto hit = entries_.find(fp);
    if (hit != entries_.end()) {
      hits_->Increment();
      lru_.splice(lru_.begin(), lru_, hit->second.lru_position);
      return PreparedLease{hit->second.mechanism, /*cache_hit=*/true,
                           /*warm_started=*/false};
    }
    misses_->Increment();
    const auto pending = in_flight_.find(fp);
    if (pending != in_flight_.end()) {
      flight = pending->second;
    } else {
      flight = std::make_shared<InFlight>();
      in_flight_.emplace(fp, flight);
      owner = true;
      if (options_.warm_start_misses) {
        // Nearest cached decomposition = the most-recently-used entry whose
        // shape conforms (hint factors must be m×r / r×n for this W).
        for (const WorkloadFingerprint& candidate : lru_) {
          if (candidate.rows == fp.rows && candidate.cols == fp.cols) {
            donor = entries_.at(candidate).mechanism;
            break;
          }
        }
      }
    }
  }

  if (!owner) {
    // Another thread is preparing this exact workload; share its result.
    // Poll this caller's own token while waiting: the owner may be working
    // toward a later deadline, and a waiter must not overstay its own.
    std::unique_lock<std::mutex> lock(flight->mu);
    if (token.can_be_cancelled()) {
      while (!flight->finished) {
        LRM_RETURN_IF_ERROR(
            token.Check("PreparedMechanismCache::GetOrPrepare (wait)"));
        flight->done.wait_for(lock, std::chrono::milliseconds(10),
                              [&flight] { return flight->finished; });
      }
    } else {
      flight->done.wait(lock, [&flight] { return flight->finished; });
    }
    StatusOr<PreparedLease> shared = flight->result;
    if (shared.ok()) {
      // This caller paid a wait, not a strategy search.
      shared.value().cache_hit = true;
      shared.value().warm_started = false;
    }
    return shared;
  }

  // Expensive part, outside every lock. Gate it first: an already-expired
  // deadline (or an armed fault plan) must not start a strategy search.
  Status gate = Status::OK();
  if (options_.fault_injector != nullptr) {
    gate = options_.fault_injector->Check(kFaultSitePrepare);
  }
  if (gate.ok()) {
    gate = token.Check("PreparedMechanismCache::GetOrPrepare");
  }
  if (!gate.ok()) {
    StatusOr<PreparedLease> failure(gate);
    {
      std::unique_lock<std::mutex> lock(mu_);
      in_flight_.erase(fp);
    }
    {
      std::lock_guard<std::mutex> lock(flight->mu);
      flight->result = failure;
      flight->finished = true;
    }
    flight->done.notify_all();
    return failure;
  }

  auto mechanism =
      std::make_shared<core::LowRankMechanism>(options_.mechanism);
  mechanism->set_cancel_token(token);
  mechanism->solver().set_stage_metrics(solver_metrics_);
  obs::ScopedStageTimer prepare_span(prepare_seconds_);
  Status prepare_status = Status::OK();
  bool warm = false;
  if (donor != nullptr) {
    prepare_status =
        mechanism->PrepareWithHint(workload, donor->decomposition());
    warm = prepare_status.ok();
    // A failed warm start (e.g. hint rank incompatible with an explicit
    // options.rank) falls back to a cold prepare rather than failing the
    // request — unless the failure IS the cancellation, which a retry
    // would only hit again.
    if (!prepare_status.ok() &&
        prepare_status.code() != StatusCode::kDeadlineExceeded &&
        prepare_status.code() != StatusCode::kCancelled) {
      prepare_status = mechanism->Prepare(workload);
    }
  } else {
    prepare_status = mechanism->Prepare(workload);
  }

  StatusOr<PreparedLease> result =
      prepare_status.ok()
          ? StatusOr<PreparedLease>(PreparedLease{
                std::shared_ptr<const core::LowRankMechanism>(
                    std::move(mechanism)),
                /*cache_hit=*/false, warm})
          : StatusOr<PreparedLease>(prepare_status);

  {
    std::unique_lock<std::mutex> lock(mu_);
    in_flight_.erase(fp);
    if (result.ok()) {
      if (warm) warm_misses_->Increment();
      if (options_.capacity > 0) {
        lru_.push_front(fp);
        entries_.emplace(fp, Entry{result.value().mechanism, lru_.begin()});
        EvictIfNeeded();
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(flight->mu);
    flight->result = result;
    flight->finished = true;
  }
  flight->done.notify_all();
  return result;
}

void PreparedMechanismCache::EvictIfNeeded() {
  while (entries_.size() > options_.capacity && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    evictions_->Increment();
  }
}

PreparedCacheStats PreparedMechanismCache::stats() const {
  // A snapshot view over the registry counters — no lock: each counter is
  // atomic, and the struct's fields were only ever individually monotonic.
  PreparedCacheStats stats;
  stats.hits = hits_->value();
  stats.misses = misses_->value();
  stats.warm_misses = warm_misses_->value();
  stats.evictions = evictions_->value();
  return stats;
}

std::size_t PreparedMechanismCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace lrm::service
