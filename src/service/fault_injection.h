// Deterministic fault injection for the answering service's failure paths.
//
// Production code asks "should this step fail?" at a handful of named
// sites; a test arms a site with exactly which invocation fails, how many
// times, and with what status (or exception). There is NO randomness —
// triggers are pure invocation counters — so a test that injects "the 3rd
// prepare fails" reproduces bit-for-bit, and a run that re-executes the
// same submission order hits the same faults. In production the injector
// pointer is simply null and every Check() inlines to nothing.
//
// This is the seam tests/service/fault_injection_test.cc uses to prove the
// service's two global invariants under arbitrary failure placement:
//   * ledger conservation — ε spent == Σ ε of requests that actually
//     released an answer (degraded or not), and
//   * typed resolution — every future resolves with a Status; no broken
//     promises, no hangs.

#ifndef LRM_SERVICE_FAULT_INJECTION_H_
#define LRM_SERVICE_FAULT_INJECTION_H_

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "base/status.h"

namespace lrm::service {

// Instrumented sites. Constants rather than ad-hoc literals so tests and
// production code cannot drift apart silently.
//
// The strategy search inside PreparedMechanismCache::GetOrPrepare (the
// owner of a coalesced prepare checks it immediately before solving).
inline constexpr char kFaultSitePrepare[] = "cache.prepare";
// Entry of AnswerService::Serve — the body of a worker-pool task. Armed
// with Throw(), this simulates a task that dies by exception.
inline constexpr char kFaultSiteServe[] = "service.serve";
// The deadline gates inside Serve: arming these with a kDeadlineExceeded
// status forces "the deadline passed exactly here" without real clocks.
inline constexpr char kFaultSiteDeadlineBeforePrepare[] =
    "service.deadline.before_prepare";
inline constexpr char kFaultSiteDeadlineBeforeAnswer[] =
    "service.deadline.before_answer";
// The identity-strategy fallback release (AnswerService::DegradedRelease):
// failing it drives the refund-everything terminal path.
inline constexpr char kFaultSiteDegraded[] = "service.degraded";

/// \brief Site-keyed, invocation-counted fault plan. Thread-safe; shared
/// by every component of one AnswerService via
/// AnswerServiceOptions::fault_injector.
class FaultInjector {
 public:
  /// Arms `site`: after `skip` more un-faulted invocations, the next
  /// `times` invocations (negative = every one from then on) return
  /// `status` from Check(). Re-arming a site replaces its plan; counters
  /// of past invocations are kept.
  void FailAt(const std::string& site, Status status, std::int64_t skip = 0,
              std::int64_t times = 1);

  /// Like FailAt, but the triggered Check() THROWS std::runtime_error
  /// (`message`) instead of returning — exercising the exception-safety of
  /// worker-pool tasks, which must still resolve their promises.
  void ThrowAt(const std::string& site, const std::string& message,
               std::int64_t skip = 0, std::int64_t times = 1);

  /// Removes the plan (not the counters) for `site`.
  void Disarm(const std::string& site);

  /// Removes every plan and every counter.
  void Reset();

  /// Called by production code at each instrumented site. OK (and counted)
  /// when the site is unarmed or the plan says not yet.
  Status Check(const std::string& site);

  /// Total invocations of `site` so far (armed or not).
  std::int64_t hits(const std::string& site) const;
  /// How many invocations of `site` were actually faulted.
  std::int64_t fired(const std::string& site) const;

 private:
  struct Plan {
    bool throws = false;
    Status status;
    std::string message;
    std::int64_t skip = 0;       // un-faulted invocations left before firing
    std::int64_t remaining = 1;  // faulted invocations left; negative = ∞
  };
  struct Site {
    std::int64_t hits = 0;
    std::int64_t fired = 0;
    std::optional<Plan> plan;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_FAULT_INJECTION_H_
