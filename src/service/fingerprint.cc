#include "service/fingerprint.h"

#include <cstring>

#include "base/string_util.h"

namespace lrm::service {
namespace {

// FNV-1a over the IEEE-754 bit patterns. Hashing bits rather than values
// means -0.0 and +0.0 (and different NaN payloads) fingerprint differently,
// which is fine: Mechanism::Prepare rejects non-finite workloads, and a
// -0.0/+0.0 split merely costs a duplicate cache entry, never a wrong hit.
std::uint64_t Fnv1a(const double* values, std::size_t count,
                    std::uint64_t basis) {
  constexpr std::uint64_t kPrime = 0x100000001B3ULL;
  std::uint64_t hash = basis;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t bits;
    std::memcpy(&bits, &values[i], sizeof(bits));
    for (int byte = 0; byte < 8; ++byte) {
      hash ^= (bits >> (8 * byte)) & 0xFFu;
      hash *= kPrime;
    }
  }
  return hash;
}

}  // namespace

std::string WorkloadFingerprint::ToString() const {
  return StrFormat("%tdx%td:%016llx:%016llx", rows, cols,
                   static_cast<unsigned long long>(digest_lo),
                   static_cast<unsigned long long>(digest_hi));
}

std::size_t WorkloadFingerprintHash::operator()(
    const WorkloadFingerprint& fp) const {
  // The digests are already well mixed; fold in the shape so same-content
  // different-shape keys (impossible today, cheap insurance anyway) split.
  std::uint64_t h = fp.digest_lo ^ (fp.digest_hi * 0x9E3779B97F4A7C15ULL);
  h ^= static_cast<std::uint64_t>(fp.rows) * 0xA24BAED4963EE407ULL;
  h ^= static_cast<std::uint64_t>(fp.cols) * 0x9FB21C651E98DF25ULL;
  return static_cast<std::size_t>(h);
}

WorkloadFingerprint FingerprintMatrix(const linalg::Matrix& matrix) {
  WorkloadFingerprint fp;
  fp.rows = matrix.rows();
  fp.cols = matrix.cols();
  const std::size_t count = static_cast<std::size_t>(matrix.size());
  // Two independent FNV streams via different offset bases.
  fp.digest_lo = Fnv1a(matrix.data(), count, 0xCBF29CE484222325ULL);
  fp.digest_hi = Fnv1a(matrix.data(), count, 0x84222325CBF29CE4ULL);
  return fp;
}

WorkloadFingerprint FingerprintWorkload(const workload::Workload& workload) {
  return FingerprintMatrix(workload.matrix());
}

}  // namespace lrm::service
