// The batch-query answering service: the long-running front-end in front of
// LowRankMechanism.
//
// Layering (bottom-up):
//
//   ThreadPool               workers executing answer tasks
//   BudgetManager            per-tenant ε ledger, typed refusals
//   PreparedMechanismCache   fingerprint-keyed prepared strategies
//   QueryBatcher             single queries → workload batches
//   AnswerService            admission, RNG stream assignment, dispatch
//
// The service owns the sensitive unit-count vector; tenants own only their
// queries and their ε budgets. Every request travels: validate → charge
// budget (typed RESOURCE_EXHAUSTED refusal when the ledger cannot cover ε)
// → prepare-or-hit cache → answer with the request's private RNG stream.
//
// Determinism: each request is assigned a monotonically increasing id at
// admission (Submit/Answer call order), and its noise stream is derived
// from (service seed, id) alone — so for a fixed seed and submission order
// the noise added to each release is bitwise identical no matter how the
// worker threads interleave. The full released vector is additionally
// deterministic whenever the request's strategy is pinned (a cache hit, or
// a cold prepare); a warm-started miss reuses whatever same-shaped factors
// the cache happens to hold, which under concurrent submission of distinct
// workloads can depend on completion order. See src/service/README.md for
// the privacy contract.

#ifndef LRM_SERVICE_ANSWER_SERVICE_H_
#define LRM_SERVICE_ANSWER_SERVICE_H_

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/status_or.h"
#include "linalg/vector.h"
#include "rng/engine.h"
#include "service/batcher.h"
#include "service/budget_manager.h"
#include "service/prepared_cache.h"
#include "service/thread_pool.h"
#include "workload/workload.h"

namespace lrm::service {

/// \brief Options for AnswerService.
struct AnswerServiceOptions {
  /// Worker threads answering requests.
  int num_threads = 4;
  /// Master seed all per-request noise streams derive from.
  std::uint64_t seed = 20120827;
  /// Prepared-mechanism cache settings (mechanism options included).
  PreparedCacheOptions cache;
  /// Admission batching: single queries are coalesced per (tenant, ε)
  /// until a group holds this many rows (QueryBatcher).
  linalg::Index max_batch_queries = 64;
};

/// \brief One batch request: answer every query of `workload` at privacy
/// cost ε against the service's data, charged to `tenant`.
struct BatchAnswerRequest {
  std::string tenant;
  double epsilon = 0.0;
  std::shared_ptr<const workload::Workload> workload;
};

/// \brief The released answers plus per-request serving metadata.
struct BatchAnswerResponse {
  /// Admission-order id; also names the noise stream used.
  std::uint64_t request_id = 0;
  /// ε-DP noisy answers, one per workload row.
  linalg::Vector answers;
  /// Strategy came from the cache (or a coalesced concurrent prepare).
  bool cache_hit = false;
  /// A cache miss that warm-started from a cached neighbor's factors.
  bool warm_started = false;
  /// Wall-clock the strategy search cost this request (≈0 on a hit).
  double prepare_seconds = 0.0;
  /// Wall-clock of the noisy release itself.
  double answer_seconds = 0.0;
  /// Tenant budget left after this charge.
  double remaining_budget = 0.0;
};

/// \brief Service counters (monotonic).
struct AnswerServiceStats {
  std::int64_t requests_admitted = 0;
  std::int64_t requests_refused = 0;  // budget refusals only
  std::int64_t batches_dispatched = 0;  // via the single-query path
  PreparedCacheStats cache;
};

/// \brief Single-process batch-query answering service.
///
/// Thread-safe. Submit() performs admission (validation + budget charge +
/// request-id assignment) synchronously on the caller's thread — refusals
/// are therefore deterministic in submission order — and runs the
/// prepare/answer work on the worker pool.
class AnswerService {
 public:
  /// `data` is the sensitive unit-count vector the service answers from.
  AnswerService(linalg::Vector data, AnswerServiceOptions options = {});

  /// Flushes pending query groups and drains the worker pool.
  ~AnswerService();

  AnswerService(const AnswerService&) = delete;
  AnswerService& operator=(const AnswerService&) = delete;

  /// Grants `tenant` a lifetime ε budget (BudgetManager semantics).
  Status RegisterTenant(const std::string& tenant, double epsilon_budget);

  /// Synchronous request path: admission + prepare/answer on the calling
  /// thread. Budget exhaustion returns StatusCode::kResourceExhausted and
  /// charges nothing.
  StatusOr<BatchAnswerResponse> Answer(const BatchAnswerRequest& request);

  /// Asynchronous request path: admission happens before this returns
  /// (including the budget charge — an exhausted tenant learns immediately
  /// via a ready future), the heavy work runs on the worker pool.
  std::future<StatusOr<BatchAnswerResponse>> Submit(
      BatchAnswerRequest request);

  /// Single-query admission path: the query joins its (tenant, ε) batch
  /// group; once the group holds max_batch_queries rows (or FlushQueries
  /// runs) the whole group is charged ε ONCE, prepared, and answered as one
  /// workload, and each future resolves to its query's noisy answer.
  std::future<StatusOr<double>> SubmitQuery(const std::string& tenant,
                                            double epsilon,
                                            linalg::Vector query);

  /// Cuts every pending query group and dispatches it, full or not.
  void FlushQueries();

  /// Blocks until all dispatched work has finished.
  void Drain();

  AnswerServiceStats stats() const;

  /// Remaining ε for a tenant (ledger read-through).
  StatusOr<double> RemainingBudget(const std::string& tenant) const {
    return budget_.Remaining(tenant);
  }

  linalg::Index domain_size() const { return data_.size(); }

 private:
  // Admission: validates the request shape, charges the budget, assigns
  // the request id. Returns the id.
  StatusOr<std::uint64_t> Admit(const BatchAnswerRequest& request);

  // The post-admission work: cache lookup/prepare + noisy release.
  // Refunds the tenant when no answer was released.
  StatusOr<BatchAnswerResponse> Serve(const BatchAnswerRequest& request,
                                      std::uint64_t request_id);

  // Noise stream for one request id: derived from the master seed only.
  rng::Engine EngineForRequest(std::uint64_t request_id) const;

  // Dispatches ready batches from the query batcher onto the pool.
  void DispatchBatches(std::vector<QueryBatcher::ReadyBatch> batches);

  linalg::Vector data_;
  AnswerServiceOptions options_;

  BudgetManager budget_;
  PreparedMechanismCache cache_;
  QueryBatcher batcher_;

  mutable std::mutex mu_;
  std::uint64_t next_request_id_ = 0;
  AnswerServiceStats stats_;
  // Futures for admitted single queries, keyed by (batch sequence, row).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<linalg::Index,
                                        std::promise<StatusOr<double>>>>
      pending_queries_;

  // Last member so workers die before anything they touch.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_ANSWER_SERVICE_H_
