// The batch-query answering service: the long-running front-end in front of
// LowRankMechanism.
//
// Layering (bottom-up):
//
//   ThreadPool               workers executing answer tasks
//   BudgetManager            per-tenant ε ledger, typed refusals
//   PreparedMechanismCache   fingerprint-keyed prepared strategies
//   QueryBatcher             single queries → workload batches
//   AnswerService            admission, deadlines, shedding, RNG streams
//
// The service owns the sensitive unit-count vector; tenants own only their
// queries and their ε budgets. Every request travels: validate → charge
// budget (typed RESOURCE_EXHAUSTED refusal when the ledger cannot cover ε)
// → prepare-or-hit cache → answer with the request's private RNG stream.
//
// Failure model (full contract in src/service/README.md):
//   * Refusals are typed and charge nothing: INVALID_ARGUMENT /
//     FAILED_PRECONDITION (validation), RESOURCE_EXHAUSTED (budget),
//     UNAVAILABLE (shed under overload — retry-after hint in the message).
//   * A request admitted with a deadline is cancelled cooperatively: the
//     ALM strategy search polls the request's CancelToken between
//     iterations. An expired request either degrades to the
//     identity-strategy Laplace release (allow_degraded, the default —
//     same ε cost, same noise stream, response.degraded set) or is
//     refunded and fails with DEADLINE_EXCEEDED.
//   * ε is spent if and only if a noisy answer was released. Any
//     post-charge failure path refunds before resolving the future; a
//     worker task that dies by exception still refunds and resolves its
//     future with INTERNAL. No future is ever abandoned — the destructor
//     resolves never-dispatched single-query futures with CANCELLED.
//
// Determinism: each request is assigned a monotonically increasing id at
// admission (Submit/Answer call order), and its noise stream is derived
// from (service seed, id) alone — so for a fixed seed and submission order
// the noise added to each release is bitwise identical no matter how the
// worker threads interleave. A degraded release draws from the SAME
// per-request stream, so it too is bitwise reproducible for a fixed seed
// and submission order. The full released vector is additionally
// deterministic whenever the request's strategy is pinned (a cache hit, or
// a cold prepare); a warm-started miss reuses whatever same-shaped factors
// the cache happens to hold, which under concurrent submission of distinct
// workloads can depend on completion order.

#ifndef LRM_SERVICE_ANSWER_SERVICE_H_
#define LRM_SERVICE_ANSWER_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/cancel.h"
#include "base/status_or.h"
#include "linalg/vector.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "rng/engine.h"
#include "service/batcher.h"
#include "service/budget_manager.h"
#include "service/fault_injection.h"
#include "service/prepared_cache.h"
#include "service/thread_pool.h"
#include "workload/workload.h"

namespace lrm::service {

/// \brief Options for AnswerService.
struct AnswerServiceOptions {
  /// Worker threads answering requests.
  int num_threads = 4;
  /// Master seed all per-request noise streams derive from.
  std::uint64_t seed = 20120827;
  /// Prepared-mechanism cache settings (mechanism options included).
  PreparedCacheOptions cache;
  /// Admission batching: single queries are coalesced per (tenant, ε)
  /// until a group holds this many rows (QueryBatcher).
  linalg::Index max_batch_queries = 64;

  /// Overload protection: maximum asynchronous requests admitted to the
  /// worker pool but not yet completed (Submit and dispatched batches;
  /// the synchronous Answer path occupies no pool slot and is never
  /// shed). Beyond this depth Submit refuses with UNAVAILABLE — before
  /// charging anything — and embeds a retry-after estimate in the status
  /// message. 0 disables shedding.
  std::size_t max_pending_requests = 1024;

  /// Time-based batch cuts: a partial (tenant, ε) single-query group is
  /// cut and dispatched once its oldest query has waited this long, so a
  /// sparse tenant's queries don't wait unboundedly for batch-mates. A
  /// finite value starts a background ticker thread; infinity (the
  /// default) disables time-based cuts entirely (groups wait for
  /// max_batch_queries or FlushQueries).
  double batch_linger_seconds = std::numeric_limits<double>::infinity();

  /// Test-only deterministic fault seam (see fault_injection.h). Not
  /// owned; must outlive the service. Propagated into the cache unless
  /// cache.fault_injector is already set. Null disables injection.
  FaultInjector* fault_injector = nullptr;

  /// Periodic metrics reporting: a positive finite value starts a
  /// background obs::PeriodicReporter that renders the service registry
  /// every this many seconds into the process log at INFO (plus one final
  /// report at shutdown). 0 (the default) disables the reporter; the
  /// registry is still live and snapshotable either way.
  double report_period_seconds = 0.0;
};

/// \brief One batch request: answer every query of `workload` at privacy
/// cost ε against the service's data, charged to `tenant`.
struct BatchAnswerRequest {
  std::string tenant;
  double epsilon = 0.0;
  std::shared_ptr<const workload::Workload> workload;

  /// Deadline budget measured from admission. The strategy search is
  /// cancelled cooperatively (between ALM iterations) once it expires.
  /// Must be positive; non-finite means no deadline (the default).
  double timeout_seconds = std::numeric_limits<double>::infinity();

  /// When the strategy search fails or is cancelled by the deadline, fall
  /// back to the identity-strategy Laplace release (NoiseOnDataMechanism)
  /// instead of failing: the SAME ε is spent, the SAME per-request noise
  /// stream is used, and the response reports degraded = true. False
  /// demands the low-rank strategy or nothing: such a request is refunded
  /// and fails with the underlying typed status.
  bool allow_degraded = true;
};

/// \brief The released answers plus per-request serving metadata.
struct BatchAnswerResponse {
  /// Admission-order id; also names the noise stream used.
  std::uint64_t request_id = 0;
  /// ε-DP noisy answers, one per workload row.
  linalg::Vector answers;
  /// Strategy came from the cache (or a coalesced concurrent prepare).
  bool cache_hit = false;
  /// A cache miss that warm-started from a cached neighbor's factors.
  bool warm_started = false;
  /// Released through the identity-strategy Laplace fallback because the
  /// low-rank prepare failed or was cancelled by the deadline. Same ε
  /// spent; higher expected error.
  bool degraded = false;
  /// Wall-clock the strategy search cost this request (≈0 on a hit).
  double prepare_seconds = 0.0;
  /// Wall-clock of the noisy release itself.
  double answer_seconds = 0.0;
  /// Tenant budget left after this charge.
  double remaining_budget = 0.0;
};

/// \brief Service counters (monotonic). Refusals are split by reason so an
/// operator can tell overload (shed) from misconfiguration (validation)
/// from ledger pressure (budget) at a glance.
///
/// Since the obs rewire this struct is a snapshot VIEW assembled from the
/// service's registry-backed counters at stats() time (metric names in
/// src/service/README.md); it is no longer the live accounting structure.
/// Existing callers keep reading the same fields. Cross-field reads are
/// individually monotonic but not a single atomic cut — exactly the
/// guarantee the old mutex-guarded struct gave across stats() calls.
struct AnswerServiceStats {
  std::int64_t requests_admitted = 0;
  /// Charge refused: the tenant's remaining ε cannot cover the request.
  std::int64_t refused_budget = 0;
  /// Refused before charging: malformed workload/ε/timeout or unknown
  /// tenant.
  std::int64_t refused_validation = 0;
  /// Shed at Submit: max_pending_requests asynchronous requests were
  /// already in flight. Nothing was charged.
  std::int64_t refused_shed = 0;
  /// Admitted but failed with DEADLINE_EXCEEDED after refund (deadline
  /// expired and degradation was disallowed or itself failed).
  std::int64_t refused_deadline = 0;
  /// Responses released through the Laplace fallback (degraded = true).
  std::int64_t degraded_releases = 0;
  std::int64_t batches_dispatched = 0;  // via the single-query path
  /// Batch groups cut by the linger ticker rather than by reaching
  /// max_batch_queries or FlushQueries.
  std::int64_t batches_cut_by_linger = 0;
  PreparedCacheStats cache;
};

/// \brief Single-process batch-query answering service.
///
/// Thread-safe. Submit() performs admission (overload check + validation +
/// budget charge + request-id assignment) synchronously on the caller's
/// thread — refusals are therefore deterministic in submission order — and
/// runs the prepare/answer work on the worker pool.
class AnswerService {
 public:
  /// `data` is the sensitive unit-count vector the service answers from.
  AnswerService(linalg::Vector data, AnswerServiceOptions options = {});

  /// Resolves every never-dispatched single-query future with CANCELLED
  /// (their groups were never cut, so nothing was charged), then drains
  /// the worker pool so in-flight requests complete normally.
  ~AnswerService();

  AnswerService(const AnswerService&) = delete;
  AnswerService& operator=(const AnswerService&) = delete;

  /// Grants `tenant` a lifetime ε budget (BudgetManager semantics).
  Status RegisterTenant(const std::string& tenant, double epsilon_budget);

  /// Synchronous request path: admission + prepare/answer on the calling
  /// thread. Budget exhaustion returns StatusCode::kResourceExhausted and
  /// charges nothing. Never shed (occupies no worker-pool slot); the
  /// request's deadline and degradation policy still apply.
  StatusOr<BatchAnswerResponse> Answer(const BatchAnswerRequest& request);

  /// Asynchronous request path: admission happens before this returns
  /// (including the overload check and the budget charge — a shed or
  /// exhausted request learns immediately via a ready future), the heavy
  /// work runs on the worker pool. The future ALWAYS resolves with a
  /// typed status: worker death by exception refunds and resolves
  /// INTERNAL.
  std::future<StatusOr<BatchAnswerResponse>> Submit(
      BatchAnswerRequest request);

  /// Single-query admission path: the query joins its (tenant, ε) batch
  /// group; once the group holds max_batch_queries rows (or FlushQueries
  /// runs, or the group lingers past batch_linger_seconds) the whole
  /// group is charged ε ONCE, prepared, and answered as one workload, and
  /// each future resolves to its query's noisy answer.
  std::future<StatusOr<double>> SubmitQuery(const std::string& tenant,
                                            double epsilon,
                                            linalg::Vector query);

  /// Cuts every pending query group and dispatches it, full or not.
  void FlushQueries();

  /// Blocks until all dispatched work has finished.
  void Drain();

  /// Snapshot view over the registry counters (see AnswerServiceStats).
  AnswerServiceStats stats() const;

  /// The service's metric registry: every counter/histogram the service,
  /// its batcher and its cache publish (service.*, batcher.*, cache.*,
  /// alm.*). Snapshot it (or use MetricsSnapshot) and render with
  /// obs::ToText / obs::ToJson.
  const obs::MetricRegistry& registry() const { return registry_; }

  /// Convenience: a coherent point-in-time snapshot of every metric.
  obs::RegistrySnapshot MetricsSnapshot() const {
    return registry_.Snapshot();
  }

  /// Refunds refused by the ledger because they exceeded recorded spend
  /// (charge/refund pairing bug; see BudgetManager::Refund). Exposed so
  /// fault-injection tests can assert the ledger never went creative.
  std::int64_t over_refund_count() const {
    return budget_.over_refund_count();
  }

  /// Remaining ε for a tenant (ledger read-through).
  StatusOr<double> RemainingBudget(const std::string& tenant) const {
    return budget_.Remaining(tenant);
  }

  linalg::Index domain_size() const { return data_.size(); }

 private:
  // Admission: validates the request shape and deadline, charges the
  // budget, assigns the request id. Returns the id.
  StatusOr<std::uint64_t> Admit(const BatchAnswerRequest& request);

  // Overload gate for the asynchronous paths: reserves an in-flight slot
  // or refuses UNAVAILABLE (with a retry-after estimate) when
  // max_pending_requests slots are taken. Runs BEFORE Admit so a shed
  // request charges nothing.
  Status TryReserveSlot();
  // Completes the slot reserved by TryReserveSlot. (The serve-time average
  // behind the retry-after estimate now comes from the service.serve_seconds
  // histogram, which ServeGuarded feeds.)
  void ReleaseSlot();

  // The post-admission work: deadline gates + cache lookup/prepare + noisy
  // release, with the Laplace fallback on prepare failure. Refunds the
  // tenant when no answer was released.
  StatusOr<BatchAnswerResponse> Serve(const BatchAnswerRequest& request,
                                      std::uint64_t request_id,
                                      const CancelToken& token);
  // Serve wrapped so no exception escapes a worker task: a throw refunds
  // and becomes INTERNAL. Every future therefore resolves.
  StatusOr<BatchAnswerResponse> ServeGuarded(const BatchAnswerRequest& request,
                                             std::uint64_t request_id,
                                             const CancelToken& token);
  // Terminal failure handling for Serve: the identity-strategy Laplace
  // fallback when the request allows it, else refund + typed status.
  StatusOr<BatchAnswerResponse> ResolveServeFailure(
      const BatchAnswerRequest& request, std::uint64_t request_id,
      Status cause, double prepare_seconds);

  // Injector gate (when armed) followed by the request's deadline check.
  Status DeadlineGate(const char* site, const CancelToken& token);

  // Per-request cancellation token: carries the deadline when
  // request.timeout_seconds is finite.
  CancelToken TokenForRequest(const BatchAnswerRequest& request) const;

  // Noise stream for one request id: derived from the master seed only.
  rng::Engine EngineForRequest(std::uint64_t request_id) const;

  // Dispatches ready batches from the query batcher onto the pool.
  void DispatchBatches(std::vector<QueryBatcher::ReadyBatch> batches,
                       bool cut_by_linger = false);

  // Background linger ticker (only when batch_linger_seconds is finite).
  void StartLingerTicker();
  void StopLingerTicker();

  linalg::Vector data_;
  AnswerServiceOptions options_;

  // The registry every tier below publishes into. Declared before the
  // members that hold pointers into it (cache_, batcher_, reporter_) so it
  // outlives them; metric pointers are stable for the registry's lifetime.
  obs::MetricRegistry registry_;
  // Registry-backed counters replacing the old mutex-guarded stats struct:
  // the hot path is a relaxed atomic add, never the service mutex.
  obs::Counter* requests_admitted_ = nullptr;
  obs::Counter* refused_budget_ = nullptr;
  obs::Counter* refused_validation_ = nullptr;
  obs::Counter* refused_shed_ = nullptr;
  obs::Counter* refused_deadline_ = nullptr;
  obs::Counter* degraded_releases_ = nullptr;
  obs::Counter* batches_dispatched_ = nullptr;
  obs::Counter* batches_cut_by_linger_ = nullptr;
  // Stage histograms (seconds): admission ⊂ serve ⊃ prepare/answer.
  obs::Histogram* admission_seconds_ = nullptr;
  obs::Histogram* serve_seconds_ = nullptr;
  obs::Histogram* prepare_seconds_ = nullptr;
  obs::Histogram* answer_seconds_ = nullptr;
  // Live depth of the async worker queue (the shedding gauge).
  obs::Gauge* in_flight_gauge_ = nullptr;

  BudgetManager budget_;
  PreparedMechanismCache cache_;
  QueryBatcher batcher_;
  std::unique_ptr<obs::PeriodicReporter> reporter_;

  std::atomic<std::uint64_t> next_request_id_{0};
  // Slots reserved but not released (the overload gate).
  std::atomic<std::size_t> in_flight_{0};

  mutable std::mutex mu_;
  // Futures for admitted single queries, keyed by (batch sequence, row).
  std::unordered_map<std::uint64_t,
                     std::unordered_map<linalg::Index,
                                        std::promise<StatusOr<double>>>>
      pending_queries_;

  // Linger ticker state (its own mutex: the ticker must be stoppable
  // without contending with request admission).
  std::mutex ticker_mu_;
  std::condition_variable ticker_cv_;
  bool ticker_stop_ = false;
  std::thread ticker_;

  // Last member so workers die before anything they touch.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_ANSWER_SERVICE_H_
