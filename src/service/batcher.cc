#include "service/batcher.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"
#include "linalg/matrix.h"

namespace lrm::service {
namespace {

// Snaps ε onto a grid with 2⁻⁴⁰ relative resolution: round the binary
// mantissa to 40 bits and rebuild the double. Values within ~1e-12
// relative of each other land on the same grid point (or on adjacent
// points, which merely splits a group — see the header contract); the
// grid is ~4000× coarser than a double ulp yet ~12 orders of magnitude
// finer than any ε distinction that matters for privacy accounting.
double QuantizeEpsilon(double epsilon) {
  int exponent = 0;
  const double mantissa = std::frexp(epsilon, &exponent);
  return std::ldexp(std::round(std::ldexp(mantissa, 40)), exponent - 40);
}

}  // namespace

QueryBatcher::QueryBatcher(QueryBatcherOptions options)
    : options_(options) {
  LRM_CHECK_GT(options_.domain_size, 0);
  LRM_CHECK_GT(options_.max_batch_queries, 0);
  LRM_CHECK(!std::isnan(options_.max_linger_seconds) &&
            options_.max_linger_seconds > 0.0);
}

StatusOr<QueryBatcher::Ticket> QueryBatcher::Add(const std::string& tenant,
                                                 double epsilon,
                                                 linalg::Vector query) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "QueryBatcher::Add: epsilon must be positive and finite");
  }
  if (query.size() != options_.domain_size) {
    return Status::InvalidArgument(StrFormat(
        "QueryBatcher::Add: query has %td coefficients, domain size is %td",
        query.size(), options_.domain_size));
  }
  if (!linalg::AllFinite(query)) {
    return Status::InvalidArgument(
        "QueryBatcher::Add: query contains NaN or Inf");
  }
  std::lock_guard<std::mutex> lock(mu_);
  Group& group = groups_[{tenant, QuantizeEpsilon(epsilon)}];
  if (group.rows.empty()) {
    group.sequence = next_sequence_++;
    group.epsilon = epsilon;
    group.created = std::chrono::steady_clock::now();
  } else {
    // The batch is one release charged once: spending the group minimum
    // keeps every member's privacy guarantee (ε' ≤ ε requested).
    group.epsilon = std::min(group.epsilon, epsilon);
  }
  Ticket ticket;
  ticket.batch_sequence = group.sequence;
  ticket.row = static_cast<linalg::Index>(group.rows.size());
  group.rows.push_back(std::move(query));
  if (options_.queries_admitted != nullptr) {
    options_.queries_admitted->Increment();
  }
  return ticket;
}

QueryBatcher::ReadyBatch QueryBatcher::CutGroup(const std::string& tenant,
                                                Group&& group) const {
  linalg::Matrix matrix(static_cast<linalg::Index>(group.rows.size()),
                        options_.domain_size);
  for (std::size_t i = 0; i < group.rows.size(); ++i) {
    matrix.SetRow(static_cast<linalg::Index>(i), group.rows[i]);
  }
  if (options_.batches_cut != nullptr) options_.batches_cut->Increment();
  if (options_.batch_rows != nullptr) {
    options_.batch_rows->Record(static_cast<double>(group.rows.size()));
  }
  ReadyBatch batch;
  batch.sequence = group.sequence;
  batch.tenant = tenant;
  batch.epsilon = group.epsilon;
  batch.workload = std::make_shared<const workload::Workload>(
      StrFormat("batch/%s/%llu", tenant.c_str(),
                static_cast<unsigned long long>(group.sequence)),
      std::move(matrix));
  return batch;
}

std::vector<QueryBatcher::ReadyBatch> QueryBatcher::TakeReady() {
  std::vector<ReadyBatch> ready;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = groups_.begin(); it != groups_.end();) {
    if (static_cast<linalg::Index>(it->second.rows.size()) >=
        options_.max_batch_queries) {
      ready.push_back(CutGroup(it->first.first, std::move(it->second)));
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(ready.begin(), ready.end(),
            [](const ReadyBatch& a, const ReadyBatch& b) {
              return a.sequence < b.sequence;
            });
  return ready;
}

std::vector<QueryBatcher::ReadyBatch> QueryBatcher::TakeExpired(
    std::chrono::steady_clock::time_point now) {
  std::vector<ReadyBatch> ready;
  std::lock_guard<std::mutex> lock(mu_);
  const bool linger_enabled = std::isfinite(options_.max_linger_seconds);
  for (auto it = groups_.begin(); it != groups_.end();) {
    const Group& group = it->second;
    const bool full = static_cast<linalg::Index>(group.rows.size()) >=
                      options_.max_batch_queries;
    const bool expired =
        linger_enabled &&
        std::chrono::duration<double>(now - group.created).count() >=
            options_.max_linger_seconds;
    if (full || expired) {
      ready.push_back(CutGroup(it->first.first, std::move(it->second)));
      it = groups_.erase(it);
    } else {
      ++it;
    }
  }
  std::sort(ready.begin(), ready.end(),
            [](const ReadyBatch& a, const ReadyBatch& b) {
              return a.sequence < b.sequence;
            });
  return ready;
}

std::vector<QueryBatcher::ReadyBatch> QueryBatcher::Flush() {
  std::vector<ReadyBatch> ready;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, group] : groups_) {
    ready.push_back(CutGroup(key.first, std::move(group)));
  }
  groups_.clear();
  std::sort(ready.begin(), ready.end(),
            [](const ReadyBatch& a, const ReadyBatch& b) {
              return a.sequence < b.sequence;
            });
  return ready;
}

linalg::Index QueryBatcher::pending_queries() const {
  std::lock_guard<std::mutex> lock(mu_);
  linalg::Index count = 0;
  for (const auto& [key, group] : groups_) {
    (void)key;
    count += static_cast<linalg::Index>(group.rows.size());
  }
  return count;
}

}  // namespace lrm::service
