// The worker pool moved to base/thread_pool.h when the factorization tier
// (linalg/kernels/parallel.h) started sharing it; this shim keeps service
// callers source-compatible. Determinism in the service still does NOT come
// from task ordering in the pool (workers race) — it comes from
// AnswerService assigning each request its RNG stream at submission time,
// before the task ever reaches the pool.

#ifndef LRM_SERVICE_THREAD_POOL_H_
#define LRM_SERVICE_THREAD_POOL_H_

#include "base/thread_pool.h"

namespace lrm::service {

using ::lrm::ThreadPool;

}  // namespace lrm::service

#endif  // LRM_SERVICE_THREAD_POOL_H_
