// Fixed-size worker pool for the answering service.
//
// Deliberately minimal: a locked FIFO of std::function tasks drained by N
// long-lived threads. Determinism in the service does NOT come from task
// ordering here (workers race) — it comes from AnswerService assigning each
// request its RNG stream at submission time, before the task ever reaches
// the pool.

#ifndef LRM_SERVICE_THREAD_POOL_H_
#define LRM_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lrm::service {

/// \brief Fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks submitted after shutdown began are rejected
  /// silently (the service only shuts the pool down in its destructor,
  /// after all submissions have completed).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  int in_flight_ = 0;  // tasks popped but not yet finished
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_THREAD_POOL_H_
