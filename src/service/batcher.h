// Admission layer: coalesces individually submitted linear queries into
// workload matrices.
//
// The whole economics of the low-rank mechanism favor batches — one
// prepared strategy answers m queries with ONE ε charge (the batch is a
// single release) — so the service batches eagerly: queries are grouped by
// (tenant, ε) and a group is cut into a Workload matrix once it reaches
// max_batch_queries (or on Flush). Queries from different tenants are never
// coalesced into one release: a batch answer draws one joint noise vector,
// and budget accounting must attribute that release to exactly one ledger.
//
// Grouping contract for ε (see Add): epsilons are compared on a quantized
// grid with 2⁻⁴⁰ relative resolution, not with exact double equality, so
// two requests whose ε values differ only by floating-point round-off
// (1.0/10 vs 0.1, an accumulated sum vs its closed form) land in the same
// group instead of silently forking two half-empty batches. A merged group
// is charged and answered at the MINIMUM ε of its members — never more
// privacy loss than any member asked for. Near-equal values that straddle
// a grid boundary may still split into two groups; that is a throughput
// loss, never a correctness or privacy loss.

#ifndef LRM_SERVICE_BATCHER_H_
#define LRM_SERVICE_BATCHER_H_

#include <chrono>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "base/status_or.h"
#include "linalg/vector.h"
#include "obs/metrics.h"
#include "workload/workload.h"

namespace lrm::service {

/// \brief Options for QueryBatcher.
struct QueryBatcherOptions {
  /// Domain size n every admitted query must match.
  linalg::Index domain_size = 0;
  /// A (tenant, ε) group is cut into a batch once it holds this many
  /// queries.
  linalg::Index max_batch_queries = 64;

  /// Maximum time a group may linger un-cut after its FIRST query was
  /// admitted before TakeExpired() considers it ready. Infinity (the
  /// default) disables time-based cuts: a partial group then waits for
  /// max_batch_queries or Flush(). A sparse tenant's first query would
  /// otherwise wait unboundedly for batch-mates.
  double max_linger_seconds = std::numeric_limits<double>::infinity();

  /// Optional observability sinks (obs tier). Null disables the site; the
  /// metrics are not owned and must outlive the batcher.
  obs::Counter* queries_admitted = nullptr;  ///< Successful Add() calls.
  obs::Counter* batches_cut = nullptr;       ///< ReadyBatches produced.
  obs::Histogram* batch_rows = nullptr;      ///< Rows per cut batch.
};

/// \brief Coalesces single linear queries into per-(tenant, ε) workload
/// batches. Thread-safe.
class QueryBatcher {
 public:
  /// Identifies one admitted query: the batch it will ride in (global
  /// monotonically increasing sequence number) and its row there.
  struct Ticket {
    std::uint64_t batch_sequence = 0;
    linalg::Index row = 0;
  };

  /// A group that has been cut: ready to prepare and answer as one
  /// workload. Rows appear in admission order.
  struct ReadyBatch {
    std::uint64_t sequence = 0;
    std::string tenant;
    double epsilon = 0.0;
    std::shared_ptr<const workload::Workload> workload;
  };

  explicit QueryBatcher(QueryBatcherOptions options);

  /// Validates and admits one query row: the coefficient vector must have
  /// exactly domain_size finite entries and ε must be positive and finite.
  /// Returns the ticket locating the query in its eventual batch.
  ///
  /// Groups are keyed by (tenant, ε quantized to a 2⁻⁴⁰-relative grid),
  /// NOT by exact double equality: ε values that differ only in the last
  /// few ulps (e.g. 1.0/10 vs 0.1 computed by summation) coalesce into one
  /// batch. The cut batch's ReadyBatch::epsilon is the minimum ε admitted
  /// into the group, so a merged release never spends more than any member
  /// requested. See the file header for the full grouping contract.
  StatusOr<Ticket> Add(const std::string& tenant, double epsilon,
                       linalg::Vector query);

  /// Removes and returns every group that reached max_batch_queries.
  std::vector<ReadyBatch> TakeReady();

  /// Removes and returns every group whose first query was admitted at or
  /// before `now - max_linger_seconds` (plus any group that independently
  /// reached max_batch_queries). Taking `now` as a parameter keeps the cut
  /// decision testable without sleeping; production callers pass
  /// steady_clock::now(). No-op when max_linger_seconds is infinite.
  std::vector<ReadyBatch> TakeExpired(std::chrono::steady_clock::time_point now);

  /// Removes and returns ALL pending groups, full or not, in group-creation
  /// order.
  std::vector<ReadyBatch> Flush();

  /// Queries admitted but not yet cut into a batch.
  linalg::Index pending_queries() const;

 private:
  struct Group {
    std::uint64_t sequence = 0;
    std::vector<linalg::Vector> rows;
    // Minimum ε admitted into this group — the ε the cut batch charges.
    // Members can differ by up to 2⁻⁴⁰ relative (the quantization grid).
    double epsilon = 0.0;
    // When the group's first query was admitted (the linger clock).
    std::chrono::steady_clock::time_point created;
  };

  ReadyBatch CutGroup(const std::string& tenant, Group&& group) const;

  QueryBatcherOptions options_;

  mutable std::mutex mu_;
  // Ordered map so Flush() drains groups deterministically; keys are
  // (tenant, quantized ε) and the group's sequence breaks same-key reuse
  // apart.
  std::map<std::pair<std::string, double>, Group> groups_;
  std::uint64_t next_sequence_ = 0;
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_BATCHER_H_
