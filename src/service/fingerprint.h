// Workload fingerprinting for the prepared-mechanism cache.
//
// Two requests carrying the same query matrix W must hit the same cache
// entry even when the Workload objects (and their display names) differ, so
// the fingerprint covers exactly the strategy-relevant content: the shape
// and the matrix entries. Names are deliberately excluded — the strategy
// search depends only on W.

#ifndef LRM_SERVICE_FINGERPRINT_H_
#define LRM_SERVICE_FINGERPRINT_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "linalg/matrix.h"
#include "workload/workload.h"

namespace lrm::service {

/// \brief Content hash of a workload matrix: shape plus two independent
/// 64-bit digests over the entry bytes. A single 64-bit hash over millions
/// of cached workloads would make silent collisions (one tenant's queries
/// answered with another workload's strategy) merely unlikely; 128 bits
/// plus the exact shape makes them negligible.
struct WorkloadFingerprint {
  linalg::Index rows = 0;
  linalg::Index cols = 0;
  std::uint64_t digest_lo = 0;
  std::uint64_t digest_hi = 0;

  friend bool operator==(const WorkloadFingerprint& a,
                         const WorkloadFingerprint& b) {
    return a.rows == b.rows && a.cols == b.cols &&
           a.digest_lo == b.digest_lo && a.digest_hi == b.digest_hi;
  }
  friend bool operator!=(const WorkloadFingerprint& a,
                         const WorkloadFingerprint& b) {
    return !(a == b);
  }

  /// "mxn:lo:hi" rendering for logs and cache diagnostics.
  std::string ToString() const;
};

/// \brief Hash functor for unordered_map keys.
struct WorkloadFingerprintHash {
  std::size_t operator()(const WorkloadFingerprint& fp) const;
};

/// \brief Fingerprints a raw matrix.
WorkloadFingerprint FingerprintMatrix(const linalg::Matrix& matrix);

/// \brief Fingerprints a workload (its matrix; the name does not
/// participate).
WorkloadFingerprint FingerprintWorkload(const workload::Workload& workload);

}  // namespace lrm::service

#endif  // LRM_SERVICE_FINGERPRINT_H_
