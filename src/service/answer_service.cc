#include "service/answer_service.h"

#include <utility>

#include "base/string_util.h"
#include "base/timer.h"

namespace lrm::service {

AnswerService::AnswerService(linalg::Vector data,
                             AnswerServiceOptions options)
    : data_(std::move(data)),
      options_(options),
      cache_(options.cache),
      batcher_(QueryBatcherOptions{data_.size(), options.max_batch_queries}),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  LRM_CHECK_GT(data_.size(), 0);
}

AnswerService::~AnswerService() {
  // Cut and dispatch whatever single queries are still pending so their
  // futures resolve instead of throwing broken_promise, then drain.
  FlushQueries();
  Drain();
}

Status AnswerService::RegisterTenant(const std::string& tenant,
                                     double epsilon_budget) {
  return budget_.RegisterTenant(tenant, epsilon_budget);
}

rng::Engine AnswerService::EngineForRequest(std::uint64_t request_id) const {
  // SplitMix64 over (seed, id): adjacent ids land in well-mixed,
  // independent engine states, and the stream depends on nothing but the
  // master seed and the admission-order id — the determinism contract.
  std::uint64_t state =
      options_.seed + 0x9E3779B97F4A7C15ULL * (request_id + 1);
  return rng::Engine(rng::SplitMix64(state));
}

StatusOr<std::uint64_t> AnswerService::Admit(
    const BatchAnswerRequest& request) {
  if (request.workload == nullptr) {
    return Status::InvalidArgument("AnswerService: null workload");
  }
  if (request.workload->domain_size() != data_.size()) {
    return Status::InvalidArgument(StrFormat(
        "AnswerService: workload domain size %td does not match the "
        "service data (%td)",
        request.workload->domain_size(), data_.size()));
  }
  // The charge is the admission decision: it validates ε and the tenant,
  // and refuses (typed, ledger untouched) when the budget cannot cover the
  // release. Charging before the work is queued keeps refusals
  // deterministic in submission order.
  const Status charge = budget_.Charge(request.tenant, request.epsilon);
  std::lock_guard<std::mutex> lock(mu_);
  if (!charge.ok()) {
    if (charge.code() == StatusCode::kResourceExhausted) {
      ++stats_.requests_refused;
    }
    return charge;
  }
  ++stats_.requests_admitted;
  return next_request_id_++;
}

StatusOr<BatchAnswerResponse> AnswerService::Serve(
    const BatchAnswerRequest& request, std::uint64_t request_id) {
  WallTimer prepare_timer;
  StatusOr<PreparedLease> lease = cache_.GetOrPrepare(request.workload);
  if (!lease.ok()) {
    // Nothing was released; the charge must not stand.
    (void)budget_.Refund(request.tenant, request.epsilon);
    return lease.status();
  }
  const double prepare_seconds = prepare_timer.ElapsedSeconds();

  WallTimer answer_timer;
  rng::Engine engine = EngineForRequest(request_id);
  StatusOr<linalg::Vector> answers =
      lease->mechanism->Answer(data_, request.epsilon, engine);
  if (!answers.ok()) {
    (void)budget_.Refund(request.tenant, request.epsilon);
    return answers.status();
  }

  BatchAnswerResponse response;
  response.request_id = request_id;
  response.answers = std::move(answers).value();
  response.cache_hit = lease->cache_hit;
  response.warm_started = lease->warm_started;
  response.prepare_seconds = prepare_seconds;
  response.answer_seconds = answer_timer.ElapsedSeconds();
  const StatusOr<double> remaining = budget_.Remaining(request.tenant);
  response.remaining_budget = remaining.ok() ? remaining.value() : 0.0;
  return response;
}

StatusOr<BatchAnswerResponse> AnswerService::Answer(
    const BatchAnswerRequest& request) {
  LRM_ASSIGN_OR_RETURN(const std::uint64_t request_id, Admit(request));
  return Serve(request, request_id);
}

std::future<StatusOr<BatchAnswerResponse>> AnswerService::Submit(
    BatchAnswerRequest request) {
  auto promise =
      std::make_shared<std::promise<StatusOr<BatchAnswerResponse>>>();
  std::future<StatusOr<BatchAnswerResponse>> future = promise->get_future();
  const StatusOr<std::uint64_t> admitted = Admit(request);
  if (!admitted.ok()) {
    promise->set_value(admitted.status());
    return future;
  }
  const std::uint64_t request_id = admitted.value();
  auto shared_request =
      std::make_shared<BatchAnswerRequest>(std::move(request));
  pool_->Submit([this, promise, shared_request, request_id] {
    promise->set_value(Serve(*shared_request, request_id));
  });
  return future;
}

std::future<StatusOr<double>> AnswerService::SubmitQuery(
    const std::string& tenant, double epsilon, linalg::Vector query) {
  std::promise<StatusOr<double>> promise;
  std::future<StatusOr<double>> future = promise.get_future();
  {
    // Admission and waiter registration must be atomic: a concurrent
    // SubmitQuery could fill the group and dispatch it in between, and a
    // waiter registered late would never resolve.
    std::lock_guard<std::mutex> lock(mu_);
    const StatusOr<QueryBatcher::Ticket> ticket =
        batcher_.Add(tenant, epsilon, std::move(query));
    if (!ticket.ok()) {
      promise.set_value(ticket.status());
      return future;
    }
    pending_queries_[ticket->batch_sequence].emplace(ticket->row,
                                                     std::move(promise));
  }
  DispatchBatches(batcher_.TakeReady());
  return future;
}

void AnswerService::FlushQueries() { DispatchBatches(batcher_.Flush()); }

void AnswerService::DispatchBatches(
    std::vector<QueryBatcher::ReadyBatch> batches) {
  for (QueryBatcher::ReadyBatch& batch : batches) {
    // Collect the batch's waiters up front.
    std::unordered_map<linalg::Index, std::promise<StatusOr<double>>>
        waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_queries_.find(batch.sequence);
      if (it != pending_queries_.end()) {
        waiters = std::move(it->second);
        pending_queries_.erase(it);
      }
      ++stats_.batches_dispatched;
    }

    BatchAnswerRequest request;
    request.tenant = std::move(batch.tenant);
    request.epsilon = batch.epsilon;  // charged ONCE for the whole batch
    request.workload = std::move(batch.workload);

    auto shared_waiters = std::make_shared<
        std::unordered_map<linalg::Index, std::promise<StatusOr<double>>>>(
        std::move(waiters));
    const StatusOr<std::uint64_t> admitted = Admit(request);
    if (!admitted.ok()) {
      for (auto& [row, waiter] : *shared_waiters) {
        (void)row;
        waiter.set_value(admitted.status());
      }
      continue;
    }
    const std::uint64_t request_id = admitted.value();
    auto shared_request =
        std::make_shared<BatchAnswerRequest>(std::move(request));
    pool_->Submit([this, shared_request, shared_waiters, request_id] {
      const StatusOr<BatchAnswerResponse> response =
          Serve(*shared_request, request_id);
      for (auto& [row, waiter] : *shared_waiters) {
        if (response.ok()) {
          waiter.set_value(response.value().answers[row]);
        } else {
          waiter.set_value(response.status());
        }
      }
    });
  }
}

void AnswerService::Drain() { pool_->Wait(); }

AnswerServiceStats AnswerService::stats() const {
  AnswerServiceStats stats;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats = stats_;
  }
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace lrm::service
