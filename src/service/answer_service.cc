#include "service/answer_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "base/string_util.h"
#include "base/timer.h"
#include "mechanism/laplace.h"
#include "obs/stage_timer.h"

namespace lrm::service {
namespace {

PreparedCacheOptions CacheOptionsWithInjector(
    const AnswerServiceOptions& options, obs::MetricRegistry* registry) {
  PreparedCacheOptions cache = options.cache;
  if (cache.fault_injector == nullptr) {
    cache.fault_injector = options.fault_injector;
  }
  // The cache publishes cache.* / alm.* into the service registry so one
  // snapshot covers the whole serving stack.
  if (cache.registry == nullptr) cache.registry = registry;
  return cache;
}

QueryBatcherOptions BatcherOptions(linalg::Index domain_size,
                                   const AnswerServiceOptions& options,
                                   obs::MetricRegistry* registry) {
  QueryBatcherOptions batcher;
  batcher.domain_size = domain_size;
  batcher.max_batch_queries = options.max_batch_queries;
  batcher.max_linger_seconds = options.batch_linger_seconds;
  batcher.queries_admitted = registry->counter("batcher.queries_admitted");
  batcher.batches_cut = registry->counter("batcher.batches_cut");
  batcher.batch_rows = registry->histogram("batcher.batch_rows");
  return batcher;
}

}  // namespace

AnswerService::AnswerService(linalg::Vector data,
                             AnswerServiceOptions options)
    : data_(std::move(data)),
      options_(options),
      cache_(CacheOptionsWithInjector(options, &registry_)),
      batcher_(BatcherOptions(data_.size(), options, &registry_)),
      pool_(std::make_unique<ThreadPool>(options.num_threads)) {
  LRM_CHECK_GT(data_.size(), 0);
  requests_admitted_ = registry_.counter("service.requests_admitted");
  refused_budget_ = registry_.counter("service.refused_budget");
  refused_validation_ = registry_.counter("service.refused_validation");
  refused_shed_ = registry_.counter("service.refused_shed");
  refused_deadline_ = registry_.counter("service.refused_deadline");
  degraded_releases_ = registry_.counter("service.degraded_releases");
  batches_dispatched_ = registry_.counter("service.batches_dispatched");
  batches_cut_by_linger_ =
      registry_.counter("service.batches_cut_by_linger");
  admission_seconds_ = registry_.histogram("service.admission_seconds");
  serve_seconds_ = registry_.histogram("service.serve_seconds");
  prepare_seconds_ = registry_.histogram("service.prepare_seconds");
  answer_seconds_ = registry_.histogram("service.answer_seconds");
  in_flight_gauge_ = registry_.gauge("service.in_flight");
  if (std::isfinite(options_.report_period_seconds) &&
      options_.report_period_seconds > 0.0) {
    obs::PeriodicReporterOptions reporter;
    reporter.period_seconds = options_.report_period_seconds;
    reporter_ =
        std::make_unique<obs::PeriodicReporter>(&registry_, reporter);
  }
  StartLingerTicker();
}

AnswerService::~AnswerService() {
  StopLingerTicker();
  // Resolve every never-dispatched single-query future with a typed status
  // instead of breaking its promise — and instead of spending tenants'
  // budgets on strategy searches during destruction. The groups were never
  // cut, so nothing was charged: discarding them owes no refund.
  (void)batcher_.Flush();
  decltype(pending_queries_) abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    abandoned.swap(pending_queries_);
  }
  for (auto& [sequence, waiters] : abandoned) {
    (void)sequence;
    for (auto& [row, waiter] : waiters) {
      (void)row;
      waiter.set_value(Status::Cancelled(
          "AnswerService: service destroyed before the batch group was "
          "cut; the query was never charged"));
    }
  }
  // In-flight work still completes normally; ServeGuarded keeps worker
  // exceptions out of the pool, but a destructor must not throw either way.
  try {
    Drain();
  } catch (...) {
  }
}

Status AnswerService::RegisterTenant(const std::string& tenant,
                                     double epsilon_budget) {
  return budget_.RegisterTenant(tenant, epsilon_budget);
}

rng::Engine AnswerService::EngineForRequest(std::uint64_t request_id) const {
  // SplitMix64 over (seed, id): adjacent ids land in well-mixed,
  // independent engine states, and the stream depends on nothing but the
  // master seed and the admission-order id — the determinism contract.
  std::uint64_t state =
      options_.seed + 0x9E3779B97F4A7C15ULL * (request_id + 1);
  return rng::Engine(rng::SplitMix64(state));
}

CancelToken AnswerService::TokenForRequest(
    const BatchAnswerRequest& request) const {
  if (!std::isfinite(request.timeout_seconds)) return CancelToken();
  // The source may die here; the token keeps the shared deadline state
  // alive. The clock starts now — i.e. at admission, not at dispatch —
  // so queueing delay counts against the request's budget.
  return CancelSource::WithTimeout(request.timeout_seconds).token();
}

StatusOr<std::uint64_t> AnswerService::Admit(
    const BatchAnswerRequest& request) {
  obs::ScopedStageTimer admission_span(admission_seconds_);
  Status invalid = Status::OK();
  if (request.workload == nullptr) {
    invalid = Status::InvalidArgument("AnswerService: null workload");
  } else if (request.workload->domain_size() != data_.size()) {
    invalid = Status::InvalidArgument(StrFormat(
        "AnswerService: workload domain size %td does not match the "
        "service data (%td)",
        request.workload->domain_size(), data_.size()));
  } else if (std::isnan(request.timeout_seconds) ||
             request.timeout_seconds <= 0.0) {
    invalid = Status::InvalidArgument(
        "AnswerService: timeout_seconds must be positive (infinity means "
        "no deadline)");
  }
  if (!invalid.ok()) {
    refused_validation_->Increment();
    return invalid;
  }
  // The charge is the admission decision: it validates ε and the tenant,
  // and refuses (typed, ledger untouched) when the budget cannot cover the
  // release. Charging before the work is queued keeps refusals
  // deterministic in submission order.
  const Status charge = budget_.Charge(request.tenant, request.epsilon);
  if (!charge.ok()) {
    if (charge.code() == StatusCode::kResourceExhausted) {
      refused_budget_->Increment();
    } else {
      // Unknown tenant (FAILED_PRECONDITION) or malformed ε
      // (INVALID_ARGUMENT): the request never should have been made.
      refused_validation_->Increment();
    }
    return charge;
  }
  requests_admitted_->Increment();
  return next_request_id_.fetch_add(1, std::memory_order_relaxed);
}

Status AnswerService::TryReserveSlot() {
  // Optimistic reserve: take the slot, then undo if the queue was already
  // full. The hot (admitted) path is one relaxed RMW — no service mutex.
  const std::size_t depth =
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
  if (options_.max_pending_requests > 0 &&
      depth >= options_.max_pending_requests) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    refused_shed_->Increment();
    // Retry-after estimate: draining the current queue at the observed
    // average serve time across the worker threads (the serve_seconds
    // histogram carries count and sum). Before any serve has completed,
    // guess conservatively. The shed path is cold, so a histogram
    // snapshot here is fine.
    const obs::HistogramSnapshot serves = serve_seconds_->Snapshot();
    const double avg_serve =
        serves.count > 0 ? serves.sum / static_cast<double>(serves.count)
                         : 0.05;
    const double retry_after =
        avg_serve * static_cast<double>(depth) /
        static_cast<double>(std::max(1, options_.num_threads));
    return Status::Unavailable(StrFormat(
        "AnswerService: shedding load (%llu async requests in flight, "
        "limit %llu); retry after ~%.3f s",
        static_cast<unsigned long long>(depth),
        static_cast<unsigned long long>(options_.max_pending_requests),
        retry_after));
  }
  in_flight_gauge_->Set(static_cast<double>(depth + 1));
  return Status::OK();
}

void AnswerService::ReleaseSlot() {
  const std::size_t before =
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_gauge_->Set(static_cast<double>(before > 0 ? before - 1 : 0));
}

Status AnswerService::DeadlineGate(const char* site,
                                   const CancelToken& token) {
  if (options_.fault_injector != nullptr) {
    LRM_RETURN_IF_ERROR(options_.fault_injector->Check(site));
  }
  return token.Check(site);
}

StatusOr<BatchAnswerResponse> AnswerService::Serve(
    const BatchAnswerRequest& request, std::uint64_t request_id,
    const CancelToken& token) {
  if (options_.fault_injector != nullptr) {
    // May THROW when the site is armed with ThrowAt — exactly the worker
    // death ServeGuarded exists to contain.
    const Status fault = options_.fault_injector->Check(kFaultSiteServe);
    if (!fault.ok()) {
      return ResolveServeFailure(request, request_id, fault,
                                 /*prepare_seconds=*/0.0);
    }
  }

  WallTimer prepare_timer;
  Status gate = DeadlineGate(kFaultSiteDeadlineBeforePrepare, token);
  if (!gate.ok()) {
    return ResolveServeFailure(request, request_id, gate,
                               prepare_timer.ElapsedSeconds());
  }
  StatusOr<PreparedLease> lease =
      cache_.GetOrPrepare(request.workload, token);
  if (!lease.ok()) {
    return ResolveServeFailure(request, request_id, lease.status(),
                               prepare_timer.ElapsedSeconds());
  }
  gate = DeadlineGate(kFaultSiteDeadlineBeforeAnswer, token);
  if (!gate.ok()) {
    return ResolveServeFailure(request, request_id, gate,
                               prepare_timer.ElapsedSeconds());
  }
  const double prepare_seconds = prepare_timer.ElapsedSeconds();
  // Per-request prepare stage (≈0 on a cache hit; the search itself also
  // lands in cache.prepare_seconds, which only actual prepares feed).
  prepare_seconds_->Record(prepare_seconds);

  WallTimer answer_timer;
  rng::Engine engine = EngineForRequest(request_id);
  StatusOr<linalg::Vector> answers =
      lease->mechanism->Answer(data_, request.epsilon, engine);
  if (!answers.ok()) {
    // The release itself failed, not the strategy search: the Laplace
    // fallback's release would fail for the same reason, so refund and
    // propagate instead of degrading.
    (void)budget_.Refund(request.tenant, request.epsilon);
    return answers.status();
  }

  BatchAnswerResponse response;
  response.request_id = request_id;
  response.answers = std::move(answers).value();
  response.cache_hit = lease->cache_hit;
  response.warm_started = lease->warm_started;
  response.prepare_seconds = prepare_seconds;
  response.answer_seconds = answer_timer.ElapsedSeconds();
  answer_seconds_->Record(response.answer_seconds);
  const StatusOr<double> remaining = budget_.Remaining(request.tenant);
  response.remaining_budget = remaining.ok() ? remaining.value() : 0.0;
  return response;
}

StatusOr<BatchAnswerResponse> AnswerService::ResolveServeFailure(
    const BatchAnswerRequest& request, std::uint64_t request_id,
    Status cause, double prepare_seconds) {
  if (request.allow_degraded) {
    Status fault = Status::OK();
    if (options_.fault_injector != nullptr) {
      fault = options_.fault_injector->Check(kFaultSiteDegraded);
    }
    if (fault.ok()) {
      // Identity-strategy release: Lap(1/ε) on every unit count, workload
      // evaluated on the noisy counts. Plain ε-DP at the SAME charge the
      // request already paid, from the SAME per-request noise stream the
      // low-rank release would have used — so a degraded release is
      // bitwise reproducible for a fixed seed and submission order.
      mechanism::NoiseOnDataMechanism fallback;
      if (fallback.Prepare(request.workload).ok()) {
        WallTimer answer_timer;
        rng::Engine engine = EngineForRequest(request_id);
        StatusOr<linalg::Vector> answers =
            fallback.Answer(data_, request.epsilon, engine);
        if (answers.ok()) {
          BatchAnswerResponse response;
          response.request_id = request_id;
          response.answers = std::move(answers).value();
          response.degraded = true;
          response.prepare_seconds = prepare_seconds;
          response.answer_seconds = answer_timer.ElapsedSeconds();
          const StatusOr<double> remaining =
              budget_.Remaining(request.tenant);
          response.remaining_budget =
              remaining.ok() ? remaining.value() : 0.0;
          answer_seconds_->Record(response.answer_seconds);
          degraded_releases_->Increment();
          return response;
        }
      }
    }
  }
  // No answer was released on any path: the charge must not stand.
  (void)budget_.Refund(request.tenant, request.epsilon);
  if (cause.code() == StatusCode::kDeadlineExceeded) {
    refused_deadline_->Increment();
  }
  return cause;
}

StatusOr<BatchAnswerResponse> AnswerService::ServeGuarded(
    const BatchAnswerRequest& request, std::uint64_t request_id,
    const CancelToken& token) {
  // End-to-end serve stage: covers every outcome (released, degraded,
  // refused, thrown) on both the sync and async paths, and feeds the
  // retry-after estimate in TryReserveSlot.
  obs::ScopedStageTimer serve_span(serve_seconds_);
  try {
    return Serve(request, request_id, token);
  } catch (const std::exception& e) {
    (void)budget_.Refund(request.tenant, request.epsilon);
    return Status::Internal(
        StrFormat("AnswerService: worker task died: %s", e.what()));
  } catch (...) {
    (void)budget_.Refund(request.tenant, request.epsilon);
    return Status::Internal(
        "AnswerService: worker task died with a non-standard exception");
  }
}

StatusOr<BatchAnswerResponse> AnswerService::Answer(
    const BatchAnswerRequest& request) {
  LRM_ASSIGN_OR_RETURN(const std::uint64_t request_id, Admit(request));
  return ServeGuarded(request, request_id, TokenForRequest(request));
}

std::future<StatusOr<BatchAnswerResponse>> AnswerService::Submit(
    BatchAnswerRequest request) {
  auto promise =
      std::make_shared<std::promise<StatusOr<BatchAnswerResponse>>>();
  std::future<StatusOr<BatchAnswerResponse>> future = promise->get_future();
  // Overload gate first: a shed request is refused before any charge, so
  // shedding never perturbs the ledger.
  const Status slot = TryReserveSlot();
  if (!slot.ok()) {
    promise->set_value(slot);
    return future;
  }
  const StatusOr<std::uint64_t> admitted = Admit(request);
  if (!admitted.ok()) {
    ReleaseSlot();
    promise->set_value(admitted.status());
    return future;
  }
  const std::uint64_t request_id = admitted.value();
  const CancelToken token = TokenForRequest(request);
  auto shared_request =
      std::make_shared<BatchAnswerRequest>(std::move(request));
  pool_->Submit([this, promise, shared_request, request_id, token] {
    StatusOr<BatchAnswerResponse> result =
        ServeGuarded(*shared_request, request_id, token);
    ReleaseSlot();
    promise->set_value(std::move(result));
  });
  return future;
}

std::future<StatusOr<double>> AnswerService::SubmitQuery(
    const std::string& tenant, double epsilon, linalg::Vector query) {
  std::promise<StatusOr<double>> promise;
  std::future<StatusOr<double>> future = promise.get_future();
  {
    // Admission and waiter registration must be atomic: a concurrent
    // SubmitQuery could fill the group and dispatch it in between, and a
    // waiter registered late would never resolve.
    std::lock_guard<std::mutex> lock(mu_);
    const StatusOr<QueryBatcher::Ticket> ticket =
        batcher_.Add(tenant, epsilon, std::move(query));
    if (!ticket.ok()) {
      promise.set_value(ticket.status());
      return future;
    }
    pending_queries_[ticket->batch_sequence].emplace(ticket->row,
                                                     std::move(promise));
  }
  DispatchBatches(batcher_.TakeReady());
  return future;
}

void AnswerService::FlushQueries() { DispatchBatches(batcher_.Flush()); }

void AnswerService::DispatchBatches(
    std::vector<QueryBatcher::ReadyBatch> batches, bool cut_by_linger) {
  for (QueryBatcher::ReadyBatch& batch : batches) {
    // Collect the batch's waiters up front.
    std::unordered_map<linalg::Index, std::promise<StatusOr<double>>>
        waiters;
    {
      std::lock_guard<std::mutex> lock(mu_);
      const auto it = pending_queries_.find(batch.sequence);
      if (it != pending_queries_.end()) {
        waiters = std::move(it->second);
        pending_queries_.erase(it);
      }
    }
    batches_dispatched_->Increment();
    if (cut_by_linger) batches_cut_by_linger_->Increment();

    BatchAnswerRequest request;
    request.tenant = std::move(batch.tenant);
    request.epsilon = batch.epsilon;  // charged ONCE for the whole batch
    request.workload = std::move(batch.workload);

    auto shared_waiters = std::make_shared<
        std::unordered_map<linalg::Index, std::promise<StatusOr<double>>>>(
        std::move(waiters));
    const auto refuse_all = [&shared_waiters](const Status& status) {
      for (auto& [row, waiter] : *shared_waiters) {
        (void)row;
        waiter.set_value(status);
      }
    };
    const Status slot = TryReserveSlot();
    if (!slot.ok()) {
      refuse_all(slot);
      continue;
    }
    const StatusOr<std::uint64_t> admitted = Admit(request);
    if (!admitted.ok()) {
      ReleaseSlot();
      refuse_all(admitted.status());
      continue;
    }
    const std::uint64_t request_id = admitted.value();
    const CancelToken token = TokenForRequest(request);
    auto shared_request =
        std::make_shared<BatchAnswerRequest>(std::move(request));
    pool_->Submit([this, shared_request, shared_waiters, request_id,
                   token] {
      const StatusOr<BatchAnswerResponse> response =
          ServeGuarded(*shared_request, request_id, token);
      ReleaseSlot();
      for (auto& [row, waiter] : *shared_waiters) {
        if (response.ok()) {
          waiter.set_value(response.value().answers[row]);
        } else {
          waiter.set_value(response.status());
        }
      }
    });
  }
}

void AnswerService::StartLingerTicker() {
  const double linger = options_.batch_linger_seconds;
  if (!std::isfinite(linger) || linger <= 0.0) return;
  // Tick at a quarter of the linger bound (clamped to [1ms, 250ms]) so a
  // stale group overshoots its bound by at most ~25% at sane settings.
  const auto period = std::chrono::duration<double>(
      std::min(std::max(linger / 4.0, 0.001), 0.25));
  ticker_ = std::thread([this, period] {
    std::unique_lock<std::mutex> lock(ticker_mu_);
    while (!ticker_stop_) {
      ticker_cv_.wait_for(lock, period, [this] { return ticker_stop_; });
      if (ticker_stop_) break;
      lock.unlock();
      DispatchBatches(
          batcher_.TakeExpired(std::chrono::steady_clock::now()),
          /*cut_by_linger=*/true);
      lock.lock();
    }
  });
}

void AnswerService::StopLingerTicker() {
  {
    std::lock_guard<std::mutex> lock(ticker_mu_);
    ticker_stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
}

void AnswerService::Drain() { pool_->Wait(); }

AnswerServiceStats AnswerService::stats() const {
  // Snapshot view over the registry counters — no lock: each counter is
  // atomic and individually monotonic, which is all the old mutex gave
  // across separate stats() calls.
  AnswerServiceStats stats;
  stats.requests_admitted = requests_admitted_->value();
  stats.refused_budget = refused_budget_->value();
  stats.refused_validation = refused_validation_->value();
  stats.refused_shed = refused_shed_->value();
  stats.refused_deadline = refused_deadline_->value();
  stats.degraded_releases = degraded_releases_->value();
  stats.batches_dispatched = batches_dispatched_->value();
  stats.batches_cut_by_linger = batches_cut_by_linger_->value();
  stats.cache = cache_.stats();
  return stats;
}

}  // namespace lrm::service
