// The prepared-mechanism cache: "prepare" is expensive (an ALM strategy
// search, seconds at production sizes) and data-independent; "answer" is
// cheap (two small GEMVs plus Laplace draws). The cache keys fully prepared
// LowRankMechanism instances by workload fingerprint so that every request
// after the first skips straight to the answer path, and warm-starts cache
// misses from the nearest cached decomposition (PrepareWithHint), so even a
// novel workload pays less than a cold solve when a same-shaped neighbor
// exists.
//
// Sharing prepared strategies ACROSS tenants is deliberate and safe: a
// decomposition is a function of the public workload W only — it embeds no
// data and no noise — so one tenant can never learn about another's data
// through a shared cache entry (src/service/README.md, privacy contract).

#ifndef LRM_SERVICE_PREPARED_CACHE_H_
#define LRM_SERVICE_PREPARED_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "base/cancel.h"
#include "base/status_or.h"
#include "core/low_rank_mechanism.h"
#include "obs/metrics.h"
#include "service/fault_injection.h"
#include "service/fingerprint.h"
#include "workload/workload.h"

namespace lrm::service {

/// \brief Options for PreparedMechanismCache.
struct PreparedCacheOptions {
  /// Maximum number of prepared mechanisms retained (LRU eviction).
  /// Capacity 0 disables caching entirely: every request pays a cold
  /// prepare — the baseline arm the service benchmark compares against.
  std::size_t capacity = 64;

  /// Mechanism settings used for every prepare. warm_start is ignored;
  /// warm starts happen explicitly through PrepareWithHint on misses.
  core::LowRankMechanismOptions mechanism;

  /// Warm-start a miss from the most-recently-used cached entry whose
  /// workload shape matches (PrepareWithHint with that entry's
  /// decomposition). Off forces every miss cold.
  bool warm_start_misses = true;

  /// Test-only fault seam, consulted at kFaultSitePrepare immediately
  /// before a strategy search. Not owned; must outlive the cache. Null (the
  /// default) disables injection entirely.
  FaultInjector* fault_injector = nullptr;

  /// Registry the cache publishes its metrics into (counters cache.hits /
  /// cache.misses / cache.warm_misses / cache.evictions, histograms
  /// cache.prepare_seconds and alm.iteration_seconds, counter
  /// alm.iterations). Not owned; must outlive the cache. Null (the
  /// default) makes the cache publish into a private registry — the
  /// counters still back stats(), they just aren't exported anywhere.
  obs::MetricRegistry* registry = nullptr;
};

/// \brief Snapshot view of the cache's monotonic counters. Since the obs
/// rewire this is a value assembled from the registry-backed counters at
/// stats() time, not the live accounting structure — existing callers keep
/// reading the same fields.
struct PreparedCacheStats {
  std::int64_t hits = 0;
  std::int64_t misses = 0;
  /// Of the misses, how many warm-started from a cached neighbor.
  std::int64_t warm_misses = 0;
  std::int64_t evictions = 0;

  double HitRate() const {
    const std::int64_t total = hits + misses;
    return total > 0 ? static_cast<double>(hits) / total : 0.0;
  }
};

/// \brief What GetOrPrepare hands back: the shared prepared mechanism plus
/// how it was obtained, so the service can report per-request cache
/// behavior without racing on the global counters.
struct PreparedLease {
  std::shared_ptr<const core::LowRankMechanism> mechanism;
  /// Served from an existing entry (or by waiting on a concurrent prepare
  /// of the same workload) rather than by running a strategy search.
  bool cache_hit = false;
  /// The prepare this lease paid for warm-started from a cached neighbor.
  bool warm_started = false;
};

/// \brief Thread-safe LRU cache of prepared LowRankMechanism instances
/// keyed by workload fingerprint.
///
/// Concurrency: lookups and bookkeeping hold one mutex; the expensive
/// prepare itself runs OUTSIDE the lock. Concurrent requests for the same
/// fingerprint coalesce — one thread prepares, the rest wait for its result
/// — while requests for different fingerprints prepare in parallel.
class PreparedMechanismCache {
 public:
  explicit PreparedMechanismCache(PreparedCacheOptions options = {});

  /// Returns a prepared mechanism for `workload`, preparing (and caching)
  /// it on miss. The returned mechanism is shared and immutable — call its
  /// const Answer() concurrently from any thread. Errors from preparation
  /// propagate (and are not cached: a later retry re-prepares).
  ///
  /// `token` bounds the work this call may do: the owner of a miss checks
  /// it before starting the strategy search and the solver polls it between
  /// ALM iterations, so an expired deadline aborts within one iteration
  /// with the token's typed status. A cancelled prepare is never cached.
  /// Coalesced waiters poll their OWN token while waiting: a waiter whose
  /// deadline passes abandons the wait (the owner — who may have a later
  /// deadline — keeps preparing, and its result is still cached). When the
  /// owner's prepare fails, every waiter coalesced onto it inherits the
  /// owner's failure status.
  StatusOr<PreparedLease> GetOrPrepare(
      std::shared_ptr<const workload::Workload> workload,
      CancelToken token = {});

  /// Snapshot view assembled from the registry-backed counters.
  PreparedCacheStats stats() const;
  std::size_t size() const;

  /// The registry this cache publishes into (the options' registry, or the
  /// private fallback when none was supplied).
  const obs::MetricRegistry& registry() const { return *registry_; }

 private:
  struct Entry {
    std::shared_ptr<const core::LowRankMechanism> mechanism;
    // Position in lru_ (front = most recent).
    std::list<WorkloadFingerprint>::iterator lru_position;
  };

  // One per in-flight prepare; later arrivals wait on `done`.
  struct InFlight {
    std::mutex mu;
    std::condition_variable done;
    bool finished = false;
    StatusOr<PreparedLease> result{Status::Internal("prepare not finished")};
  };

  // Pops the least-recently-used entries down to capacity. Requires mu_.
  void EvictIfNeeded();

  PreparedCacheOptions options_;

  // Fallback registry when options_.registry is null; registry_ points at
  // whichever one is live. The metric pointers below are stable for the
  // registry's lifetime (obs::MetricRegistry contract).
  obs::MetricRegistry owned_registry_;
  obs::MetricRegistry* registry_ = nullptr;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* warm_misses_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Histogram* prepare_seconds_ = nullptr;
  core::SolverStageMetrics solver_metrics_;

  mutable std::mutex mu_;
  std::unordered_map<WorkloadFingerprint, Entry, WorkloadFingerprintHash>
      entries_;
  std::unordered_map<WorkloadFingerprint, std::shared_ptr<InFlight>,
                     WorkloadFingerprintHash>
      in_flight_;
  std::list<WorkloadFingerprint> lru_;
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_PREPARED_CACHE_H_
