#include "service/budget_manager.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"

namespace lrm::service {

Status BudgetManager::RegisterTenant(const std::string& tenant,
                                     double epsilon_budget) {
  if (!std::isfinite(epsilon_budget) || epsilon_budget <= 0.0) {
    return Status::InvalidArgument(
        "BudgetManager::RegisterTenant: budget must be positive and finite");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] =
      accounts_.emplace(tenant, Account{epsilon_budget, 0.0});
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition(StrFormat(
        "BudgetManager::RegisterTenant: tenant '%s' already registered",
        tenant.c_str()));
  }
  return Status::OK();
}

Status BudgetManager::Charge(const std::string& tenant, double epsilon) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "BudgetManager::Charge: epsilon must be positive and finite");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::FailedPrecondition(StrFormat(
        "BudgetManager::Charge: unknown tenant '%s'", tenant.c_str()));
  }
  Account& account = it->second;
  // Strict accounting: a release the ledger cannot fully cover must not
  // happen at all. The small relative slack absorbs accumulated floating-
  // point round-off so a tenant can actually spend its nominal budget in
  // many small charges without a spurious refusal on the last one.
  const double slack = 1e-12 * account.budget;
  if (account.spent + epsilon > account.budget + slack) {
    return Status::ResourceExhausted(StrFormat(
        "tenant '%s' privacy budget exhausted: requested epsilon %.6g, "
        "remaining %.6g of %.6g",
        tenant.c_str(), epsilon, account.budget - account.spent,
        account.budget));
  }
  account.spent += epsilon;
  return Status::OK();
}

Status BudgetManager::Refund(const std::string& tenant, double epsilon) {
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "BudgetManager::Refund: epsilon must be positive and finite");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::FailedPrecondition(StrFormat(
        "BudgetManager::Refund: unknown tenant '%s'", tenant.c_str()));
  }
  Account& account = it->second;
  // Mirror Charge's slack: a refund of exactly what was charged must
  // succeed even after round-off drift, but anything beyond it is a
  // charge/refund pairing bug — refuse and leave the ledger alone rather
  // than minting budget the tenant never had.
  const double slack = 1e-12 * account.budget;
  if (epsilon > account.spent + slack) {
    over_refunds_.fetch_add(1, std::memory_order_relaxed);
    return Status::FailedPrecondition(StrFormat(
        "BudgetManager::Refund: tenant '%s' refund %.6g exceeds recorded "
        "spend %.6g; ledger untouched",
        tenant.c_str(), epsilon, account.spent));
  }
  account.spent = std::max(0.0, account.spent - epsilon);
  return Status::OK();
}

std::int64_t BudgetManager::over_refund_count() const {
  return over_refunds_.load(std::memory_order_relaxed);
}

StatusOr<double> BudgetManager::Remaining(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::FailedPrecondition(StrFormat(
        "BudgetManager::Remaining: unknown tenant '%s'", tenant.c_str()));
  }
  const double remaining = it->second.budget - it->second.spent;
  return remaining > 0.0 ? remaining : 0.0;
}

StatusOr<double> BudgetManager::Spent(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = accounts_.find(tenant);
  if (it == accounts_.end()) {
    return Status::FailedPrecondition(StrFormat(
        "BudgetManager::Spent: unknown tenant '%s'", tenant.c_str()));
  }
  return it->second.spent;
}

int BudgetManager::tenant_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(accounts_.size());
}

}  // namespace lrm::service
