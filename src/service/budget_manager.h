// Per-tenant privacy-budget accounting under sequential composition.
//
// Every released answer consumes ε from the requesting tenant's lifetime
// budget; k releases at ε₁…ε_k compose to Σεᵢ-DP (sequential composition),
// so the manager simply accumulates spend and refuses — with the typed
// RESOURCE_EXHAUSTED status — any charge that would push a tenant past its
// budget. Preparation (the strategy search) is data-independent and charges
// nothing; see src/service/README.md for the full privacy contract.

#ifndef LRM_SERVICE_BUDGET_MANAGER_H_
#define LRM_SERVICE_BUDGET_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "base/status_or.h"

namespace lrm::service {

/// \brief Thread-safe per-tenant ε ledger.
///
/// A charge is atomic: it either fits entirely within the tenant's
/// remaining budget and is recorded, or the ledger is untouched and the
/// caller gets StatusCode::kResourceExhausted. There is no partial spend,
/// and concurrent charges can never jointly overdraw a tenant.
class BudgetManager {
 public:
  /// Creates a tenant with a lifetime ε budget. The budget must be positive
  /// and finite (an infinite budget would defeat the accounting this class
  /// exists for). Re-registering an existing tenant is an error — budgets
  /// are immutable once granted, so a compromised request path cannot
  /// "re-register" a tenant back to a full budget.
  Status RegisterTenant(const std::string& tenant, double epsilon_budget);

  /// Atomically records a spend of `epsilon` against the tenant.
  ///   * unknown tenant            → FAILED_PRECONDITION
  ///   * epsilon ≤ 0 or non-finite → INVALID_ARGUMENT
  ///   * spend would exceed budget → RESOURCE_EXHAUSTED (ledger untouched)
  Status Charge(const std::string& tenant, double epsilon);

  /// Returns `epsilon` to the tenant. Used by the service when an
  /// already-charged request fails downstream before any noisy answer was
  /// produced — nothing was released, so no budget was consumed.
  ///
  /// A refund exceeding the tenant's recorded spend (beyond the same
  /// floating-point slack Charge tolerates) is refused with
  /// FAILED_PRECONDITION and the ledger is left untouched: an over-refund
  /// means some charge/refund pairing upstream is broken, and silently
  /// clamping it would mint budget the tenant never had while hiding the
  /// bug. Refused refunds are counted in over_refund_count().
  ///   * unknown tenant            → FAILED_PRECONDITION
  ///   * epsilon ≤ 0 or non-finite → INVALID_ARGUMENT
  ///   * epsilon > spent (+slack)  → FAILED_PRECONDITION (ledger untouched)
  Status Refund(const std::string& tenant, double epsilon);

  /// Number of refunds refused because they exceeded the tenant's recorded
  /// spend. Any nonzero value indicates a charge/refund pairing bug in a
  /// caller; the ledger itself stays balanced.
  std::int64_t over_refund_count() const;

  /// Budget remaining; errors on unknown tenants.
  StatusOr<double> Remaining(const std::string& tenant) const;

  /// Total ε spent so far; errors on unknown tenants.
  StatusOr<double> Spent(const std::string& tenant) const;

  /// Number of registered tenants.
  int tenant_count() const;

 private:
  struct Account {
    double budget = 0.0;
    double spent = 0.0;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Account> accounts_;
  std::atomic<std::int64_t> over_refunds_{0};
};

}  // namespace lrm::service

#endif  // LRM_SERVICE_BUDGET_MANAGER_H_
