#include "service/fault_injection.h"

#include <stdexcept>
#include <utility>

namespace lrm::service {

void FaultInjector::FailAt(const std::string& site, Status status,
                           std::int64_t skip, std::int64_t times) {
  std::lock_guard<std::mutex> lock(mu_);
  Plan plan;
  plan.throws = false;
  plan.status = std::move(status);
  plan.skip = skip;
  plan.remaining = times;
  sites_[site].plan = std::move(plan);
}

void FaultInjector::ThrowAt(const std::string& site,
                            const std::string& message, std::int64_t skip,
                            std::int64_t times) {
  std::lock_guard<std::mutex> lock(mu_);
  Plan plan;
  plan.throws = true;
  plan.message = message;
  plan.skip = skip;
  plan.remaining = times;
  sites_[site].plan = std::move(plan);
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it != sites_.end()) it->second.plan.reset();
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
}

Status FaultInjector::Check(const std::string& site) {
  bool should_throw = false;
  std::string message;
  Status result;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Site& s = sites_[site];
    ++s.hits;
    if (!s.plan.has_value()) return Status::OK();
    Plan& plan = *s.plan;
    if (plan.skip > 0) {
      --plan.skip;
      return Status::OK();
    }
    if (plan.remaining == 0) {
      s.plan.reset();
      return Status::OK();
    }
    if (plan.remaining > 0) --plan.remaining;
    ++s.fired;
    if (plan.throws) {
      should_throw = true;
      message = plan.message;
    } else {
      result = plan.status;
    }
    if (plan.remaining == 0) s.plan.reset();
  }
  // Throw outside the lock so the injector stays usable from the catch.
  if (should_throw) throw std::runtime_error(message);
  return result;
}

std::int64_t FaultInjector::hits(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.hits : 0;
}

std::int64_t FaultInjector::fired(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it != sites_.end() ? it->second.fired : 0;
}

}  // namespace lrm::service
