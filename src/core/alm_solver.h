// The stateful ALM decomposition solver behind DecomposeWorkload.
//
// Algorithm 1 of the paper, factored into separately testable phases that
// operate on an explicit AlmState:
//
//   InitializeState                  — warm/cold seed selection, π = 0,
//                                      β = β₀·r, residual bookkeeping
//   RunAlternation                   — the inner B/L alternation ("approx-
//                                      imately solve the subproblem")
//   RecordIterateAndAdvanceSchedule  — outer bookkeeping: best-feasible /
//                                      fallback tracking (the polish
//                                      phase), the β growth schedule and
//                                      the π ascent step
//   Finalize                         — pick best/fallback, Lemma 2
//                                      renormalization, scale/sensitivity
//
// Solve() strings the phases together and — the point of the class —
// RETAINS the winning factors: the next Solve() on a same-shaped workload
// (a new γ, a perturbed W, the next sweep cell) warm-starts from them
// instead of paying a cold SVD initialization. DecomposeWorkload in
// decomposition.h remains the one-shot wrapper over a throwaway solver.

#ifndef LRM_CORE_ALM_SOLVER_H_
#define LRM_CORE_ALM_SOLVER_H_

#include <limits>
#include <utility>

#include "base/cancel.h"
#include "base/status_or.h"
#include "core/decomposition.h"
#include "core/decomposition_init.h"
#include "linalg/matrix.h"
#include "obs/metrics.h"
#include "opt/quadratic_apg.h"

namespace lrm::core {

/// \brief Optional stage-tracing sinks for the solver (obs tier). Null
/// members disable the corresponding site; the struct itself is cheap to
/// copy and holds no ownership — the metrics must outlive the solver's
/// solves (the service keeps them in its MetricRegistry).
struct SolverStageMetrics {
  /// Wall-clock of one outer ALM iteration (alternation + bookkeeping).
  obs::Histogram* iteration_seconds = nullptr;
  /// Outer ALM iterations started, across all solves.
  obs::Counter* iterations = nullptr;
};

/// \brief Checks every DecompositionOptions knob against the workload shape
/// before the solver touches it: negative γ, a rank target outside
/// [0, max(m, n)], non-positive iteration caps or β schedule parameters all
/// return InvalidArgument instead of looping (or dividing) their way into
/// undefined behavior. The rank cap is max(m, n), not min: the paper's §1
/// example uses r = n > m, and noise-on-data is the r = n special case —
/// but L rows beyond a basis of R^n are pure redundancy.
Status ValidateDecompositionOptions(const DecompositionOptions& options,
                                    linalg::Index m, linalg::Index n);

/// \brief Scratch for every temporary the ALM loop touches, allocated once
/// per solver and reused across solves. The loop body writes each buffer
/// through the `*Into` kernels (linalg/matrix_view.h), so iterations after
/// the first are allocation-free apart from the L-solver's returned
/// solution.
struct AlmWorkspace {
  linalg::Matrix rhs;       // βWLᵀ + πLᵀ              (m×r)
  linalg::Matrix rhs_t;     // rhsᵀ                     (r×m)
  linalg::Matrix gram;      // βLLᵀ + I                 (r×r)
  linalg::Matrix b_t;       // Bᵀ from the SPD solve    (r×m)
  linalg::Matrix h;         // βBᵀB                     (r×r)
  linalg::Matrix target;    // βW + π                   (m×n)
  linalg::Matrix t_matrix;  // Bᵀ·target                (r×n)
  linalg::Matrix residual;  // W − BL                   (m×n)
  linalg::Matrix llt, grad, curv;  // gradient-ablation B update
  opt::QuadraticApgWorkspace apg;
};

/// \brief The complete state of one ALM solve: the iterate, the multiplier
/// and penalty, the polish-phase bookkeeping and the workspace. Owned by
/// the caller so the phases are individually drivable (and so a session can
/// inspect progress between phases).
struct AlmState {
  /// Current iterate (B is m×r, L is r×n).
  linalg::Matrix b, l;
  /// Lagrange multiplier π (m×n).
  linalg::Matrix pi;
  /// Current penalty β.
  double beta = 0.0;
  /// Number of intermediate queries r.
  linalg::Index r = 0;
  /// Whether the seed came from retained/supplied factors.
  bool warm_started = false;

  /// Best feasible iterate (τ ≤ γ) by scale — the relaxed program's true
  /// objective — plus the minimum-residual iterate as a fallback.
  linalg::Matrix best_b, best_l;
  double best_scale = std::numeric_limits<double>::infinity();
  double best_residual = std::numeric_limits<double>::infinity();
  linalg::Matrix fallback_b, fallback_l;
  double fallback_residual = std::numeric_limits<double>::infinity();

  /// β/π schedule and polish-phase counters.
  double previous_tau = std::numeric_limits<double>::infinity();
  int feasible_without_improvement = 0;
  int outer_iterations = 0;
  /// Warm-started Lipschitz estimate for the generic-APG ablation path.
  double apg_lipschitz = 1.0;

  AlmWorkspace ws;
};

/// \brief Warm-startable ALM solver for the relaxed program (Formula 8).
///
/// Thread-compatible: one solver per thread (it owns per-solve scratch).
class DecompositionSolver {
 public:
  DecompositionSolver() = default;
  explicit DecompositionSolver(DecompositionOptions options)
      : options_(options) {}

  const DecompositionOptions& options() const { return options_; }

  /// Replaces the options. Retained factors survive: changing γ (or the
  /// iteration budget) between solves is exactly the sweep use case warm
  /// starts exist for. Changing `rank` to a value other than the retained
  /// r forces the next solve cold.
  void set_options(const DecompositionOptions& options) {
    options_ = options;
  }

  /// Runs Algorithm 1 on `w`. Seeds from, in order of preference: factors
  /// supplied via SeedFactors() (shape mismatch with `w` is an error),
  /// factors retained from the previous successful solve when they conform
  /// to `w` and to options().rank (silently falling back to a cold start
  /// otherwise), or a cold spectrum initialization.
  ///
  /// Session warm starts resume the full ALM state — factors AND the dual
  /// state (π, β, the APG curvature estimate) — so re-solving a converged
  /// problem is an exact continuation that plateaus within polish_patience
  /// outer iterations instead of replaying the cold trajectory. Explicit
  /// seeds carry no dual state; the multiplier is synthesized from the
  /// B-update stationarity condition π·Lᵀ ≈ B (one r×r SPD solve), which
  /// pins the seed in place the same way.
  StatusOr<Decomposition> Solve(const linalg::Matrix& w);

  /// Seeds the NEXT Solve() with caller-supplied factors (consumed by that
  /// solve). B must be m×r and L r×n for the workload passed to Solve();
  /// the mismatch is diagnosed there. Returns InvalidArgument here when
  /// b.cols() != l.rows() or the factors are empty/non-finite.
  Status SeedFactors(linalg::Matrix b, linalg::Matrix l);

  /// True once a successful solve has left factors to warm-start from.
  bool has_retained_factors() const { return has_retained_; }

  /// Drops retained factors and any pending seed: the next solve is cold.
  void Reset();

  /// Drops only a pending SeedFactors() seed, keeping retained factors.
  void ClearSeed();

  /// Arms cooperative cancellation for subsequent solves: the token is
  /// polled at initialization and between ALM iterations (outer and
  /// inner), so a Solve() whose token expires aborts within one iteration
  /// with the token's typed kDeadlineExceeded / kCancelled status.
  /// Retained factors from earlier successful solves survive the abort; an
  /// aborted solve retains nothing. A default-constructed token (the
  /// default) disables cancellation; callers serving multiple requests
  /// through one solver must re-arm (or clear) per request, since the
  /// token persists across solves.
  void set_cancel_token(CancelToken token) {
    cancel_token_ = std::move(token);
  }
  const CancelToken& cancel_token() const { return cancel_token_; }

  /// Arms per-iteration stage tracing for subsequent Solve() calls: each
  /// outer ALM iteration is timed into `metrics.iteration_seconds` and
  /// counted in `metrics.iterations`. Default (all-null) disables tracing;
  /// the referenced metrics must outlive the solver's solves.
  void set_stage_metrics(const SolverStageMetrics& metrics) {
    stage_metrics_ = metrics;
  }
  const SolverStageMetrics& stage_metrics() const { return stage_metrics_; }

  /// Whether the most recent Solve() warm-started.
  bool last_was_warm() const { return last_was_warm_; }

  // --- Solver phases. Solve() is the normal entry point; the phases are
  // public so tests (and future incremental-update drivers) can run them
  // individually. A manual phase loop reproduces Solve() except for factor
  // retention, which only Solve() performs. ---

  /// Builds the initial state for `w`: applies the same warm/cold seed
  /// selection as Solve() (consuming any pending SeedFactors), zeroes π,
  /// sets β = beta_initial·r and primes the residual bookkeeping.
  StatusOr<AlmState> InitializeState(const linalg::Matrix& w);

  /// One inner pass: alternates the closed-form B update (Eq. 9) and the
  /// Nesterov-APG L update (Formula 10) until the subproblem objective J
  /// stalls or max_inner_iterations is hit.
  Status RunAlternation(const linalg::Matrix& w, AlmState* state);

  enum class OuterAction {
    kContinue,  // schedule advanced; run another alternation
    kStop,      // feasible plateau or β cap reached; finalize
  };

  /// Outer bookkeeping (Algorithm 1 lines 7–13): measures τ = ‖W − BL‖_F,
  /// updates the best-feasible/fallback iterates and the polish patience
  /// counter, grows β on schedule or stagnation, and takes the π ascent
  /// step.
  OuterAction RecordIterateAndAdvanceSchedule(const linalg::Matrix& w,
                                              AlmState* state);

  /// Extracts the winning iterate (best feasible, else minimum residual),
  /// applies the Lemma 2 renormalization and fills scale/sensitivity.
  /// `state` is consumed.
  Decomposition Finalize(AlmState* state) const;

 private:
  DecompositionOptions options_;

  // Factors retained from the last successful Solve() (soft seed), plus
  // the dual state of the iterate they came from so a session warm start
  // continues the ALM trajectory instead of restarting it.
  linalg::Matrix retained_b_, retained_l_;
  linalg::Matrix retained_pi_;
  double retained_beta_ = 0.0;
  double retained_lipschitz_ = 1.0;
  bool has_retained_ = false;

  // One-shot caller-supplied seed (hard seed; mismatch is an error).
  linalg::Matrix seed_b_, seed_l_;
  bool has_seed_ = false;

  CancelToken cancel_token_;
  SolverStageMetrics stage_metrics_;

  bool last_was_warm_ = false;
};

}  // namespace lrm::core

#endif  // LRM_CORE_ALM_SOLVER_H_
