// Workload matrix decomposition — the heart of the Low-Rank Mechanism
// (paper §4–§5).
//
// Finds B (m×r) and L (r×n) solving the relaxed program (Formula 8):
//
//     min  ½·tr(BᵀB)   s.t.  ‖W − B·L‖_F ≤ γ,   ‖L·ⱼ‖₁ ≤ 1 ∀j
//
// via the inexact Augmented Lagrangian Method of Algorithm 1: the linear
// constraint is dualized with multiplier π and penalty β, and each
// subproblem
//
//     J(B, L) = ½ tr(BᵀB) + <π, W − BL> + β/2 ‖W − BL‖²_F
//
// is approximately minimized by alternating
//   * a closed-form B update  B = (βWLᵀ + πLᵀ)(βLLᵀ + I)⁻¹   (Eq. 9), and
//   * a Nesterov accelerated projected-gradient solve for L (Algorithm 2)
//     with per-column L1-ball projection (Formula 11, Duchi et al.).
// β doubles every `beta_update_every` outer iterations and π takes the
// standard ascent step π ← π + β(W − BL).

#ifndef LRM_CORE_DECOMPOSITION_H_
#define LRM_CORE_DECOMPOSITION_H_

#include <cstdint>

#include "base/status_or.h"
#include "linalg/matrix.h"
#include "opt/apg.h"

namespace lrm::core {

/// \brief Smallest min(m, n) at which DecompositionOptions::
/// use_randomized_init switches the automatic-rank path to a sketched SVD.
/// Below this the exact SVD is already cheap and strictly more accurate.
inline constexpr linalg::Index kRandomizedInitMinDim = 192;

/// \brief Tunables of the ALM decomposition (defaults follow the paper).
struct DecompositionOptions {
  /// Number of intermediate queries r (columns of B / rows of L).
  /// 0 selects the paper's default r = ⌈1.2·rank(W)⌉ (§6.1).
  linalg::Index rank = 0;

  /// Frobenius tolerance γ of the relaxed program (Formula 8). The paper
  /// finds accuracy insensitive to γ across 1e-4…10 (Figure 2).
  double gamma = 0.01;

  /// Initial penalty, scaled by r: β⁽⁰⁾ = beta_initial·r. The B-update
  /// shrinks the exact-SVD initialization by the factor β/(β+r) (because
  /// L₀L₀ᵀ ≈ I/r), so the penalty must start at the scale of r or the first
  /// iterations walk away from the feasible initializer into a degenerate
  /// alternating-least-squares basin that no later β can escape (see
  /// decomposition.cc for the orthogonality argument).
  double beta_initial = 1.0;
  /// Multiplicative growth of β (Algorithm 1 doubles).
  double beta_growth = 2.0;
  /// Outer iterations between scheduled β updates (Algorithm 1: every 10).
  int beta_update_every = 10;
  /// Additionally grow β whenever the residual shrank by less than this
  /// factor between outer iterations (stagnation rescue).
  double stagnation_ratio = 0.95;
  /// Terminate once β exceeds this ("β sufficiently large", line 8).
  double beta_max = 1e10;

  /// Cap on outer (ALM) iterations.
  int max_outer_iterations = 200;
  /// B/L alternations per subproblem ("approximately solve", line 4).
  int max_inner_iterations = 8;
  /// Relative change of the subproblem objective that ends the inner loop.
  double inner_tolerance = 1e-6;

  /// Iteration cap of the Nesterov L-subproblem solver.
  int l_max_iterations = 40;
  /// Movement tolerance of the L-subproblem solver.
  double l_tolerance = 1e-9;
  /// Use the specialized exact-Lipschitz quadratic solver for the
  /// L-subproblem (one H·L product per iteration). The generic
  /// backtracking APG path is kept for the optimizer ablation benchmark.
  bool use_fast_l_solver = true;

  /// Consecutive feasible iterations without a ≥0.1% objective improvement
  /// before the polish phase stops.
  int polish_patience = 6;

  /// Relative singular-value cutoff when estimating rank(W) for the
  /// automatic r.
  double rank_tolerance = 1e-9;

  /// Initialize (B, L) — and, when rank == 0, estimate rank(W) — from a
  /// randomized sketch (Halko et al.) instead of a full SVD. Engages only
  /// when W is large (min(m, n) ≥ kRandomizedInitMinDim, or an explicit
  /// small rank target); small problems keep the exact path, and the exact
  /// path also remains the fallback when the sketch cannot resolve the
  /// spectrum (near-full-rank W). Defaults on: at n = 2048 the exact
  /// eigendecomposition dominates the whole decomposition's wall clock.
  bool use_randomized_init = true;

  /// Seed for the randomized SVD used to initialize (B, L) at scale.
  std::uint64_t seed = 7;

  /// If false, B is updated by a gradient step instead of the closed form —
  /// kept for the optimizer ablation benchmark.
  bool use_closed_form_b = true;
};

/// \brief Result of DecomposeWorkload.
struct Decomposition {
  /// Recombination matrix B (m×r).
  linalg::Matrix b;
  /// Strategy matrix L (r×n) with every column L1-norm ≤ 1.
  linalg::Matrix l;

  /// Query scale Φ(B, L) = Σ Bᵢⱼ² (Definition 1).
  double scale = 0.0;
  /// Query sensitivity Δ(B, L) = maxⱼ Σᵢ |Lᵢⱼ| (Definition 2); ≤ 1.
  double sensitivity = 0.0;
  /// Final constraint residual ‖W − BL‖_F.
  double residual = 0.0;
  /// Outer ALM iterations used.
  int outer_iterations = 0;
  /// True iff the residual met γ (as opposed to hitting the β or iteration
  /// caps).
  bool converged = false;
  /// True iff the solve was seeded from retained/supplied factors instead
  /// of a cold spectrum initialization (see core/alm_solver.h).
  bool warm_started = false;

  /// Lemma 1: expected squared noise error 2·Φ·Δ²/ε² of the mechanism that
  /// publishes B(LD + Lap(Δ/ε)^r). Excludes the structural error of a
  /// non-zero residual (see Theorem 3 helpers in core/theory.h).
  double ExpectedNoiseError(double epsilon) const {
    return 2.0 * scale * sensitivity * sensitivity / (epsilon * epsilon);
  }

  /// Per-query noise variances: entry i is Var[(B·Lap(Δ/ε)^r)_i] =
  /// 2·Δ²·‖row_i(B)‖²/ε² — how the total of ExpectedNoiseError splits
  /// across the m queries (the §1 examples reason per query this way).
  linalg::Vector PerQueryNoiseVariance(double epsilon) const;
};

/// \brief Runs Algorithm 1 on workload matrix `w` — a one-shot (always
/// cold) wrapper over core/alm_solver.h's DecompositionSolver, which is the
/// API to hold on to when solving related workloads or sweeping γ: its
/// retained factors warm-start subsequent solves.
///
/// Returns a feasible decomposition even when the iteration caps are hit
/// (inspect Decomposition::converged / residual); only invalid inputs and
/// numerical breakdown produce a non-OK status.
StatusOr<Decomposition> DecomposeWorkload(
    const linalg::Matrix& w, const DecompositionOptions& options = {});

}  // namespace lrm::core

#endif  // LRM_CORE_DECOMPOSITION_H_
