#include "core/low_rank_mechanism.h"

#include "linalg/random_matrix.h"

namespace lrm::core {

using linalg::Vector;

Status LowRankMechanism::PrepareImpl() {
  LRM_ASSIGN_OR_RETURN(
      decomposition_,
      DecomposeWorkload(workload().matrix(), options_.decomposition));
  return Status::OK();
}

StatusOr<Vector> LowRankMechanism::AnswerImpl(const Vector& data,
                                              double epsilon,
                                              rng::Engine& engine) const {
  // Intermediate answers L·D with Laplace noise at the decomposition's
  // actual sensitivity (≤ 1 by the constraint; using the exact value never
  // weakens privacy and never wastes budget).
  Vector intermediate = decomposition_.l * data;
  intermediate += linalg::RandomLaplaceVector(
      engine, intermediate.size(), decomposition_.sensitivity / epsilon);
  return decomposition_.b * intermediate;
}

std::optional<double> LowRankMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return decomposition_.ExpectedNoiseError(epsilon);
}

double LowRankMechanism::StructuralError(const Vector& data) const {
  LRM_CHECK(prepared());
  const Vector exact = workload().Answer(data);
  const Vector approx = decomposition_.b * (decomposition_.l * data);
  return linalg::SquaredNorm(exact - approx);
}

}  // namespace lrm::core
