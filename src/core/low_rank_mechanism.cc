#include "core/low_rank_mechanism.h"

#include <utility>

#include "linalg/random_matrix.h"

namespace lrm::core {

using linalg::Vector;

Status LowRankMechanism::PrepareImpl() {
  // A stateless (non-warm) prepare must not be influenced by earlier
  // workloads, so the solver is wiped unless this instance is a session or
  // an explicit hint was just seeded.
  if (!options_.warm_start && !hint_pending_) solver_.Reset();
  hint_pending_ = false;
  solver_.set_options(options_.decomposition);
  LRM_ASSIGN_OR_RETURN(decomposition_, solver_.Solve(workload().matrix()));
  return Status::OK();
}

Status LowRankMechanism::PrepareWithHint(
    std::shared_ptr<const workload::Workload> workload,
    const Decomposition& hint) {
  LRM_RETURN_IF_ERROR(solver_.SeedFactors(hint.b, hint.l));
  hint_pending_ = true;
  const Status status = Prepare(std::move(workload));
  // Prepare may fail before PrepareImpl consumes the seed; a stale hard
  // seed must not poison the session's next solve.
  hint_pending_ = false;
  if (!status.ok()) solver_.ClearSeed();
  return status;
}

Status LowRankMechanism::PrepareWithHint(const workload::Workload& workload,
                                         const Decomposition& hint) {
  return PrepareWithHint(
      std::make_shared<const workload::Workload>(workload), hint);
}

StatusOr<Vector> LowRankMechanism::AnswerImpl(const Vector& data,
                                              double epsilon,
                                              rng::Engine& engine) const {
  // Intermediate answers L·D with Laplace noise at the decomposition's
  // actual sensitivity (≤ 1 by the constraint; using the exact value never
  // weakens privacy and never wastes budget).
  Vector intermediate = decomposition_.l * data;
  intermediate += linalg::RandomLaplaceVector(
      engine, intermediate.size(), decomposition_.sensitivity / epsilon);
  return decomposition_.b * intermediate;
}

std::optional<double> LowRankMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return decomposition_.ExpectedNoiseError(epsilon);
}

double LowRankMechanism::StructuralError(const Vector& data) const {
  LRM_CHECK(prepared());
  const Vector exact = workload().Answer(data);
  const Vector approx = decomposition_.b * (decomposition_.l * data);
  return linalg::SquaredNorm(exact - approx);
}

}  // namespace lrm::core
