#include "core/low_rank_mechanism.h"

#include <utility>

#include "linalg/random_matrix.h"

namespace lrm::core {

using linalg::Vector;

Status LowRankMechanism::PrepareImpl() {
  // A stateless (non-warm) prepare must not be influenced by earlier
  // workloads, so the solver is wiped unless this instance is a session or
  // an explicit hint was just seeded.
  if (!options_.warm_start && !hint_pending_) solver_.Reset();
  hint_pending_ = false;
  solver_.set_options(options_.decomposition);
  LRM_ASSIGN_OR_RETURN(decomposition_, solver_.Solve(workload().matrix()));
  return Status::OK();
}

namespace {

// The hint must already conform to W (B m×r, L r×n): the solver would
// diagnose the mismatch inside Solve(), but callers paying up-front costs
// (the lvalue overload's deep copy) need the answer before that.
Status ValidateHintShape(const workload::Workload& workload,
                         const Decomposition& hint) {
  if (hint.b.rows() != workload.num_queries() ||
      hint.l.cols() != workload.domain_size() ||
      hint.b.cols() != hint.l.rows()) {
    return Status::InvalidArgument(
        "LowRankMechanism::PrepareWithHint: hint factors do not conform to "
        "the workload shape");
  }
  return Status::OK();
}

}  // namespace

Status LowRankMechanism::PrepareWithHint(
    std::shared_ptr<const workload::Workload> workload,
    const Decomposition& hint) {
  LRM_RETURN_IF_ERROR(ValidateWorkload(workload.get()));
  LRM_RETURN_IF_ERROR(ValidateHintShape(*workload, hint));
  LRM_RETURN_IF_ERROR(solver_.SeedFactors(hint.b, hint.l));
  return PrepareSeeded(std::move(workload));
}

Status LowRankMechanism::PrepareWithHint(const workload::Workload& workload,
                                         const Decomposition& hint) {
  // Re-preparing the workload this mechanism already holds (a new hint, a
  // new γ) must reuse the bound shared handle instead of deep-copying W.
  if (workload_handle() && workload_handle().get() == &workload) {
    return PrepareWithHint(workload_handle(), hint);
  }
  // Validate everything cheap BEFORE the one expensive step: a malformed
  // workload or non-conforming hint must not pay a full W copy just to be
  // rejected.
  LRM_RETURN_IF_ERROR(ValidateWorkload(&workload));
  LRM_RETURN_IF_ERROR(ValidateHintShape(workload, hint));
  LRM_RETURN_IF_ERROR(solver_.SeedFactors(hint.b, hint.l));
  return PrepareSeeded(std::make_shared<const workload::Workload>(workload));
}

Status LowRankMechanism::PrepareSeeded(
    std::shared_ptr<const workload::Workload> workload) {
  hint_pending_ = true;
  const Status status = Prepare(std::move(workload));
  // Prepare may fail before PrepareImpl consumes the seed; a stale hard
  // seed must not poison the session's next solve.
  hint_pending_ = false;
  if (!status.ok()) solver_.ClearSeed();
  return status;
}

StatusOr<Vector> LowRankMechanism::AnswerImpl(const Vector& data,
                                              double epsilon,
                                              rng::Engine& engine) const {
  // Intermediate answers L·D with Laplace noise at the decomposition's
  // actual sensitivity (≤ 1 by the constraint; using the exact value never
  // weakens privacy and never wastes budget).
  Vector intermediate = decomposition_.l * data;
  intermediate += linalg::RandomLaplaceVector(
      engine, intermediate.size(), decomposition_.sensitivity / epsilon);
  return decomposition_.b * intermediate;
}

std::optional<double> LowRankMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return decomposition_.ExpectedNoiseError(epsilon);
}

double LowRankMechanism::StructuralError(const Vector& data) const {
  LRM_CHECK(prepared());
  const Vector exact = workload().Answer(data);
  const Vector approx = decomposition_.b * (decomposition_.l * data);
  return linalg::SquaredNorm(exact - approx);
}

}  // namespace lrm::core
