// Initialization strategies for the ALM decomposition solver: where the
// first (B, L) iterate comes from.
//
// Three sources, in the order the solver prefers them:
//
//  * warm start   — factors retained from a prior solve (or supplied by the
//                   caller), rescaled onto the constraint boundary. Skips
//                   the SVD/rank-estimation entirely; the seam γ/ε sweeps
//                   and workload-delta updates build on.
//  * sketched SVD — randomized range finder (Halko et al.) that estimates
//                   rank(W) and produces the top-r triplets in one pass;
//                   engages at scale (see kRandomizedInitMinDim). The
//                   rank search doubles the sketch width on saturation,
//                   reusing (never redrawing) the already-drawn Gaussian
//                   test columns across attempts.
//  * exact SVD    — small problems and the fallback when the sketch cannot
//                   resolve the spectrum tail. Small shapes take the full
//                   Jacobi SVD; at size the fallback is partial-spectrum
//                   (linalg::PartialGramSvd / PartialGramSvdWithRank):
//                   Sturm-count rank search plus inverse iteration on the
//                   reduced Gram matrix produce exactly the top triplets
//                   the Lemma-3 construction reads, in O(p²·r) after the
//                   blocked reduction instead of a full O(p³) eigensolve.
//
// Rank-tolerance convention (see svd.h NumericalRank): every tolerance is
// RELATIVE to the top singular value. Spectra that came through a Gram
// factorization (the sketch confirmation and the at-size exact fallback)
// clamp the tolerance through linalg::GramRankTolerance; the small-shape
// Jacobi path uses options.rank_tolerance raw.

#ifndef LRM_CORE_DECOMPOSITION_INIT_H_
#define LRM_CORE_DECOMPOSITION_INIT_H_

#include "base/status_or.h"
#include "core/decomposition.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"

namespace lrm::core {

/// \brief A starting iterate for the ALM loop, plus the provenance the
/// solver records in the result.
struct InitFactors {
  /// Recombination seed B₀ (m×r).
  linalg::Matrix b;
  /// Strategy seed L₀ (r×n), every column inside the unit L1 ball.
  linalg::Matrix l;
  /// Number of intermediate queries r = b.cols() = l.rows().
  linalg::Index rank = 0;
  /// True when seeded from prior factors rather than the spectrum of W.
  bool warm = false;
};

/// \brief Builds the diagonally-scaled SVD initialization B₀ = U·Σ·D⁻¹,
/// L₀ = D·Vᵀ with d_k ∝ √λ_k (padded with zeros when r exceeds the
/// available spectrum).
///
/// Lemma 3 uses the flat scaling D = I/√r, giving tr(B₀ᵀB₀) = r·Σλ².
/// Optimizing D under the Cauchy–Schwarz surrogate of the L1 constraint
/// (‖column‖₁ ≤ ‖d‖₂ since V's rows have 2-norm ≤ 1) gives d_k ∝ √λ_k and
/// tr(B₀ᵀB₀) = (Σλ)², which is never worse (Cauchy–Schwarz) and is ~r/log²r
/// better for the 1/k spectra of range workloads. Feasibility is exact for
/// ‖d‖₂ ≤ 1, and ColdInit renormalizes to Δ(L₀) = 1 anyway (Lemma 2).
void InitializeFromSvd(const linalg::SvdResult& svd, linalg::Index r,
                       linalg::Index m, linalg::Index n, linalg::Matrix& b,
                       linalg::Matrix& l);

/// \brief Sketched initialization for the automatic-rank path: grows a
/// randomized SVD until the spectrum tail drops below the rank cutoff, so
/// both the rank estimate and the (B₀, L₀) triplets come out of one sketch.
/// Widening is append-only: one Gaussian engine feeds a persistent test
/// matrix and each retry draws only the new columns, so the columns are
/// deterministic and independent of the doubling schedule. Returns false
/// (leaving `svd`/`r` untouched) when the sketch hits min(m, n)/2 without
/// resolving the tail — a near-full-rank W, where the exact (partial-
/// spectrum) path is the right tool anyway.
bool TrySketchedInit(const linalg::Matrix& w,
                     const DecompositionOptions& options,
                     linalg::SvdResult* svd, linalg::Index* r);

/// \brief Cold initialization: chooses r (options.rank, or the automatic
/// ⌈1.2·rank(W)⌉), computes the spectrum (sketched or exact per the
/// options), builds the Lemma-3 factors and tightens them onto the
/// constraint boundary (Δ(L₀) = 1, Lemma 2 rescaling).
StatusOr<InitFactors> ColdInit(const linalg::Matrix& w,
                               const DecompositionOptions& options);

/// \brief Warm initialization from prior or caller-supplied factors: checks
/// conformance and finiteness, then rescales (Lemma 2) when Δ(L) > 1 so the
/// seed enters the loop feasible w.r.t. the sensitivity constraint. The
/// factors are taken by value — pass copies to keep the originals.
StatusOr<InitFactors> WarmInit(linalg::Matrix b, linalg::Matrix l);

}  // namespace lrm::core

#endif  // LRM_CORE_DECOMPOSITION_INIT_H_
