#include "core/theory.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"

namespace lrm::core {

using linalg::Index;
using linalg::Vector;

double Lemma3UpperBound(const Vector& singular_values, Index r,
                        double epsilon) {
  LRM_CHECK_GT(r, 0);
  LRM_CHECK_GT(epsilon, 0.0);
  const Index k = std::min(r, singular_values.size());
  double sum_sq = 0.0;
  for (Index i = 0; i < k; ++i) {
    sum_sq += singular_values[i] * singular_values[i];
  }
  return sum_sq * static_cast<double>(r) / (epsilon * epsilon);
}

double Lemma4LowerBound(const Vector& singular_values, Index r,
                        double epsilon) {
  LRM_CHECK_GT(r, 0);
  LRM_CHECK_GT(epsilon, 0.0);
  LRM_CHECK_GE(singular_values.size(), r);
  // log Vol factor: (2/r)·(r·log 2 − log r! + Σ log λₖ).
  double log_product = 0.0;
  for (Index i = 0; i < r; ++i) {
    if (singular_values[i] <= 0.0) return 0.0;  // degenerate body
    log_product += std::log(singular_values[i]);
  }
  const double rd = static_cast<double>(r);
  const double log_ball = rd * std::log(2.0) - std::lgamma(rd + 1.0);
  const double log_bound = (2.0 / rd) * (log_ball + log_product) +
                           3.0 * std::log(rd) - 2.0 * std::log(epsilon);
  return std::exp(log_bound);
}

StatusOr<double> Theorem2ApproximationRatio(const Vector& singular_values,
                                            Index r) {
  if (r <= 5) {
    return Status::InvalidArgument(StrFormat(
        "Theorem2ApproximationRatio: needs r > 5, got %td", r));
  }
  if (singular_values.size() < r) {
    return Status::InvalidArgument(
        "Theorem2ApproximationRatio: spectrum shorter than r");
  }
  const double lambda_1 = singular_values[0];
  const double lambda_r = singular_values[r - 1];
  if (lambda_r <= 0.0) {
    return Status::InvalidArgument(
        "Theorem2ApproximationRatio: λ_r must be positive");
  }
  const double c = lambda_1 / lambda_r;
  return (c / 4.0) * (c / 4.0) * static_cast<double>(r);
}

double Theorem3ErrorBound(double trace_btb, double residual,
                          double data_squared_sum, double epsilon) {
  LRM_CHECK_GT(epsilon, 0.0);
  LRM_CHECK_GE(residual, 0.0);
  LRM_CHECK_GE(data_squared_sum, 0.0);
  return 2.0 * trace_btb / (epsilon * epsilon) +
         residual * residual * data_squared_sum;
}

}  // namespace lrm::core
