#include "core/alm_solver.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "base/logging.h"
#include "base/string_util.h"
#include "linalg/cholesky.h"
#include "linalg/matrix_view.h"
#include "obs/stage_timer.h"
#include "opt/apg.h"
#include "opt/l1_projection.h"

namespace lrm::core {

using linalg::Index;
using linalg::Matrix;

namespace {

double InnerProduct(const Matrix& a, const Matrix& b) {
  double result = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) result += pa[i] * pb[i];
  return result;
}

// ws.residual = W − B·L without materializing the product.
void ResidualInto(const Matrix& w, const Matrix& b, const Matrix& l,
                  Matrix* residual) {
  *residual = w;
  linalg::GemmInto(-1.0, b, false, l, false, 1.0, residual);
}

// Synthesizes a multiplier for a seed that carries no dual state: the
// minimum-norm π with π·Lᵀ = B, i.e. π = B·(LLᵀ + δI)⁻¹·L. At a feasible
// seed (W ≈ BL) this makes the closed-form B update stationary —
// B_new = (βWLᵀ + πLᵀ)(βLLᵀ + I)⁻¹ ≈ (βBLLᵀ + B)(βLLᵀ + I)⁻¹ = B — so the
// first iterations polish the seed instead of collapsing it the way π = 0
// would (the ridge shrinks B until β catches up). Returns false on a
// numerically degenerate L; the caller falls back to π = 0.
bool SynthesizeMultiplier(const Matrix& b, const Matrix& l, Matrix* pi) {
  Matrix gram = linalg::GramAAt(l);  // LLᵀ (r×r)
  double trace = 0.0;
  for (Index d = 0; d < gram.rows(); ++d) trace += gram(d, d);
  const double ridge =
      1e-10 * std::max(1.0, trace / static_cast<double>(
                                       std::max<Index>(gram.rows(), 1)));
  for (Index d = 0; d < gram.rows(); ++d) gram(d, d) += ridge;
  StatusOr<Matrix> x = linalg::SolveSpd(gram, l);  // (LLᵀ+δI)⁻¹L (r×n)
  if (!x.ok()) return false;
  *pi = b * *x;
  return true;
}

}  // namespace

Status ValidateDecompositionOptions(const DecompositionOptions& options,
                                    Index m, Index n) {
  if (options.gamma < 0.0) {
    return Status::InvalidArgument(
        "DecompositionOptions: gamma must be >= 0");
  }
  // r may exceed min(m, n) — the paper's §1 example itself uses r = n > m,
  // and noise-on-data is the r = n special case — but rows of L beyond a
  // basis of R^n buy nothing the L1 budget split cannot, so r > max(m, n)
  // is a caller error, not a strategy.
  if (options.rank < 0 || options.rank > std::max(m, n)) {
    return Status::InvalidArgument(StrFormat(
        "DecompositionOptions: rank %td outside [0, max(m, n) = %td] "
        "(0 selects the automatic r = ceil(1.2 * rank(W)))",
        options.rank, std::max(m, n)));
  }
  if (options.beta_initial <= 0.0 || options.beta_growth <= 1.0) {
    return Status::InvalidArgument(
        "DecompositionOptions: beta_initial must be > 0 and beta_growth "
        "> 1");
  }
  if (options.beta_max < options.beta_initial) {
    return Status::InvalidArgument(
        "DecompositionOptions: beta_max must be >= beta_initial");
  }
  if (options.beta_update_every < 1) {
    return Status::InvalidArgument(
        "DecompositionOptions: beta_update_every must be >= 1");
  }
  if (options.stagnation_ratio <= 0.0) {
    return Status::InvalidArgument(
        "DecompositionOptions: stagnation_ratio must be > 0");
  }
  if (options.max_outer_iterations < 1 || options.max_inner_iterations < 1 ||
      options.l_max_iterations < 1) {
    return Status::InvalidArgument(
        "DecompositionOptions: iteration caps (max_outer_iterations, "
        "max_inner_iterations, l_max_iterations) must be >= 1");
  }
  if (options.inner_tolerance < 0.0 || options.l_tolerance < 0.0) {
    return Status::InvalidArgument(
        "DecompositionOptions: tolerances must be >= 0");
  }
  if (options.polish_patience < 1) {
    return Status::InvalidArgument(
        "DecompositionOptions: polish_patience must be >= 1");
  }
  if (options.rank_tolerance <= 0.0) {
    return Status::InvalidArgument(
        "DecompositionOptions: rank_tolerance must be > 0");
  }
  return Status::OK();
}

Status DecompositionSolver::SeedFactors(Matrix b, Matrix l) {
  // WarmInit validates conformance and finiteness and restores feasibility;
  // running it here surfaces bad seeds at the call site instead of at the
  // next Solve().
  LRM_ASSIGN_OR_RETURN(InitFactors init, WarmInit(std::move(b), std::move(l)));
  seed_b_ = std::move(init.b);
  seed_l_ = std::move(init.l);
  has_seed_ = true;
  return Status::OK();
}

void DecompositionSolver::Reset() {
  retained_b_ = Matrix();
  retained_l_ = Matrix();
  retained_pi_ = Matrix();
  retained_beta_ = 0.0;
  retained_lipschitz_ = 1.0;
  has_retained_ = false;
  last_was_warm_ = false;
  ClearSeed();
}

void DecompositionSolver::ClearSeed() {
  seed_b_ = Matrix();
  seed_l_ = Matrix();
  has_seed_ = false;
}

StatusOr<AlmState> DecompositionSolver::InitializeState(const Matrix& w) {
  // Cheapest place to honor a deadline that expired while the request sat
  // in a queue: before the (potentially expensive) SVD initialization.
  LRM_RETURN_IF_ERROR(
      cancel_token_.Check("DecompositionSolver::InitializeState"));
  const Index m = w.rows();
  const Index n = w.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("DecompositionSolver: empty workload");
  }
  if (!linalg::AllFinite(w)) {
    return Status::InvalidArgument(
        "DecompositionSolver: workload contains NaN or Inf");
  }
  LRM_RETURN_IF_ERROR(ValidateDecompositionOptions(options_, m, n));

  InitFactors init;
  bool continue_dual_state = false;
  if (has_seed_) {
    // Hard seed: the caller asserted these factors fit this workload.
    has_seed_ = false;
    if (seed_b_.rows() != m || seed_l_.cols() != n) {
      const Status status = Status::InvalidArgument(StrFormat(
          "DecompositionSolver: seed factors are %td×%td · %td×%td but the "
          "workload is %td×%td",
          seed_b_.rows(), seed_b_.cols(), seed_l_.rows(), seed_l_.cols(), m,
          n));
      seed_b_ = Matrix();
      seed_l_ = Matrix();
      return status;
    }
    if (seed_b_.cols() >
        static_cast<Index>(
            std::ceil(1.2 * static_cast<double>(std::max(m, n))))) {
      // Same resource guard ValidateDecompositionOptions applies to the
      // rank knob, widened by the automatic-rank headroom so a hint from
      // any legitimate prior solve of a same-shaped workload passes.
      const Status status = Status::InvalidArgument(StrFormat(
          "DecompositionSolver: seed rank %td exceeds the solver's rank "
          "ceiling for a %td×%td workload",
          seed_b_.cols(), m, n));
      seed_b_ = Matrix();
      seed_l_ = Matrix();
      return status;
    }
    LRM_ASSIGN_OR_RETURN(init,
                         WarmInit(std::move(seed_b_), std::move(seed_l_)));
    seed_b_ = Matrix();
    seed_l_ = Matrix();
  } else if (has_retained_ && retained_b_.rows() == m &&
             retained_l_.cols() == n &&
             (options_.rank == 0 || options_.rank == retained_b_.cols())) {
    // Soft seed: reuse the previous solution where it conforms, fall back
    // to a cold start otherwise (a session re-bound to a differently
    // shaped workload must keep working).
    LRM_ASSIGN_OR_RETURN(init, WarmInit(retained_b_, retained_l_));
    continue_dual_state = true;
  } else {
    LRM_ASSIGN_OR_RETURN(init, ColdInit(w, options_));
  }

  AlmState state;
  state.r = init.rank;
  state.warm_started = init.warm;
  state.b = std::move(init.b);
  state.l = std::move(init.l);

  // Failure mode the β schedule guards against: if β starts too small, the
  // first B-update (ridge) collapses B, the constrained L-update then parks
  // L at a vertex of the L1 ball, and at that mutual fixed point the
  // residual R = W − BL satisfies BᵀR = 0 and RLᵀ = 0 — the multiplier π
  // (a scalar multiple of R) becomes invisible to both updates and the
  // iteration stalls forever. Starting at β = O(r) and growing β whenever
  // the residual stagnates keeps the iterate in the feasible basin.
  //
  // Warm starts face the dual failure: restarting a *polished* seed at
  // (π = 0, β = β₀·r) makes the first ridge B-update walk off the seed and
  // replays the whole cold trajectory. A session continuation therefore
  // resumes the retained (π, β, Lipschitz); an explicit seed synthesizes
  // the stationary multiplier instead.
  //
  // A retained β that saturated beta_max is NOT resumable: the schedule
  // check would stop every subsequent solve after one outer iteration,
  // permanently. Such a session re-enters through the synthesized-
  // multiplier path — warm factors, fresh penalty schedule.
  if (continue_dual_state && retained_beta_ < options_.beta_max) {
    state.pi = retained_pi_;
    state.beta = retained_beta_;
    state.apg_lipschitz = retained_lipschitz_;
  } else if (state.warm_started &&
             SynthesizeMultiplier(state.b, state.l, &state.pi)) {
    state.beta = options_.beta_initial *
                 static_cast<double>(std::max<Index>(state.r, 1));
  } else {
    state.pi = Matrix(m, n);  // multiplier π⁽⁰⁾ = 0
    state.beta = options_.beta_initial *
                 static_cast<double>(std::max<Index>(state.r, 1));
  }

  state.fallback_b = state.b;
  state.fallback_l = state.l;
  ResidualInto(w, state.b, state.l, &state.ws.residual);
  state.fallback_residual = linalg::FrobeniusNorm(state.ws.residual);
  if (state.warm_started && state.fallback_residual <= options_.gamma) {
    // A feasible seed is itself a candidate answer: recording it up front
    // guarantees a warm solve never returns anything worse than its seed.
    state.best_b = state.b;
    state.best_l = state.l;
    state.best_scale = linalg::SquaredFrobeniusNorm(state.b);
    state.best_residual = state.fallback_residual;
  }
  return state;
}

Status DecompositionSolver::RunAlternation(const Matrix& w, AlmState* state) {
  const Index r = state->r;
  const double beta = state->beta;
  Matrix& b = state->b;
  Matrix& l = state->l;
  Matrix& pi = state->pi;
  AlmWorkspace& ws = state->ws;

  double previous_objective = std::numeric_limits<double>::infinity();
  for (int inner = 0; inner < options_.max_inner_iterations; ++inner) {
    // Cooperative cancellation checkpoint: one atomic load (plus a clock
    // read under a deadline) per B/L alternation, each of which costs
    // multiple GEMMs — an expired request aborts within one alternation.
    LRM_RETURN_IF_ERROR(
        cancel_token_.Check("DecompositionSolver::RunAlternation"));
    // B update (Eq. 9): B = (βWLᵀ + πLᵀ)(βLLᵀ + I)⁻¹.
    if (options_.use_closed_form_b) {
      linalg::GemmInto(beta, w, false, l, true, 0.0, &ws.rhs);  // βW·Lᵀ
      linalg::GemmInto(1.0, pi, false, l, true, 1.0, &ws.rhs);  // + π·Lᵀ
      linalg::GramAAtInto(l, &ws.gram);  // L·Lᵀ (r×r)
      ws.gram *= beta;
      for (Index d = 0; d < r; ++d) ws.gram(d, d) += 1.0;
      // B·G = RHS with G SPD ⇒ Bᵀ = G⁻¹·RHSᵀ.
      linalg::TransposeInto(ws.rhs, &ws.rhs_t);
      LRM_ASSIGN_OR_RETURN(ws.b_t, linalg::SolveSpd(ws.gram, ws.rhs_t));
      linalg::TransposeInto(ws.b_t, &b);
    } else {
      // Ablation path: one gradient step on B with exact line search.
      // ∂J/∂B = B − πLᵀ + βB(LLᵀ) − βWLᵀ.
      ws.grad = b;
      linalg::GemmInto(-1.0, pi, false, l, true, 1.0, &ws.grad);
      linalg::GramAAtInto(l, &ws.llt);
      linalg::GemmInto(beta, b, false, ws.llt, false, 1.0, &ws.grad);
      linalg::GemmInto(-beta, w, false, l, true, 1.0, &ws.grad);
      // Exact step for this quadratic: t = ‖∇‖² / <∇, ∇(I + βLLᵀ)>.
      ws.curv = ws.grad;
      linalg::GemmInto(beta, ws.grad, false, ws.llt, false, 1.0, &ws.curv);
      const double denom = InnerProduct(ws.grad, ws.curv);
      const double t =
          denom > 0.0 ? InnerProduct(ws.grad, ws.grad) / denom : 0.0;
      b.Axpy(-t, ws.grad);
    }

    // L update (Formula 10) by Nesterov APG with per-column L1
    // projection. Precompute H = βBᵀB and T = Bᵀ(βW + π).
    linalg::GramAtAInto(b, &ws.h);
    ws.h *= beta;
    ws.target = pi;
    ws.target.Axpy(beta, w);  // βW + π
    linalg::MultiplyAtBInto(b, ws.target, &ws.t_matrix);  // r×n

    auto projection = [](Matrix& candidate) {
      opt::ProjectColumnsOntoL1Ball(candidate, 1.0);
    };

    if (options_.use_fast_l_solver) {
      opt::QuadraticApgOptions q_options;
      q_options.max_iterations = options_.l_max_iterations;
      q_options.tolerance = options_.l_tolerance;
      LRM_ASSIGN_OR_RETURN(
          opt::QuadraticApgResult q,
          opt::QuadraticApg(ws.h, ws.t_matrix, projection, l, q_options,
                            &ws.apg));
      l = std::move(q.solution);
    } else {
      auto objective = [&ws](const Matrix& candidate) {
        // G(L) = ½<L, H·L> − <T, L> (β folded into H and T).
        const Matrix hl = ws.h * candidate;
        return 0.5 * InnerProduct(candidate, hl) -
               InnerProduct(ws.t_matrix, candidate);
      };
      auto gradient = [&ws](const Matrix& candidate) {
        Matrix g = ws.h * candidate;
        g -= ws.t_matrix;
        return g;
      };
      opt::ApgOptions apg_options;
      apg_options.max_iterations = options_.l_max_iterations;
      apg_options.tolerance = options_.l_tolerance;
      apg_options.initial_lipschitz = state->apg_lipschitz;
      LRM_ASSIGN_OR_RETURN(
          opt::ApgResult apg,
          opt::AcceleratedProjectedGradient(objective, gradient, projection,
                                            l, apg_options));
      l = std::move(apg.solution);
      // Reuse the learned curvature, backing off slightly so the
      // estimate can shrink when β stops growing.
      state->apg_lipschitz = std::max(1.0, apg.final_lipschitz * 0.5);
    }

    // Subproblem objective J for the inner stopping rule.
    ResidualInto(w, b, l, &ws.residual);
    const double j_value =
        0.5 * linalg::SquaredFrobeniusNorm(b) + InnerProduct(pi, ws.residual) +
        0.5 * beta * linalg::SquaredFrobeniusNorm(ws.residual);
    if (std::abs(previous_objective - j_value) <=
        options_.inner_tolerance * std::max(1.0, std::abs(j_value))) {
      break;
    }
    previous_objective = j_value;
  }
  return Status::OK();
}

DecompositionSolver::OuterAction
DecompositionSolver::RecordIterateAndAdvanceSchedule(const Matrix& w,
                                                     AlmState* state) {
  // -- Outer bookkeeping (Algorithm 1 lines 7–13). --
  AlmWorkspace& ws = state->ws;
  ResidualInto(w, state->b, state->l, &ws.residual);
  const double tau = linalg::FrobeniusNorm(ws.residual);
  ++state->outer_iterations;

  if (tau <= options_.gamma) {
    const double scale = linalg::SquaredFrobeniusNorm(state->b);
    if (scale < state->best_scale * (1.0 - 1e-3)) {
      state->best_scale = scale;
      state->best_residual = tau;
      state->best_b = state->b;
      state->best_l = state->l;
      state->feasible_without_improvement = 0;
    } else if (++state->feasible_without_improvement >=
               options_.polish_patience) {
      return OuterAction::kStop;  // feasible and the objective has plateaued
    }
  } else if (tau < state->fallback_residual) {
    state->fallback_residual = tau;
    state->fallback_b = state->b;
    state->fallback_l = state->l;
  }
  if (state->beta >= options_.beta_max) return OuterAction::kStop;

  if (state->outer_iterations % options_.beta_update_every == 0 ||
      tau > options_.stagnation_ratio * state->previous_tau) {
    state->beta *= options_.beta_growth;
  }
  state->previous_tau = tau;
  state->pi.Axpy(state->beta, ws.residual);
  return OuterAction::kContinue;
}

Decomposition DecompositionSolver::Finalize(AlmState* state) const {
  Decomposition result;
  result.outer_iterations = state->outer_iterations;
  result.warm_started = state->warm_started;

  Matrix b, l;
  if (std::isfinite(state->best_scale)) {
    result.converged = true;
    b = std::move(state->best_b);
    l = std::move(state->best_l);
    result.residual = state->best_residual;
  } else {
    result.converged = false;
    b = std::move(state->fallback_b);
    l = std::move(state->fallback_l);
    result.residual = state->fallback_residual;
  }

  // Lemma 2 renormalization: scale so Δ(B, L) = 1 exactly, which can only
  // shrink tr(BᵀB) when the constraint was slack.
  const double delta = linalg::MaxColumnAbsSum(l);
  if (delta > 0.0 && delta < 1.0) {
    b *= delta;
    l /= delta;
  }

  result.b = std::move(b);
  result.l = std::move(l);
  result.scale = linalg::SquaredFrobeniusNorm(result.b);
  result.sensitivity = linalg::MaxColumnAbsSum(result.l);
  return result;
}

StatusOr<Decomposition> DecompositionSolver::Solve(const Matrix& w) {
  LRM_ASSIGN_OR_RETURN(AlmState state, InitializeState(w));
  last_was_warm_ = state.warm_started;

  // --- Algorithm 1: inexact augmented Lagrangian loop. ---
  for (int outer = 1; outer <= options_.max_outer_iterations; ++outer) {
    LRM_RETURN_IF_ERROR(cancel_token_.Check("DecompositionSolver::Solve"));
    obs::ScopedStageTimer iteration_span(stage_metrics_.iteration_seconds,
                                         stage_metrics_.iterations);
    LRM_RETURN_IF_ERROR(RunAlternation(w, &state));
    if (RecordIterateAndAdvanceSchedule(w, &state) == OuterAction::kStop) {
      break;
    }
  }

  Decomposition result = Finalize(&state);
  retained_b_ = result.b;
  retained_l_ = result.l;
  // Finalize may hand back the best iterate rather than the last one, but
  // both sit in the same basin; the last dual state continues either.
  retained_pi_ = std::move(state.pi);
  retained_beta_ = state.beta;
  retained_lipschitz_ = state.apg_lipschitz;
  has_retained_ = true;
  return result;
}

}  // namespace lrm::core
