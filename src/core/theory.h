// The paper's optimality analysis (§4.1–§4.2) as executable bounds:
//
//   Lemma 3   — upper bound r·Σλₖ²/ε² on LRM's error via the SVD-based
//               feasible decomposition B = √r·UΣ, L = Vᵀ/√r.
//   Lemma 4   — Hardt–Talwar geometric lower bound
//               ((2^r/r!)·Πλₖ)^{2/r}·r³/ε² for ANY ε-DP mechanism.
//   Theorem 2 — LRM is O(C²·r)-approximately optimal, C = λ₁/λᵣ.
//   Theorem 3 — error of the relaxed decomposition is at most
//               2·tr(BᵀB)/ε² + ‖W−BL‖²_F·Σxᵢ².
//
// λₖ are the non-zero singular values of W (the paper calls them
// eigenvalues). Products are evaluated in log space to survive r in the
// hundreds.

#ifndef LRM_CORE_THEORY_H_
#define LRM_CORE_THEORY_H_

#include "base/status_or.h"
#include "linalg/vector.h"

namespace lrm::core {

/// \brief Lemma 3: r·Σₖλₖ²/ε², an upper bound on the expected squared error
/// of LRM with the optimal exact decomposition at rank r.
///
/// `singular_values` must hold the non-zero spectrum of W (length ≥ r uses
/// the top r values; extra entries are ignored).
double Lemma3UpperBound(const linalg::Vector& singular_values,
                        linalg::Index r, double epsilon);

/// \brief Lemma 4: the Ω(((2^r/r!)·Πₖλₖ)^{2/r}·r³/ε²) lower bound on the
/// expected squared error of any ε-DP mechanism for a rank-r workload.
/// Computed in log space; returns 0 if any of the top-r values is zero.
double Lemma4LowerBound(const linalg::Vector& singular_values,
                        linalg::Index r, double epsilon);

/// \brief Theorem 2: the (C/4)²·r approximation-ratio bound (valid for
/// r > 5), C = λ₁/λᵣ the spectral spread of the non-zero spectrum.
///
/// \returns kInvalidArgument if r ≤ 5 (the paper's inequality r! < (r/2)^r
/// needs r > 5) or if λᵣ ≤ 0.
StatusOr<double> Theorem2ApproximationRatio(
    const linalg::Vector& singular_values, linalg::Index r);

/// \brief Theorem 3: upper bound on the relaxed mechanism's total error,
/// 2·tr(BᵀB)/ε² + residual²·Σᵢxᵢ². `residual` is ‖W − BL‖_F (≤ γ); the
/// theorem's statement uses γ directly, which this generalizes (tighter
/// when the solver beat its tolerance).
double Theorem3ErrorBound(double trace_btb, double residual,
                          double data_squared_sum, double epsilon);

}  // namespace lrm::core

#endif  // LRM_CORE_THEORY_H_
