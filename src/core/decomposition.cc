#include "core/decomposition.h"

#include "base/check.h"
#include "core/alm_solver.h"

namespace lrm::core {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

Vector Decomposition::PerQueryNoiseVariance(double epsilon) const {
  LRM_CHECK_GT(epsilon, 0.0);
  Vector variances(b.rows());
  const double unit = 2.0 * sensitivity * sensitivity / (epsilon * epsilon);
  for (Index i = 0; i < b.rows(); ++i) {
    double row_sq = 0.0;
    const double* row = b.RowPtr(i);
    for (Index j = 0; j < b.cols(); ++j) row_sq += row[j] * row[j];
    variances[i] = unit * row_sq;
  }
  return variances;
}

StatusOr<Decomposition> DecomposeWorkload(const Matrix& w,
                                          const DecompositionOptions& options) {
  // One-shot compatibility wrapper: a throwaway solver, so every call is a
  // cold solve. Hold a DecompositionSolver (core/alm_solver.h) to reuse
  // factors across related workloads or γ/ε sweep cells.
  DecompositionSolver solver(options);
  return solver.Solve(w);
}

}  // namespace lrm::core
