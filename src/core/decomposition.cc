#include "core/decomposition.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "base/string_util.h"
#include "linalg/cholesky.h"
#include "linalg/matrix_view.h"
#include "linalg/svd.h"
#include "opt/l1_projection.h"
#include "opt/quadratic_apg.h"

namespace lrm::core {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

namespace {

double InnerProduct(const Matrix& a, const Matrix& b) {
  double result = 0.0;
  const double* pa = a.data();
  const double* pb = b.data();
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) result += pa[i] * pb[i];
  return result;
}

// Builds a diagonally-scaled SVD initialization B₀ = U·Σ·D⁻¹, L₀ = D·Vᵀ
// (padded with zeros when r exceeds the available spectrum).
//
// Lemma 3 uses the flat scaling D = I/√r, giving tr(B₀ᵀB₀) = r·Σλ².
// Optimizing D under the Cauchy–Schwarz surrogate of the L1 constraint
// (‖column‖₁ ≤ ‖d‖₂ since V's rows have 2-norm ≤ 1) gives d_k ∝ √λ_k and
// tr(B₀ᵀB₀) = (Σλ)², which is never worse (Cauchy–Schwarz) and is ~r/log²r
// better for the 1/k spectra of range workloads. Feasibility is exact for
// ‖d‖₂ ≤ 1, and the caller renormalizes to Δ(L₀) = 1 anyway (Lemma 2).
void InitializeFromSvd(const linalg::SvdResult& svd, Index r, Index m,
                       Index n, Matrix& b, Matrix& l) {
  const Index available = std::min(r, svd.singular_values.size());
  b.Resize(m, r);
  l.Resize(r, n);
  double sigma_sum = 0.0;
  for (Index k = 0; k < available; ++k) {
    sigma_sum += svd.singular_values[k];
  }
  if (sigma_sum <= 0.0) return;  // zero workload: zero factors are optimal
  for (Index k = 0; k < available; ++k) {
    const double sigma = svd.singular_values[k];
    if (sigma <= 0.0) continue;  // keep padded/null directions at zero
    const double d_k = std::sqrt(sigma / sigma_sum);
    const double b_scale = sigma / d_k;
    for (Index i = 0; i < m; ++i) {
      b(i, k) = b_scale * svd.u(i, k);
    }
    for (Index j = 0; j < n; ++j) {
      l(k, j) = d_k * svd.v(j, k);
    }
  }
  // Zero rows of L are still feasible (‖0‖₁ ≤ 1); the optimizer can
  // recruit them as extra intermediate queries.
}

// Scratch for every temporary the ALM loop touches, allocated once per
// solve. The loop body below writes each buffer through the `*Into` kernels
// (linalg/matrix_view.h), so iterations after the first are allocation-free
// apart from the L-solver's returned solution.
struct AlmWorkspace {
  Matrix rhs;       // βWLᵀ + πLᵀ              (m×r)
  Matrix rhs_t;     // rhsᵀ                     (r×m)
  Matrix gram;      // βLLᵀ + I                 (r×r)
  Matrix b_t;       // Bᵀ from the SPD solve    (r×m)
  Matrix h;         // βBᵀB                     (r×r)
  Matrix target;    // βW + π                   (m×n)
  Matrix t_matrix;  // Bᵀ·target                (r×n)
  Matrix residual;  // W − BL                   (m×n)
  Matrix llt, grad, curv;  // gradient-ablation B update
  opt::QuadraticApgWorkspace apg;
};

// ws.residual = W − B·L without materializing the product.
void ResidualInto(const Matrix& w, const Matrix& b, const Matrix& l,
                  Matrix* residual) {
  *residual = w;
  linalg::GemmInto(-1.0, b, false, l, false, 1.0, residual);
}

// Sketched initialization for the automatic-rank path: grows a randomized
// SVD until the spectrum tail drops below the rank cutoff, so both the rank
// estimate and the (B₀, L₀) triplets come out of one sketch. Returns false
// (leaving `svd`/`r` untouched) when the sketch hits min(m, n)/2 without
// resolving the tail — a near-full-rank W, where the exact path is the
// right tool anyway.
bool TrySketchedInit(const Matrix& w, const DecompositionOptions& options,
                     linalg::SvdResult* svd, Index* r) {
  const Index min_dim = std::min(w.rows(), w.cols());
  const Index cap = min_dim / 2;
  // The Gram-path caveat in EstimateRank applies to sketches too: tail
  // values below ~√ε·σ₁ are numerical noise, not spectrum.
  const double rel_tol = std::max(options.rank_tolerance, 1e-7);
  // 96 starting columns resolve the common figure workloads (rank ≈ m/5 at
  // m ≤ 512) in one sketch; an exactly-saturated sketch cannot prove the
  // tail is empty, so saturation doubles the width and retries. The shared
  // workspace keeps the retries (and each sketch's power iterations) from
  // reallocating the range-finder buffers.
  linalg::RandomizedSvdWorkspace sketch_ws;
  for (Index sketch = std::min<Index>(96, cap);; sketch = 2 * sketch) {
    sketch = std::min(sketch, cap);
    linalg::RandomizedSvdOptions rsvd;
    rsvd.seed = options.seed;
    auto attempt = linalg::RandomizedSvd(w, sketch, rsvd, &sketch_ws);
    if (!attempt.ok()) return false;
    const Index rank = linalg::NumericalRank(attempt.value(), rel_tol);
    if (rank < sketch) {
      *svd = std::move(attempt).value();
      *r = static_cast<Index>(
          std::ceil(1.2 * static_cast<double>(std::max<Index>(rank, 1))));
      LRM_LOG_DEBUG << "DecomposeWorkload: sketched rank(W)=" << rank
                    << " (sketch " << sketch << "), using r=" << *r;
      return true;
    }
    if (sketch >= cap) return false;
  }
}

}  // namespace

Vector Decomposition::PerQueryNoiseVariance(double epsilon) const {
  LRM_CHECK_GT(epsilon, 0.0);
  Vector variances(b.rows());
  const double unit = 2.0 * sensitivity * sensitivity / (epsilon * epsilon);
  for (Index i = 0; i < b.rows(); ++i) {
    double row_sq = 0.0;
    const double* row = b.RowPtr(i);
    for (Index j = 0; j < b.cols(); ++j) row_sq += row[j] * row[j];
    variances[i] = unit * row_sq;
  }
  return variances;
}

StatusOr<Decomposition> DecomposeWorkload(const Matrix& w,
                                          const DecompositionOptions& options) {
  const Index m = w.rows();
  const Index n = w.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("DecomposeWorkload: empty workload");
  }
  if (!linalg::AllFinite(w)) {
    return Status::InvalidArgument(
        "DecomposeWorkload: workload contains NaN or Inf");
  }
  if (options.gamma < 0.0) {
    return Status::InvalidArgument("DecomposeWorkload: gamma must be >= 0");
  }
  if (options.beta_initial <= 0.0 || options.beta_growth <= 1.0) {
    return Status::InvalidArgument(
        "DecomposeWorkload: beta_initial must be > 0 and beta_growth > 1");
  }
  if (options.rank < 0 || options.rank > 8 * std::min(m, n)) {
    return Status::InvalidArgument(StrFormat(
        "DecomposeWorkload: rank %td out of range", options.rank));
  }

  // --- Choose r and initialize from the spectrum of W. ---
  Index r = options.rank;
  linalg::SvdResult svd;
  bool initialized = false;
  if (options.use_randomized_init) {
    if (r > 0 && r < std::min(m, n) / 2) {
      // Only the top-r triplets are needed; sketch instead of a full SVD.
      linalg::RandomizedSvdOptions rsvd;
      rsvd.seed = options.seed;
      LRM_ASSIGN_OR_RETURN(svd, linalg::RandomizedSvd(w, r, rsvd));
      initialized = true;
    } else if (r == 0 && std::min(m, n) >= kRandomizedInitMinDim) {
      initialized = TrySketchedInit(w, options, &svd, &r);
    }
  }
  if (!initialized) {
    LRM_ASSIGN_OR_RETURN(svd, linalg::Svd(w));
    if (r == 0) {
      const Index rank_w = linalg::NumericalRank(svd, options.rank_tolerance);
      r = static_cast<Index>(
          std::ceil(1.2 * static_cast<double>(std::max<Index>(rank_w, 1))));
      LRM_LOG_DEBUG << "DecomposeWorkload: rank(W)=" << rank_w
                    << ", using r=" << r;
    }
  }

  Matrix b, l;
  InitializeFromSvd(svd, r, m, n, b, l);
  // Tighten the initializer to the constraint boundary (Lemma 2 rescaling):
  // same product, Δ(L) = 1 exactly, smaller tr(BᵀB).
  {
    const double delta0 = linalg::MaxColumnAbsSum(l);
    if (delta0 > 0.0) {
      l /= delta0;
      b *= delta0;
    }
  }

  // --- Algorithm 1: inexact augmented Lagrangian loop. ---
  //
  // Failure mode the β schedule guards against: if β starts too small, the
  // first B-update (ridge) collapses B, the constrained L-update then parks
  // L at a vertex of the L1 ball, and at that mutual fixed point the
  // residual R = W − BL satisfies BᵀR = 0 and RLᵀ = 0 — the multiplier π
  // (a scalar multiple of R) becomes invisible to both updates and the
  // iteration stalls forever. Starting at β = O(r) and growing β whenever
  // the residual stagnates keeps the iterate in the feasible basin.
  Matrix pi(m, n);  // multiplier π⁽⁰⁾ = 0
  double beta = options.beta_initial * static_cast<double>(std::max<Index>(r, 1));

  Decomposition result;
  AlmWorkspace ws;
  // Best feasible iterate (τ ≤ γ) by scale — the relaxed program's true
  // objective — plus the minimum-residual iterate as a fallback.
  Matrix best_b, best_l;
  double best_scale = std::numeric_limits<double>::infinity();
  double best_residual = std::numeric_limits<double>::infinity();
  Matrix fallback_b = b, fallback_l = l;
  ResidualInto(w, b, l, &ws.residual);
  double fallback_residual = linalg::FrobeniusNorm(ws.residual);

  double apg_lipschitz = 1.0;  // warm-started Lipschitz estimate
  double previous_tau = std::numeric_limits<double>::infinity();
  int feasible_without_improvement = 0;
  int outer = 0;
  for (outer = 1; outer <= options.max_outer_iterations; ++outer) {
    // -- Approximately solve the subproblem by alternating B and L. --
    double previous_objective = std::numeric_limits<double>::infinity();
    for (int inner = 0; inner < options.max_inner_iterations; ++inner) {
      // B update (Eq. 9): B = (βWLᵀ + πLᵀ)(βLLᵀ + I)⁻¹.
      if (options.use_closed_form_b) {
        linalg::GemmInto(beta, w, false, l, true, 0.0, &ws.rhs);  // βW·Lᵀ
        linalg::GemmInto(1.0, pi, false, l, true, 1.0, &ws.rhs);  // + π·Lᵀ
        linalg::GramAAtInto(l, &ws.gram);  // L·Lᵀ (r×r)
        ws.gram *= beta;
        for (Index d = 0; d < r; ++d) ws.gram(d, d) += 1.0;
        // B·G = RHS with G SPD ⇒ Bᵀ = G⁻¹·RHSᵀ.
        linalg::TransposeInto(ws.rhs, &ws.rhs_t);
        LRM_ASSIGN_OR_RETURN(ws.b_t, linalg::SolveSpd(ws.gram, ws.rhs_t));
        linalg::TransposeInto(ws.b_t, &b);
      } else {
        // Ablation path: one gradient step on B with exact line search.
        // ∂J/∂B = B − πLᵀ + βB(LLᵀ) − βWLᵀ.
        ws.grad = b;
        linalg::GemmInto(-1.0, pi, false, l, true, 1.0, &ws.grad);
        linalg::GramAAtInto(l, &ws.llt);
        linalg::GemmInto(beta, b, false, ws.llt, false, 1.0, &ws.grad);
        linalg::GemmInto(-beta, w, false, l, true, 1.0, &ws.grad);
        // Exact step for this quadratic: t = ‖∇‖² / <∇, ∇(I + βLLᵀ)>.
        ws.curv = ws.grad;
        linalg::GemmInto(beta, ws.grad, false, ws.llt, false, 1.0, &ws.curv);
        const double denom = InnerProduct(ws.grad, ws.curv);
        const double t =
            denom > 0.0 ? InnerProduct(ws.grad, ws.grad) / denom : 0.0;
        b.Axpy(-t, ws.grad);
      }

      // L update (Formula 10) by Nesterov APG with per-column L1
      // projection. Precompute H = βBᵀB and T = Bᵀ(βW + π).
      linalg::GramAtAInto(b, &ws.h);
      ws.h *= beta;
      ws.target = pi;
      ws.target.Axpy(beta, w);  // βW + π
      linalg::MultiplyAtBInto(b, ws.target, &ws.t_matrix);  // r×n

      auto projection = [](Matrix& candidate) {
        opt::ProjectColumnsOntoL1Ball(candidate, 1.0);
      };

      if (options.use_fast_l_solver) {
        opt::QuadraticApgOptions q_options;
        q_options.max_iterations = options.l_max_iterations;
        q_options.tolerance = options.l_tolerance;
        LRM_ASSIGN_OR_RETURN(
            opt::QuadraticApgResult q,
            opt::QuadraticApg(ws.h, ws.t_matrix, projection, l, q_options,
                              &ws.apg));
        l = std::move(q.solution);
      } else {
        auto objective = [&ws](const Matrix& candidate) {
          // G(L) = ½<L, H·L> − <T, L> (β folded into H and T).
          const Matrix hl = ws.h * candidate;
          return 0.5 * InnerProduct(candidate, hl) -
                 InnerProduct(ws.t_matrix, candidate);
        };
        auto gradient = [&ws](const Matrix& candidate) {
          Matrix g = ws.h * candidate;
          g -= ws.t_matrix;
          return g;
        };
        opt::ApgOptions apg_options;
        apg_options.max_iterations = options.l_max_iterations;
        apg_options.tolerance = options.l_tolerance;
        apg_options.initial_lipschitz = apg_lipschitz;
        LRM_ASSIGN_OR_RETURN(
            opt::ApgResult apg,
            opt::AcceleratedProjectedGradient(objective, gradient,
                                              projection, l, apg_options));
        l = std::move(apg.solution);
        // Reuse the learned curvature, backing off slightly so the
        // estimate can shrink when β stops growing.
        apg_lipschitz = std::max(1.0, apg.final_lipschitz * 0.5);
      }

      // Subproblem objective J for the inner stopping rule.
      ResidualInto(w, b, l, &ws.residual);
      const double j_value = 0.5 * linalg::SquaredFrobeniusNorm(b) +
                             InnerProduct(pi, ws.residual) +
                             0.5 * beta *
                                 linalg::SquaredFrobeniusNorm(ws.residual);
      if (std::abs(previous_objective - j_value) <=
          options.inner_tolerance * std::max(1.0, std::abs(j_value))) {
        break;
      }
      previous_objective = j_value;
    }

    // -- Outer bookkeeping (Algorithm 1 lines 7–13). --
    ResidualInto(w, b, l, &ws.residual);
    const double tau = linalg::FrobeniusNorm(ws.residual);
    result.outer_iterations = outer;

    if (tau <= options.gamma) {
      const double scale = linalg::SquaredFrobeniusNorm(b);
      if (scale < best_scale * (1.0 - 1e-3)) {
        best_scale = scale;
        best_residual = tau;
        best_b = b;
        best_l = l;
        feasible_without_improvement = 0;
      } else if (++feasible_without_improvement >=
                 options.polish_patience) {
        break;  // feasible and the objective has plateaued
      }
    } else if (tau < fallback_residual) {
      fallback_residual = tau;
      fallback_b = b;
      fallback_l = l;
    }
    if (beta >= options.beta_max) break;

    if (outer % options.beta_update_every == 0 ||
        tau > options.stagnation_ratio * previous_tau) {
      beta *= options.beta_growth;
    }
    previous_tau = tau;
    pi.Axpy(beta, ws.residual);
  }

  if (std::isfinite(best_scale)) {
    result.converged = true;
    b = std::move(best_b);
    l = std::move(best_l);
    result.residual = best_residual;
  } else {
    result.converged = false;
    b = std::move(fallback_b);
    l = std::move(fallback_l);
    result.residual = fallback_residual;
  }

  // Lemma 2 renormalization: scale so Δ(B, L) = 1 exactly, which can only
  // shrink tr(BᵀB) when the constraint was slack.
  const double delta = linalg::MaxColumnAbsSum(l);
  if (delta > 0.0 && delta < 1.0) {
    b *= delta;
    l /= delta;
  }

  result.b = std::move(b);
  result.l = std::move(l);
  result.scale = linalg::SquaredFrobeniusNorm(result.b);
  result.sensitivity = linalg::MaxColumnAbsSum(result.l);
  return result;
}

}  // namespace lrm::core
