#include "core/decomposition_init.h"

#include <algorithm>
#include <cmath>

#include "base/logging.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"

namespace lrm::core {

using linalg::Index;
using linalg::Matrix;

void InitializeFromSvd(const linalg::SvdResult& svd, Index r, Index m,
                       Index n, Matrix& b, Matrix& l) {
  const Index available = std::min(r, svd.singular_values.size());
  b.Resize(m, r);
  l.Resize(r, n);
  double sigma_sum = 0.0;
  for (Index k = 0; k < available; ++k) {
    sigma_sum += svd.singular_values[k];
  }
  if (sigma_sum <= 0.0) return;  // zero workload: zero factors are optimal
  for (Index k = 0; k < available; ++k) {
    const double sigma = svd.singular_values[k];
    if (sigma <= 0.0) continue;  // keep padded/null directions at zero
    const double d_k = std::sqrt(sigma / sigma_sum);
    const double b_scale = sigma / d_k;
    for (Index i = 0; i < m; ++i) {
      b(i, k) = b_scale * svd.u(i, k);
    }
    for (Index j = 0; j < n; ++j) {
      l(k, j) = d_k * svd.v(j, k);
    }
  }
  // Zero rows of L are still feasible (‖0‖₁ ≤ 1); the optimizer can
  // recruit them as extra intermediate queries.
}

bool TrySketchedInit(const Matrix& w, const DecompositionOptions& options,
                     linalg::SvdResult* svd, Index* r) {
  const Index min_dim = std::min(w.rows(), w.cols());
  const Index cap = min_dim / 2;
  // The Gram-path caveat in EstimateRank applies to sketches too: tail
  // values below ~√ε·σ₁ are numerical noise, not spectrum.
  const double rel_tol = linalg::GramRankTolerance(options.rank_tolerance);
  // 96 starting columns resolve the common figure workloads (rank ≈ m/5 at
  // m ≤ 512) in one sketch; an exactly-saturated sketch cannot prove the
  // tail is empty, so saturation doubles the width and retries. The shared
  // workspace keeps the retries (and each sketch's power iterations) from
  // reallocating the range-finder buffers, and the Gaussian test matrix is
  // append-only across retries: one engine feeds it, widening draws only
  // the fresh columns, so every column an earlier attempt paid for is
  // reused bitwise and the draw order is independent of the doubling
  // schedule (AppendGaussianColumns' prefix-stability contract).
  linalg::RandomizedSvdWorkspace sketch_ws;
  rng::Engine engine(options.seed);
  Matrix omega;
  for (Index sketch = std::min<Index>(96, cap);; sketch = 2 * sketch) {
    sketch = std::min(sketch, cap);
    linalg::RandomizedSvdOptions rsvd;
    rsvd.seed = options.seed;
    const Index width = std::min<Index>(
        min_dim, sketch + std::max<Index>(rsvd.oversample, 0));
    linalg::AppendGaussianColumns(engine, w.cols(), width - omega.cols(),
                                  &omega);
    auto attempt =
        linalg::RandomizedSvdWithTestMatrix(w, sketch, omega, rsvd,
                                            &sketch_ws);
    if (!attempt.ok()) return false;
    const Index rank = linalg::NumericalRank(attempt.value(), rel_tol);
    if (rank < sketch) {
      *svd = std::move(attempt).value();
      *r = static_cast<Index>(
          std::ceil(1.2 * static_cast<double>(std::max<Index>(rank, 1))));
      LRM_LOG_DEBUG << "DecompositionSolver: sketched rank(W)=" << rank
                    << " (sketch " << sketch << "), using r=" << *r;
      return true;
    }
    if (sketch >= cap) return false;
  }
}

StatusOr<InitFactors> ColdInit(const Matrix& w,
                               const DecompositionOptions& options) {
  const Index m = w.rows();
  const Index n = w.cols();

  // --- Choose r and initialize from the spectrum of W. ---
  Index r = options.rank;
  linalg::SvdResult svd;
  bool initialized = false;
  if (options.use_randomized_init) {
    if (r > 0 && r < std::min(m, n) / 2) {
      // Only the top-r triplets are needed; sketch instead of a full SVD.
      linalg::RandomizedSvdOptions rsvd;
      rsvd.seed = options.seed;
      LRM_ASSIGN_OR_RETURN(svd, linalg::RandomizedSvd(w, r, rsvd));
      initialized = true;
    } else if (r == 0 && std::min(m, n) >= kRandomizedInitMinDim) {
      initialized = TrySketchedInit(w, options, &svd, &r);
    }
  }
  if (!initialized) {
    // Exact fallback: near-full-rank W (where the sketch cannot prove the
    // tail empty), a caller-pinned rank with randomized init off, or small
    // problems. At size the fallback is partial-spectrum: the Lemma-3
    // construction only ever reads the top r ≪ p triplets, so a Sturm-count
    // rank search plus inverse iteration on the reduced Gram matrix
    // (linalg/tridiag_partial.h) replaces the full O(p³) eigensolve with
    // O(p²·r) — this is what makes exact rank search tractable at the
    // paper's n ≥ 4096 domains. Small problems keep the full Jacobi SVD
    // with the raw (un-floored) tolerance: no Gram squaring happened, so
    // no √ε floor applies (see svd.h NumericalRank).
    const Index p = std::min(m, n);
    if (r > 0 && p > linalg::kSvdJacobiDispatchLimit) {
      LRM_ASSIGN_OR_RETURN(svd, linalg::PartialGramSvd(w, r));
    } else if (r == 0 && p > linalg::kSvdJacobiDispatchLimit) {
      Index rank_w = 0;
      LRM_ASSIGN_OR_RETURN(
          svd, linalg::PartialGramSvdWithRank(w, options.rank_tolerance, 1.2,
                                              &rank_w));
      r = static_cast<Index>(
          std::ceil(1.2 * static_cast<double>(std::max<Index>(rank_w, 1))));
      LRM_LOG_DEBUG << "DecompositionSolver: partial rank(W)=" << rank_w
                    << ", using r=" << r;
    } else {
      LRM_ASSIGN_OR_RETURN(svd, linalg::Svd(w));
      if (r == 0) {
        const Index rank_w =
            linalg::NumericalRank(svd, options.rank_tolerance);
        r = static_cast<Index>(
            std::ceil(1.2 * static_cast<double>(std::max<Index>(rank_w, 1))));
        LRM_LOG_DEBUG << "DecompositionSolver: rank(W)=" << rank_w
                      << ", using r=" << r;
      }
    }
  }

  InitFactors init;
  init.rank = r;
  init.warm = false;
  InitializeFromSvd(svd, r, m, n, init.b, init.l);
  // Tighten the initializer to the constraint boundary (Lemma 2 rescaling):
  // same product, Δ(L) = 1 exactly, smaller tr(BᵀB).
  const double delta0 = linalg::MaxColumnAbsSum(init.l);
  if (delta0 > 0.0) {
    init.l /= delta0;
    init.b *= delta0;
  }
  return init;
}

StatusOr<InitFactors> WarmInit(Matrix b, Matrix l) {
  if (b.cols() != l.rows() || b.rows() == 0 || l.cols() == 0) {
    return Status::InvalidArgument(
        "WarmInit: seed factors do not conform (B is m×r, L is r×n)");
  }
  if (!linalg::AllFinite(b) || !linalg::AllFinite(l)) {
    return Status::InvalidArgument(
        "WarmInit: seed factors contain NaN or Inf");
  }
  InitFactors init;
  init.rank = b.cols();
  init.warm = true;
  init.b = std::move(b);
  init.l = std::move(l);
  // An infeasible seed (Δ > 1) would hand the L-subproblem an iterate
  // outside its own constraint set; the Lemma 2 rescaling restores
  // feasibility without moving the product B·L.
  const double delta0 = linalg::MaxColumnAbsSum(init.l);
  if (delta0 > 1.0) {
    init.l /= delta0;
    init.b *= delta0;
  }
  return init;
}

}  // namespace lrm::core
