// The Low-Rank Mechanism (paper Eq. 6): given the workload decomposition
// W ≈ B·L, publish
//
//     M_P(Q, D) = B·(L·D + Lap(Δ(B,L)/ε)^r)
//
// which is ε-differentially private because L·D is a batch of r linear
// queries with L1 sensitivity Δ(B,L) ≤ 1, answered by the Laplace
// mechanism, and B is data-independent post-processing.

#ifndef LRM_CORE_LOW_RANK_MECHANISM_H_
#define LRM_CORE_LOW_RANK_MECHANISM_H_

#include "core/decomposition.h"
#include "mechanism/mechanism.h"

namespace lrm::core {

/// \brief Options for LowRankMechanism.
struct LowRankMechanismOptions {
  /// Settings of the ALM workload decomposition.
  DecompositionOptions decomposition;
};

/// \brief The paper's mechanism: decomposition at Prepare() time (public,
/// data-independent), noisy release at Answer() time.
class LowRankMechanism : public mechanism::Mechanism {
 public:
  LowRankMechanism() = default;
  explicit LowRankMechanism(LowRankMechanismOptions options)
      : options_(std::move(options)) {}

  std::string_view name() const override { return "LRM"; }

  /// Lemma 1 noise error 2·Φ·Δ²/ε². Exact when the decomposition residual
  /// is zero; with a non-zero residual the (data-dependent) structural term
  /// ‖(W−BL)·D‖² adds on top — see StructuralError().
  std::optional<double> ExpectedSquaredError(double epsilon) const override;

  /// The exact structural error ‖(W − B·L)·data‖₂² added by the relaxation
  /// (the deterministic part of Theorem 3's bound).
  double StructuralError(const linalg::Vector& data) const;

  /// The decomposition found at Prepare() time.
  const Decomposition& decomposition() const { return decomposition_; }

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;

 private:
  LowRankMechanismOptions options_;
  Decomposition decomposition_;
};

}  // namespace lrm::core

#endif  // LRM_CORE_LOW_RANK_MECHANISM_H_
