// The Low-Rank Mechanism (paper Eq. 6): given the workload decomposition
// W ≈ B·L, publish
//
//     M_P(Q, D) = B·(L·D + Lap(Δ(B,L)/ε)^r)
//
// which is ε-differentially private because L·D is a batch of r linear
// queries with L1 sensitivity Δ(B,L) ≤ 1, answered by the Laplace
// mechanism, and B is data-independent post-processing.

#ifndef LRM_CORE_LOW_RANK_MECHANISM_H_
#define LRM_CORE_LOW_RANK_MECHANISM_H_

#include "base/cancel.h"
#include "core/alm_solver.h"
#include "core/decomposition.h"
#include "mechanism/mechanism.h"

namespace lrm::core {

/// \brief Options for LowRankMechanism.
struct LowRankMechanismOptions {
  /// Settings of the ALM workload decomposition.
  DecompositionOptions decomposition;

  /// Retain the ALM solver across Prepare() calls: a re-Prepare on a
  /// same-shaped workload (a new γ via set_decomposition_options, a
  /// perturbed W, the next sweep cell) warm-starts from the previous
  /// factors instead of paying a cold SVD initialization. Off by default
  /// so one-shot uses keep the stateless cold-solve semantics; sweep
  /// sessions (eval/sweep.h) turn it on.
  bool warm_start = false;
};

/// \brief The paper's mechanism: decomposition at Prepare() time (public,
/// data-independent), noisy release at Answer() time. With
/// options.warm_start the instance is a *session*: successive Prepare()
/// calls reuse the retained solver factors.
class LowRankMechanism : public mechanism::Mechanism {
 public:
  LowRankMechanism() = default;
  explicit LowRankMechanism(LowRankMechanismOptions options)
      : options_(std::move(options)), solver_(options_.decomposition) {}

  std::string_view name() const override { return "LRM"; }

  /// Seeds the solver with `hint`'s factors and prepares on `workload` —
  /// warm even when options.warm_start is false (an explicit hint wins).
  /// The hint must conform to the workload shape (InvalidArgument
  /// otherwise); typical sources are a previous decomposition() of a
  /// related workload or a factorization computed offline. All validation
  /// runs before any copy of W: the lvalue overload rejects malformed
  /// inputs for free, and when it is passed the workload this mechanism
  /// already holds it reuses the bound shared handle instead of copying.
  Status PrepareWithHint(std::shared_ptr<const workload::Workload> workload,
                         const Decomposition& hint);
  Status PrepareWithHint(const workload::Workload& workload,
                         const Decomposition& hint);

  /// Replaces the decomposition options for subsequent Prepare() calls
  /// without discarding solver state: with warm_start on, re-preparing
  /// under a new γ resumes from the previous factors.
  void set_decomposition_options(const DecompositionOptions& options) {
    options_.decomposition = options;
  }

  const LowRankMechanismOptions& options() const { return options_; }

  /// Lemma 1 noise error 2·Φ·Δ²/ε². Exact when the decomposition residual
  /// is zero; with a non-zero residual the (data-dependent) structural term
  /// ‖(W−BL)·D‖² adds on top — see StructuralError().
  std::optional<double> ExpectedSquaredError(double epsilon) const override;

  /// The exact structural error ‖(W − B·L)·data‖₂² added by the relaxation
  /// (the deterministic part of Theorem 3's bound).
  double StructuralError(const linalg::Vector& data) const;

  /// The decomposition found at Prepare() time.
  const Decomposition& decomposition() const { return decomposition_; }

  /// The retained solver (inspect last_was_warm(), or Reset() it to force
  /// the next Prepare() cold).
  DecompositionSolver& solver() { return solver_; }
  const DecompositionSolver& solver() const { return solver_; }

  /// Arms cooperative cancellation for subsequent Prepare() calls: the
  /// token is polled between ALM iterations, so a prepare whose deadline
  /// passes fails with the token's typed status instead of holding its
  /// thread for the full strategy search. The token persists until
  /// replaced — a session serving multiple requests must re-arm (or pass a
  /// default token) per request. Answer() never consults the token: a
  /// release is milliseconds and always runs to completion.
  void set_cancel_token(CancelToken token) {
    solver_.set_cancel_token(std::move(token));
  }

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;

 private:
  // Shared tail of the PrepareWithHint overloads: runs Prepare() with the
  // already-validated seed armed.
  Status PrepareSeeded(std::shared_ptr<const workload::Workload> workload);

  LowRankMechanismOptions options_;
  DecompositionSolver solver_;
  Decomposition decomposition_;
  // Set by PrepareWithHint for the duration of the Prepare() it issues, so
  // PrepareImpl knows not to Reset() the seeded solver.
  bool hint_pending_ = false;
};

}  // namespace lrm::core

#endif  // LRM_CORE_LOW_RANK_MECHANISM_H_
