#include "workload/workload.h"

namespace lrm::workload {

double ExpectedErrorNoiseOnData(const Workload& workload, double epsilon) {
  return 2.0 * workload.SquaredFrobeniusNorm() / (epsilon * epsilon);
}

double ExpectedErrorNoiseOnResults(const Workload& workload, double epsilon) {
  const double delta = workload.L1Sensitivity();
  return 2.0 * static_cast<double>(workload.num_queries()) * delta * delta /
         (epsilon * epsilon);
}

}  // namespace lrm::workload
