// Workload substrate: the m×n matrix of linear counting queries (paper §3.2)
// plus sensitivity/scale utilities shared by all mechanisms.

#ifndef LRM_WORKLOAD_WORKLOAD_H_
#define LRM_WORKLOAD_WORKLOAD_H_

#include <string>

#include "base/status_or.h"
#include "linalg/matrix.h"

namespace lrm::workload {

/// \brief A batch of m linear queries over n unit counts.
///
/// Row i holds the coefficients of query qᵢ; the exact batch answer is
/// `matrix() * data`. Immutable after construction so mechanisms can cache
/// derived quantities safely.
class Workload {
 public:
  Workload() = default;

  /// Wraps a workload matrix. `name` is used in reports.
  Workload(std::string name, linalg::Matrix matrix)
      : name_(std::move(name)), matrix_(std::move(matrix)) {}

  const std::string& name() const { return name_; }
  const linalg::Matrix& matrix() const { return matrix_; }

  /// Number of queries m.
  linalg::Index num_queries() const { return matrix_.rows(); }

  /// Domain size n.
  linalg::Index domain_size() const { return matrix_.cols(); }

  /// Exact answers W·x.
  linalg::Vector Answer(const linalg::Vector& data) const {
    return matrix_ * data;
  }

  /// L1 sensitivity of answering the batch directly (noise-on-results):
  /// Δ' = maxⱼ Σᵢ |Wᵢⱼ| — how much one record can move the whole output
  /// vector (paper §3.2).
  double L1Sensitivity() const { return linalg::MaxColumnAbsSum(matrix_); }

  /// Squared Frobenius norm Σᵢⱼ Wᵢⱼ²; drives the noise-on-data error.
  double SquaredFrobeniusNorm() const {
    return linalg::SquaredFrobeniusNorm(matrix_);
  }

 private:
  std::string name_;
  linalg::Matrix matrix_;
};

/// \brief Expected total squared error of noise-on-data (paper §3.2, M_D):
/// 2·Δ²/ε² · Σᵢⱼ Wᵢⱼ², with unit-count sensitivity Δ = 1.
double ExpectedErrorNoiseOnData(const Workload& workload, double epsilon);

/// \brief Expected total squared error of noise-on-results (paper §3.2,
/// M_R): 2m·Δ'²/ε² with Δ' the workload's L1 sensitivity.
double ExpectedErrorNoiseOnResults(const Workload& workload, double epsilon);

}  // namespace lrm::workload

#endif  // LRM_WORKLOAD_WORKLOAD_H_
