#include "workload/generators.h"

#include <algorithm>

#include "base/string_util.h"
#include "linalg/random_matrix.h"
#include "rng/distributions.h"
#include "rng/engine.h"

namespace lrm::workload {

using linalg::Index;
using linalg::Matrix;

StatusOr<Workload> GenerateWDiscrete(Index num_queries, Index domain_size,
                                     std::uint64_t seed,
                                     const WDiscreteOptions& options) {
  if (num_queries <= 0 || domain_size <= 0) {
    return Status::InvalidArgument("GenerateWDiscrete: m and n must be > 0");
  }
  if (options.positive_probability < 0.0 ||
      options.positive_probability > 1.0) {
    return Status::InvalidArgument(
        "GenerateWDiscrete: positive_probability must lie in [0, 1]");
  }
  rng::Engine engine(seed ^ 0xD15C1E7EULL);
  Matrix w(num_queries, domain_size);
  for (Index i = 0; i < num_queries; ++i) {
    double* row = w.RowPtr(i);
    for (Index j = 0; j < domain_size; ++j) {
      row[j] = rng::SampleBernoulli(engine, options.positive_probability)
                   ? 1.0
                   : -1.0;
    }
  }
  return Workload(
      StrFormat("WDiscrete(m=%td, n=%td)", num_queries, domain_size),
      std::move(w));
}

StatusOr<Workload> GenerateWRange(Index num_queries, Index domain_size,
                                  std::uint64_t seed) {
  if (num_queries <= 0 || domain_size <= 0) {
    return Status::InvalidArgument("GenerateWRange: m and n must be > 0");
  }
  rng::Engine engine(seed ^ 0x3A46EULL);
  Matrix w(num_queries, domain_size);
  for (Index i = 0; i < num_queries; ++i) {
    Index a = rng::SampleUniformInt(engine, 0, domain_size - 1);
    Index b = rng::SampleUniformInt(engine, 0, domain_size - 1);
    if (a > b) std::swap(a, b);
    double* row = w.RowPtr(i);
    for (Index j = a; j <= b; ++j) row[j] = 1.0;
  }
  return Workload(StrFormat("WRange(m=%td, n=%td)", num_queries, domain_size),
                  std::move(w));
}

StatusOr<Workload> GenerateWRelated(Index num_queries, Index domain_size,
                                    Index base_rank, std::uint64_t seed) {
  if (num_queries <= 0 || domain_size <= 0) {
    return Status::InvalidArgument("GenerateWRelated: m and n must be > 0");
  }
  if (base_rank <= 0) {
    return Status::InvalidArgument("GenerateWRelated: base_rank must be > 0");
  }
  rng::Engine engine(seed ^ 0x4E1A7EDULL);
  // Base queries A (s×n) and correlation matrix C (m×s), both standard
  // normal as in the paper.
  const Matrix a =
      linalg::RandomGaussianMatrix(engine, base_rank, domain_size);
  const Matrix c =
      linalg::RandomGaussianMatrix(engine, num_queries, base_rank);
  return Workload(StrFormat("WRelated(m=%td, n=%td, s=%td)", num_queries,
                            domain_size, base_rank),
                  c * a);
}

StatusOr<Workload> GeneratePrefixSums(Index domain_size) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("GeneratePrefixSums: n must be > 0");
  }
  Matrix w(domain_size, domain_size);
  for (Index i = 0; i < domain_size; ++i) {
    for (Index j = 0; j <= i; ++j) w(i, j) = 1.0;
  }
  return Workload(StrFormat("PrefixSums(n=%td)", domain_size), std::move(w));
}

StatusOr<Workload> GenerateAllRanges(Index domain_size) {
  if (domain_size <= 0) {
    return Status::InvalidArgument("GenerateAllRanges: n must be > 0");
  }
  const Index num_queries = domain_size * (domain_size + 1) / 2;
  Matrix w(num_queries, domain_size);
  Index row = 0;
  for (Index a = 0; a < domain_size; ++a) {
    for (Index b = a; b < domain_size; ++b) {
      for (Index j = a; j <= b; ++j) w(row, j) = 1.0;
      ++row;
    }
  }
  return Workload(StrFormat("AllRanges(n=%td)", domain_size), std::move(w));
}

std::string WorkloadKindName(WorkloadKind kind) {
  switch (kind) {
    case WorkloadKind::kWDiscrete:
      return "WDiscrete";
    case WorkloadKind::kWRange:
      return "WRange";
    case WorkloadKind::kWRelated:
      return "WRelated";
  }
  return "Unknown";
}

StatusOr<Workload> GenerateWorkload(WorkloadKind kind, Index num_queries,
                                    Index domain_size, Index base_rank,
                                    std::uint64_t seed) {
  switch (kind) {
    case WorkloadKind::kWDiscrete:
      return GenerateWDiscrete(num_queries, domain_size, seed);
    case WorkloadKind::kWRange:
      return GenerateWRange(num_queries, domain_size, seed);
    case WorkloadKind::kWRelated:
      return GenerateWRelated(num_queries, domain_size, base_rank, seed);
  }
  return Status::InvalidArgument("GenerateWorkload: unknown kind");
}

}  // namespace lrm::workload
