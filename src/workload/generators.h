// The three synthetic workload families from the paper's evaluation (§6):
//
//   WDiscrete — each weight is +1 with probability p (default 0.02) and −1
//               otherwise. Nearly rank-one, which is what lets LRM flatten
//               in Figure 4.
//   WRange    — random range queries: uniform endpoints (a, b); weights 1
//               on [a, b], 0 elsewhere.
//   WRelated  — W = C·A with C m×s and A s×n standard normal, so
//               rank(W) = s almost surely. The knob s drives Figure 9.

#ifndef LRM_WORKLOAD_GENERATORS_H_
#define LRM_WORKLOAD_GENERATORS_H_

#include <cstdint>

#include "base/status_or.h"
#include "workload/workload.h"

namespace lrm::workload {

/// \brief Options for GenerateWDiscrete.
struct WDiscreteOptions {
  /// Probability of a +1 weight (paper: 0.02).
  double positive_probability = 0.02;
};

/// \brief m×n WDiscrete workload.
StatusOr<Workload> GenerateWDiscrete(linalg::Index num_queries,
                                     linalg::Index domain_size,
                                     std::uint64_t seed,
                                     const WDiscreteOptions& options = {});

/// \brief m×n WRange workload of uniform random range queries.
StatusOr<Workload> GenerateWRange(linalg::Index num_queries,
                                  linalg::Index domain_size,
                                  std::uint64_t seed);

/// \brief m×n WRelated workload W = C·A with inner dimension `base_rank`
/// (the paper's s); rank(W) = min(base_rank, m, n) almost surely.
StatusOr<Workload> GenerateWRelated(linalg::Index num_queries,
                                    linalg::Index domain_size,
                                    linalg::Index base_rank,
                                    std::uint64_t seed);

/// \brief The n prefix-sum queries qᵢ = x₁ + … + xᵢ — the cumulative
/// histogram ("W_pre") workload from the matrix-mechanism literature
/// (Li et al., PODS 2010). Strongly correlated rows make it a natural LRM
/// showcase beyond the paper's three families.
StatusOr<Workload> GeneratePrefixSums(linalg::Index domain_size);

/// \brief All n(n+1)/2 contiguous range queries over the domain ("W_all" in
/// the matrix-mechanism literature). Quadratic in n — intended for small
/// domains and tests.
StatusOr<Workload> GenerateAllRanges(linalg::Index domain_size);

/// \brief Workload family tag used by the experiment grids.
enum class WorkloadKind { kWDiscrete, kWRange, kWRelated };

/// \brief Paper name of the family ("WDiscrete", …).
std::string WorkloadKindName(WorkloadKind kind);

/// \brief Dispatch generator. For kWRelated, `base_rank` must be ≥ 1; it is
/// ignored by the other families.
StatusOr<Workload> GenerateWorkload(WorkloadKind kind,
                                    linalg::Index num_queries,
                                    linalg::Index domain_size,
                                    linalg::Index base_rank,
                                    std::uint64_t seed);

}  // namespace lrm::workload

#endif  // LRM_WORKLOAD_GENERATORS_H_
