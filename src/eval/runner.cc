#include "eval/runner.h"

#include "base/string_util.h"
#include "base/timer.h"
#include "eval/metrics.h"
#include "rng/engine.h"

namespace lrm::eval {

StatusOr<RunResult> RunMechanism(mechanism::Mechanism& mech,
                                 const workload::Workload& workload,
                                 const linalg::Vector& data, double epsilon,
                                 const RunOptions& options) {
  WallTimer prepare_timer;
  LRM_RETURN_IF_ERROR(mech.Prepare(workload));
  const double prepare_seconds = prepare_timer.ElapsedSeconds();

  LRM_ASSIGN_OR_RETURN(
      RunResult result,
      EvaluatePreparedMechanism(mech, workload, data, epsilon, options));
  result.prepare_seconds = prepare_seconds;
  return result;
}

StatusOr<RunResult> EvaluatePreparedMechanism(
    const mechanism::Mechanism& mech, const workload::Workload& workload,
    const linalg::Vector& data, double epsilon, const RunOptions& options) {
  if (options.repetitions <= 0) {
    return Status::InvalidArgument(
        "EvaluatePreparedMechanism: repetitions must be > 0");
  }
  if (!mech.prepared()) {
    return Status::FailedPrecondition(
        "EvaluatePreparedMechanism: mechanism not prepared");
  }
  if (data.size() != workload.domain_size()) {
    return Status::InvalidArgument(StrFormat(
        "EvaluatePreparedMechanism: data has %td entries, workload domain "
        "is %td",
        data.size(), workload.domain_size()));
  }

  const linalg::Vector exact = workload.Answer(data);
  rng::Engine master(options.seed);

  ErrorAccumulator errors;
  double answer_seconds = 0.0;
  for (int rep = 0; rep < options.repetitions; ++rep) {
    rng::Engine stream = master.Split();
    WallTimer answer_timer;
    LRM_ASSIGN_OR_RETURN(linalg::Vector noisy,
                         mech.Answer(data, epsilon, stream));
    answer_seconds += answer_timer.ElapsedSeconds();
    errors.Add(TotalSquaredError(exact, noisy));
  }

  RunResult result;
  result.avg_squared_error = errors.Mean();
  result.stddev_squared_error = errors.StdDev();
  result.prepare_seconds = 0.0;
  result.avg_answer_seconds = answer_seconds / options.repetitions;
  result.repetitions = options.repetitions;
  return result;
}

}  // namespace lrm::eval
