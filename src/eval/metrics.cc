#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.h"

namespace lrm::eval {

double TotalSquaredError(const linalg::Vector& exact,
                         const linalg::Vector& noisy) {
  LRM_CHECK_EQ(exact.size(), noisy.size());
  double total = 0.0;
  for (linalg::Index i = 0; i < exact.size(); ++i) {
    const double diff = noisy[i] - exact[i];
    total += diff * diff;
  }
  return total;
}

double MeanSquaredError(const linalg::Vector& exact,
                        const linalg::Vector& noisy) {
  LRM_CHECK_GT(exact.size(), 0);
  return TotalSquaredError(exact, noisy) /
         static_cast<double>(exact.size());
}

double Percentile(std::vector<double> values, double p) {
  // NaN, not 0: an empty sample set has no percentile, and 0 reads as
  // "zero latency" in bench output when a run sheds every request.
  if (values.empty()) return std::numeric_limits<double>::quiet_NaN();
  LRM_CHECK_GE(p, 0.0);
  LRM_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  if (lo + 1 >= values.size()) return values.back();
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[lo + 1] - values[lo]);
}

void ErrorAccumulator::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / count_;
  m2_ += delta * (value - mean_);
}

double ErrorAccumulator::StdDev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / (count_ - 1));
}

}  // namespace lrm::eval
