#include "eval/metrics.h"

#include <cmath>

#include "base/check.h"

namespace lrm::eval {

double TotalSquaredError(const linalg::Vector& exact,
                         const linalg::Vector& noisy) {
  LRM_CHECK_EQ(exact.size(), noisy.size());
  double total = 0.0;
  for (linalg::Index i = 0; i < exact.size(); ++i) {
    const double diff = noisy[i] - exact[i];
    total += diff * diff;
  }
  return total;
}

double MeanSquaredError(const linalg::Vector& exact,
                        const linalg::Vector& noisy) {
  LRM_CHECK_GT(exact.size(), 0);
  return TotalSquaredError(exact, noisy) /
         static_cast<double>(exact.size());
}

void ErrorAccumulator::Add(double value) {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / count_;
  m2_ += delta * (value - mean_);
}

double ErrorAccumulator::StdDev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(m2_ / (count_ - 1));
}

}  // namespace lrm::eval
