// Aligned plain-text tables; every bench binary prints its figure's series
// through this so outputs are uniform and diffable.

#ifndef LRM_EVAL_TABLE_H_
#define LRM_EVAL_TABLE_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace lrm::eval {

/// \brief Column-aligned text table.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders with right-aligned columns, a header underline, and two-space
  /// gutters.
  std::string ToString() const;

  /// Writes ToString() to `os`.
  void Print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace lrm::eval

#endif  // LRM_EVAL_TABLE_H_
