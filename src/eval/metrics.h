// Error metrics used by the paper's evaluation (§6): the "Average Squared
// Error" of a run is the squared L2 distance between exact and noisy answer
// vectors, averaged over repetitions.

#ifndef LRM_EVAL_METRICS_H_
#define LRM_EVAL_METRICS_H_

#include <vector>

#include "linalg/vector.h"

namespace lrm::eval {

/// \brief Total squared error ‖noisy − exact‖₂² of one release — the
/// paper's per-run metric.
double TotalSquaredError(const linalg::Vector& exact,
                         const linalg::Vector& noisy);

/// \brief Per-query mean squared error ‖noisy − exact‖₂²/m.
double MeanSquaredError(const linalg::Vector& exact,
                        const linalg::Vector& noisy);

/// \brief The p-th percentile (p in [0, 100]) of `values` under linear
/// interpolation between closest ranks — the convention of numpy's default
/// and of most latency dashboards, so service p50/p99 numbers compare
/// directly. Takes its argument by value (it must sort). Returns NaN when
/// empty: an empty sample set has no percentile, and callers that print
/// one (e.g. a bench run that shed every request) must not report it as
/// zero latency.
double Percentile(std::vector<double> values, double p);

/// \brief Running mean/variance accumulator (Welford) for repeated trials.
class ErrorAccumulator {
 public:
  /// Adds one observation.
  void Add(double value);

  /// Number of observations so far.
  int count() const { return count_; }

  /// Sample mean (0 when empty).
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }

  /// Unbiased sample standard deviation (0 with < 2 observations).
  double StdDev() const;

 private:
  int count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace lrm::eval

#endif  // LRM_EVAL_METRICS_H_
