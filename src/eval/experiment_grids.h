// Table 1 of the paper — the parameter grids of the evaluation — plus the
// scaled-down default grids the bench binaries use so the whole suite runs
// on a small container. Pass --full to any bench binary to use the paper
// grid instead.

#ifndef LRM_EVAL_EXPERIMENT_GRIDS_H_
#define LRM_EVAL_EXPERIMENT_GRIDS_H_

#include <cstdint>
#include <vector>

#include "linalg/vector.h"

namespace lrm::eval {

/// \brief The paper's Table 1, with this reproduction's choice of defaults.
///
/// The paper marks defaults in bold, which the plain-text source does not
/// preserve; the defaults below are inferred from the figures (fig. 7 sweeps
/// m up to n with n fixed, figs. 4–6 sweep n with m fixed) and documented in
/// EXPERIMENTS.md.
struct PaperGrid {
  /// Relaxation factor γ (Figure 2).
  static std::vector<double> GammaValues() {
    return {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};
  }
  /// r = ratio × rank(W) (Figure 3).
  static std::vector<double> RankRatios() {
    return {0.8, 1.0, 1.2, 1.4, 1.7, 2.1, 2.5, 3.0, 3.6};
  }
  /// Domain sizes n (Figures 4–6).
  static std::vector<linalg::Index> DomainSizes() {
    return {128, 256, 512, 1024, 2048, 4096, 8192};
  }
  /// Query counts m (Figures 7–8).
  static std::vector<linalg::Index> QueryCounts() {
    return {64, 128, 256, 512, 1024};
  }
  /// s = ratio × min(m, n) (Figure 9).
  static std::vector<double> BaseRankRatios() {
    return {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0};
  }
  /// Privacy budgets tested throughout.
  static std::vector<double> Epsilons() { return {1.0, 0.1, 0.01}; }

  // Defaults (Table 1 bold entries, reconstructed).
  static constexpr double kDefaultGamma = 1.0;
  static constexpr double kDefaultRankRatio = 1.2;  // stated in §6.1
  static constexpr linalg::Index kDefaultDomainSize = 1024;
  static constexpr linalg::Index kDefaultQueryCount = 1024;
  static constexpr double kDefaultBaseRankRatio = 0.2;
  static constexpr double kDefaultEpsilon = 0.1;  // figs. 4–9 use ε = 0.1
  static constexpr int kRepetitions = 20;         // §6: 20 runs averaged
};

/// \brief Reduced grids for the default (container-friendly) bench mode.
struct DefaultGrid {
  static std::vector<double> GammaValues() {
    return {1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0};  // cheap: keep full sweep
  }
  static std::vector<double> RankRatios() {
    return {0.8, 1.0, 1.2, 1.7, 2.5, 3.6};
  }
  static std::vector<linalg::Index> DomainSizes() {
    return {128, 256, 512, 1024};
  }
  static std::vector<linalg::Index> QueryCounts() {
    return {16, 32, 64, 128};
  }
  static std::vector<double> BaseRankRatios() {
    return {0.1, 0.2, 0.4, 0.6, 0.8, 1.0};
  }

  static constexpr linalg::Index kDefaultDomainSize = 512;
  static constexpr linalg::Index kDefaultQueryCount = 64;
  /// Figures 2–3 sweep solver parameters (γ, r) with an LRM decomposition
  /// per point; their default panes use a smaller batch so the sweeps stay
  /// cheap (both phenomena are scale-free).
  static constexpr linalg::Index kSweepQueryCount = 32;
  /// MM is O(n³) per solver iteration; in default mode it only runs up to
  /// this domain size (the paper itself drops MM after Figure 6 for cost).
  static constexpr linalg::Index kMatrixMechanismDomainCap = 256;
  static constexpr int kRepetitions = 8;
};

}  // namespace lrm::eval

#endif  // LRM_EVAL_EXPERIMENT_GRIDS_H_
