#include "eval/sweep.h"

#include <utility>

#include "base/timer.h"

namespace lrm::eval {

namespace {

core::LowRankMechanismOptions SessionOptions(const SweepOptions& options) {
  core::LowRankMechanismOptions mech = options.mechanism;
  mech.warm_start = options.warm_start;
  return mech;
}

}  // namespace

SweepRunner::SweepRunner(SweepOptions options)
    : options_(std::move(options)), mech_(SessionOptions(options_)) {}

StatusOr<SweepSummary> SweepRunner::Run(
    const std::vector<std::shared_ptr<const workload::Workload>>& workloads,
    const linalg::Vector& data, const std::vector<double>& gammas,
    const std::vector<double>& epsilons) {
  if (workloads.empty() || gammas.empty() || epsilons.empty()) {
    return Status::InvalidArgument(
        "SweepRunner::Run: workloads, gammas and epsilons must all be "
        "non-empty");
  }
  for (const auto& workload : workloads) {
    if (workload == nullptr) {
      return Status::InvalidArgument("SweepRunner::Run: null workload");
    }
  }

  SweepSummary summary;
  summary.cells.reserve(workloads.size() * gammas.size() * epsilons.size());
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const workload::Workload& workload = *workloads[wi];
    for (double gamma : gammas) {
      // One strategy search per (workload, γ) pane; every ε reuses it.
      core::DecompositionOptions decomposition =
          options_.mechanism.decomposition;
      decomposition.gamma = gamma;
      mech_.set_decomposition_options(decomposition);

      WallTimer prepare_timer;
      LRM_RETURN_IF_ERROR(mech_.Prepare(workloads[wi]));
      const double prepare_seconds = prepare_timer.ElapsedSeconds();
      summary.total_prepare_seconds += prepare_seconds;
      ++summary.prepares;
      if (mech_.decomposition().warm_started) ++summary.warm_prepares;

      bool first_epsilon = true;
      for (double epsilon : epsilons) {
        SweepCellResult cell;
        cell.workload_index = wi;
        cell.gamma = gamma;
        cell.epsilon = epsilon;
        cell.warm_started = mech_.decomposition().warm_started;
        cell.outer_iterations = mech_.decomposition().outer_iterations;
        cell.expected_squared_error =
            mech_.ExpectedSquaredError(epsilon).value_or(0.0);
        LRM_ASSIGN_OR_RETURN(
            cell.run, EvaluatePreparedMechanism(mech_, workload, data,
                                                epsilon, options_.run));
        if (first_epsilon) {
          cell.run.prepare_seconds = prepare_seconds;
          first_epsilon = false;
        }
        summary.total_answer_seconds +=
            cell.run.avg_answer_seconds * cell.run.repetitions;
        summary.total_avg_squared_error += cell.run.avg_squared_error;
        summary.total_expected_squared_error += cell.expected_squared_error;
        summary.cells.push_back(std::move(cell));
      }
    }
  }
  return summary;
}

StatusOr<SweepSummary> SweepRunner::Run(
    std::shared_ptr<const workload::Workload> workload,
    const linalg::Vector& data, const std::vector<double>& gammas,
    const std::vector<double>& epsilons) {
  std::vector<std::shared_ptr<const workload::Workload>> workloads;
  workloads.push_back(std::move(workload));
  return Run(workloads, data, gammas, epsilons);
}

}  // namespace lrm::eval
