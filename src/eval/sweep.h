// Sweep-aware evaluation sessions.
//
// The paper's experiments (§6) are grids: γ × ε (Figure 2), r × ε
// (Figure 3), domain/query sizes × ε (Figures 4–9). The strategy search is
// data- and ε-independent, and consecutive grid cells solve closely related
// relaxed programs — so one LowRankMechanism *session* can answer a whole
// grid, preparing once per (workload, γ) pane and warm-starting each
// prepare from the previous pane's factors (core/alm_solver.h).
//
// SweepRunner drives a (workload, γ, ε) grid through such a session,
// recording per-cell error and prepare/answer timings plus session totals,
// so the warm-vs-cold comparison (bench/bench_sweep.cpp) and the figure
// binaries have one authoritative loop to share.

#ifndef LRM_EVAL_SWEEP_H_
#define LRM_EVAL_SWEEP_H_

#include <cstddef>
#include <memory>
#include <vector>

#include "base/status_or.h"
#include "core/low_rank_mechanism.h"
#include "eval/runner.h"
#include "workload/workload.h"

namespace lrm::eval {

/// \brief Options for SweepRunner.
struct SweepOptions {
  /// Base mechanism settings; gamma is overridden per grid cell and
  /// warm_start by the flag below.
  core::LowRankMechanismOptions mechanism;
  /// Per-cell evaluation settings (repetitions, master seed).
  RunOptions run;
  /// Reuse solver factors cell-to-cell. Off reproduces the per-cell cold
  /// DecomposeWorkload baseline (every pane pays a full SVD init and ALM
  /// run) — the comparison bench_sweep gates on.
  bool warm_start = true;
};

/// \brief Measured outcome of one (workload, γ, ε) grid cell.
struct SweepCellResult {
  /// Position in the grid.
  std::size_t workload_index = 0;
  double gamma = 0.0;
  double epsilon = 0.0;

  /// Whether this cell's prepare resumed from retained factors. Only
  /// meaningful on the first ε cell of a (workload, γ) pane — later ε
  /// cells reuse the prepared strategy outright.
  bool warm_started = false;
  /// Outer ALM iterations the pane's prepare spent (solver effort).
  int outer_iterations = 0;
  /// Analytic Lemma-1 noise error 2·Φ·Δ²/ε² of the prepared strategy
  /// (excludes the data-dependent structural term).
  double expected_squared_error = 0.0;

  /// Empirical error and timings. run.prepare_seconds carries the pane's
  /// strategy-search time on the pane's first ε cell and is 0 on the rest
  /// (the EvaluatePreparedMechanism contract).
  RunResult run;
};

/// \brief Aggregates of one sweep: the per-cell grid plus session totals.
struct SweepSummary {
  std::vector<SweepCellResult> cells;

  /// Number of strategy searches run (one per (workload, γ) pane) and how
  /// many of them warm-started.
  int prepares = 0;
  int warm_prepares = 0;

  /// Session totals across all panes/cells.
  double total_prepare_seconds = 0.0;
  double total_answer_seconds = 0.0;
  double total_avg_squared_error = 0.0;
  double total_expected_squared_error = 0.0;
};

/// \brief Drives (workload, γ, ε) grids through one retained
/// LowRankMechanism session. The session outlives Run(): chaining Run()
/// calls (or sweeping related workload lists) keeps reusing factors.
class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions options = {});

  /// Sweeps the full grid: for each workload, for each γ, prepare the
  /// session mechanism (warm when enabled and the shapes conform), then
  /// evaluate every ε on `data`. Workloads are shared handles — build them
  /// once with std::make_shared and no copies of W are made. All workloads
  /// must match data.size(); cells are visited in (workload, γ, ε)
  /// lexicographic order so related panes sit next to each other.
  StatusOr<SweepSummary> Run(
      const std::vector<std::shared_ptr<const workload::Workload>>& workloads,
      const linalg::Vector& data, const std::vector<double>& gammas,
      const std::vector<double>& epsilons);

  /// Single-workload convenience overload.
  StatusOr<SweepSummary> Run(
      std::shared_ptr<const workload::Workload> workload,
      const linalg::Vector& data, const std::vector<double>& gammas,
      const std::vector<double>& epsilons);

  /// The retained session mechanism (e.g. to seed it via PrepareWithHint
  /// or Reset() its solver between unrelated sweeps).
  core::LowRankMechanism& mechanism() { return mech_; }
  const core::LowRankMechanism& mechanism() const { return mech_; }

 private:
  SweepOptions options_;
  core::LowRankMechanism mech_;
};

}  // namespace lrm::eval

#endif  // LRM_EVAL_SWEEP_H_
