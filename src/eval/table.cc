#include "eval/table.h"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "base/check.h"
#include "base/string_util.h"

namespace lrm::eval {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  LRM_CHECK(!headers_.empty());
}

void Table::AddRow(std::vector<std::string> cells) {
  LRM_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "  ";
    os << PadLeft(headers_[c], widths[c]);
  }
  os << "\n";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << "  ";
      os << PadLeft(row[c], widths[c]);
    }
    os << "\n";
  }
  return os.str();
}

void Table::Print(std::ostream& os) const { os << ToString(); }

}  // namespace lrm::eval
