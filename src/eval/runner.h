// Repeated-trial experiment runner: prepares a mechanism once per workload
// (the strategy search is data-independent), answers `repetitions` times
// with independent noise streams, and reports the paper's Average Squared
// Error plus wall-clock timings.

#ifndef LRM_EVAL_RUNNER_H_
#define LRM_EVAL_RUNNER_H_

#include <cstdint>

#include "base/status_or.h"
#include "mechanism/mechanism.h"
#include "workload/workload.h"

namespace lrm::eval {

/// \brief Options for RunMechanism.
struct RunOptions {
  /// Independent noise draws to average over (paper: 20).
  int repetitions = 20;
  /// Master seed; each repetition gets a split stream.
  std::uint64_t seed = 20120827;  // VLDB'12 opening day
};

/// \brief Measured outcome of one (mechanism, workload, data, ε) cell.
struct RunResult {
  /// Mean total squared error over the repetitions (the paper's metric).
  double avg_squared_error = 0.0;
  /// Sample standard deviation across repetitions.
  double stddev_squared_error = 0.0;
  /// One-off strategy/optimization time.
  double prepare_seconds = 0.0;
  /// Mean per-release time.
  double avg_answer_seconds = 0.0;
  int repetitions = 0;
};

/// \brief Prepares `mech` on `workload` and averages the release error on
/// `data` at privacy budget `epsilon`.
StatusOr<RunResult> RunMechanism(mechanism::Mechanism& mech,
                                 const workload::Workload& workload,
                                 const linalg::Vector& data, double epsilon,
                                 const RunOptions& options = {});

/// \brief Like RunMechanism but assumes Prepare() already ran (strategy
/// search is data- and ε-independent, so sweeps over datasets or privacy
/// budgets should prepare once and call this per cell). The result's
/// prepare_seconds is 0.
StatusOr<RunResult> EvaluatePreparedMechanism(
    const mechanism::Mechanism& mech, const workload::Workload& workload,
    const linalg::Vector& data, double epsilon,
    const RunOptions& options = {});

}  // namespace lrm::eval

#endif  // LRM_EVAL_RUNNER_H_
