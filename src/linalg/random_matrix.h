// Random matrix/vector generation on top of rng::Engine. Lives in linalg
// (not rng) so the rng layer stays free of matrix dependencies.

#ifndef LRM_LINALG_RANDOM_MATRIX_H_
#define LRM_LINALG_RANDOM_MATRIX_H_

#include "linalg/matrix.h"
#include "rng/engine.h"

namespace lrm::linalg {

/// \brief rows×cols matrix of i.i.d. standard normal entries.
Matrix RandomGaussianMatrix(rng::Engine& engine, Index rows, Index cols);

/// \brief Fills `*out` (resized to rows×cols, reusing capacity) with i.i.d.
/// standard normal entries — the workspace form for sketching loops.
void RandomGaussianMatrixInto(rng::Engine& engine, Index rows, Index cols,
                              Matrix* out);

/// \brief Widens `*out` (rows×c, or empty) to rows×(c+added), keeping the
/// existing columns bitwise intact and drawing the new ones column by
/// column. Because the draw order is per-column, the result is
/// prefix-stable: appending 3 then 2 columns to one engine yields exactly
/// the matrix that appending 5 at once would — which is what lets the
/// sketch-doubling rank search reuse every previously drawn test column
/// instead of redrawing the whole Gaussian test matrix per attempt.
void AppendGaussianColumns(rng::Engine& engine, Index rows, Index added,
                           Matrix* out);

/// \brief Vector of i.i.d. standard normal entries.
Vector RandomGaussianVector(rng::Engine& engine, Index n);

/// \brief Vector of i.i.d. Laplace(scale) entries (the Laplace-mechanism
/// noise vector Lap(Δ/ε)^n from paper Eq. 3).
Vector RandomLaplaceVector(rng::Engine& engine, Index n, double scale);

/// \brief rows×cols matrix with i.i.d. uniform entries in [lo, hi).
Matrix RandomUniformMatrix(rng::Engine& engine, Index rows, Index cols,
                           double lo, double hi);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_RANDOM_MATRIX_H_
