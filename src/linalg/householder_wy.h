// Compact-WY block Householder machinery shared by the blocked
// factorizations (qr.cc, eigen_sym.cc).
//
// A block of jb elementary reflectors H_i = I − tau_i·v_i·v_iᵀ composes into
//
//     H_0·H_1·…·H_{jb-1} = I − V·T·Vᵀ
//
// with V m×jb unit-lower-trapezoidal (column i is zero above row i, one at
// row i) and T jb×jb upper triangular (Schreiber & Van Loan 1989; LAPACK's
// larft/larfb). Applying the composed block to a matrix is three GEMMs
// instead of jb rank-1 updates — that is the entire point of the blocked
// tier.
//
// Everything here is raw pointer-level like linalg/kernels/: row-major
// buffers with explicit leading dimensions, caller-owned scratch.

#ifndef LRM_LINALG_HOUSEHOLDER_WY_H_
#define LRM_LINALG_HOUSEHOLDER_WY_H_

#include <vector>

#include "linalg/kernels/kernels.h"

namespace lrm::linalg::internal {

using kernels::Index;

/// \brief Generates an elementary reflector H = I − tau·v·vᵀ with v(0) = 1
/// that maps the n-vector x (stride `incx`) to (beta, 0, …, 0).
///
/// On return x(0) holds beta and x(1:) holds the tail of v (LAPACK larfg
/// convention). Returns tau; tau == 0 (x already collinear with e₀) leaves
/// x untouched.
double MakeHouseholder(Index n, double* x, Index incx);

/// \brief Unblocked Householder QR of an m×jb panel stored at `a` (leading
/// dimension lda), in place: R lands on/above the diagonal, the reflector
/// tails below it (unit diagonal implicit). tau receives jb scalar factors.
void PanelQr(double* a, Index lda, Index m, Index jb, double* tau);

/// \brief Copies the unit-lower-trapezoidal V (m×jb) out of a PanelQr-
/// factored panel into `v` (leading dimension jb): explicit ones on the
/// diagonal, explicit zeros above, so V can feed plain GEMMs.
void ExtractPanelV(const double* a, Index lda, Index m, Index jb, double* v);

/// \brief Builds the jb×jb upper-triangular T of the compact-WY form from V
/// (m×jb, leading dimension ldv, unit-lower-trapezoidal with explicit
/// ones/zeros) and tau. T's strict lower triangle is zero-filled so T can
/// feed plain GEMMs.
void BuildBlockT(const double* v, Index ldv, Index m, Index jb,
                 const double* tau, double* t, Index ldt);

/// \brief Applies the block reflector from the left:
///
///   C ← (I − V·T·Vᵀ)·C      (transpose_t == false, i.e. H_0·…·H_{jb-1}·C)
///   C ← (I − V·Tᵀ·Vᵀ)·C     (transpose_t == true,  i.e. the inverse order —
///                            (H_0·…·H_{jb-1})ᵀ·C)
///
/// with C m×n (leading dimension ldc). Three GEMMs through kernels::Gemm;
/// `scratch` is resized to 2·jb·n doubles and reused across calls.
void ApplyBlockReflectorLeft(const double* v, Index ldv, const double* t,
                             Index ldt, Index m, Index jb, bool transpose_t,
                             double* c, Index ldc, Index n,
                             std::vector<double>* scratch);

}  // namespace lrm::linalg::internal

#endif  // LRM_LINALG_HOUSEHOLDER_WY_H_
