// Thin Householder QR, used by the randomized SVD range finder and as an
// orthonormalization primitive.
//
// Two implementations behind one API (dispatch mirrors the GEMM kernels,
// see linalg/kernels/kernels.h):
//
//  * scalar    — the classic column-at-a-time Householder loop. The
//                reference; wins below the blocking threshold.
//  * blocked   — compact-WY panels (linalg/householder_wy.h): panel
//                factorization + GEMM trailing-matrix updates, thin Q
//                accumulated by GEMM-applied block reflectors. BLAS-3-rich;
//                several times faster once min(m, n) clears ~32.
//
// LRM_FACTOR_KERNEL / kernels::SetFactorImpl force either path.

#ifndef LRM_LINALG_QR_H_
#define LRM_LINALG_QR_H_

#include <vector>

#include "base/status_or.h"
#include "linalg/matrix.h"
#include "linalg/matrix_view.h"

namespace lrm::linalg {

/// \brief Thin QR factorization A = Q·R with Q m×k orthonormal columns and
/// R k×n upper triangular, k = min(m, n).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// \brief Reusable scratch for the blocked QR path. Hot loops (the
/// randomized-SVD power iteration) hold one of these so repeated
/// orthonormalizations stop allocating; all buffers grow to the high-water
/// mark and stay there.
struct QrWorkspace {
  Matrix work;                  // m×n factored copy
  std::vector<double> tau;      // reflector scalars
  std::vector<double> v;        // extracted unit-lower-trapezoidal panel
  std::vector<double> t;        // compact-WY triangular factor
  std::vector<double> apply;    // block-reflector GEMM scratch
};

/// \brief Computes the thin Householder QR of `a` (any shape).
StatusOr<QrResult> HouseholderQr(const Matrix& a);

/// \brief Returns a matrix whose columns orthonormally span the column space
/// of `a` (the Q factor of the thin QR).
StatusOr<Matrix> OrthonormalizeColumns(const Matrix& a);

/// \brief Writes the thin-QR Q factor of `a` into `*q` (resized to
/// a.rows()×min(a.rows(), a.cols()); Matrix::Resize reuses capacity, so
/// repeated calls with a workspace are allocation-free at steady state).
///
/// `a` is copied into ws->work before factoring, so `q` may alias `a`'s
/// storage (orthonormalize in place); `a` must not view ws->work itself.
Status OrthonormalizeColumnsInto(ConstMatrixView a, Matrix* q,
                                 QrWorkspace* ws);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_QR_H_
