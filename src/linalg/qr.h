// Thin Householder QR, used by the randomized SVD range finder and as an
// orthonormalization primitive.

#ifndef LRM_LINALG_QR_H_
#define LRM_LINALG_QR_H_

#include "base/status_or.h"
#include "linalg/matrix.h"

namespace lrm::linalg {

/// \brief Thin QR factorization A = Q·R with Q m×k orthonormal columns and
/// R k×n upper triangular, k = min(m, n).
struct QrResult {
  Matrix q;
  Matrix r;
};

/// \brief Computes the thin Householder QR of `a` (any shape).
StatusOr<QrResult> HouseholderQr(const Matrix& a);

/// \brief Returns a matrix whose columns orthonormally span the column space
/// of `a` (the Q factor of the thin QR).
StatusOr<Matrix> OrthonormalizeColumns(const Matrix& a);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_QR_H_
