#include "linalg/householder_wy.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"
#include "linalg/kernels/parallel.h"

namespace lrm::linalg::internal {

namespace kernels = lrm::linalg::kernels;

namespace {

// Panel helpers go parallel only past this many scalar multiply-adds; the
// task boundaries below are all column/row counts derived from the panel
// shape, so threaded and sequential runs produce identical bits.
constexpr Index kPanelParallelWork = Index{1} << 15;

}  // namespace

double MakeHouseholder(Index n, double* x, Index incx) {
  if (n <= 1) return 0.0;
  double tail_sq = 0.0;
  for (Index i = 1; i < n; ++i) {
    const double xi = x[i * incx];
    tail_sq += xi * xi;
  }
  const double alpha = x[0];
  if (tail_sq == 0.0) return 0.0;
  double beta = -std::copysign(std::sqrt(alpha * alpha + tail_sq), alpha);
  const double tau = (beta - alpha) / beta;
  const double inv = 1.0 / (alpha - beta);
  for (Index i = 1; i < n; ++i) x[i * incx] *= inv;
  x[0] = beta;
  return tau;
}

void PanelQr(double* a, Index lda, Index m, Index jb, double* tau) {
  for (Index c = 0; c < jb; ++c) {
    double* col = a + c * lda + c;  // a(c, c)
    tau[c] = MakeHouseholder(m - c, col, lda);
    if (tau[c] == 0.0 || c + 1 >= jb) continue;
    // Apply H_c = I − tau·v·vᵀ to the remaining panel columns. The panel is
    // at most a few dozen columns wide, so scalar loops do the arithmetic;
    // for tall panels the columns (mutually independent: each reads only
    // `col` and writes its own column) are chunked across the shared task
    // runtime. The trailing matrix beyond the panel gets the blocked GEMM
    // treatment.
    const double beta = col[0];
    col[0] = 1.0;  // materialize the unit head for the dot products
    const double tau_c = tau[c];
    const Index rows = m - c;
    const auto apply_to = [a, lda, c, col, tau_c, rows](Index j) {
      double* col_j = a + c * lda + j;
      double dot = 0.0;
      for (Index i = 0; i < rows; ++i) dot += col[i * lda] * col_j[i * lda];
      const double s = -tau_c * dot;
      for (Index i = 0; i < rows; ++i) col_j[i * lda] += s * col[i * lda];
    };
    const Index cols = jb - c - 1;
    if (rows * cols >= kPanelParallelWork && cols > 1) {
      constexpr Index kColsPerTask = 4;
      const Index num_tasks = (cols + kColsPerTask - 1) / kColsPerTask;
      kernels::ParallelFor(num_tasks, [&](Index task) {
        const Index j0 = c + 1 + task * kColsPerTask;
        const Index j1 = std::min(jb, j0 + kColsPerTask);
        for (Index j = j0; j < j1; ++j) apply_to(j);
      });
    } else {
      for (Index j = c + 1; j < jb; ++j) apply_to(j);
    }
    col[0] = beta;
  }
}

void ExtractPanelV(const double* a, Index lda, Index m, Index jb, double* v) {
  const auto copy_rows = [a, lda, jb, v](Index i0, Index i1) {
    for (Index i = i0; i < i1; ++i) {
      const double* a_row = a + i * lda;
      double* v_row = v + i * jb;
      for (Index j = 0; j < jb; ++j) {
        v_row[j] = i > j ? a_row[j] : (i == j ? 1.0 : 0.0);
      }
    }
  };
  if (m * jb < kPanelParallelWork) {
    copy_rows(0, m);
    return;
  }
  constexpr Index kRowsPerTask = 256;  // pure copy: rows are independent
  const Index num_tasks = (m + kRowsPerTask - 1) / kRowsPerTask;
  kernels::ParallelFor(num_tasks, [&](Index task) {
    const Index i0 = task * kRowsPerTask;
    copy_rows(i0, std::min(m, i0 + kRowsPerTask));
  });
}

void BuildBlockT(const double* v, Index ldv, Index m, Index jb,
                 const double* tau, double* t, Index ldt) {
  // Forward columnwise larft: T(0:i, i) = −tau_i·T(0:i,0:i)·(Vᵀ·v_i),
  // T(i, i) = tau_i. Column i of V is supported on rows i..m-1.
  for (Index i = 0; i < jb; ++i) {
    double* t_col = t + i;
    for (Index r = i + 1; r < jb; ++r) t[r * ldt + i] = 0.0;
    t[i * ldt + i] = tau[i];
    if (i == 0 || tau[i] == 0.0) {
      for (Index r = 0; r < i; ++r) t_col[r * ldt] = 0.0;
      continue;
    }
    // y = V(:, 0:i)ᵀ·v_i — dot products start at row i where v_i begins.
    // The i dots are independent (disjoint t_col slots) and dominate the
    // larft cost, so tall panels chunk them over the shared task runtime;
    // each dot runs whole inside one task, keeping the bits thread-count
    // independent.
    const auto dots_for = [v, ldv, m, i, t_col, ldt](Index r0, Index r1) {
      for (Index r = r0; r < r1; ++r) {
        double dot = 0.0;
        for (Index row = i; row < m; ++row) {
          dot += v[row * ldv + r] * v[row * ldv + i];
        }
        t_col[r * ldt] = dot;
      }
    };
    if ((m - i) * i >= kPanelParallelWork && i > 1) {
      constexpr Index kDotsPerTask = 8;
      const Index num_tasks = (i + kDotsPerTask - 1) / kDotsPerTask;
      kernels::ParallelFor(num_tasks, [&](Index task) {
        const Index r0 = task * kDotsPerTask;
        dots_for(r0, std::min(i, r0 + kDotsPerTask));
      });
    } else {
      dots_for(0, i);
    }
    // T(0:i, i) = −tau_i·T(0:i,0:i)·y in place, front to back: entry r of
    // the upper-triangular product reads only y_c with c ≥ r, so ascending
    // order overwrites each slot after its last use.
    for (Index r = 0; r < i; ++r) {
      double sum = 0.0;
      for (Index c = r; c < i; ++c) sum += t[r * ldt + c] * t_col[c * ldt];
      t_col[r * ldt] = -tau[i] * sum;
    }
  }
}

void ApplyBlockReflectorLeft(const double* v, Index ldv, const double* t,
                             Index ldt, Index m, Index jb, bool transpose_t,
                             double* c, Index ldc, Index n,
                             std::vector<double>* scratch) {
  if (m == 0 || n == 0 || jb == 0) return;
  LRM_CHECK_GE(jb, 0);
  scratch->resize(static_cast<std::size_t>(2 * jb * n));
  double* w = scratch->data();        // jb×n
  double* tw = scratch->data() + jb * n;  // jb×n
  // W = Vᵀ·C, TW = op(T)·W, C ← C − V·TW.
  kernels::Gemm(kernels::Op::kTranspose, kernels::Op::kNone, jb, n, m, 1.0, v,
                ldv, c, ldc, 0.0, w, n);
  kernels::Gemm(transpose_t ? kernels::Op::kTranspose : kernels::Op::kNone,
                kernels::Op::kNone, jb, n, jb, 1.0, t, ldt, w, n, 0.0, tw, n);
  kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, m, n, jb, -1.0, v,
                ldv, tw, n, 1.0, c, ldc);
}

}  // namespace lrm::linalg::internal
