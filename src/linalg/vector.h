// Dense double-precision vector.

#ifndef LRM_LINALG_VECTOR_H_
#define LRM_LINALG_VECTOR_H_

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

#include "base/check.h"

namespace lrm::linalg {

/// Signed index type used across the linear-algebra layer (Google style:
/// avoid unsigned arithmetic in loop logic).
using Index = std::ptrdiff_t;

/// \brief Dense vector of doubles with bounds-checked access in debug builds.
class Vector {
 public:
  /// Empty vector.
  Vector() = default;

  /// Zero vector of dimension n.
  explicit Vector(Index n) : data_(static_cast<std::size_t>(n), 0.0) {
    LRM_CHECK_GE(n, 0);
  }

  /// Vector of dimension n filled with `value`.
  Vector(Index n, double value) : data_(static_cast<std::size_t>(n), value) {
    LRM_CHECK_GE(n, 0);
  }

  /// From a braced list: Vector v{1.0, 2.0, 3.0}.
  Vector(std::initializer_list<double> values) : data_(values) {}

  /// Adopts an existing buffer.
  explicit Vector(std::vector<double> values) : data_(std::move(values)) {}

  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double& operator[](Index i) {
    LRM_DCHECK(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }
  double operator[](Index i) const {
    LRM_DCHECK(i >= 0 && i < size());
    return data_[static_cast<std::size_t>(i)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  std::vector<double>::iterator begin() { return data_.begin(); }
  std::vector<double>::iterator end() { return data_.end(); }
  std::vector<double>::const_iterator begin() const { return data_.begin(); }
  std::vector<double>::const_iterator end() const { return data_.end(); }

  /// Sets every entry to `value`.
  void Fill(double value);

  Vector& operator+=(const Vector& other);
  Vector& operator-=(const Vector& other);
  Vector& operator*=(double scalar);
  Vector& operator/=(double scalar);

  /// this += scalar * other (fused AXPY, the hot path in solvers).
  void Axpy(double scalar, const Vector& other);

  /// Debug rendering, e.g. "[1, 2, 3]".
  std::string ToString() const;

 private:
  std::vector<double> data_;
};

Vector operator+(Vector a, const Vector& b);
Vector operator-(Vector a, const Vector& b);
Vector operator*(Vector a, double scalar);
Vector operator*(double scalar, Vector a);
Vector operator-(Vector a);  // negation

/// \brief Inner product; dimensions must match.
double Dot(const Vector& a, const Vector& b);

/// \brief Euclidean norm.
double Norm2(const Vector& a);

/// \brief Sum of squares (‖a‖₂²).
double SquaredNorm(const Vector& a);

/// \brief L1 norm.
double Norm1(const Vector& a);

/// \brief Max-absolute-entry norm.
double NormInf(const Vector& a);

/// \brief Sum of entries.
double Sum(const Vector& a);

/// \brief True iff every entry of the vector is finite (no NaN/±Inf).
bool AllFinite(const Vector& a);

/// \brief True iff dimensions match and entries differ by at most `tol`.
bool ApproxEqual(const Vector& a, const Vector& b, double tol);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_VECTOR_H_
