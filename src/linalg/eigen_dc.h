// Divide-and-conquer eigensolver for symmetric tridiagonal matrices
// (Cuppen 1981; Gu & Eisenstat 1995; LAPACK stedc/laed1-4 structure).
//
// The tridiagonal is split in half by subtracting a rank-one coupling
// (Cuppen's trick), each half is solved recursively (leaves fall back to
// the implicit-shift QL iteration in linalg/tridiag_ql.h), and the two
// spectra are merged by solving the secular equation of the rank-one
// update with safeguarded root-finding. Deflation removes merged entries
// whose z-component is negligible and rotates away near-equal eigenvalue
// pairs before any secular work happens. Eigenvectors of the merged
// problem are assembled with the Löwner-formula z-refresh (which makes
// them orthogonal to working precision regardless of how tightly the
// secular roots converged) and back-multiplied onto the subproblem bases
// with two kernels::Gemm calls per merge — the dominant O(n³) work rides
// the blocked, row-strip-threaded GEMM tier, which is what lets
// SymmetricEigen scale past the QL iteration's n ≈ 1024 wall.
//
// This replaces the O(n²)-rotation QL accumulation as the production
// tridiagonal backend (LRM_FACTOR_KERNEL=dc, and `auto` at size); QL stays
// the reference oracle (tests/linalg/eigen_properties_test.cc compares the
// two spectra at 1e-10 scale).

#ifndef LRM_LINALG_EIGEN_DC_H_
#define LRM_LINALG_EIGEN_DC_H_

#include <memory>
#include <vector>

#include "base/status.h"
#include "linalg/matrix.h"

namespace lrm::linalg {

/// \brief Reusable scratch for TridiagEigenDc. Merges within one subtree
/// never overlap (the recursion finishes both children before merging), so
/// one set of buffers sized to the largest merged problem serves a whole
/// subtree; all buffers grow to the high-water mark and stay there, making
/// repeated solves through one workspace allocation-free and bitwise
/// deterministic. When the recursion forks (LRM_GEMM_THREADS > 1) each
/// left subtree runs on its own entry of `fork_children`, a lazily-built
/// chain mirroring the parallel right spine of the tree, reused across
/// solves like every other buffer.
struct TridiagDcWorkspace {
  std::vector<double> z;       ///< rank-one vector in the merged eigenbasis
  std::vector<double> zsort;   ///< z permuted into merged order
  std::vector<double> dsort;   ///< merged eigenvalues, ascending
  std::vector<double> dl;      ///< surviving (non-deflated) poles
  std::vector<double> zsec;    ///< surviving z-components
  std::vector<double> zhat;    ///< Löwner-refreshed z
  std::vector<double> lambda;  ///< secular roots
  std::vector<double> ddefl;   ///< deflated eigenvalues
  std::vector<Index> perm;     ///< ascending merge permutation
  std::vector<Index> cols;     ///< V column holding each merged entry
  std::vector<Index> scol;     ///< V column per surviving entry
  std::vector<Index> dcol;     ///< V column per deflated entry
  std::vector<Index> pack;     ///< survivors grouped top / dense / bottom
  std::vector<int> ctype;      ///< column support: top / dense / bottom
  std::vector<int> stype;      ///< survivor column support classes
  std::vector<Index> order;    ///< final merged output order
  Matrix delta;    ///< delta(j, i) = dl[i] − λ_j, kept cancellation-free
  Matrix s_pack;   ///< secular eigenvectors, rows in packed survivor order
  Matrix q_pack;   ///< packed non-deflated V columns (m×K)
  Matrix u;        ///< merge GEMM output (m×K)
  Matrix staged;   ///< deflated columns staged for the final re-sort
  Matrix leaf_vt;  ///< leaf QL rotation basis
  std::vector<double> leaf_e;  ///< leaf subdiagonal copy (QL destroys it)
  /// Scratch for left subtrees when the recursion runs both children
  /// concurrently. The right spine of a fork keeps using this workspace, so
  /// its fork at spine depth d hands fork_children[d] to that fork's left
  /// child — every concurrently-live subtree then owns a distinct
  /// workspace. Empty until the first parallel fork; grows to the spine
  /// depth (≈ log₂(n / fork threshold)) and is reused across solves.
  std::vector<std::unique_ptr<TridiagDcWorkspace>> fork_children;
};

/// \brief Computes all eigenpairs of the symmetric tridiagonal matrix with
/// diagonal `d` (n entries) and subdiagonal `e[1:]` (e[0] is ignored — the
/// same convention as the QL iteration).
///
/// On success `d` holds the eigenvalues in ascending order, `v` (resized to
/// n×n) holds the matching orthonormal eigenvectors as columns, and `e` is
/// destroyed. `workspace` may be null (scratch is then allocated per call);
/// passing the same workspace to repeated solves is allocation-free at
/// steady state and bitwise reproducible.
///
/// \returns kNumericalError if a leaf QL solve fails to converge.
Status TridiagEigenDc(Vector& d, Vector& e, Matrix* v,
                      TridiagDcWorkspace* workspace = nullptr);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_EIGEN_DC_H_
