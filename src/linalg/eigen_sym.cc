#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"

namespace lrm::linalg {

namespace {

double Hypot(double a, double b) { return std::hypot(a, b); }

// Householder reduction of a symmetric matrix (stored in v, modified in
// place to accumulate the transformation) to tridiagonal form. `d` receives
// the diagonal, `e` the subdiagonal (e[0] unused). Port of EISPACK tred2.
void Tred2(Matrix& v, Vector& d, Vector& e) {
  const Index n = v.rows();
  for (Index j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (Index i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (Index k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (Index j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (Index k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (Index j = 0; j < i; ++j) e[j] = 0.0;

      for (Index j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (Index k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (Index j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (Index j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (Index j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (Index k = j; k <= i - 1; ++k) {
          v(k, j) -= (f * e[k] + g * d[k]);
        }
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (Index i = 0; i < n - 1; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (Index k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (Index j = 0; j <= i; ++j) {
        double g = 0.0;
        for (Index k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (Index k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (Index k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (Index j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal (d, e); eigenvectors are
// accumulated into v. Port of EISPACK tql2. Returns false on non-convergence.
bool Tql2(Matrix& v, Vector& d, Vector& e) {
  const Index n = v.rows();
  for (Index i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::numeric_limits<double>::epsilon();
  for (Index l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    Index m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > 50) return false;
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = Hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (Index i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (Index i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = Hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          for (Index k = 0; k < n; ++k) {
            h = v(k, i + 1);
            v(k, i + 1) = s * v(k, i) + c * h;
            v(k, i) = c * v(k, i) - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvectors along.
  for (Index i = 0; i < n - 1; ++i) {
    Index k = i;
    double p = d[i];
    for (Index j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      for (Index j = 0; j < n; ++j) std::swap(v(j, i), v(j, k));
    }
  }
  return true;
}

}  // namespace

StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("SymmetricEigen: matrix is %td x %td, expected square",
                  a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (n == 0) {
    return SymmetricEigenResult{Vector(), Matrix()};
  }

  // Symmetrize to absorb roundoff asymmetry in the caller's input.
  Matrix v(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      v(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }

  Vector d(n);
  Vector e(n);
  Tred2(v, d, e);
  if (!Tql2(v, d, e)) {
    return Status::NumericalError(
        "SymmetricEigen: QL iteration failed to converge");
  }
  return SymmetricEigenResult{std::move(d), std::move(v)};
}

StatusOr<Matrix> ProjectToPsdCone(const Matrix& a, double floor) {
  LRM_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(a));
  const Index n = a.rows();
  // Reassemble V·diag(max(λ, floor))·Vᵀ.
  Matrix scaled = eig.eigenvectors;  // columns scaled by clamped eigenvalues
  for (Index j = 0; j < n; ++j) {
    const double lambda = std::max(eig.eigenvalues[j], floor);
    for (Index i = 0; i < n; ++i) scaled(i, j) *= lambda;
  }
  return MultiplyABt(scaled, eig.eigenvectors);
}

}  // namespace lrm::linalg
