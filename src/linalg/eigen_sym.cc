#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "base/string_util.h"
#include "linalg/eigen_dc.h"
#include "linalg/householder_wy.h"
#include "linalg/kernels/kernels.h"
#include "linalg/kernels/parallel.h"
#include "linalg/matrix_view.h"
#include "linalg/tridiag_partial.h"
#include "linalg/tridiag_ql.h"

namespace lrm::linalg {

namespace {

namespace kernels = lrm::linalg::kernels;

// Householder reduction of a symmetric matrix (stored in v, modified in
// place to accumulate the transformation) to tridiagonal form. `d` receives
// the diagonal, `e` the subdiagonal (e[0] unused). Port of EISPACK tred2.
void Tred2(Matrix& v, Vector& d, Vector& e) {
  const Index n = v.rows();
  for (Index j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (Index i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (Index k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (Index j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (Index k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (Index j = 0; j < i; ++j) e[j] = 0.0;

      for (Index j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (Index k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (Index j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (Index j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (Index j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (Index k = j; k <= i - 1; ++k) {
          v(k, j) -= (f * e[k] + g * d[k]);
        }
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (Index i = 0; i < n - 1; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (Index k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (Index j = 0; j <= i; ++j) {
        double g = 0.0;
        for (Index k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (Index k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (Index k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (Index j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// ---------------------------------------------------------------------------
// Blocked tridiagonalization (LAPACK sytrd/latrd structure, lower storage).
//
// The similarity reduction A → Qᵀ·A·Q = tridiag(d, e) is organized in panels
// of kTridiagPanel reflectors. Within a panel only the current column is
// updated (a pair of skinny GEMVs against the accumulated V/W panels); the
// bulk of the flops — the symmetric rank-2·jb update of the trailing matrix
// A ← A − V·Wᵀ − W·Vᵀ — is deferred to two GEMMs per panel. Reflector tails
// persist below the first subdiagonal of the working matrix (exactly where
// the reduction zeroed it), so Q can be re-accumulated afterwards from
// compact-WY blocks without extra storage.
// ---------------------------------------------------------------------------

constexpr Index kTridiagPanel = 32;

// `auto` engages the GEMM-rich tier (blocked tridiagonalization + D&C
// tridiagonal solve) from this size; below it the scalar tred2 + QL pair
// wins on overhead.
constexpr Index kBlockedEigenMinDim = 128;

// Resolved per-call dispatch: which tridiagonalization, which tridiagonal
// eigensolver. kDc is the production path at size; kBlocked keeps the QL
// iteration on the blocked reduction (the perf oracle the dc/QL bench gate
// compares against); kReference is the all-scalar seed behavior.
struct EigenDispatch {
  bool blocked_tridiag;
  bool dc_tridiag_solver;
};

EigenDispatch ResolveEigenDispatch(Index n) {
  switch (kernels::ActiveFactorImpl()) {
    case kernels::FactorImpl::kReference:
      return {false, false};
    case kernels::FactorImpl::kBlocked:
      return {true, false};
    case kernels::FactorImpl::kDc:
    case kernels::FactorImpl::kPartial:
      // kPartial only affects the subset solver; a full-spectrum solve
      // takes the production (blocked + D&C) route.
      return {true, true};
    case kernels::FactorImpl::kAuto:
      break;
  }
  const bool at_size = n >= kBlockedEigenMinDim;
  return {at_size, at_size};
}

// Width of the panel starting at reduction offset `off` (the last reflector
// annihilates below the subdiagonal of column n-3).
Index TridiagPanelWidth(Index n, Index off) {
  return std::min<Index>(kTridiagPanel, n - 2 - off);
}

// Reduces the symmetric working matrix `m` to tridiagonal (d, e) in place.
// On return d holds the diagonal, e[1:] the subdiagonal (e[0] = 0), tau the
// reflector scalars, and column c of `m` keeps the tail of reflector v_c
// below row c+1 (v_c has an implicit 1 at row c+1).
void BlockedTridiagonalize(Matrix& m, Vector& d, Vector& e,
                           SymmetricEigenWorkspace& ws) {
  const Index n = m.rows();
  ws.tau.assign(static_cast<std::size_t>(n), 0.0);
  std::vector<double>& tau = ws.tau;
  Matrix& v_panel = ws.v_panel;
  Matrix& w_panel = ws.w_panel;
  ws.panel_p.resize(static_cast<std::size_t>(n));
  ws.panel_vc.resize(static_cast<std::size_t>(n));
  std::vector<double>& p = ws.panel_p;
  std::vector<double>& vc = ws.panel_vc;
  double u1[kTridiagPanel], u2[kTridiagPanel];

  Index off = 0;
  while (n - off > 2) {
    const Index nt = n - off;
    const Index jb = TridiagPanelWidth(n, off);
    v_panel.Resize(nt, jb);  // zero-filled; columns gain their support below
    w_panel.Resize(nt, jb);
    double* s = m.data() + off * n + off;  // S(i, j) = s[i·n + j]

    for (Index i = 0; i < jb; ++i) {
      double* v_col = v_panel.data() + i;  // column i, leading dimension jb
      if (i > 0) {
        // Catch column i up with the panel's earlier reflectors:
        // S(i:nt, i) −= V(i:nt, 0:i)·W(i, 0:i)ᵀ + W(i:nt, 0:i)·V(i, 0:i)ᵀ.
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, nt - i, 1, i,
                      -1.0, v_panel.RowPtr(i), jb, w_panel.RowPtr(i), 1, 1.0,
                      s + i * n + i, n);
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, nt - i, 1, i,
                      -1.0, w_panel.RowPtr(i), jb, v_panel.RowPtr(i), 1, 1.0,
                      s + i * n + i, n);
      }
      d[off + i] = s[i * n + i];

      // Reflector annihilating S(i+2:nt, i); beta lands on the subdiagonal.
      const Index len = nt - i - 1;
      double* x = s + (i + 1) * n + i;
      const double t = internal::MakeHouseholder(len, x, n);
      tau[static_cast<std::size_t>(off + i)] = t;
      e[off + i + 1] = x[0];
      v_col[(i + 1) * jb] = 1.0;
      for (Index r = i + 2; r < nt; ++r) v_col[r * jb] = s[r * n + i];

      // w = tau·(S₂₂·v − V·(Wᵀv) − W·(Vᵀv)) − ½·tau·(wᵀv)·v, where S₂₂ is
      // the trailing block untouched by this panel so far. The reflector
      // tail is copied to contiguous storage first (at panel stride jb
      // every access was a fresh cache line), and the product runs through
      // the symmetric level-2 kernel, which reads only S₂₂'s lower
      // triangle — this multiply is the one O(n³) term of the reduction
      // that cannot defer into a GEMM, and it dominated the 1024 solve
      // (~1.0 s through the general GEMV path, ~0.2 s as a symv).
      const double* v_tail = v_col + (i + 1) * jb;
      for (Index r = 0; r < len; ++r) {
        vc[static_cast<std::size_t>(r)] = v_tail[r * jb];
      }
      kernels::SymvLower(len, 1.0, s + (i + 1) * n + (i + 1), n, vc.data(),
                         0.0, p.data());
      if (i > 0) {
        // u1 = Wᵀv and u2 = Vᵀv in one fused pass: the panels are row-major,
        // so accumulating per-row outer contributions reads both W and V
        // contiguously (the transposed-GEMV form strides by jb instead).
        for (Index j = 0; j < i; ++j) {
          u1[j] = 0.0;
          u2[j] = 0.0;
        }
        const double* w_rows = w_panel.RowPtr(i + 1);
        const double* v_rows = v_panel.RowPtr(i + 1);
        for (Index r = 0; r < len; ++r) {
          const double vr = vc[static_cast<std::size_t>(r)];
          const double* w_row = w_rows + r * jb;
          const double* v_row = v_rows + r * jb;
          for (Index j = 0; j < i; ++j) {
            u1[j] += w_row[j] * vr;
            u2[j] += v_row[j] * vr;
          }
        }
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, len, 1, i, -1.0,
                      v_panel.RowPtr(i + 1), jb, u1, 1, 1.0, p.data(),
                      1);
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, len, 1, i, -1.0,
                      w_panel.RowPtr(i + 1), jb, u2, 1, 1.0, p.data(),
                      1);
      }
      double wv = 0.0;
      for (Index r = 0; r < len; ++r) {
        p[static_cast<std::size_t>(r)] *= t;
        wv += p[static_cast<std::size_t>(r)] * vc[static_cast<std::size_t>(r)];
      }
      const double alpha = -0.5 * t * wv;
      double* w_col = w_panel.data() + i;
      for (Index r = 0; r < len; ++r) {
        w_col[(i + 1 + r) * jb] =
            p[static_cast<std::size_t>(r)] +
            alpha * vc[static_cast<std::size_t>(r)];
      }
    }

    // Deferred symmetric rank-2·jb update of the trailing matrix:
    // S(jb:nt, jb:nt) −= V₂·W₂ᵀ + W₂·V₂ᵀ. Only the lower trapezoid is
    // maintained (row strips of 128, each updating columns up to its last
    // row) — the symv above never reads the strict upper triangle, so
    // updating it would be pure wasted bandwidth.
    // The strips touch disjoint rows of S, so they run as tasks on the
    // shared runtime; within a strip the two accumulating GEMMs keep their
    // order, so the bits match the sequential walk exactly.
    const Index rest = nt - jb;
    constexpr Index kTrailStrip = 128;
    const Index num_strips = (rest + kTrailStrip - 1) / kTrailStrip;
    kernels::ParallelFor(num_strips, [&](Index strip) {
      const Index r0 = strip * kTrailStrip;
      const Index rb = std::min(kTrailStrip, rest - r0);
      kernels::Gemm(kernels::Op::kNone, kernels::Op::kTranspose, rb, r0 + rb,
                    jb, -1.0, v_panel.RowPtr(jb + r0), jb,
                    w_panel.RowPtr(jb), jb, 1.0, s + (jb + r0) * n + jb, n);
      kernels::Gemm(kernels::Op::kNone, kernels::Op::kTranspose, rb, r0 + rb,
                    jb, -1.0, w_panel.RowPtr(jb + r0), jb,
                    v_panel.RowPtr(jb), jb, 1.0, s + (jb + r0) * n + jb, n);
    });
    off += jb;
  }

  // 2×2 (or smaller) tail is already tridiagonal.
  if (n >= 2) {
    d[n - 2] = m(n - 2, n - 2);
    e[n - 1] = m(n - 1, n - 2);
  }
  if (n >= 1) d[n - 1] = m(n - 1, n - 1);
  e[0] = 0.0;
}

// Accumulates Q = H_0·H_1·…·H_{n-3} (the tridiagonalizing transform, so
// A = Q·T·Qᵀ) by applying the compact-WY blocks to the identity in reverse
// panel order — three GEMMs per panel via ApplyBlockReflectorLeft.
void FormTridiagQ(const Matrix& m, SymmetricEigenWorkspace& ws, Matrix* q) {
  const std::vector<double>& tau = ws.tau;
  const Index n = m.rows();
  q->Resize(n, n);
  for (Index i = 0; i < n; ++i) (*q)(i, i) = 1.0;
  if (n <= 2) return;

  // Walk the forward panel partition backwards. Forward offsets advance by
  // the panel width, which is kTridiagPanel for every panel but the last,
  // so they are exactly the multiples of kTridiagPanel below n − 2.
  std::vector<double>& v = ws.wy_v;
  std::vector<double>& t = ws.wy_t;
  std::vector<double>& scratch = ws.wy_apply;
  const Index last_off = ((n - 3) / kTridiagPanel) * kTridiagPanel;
  for (Index off = last_off; off >= 0; off -= kTridiagPanel) {
    const Index jb = TridiagPanelWidth(n, off);
    const Index rows = n - off - 1;  // reflector support starts at off+1
    v.resize(static_cast<std::size_t>(rows * jb));
    internal::ExtractPanelV(m.data() + (off + 1) * n + off, n, rows, jb,
                            v.data());
    t.resize(static_cast<std::size_t>(jb * jb));
    internal::BuildBlockT(v.data(), jb, rows, jb, tau.data() + off, t.data(),
                          jb);
    // Columns ≤ off of Q are still identity columns with no support in rows
    // ≥ off+1; restrict the update to the live block.
    internal::ApplyBlockReflectorLeft(v.data(), jb, t.data(), jb, rows, jb,
                                      /*transpose_t=*/false,
                                      q->data() + (off + 1) * n + (off + 1),
                                      n, n - off - 1, &scratch);
  }
}

// Applies the accumulated tridiagonalizing transform to a dense n×k matrix
// in place (x ← Q·x), walking the compact-WY panels in reverse order exactly
// like FormTridiagQ but without ever materializing Q — O(n²·k) instead of
// O(n³). Rows 0..off of x are untouched by the panel at `off` (its
// reflectors have no support there), matching Q's unit leading column.
void BackTransformTridiagVectors(const Matrix& m, SymmetricEigenWorkspace& ws,
                                 Matrix* x) {
  const Index n = m.rows();
  const Index k = x->cols();
  if (n <= 2) return;
  std::vector<double>& v = ws.wy_v;
  std::vector<double>& t = ws.wy_t;
  std::vector<double>& scratch = ws.wy_apply;
  const Index last_off = ((n - 3) / kTridiagPanel) * kTridiagPanel;
  for (Index off = last_off; off >= 0; off -= kTridiagPanel) {
    const Index jb = TridiagPanelWidth(n, off);
    const Index rows = n - off - 1;
    v.resize(static_cast<std::size_t>(rows * jb));
    internal::ExtractPanelV(m.data() + (off + 1) * n + off, n, rows, jb,
                            v.data());
    t.resize(static_cast<std::size_t>(jb * jb));
    internal::BuildBlockT(v.data(), jb, rows, jb, ws.tau.data() + off,
                          t.data(), jb);
    internal::ApplyBlockReflectorLeft(v.data(), jb, t.data(), jb, rows, jb,
                                      /*transpose_t=*/false,
                                      x->data() + (off + 1) * k, k, k,
                                      &scratch);
  }
}

void SymmetrizeInto(const Matrix& a, Matrix* out) {
  const Index n = a.rows();
  out->Resize(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      (*out)(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }
}

// Top-k tail of a full decomposition (eigenvalues are ascending).
SymmetricEigenResult SliceTopK(const SymmetricEigenResult& full, Index k) {
  const Index n = full.eigenvalues.size();
  SymmetricEigenResult out;
  out.eigenvalues = Vector(k);
  for (Index i = 0; i < k; ++i) {
    out.eigenvalues[i] = full.eigenvalues[n - k + i];
  }
  out.eigenvectors = SliceCols(full.eigenvectors, n - k, n);
  return out;
}

// Whether PartialSymmetricEigen runs the true subset path (bisection +
// inverse iteration) or slices a full solve. kAuto wants both the blocked
// tier engaged (n ≥ 128) and an actual subset (2k ≤ n) — above half the
// spectrum, D&C's one-shot assembly wins.
bool UsePartialPath(Index n, Index k) {
  switch (kernels::ActiveFactorImpl()) {
    case kernels::FactorImpl::kReference:
    case kernels::FactorImpl::kBlocked:
    case kernels::FactorImpl::kDc:
      return false;
    case kernels::FactorImpl::kPartial:
      return true;
    case kernels::FactorImpl::kAuto:
      break;
  }
  return n >= kBlockedEigenMinDim && 2 * k <= n;
}

// Count of eigenvalues of tridiag(d, e) strictly above
// relative_cutoff·max(λ_max, 0). The epsilon bump keeps eigenvalues equal to
// the threshold (in particular the all-zero spectrum, threshold 0) out of
// the count.
Index CountAboveRelativeCutoff(Index n, const double* d, const double* e,
                               double relative_cutoff) {
  const double lambda_max = internal::TridiagMaxEigenvalue(n, d, e);
  const double threshold = relative_cutoff * std::max(lambda_max, 0.0);
  const double bump =
      4.0 * std::numeric_limits<double>::epsilon() * threshold +
      std::numeric_limits<double>::min();
  return n - internal::TridiagCountBelow(n, d, e, threshold + bump);
}

}  // namespace

StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a) {
  return SymmetricEigen(a, nullptr);
}

StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a,
                                              SymmetricEigenWorkspace* ws) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("SymmetricEigen: matrix is %td x %td, expected square",
                  a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (n == 0) {
    return SymmetricEigenResult{Vector(), Matrix()};
  }

  SymmetricEigenWorkspace local;
  SymmetricEigenWorkspace& w = ws != nullptr ? *ws : local;

  // Symmetrize to absorb roundoff asymmetry in the caller's input.
  SymmetrizeInto(a, &w.work);

  Vector d(n);
  Vector e(n);
  const EigenDispatch dispatch = ResolveEigenDispatch(n);
  if (dispatch.dc_tridiag_solver) {
    // Production path: blocked tridiagonalization, then divide-and-conquer
    // on the tridiagonal (eigen_dc.h) and one GEMM rotating the tridiagonal
    // eigenbasis back through the accumulated transform.
    BlockedTridiagonalize(w.work, d, e, w);
    FormTridiagQ(w.work, w, &w.q);
    LRM_RETURN_IF_ERROR(TridiagEigenDc(d, e, &w.vt, &w.dc));
    Matrix vectors(n, n);
    kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, n, n, n, 1.0,
                  w.q.data(), n, w.vt.data(), n, 0.0, vectors.data(), n);
    return SymmetricEigenResult{std::move(d), std::move(vectors)};
  }

  // QL paths hand TridiagQlRows the TRANSPOSED starting basis (rows =
  // tridiagonalizing transform columns) so the rotation loops stream
  // contiguously, and transpose back at the end — two O(n²) copies against
  // the O(n³) accumulation.
  if (dispatch.blocked_tridiag) {
    BlockedTridiagonalize(w.work, d, e, w);
    FormTridiagQ(w.work, w, &w.q);
    TransposeInto(w.q, &w.vt);
  } else {
    Tred2(w.work, d, e);
    TransposeInto(w.work, &w.vt);
  }
  if (!internal::TridiagQlRows(w.vt, d.data(), e.data())) {
    return Status::NumericalError(
        "SymmetricEigen: QL iteration failed to converge");
  }
  return SymmetricEigenResult{std::move(d), Transpose(w.vt)};
}

StatusOr<SymmetricEigenResult> PartialSymmetricEigen(
    const Matrix& a, Index k, SymmetricEigenWorkspace* ws) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(StrFormat(
        "PartialSymmetricEigen: matrix is %td x %td, expected square",
        a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (n == 0 || k <= 0) {
    return Status::InvalidArgument(StrFormat(
        "PartialSymmetricEigen: need k >= 1 and a nonempty matrix "
        "(k=%td, n=%td)",
        k, n));
  }
  k = std::min(k, n);
  if (!UsePartialPath(n, k)) {
    LRM_ASSIGN_OR_RETURN(SymmetricEigenResult full, SymmetricEigen(a, ws));
    return SliceTopK(full, k);
  }

  SymmetricEigenWorkspace local;
  SymmetricEigenWorkspace& w = ws != nullptr ? *ws : local;
  SymmetrizeInto(a, &w.work);
  Vector d(n);
  Vector e(n);
  BlockedTridiagonalize(w.work, d, e, w);
  Vector lambda;
  Matrix vectors;
  LRM_RETURN_IF_ERROR(internal::TridiagTopKEigen(
      n, d.data(), e.data(), k, &lambda, &vectors, &w.partial));
  BackTransformTridiagVectors(w.work, w, &vectors);
  return SymmetricEigenResult{std::move(lambda), std::move(vectors)};
}

StatusOr<SymmetricEigenResult> PartialSymmetricEigenAboveCutoff(
    const Matrix& a, double relative_cutoff, double growth, Index* count,
    SymmetricEigenWorkspace* ws) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(StrFormat(
        "PartialSymmetricEigenAboveCutoff: matrix is %td x %td, expected "
        "square",
        a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (n == 0 || relative_cutoff < 0.0 || !(growth > 0.0)) {
    return Status::InvalidArgument(
        "PartialSymmetricEigenAboveCutoff: need a nonempty matrix, "
        "relative_cutoff >= 0 and growth > 0");
  }
  const auto rank_to_k = [n, growth](Index c) {
    const double grown = std::ceil(growth * static_cast<double>(c));
    return std::min<Index>(n, std::max<Index>(1, static_cast<Index>(grown)));
  };

  const kernels::FactorImpl impl = kernels::ActiveFactorImpl();
  if (impl == kernels::FactorImpl::kReference ||
      impl == kernels::FactorImpl::kBlocked ||
      impl == kernels::FactorImpl::kDc) {
    // Forced full-solve flavors: count directly off the full spectrum.
    LRM_ASSIGN_OR_RETURN(SymmetricEigenResult full, SymmetricEigen(a, ws));
    const double threshold =
        relative_cutoff * std::max(full.eigenvalues[n - 1], 0.0);
    Index c = 0;
    for (Index i = 0; i < n; ++i) {
      if (full.eigenvalues[i] > threshold) ++c;
    }
    *count = c;
    return SliceTopK(full, rank_to_k(c));
  }

  SymmetricEigenWorkspace local;
  SymmetricEigenWorkspace& w = ws != nullptr ? *ws : local;
  SymmetrizeInto(a, &w.work);
  Vector d(n);
  Vector e(n);
  BlockedTridiagonalize(w.work, d, e, w);
  const Index c = CountAboveRelativeCutoff(n, d.data(), e.data(),
                                           relative_cutoff);
  *count = c;
  const Index k = rank_to_k(c);
  if (impl == kernels::FactorImpl::kAuto && 2 * k > n) {
    // Near-full spectrum: D&C's one-shot assembly beats k inverse
    // iterations. The redundant reduction is the price of a rare path.
    LRM_ASSIGN_OR_RETURN(SymmetricEigenResult full, SymmetricEigen(a, ws));
    return SliceTopK(full, k);
  }
  Vector lambda;
  Matrix vectors;
  LRM_RETURN_IF_ERROR(internal::TridiagTopKEigen(
      n, d.data(), e.data(), k, &lambda, &vectors, &w.partial));
  BackTransformTridiagVectors(w.work, w, &vectors);
  return SymmetricEigenResult{std::move(lambda), std::move(vectors)};
}

StatusOr<Index> SymmetricEigenCountAbove(const Matrix& a,
                                         double relative_cutoff,
                                         SymmetricEigenWorkspace* ws) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(StrFormat(
        "SymmetricEigenCountAbove: matrix is %td x %td, expected square",
        a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (n == 0) return Index{0};
  if (relative_cutoff < 0.0) {
    return Status::InvalidArgument(
        "SymmetricEigenCountAbove: relative_cutoff must be >= 0");
  }
  SymmetricEigenWorkspace local;
  SymmetricEigenWorkspace& w = ws != nullptr ? *ws : local;
  SymmetrizeInto(a, &w.work);
  Vector d(n);
  Vector e(n);
  if (ResolveEigenDispatch(n).blocked_tridiag) {
    BlockedTridiagonalize(w.work, d, e, w);
  } else {
    Tred2(w.work, d, e);
  }
  return CountAboveRelativeCutoff(n, d.data(), e.data(), relative_cutoff);
}

StatusOr<Matrix> ProjectToPsdCone(const Matrix& a, double floor) {
  LRM_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(a));
  const Index n = a.rows();
  // Reassemble V·diag(max(λ, floor))·Vᵀ.
  Matrix scaled = eig.eigenvectors;  // columns scaled by clamped eigenvalues
  for (Index j = 0; j < n; ++j) {
    const double lambda = std::max(eig.eigenvalues[j], floor);
    for (Index i = 0; i < n; ++i) scaled(i, j) *= lambda;
  }
  return MultiplyABt(scaled, eig.eigenvectors);
}

}  // namespace lrm::linalg
