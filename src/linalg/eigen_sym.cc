#include "linalg/eigen_sym.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/string_util.h"
#include "linalg/householder_wy.h"
#include "linalg/kernels/kernels.h"

namespace lrm::linalg {

namespace {

namespace kernels = lrm::linalg::kernels;

double Hypot(double a, double b) { return std::hypot(a, b); }

// Householder reduction of a symmetric matrix (stored in v, modified in
// place to accumulate the transformation) to tridiagonal form. `d` receives
// the diagonal, `e` the subdiagonal (e[0] unused). Port of EISPACK tred2.
void Tred2(Matrix& v, Vector& d, Vector& e) {
  const Index n = v.rows();
  for (Index j = 0; j < n; ++j) d[j] = v(n - 1, j);

  for (Index i = n - 1; i > 0; --i) {
    double scale = 0.0;
    double h = 0.0;
    for (Index k = 0; k < i; ++k) scale += std::abs(d[k]);
    if (scale == 0.0) {
      e[i] = d[i - 1];
      for (Index j = 0; j < i; ++j) {
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
        v(j, i) = 0.0;
      }
    } else {
      for (Index k = 0; k < i; ++k) {
        d[k] /= scale;
        h += d[k] * d[k];
      }
      double f = d[i - 1];
      double g = std::sqrt(h);
      if (f > 0) g = -g;
      e[i] = scale * g;
      h -= f * g;
      d[i - 1] = f - g;
      for (Index j = 0; j < i; ++j) e[j] = 0.0;

      for (Index j = 0; j < i; ++j) {
        f = d[j];
        v(j, i) = f;
        g = e[j] + v(j, j) * f;
        for (Index k = j + 1; k <= i - 1; ++k) {
          g += v(k, j) * d[k];
          e[k] += v(k, j) * f;
        }
        e[j] = g;
      }
      f = 0.0;
      for (Index j = 0; j < i; ++j) {
        e[j] /= h;
        f += e[j] * d[j];
      }
      const double hh = f / (h + h);
      for (Index j = 0; j < i; ++j) e[j] -= hh * d[j];
      for (Index j = 0; j < i; ++j) {
        f = d[j];
        g = e[j];
        for (Index k = j; k <= i - 1; ++k) {
          v(k, j) -= (f * e[k] + g * d[k]);
        }
        d[j] = v(i - 1, j);
        v(i, j) = 0.0;
      }
    }
    d[i] = h;
  }

  // Accumulate transformations.
  for (Index i = 0; i < n - 1; ++i) {
    v(n - 1, i) = v(i, i);
    v(i, i) = 1.0;
    const double h = d[i + 1];
    if (h != 0.0) {
      for (Index k = 0; k <= i; ++k) d[k] = v(k, i + 1) / h;
      for (Index j = 0; j <= i; ++j) {
        double g = 0.0;
        for (Index k = 0; k <= i; ++k) g += v(k, i + 1) * v(k, j);
        for (Index k = 0; k <= i; ++k) v(k, j) -= g * d[k];
      }
    }
    for (Index k = 0; k <= i; ++k) v(k, i + 1) = 0.0;
  }
  for (Index j = 0; j < n; ++j) {
    d[j] = v(n - 1, j);
    v(n - 1, j) = 0.0;
  }
  v(n - 1, n - 1) = 1.0;
  e[0] = 0.0;
}

// Implicit-shift QL iteration on the tridiagonal (d, e); the rotations are
// accumulated into the ROWS of vt (row i of vt ends up as eigenvector i, so
// callers pass the transposed starting basis and transpose back). Port of
// EISPACK tql2, re-oriented so the innermost rotation loop streams two
// contiguous rows instead of striding down two columns — the accumulation
// is the dominant O(n³) term of the whole eigensolve and runs several
// times faster on contiguous memory. Returns false on non-convergence.
bool Tql2Rows(Matrix& vt, Vector& d, Vector& e) {
  const Index n = vt.rows();
  for (Index i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::numeric_limits<double>::epsilon();
  for (Index l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    Index m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > 50) return false;
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = Hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (Index i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (Index i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = Hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          double* row_i = vt.RowPtr(i);
          double* row_i1 = vt.RowPtr(i + 1);
          for (Index k = 0; k < n; ++k) {
            h = row_i1[k];
            row_i1[k] = s * row_i[k] + c * h;
            row_i[k] = c * row_i[k] - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector rows along.
  for (Index i = 0; i < n - 1; ++i) {
    Index k = i;
    double p = d[i];
    for (Index j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      std::swap_ranges(vt.RowPtr(i), vt.RowPtr(i) + n, vt.RowPtr(k));
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Blocked tridiagonalization (LAPACK sytrd/latrd structure, lower storage).
//
// The similarity reduction A → Qᵀ·A·Q = tridiag(d, e) is organized in panels
// of kTridiagPanel reflectors. Within a panel only the current column is
// updated (a pair of skinny GEMVs against the accumulated V/W panels); the
// bulk of the flops — the symmetric rank-2·jb update of the trailing matrix
// A ← A − V·Wᵀ − W·Vᵀ — is deferred to two GEMMs per panel. Reflector tails
// persist below the first subdiagonal of the working matrix (exactly where
// the reduction zeroed it), so Q can be re-accumulated afterwards from
// compact-WY blocks without extra storage.
// ---------------------------------------------------------------------------

constexpr Index kTridiagPanel = 32;

bool UseBlockedEigen(Index n) { return kernels::UseBlockedFactor(n >= 128); }

// Width of the panel starting at reduction offset `off` (the last reflector
// annihilates below the subdiagonal of column n-3).
Index TridiagPanelWidth(Index n, Index off) {
  return std::min<Index>(kTridiagPanel, n - 2 - off);
}

// Reduces the symmetric working matrix `m` to tridiagonal (d, e) in place.
// On return d holds the diagonal, e[1:] the subdiagonal (e[0] = 0), tau the
// reflector scalars, and column c of `m` keeps the tail of reflector v_c
// below row c+1 (v_c has an implicit 1 at row c+1).
void BlockedTridiagonalize(Matrix& m, Vector& d, Vector& e,
                           std::vector<double>& tau) {
  const Index n = m.rows();
  tau.assign(static_cast<std::size_t>(n), 0.0);
  Matrix v_panel, w_panel;
  std::vector<double> p(static_cast<std::size_t>(n));
  std::vector<double> u1(kTridiagPanel), u2(kTridiagPanel);

  Index off = 0;
  while (n - off > 2) {
    const Index nt = n - off;
    const Index jb = TridiagPanelWidth(n, off);
    v_panel.Resize(nt, jb);  // zero-filled; columns gain their support below
    w_panel.Resize(nt, jb);
    double* s = m.data() + off * n + off;  // S(i, j) = s[i·n + j]

    for (Index i = 0; i < jb; ++i) {
      double* v_col = v_panel.data() + i;  // column i, leading dimension jb
      if (i > 0) {
        // Catch column i up with the panel's earlier reflectors:
        // S(i:nt, i) −= V(i:nt, 0:i)·W(i, 0:i)ᵀ + W(i:nt, 0:i)·V(i, 0:i)ᵀ.
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, nt - i, 1, i,
                      -1.0, v_panel.RowPtr(i), jb, w_panel.RowPtr(i), 1, 1.0,
                      s + i * n + i, n);
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, nt - i, 1, i,
                      -1.0, w_panel.RowPtr(i), jb, v_panel.RowPtr(i), 1, 1.0,
                      s + i * n + i, n);
      }
      d[off + i] = s[i * n + i];

      // Reflector annihilating S(i+2:nt, i); beta lands on the subdiagonal.
      const Index len = nt - i - 1;
      double* x = s + (i + 1) * n + i;
      const double t = internal::MakeHouseholder(len, x, n);
      tau[static_cast<std::size_t>(off + i)] = t;
      e[off + i + 1] = x[0];
      v_col[(i + 1) * jb] = 1.0;
      for (Index r = i + 2; r < nt; ++r) v_col[r * jb] = s[r * n + i];

      // w = tau·(S₂₂·v − V·(Wᵀv) − W·(Vᵀv)) − ½·tau·(wᵀv)·v, where S₂₂ is
      // the trailing block untouched by this panel so far.
      const double* v_tail = v_col + (i + 1) * jb;
      kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, len, 1, len, 1.0,
                    s + (i + 1) * n + (i + 1), n, v_tail, jb, 0.0, p.data(),
                    1);
      if (i > 0) {
        kernels::Gemm(kernels::Op::kTranspose, kernels::Op::kNone, i, 1, len,
                      1.0, w_panel.RowPtr(i + 1), jb, v_tail, jb, 0.0,
                      u1.data(), 1);
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, len, 1, i, -1.0,
                      v_panel.RowPtr(i + 1), jb, u1.data(), 1, 1.0, p.data(),
                      1);
        kernels::Gemm(kernels::Op::kTranspose, kernels::Op::kNone, i, 1, len,
                      1.0, v_panel.RowPtr(i + 1), jb, v_tail, jb, 0.0,
                      u2.data(), 1);
        kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, len, 1, i, -1.0,
                      w_panel.RowPtr(i + 1), jb, u2.data(), 1, 1.0, p.data(),
                      1);
      }
      double wv = 0.0;
      for (Index r = 0; r < len; ++r) {
        p[static_cast<std::size_t>(r)] *= t;
        wv += p[static_cast<std::size_t>(r)] * v_tail[r * jb];
      }
      const double alpha = -0.5 * t * wv;
      double* w_col = w_panel.data() + i;
      for (Index r = 0; r < len; ++r) {
        w_col[(i + 1 + r) * jb] =
            p[static_cast<std::size_t>(r)] + alpha * v_tail[r * jb];
      }
    }

    // Deferred symmetric rank-2·jb update of the trailing matrix:
    // S(jb:nt, jb:nt) −= V₂·W₂ᵀ + W₂·V₂ᵀ.
    const Index rest = nt - jb;
    kernels::Gemm(kernels::Op::kNone, kernels::Op::kTranspose, rest, rest, jb,
                  -1.0, v_panel.RowPtr(jb), jb, w_panel.RowPtr(jb), jb, 1.0,
                  s + jb * n + jb, n);
    kernels::Gemm(kernels::Op::kNone, kernels::Op::kTranspose, rest, rest, jb,
                  -1.0, w_panel.RowPtr(jb), jb, v_panel.RowPtr(jb), jb, 1.0,
                  s + jb * n + jb, n);
    off += jb;
  }

  // 2×2 (or smaller) tail is already tridiagonal.
  if (n >= 2) {
    d[n - 2] = m(n - 2, n - 2);
    e[n - 1] = m(n - 1, n - 2);
  }
  if (n >= 1) d[n - 1] = m(n - 1, n - 1);
  e[0] = 0.0;
}

// Accumulates Q = H_0·H_1·…·H_{n-3} (the tridiagonalizing transform, so
// A = Q·T·Qᵀ) by applying the compact-WY blocks to the identity in reverse
// panel order — three GEMMs per panel via ApplyBlockReflectorLeft.
void FormTridiagQ(const Matrix& m, const std::vector<double>& tau, Matrix* q) {
  const Index n = m.rows();
  q->Resize(n, n);
  for (Index i = 0; i < n; ++i) (*q)(i, i) = 1.0;

  // Reconstruct the forward panel partition, then walk it backwards.
  std::vector<Index> offsets;
  for (Index off = 0; n - off > 2; off += TridiagPanelWidth(n, off)) {
    offsets.push_back(off);
  }
  std::vector<double> v, t, scratch;
  for (auto it = offsets.rbegin(); it != offsets.rend(); ++it) {
    const Index off = *it;
    const Index jb = TridiagPanelWidth(n, off);
    const Index rows = n - off - 1;  // reflector support starts at off+1
    v.resize(static_cast<std::size_t>(rows * jb));
    internal::ExtractPanelV(m.data() + (off + 1) * n + off, n, rows, jb,
                            v.data());
    t.resize(static_cast<std::size_t>(jb * jb));
    internal::BuildBlockT(v.data(), jb, rows, jb, tau.data() + off, t.data(),
                          jb);
    // Columns ≤ off of Q are still identity columns with no support in rows
    // ≥ off+1; restrict the update to the live block.
    internal::ApplyBlockReflectorLeft(v.data(), jb, t.data(), jb, rows, jb,
                                      /*transpose_t=*/false,
                                      q->data() + (off + 1) * n + (off + 1),
                                      n, n - off - 1, &scratch);
  }
}

}  // namespace

StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("SymmetricEigen: matrix is %td x %td, expected square",
                  a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (n == 0) {
    return SymmetricEigenResult{Vector(), Matrix()};
  }

  // Symmetrize to absorb roundoff asymmetry in the caller's input.
  Matrix v(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      v(i, j) = 0.5 * (a(i, j) + a(j, i));
    }
  }

  Vector d(n);
  Vector e(n);
  // Both paths hand Tql2Rows the TRANSPOSED starting basis (rows =
  // tridiagonalizing transform columns) so the rotation loops stream
  // contiguously, and transpose back at the end — two O(n²) copies against
  // the O(n³) accumulation.
  Matrix vt;
  if (UseBlockedEigen(n)) {
    // GEMM-rich path: blocked tridiagonalization, Q re-accumulated from the
    // compact-WY blocks, then the same implicit-shift QL on the tridiagonal
    // rotates Q's columns into the eigenvectors.
    std::vector<double> tau;
    BlockedTridiagonalize(v, d, e, tau);
    Matrix q;
    FormTridiagQ(v, tau, &q);
    vt = Transpose(q);
  } else {
    Tred2(v, d, e);
    vt = Transpose(v);
  }
  if (!Tql2Rows(vt, d, e)) {
    return Status::NumericalError(
        "SymmetricEigen: QL iteration failed to converge");
  }
  return SymmetricEigenResult{std::move(d), Transpose(vt)};
}

StatusOr<Matrix> ProjectToPsdCone(const Matrix& a, double floor) {
  LRM_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(a));
  const Index n = a.rows();
  // Reassemble V·diag(max(λ, floor))·Vᵀ.
  Matrix scaled = eig.eigenvectors;  // columns scaled by clamped eigenvalues
  for (Index j = 0; j < n; ++j) {
    const double lambda = std::max(eig.eigenvalues[j], floor);
    for (Index i = 0; i < n; ++i) scaled(i, j) *= lambda;
  }
  return MultiplyABt(scaled, eig.eigenvectors);
}

}  // namespace lrm::linalg
