#include "linalg/qr.h"

#include <cmath>

namespace lrm::linalg {

StatusOr<QrResult> HouseholderQr(const Matrix& a) {
  const Index m = a.rows();
  const Index n = a.cols();
  if (m == 0 || n == 0) {
    return Status::InvalidArgument("HouseholderQr: empty matrix");
  }
  const Index k = std::min(m, n);

  // Work on a copy; Householder vectors overwrite the lower triangle.
  Matrix r = a;
  std::vector<double> rdiag(static_cast<std::size_t>(k), 0.0);

  for (Index col = 0; col < k; ++col) {
    // Norm of the column below (and including) the diagonal.
    double norm = 0.0;
    for (Index i = col; i < m; ++i) norm = std::hypot(norm, r(i, col));
    if (norm != 0.0) {
      if (r(col, col) < 0) norm = -norm;
      for (Index i = col; i < m; ++i) r(i, col) /= norm;
      r(col, col) += 1.0;
      // Apply the reflector to the remaining columns.
      for (Index j = col + 1; j < n; ++j) {
        double s = 0.0;
        for (Index i = col; i < m; ++i) s += r(i, col) * r(i, j);
        s = -s / r(col, col);
        for (Index i = col; i < m; ++i) r(i, j) += s * r(i, col);
      }
    }
    rdiag[static_cast<std::size_t>(col)] = -norm;
  }

  // Accumulate Q explicitly (thin: m×k).
  Matrix q(m, k);
  for (Index col = k - 1; col >= 0; --col) {
    for (Index i = 0; i < m; ++i) q(i, col) = 0.0;
    q(col, col) = 1.0;
    for (Index j = col; j < k; ++j) {
      if (r(col, col) != 0.0) {
        double s = 0.0;
        for (Index i = col; i < m; ++i) s += r(i, col) * q(i, j);
        s = -s / r(col, col);
        for (Index i = col; i < m; ++i) q(i, j) += s * r(i, col);
      }
    }
  }

  // Extract the upper-triangular R (k×n).
  Matrix r_out(k, n);
  for (Index i = 0; i < k; ++i) {
    r_out(i, i) = rdiag[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) r_out(i, j) = r(i, j);
  }
  return QrResult{std::move(q), std::move(r_out)};
}

StatusOr<Matrix> OrthonormalizeColumns(const Matrix& a) {
  LRM_ASSIGN_OR_RETURN(QrResult qr, HouseholderQr(a));
  return std::move(qr.q);
}

}  // namespace lrm::linalg
