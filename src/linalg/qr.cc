#include "linalg/qr.h"

#include <algorithm>
#include <cmath>

#include "linalg/householder_wy.h"
#include "linalg/kernels/kernels.h"

namespace lrm::linalg {

namespace {

namespace kernels = lrm::linalg::kernels;

// Panel width of the blocked factorization. 32 keeps the scalar panel work
// a small fraction of the GEMM flops for the tall shapes the randomized
// SVD produces (m up to a few thousand, k a few hundred).
constexpr Index kQrPanel = 32;

// kAuto dispatch: blocked once the factorization has enough flops
// (~2·m·k²) to amortize the panel bookkeeping and the GEMMs clear the
// kernel layer's own blocked threshold.
bool UseBlockedQr(Index m, Index n) {
  const Index k = std::min(m, n);
  return kernels::UseBlockedFactor(k >= 16 && m * k * k >= (Index{1} << 18));
}

// Compact-WY blocked factorization of ws.work in place: R on/above the
// diagonal, reflector tails below, scalar factors in ws.tau.
void BlockedQrFactor(QrWorkspace& ws) {
  Matrix& work = ws.work;
  const Index m = work.rows();
  const Index n = work.cols();
  const Index k = std::min(m, n);
  ws.tau.assign(static_cast<std::size_t>(k), 0.0);
  for (Index j = 0; j < k; j += kQrPanel) {
    const Index jb = std::min(kQrPanel, k - j);
    const Index rows = m - j;
    double* panel = work.data() + j * n + j;
    internal::PanelQr(panel, n, rows, jb, ws.tau.data() + j);
    const Index trailing = n - j - jb;
    if (trailing > 0) {
      ws.v.resize(static_cast<std::size_t>(rows * jb));
      internal::ExtractPanelV(panel, n, rows, jb, ws.v.data());
      ws.t.resize(static_cast<std::size_t>(jb * jb));
      internal::BuildBlockT(ws.v.data(), jb, rows, jb, ws.tau.data() + j,
                            ws.t.data(), jb);
      // Trailing matrix ← Qᵀ·trailing = (I − V·Tᵀ·Vᵀ)·trailing.
      internal::ApplyBlockReflectorLeft(ws.v.data(), jb, ws.t.data(), jb,
                                        rows, jb, /*transpose_t=*/true,
                                        work.data() + j * n + j + jb, n,
                                        trailing, &ws.apply);
    }
  }
}

// Accumulates the thin Q (m×k) from a BlockedQrFactor-ed workspace by
// applying the block reflectors to the identity in reverse panel order.
void BlockedFormThinQ(QrWorkspace& ws, Matrix* q) {
  const Matrix& work = ws.work;
  const Index m = work.rows();
  const Index n = work.cols();
  const Index k = std::min(m, n);
  q->Resize(m, k);  // zero-filled
  for (Index i = 0; i < k; ++i) (*q)(i, i) = 1.0;
  if (k == 0) return;
  const Index last_panel = ((k - 1) / kQrPanel) * kQrPanel;
  for (Index j = last_panel; j >= 0; j -= kQrPanel) {
    const Index jb = std::min(kQrPanel, k - j);
    const Index rows = m - j;
    const double* panel = work.data() + j * n + j;
    ws.v.resize(static_cast<std::size_t>(rows * jb));
    internal::ExtractPanelV(panel, n, rows, jb, ws.v.data());
    ws.t.resize(static_cast<std::size_t>(jb * jb));
    internal::BuildBlockT(ws.v.data(), jb, rows, jb, ws.tau.data() + j,
                          ws.t.data(), jb);
    // Q(j:m, j:k) ← (I − V·T·Vᵀ)·Q(j:m, j:k); columns left of j are still
    // identity columns with no support in rows ≥ j, so they are no-ops.
    internal::ApplyBlockReflectorLeft(ws.v.data(), jb, ws.t.data(), jb, rows,
                                      jb, /*transpose_t=*/false,
                                      q->data() + j * k + j, k, k - j,
                                      &ws.apply);
    if (j == 0) break;
  }
}

// Upper-trapezoidal R (k×n) out of a factored workspace.
Matrix ExtractR(const Matrix& work) {
  const Index n = work.cols();
  const Index k = std::min(work.rows(), n);
  Matrix r(k, n);
  for (Index i = 0; i < k; ++i) {
    for (Index j = i; j < n; ++j) r(i, j) = work(i, j);
  }
  return r;
}

// Scalar reference factorization (the pre-blocked seed algorithm), in
// place: the normalized Householder vectors overwrite the lower triangle
// (head included on the diagonal), R's diagonal lands in `rdiag` (resized),
// R's strict upper triangle stays on/above the diagonal of `r`.
void ScalarQrFactorInPlace(Matrix& r, std::vector<double>& rdiag) {
  const Index m = r.rows();
  const Index n = r.cols();
  const Index k = std::min(m, n);
  rdiag.assign(static_cast<std::size_t>(k), 0.0);

  for (Index col = 0; col < k; ++col) {
    // Norm of the column below (and including) the diagonal.
    double norm = 0.0;
    for (Index i = col; i < m; ++i) norm = std::hypot(norm, r(i, col));
    if (norm != 0.0) {
      if (r(col, col) < 0) norm = -norm;
      for (Index i = col; i < m; ++i) r(i, col) /= norm;
      r(col, col) += 1.0;
      // Apply the reflector to the remaining columns.
      for (Index j = col + 1; j < n; ++j) {
        double s = 0.0;
        for (Index i = col; i < m; ++i) s += r(i, col) * r(i, j);
        s = -s / r(col, col);
        for (Index i = col; i < m; ++i) r(i, j) += s * r(i, col);
      }
    }
    rdiag[static_cast<std::size_t>(col)] = -norm;
  }
}

// Accumulates the thin Q (m×k) of a ScalarQrFactorInPlace-d matrix into
// `*q` (resized; Matrix::Resize reuses capacity, so workspace-driven loops
// stay allocation-free).
void ScalarFormThinQInto(const Matrix& r, Matrix* q) {
  const Index m = r.rows();
  const Index k = std::min(m, r.cols());
  q->Resize(m, k);  // zero-filled
  for (Index col = k - 1; col >= 0; --col) {
    (*q)(col, col) = 1.0;
    for (Index j = col; j < k; ++j) {
      if (r(col, col) != 0.0) {
        double s = 0.0;
        for (Index i = col; i < m; ++i) s += r(i, col) * (*q)(i, j);
        s = -s / r(col, col);
        for (Index i = col; i < m; ++i) (*q)(i, j) += s * r(i, col);
      }
    }
  }
}

StatusOr<QrResult> ScalarHouseholderQrInPlace(Matrix& r,
                                              std::vector<double>& rdiag) {
  const Index n = r.cols();
  const Index k = std::min(r.rows(), n);
  ScalarQrFactorInPlace(r, rdiag);
  QrResult result;
  ScalarFormThinQInto(r, &result.q);
  // Extract the upper-triangular R (k×n).
  result.r.Resize(k, n);
  for (Index i = 0; i < k; ++i) {
    result.r(i, i) = rdiag[static_cast<std::size_t>(i)];
    for (Index j = i + 1; j < n; ++j) result.r(i, j) = r(i, j);
  }
  return result;
}

}  // namespace

StatusOr<QrResult> HouseholderQr(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("HouseholderQr: empty matrix");
  }
  if (!UseBlockedQr(a.rows(), a.cols())) {
    Matrix work = a;
    std::vector<double> rdiag;
    return ScalarHouseholderQrInPlace(work, rdiag);
  }
  QrWorkspace ws;
  ws.work = a;
  BlockedQrFactor(ws);
  QrResult result;
  result.r = ExtractR(ws.work);
  BlockedFormThinQ(ws, &result.q);
  return result;
}

StatusOr<Matrix> OrthonormalizeColumns(const Matrix& a) {
  LRM_ASSIGN_OR_RETURN(QrResult qr, HouseholderQr(a));
  return std::move(qr.q);
}

Status OrthonormalizeColumnsInto(ConstMatrixView a, Matrix* q,
                                 QrWorkspace* ws) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("OrthonormalizeColumnsInto: empty matrix");
  }
  CopyInto(a, &ws->work);
  if (!UseBlockedQr(a.rows(), a.cols())) {
    // Scalar path through the same workspace: tau doubles as the rdiag
    // scratch and Q lands straight in *q, so small-sketch callers are as
    // allocation-free as the blocked path.
    ScalarQrFactorInPlace(ws->work, ws->tau);
    ScalarFormThinQInto(ws->work, q);
    return Status::OK();
  }
  BlockedQrFactor(*ws);
  BlockedFormThinQ(*ws, q);
  return Status::OK();
}

}  // namespace lrm::linalg
