#include "linalg/random_matrix.h"

#include "rng/distributions.h"

namespace lrm::linalg {

Matrix RandomGaussianMatrix(rng::Engine& engine, Index rows, Index cols) {
  Matrix result;
  RandomGaussianMatrixInto(engine, rows, cols, &result);
  return result;
}

void RandomGaussianMatrixInto(rng::Engine& engine, Index rows, Index cols,
                              Matrix* out) {
  out->Resize(rows, cols);
  double* p = out->data();
  for (Index i = 0; i < out->size(); ++i) {
    p[i] = rng::SampleGaussian(engine);
  }
}

void AppendGaussianColumns(rng::Engine& engine, Index rows, Index added,
                           Matrix* out) {
  const Index old_cols = out->size() == 0 ? 0 : out->cols();
  Matrix grown(rows, old_cols + added);
  for (Index i = 0; i < (old_cols > 0 ? rows : 0); ++i) {
    for (Index j = 0; j < old_cols; ++j) grown(i, j) = (*out)(i, j);
  }
  // Column-major draw so each appended column consumes a contiguous run of
  // the engine's stream regardless of how many columns came before it.
  for (Index j = old_cols; j < old_cols + added; ++j) {
    for (Index i = 0; i < rows; ++i) {
      grown(i, j) = rng::SampleGaussian(engine);
    }
  }
  *out = std::move(grown);
}

Vector RandomGaussianVector(rng::Engine& engine, Index n) {
  Vector result(n);
  for (Index i = 0; i < n; ++i) result[i] = rng::SampleGaussian(engine);
  return result;
}

Vector RandomLaplaceVector(rng::Engine& engine, Index n, double scale) {
  Vector result(n);
  for (Index i = 0; i < n; ++i) {
    result[i] = rng::SampleLaplace(engine, scale);
  }
  return result;
}

Matrix RandomUniformMatrix(rng::Engine& engine, Index rows, Index cols,
                           double lo, double hi) {
  Matrix result(rows, cols);
  double* p = result.data();
  for (Index i = 0; i < result.size(); ++i) {
    p[i] = rng::SampleUniform(engine, lo, hi);
  }
  return result;
}

}  // namespace lrm::linalg
