#include "linalg/random_matrix.h"

#include "rng/distributions.h"

namespace lrm::linalg {

Matrix RandomGaussianMatrix(rng::Engine& engine, Index rows, Index cols) {
  Matrix result(rows, cols);
  double* p = result.data();
  for (Index i = 0; i < result.size(); ++i) {
    p[i] = rng::SampleGaussian(engine);
  }
  return result;
}

Vector RandomGaussianVector(rng::Engine& engine, Index n) {
  Vector result(n);
  for (Index i = 0; i < n; ++i) result[i] = rng::SampleGaussian(engine);
  return result;
}

Vector RandomLaplaceVector(rng::Engine& engine, Index n, double scale) {
  Vector result(n);
  for (Index i = 0; i < n; ++i) {
    result[i] = rng::SampleLaplace(engine, scale);
  }
  return result;
}

Matrix RandomUniformMatrix(rng::Engine& engine, Index rows, Index cols,
                           double lo, double hi) {
  Matrix result(rows, cols);
  double* p = result.data();
  for (Index i = 0; i < result.size(); ++i) {
    p[i] = rng::SampleUniform(engine, lo, hi);
  }
  return result;
}

}  // namespace lrm::linalg
