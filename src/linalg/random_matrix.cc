#include "linalg/random_matrix.h"

#include "rng/distributions.h"

namespace lrm::linalg {

Matrix RandomGaussianMatrix(rng::Engine& engine, Index rows, Index cols) {
  Matrix result;
  RandomGaussianMatrixInto(engine, rows, cols, &result);
  return result;
}

void RandomGaussianMatrixInto(rng::Engine& engine, Index rows, Index cols,
                              Matrix* out) {
  out->Resize(rows, cols);
  double* p = out->data();
  for (Index i = 0; i < out->size(); ++i) {
    p[i] = rng::SampleGaussian(engine);
  }
}

Vector RandomGaussianVector(rng::Engine& engine, Index n) {
  Vector result(n);
  for (Index i = 0; i < n; ++i) result[i] = rng::SampleGaussian(engine);
  return result;
}

Vector RandomLaplaceVector(rng::Engine& engine, Index n, double scale) {
  Vector result(n);
  for (Index i = 0; i < n; ++i) {
    result[i] = rng::SampleLaplace(engine, scale);
  }
  return result;
}

Matrix RandomUniformMatrix(rng::Engine& engine, Index rows, Index cols,
                           double lo, double hi) {
  Matrix result(rows, cols);
  double* p = result.data();
  for (Index i = 0; i < result.size(); ++i) {
    p[i] = rng::SampleUniform(engine, lo, hi);
  }
  return result;
}

}  // namespace lrm::linalg
