// Singular value decomposition, three ways:
//
//  * JacobiSvd      — one-sided Jacobi (Hestenes). Most accurate; O(mn²) per
//                     sweep, best for min(m,n) up to a few hundred.
//  * GramSvd        — eigendecomposition of the smaller Gram matrix. Squares
//                     the condition number but is much faster for the larger
//                     shapes in the experiment grids.
//  * RandomizedSvd  — Halko/Martinsson/Tropp sketch for the top-k factors;
//                     used to seed the LRM decomposition (B₀ = √r·U·Σ,
//                     L₀ = Vᵀ/√r per the Lemma 3 construction) and to
//                     estimate numerical rank at scale.
//
// Svd() dispatches between the first two by size.

#ifndef LRM_LINALG_SVD_H_
#define LRM_LINALG_SVD_H_

#include "base/status_or.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "rng/engine.h"

namespace lrm::linalg {

/// \brief Thin SVD A ≈ U·diag(σ)·Vᵀ.
struct SvdResult {
  /// m×k, orthonormal columns.
  Matrix u;
  /// k singular values, non-increasing, non-negative.
  Vector singular_values;
  /// n×k, orthonormal columns (note: V, not Vᵀ).
  Matrix v;

  /// Reconstructs U·diag(σ)·Vᵀ (for testing).
  Matrix Reconstruct() const;
};

/// \brief Options for the iterative SVD algorithms.
struct SvdOptions {
  /// Convergence threshold on the relative off-diagonal mass.
  double tolerance = 1e-12;
  /// Maximum Jacobi sweeps before giving up.
  int max_sweeps = 60;
};

/// \brief One-sided Jacobi SVD. Full thin decomposition, highest accuracy.
StatusOr<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options = {});

/// \brief SVD via symmetric eigendecomposition of the smaller Gram matrix.
///
/// Singular values below √ε·σ₁ lose relative accuracy (the Gram step squares
/// the condition number); fine for rank estimation and solver seeding. The
/// eigensolve rides the SymmetricEigen dispatch, so at size it runs the
/// divide-and-conquer tridiagonal path (linalg/eigen_dc.h) — this is what
/// keeps the exact-SVD fallback usable at the paper's n ≈ 4096 domains.
StatusOr<SvdResult> GramSvd(const Matrix& a);

/// \brief Top-k truncation of GramSvd: only the k largest singular triplets,
/// via PartialSymmetricEigen on the smaller Gram matrix — O(p²·k) after the
/// reduction instead of the full O(p³) eigensolve (p = min(m, n)). Same
/// accuracy caveat as GramSvd. k is clamped to p.
StatusOr<SvdResult> PartialGramSvd(const Matrix& a, Index k);

/// \brief Rank-adaptive PartialGramSvd: one reduction of the Gram matrix, a
/// Sturm count of singular values above rel_tol·σ₁ (`*rank` receives it —
/// the numerical rank under GramSvd's conventions), then the top
/// min(⌈growth·rank⌉, p) triplets, all without ever computing the rest of
/// the spectrum. `rel_tol` is clamped through GramRankTolerance(). This is
/// the decomposition's exact-fallback workhorse: rank search plus the
/// Lemma-3 triplets in a single partial factorization.
StatusOr<SvdResult> PartialGramSvdWithRank(const Matrix& a, double rel_tol,
                                           double growth, Index* rank);

/// \brief Options for RandomizedSvd.
struct RandomizedSvdOptions {
  /// Oversampling columns added to the target rank.
  Index oversample = 8;
  /// Power (subspace) iterations; 2 suffices for rapidly decaying spectra.
  int power_iterations = 2;
  /// Seed for the Gaussian test matrix.
  std::uint64_t seed = 42;
};

/// \brief Reusable buffers for RandomizedSvd. Callers that sketch the same
/// matrix repeatedly (the decomposition's rank search doubles the sketch
/// width until the spectrum tail resolves) hold one of these so the range
/// finder and power iterations stop allocating per pass; every buffer grows
/// to the high-water mark and is reused via the `*Into` kernels.
struct RandomizedSvdWorkspace {
  Matrix omega;     // n×sketch Gaussian test matrix
  Matrix y;         // m×sketch range-finder / power-iteration product
  Matrix z;         // n×sketch power-iteration product
  Matrix q;         // m×sketch orthonormal range basis
  Matrix b;         // sketch×n projected matrix
  Matrix u_full;    // m×sketch left factor before truncation
  QrWorkspace qr;   // blocked-QR scratch shared by every orthonormalization
};

/// \brief Randomized top-`target_rank` SVD (Halko et al. 2011). Pass a
/// workspace to make repeated sketches allocation-free at steady state.
StatusOr<SvdResult> RandomizedSvd(const Matrix& a, Index target_rank,
                                  const RandomizedSvdOptions& options = {},
                                  RandomizedSvdWorkspace* workspace = nullptr);

/// \brief RandomizedSvd with a caller-supplied Gaussian test matrix `omega`
/// (a.cols() × sketch; the sketch width is omega's column count, which must
/// be ≥ target_rank's effective truncation). This is the column-reuse seam
/// for sketch-doubling rank search: the caller appends fresh columns to the
/// same omega across attempts (linalg/random_matrix.h
/// AppendGaussianColumns) instead of redrawing the whole test matrix, so
/// widening a sketch reuses every product structure already paid for and
/// the draw order stays deterministic.
StatusOr<SvdResult> RandomizedSvdWithTestMatrix(
    const Matrix& a, Index target_rank, const Matrix& omega,
    const RandomizedSvdOptions& options = {},
    RandomizedSvdWorkspace* workspace = nullptr);

/// \brief Shape threshold of the Svd() dispatcher: min(m, n) at or below
/// this uses JacobiSvd, larger shapes use GramSvd.
inline constexpr Index kSvdJacobiDispatchLimit = 160;

/// \brief Dispatches to JacobiSvd for small matrices and GramSvd otherwise.
StatusOr<SvdResult> Svd(const Matrix& a);

/// \brief Number of singular values > rel_tol · σ_max.
///
/// The tolerance is RELATIVE — always a fraction of the largest singular
/// value, never an absolute threshold; there is no absolute-tolerance
/// variant in this codebase. Callers holding a spectrum that came through a
/// Gram factorization (GramSvd, PartialGramSvd, the sketched range finders)
/// must clamp their tolerance through GramRankTolerance() first: the Gram
/// step squares the condition number, so values below ~√ε·σ₁ are numerical
/// noise and a tighter cutoff would count garbage as spectrum.
Index NumericalRank(const SvdResult& svd, double rel_tol = 1e-9);

/// \brief Floor on relative rank tolerances for Gram-derived spectra
/// (~√ε: singular values below this fraction of σ₁ cannot be resolved once
/// the spectrum has been squared).
inline constexpr double kGramRankTolFloor = 1e-7;

/// \brief Effective relative rank tolerance on the Gram path:
/// max(rel_tol, kGramRankTolFloor).
inline double GramRankTolerance(double rel_tol) {
  return rel_tol > kGramRankTolFloor ? rel_tol : kGramRankTolFloor;
}

/// \brief Numerical rank of `a`: exact Jacobi SVD when
/// min(m,n) ≤ kSvdJacobiDispatchLimit; above it, a Sturm count on the
/// reduced Gram matrix (SymmetricEigenCountAbove) — no eigenvectors, no
/// full spectrum, with rel_tol clamped through GramRankTolerance().
StatusOr<Index> EstimateRank(const Matrix& a, double rel_tol = 1e-9);

/// \brief Moore–Penrose pseudo-inverse from a precomputed SVD; singular
/// values ≤ rel_tol·σ_max are treated as zero.
Matrix PseudoInverseFromSvd(const SvdResult& svd, double rel_tol = 1e-12);

/// \brief Moore–Penrose pseudo-inverse of `a`.
StatusOr<Matrix> PseudoInverse(const Matrix& a, double rel_tol = 1e-12);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_SVD_H_
