// Singular value decomposition, three ways:
//
//  * JacobiSvd      — one-sided Jacobi (Hestenes). Most accurate; O(mn²) per
//                     sweep, best for min(m,n) up to a few hundred.
//  * GramSvd        — eigendecomposition of the smaller Gram matrix. Squares
//                     the condition number but is much faster for the larger
//                     shapes in the experiment grids.
//  * RandomizedSvd  — Halko/Martinsson/Tropp sketch for the top-k factors;
//                     used to seed the LRM decomposition (B₀ = √r·U·Σ,
//                     L₀ = Vᵀ/√r per the Lemma 3 construction) and to
//                     estimate numerical rank at scale.
//
// Svd() dispatches between the first two by size.

#ifndef LRM_LINALG_SVD_H_
#define LRM_LINALG_SVD_H_

#include "base/status_or.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "rng/engine.h"

namespace lrm::linalg {

/// \brief Thin SVD A ≈ U·diag(σ)·Vᵀ.
struct SvdResult {
  /// m×k, orthonormal columns.
  Matrix u;
  /// k singular values, non-increasing, non-negative.
  Vector singular_values;
  /// n×k, orthonormal columns (note: V, not Vᵀ).
  Matrix v;

  /// Reconstructs U·diag(σ)·Vᵀ (for testing).
  Matrix Reconstruct() const;
};

/// \brief Options for the iterative SVD algorithms.
struct SvdOptions {
  /// Convergence threshold on the relative off-diagonal mass.
  double tolerance = 1e-12;
  /// Maximum Jacobi sweeps before giving up.
  int max_sweeps = 60;
};

/// \brief One-sided Jacobi SVD. Full thin decomposition, highest accuracy.
StatusOr<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options = {});

/// \brief SVD via symmetric eigendecomposition of the smaller Gram matrix.
///
/// Singular values below √ε·σ₁ lose relative accuracy (the Gram step squares
/// the condition number); fine for rank estimation and solver seeding. The
/// eigensolve rides the SymmetricEigen dispatch, so at size it runs the
/// divide-and-conquer tridiagonal path (linalg/eigen_dc.h) — this is what
/// keeps the exact-SVD fallback usable at the paper's n ≈ 4096 domains.
StatusOr<SvdResult> GramSvd(const Matrix& a);

/// \brief Options for RandomizedSvd.
struct RandomizedSvdOptions {
  /// Oversampling columns added to the target rank.
  Index oversample = 8;
  /// Power (subspace) iterations; 2 suffices for rapidly decaying spectra.
  int power_iterations = 2;
  /// Seed for the Gaussian test matrix.
  std::uint64_t seed = 42;
};

/// \brief Reusable buffers for RandomizedSvd. Callers that sketch the same
/// matrix repeatedly (the decomposition's rank search doubles the sketch
/// width until the spectrum tail resolves) hold one of these so the range
/// finder and power iterations stop allocating per pass; every buffer grows
/// to the high-water mark and is reused via the `*Into` kernels.
struct RandomizedSvdWorkspace {
  Matrix omega;     // n×sketch Gaussian test matrix
  Matrix y;         // m×sketch range-finder / power-iteration product
  Matrix z;         // n×sketch power-iteration product
  Matrix q;         // m×sketch orthonormal range basis
  Matrix b;         // sketch×n projected matrix
  Matrix u_full;    // m×sketch left factor before truncation
  QrWorkspace qr;   // blocked-QR scratch shared by every orthonormalization
};

/// \brief Randomized top-`target_rank` SVD (Halko et al. 2011). Pass a
/// workspace to make repeated sketches allocation-free at steady state.
StatusOr<SvdResult> RandomizedSvd(const Matrix& a, Index target_rank,
                                  const RandomizedSvdOptions& options = {},
                                  RandomizedSvdWorkspace* workspace = nullptr);

/// \brief Shape threshold of the Svd() dispatcher: min(m, n) at or below
/// this uses JacobiSvd, larger shapes use GramSvd.
inline constexpr Index kSvdJacobiDispatchLimit = 160;

/// \brief Dispatches to JacobiSvd for small matrices and GramSvd otherwise.
StatusOr<SvdResult> Svd(const Matrix& a);

/// \brief Number of singular values > rel_tol · σ_max.
Index NumericalRank(const SvdResult& svd, double rel_tol = 1e-9);

/// \brief Numerical rank of `a`: exact (full SVD) when min(m,n) ≤ 1024,
/// sketched otherwise.
StatusOr<Index> EstimateRank(const Matrix& a, double rel_tol = 1e-9);

/// \brief Moore–Penrose pseudo-inverse from a precomputed SVD; singular
/// values ≤ rel_tol·σ_max are treated as zero.
Matrix PseudoInverseFromSvd(const SvdResult& svd, double rel_tol = 1e-12);

/// \brief Moore–Penrose pseudo-inverse of `a`.
StatusOr<Matrix> PseudoInverse(const Matrix& a, double rel_tol = 1e-12);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_SVD_H_
