#include "linalg/tridiag_ql.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace lrm::linalg::internal {

bool TridiagQlRows(Matrix& vt, double* d, double* e) {
  const Index n = vt.rows();
  for (Index i = 1; i < n; ++i) e[i - 1] = e[i];
  e[n - 1] = 0.0;

  double f = 0.0;
  double tst1 = 0.0;
  const double eps = std::numeric_limits<double>::epsilon();
  for (Index l = 0; l < n; ++l) {
    tst1 = std::max(tst1, std::abs(d[l]) + std::abs(e[l]));
    Index m = l;
    while (m < n) {
      if (std::abs(e[m]) <= eps * tst1) break;
      ++m;
    }
    if (m > l) {
      int iter = 0;
      do {
        if (++iter > 50) return false;
        double g = d[l];
        double p = (d[l + 1] - g) / (2.0 * e[l]);
        double r = std::hypot(p, 1.0);
        if (p < 0) r = -r;
        d[l] = e[l] / (p + r);
        d[l + 1] = e[l] * (p + r);
        const double dl1 = d[l + 1];
        double h = g - d[l];
        for (Index i = l + 2; i < n; ++i) d[i] -= h;
        f += h;

        p = d[m];
        double c = 1.0;
        double c2 = c;
        double c3 = c;
        const double el1 = e[l + 1];
        double s = 0.0;
        double s2 = 0.0;
        for (Index i = m - 1; i >= l; --i) {
          c3 = c2;
          c2 = c;
          s2 = s;
          g = c * e[i];
          h = c * p;
          r = std::hypot(p, e[i]);
          e[i + 1] = s * r;
          s = e[i] / r;
          c = p / r;
          p = c * d[i] - s * g;
          d[i + 1] = h + s * (c * g + s * d[i]);
          double* row_i = vt.RowPtr(i);
          double* row_i1 = vt.RowPtr(i + 1);
          for (Index k = 0; k < n; ++k) {
            h = row_i1[k];
            row_i1[k] = s * row_i[k] + c * h;
            row_i[k] = c * row_i[k] - s * h;
          }
        }
        p = -s * s2 * c3 * el1 * e[l] / dl1;
        e[l] = s * p;
        d[l] = c * p;
      } while (std::abs(e[l]) > eps * tst1);
    }
    d[l] += f;
    e[l] = 0.0;
  }

  // Sort eigenvalues ascending, permuting eigenvector rows along.
  for (Index i = 0; i < n - 1; ++i) {
    Index k = i;
    double p = d[i];
    for (Index j = i + 1; j < n; ++j) {
      if (d[j] < p) {
        k = j;
        p = d[j];
      }
    }
    if (k != i) {
      d[k] = d[i];
      d[i] = p;
      std::swap_ranges(vt.RowPtr(i), vt.RowPtr(i) + n, vt.RowPtr(k));
    }
  }
  return true;
}

}  // namespace lrm::linalg::internal
