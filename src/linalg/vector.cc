#include "linalg/vector.h"

#include <cmath>
#include <sstream>

namespace lrm::linalg {

void Vector::Fill(double value) {
  for (double& x : data_) x = value;
}

Vector& Vector::operator+=(const Vector& other) {
  LRM_CHECK_EQ(size(), other.size());
  for (Index i = 0; i < size(); ++i) (*this)[i] += other[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& other) {
  LRM_CHECK_EQ(size(), other.size());
  for (Index i = 0; i < size(); ++i) (*this)[i] -= other[i];
  return *this;
}

Vector& Vector::operator*=(double scalar) {
  for (double& x : data_) x *= scalar;
  return *this;
}

Vector& Vector::operator/=(double scalar) {
  LRM_DCHECK(scalar != 0.0);
  return (*this) *= (1.0 / scalar);
}

void Vector::Axpy(double scalar, const Vector& other) {
  LRM_CHECK_EQ(size(), other.size());
  const double* __restrict src = other.data();
  double* __restrict dst = data();
  const Index n = size();
  for (Index i = 0; i < n; ++i) dst[i] += scalar * src[i];
}

std::string Vector::ToString() const {
  std::ostringstream os;
  os << "[";
  for (Index i = 0; i < size(); ++i) {
    if (i > 0) os << ", ";
    os << (*this)[i];
  }
  os << "]";
  return os.str();
}

Vector operator+(Vector a, const Vector& b) {
  a += b;
  return a;
}

Vector operator-(Vector a, const Vector& b) {
  a -= b;
  return a;
}

Vector operator*(Vector a, double scalar) {
  a *= scalar;
  return a;
}

Vector operator*(double scalar, Vector a) {
  a *= scalar;
  return a;
}

Vector operator-(Vector a) {
  a *= -1.0;
  return a;
}

double Dot(const Vector& a, const Vector& b) {
  LRM_CHECK_EQ(a.size(), b.size());
  double result = 0.0;
  const Index n = a.size();
  for (Index i = 0; i < n; ++i) result += a[i] * b[i];
  return result;
}

double Norm2(const Vector& a) { return std::sqrt(SquaredNorm(a)); }

double SquaredNorm(const Vector& a) {
  double result = 0.0;
  for (Index i = 0; i < a.size(); ++i) result += a[i] * a[i];
  return result;
}

double Norm1(const Vector& a) {
  double result = 0.0;
  for (Index i = 0; i < a.size(); ++i) result += std::abs(a[i]);
  return result;
}

double NormInf(const Vector& a) {
  double result = 0.0;
  for (Index i = 0; i < a.size(); ++i) {
    result = std::max(result, std::abs(a[i]));
  }
  return result;
}

double Sum(const Vector& a) {
  double result = 0.0;
  for (Index i = 0; i < a.size(); ++i) result += a[i];
  return result;
}

bool AllFinite(const Vector& a) {
  for (Index i = 0; i < a.size(); ++i) {
    if (!std::isfinite(a[i])) return false;
  }
  return true;
}

bool ApproxEqual(const Vector& a, const Vector& b, double tol) {
  if (a.size() != b.size()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (std::abs(a[i] - b[i]) > tol) return false;
  }
  return true;
}

}  // namespace lrm::linalg
