// Symmetric eigendecomposition via Householder tridiagonalization followed
// by the implicit-shift QL iteration.
//
// Two tridiagonalization paths behind one API (dispatch mirrors the GEMM
// kernels; LRM_FACTOR_KERNEL / kernels::SetFactorImpl force either):
//
//  * scalar  — the classic EISPACK tred2 loop; the reference, and the
//              default below n = 128.
//  * blocked — LAPACK sytrd/latrd-style panels: per-column GEMVs inside a
//              panel, the dominant symmetric rank-2·jb trailing update as
//              two GEMMs, and Q re-accumulated from compact-WY block
//              reflectors (linalg/householder_wy.h). The QL iteration on
//              the tridiagonal is shared with the scalar path.
//
// Used by: the Gram-matrix SVD (singular values of W from eigenvalues of the
// smaller Gram matrix), the matrix mechanism's PSD-cone projection, and the
// strategy reconstruction A = Σ √λᵢ vᵢ vᵢᵀ (paper Appendix B).

#ifndef LRM_LINALG_EIGEN_SYM_H_
#define LRM_LINALG_EIGEN_SYM_H_

#include "base/status_or.h"
#include "linalg/matrix.h"

namespace lrm::linalg {

/// \brief Eigendecomposition A = V·diag(λ)·Vᵀ of a symmetric matrix.
struct SymmetricEigenResult {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Orthonormal eigenvectors as columns, aligned with `eigenvalues`.
  Matrix eigenvectors;
};

/// \brief Computes all eigenpairs of a symmetric matrix.
///
/// The input is symmetrized as (A + Aᵀ)/2 to absorb roundoff asymmetry.
/// O(n³) with a small constant; handles n in the thousands.
///
/// \returns kNumericalError if the QL iteration fails to converge (virtually
/// impossible for genuinely symmetric input).
StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a);

/// \brief Projects a symmetric matrix onto the cone of positive
/// semi-definite matrices with minimum eigenvalue `floor` (clamps the
/// spectrum from below and reassembles).
StatusOr<Matrix> ProjectToPsdCone(const Matrix& a, double floor = 0.0);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_EIGEN_SYM_H_
