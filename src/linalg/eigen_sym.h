// Symmetric eigendecomposition via Householder tridiagonalization followed
// by a tridiagonal eigensolver.
//
// Three paths behind one API (dispatch mirrors the GEMM kernels;
// LRM_FACTOR_KERNEL / kernels::SetFactorImpl force any of them):
//
//  * scalar  — the classic EISPACK tred2 loop + implicit-shift QL; the
//              reference, and the default below n = 128.
//  * blocked — LAPACK sytrd/latrd-style panels: per-column GEMVs inside a
//              panel, the dominant symmetric rank-2·jb trailing update as
//              two GEMMs, and Q re-accumulated from compact-WY block
//              reflectors (linalg/householder_wy.h). The QL iteration on
//              the tridiagonal is shared with the scalar path.
//  * dc      — blocked tridiagonalization as above, but the tridiagonal is
//              solved by Cuppen divide-and-conquer (linalg/eigen_dc.h):
//              secular-equation merges with deflation, eigenvectors
//              assembled by GEMM. This replaces the QL iteration's O(n²)
//              rotation sweeps as the production path at size (`auto`
//              picks it from n = 128) and is what unlocks n ≥ 2048.
//
// Used by: the Gram-matrix SVD (singular values of W from eigenvalues of the
// smaller Gram matrix), the matrix mechanism's PSD-cone projection, and the
// strategy reconstruction A = Σ √λᵢ vᵢ vᵢᵀ (paper Appendix B).

#ifndef LRM_LINALG_EIGEN_SYM_H_
#define LRM_LINALG_EIGEN_SYM_H_

#include <vector>

#include "base/status_or.h"
#include "linalg/eigen_dc.h"
#include "linalg/matrix.h"

namespace lrm::linalg {

/// \brief Eigendecomposition A = V·diag(λ)·Vᵀ of a symmetric matrix.
struct SymmetricEigenResult {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Orthonormal eigenvectors as columns, aligned with `eigenvalues`.
  Matrix eigenvectors;
};

/// \brief Reusable scratch for SymmetricEigen: the symmetrized working
/// copy, the accumulated tridiagonalizing transform, the tridiagonal
/// eigenvector basis, and the divide-and-conquer merge scratch (secular
/// roots, deflation bookkeeping, packed GEMM operands). Repeated solves
/// through one workspace are allocation-free at steady state (beyond the
/// returned result) and bitwise deterministic.
struct SymmetricEigenWorkspace {
  Matrix work;  ///< symmetrized input, consumed by the tridiagonalization
  Matrix q;     ///< accumulated tridiagonalizing transform
  Matrix vt;    ///< tridiagonal eigenvectors (dc) / transposed basis (QL)
  std::vector<double> tau;  ///< blocked-path reflector scalars
  Matrix v_panel, w_panel;  ///< latrd panel factors (n×32 each)
  std::vector<double> panel_p, panel_vc;  ///< panel symv / reflector scratch
  std::vector<double> wy_v, wy_t, wy_apply;  ///< compact-WY blocks for Q
  TridiagDcWorkspace dc;  ///< secular-solve / merge scratch
};

/// \brief Computes all eigenpairs of a symmetric matrix.
///
/// The input is symmetrized as (A + Aᵀ)/2 to absorb roundoff asymmetry.
/// O(n³) with a small constant; the dc path handles n in the several
/// thousands (the QL paths wall out near n ≈ 1024).
///
/// \returns kNumericalError if the tridiagonal iteration fails to converge
/// (virtually impossible for genuinely symmetric input).
StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a);

/// \brief Same, with caller-owned scratch (see SymmetricEigenWorkspace).
StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a,
                                              SymmetricEigenWorkspace* ws);

/// \brief Projects a symmetric matrix onto the cone of positive
/// semi-definite matrices with minimum eigenvalue `floor` (clamps the
/// spectrum from below and reassembles).
StatusOr<Matrix> ProjectToPsdCone(const Matrix& a, double floor = 0.0);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_EIGEN_SYM_H_
