// Symmetric eigendecomposition via Householder tridiagonalization followed
// by a tridiagonal eigensolver.
//
// Three paths behind one API (dispatch mirrors the GEMM kernels;
// LRM_FACTOR_KERNEL / kernels::SetFactorImpl force any of them):
//
//  * scalar  — the classic EISPACK tred2 loop + implicit-shift QL; the
//              reference, and the default below n = 128.
//  * blocked — LAPACK sytrd/latrd-style panels: per-column GEMVs inside a
//              panel, the dominant symmetric rank-2·jb trailing update as
//              two GEMMs, and Q re-accumulated from compact-WY block
//              reflectors (linalg/householder_wy.h). The QL iteration on
//              the tridiagonal is shared with the scalar path.
//  * dc      — blocked tridiagonalization as above, but the tridiagonal is
//              solved by Cuppen divide-and-conquer (linalg/eigen_dc.h):
//              secular-equation merges with deflation, eigenvectors
//              assembled by GEMM. This replaces the QL iteration's O(n²)
//              rotation sweeps as the production path at size (`auto`
//              picks it from n = 128) and is what unlocks n ≥ 2048.
//
// PartialSymmetricEigen adds a fourth, subset path ("partial"): the same
// blocked tridiagonalization, then bisection with Sturm-sequence counts for
// just the top-k eigenvalues and inverse iteration (cluster-reorthogonal-
// ized) for their vectors (linalg/tridiag_partial.h), back-transformed
// through the compact-WY reflector blocks. That replaces the O(n³)
// eigenvector accumulation with O(n²·k) work — the enabler for rank search
// at n ≥ 4096 domains, where the spectrum's top r ≪ n is all the LRM
// decomposition ever reads.
//
// Used by: the Gram-matrix SVD (singular values of W from eigenvalues of the
// smaller Gram matrix), the matrix mechanism's PSD-cone projection, and the
// strategy reconstruction A = Σ √λᵢ vᵢ vᵢᵀ (paper Appendix B).

#ifndef LRM_LINALG_EIGEN_SYM_H_
#define LRM_LINALG_EIGEN_SYM_H_

#include <vector>

#include "base/status_or.h"
#include "linalg/eigen_dc.h"
#include "linalg/matrix.h"
#include "linalg/tridiag_partial.h"

namespace lrm::linalg {

/// \brief Eigendecomposition A = V·diag(λ)·Vᵀ of a symmetric matrix.
struct SymmetricEigenResult {
  /// Eigenvalues in ascending order.
  Vector eigenvalues;
  /// Orthonormal eigenvectors as columns, aligned with `eigenvalues`.
  Matrix eigenvectors;
};

/// \brief Reusable scratch for SymmetricEigen: the symmetrized working
/// copy, the accumulated tridiagonalizing transform, the tridiagonal
/// eigenvector basis, and the divide-and-conquer merge scratch (secular
/// roots, deflation bookkeeping, packed GEMM operands). Repeated solves
/// through one workspace are allocation-free at steady state (beyond the
/// returned result) and bitwise deterministic.
struct SymmetricEigenWorkspace {
  Matrix work;  ///< symmetrized input, consumed by the tridiagonalization
  Matrix q;     ///< accumulated tridiagonalizing transform
  Matrix vt;    ///< tridiagonal eigenvectors (dc) / transposed basis (QL)
  std::vector<double> tau;  ///< blocked-path reflector scalars
  Matrix v_panel, w_panel;  ///< latrd panel factors (n×32 each)
  std::vector<double> panel_p, panel_vc;  ///< panel symv / reflector scratch
  std::vector<double> wy_v, wy_t, wy_apply;  ///< compact-WY blocks for Q
  TridiagDcWorkspace dc;  ///< secular-solve / merge scratch
  internal::TridiagPartialWorkspace partial;  ///< bisection bookkeeping
};

/// \brief Computes all eigenpairs of a symmetric matrix.
///
/// The input is symmetrized as (A + Aᵀ)/2 to absorb roundoff asymmetry.
/// O(n³) with a small constant; the dc path handles n in the several
/// thousands (the QL paths wall out near n ≈ 1024).
///
/// \returns kNumericalError if the tridiagonal iteration fails to converge
/// (virtually impossible for genuinely symmetric input).
StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a);

/// \brief Same, with caller-owned scratch (see SymmetricEigenWorkspace).
StatusOr<SymmetricEigenResult> SymmetricEigen(const Matrix& a,
                                              SymmetricEigenWorkspace* ws);

/// \brief Computes only the k largest eigenpairs of a symmetric matrix:
/// `eigenvalues` holds λ_{n-k} ≤ … ≤ λ_{n-1} (ascending — exactly the tail
/// SymmetricEigen would return) and `eigenvectors` is n×k.
///
/// The subset path costs O(n²·k) after the O(n³)-lite blocked
/// tridiagonalization: Sturm-count bisection locates the k eigenvalues,
/// inverse iteration with in-cluster reorthogonalization builds their
/// tridiagonal eigenvectors, and the compact-WY blocks back-transform them
/// without ever forming the full Q. Dispatch (LRM_FACTOR_KERNEL /
/// kernels::SetFactorImpl): kAuto takes the subset path when
/// n ≥ 128 and 2·k ≤ n and otherwise slices a full solve; kPartial forces
/// the subset path at any size; kReference/kBlocked/kDc slice the
/// corresponding full solve (the D&C slice is the equivalence oracle).
/// Requires 1 ≤ k (k is clamped to n).
StatusOr<SymmetricEigenResult> PartialSymmetricEigen(
    const Matrix& a, Index k, SymmetricEigenWorkspace* ws = nullptr);

/// \brief Rank-adaptive variant for spectrum search: one reduction, then a
/// Sturm count of the eigenvalues above `relative_cutoff · max(λ_max, 0)`
/// (λ_max located by bisection first), then the top
/// min(max(⌈growth·count⌉, 1), n) eigenpairs by the same subset machinery.
/// `*count` receives the Sturm count. This is what lets the decomposition's
/// exact-rank fallback pay one tridiagonalization instead of a full solve:
/// the count IS the numerical rank of the underlying Gram spectrum (see
/// svd.h PartialGramSvdWithRank).
StatusOr<SymmetricEigenResult> PartialSymmetricEigenAboveCutoff(
    const Matrix& a, double relative_cutoff, double growth, Index* count,
    SymmetricEigenWorkspace* ws = nullptr);

/// \brief Number of eigenvalues above `relative_cutoff · max(λ_max, 0)`,
/// with no eigenvectors: one tridiagonalization plus two bisections — the
/// cheapest exact rank probe available (used by EstimateRank at size).
StatusOr<Index> SymmetricEigenCountAbove(const Matrix& a,
                                         double relative_cutoff,
                                         SymmetricEigenWorkspace* ws =
                                             nullptr);

/// \brief Projects a symmetric matrix onto the cone of positive
/// semi-definite matrices with minimum eigenvalue `floor` (clamps the
/// spectrum from below and reassembles).
StatusOr<Matrix> ProjectToPsdCone(const Matrix& a, double floor = 0.0);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_EIGEN_SYM_H_
