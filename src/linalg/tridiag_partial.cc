#include "linalg/tridiag_partial.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <vector>

#include "base/string_util.h"
#include "linalg/kernels/parallel.h"

namespace lrm::linalg::internal {

namespace {

namespace kernels = lrm::linalg::kernels;

constexpr double kEps = std::numeric_limits<double>::epsilon();

// An unreduced diagonal span of the tridiagonal: couplings at both ends are
// negligible, so its spectrum is independent of the rest of the matrix and
// its eigenvectors are supported on [begin, begin + size) alone.
struct Block {
  Index begin = 0;
  Index size = 0;
  double lo = 0.0;     // widened Gershgorin lower bound
  double hi = 0.0;     // widened Gershgorin upper bound
  double norm = 0.0;   // max(|lo|, |hi|): the block's spectral scale
};

// Smallest admissible |pivot| in the Sturm recurrence (LAPACK dstebz's
// pivmin): keeps e²/pivot finite for any representable e.
double ComputePivmin(Index n, const double* e) {
  double emax2 = 1.0;
  for (Index i = 1; i < n; ++i) emax2 = std::max(emax2, e[i] * e[i]);
  return std::numeric_limits<double>::min() * emax2;
}

// Number of eigenvalues of the span (d[0..nb), couplings e[1..nb)) strictly
// below x: the count of negative pivots of the LDLᵀ recurrence of T − x·I.
// e[0] — the coupling to whatever precedes the span — is never read.
Index CountBelowSpan(const double* d, const double* e, Index nb, double x,
                     double pivmin) {
  Index count = 0;
  double q = d[0] - x;
  if (std::abs(q) <= pivmin) q = -pivmin;
  if (q < 0.0) ++count;
  for (Index i = 1; i < nb; ++i) {
    q = d[i] - x - e[i] * e[i] / q;
    if (std::abs(q) <= pivmin) q = -pivmin;
    if (q < 0.0) ++count;
  }
  return count;
}

// Splits the tridiagonal into independent blocks where the coupling is
// negligible relative to its neighboring diagonals, and computes widened
// Gershgorin bounds per block (widened so count(lo) = 0 and count(hi) = nb
// hold exactly for the bisection invariants).
std::vector<Block> SplitBlocks(Index n, const double* d, const double* e,
                               double pivmin) {
  std::vector<Block> blocks;
  Index begin = 0;
  for (Index i = 1; i <= n; ++i) {
    const bool split =
        i == n ||
        std::abs(e[i]) <= kEps * (std::abs(d[i - 1]) + std::abs(d[i]));
    if (!split) continue;
    Block b;
    b.begin = begin;
    b.size = i - begin;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (Index r = begin; r < i; ++r) {
      const double radius = (r > begin ? std::abs(e[r]) : 0.0) +
                            (r + 1 < i ? std::abs(e[r + 1]) : 0.0);
      lo = std::min(lo, d[r] - radius);
      hi = std::max(hi, d[r] + radius);
    }
    b.norm = std::max(std::abs(lo), std::abs(hi));
    const double slack =
        2.0 * kEps * b.norm * static_cast<double>(b.size) + 2.0 * pivmin;
    b.lo = lo - slack;
    b.hi = hi + slack;
    blocks.push_back(b);
    begin = i;
  }
  return blocks;
}

// Locates the j-th (0-based, ascending) eigenvalue of the span by bisection.
// Invariant: count(lo) ≤ j < count(hi).
double BisectEigenvalue(const double* d, const double* e, Index nb, Index j,
                        double lo, double hi, double norm, double pivmin) {
  for (int it = 0; it < 256; ++it) {
    const double mid = 0.5 * (lo + hi);
    if (mid <= lo || mid >= hi) break;  // interval is at ulp resolution
    if (CountBelowSpan(d, e, nb, mid, pivmin) > j) {
      hi = mid;
    } else {
      lo = mid;
    }
    const double tol =
        0.5 * kEps * (std::abs(lo) + std::abs(hi) + norm) + 2.0 * pivmin;
    if (hi - lo <= tol) break;
  }
  return 0.5 * (lo + hi);
}

// ---------------------------------------------------------------------------
// Inverse iteration (LAPACK dlagtf/dlagts structure): tridiagonal LU with
// partial pivoting of T − λ·I, then repeated solves from a deterministic
// pseudorandom start vector, reorthogonalized against earlier vectors of the
// same eigenvalue cluster.
// ---------------------------------------------------------------------------

// LU factors of the shifted span, partial pivoting. On entry diag/sup/sub
// hold T − λ·I; on return diag is U's diagonal, sup its first superdiagonal,
// sup2 its second (fill-in), sub the L multipliers, and swapped[i] records
// whether rows i and i+1 were exchanged.
void FactorShiftedTridiag(Index nb, double* diag, double* sup, double* sub,
                          double* sup2, unsigned char* swapped) {
  for (Index i = 0; i + 1 < nb; ++i) {
    if (std::abs(diag[i]) >= std::abs(sub[i])) {
      const double mult = diag[i] != 0.0 ? sub[i] / diag[i] : 0.0;
      sub[i] = mult;
      diag[i + 1] -= mult * sup[i];
      if (i + 2 < nb) sup2[i] = 0.0;
      swapped[i] = 0;
    } else {
      const double mult = diag[i] / sub[i];
      diag[i] = sub[i];
      const double temp = diag[i + 1];
      diag[i + 1] = sup[i] - mult * temp;
      if (i + 2 < nb) {
        sup2[i] = sup[i + 1];
        sup[i + 1] = -mult * sup2[i];
      }
      sup[i] = temp;
      sub[i] = mult;
      swapped[i] = 1;
    }
  }
}

// Solves (T − λ·I)·y = rhs in place from the factors above. Pivots are
// floored in magnitude to piv_floor so the (intentionally) near-singular
// solve amplifies the null direction instead of dividing by zero, and the
// whole vector is rescaled whenever an entry grows past kGrowLimit — the
// solution then solves a scaled right-hand side, which inverse iteration is
// indifferent to.
void SolveShiftedTridiag(Index nb, const double* diag, const double* sup,
                         const double* sub, const double* sup2,
                         const unsigned char* swapped, double piv_floor,
                         double* y) {
  constexpr double kGrowLimit = 1e100;
  for (Index i = 0; i + 1 < nb; ++i) {
    if (swapped[i] == 0) {
      y[i + 1] -= sub[i] * y[i];
    } else {
      const double temp = y[i];
      y[i] = y[i + 1];
      y[i + 1] = temp - sub[i] * y[i];
    }
  }
  const auto floored = [piv_floor](double p) {
    if (std::abs(p) >= piv_floor) return p;
    return p < 0.0 ? -piv_floor : piv_floor;
  };
  const auto rescale_if_huge = [&](Index solved_from) {
    const double mag = std::abs(y[solved_from]);
    if (mag <= kGrowLimit) return;
    const double s = kGrowLimit / mag;
    for (Index r = 0; r < nb; ++r) y[r] *= s;
  };
  y[nb - 1] /= floored(diag[nb - 1]);
  rescale_if_huge(nb - 1);
  if (nb >= 2) {
    y[nb - 2] = (y[nb - 2] - sup[nb - 2] * y[nb - 1]) / floored(diag[nb - 2]);
    rescale_if_huge(nb - 2);
  }
  for (Index i = nb - 3; i >= 0; --i) {
    y[i] = (y[i] - sup[i] * y[i + 1] - sup2[i] * y[i + 2]) / floored(diag[i]);
    rescale_if_huge(i);
  }
}

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Deterministic start vector for output column `col`, entries in [-0.5, 0.5).
// Keyed by the column (not by task or thread), so results are bitwise
// reproducible across LRM_GEMM_THREADS.
void FillStartVector(Index col, std::uint64_t salt, Index nb, double* x) {
  std::uint64_t state =
      (static_cast<std::uint64_t>(col) + 1) * 0xD1B54A32D192ED03ull + salt;
  for (Index i = 0; i < nb; ++i) {
    x[i] =
        static_cast<double>(SplitMix64(state) >> 11) * 0x1.0p-53 - 0.5;
  }
}

// One eigenvalue cluster of one block: output columns (into z) and the
// cluster-adjusted shifts to invert at, both ascending.
struct Cluster {
  Index block = 0;
  std::vector<Index> cols;
  std::vector<double> shifts;
};

// Inverse iteration for every member of one cluster, in ascending order,
// each reorthogonalized (modified Gram-Schmidt, fixed order) against the
// members already accepted. Writes the block's support rows of each output
// column of z; rows outside the block stay zero. Returns false if a vector
// never came out finite and nonzero.
bool SolveCluster(const Cluster& cluster, const Block& blk, const double* d,
                  const double* e, Matrix* z) {
  const Index nb = blk.size;
  const Index b0 = blk.begin;
  const Index kcols = z->cols();
  const double scale = std::max(blk.norm, std::numeric_limits<double>::min());
  const double piv_floor = std::max(
      kEps * scale, std::numeric_limits<double>::min() * 1e16);
  const double growth_accept = 1.0 / (std::sqrt(kEps) * scale);
  constexpr int kMaxIterations = 5;

  std::vector<double> diag(nb), sup(nb), sub(nb), sup2(nb), x(nb), y(nb);
  std::vector<unsigned char> swapped(nb);
  double* zdata = z->data();

  for (std::size_t m = 0; m < cluster.cols.size(); ++m) {
    const Index col = cluster.cols[m];
    const double shift = cluster.shifts[m];
    for (Index i = 0; i < nb; ++i) {
      diag[i] = d[b0 + i] - shift;
      const double coupling = i + 1 < nb ? e[b0 + i + 1] : 0.0;
      sup[i] = coupling;
      sub[i] = coupling;
    }
    FactorShiftedTridiag(nb, diag.data(), sup.data(), sub.data(), sup2.data(),
                         swapped.data());

    bool accepted = false;
    for (std::uint64_t attempt = 0; attempt < 3 && !accepted; ++attempt) {
      FillStartVector(col, attempt * 0x9E3779B97F4A7C15ull, nb, x.data());
      for (int iter = 0; iter < kMaxIterations; ++iter) {
        std::copy(x.begin(), x.end(), y.begin());
        SolveShiftedTridiag(nb, diag.data(), sup.data(), sub.data(),
                            sup2.data(), swapped.data(), piv_floor, y.data());
        // Project out the cluster members already accepted (their support is
        // this same block, rows b0..b0+nb).
        for (std::size_t p = 0; p < m; ++p) {
          const Index pcol = cluster.cols[p];
          double dot = 0.0;
          for (Index i = 0; i < nb; ++i) {
            dot += y[i] * zdata[(b0 + i) * kcols + pcol];
          }
          for (Index i = 0; i < nb; ++i) {
            y[i] -= dot * zdata[(b0 + i) * kcols + pcol];
          }
        }
        double norm2 = 0.0;
        for (Index i = 0; i < nb; ++i) norm2 += y[i] * y[i];
        const double norm = std::sqrt(norm2);
        if (!std::isfinite(norm) || norm == 0.0) break;  // reseed and retry
        const double inv = 1.0 / norm;
        for (Index i = 0; i < nb; ++i) x[i] = y[i] * inv;
        if (iter >= 1 && norm >= growth_accept) {
          accepted = true;
          break;
        }
        if (iter == kMaxIterations - 1) accepted = true;  // best effort
      }
    }
    if (!accepted) return false;
    for (Index i = 0; i < nb; ++i) zdata[(b0 + i) * kcols + col] = x[i];
  }
  return true;
}

}  // namespace

Index TridiagCountBelow(Index n, const double* d, const double* e, double x) {
  if (n <= 0) return 0;
  const double pivmin = ComputePivmin(n, e);
  return CountBelowSpan(d, e, n, x, pivmin);
}

double TridiagMaxEigenvalue(Index n, const double* d, const double* e) {
  const double pivmin = ComputePivmin(n, e);
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (Index i = 0; i < n; ++i) {
    const double radius =
        (i > 0 ? std::abs(e[i]) : 0.0) + (i + 1 < n ? std::abs(e[i + 1]) : 0.0);
    lo = std::min(lo, d[i] - radius);
    hi = std::max(hi, d[i] + radius);
  }
  const double norm = std::max(std::abs(lo), std::abs(hi));
  const double slack = 2.0 * kEps * norm * static_cast<double>(n) +
                       2.0 * pivmin;
  return BisectEigenvalue(d, e, n, n - 1, lo - slack, hi + slack, norm,
                          pivmin);
}

Status TridiagTopKEigen(Index n, const double* d, const double* e, Index k,
                        Vector* eigenvalues, Matrix* z,
                        TridiagPartialWorkspace* ws) {
  if (n <= 0 || k <= 0 || k > n) {
    return Status::InvalidArgument(
        StrFormat("TridiagTopKEigen: need 1 <= k <= n, got k=%td n=%td", k,
                  n));
  }
  TridiagPartialWorkspace local;
  TridiagPartialWorkspace& w = ws != nullptr ? *ws : local;

  const double pivmin = ComputePivmin(n, e);
  const std::vector<Block> blocks = SplitBlocks(n, d, e, pivmin);

  // Candidate eigenvalues: each block contributes its top min(k, size), so
  // the global top k is always covered. Every candidate is one independent
  // bisection task.
  Index total = 0;
  for (const Block& b : blocks) total += std::min(k, b.size);
  w.cand_value.resize(static_cast<std::size_t>(total));
  w.cand_block.resize(static_cast<std::size_t>(total));
  w.cand_index.resize(static_cast<std::size_t>(total));
  Index c = 0;
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const Index nb = blocks[bi].size;
    const Index take = std::min(k, nb);
    for (Index j = nb - take; j < nb; ++j, ++c) {
      w.cand_block[static_cast<std::size_t>(c)] = static_cast<Index>(bi);
      w.cand_index[static_cast<std::size_t>(c)] = j;
    }
  }
  kernels::ParallelFor(total, [&](Index cand) {
    const Block& b =
        blocks[static_cast<std::size_t>(w.cand_block[
            static_cast<std::size_t>(cand)])];
    w.cand_value[static_cast<std::size_t>(cand)] = BisectEigenvalue(
        d + b.begin, e + b.begin, b.size,
        w.cand_index[static_cast<std::size_t>(cand)], b.lo, b.hi, b.norm,
        pivmin);
  });

  // Global top k, ascending. Ties break by (block, in-block index) so the
  // selection — and with it the output column order — is deterministic.
  w.order.resize(static_cast<std::size_t>(total));
  std::iota(w.order.begin(), w.order.end(), Index{0});
  std::sort(w.order.begin(), w.order.end(), [&](Index a, Index b) {
    const auto ia = static_cast<std::size_t>(a);
    const auto ib = static_cast<std::size_t>(b);
    if (w.cand_value[ia] != w.cand_value[ib]) {
      return w.cand_value[ia] < w.cand_value[ib];
    }
    if (w.cand_block[ia] != w.cand_block[ib]) {
      return w.cand_block[ia] < w.cand_block[ib];
    }
    return w.cand_index[ia] < w.cand_index[ib];
  });
  w.selected.assign(w.order.end() - k, w.order.end());

  *eigenvalues = Vector(k);
  for (Index i = 0; i < k; ++i) {
    (*eigenvalues)[i] =
        w.cand_value[static_cast<std::size_t>(w.selected[
            static_cast<std::size_t>(i)])];
  }
  z->Resize(n, k);  // zero-filled; blocks write only their support rows

  // Group each block's selected eigenvalues into clusters (gap ≤ 10⁻³ of
  // the block's spectral scale, the dstein threshold) and separate
  // numerically coincident shifts so each inverse iteration has its own
  // pole. Reported eigenvalues stay the bisected ones; only the shifts used
  // for the solves are perturbed.
  std::vector<Cluster> clusters;
  w.solve_lambda.resize(static_cast<std::size_t>(k));
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    const double ortol = 1e-3 * std::max(blocks[bi].norm, pivmin);
    const double sep = 10.0 * kEps * std::max(blocks[bi].norm, pivmin);
    Cluster* current = nullptr;
    for (Index i = 0; i < k; ++i) {
      const auto cand = static_cast<std::size_t>(
          w.selected[static_cast<std::size_t>(i)]);
      if (w.cand_block[cand] != static_cast<Index>(bi)) continue;
      const double value = w.cand_value[cand];
      if (current == nullptr || value - current->shifts.back() > ortol) {
        clusters.emplace_back();
        current = &clusters.back();
        current->block = static_cast<Index>(bi);
        current->cols.push_back(i);
        current->shifts.push_back(value);
      } else {
        current->cols.push_back(i);
        current->shifts.push_back(
            std::max(value, current->shifts.back() + sep));
      }
    }
  }

  std::atomic<bool> failed{false};
  kernels::ParallelFor(static_cast<Index>(clusters.size()), [&](Index ci) {
    const Cluster& cluster = clusters[static_cast<std::size_t>(ci)];
    const Block& blk = blocks[static_cast<std::size_t>(cluster.block)];
    if (!SolveCluster(cluster, blk, d, e, z)) {
      failed.store(true, std::memory_order_relaxed);
    }
  });
  if (failed.load(std::memory_order_relaxed)) {
    return Status::NumericalError(
        "TridiagTopKEigen: inverse iteration produced no finite eigenvector");
  }
  return Status::OK();
}

}  // namespace lrm::linalg::internal
