// Non-owning matrix views and the buffer-reusing (`*Into`) operation
// variants built on the kernel layer.
//
// A view is (data, rows, cols, stride) over row-major doubles: entry (i, j)
// lives at data[i·stride + j]. Views convert implicitly from Matrix, so
// every `*Into` entry point accepts owning matrices, whole-matrix views, and
// strided sub-blocks alike. Views never outlive their backing storage —
// holding one across a Resize() of the source Matrix is a use-after-free,
// exactly like an invalidated iterator.
//
// The `*Into` functions write their result into a caller-owned Matrix,
// resizing it only when the shape changes (Matrix::Resize reuses capacity),
// so per-iteration temporaries in solver loops become allocation-free after
// the first pass. The output must not alias any input — checked, because a
// GEMM that reads what it just wrote produces garbage silently.

#ifndef LRM_LINALG_MATRIX_VIEW_H_
#define LRM_LINALG_MATRIX_VIEW_H_

#include "base/check.h"
#include "linalg/matrix.h"

namespace lrm::linalg {

/// \brief Read-only non-owning view of a row-major double buffer.
class ConstMatrixView {
 public:
  /// Empty 0×0 view.
  ConstMatrixView() = default;

  /// Views an entire matrix (implicit: Matrix arguments bind to view
  /// parameters directly).
  ConstMatrixView(const Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), stride_(m.cols()) {}

  /// Views `rows`×`cols` entries of `data` with row stride `stride`.
  ConstMatrixView(const double* data, Index rows, Index cols, Index stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    LRM_CHECK_GE(rows, 0);
    LRM_CHECK_GE(cols, 0);
    LRM_CHECK_GE(stride, cols);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  const double* data() const { return data_; }
  const double* RowPtr(Index i) const { return data_ + i * stride_; }

  double operator()(Index i, Index j) const {
    LRM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * stride_ + j];
  }

  /// Sub-block of `rows`×`cols` starting at (row, col); shares storage.
  ConstMatrixView Block(Index row, Index col, Index rows, Index cols) const {
    LRM_CHECK(row >= 0 && rows >= 0 && row + rows <= rows_);
    LRM_CHECK(col >= 0 && cols >= 0 && col + cols <= cols_);
    return ConstMatrixView(data_ + row * stride_ + col, rows, cols, stride_);
  }

  /// Owning copy.
  Matrix ToMatrix() const;

 private:
  const double* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index stride_ = 0;
};

/// \brief Mutable non-owning view; converts to ConstMatrixView.
class MatrixView {
 public:
  MatrixView() = default;

  MatrixView(Matrix& m)  // NOLINT(google-explicit-constructor)
      : data_(m.data()), rows_(m.rows()), cols_(m.cols()), stride_(m.cols()) {}

  MatrixView(double* data, Index rows, Index cols, Index stride)
      : data_(data), rows_(rows), cols_(cols), stride_(stride) {
    LRM_CHECK_GE(rows, 0);
    LRM_CHECK_GE(cols, 0);
    LRM_CHECK_GE(stride, cols);
  }

  operator ConstMatrixView() const {  // NOLINT(google-explicit-constructor)
    return ConstMatrixView(data_, rows_, cols_, stride_);
  }

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  Index stride() const { return stride_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }
  double* data() const { return data_; }
  double* RowPtr(Index i) const { return data_ + i * stride_; }

  double& operator()(Index i, Index j) const {
    LRM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[i * stride_ + j];
  }

  MatrixView Block(Index row, Index col, Index rows, Index cols) const {
    LRM_CHECK(row >= 0 && rows >= 0 && row + rows <= rows_);
    LRM_CHECK(col >= 0 && cols >= 0 && col + cols <= cols_);
    return MatrixView(data_ + row * stride_ + col, rows, cols, stride_);
  }

 private:
  double* data_ = nullptr;
  Index rows_ = 0;
  Index cols_ = 0;
  Index stride_ = 0;
};

/// \brief True iff the two views can touch a common double (conservative:
/// compares the address ranges the views span).
bool ViewsOverlap(ConstMatrixView a, ConstMatrixView b);

/// \brief C = alpha·op(A)·op(B) + beta·C, the workhorse behind every
/// `Multiply*Into`. With beta == 0, C is resized to the product shape and
/// overwritten; otherwise C's shape must already match (its contents feed
/// the accumulation). C must not alias A or B (checked).
void GemmInto(double alpha, ConstMatrixView a, bool transpose_a,
              ConstMatrixView b, bool transpose_b, double beta, Matrix* c);

/// \brief C = A·B without allocating when C already has the product shape.
void MultiplyInto(ConstMatrixView a, ConstMatrixView b, Matrix* c);

/// \brief C = Aᵀ·B (neither transpose is materialized).
void MultiplyAtBInto(ConstMatrixView a, ConstMatrixView b, Matrix* c);

/// \brief C = A·Bᵀ.
void MultiplyABtInto(ConstMatrixView a, ConstMatrixView b, Matrix* c);

/// \brief C = Aᵀ·Bᵀ.
void MultiplyAtBtInto(ConstMatrixView a, ConstMatrixView b, Matrix* c);

/// \brief C = AᵀA (cols×cols Gram matrix).
void GramAtAInto(ConstMatrixView a, Matrix* c);

/// \brief C = AAᵀ (rows×rows Gram matrix).
void GramAAtInto(ConstMatrixView a, Matrix* c);

/// \brief C = Aᵀ as an explicit copy.
void TransposeInto(ConstMatrixView a, Matrix* c);

/// \brief C = A (materializes a view; reuses C's buffer when shapes match).
void CopyInto(ConstMatrixView a, Matrix* c);

/// \brief y = A·x without allocating when y already has A.rows() entries.
void MultiplyInto(ConstMatrixView a, const Vector& x, Vector* y);

/// \brief y = Aᵀ·x.
void MultiplyAtXInto(ConstMatrixView a, const Vector& x, Vector* y);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_MATRIX_VIEW_H_
