// Cholesky factorization and SPD solves.
//
// The LRM B-update (paper Eq. 9) solves B (β L Lᵀ + I) = (β W Lᵀ + π Lᵀ)
// where the r×r system matrix is symmetric positive definite; Cholesky is
// the cheapest stable factorization for it.

#ifndef LRM_LINALG_CHOLESKY_H_
#define LRM_LINALG_CHOLESKY_H_

#include "base/status_or.h"
#include "linalg/matrix.h"

namespace lrm::linalg {

/// \brief Computes the lower-triangular L with A = L·Lᵀ.
///
/// \returns kNumericalError if A is not positive definite (within roundoff).
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// \brief Solves A·x = b given the Cholesky factor L of A.
Vector CholeskySolve(const Matrix& l, const Vector& b);

/// \brief Solves A·X = B (column block solve) given the Cholesky factor L.
Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b);

/// \brief Solves A·X = B for symmetric positive definite A.
StatusOr<Matrix> SolveSpd(const Matrix& a, const Matrix& b);

/// \brief Solves A·x = b for symmetric positive definite A.
StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b);

/// \brief Inverse of a symmetric positive definite matrix.
StatusOr<Matrix> SpdInverse(const Matrix& a);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_CHOLESKY_H_
