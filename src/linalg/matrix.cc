#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "linalg/kernels/kernels.h"

namespace lrm::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = static_cast<Index>(rows.size());
  cols_ = rows_ > 0 ? static_cast<Index>(rows.begin()->size()) : 0;
  data_.reserve(CheckedCount(rows_, cols_));
  for (const auto& row : rows) {
    LRM_CHECK_EQ(static_cast<Index>(row.size()), cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::Identity(Index n) {
  Matrix result(n, n);
  for (Index i = 0; i < n; ++i) result(i, i) = 1.0;
  return result;
}

Matrix Matrix::Diagonal(const Vector& diagonal) {
  const Index n = diagonal.size();
  Matrix result(n, n);
  for (Index i = 0; i < n; ++i) result(i, i) = diagonal[i];
  return result;
}

Matrix Matrix::FromRowMajor(Index rows, Index cols,
                            std::vector<double> values) {
  LRM_CHECK_EQ(values.size(), CheckedCount(rows, cols));
  Matrix result;
  result.rows_ = rows;
  result.cols_ = cols;
  result.data_ = std::move(values);
  return result;
}

Vector Matrix::Row(Index i) const {
  LRM_CHECK(i >= 0 && i < rows_);
  Vector result(cols_);
  const double* src = RowPtr(i);
  std::copy(src, src + cols_, result.data());
  return result;
}

Vector Matrix::Column(Index j) const {
  LRM_CHECK(j >= 0 && j < cols_);
  Vector result(rows_);
  for (Index i = 0; i < rows_; ++i) result[i] = (*this)(i, j);
  return result;
}

void Matrix::SetRow(Index i, const Vector& values) {
  LRM_CHECK(i >= 0 && i < rows_);
  LRM_CHECK_EQ(values.size(), cols_);
  std::copy(values.data(), values.data() + cols_, RowPtr(i));
}

void Matrix::SetColumn(Index j, const Vector& values) {
  LRM_CHECK(j >= 0 && j < cols_);
  LRM_CHECK_EQ(values.size(), rows_);
  for (Index i = 0; i < rows_; ++i) (*this)(i, j) = values[i];
}

void Matrix::Fill(double value) {
  for (double& x : data_) x = value;
}

void Matrix::Resize(Index rows, Index cols) {
  const std::size_t count = CheckedCount(rows, cols);
  rows_ = rows;
  cols_ = cols;
  if (count <= data_.capacity()) {
    // Guaranteed in-place: resize() cannot reallocate below capacity, so
    // solver workspaces that shrink and regrow stop hitting the allocator.
    data_.resize(count);
    std::fill(data_.begin(), data_.end(), 0.0);
  } else {
    data_.assign(count, 0.0);
  }
}

Matrix& Matrix::operator+=(const Matrix& other) {
  LRM_CHECK_EQ(rows_, other.rows_);
  LRM_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  LRM_CHECK_EQ(rows_, other.rows_);
  LRM_CHECK_EQ(cols_, other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  kernels::Scale(size(), scalar, data());
  return *this;
}

Matrix& Matrix::operator/=(double scalar) {
  LRM_DCHECK(scalar != 0.0);
  return (*this) *= (1.0 / scalar);
}

void Matrix::Axpy(double scalar, const Matrix& other) {
  LRM_CHECK_EQ(rows_, other.rows_);
  LRM_CHECK_EQ(cols_, other.cols_);
  kernels::Axpy(size(), scalar, other.data(), data());
}

std::string Matrix::ToString() const {
  std::ostringstream os;
  for (Index i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[[" : " [");
    for (Index j = 0; j < cols_; ++j) {
      if (j > 0) os << ", ";
      os << (*this)(i, j);
    }
    os << (i + 1 == rows_ ? "]]" : "]\n");
  }
  return os.str();
}

Matrix operator+(Matrix a, const Matrix& b) {
  a += b;
  return a;
}

Matrix operator-(Matrix a, const Matrix& b) {
  a -= b;
  return a;
}

Matrix operator*(Matrix a, double scalar) {
  a *= scalar;
  return a;
}

Matrix operator*(double scalar, Matrix a) {
  a *= scalar;
  return a;
}

Matrix operator-(Matrix a) {
  a *= -1.0;
  return a;
}

Matrix operator*(const Matrix& a, const Matrix& b) {
  LRM_CHECK_EQ(a.cols(), b.rows());
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, m, n, k, 1.0,
                a.data(), a.cols(), b.data(), b.cols(), 0.0, c.data(),
                c.cols());
  return c;
}

Vector operator*(const Matrix& a, const Vector& x) {
  LRM_CHECK_EQ(a.cols(), x.size());
  Vector y(a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    y[i] = kernels::Dot(a.cols(), a.RowPtr(i), x.data());
  }
  return y;
}

Matrix MultiplyAtB(const Matrix& a, const Matrix& b) {
  LRM_CHECK_EQ(a.rows(), b.rows());
  const Index m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(k, n);
  kernels::Gemm(kernels::Op::kTranspose, kernels::Op::kNone, k, n, m, 1.0,
                a.data(), a.cols(), b.data(), b.cols(), 0.0, c.data(),
                c.cols());
  return c;
}

Matrix MultiplyABt(const Matrix& a, const Matrix& b) {
  LRM_CHECK_EQ(a.cols(), b.cols());
  const Index m = a.rows(), k = a.cols(), n = b.rows();
  Matrix c(m, n);
  kernels::Gemm(kernels::Op::kNone, kernels::Op::kTranspose, m, n, k, 1.0,
                a.data(), a.cols(), b.data(), b.cols(), 0.0, c.data(),
                c.cols());
  return c;
}

Vector MultiplyAtX(const Matrix& a, const Vector& x) {
  LRM_CHECK_EQ(a.rows(), x.size());
  Vector y(a.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    const double x_i = x[i];
    if (x_i == 0.0) continue;
    kernels::Axpy(a.cols(), x_i, a.RowPtr(i), y.data());
  }
  return y;
}

Matrix GramAtA(const Matrix& a) { return MultiplyAtB(a, a); }

Matrix GramAAt(const Matrix& a) { return MultiplyABt(a, a); }

Matrix Transpose(const Matrix& a) {
  Matrix result(a.cols(), a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    for (Index j = 0; j < a.cols(); ++j) {
      result(j, i) = row[j];
    }
  }
  return result;
}

double FrobeniusNorm(const Matrix& a) {
  return std::sqrt(SquaredFrobeniusNorm(a));
}

double SquaredFrobeniusNorm(const Matrix& a) {
  return kernels::SquaredNorm(a.size(), a.data());
}

double Trace(const Matrix& a) {
  LRM_CHECK_EQ(a.rows(), a.cols());
  double result = 0.0;
  for (Index i = 0; i < a.rows(); ++i) result += a(i, i);
  return result;
}

double MaxColumnAbsSum(const Matrix& a) {
  if (a.cols() == 0) return 0.0;
  Vector sums(a.cols());
  kernels::ColumnAbsSums(a.rows(), a.cols(), a.data(), a.cols(), sums.data());
  return NormInf(sums);
}

double ColumnAbsSum(const Matrix& a, Index j) {
  LRM_CHECK(j >= 0 && j < a.cols());
  double result = 0.0;
  for (Index i = 0; i < a.rows(); ++i) result += std::abs(a(i, j));
  return result;
}

double MaxAbs(const Matrix& a) {
  double result = 0.0;
  const double* p = a.data();
  for (Index i = 0; i < a.size(); ++i) {
    result = std::max(result, std::abs(p[i]));
  }
  return result;
}

bool ApproxEqual(const Matrix& a, const Matrix& b, double tol) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (Index i = 0; i < a.size(); ++i) {
    if (std::abs(a.data()[i] - b.data()[i]) > tol) return false;
  }
  return true;
}

bool AllFinite(const Matrix& a) {
  const double* p = a.data();
  for (Index i = 0; i < a.size(); ++i) {
    if (!std::isfinite(p[i])) return false;
  }
  return true;
}

bool IsSymmetric(const Matrix& a, double tol) {
  if (a.rows() != a.cols()) return false;
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = i + 1; j < a.cols(); ++j) {
      if (std::abs(a(i, j) - a(j, i)) > tol) return false;
    }
  }
  return true;
}

Matrix HStack(const Matrix& a, const Matrix& b) {
  LRM_CHECK_EQ(a.rows(), b.rows());
  Matrix result(a.rows(), a.cols() + b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    std::copy(a.RowPtr(i), a.RowPtr(i) + a.cols(), result.RowPtr(i));
    std::copy(b.RowPtr(i), b.RowPtr(i) + b.cols(),
              result.RowPtr(i) + a.cols());
  }
  return result;
}

Matrix VStack(const Matrix& a, const Matrix& b) {
  LRM_CHECK_EQ(a.cols(), b.cols());
  Matrix result(a.rows() + b.rows(), a.cols());
  std::copy(a.data(), a.data() + a.size(), result.data());
  std::copy(b.data(), b.data() + b.size(), result.data() + a.size());
  return result;
}

Matrix SliceRows(const Matrix& a, Index row_begin, Index row_end) {
  LRM_CHECK(row_begin >= 0 && row_begin <= row_end && row_end <= a.rows());
  Matrix result(row_end - row_begin, a.cols());
  std::copy(a.RowPtr(row_begin), a.RowPtr(row_begin) + result.size(),
            result.data());
  return result;
}

Matrix SliceCols(const Matrix& a, Index col_begin, Index col_end) {
  LRM_CHECK(col_begin >= 0 && col_begin <= col_end && col_end <= a.cols());
  Matrix result(a.rows(), col_end - col_begin);
  for (Index i = 0; i < a.rows(); ++i) {
    std::copy(a.RowPtr(i) + col_begin, a.RowPtr(i) + col_end,
              result.RowPtr(i));
  }
  return result;
}

}  // namespace lrm::linalg
