// Dense row-major double-precision matrix with the operations the paper's
// algorithms need: GEMM (all transpose variants), norms, traces, column
// manipulation, and elementwise arithmetic.
//
// The arithmetic lowers to the pointer-level kernels in linalg/kernels/
// (blocked/threaded GEMM with runtime dispatch); see src/linalg/README.md
// for the layering and linalg/matrix_view.h for non-owning views and the
// allocation-free `*Into` variants of the products below.

#ifndef LRM_LINALG_MATRIX_H_
#define LRM_LINALG_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <string>
#include <vector>

#include "base/check.h"
#include "linalg/vector.h"

namespace lrm::linalg {

/// \brief Dense row-major matrix of doubles.
///
/// Storage is a single contiguous buffer; entry (i, j) lives at
/// data()[i * cols() + j]. Debug builds bounds-check every access.
class Matrix {
 public:
  /// Empty 0×0 matrix.
  Matrix() = default;

  /// Zero matrix of the given shape.
  Matrix(Index rows, Index cols)
      : rows_(rows), cols_(cols), data_(CheckedCount(rows, cols), 0.0) {}

  /// Matrix of the given shape filled with `value`.
  Matrix(Index rows, Index cols, double value)
      : rows_(rows), cols_(cols), data_(CheckedCount(rows, cols), value) {}

  /// From nested braced lists (row major):
  /// Matrix m{{1, 2}, {3, 4}};
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n×n identity.
  static Matrix Identity(Index n);

  /// Square matrix with `diagonal` on the diagonal, zero elsewhere.
  static Matrix Diagonal(const Vector& diagonal);

  /// Adopts a row-major buffer of size rows*cols.
  static Matrix FromRowMajor(Index rows, Index cols,
                             std::vector<double> values);

  Index rows() const { return rows_; }
  Index cols() const { return cols_; }
  /// Total number of entries.
  Index size() const { return static_cast<Index>(data_.size()); }
  bool empty() const { return data_.empty(); }

  double& operator()(Index i, Index j) {
    LRM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[Offset(i, j)];
  }
  double operator()(Index i, Index j) const {
    LRM_DCHECK(i >= 0 && i < rows_ && j >= 0 && j < cols_);
    return data_[Offset(i, j)];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* RowPtr(Index i) { return data() + Offset(i, 0); }
  const double* RowPtr(Index i) const { return data() + Offset(i, 0); }

  /// Copies row i into a Vector.
  Vector Row(Index i) const;

  /// Copies column j into a Vector.
  Vector Column(Index j) const;

  /// Overwrites row i.
  void SetRow(Index i, const Vector& values);

  /// Overwrites column j.
  void SetColumn(Index j, const Vector& values);

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Resizes to rows×cols, zero-filling (old contents discarded). Reuses
  /// the existing allocation when the new entry count fits the current
  /// capacity, so workspace matrices resized in loops stop allocating after
  /// the high-water mark — but note any outstanding MatrixView is
  /// invalidated regardless.
  void Resize(Index rows, Index cols);

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);
  Matrix& operator/=(double scalar);

  /// this += scalar * other.
  void Axpy(double scalar, const Matrix& other);

  /// Debug rendering with one line per row.
  std::string ToString() const;

 private:
  // rows·cols as std::size_t, aborting when the product overflows Index
  // (all offset arithmetic below assumes entry counts fit a ptrdiff_t).
  static std::size_t CheckedCount(Index rows, Index cols) {
    LRM_CHECK_GE(rows, 0);
    LRM_CHECK_GE(cols, 0);
    const std::size_t count =
        static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
    LRM_CHECK(rows == 0 ||
              count / static_cast<std::size_t>(rows) ==
                  static_cast<std::size_t>(cols));
    LRM_CHECK_LE(count,
                 static_cast<std::size_t>(std::numeric_limits<Index>::max()));
    return count;
  }

  std::size_t Offset(Index i, Index j) const {
    return static_cast<std::size_t>(i) * static_cast<std::size_t>(cols_) +
           static_cast<std::size_t>(j);
  }

  Index rows_ = 0;
  Index cols_ = 0;
  std::vector<double> data_;
};

Matrix operator+(Matrix a, const Matrix& b);
Matrix operator-(Matrix a, const Matrix& b);
Matrix operator*(Matrix a, double scalar);
Matrix operator*(double scalar, Matrix a);
Matrix operator-(Matrix a);  // negation

/// \brief C = A·B. Dimensions must agree. Lowers to the dispatched GEMM in
/// linalg/kernels/ (blocked + threaded for large shapes); use MultiplyInto
/// (linalg/matrix_view.h) to reuse an output buffer instead of allocating.
Matrix operator*(const Matrix& a, const Matrix& b);

/// \brief y = A·x.
Vector operator*(const Matrix& a, const Vector& x);

/// \brief C = Aᵀ·B without materializing Aᵀ.
Matrix MultiplyAtB(const Matrix& a, const Matrix& b);

/// \brief C = A·Bᵀ without materializing Bᵀ.
Matrix MultiplyABt(const Matrix& a, const Matrix& b);

/// \brief y = Aᵀ·x without materializing Aᵀ.
Vector MultiplyAtX(const Matrix& a, const Vector& x);

/// \brief Gram matrix AᵀA (symmetric, cols×cols).
Matrix GramAtA(const Matrix& a);

/// \brief Gram matrix AAᵀ (symmetric, rows×rows).
Matrix GramAAt(const Matrix& a);

/// \brief Transposed copy.
Matrix Transpose(const Matrix& a);

/// \brief √(Σᵢⱼ aᵢⱼ²).
double FrobeniusNorm(const Matrix& a);

/// \brief Σᵢⱼ aᵢⱼ² — the paper's "query scale" Φ when applied to B
/// (Definition 1); equals tr(AᵀA).
double SquaredFrobeniusNorm(const Matrix& a);

/// \brief Sum of diagonal entries; matrix must be square.
double Trace(const Matrix& a);

/// \brief maxⱼ Σᵢ |aᵢⱼ| — the induced L1 norm. Applied to a strategy matrix
/// this is exactly the paper's query sensitivity Δ (Definition 2).
double MaxColumnAbsSum(const Matrix& a);

/// \brief Σᵢ |aᵢⱼ| for one column j.
double ColumnAbsSum(const Matrix& a, Index j);

/// \brief Largest |aᵢⱼ|.
double MaxAbs(const Matrix& a);

/// \brief True iff shapes match and entries differ by at most `tol`.
bool ApproxEqual(const Matrix& a, const Matrix& b, double tol);

/// \brief True iff every entry of the matrix is finite (no NaN/±Inf). The
/// Vector overload lives with the other vector utilities in vector.h.
bool AllFinite(const Matrix& a);

/// \brief True iff the matrix equals its transpose within `tol`.
bool IsSymmetric(const Matrix& a, double tol = 1e-12);

/// \brief Horizontal concatenation [a | b]; row counts must match.
Matrix HStack(const Matrix& a, const Matrix& b);

/// \brief Vertical concatenation; column counts must match.
Matrix VStack(const Matrix& a, const Matrix& b);

/// \brief Copy of rows [row_begin, row_end) of `a`.
Matrix SliceRows(const Matrix& a, Index row_begin, Index row_end);

/// \brief Copy of columns [col_begin, col_end) of `a`.
Matrix SliceCols(const Matrix& a, Index col_begin, Index col_end);

}  // namespace lrm::linalg

#endif  // LRM_LINALG_MATRIX_H_
