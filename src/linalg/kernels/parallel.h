// Task-parallel runtime for the kernels tier, built on the persistent
// base/thread_pool.h worker pool (one process-wide pool, grown lazily —
// never a thread spawn per kernel call).
//
// The determinism contract every user of this header follows: the task
// PARTITION is a function of the problem shape alone (never of the worker
// count), tasks write disjoint outputs, and any cross-task reduction is
// summed in fixed task order after the barrier. Scheduling — which worker
// runs which task, in what order — is then free to race, and results stay
// bitwise identical for every LRM_GEMM_THREADS setting. This is what lets
// factorization_equivalence_test assert threaded == single-thread with
// operator== instead of a tolerance.
//
// Nesting and deadlock-freedom: work is handed to the pool only after
// winning a concurrency token (one token per pool worker). A caller that
// holds no token runs the task inline on its own stack. Every blocked
// waiter therefore waits on a task that holds a token, and a counting
// argument bounds token holders by the worker count, so some worker can
// always make progress — ParallelFor inside TaskGroup inside GEMM inside a
// Cuppen subtree task is safe.

#ifndef LRM_LINALG_KERNELS_PARALLEL_H_
#define LRM_LINALG_KERNELS_PARALLEL_H_

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>

#include "linalg/kernels/kernels.h"

namespace lrm::linalg::kernels {

/// \brief Runs body(task) for every task in [0, num_tasks), using at most
/// `max_workers` concurrent executors (the calling thread plus shared pool
/// workers; pool helpers are only used when a concurrency token is free).
/// Tasks are claimed dynamically, so callers must keep each task
/// independent with disjoint outputs; the partition itself must come from
/// the problem shape so results are reproducible across worker counts.
/// Rethrows the first exception any task threw. `max_workers <= 1` (or a
/// single task) degrades to a plain ascending loop on the calling thread.
void ParallelFor(Index num_tasks, int max_workers,
                 const std::function<void(Index)>& body);

/// \brief ParallelFor with max_workers = GemmThreads() — the kernels tier's
/// one threading knob (LRM_GEMM_THREADS / SetGemmThreads).
void ParallelFor(Index num_tasks, const std::function<void(Index)>& body);

/// \brief A group of tasks that may run on shared pool workers, with a
/// join. Run() hands the task to the pool when a concurrency token is free
/// and otherwise executes it inline on the calling thread, so a TaskGroup
/// never deadlocks and never oversubscribes: worst case it is a plain
/// sequential loop. Wait() blocks until every Run() task finished and
/// rethrows the first exception any of them threw. The destructor waits
/// and swallows errors. Used for irregular fork/join work — the Cuppen
/// divide-and-conquer recursion runs its left subtree as a group task
/// while the caller descends into the right.
class TaskGroup {
 public:
  TaskGroup() = default;
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void Run(std::function<void()> task);
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable done_;
  std::exception_ptr error_;
  int pending_ = 0;
};

}  // namespace lrm::linalg::kernels

#endif  // LRM_LINALG_KERNELS_PARALLEL_H_
