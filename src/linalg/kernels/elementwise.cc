// Level-1 kernels: fused AXPY/scale and column-wise reductions. Simple
// __restrict loops the compiler vectorizes; kept behind the kernel API so
// the Matrix layer has a single place to swap implementations.

#include <cmath>

#include "linalg/kernels/kernels.h"

namespace lrm::linalg::kernels {

void Axpy(Index n, double alpha, const double* x, double* y) {
  const double* __restrict src = x;
  double* __restrict dst = y;
  for (Index i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void Axpby(Index n, double alpha, const double* x, double beta, double* y) {
  const double* __restrict src = x;
  double* __restrict dst = y;
  for (Index i = 0; i < n; ++i) dst[i] = alpha * src[i] + beta * dst[i];
}

void Scale(Index n, double alpha, double* x) {
  for (Index i = 0; i < n; ++i) x[i] *= alpha;
}

double Dot(Index n, const double* x, const double* y) {
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) acc += x[i] * y[i];
  return acc;
}

double SquaredNorm(Index n, const double* x) {
  double acc = 0.0;
  for (Index i = 0; i < n; ++i) acc += x[i] * x[i];
  return acc;
}

void ColumnAbsSums(Index m, Index n, const double* a, Index lda, double* out) {
  for (Index j = 0; j < n; ++j) out[j] = 0.0;
  for (Index i = 0; i < m; ++i) {
    const double* __restrict row = a + i * lda;
    double* __restrict acc = out;
    for (Index j = 0; j < n; ++j) acc[j] += std::abs(row[j]);
  }
}

void ColumnSquaredNorms(Index m, Index n, const double* a, Index lda,
                        double* out) {
  for (Index j = 0; j < n; ++j) out[j] = 0.0;
  for (Index i = 0; i < m; ++i) {
    const double* __restrict row = a + i * lda;
    double* __restrict acc = out;
    for (Index j = 0; j < n; ++j) acc[j] += row[j] * row[j];
  }
}

}  // namespace lrm::linalg::kernels
