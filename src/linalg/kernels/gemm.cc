// Cache-blocked, register-tiled, optionally multithreaded GEMM.
//
// Structure (BLIS-style): the operands are packed into contiguous panels —
// op(A) into column-major micro-panels of kMr rows, op(B) into row-major
// micro-panels of kNr columns — so one micro-kernel serves all four
// transpose variants and arbitrary leading dimensions. Blocking targets
//   packed B block (kKc×kNc ≈ 2 MB)  → L3/L2,
//   packed A block (kMc×kKc ≈ 192 KB) → L2,
//   one B micro-panel (kKc×kNr = 16 KB) → L1.
// Threading rides the shared kernels runtime (parallel.h): C is cut into
// row tasks whose boundaries depend only on m, and a dot product is never
// split across tasks, so the result is bitwise independent of the thread
// count and of which pool worker ran which strip.

#include <algorithm>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "base/check.h"
#include "linalg/kernels/kernels.h"
#include "linalg/kernels/parallel.h"

namespace lrm::linalg::kernels {

namespace {

constexpr Index kMr = 4;    // micro-tile rows
constexpr Index kNr = 8;    // micro-tile columns
constexpr Index kMc = 96;   // rows of a packed A block
constexpr Index kKc = 256;  // shared (k) depth of packed blocks
constexpr Index kNc = 1024;  // columns of a packed B block

// Compile the hot path for newer vector ISAs with runtime selection; the
// "default" clone keeps the binary runnable on any x86-64 (and the macro
// collapses to nothing elsewhere). Disabled under ThreadSanitizer: the
// glibc IFUNC resolver behind target_clones runs before the TSan runtime
// has mapped its shadow memory, which segfaults at process start.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__)
#define LRM_KERNEL_TARGET_CLONES \
  __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define LRM_KERNEL_TARGET_CLONES
#endif

inline double OpAt(const double* a, Index lda, Op op, Index i, Index k) {
  return op == Op::kNone ? a[i * lda + k] : a[k * lda + i];
}

// Packs rows [i0, i0+mc) × depth [p0, p0+kc) of op(A) into micro-panels:
// panel p holds rows [p·kMr, (p+1)·kMr), entry (r, kk) at [kk·kMr + r].
// Rows past mc are zero-padded so the micro-kernel never branches.
void PackA(Op op, const double* a, Index lda, Index i0, Index p0, Index mc,
           Index kc, double* buffer) {
  for (Index panel = 0; panel * kMr < mc; ++panel) {
    double* dst = buffer + panel * kMr * kc;
    const Index row_base = i0 + panel * kMr;
    const Index live = std::min<Index>(kMr, mc - panel * kMr);
    for (Index kk = 0; kk < kc; ++kk) {
      for (Index r = 0; r < live; ++r) {
        dst[kk * kMr + r] = OpAt(a, lda, op, row_base + r, p0 + kk);
      }
      for (Index r = live; r < kMr; ++r) dst[kk * kMr + r] = 0.0;
    }
  }
}

// Packs depth [p0, p0+kc) × columns [j0, j0+nc) of op(B) into micro-panels:
// panel q holds columns [q·kNr, (q+1)·kNr), entry (kk, c) at [kk·kNr + c],
// zero-padded past nc.
void PackB(Op op, const double* b, Index ldb, Index p0, Index j0, Index kc,
           Index nc, double* buffer) {
  for (Index panel = 0; panel * kNr < nc; ++panel) {
    double* dst = buffer + panel * kNr * kc;
    const Index col_base = j0 + panel * kNr;
    const Index live = std::min<Index>(kNr, nc - panel * kNr);
    if (op == Op::kNone && live == kNr) {
      for (Index kk = 0; kk < kc; ++kk) {
        const double* src = b + (p0 + kk) * ldb + col_base;
        for (Index c = 0; c < kNr; ++c) dst[kk * kNr + c] = src[c];
      }
      continue;
    }
    for (Index kk = 0; kk < kc; ++kk) {
      for (Index c = 0; c < live; ++c) {
        dst[kk * kNr + c] = OpAt(b, ldb, op, p0 + kk, col_base + c);
      }
      for (Index c = live; c < kNr; ++c) dst[kk * kNr + c] = 0.0;
    }
  }
}

// One blocked GEMM on a row strip of C, single-threaded. Packing buffers are
// caller-provided so worker threads never share scratch.
LRM_KERNEL_TARGET_CLONES
void BlockedStrip(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                  const double* a, Index lda, const double* b, Index ldb,
                  double beta, double* c, Index ldc, double* packed_a,
                  double* packed_b) {
  for (Index i = 0; i < m; ++i) {
    double* c_row = c + i * ldc;
    if (beta == 0.0) {
      for (Index j = 0; j < n; ++j) c_row[j] = 0.0;
    } else if (beta != 1.0) {
      for (Index j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (alpha == 0.0 || k == 0) return;

  for (Index jc = 0; jc < n; jc += kNc) {
    const Index nc = std::min(kNc, n - jc);
    for (Index pc = 0; pc < k; pc += kKc) {
      const Index kc = std::min(kKc, k - pc);
      PackB(op_b, b, ldb, pc, jc, kc, nc, packed_b);
      for (Index ic = 0; ic < m; ic += kMc) {
        const Index mc = std::min(kMc, m - ic);
        PackA(op_a, a, lda, ic, pc, mc, kc, packed_a);
        for (Index jr = 0; jr < nc; jr += kNr) {
          const double* b_panel = packed_b + (jr / kNr) * kNr * kc;
          const Index n_live = std::min<Index>(kNr, nc - jr);
          for (Index ir = 0; ir < mc; ir += kMr) {
            const double* a_panel = packed_a + (ir / kMr) * kMr * kc;
            const Index m_live = std::min<Index>(kMr, mc - ir);
            // Micro-kernel: kMr×kNr accumulators over the packed panels.
            double acc[kMr][kNr] = {};
            for (Index kk = 0; kk < kc; ++kk) {
              const double* pa = a_panel + kk * kMr;
              const double* pb = b_panel + kk * kNr;
              for (Index r = 0; r < kMr; ++r) {
                const double a_r = pa[r];
                for (Index cidx = 0; cidx < kNr; ++cidx) {
                  acc[r][cidx] += a_r * pb[cidx];
                }
              }
            }
            double* c_tile = c + (ic + ir) * ldc + jc + jr;
            for (Index r = 0; r < m_live; ++r) {
              for (Index cidx = 0; cidx < n_live; ++cidx) {
                c_tile[r * ldc + cidx] += alpha * acc[r][cidx];
              }
            }
          }
        }
      }
    }
  }
}

// Packing scratch, checked out of a process-wide free list so the ~2 MB
// buffers (and their faulted-in pages) survive across calls — hot loops
// issue thousands of GEMMs, and tasks land on whichever shared-pool worker
// is free, so thread-local storage would fragment the buffers per thread.
struct PackScratch {
  std::vector<double> a, b;
};

class ScratchPool {
 public:
  std::unique_ptr<PackScratch> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<PackScratch>();
    std::unique_ptr<PackScratch> scratch = std::move(free_.back());
    free_.pop_back();
    return scratch;
  }

  void Release(std::unique_ptr<PackScratch> scratch) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(scratch));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<PackScratch>> free_;
};

ScratchPool& GlobalScratchPool() {
  static ScratchPool* pool = new ScratchPool;  // leaked: outlive all threads
  return *pool;
}

// RAII checkout so early returns and exceptions hand the buffers back.
class ScratchLease {
 public:
  ScratchLease() : scratch_(GlobalScratchPool().Acquire()) {}
  ~ScratchLease() { GlobalScratchPool().Release(std::move(scratch_)); }
  ScratchLease(const ScratchLease&) = delete;
  ScratchLease& operator=(const ScratchLease&) = delete;
  PackScratch& get() { return *scratch_; }

 private:
  std::unique_ptr<PackScratch> scratch_;
};

void RunStrip(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
              const double* a, Index lda, const double* b, Index ldb,
              double beta, double* c, Index ldc) {
  ScratchLease lease;
  PackScratch& scratch = lease.get();
  const Index a_rows = ((std::min(kMc, m) + kMr - 1) / kMr) * kMr;
  const Index b_cols = ((std::min(kNc, n) + kNr - 1) / kNr) * kNr;
  const Index depth = std::min(kKc, std::max<Index>(k, 1));
  scratch.a.resize(static_cast<std::size_t>(a_rows * depth));
  scratch.b.resize(static_cast<std::size_t>(b_cols * depth));
  BlockedStrip(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
               scratch.a.data(), scratch.b.data());
}

}  // namespace

void GemmBlocked(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                 const double* a, Index lda, const double* b, Index ldb,
                 double beta, double* c, Index ldc, int threads) {
  LRM_CHECK_GE(m, 0);
  LRM_CHECK_GE(n, 0);
  LRM_CHECK_GE(k, 0);
  if (m == 0 || n == 0) return;

  // Rows are cut into tasks of two packed-A blocks each — big enough to
  // amortize the B repack, small enough that the dynamic claim balances
  // uneven workers. The boundaries depend only on m (never on `threads`),
  // and each row of C is computed whole inside one task, so the bits are
  // identical for every thread count.
  constexpr Index kRowsPerTask = 2 * kMc;
  const Index num_tasks = (m + kRowsPerTask - 1) / kRowsPerTask;
  if (threads <= 1 || num_tasks <= 1) {
    RunStrip(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }

  // Row i of C reads row i of op(A): offset `a` by rows for kNone and by
  // columns for kTranspose.
  ParallelFor(num_tasks, threads, [&](Index task) {
    const Index row_begin = task * kRowsPerTask;
    const Index row_end = std::min(m, row_begin + kRowsPerTask);
    const double* a_strip =
        op_a == Op::kNone ? a + row_begin * lda : a + row_begin;
    RunStrip(op_a, op_b, row_end - row_begin, n, k, alpha, a_strip, lda, b,
             ldb, beta, c + row_begin * ldc, ldc);
  });
}

void Gemm(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
          const double* a, Index lda, const double* b, Index ldb, double beta,
          double* c, Index ldc) {
  if (m == 0 || n == 0) return;
  const GemmImpl impl = ActiveGemmImpl();
  if (impl == GemmImpl::kReference) {
    GemmReference(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  const Index flops = m * n * k;
  // Below ~32³ multiply-adds the packing traffic exceeds the compute; the
  // streaming reference loop wins there. Matrix–vector shapes (one output
  // row or column) are memory-bound and the packed micro-kernel pads them
  // to full 4×8 tiles, so the reference loop wins at any size.
  constexpr Index kBlockedThreshold = 32 * 32 * 32;
  if (impl == GemmImpl::kAuto && (flops < kBlockedThreshold || m == 1 ||
                                  n == 1)) {
    // Large matrix–vector products still parallelize: chunk the long
    // dimension and run the reference loop per chunk. Chunk boundaries
    // depend only on the shape, and every output element's k-accumulation
    // stays inside one chunk in the same order the monolithic call uses,
    // so the bits match the plain reference call exactly.
    constexpr Index kGemvThreadThreshold = Index{1} << 20;
    if (flops >= kGemvThreadThreshold) {
      const Index span_per_task =
          std::max<Index>(256, (Index{1} << 19) / std::max<Index>(k, 1));
      if (n == 1 && m > 1) {
        const Index num_tasks = (m + span_per_task - 1) / span_per_task;
        ParallelFor(num_tasks, [&](Index task) {
          const Index i0 = task * span_per_task;
          const Index rows = std::min(span_per_task, m - i0);
          const double* a_strip = op_a == Op::kNone ? a + i0 * lda : a + i0;
          GemmReference(op_a, op_b, rows, n, k, alpha, a_strip, lda, b, ldb,
                        beta, c + i0 * ldc, ldc);
        });
        return;
      }
      if (m == 1 && n > 1) {
        const Index num_tasks = (n + span_per_task - 1) / span_per_task;
        ParallelFor(num_tasks, [&](Index task) {
          const Index j0 = task * span_per_task;
          const Index cols = std::min(span_per_task, n - j0);
          const double* b_strip = op_b == Op::kNone ? b + j0 : b + j0 * ldb;
          GemmReference(op_a, op_b, m, cols, k, alpha, a, lda, b_strip, ldb,
                        beta, c + j0, ldc);
        });
        return;
      }
    }
    GemmReference(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc);
    return;
  }
  // Threads only pay off once each worker has a few MB of flops.
  constexpr Index kThreadThreshold = Index{1} << 21;
  const int threads = flops >= kThreadThreshold ? GemmThreads() : 1;
  GemmBlocked(op_a, op_b, m, n, k, alpha, a, lda, b, ldb, beta, c, ldc,
              threads);
}

}  // namespace lrm::linalg::kernels
