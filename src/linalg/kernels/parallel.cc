#include "linalg/kernels/parallel.h"

#include <atomic>
#include <utility>

#include "base/thread_pool.h"

namespace lrm::linalg::kernels {
namespace {

// One process-wide helper pool shared by every kernel. Created on first
// parallel region and grown (never shrunk) to match the largest worker
// count requested so far; deliberately leaked so worker threads never
// race static destruction at process exit. `tokens` counts pool workers
// not currently executing a kernels-tier task — Run()/ParallelFor only
// hand work to the pool after winning a token, and run it inline
// otherwise, which is what makes nested parallel regions deadlock-free.
struct SharedPool {
  std::mutex mu;               // guards pool creation/growth
  ::lrm::ThreadPool* pool = nullptr;
  int size = 0;                // workers in `pool` (== tokens ever issued)
  std::atomic<int> tokens{0};  // free concurrency slots
};

SharedPool& State() {
  static SharedPool* state = new SharedPool;
  return *state;
}

// Grows the shared pool to at least `helpers` workers, minting one
// concurrency token per new worker.
void EnsurePoolFor(int helpers) {
  if (helpers <= 0) return;
  SharedPool& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  if (state.pool == nullptr) {
    state.pool = new ::lrm::ThreadPool(helpers);
    state.size = state.pool->num_threads();
    state.tokens.fetch_add(state.size);
  } else if (state.size < helpers) {
    const int added = state.pool->EnsureThreads(helpers);
    state.size += added;
    state.tokens.fetch_add(added);
  }
}

bool AcquireToken() {
  std::atomic<int>& tokens = State().tokens;
  int have = tokens.load();
  while (have > 0) {
    if (tokens.compare_exchange_weak(have, have - 1)) return true;
  }
  return false;
}

void ReleaseToken() { State().tokens.fetch_add(1); }

}  // namespace

TaskGroup::~TaskGroup() {
  try {
    Wait();
  } catch (...) {
    // Errors from tasks never observed via Wait() are dropped, matching
    // the base ThreadPool destructor contract.
  }
}

void TaskGroup::Run(std::function<void()> task) {
  const int helpers = GemmThreads() - 1;
  if (helpers > 0) EnsurePoolFor(helpers);
  if (helpers > 0 && AcquireToken()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
    }
    State().pool->Submit([this, task = std::move(task)] {
      std::exception_ptr error;
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
      ReleaseToken();
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !error_) error_ = std::move(error);
      if (--pending_ == 0) done_.notify_all();
    });
    return;
  }
  // No spare pool capacity (or threading disabled): run on this thread.
  try {
    task();
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }
}

void TaskGroup::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_.wait(lock, [this] { return pending_ == 0; });
    error = std::exchange(error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

void ParallelFor(Index num_tasks, int max_workers,
                 const std::function<void(Index)>& body) {
  if (num_tasks <= 0) return;
  int workers = max_workers;
  if (static_cast<Index>(workers) > num_tasks) {
    workers = static_cast<int>(num_tasks);
  }
  if (workers <= 1) {
    for (Index task = 0; task < num_tasks; ++task) body(task);
    return;
  }
  EnsurePoolFor(workers - 1);

  // Dynamic claim over a shape-derived task list: scheduling may race,
  // the partition may not (see parallel.h).
  std::atomic<Index> next{0};
  const auto drain = [&next, num_tasks, &body] {
    for (;;) {
      const Index task = next.fetch_add(1);
      if (task >= num_tasks) return;
      try {
        body(task);
      } catch (...) {
        // Stop further claims so the region winds down promptly.
        next.store(num_tasks);
        throw;
      }
    }
  };

  TaskGroup group;
  for (int helper = 1; helper < workers; ++helper) group.Run(drain);
  std::exception_ptr caller_error;
  try {
    drain();
  } catch (...) {
    caller_error = std::current_exception();
  }
  group.Wait();
  if (caller_error) std::rethrow_exception(caller_error);
}

void ParallelFor(Index num_tasks, const std::function<void(Index)>& body) {
  ParallelFor(num_tasks, GemmThreads(), body);
}

}  // namespace lrm::linalg::kernels
