// Runtime dispatch configuration for the kernel layer. Environment variables
// are read once (first query); programmatic overrides win over the
// environment so tests and benchmarks can flip implementations on the fly.

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "linalg/kernels/kernels.h"

namespace lrm::linalg::kernels {

namespace {

// 0 = "not overridden, use the environment default".
std::atomic<int> g_thread_override{0};

// Matches GemmImpl values shifted by one; 0 = "not overridden".
std::atomic<int> g_impl_override{0};

// Matches FactorImpl values shifted by one; 0 = "not overridden".
std::atomic<int> g_factor_override{0};

int EnvThreadDefault() {
  if (const char* env = std::getenv("LRM_GEMM_THREADS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

GemmImpl EnvImplDefault() {
  if (const char* env = std::getenv("LRM_GEMM_KERNEL")) {
    if (std::strcmp(env, "reference") == 0) return GemmImpl::kReference;
    if (std::strcmp(env, "blocked") == 0) return GemmImpl::kBlocked;
  }
  return GemmImpl::kAuto;
}

FactorImpl EnvFactorDefault() {
  if (const char* env = std::getenv("LRM_FACTOR_KERNEL")) {
    if (std::strcmp(env, "reference") == 0) return FactorImpl::kReference;
    if (std::strcmp(env, "blocked") == 0) return FactorImpl::kBlocked;
    if (std::strcmp(env, "dc") == 0) return FactorImpl::kDc;
    if (std::strcmp(env, "partial") == 0) return FactorImpl::kPartial;
  }
  return FactorImpl::kAuto;
}

}  // namespace

int GemmThreads() {
  const int override = g_thread_override.load(std::memory_order_relaxed);
  if (override > 0) return override;
  static const int env_default = EnvThreadDefault();
  return env_default;
}

void SetGemmThreads(int threads) {
  g_thread_override.store(threads > 0 ? threads : 0,
                          std::memory_order_relaxed);
}

GemmImpl ActiveGemmImpl() {
  const int override = g_impl_override.load(std::memory_order_relaxed);
  if (override > 0) return static_cast<GemmImpl>(override - 1);
  static const GemmImpl env_default = EnvImplDefault();
  return env_default;
}

void SetGemmImpl(GemmImpl impl) {
  // kAuto clears the override (symmetric with SetGemmThreads(0)), so the
  // LRM_GEMM_KERNEL environment choice shows through again afterwards.
  g_impl_override.store(
      impl == GemmImpl::kAuto ? 0 : static_cast<int>(impl) + 1,
      std::memory_order_relaxed);
}

FactorImpl ActiveFactorImpl() {
  const int override = g_factor_override.load(std::memory_order_relaxed);
  if (override > 0) return static_cast<FactorImpl>(override - 1);
  static const FactorImpl env_default = EnvFactorDefault();
  return env_default;
}

void SetFactorImpl(FactorImpl impl) {
  // kAuto clears the override so LRM_FACTOR_KERNEL shows through again.
  g_factor_override.store(
      impl == FactorImpl::kAuto ? 0 : static_cast<int>(impl) + 1,
      std::memory_order_relaxed);
}

bool UseBlockedFactor(bool auto_blocked) {
  switch (ActiveFactorImpl()) {
    case FactorImpl::kReference:
      return false;
    case FactorImpl::kBlocked:
    case FactorImpl::kDc:
    case FactorImpl::kPartial:
      // kDc/kPartial only change the tridiagonal eigensolver; for every
      // other factorization they mean "the GEMM-rich path", i.e. blocked.
      return true;
    case FactorImpl::kAuto:
      break;
  }
  return auto_blocked;
}

}  // namespace lrm::linalg::kernels
