// Scalar reference GEMM — the validation oracle and small-shape fallback.
// Deliberately the plainest loop nest that is still cache-sane: the i-k-j
// ordering streams rows of op(B) and C for the common kNone case.

#include "base/check.h"
#include "linalg/kernels/kernels.h"

namespace lrm::linalg::kernels {

namespace {

// Entry (i, k) of op(A) for A stored with leading dimension lda.
inline double OpAt(const double* a, Index lda, Op op, Index i, Index k) {
  return op == Op::kNone ? a[i * lda + k] : a[k * lda + i];
}

}  // namespace

void GemmReference(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                   const double* a, Index lda, const double* b, Index ldb,
                   double beta, double* c, Index ldc) {
  LRM_CHECK_GE(m, 0);
  LRM_CHECK_GE(n, 0);
  LRM_CHECK_GE(k, 0);
  for (Index i = 0; i < m; ++i) {
    double* c_row = c + i * ldc;
    if (beta == 0.0) {
      for (Index j = 0; j < n; ++j) c_row[j] = 0.0;
    } else if (beta != 1.0) {
      for (Index j = 0; j < n; ++j) c_row[j] *= beta;
    }
  }
  if (alpha == 0.0) return;
  for (Index i = 0; i < m; ++i) {
    double* c_row = c + i * ldc;
    for (Index l = 0; l < k; ++l) {
      const double a_il = alpha * OpAt(a, lda, op_a, i, l);
      if (a_il == 0.0) continue;
      if (op_b == Op::kNone) {
        const double* b_row = b + l * ldb;
        for (Index j = 0; j < n; ++j) c_row[j] += a_il * b_row[j];
      } else {
        const double* b_col = b + l;
        for (Index j = 0; j < n; ++j) c_row[j] += a_il * b_col[j * ldb];
      }
    }
  }
}

}  // namespace lrm::linalg::kernels
