// Level-2 kernels: symmetric matrix–vector product.
//
// SymvLower exists because the tridiagonalization panel (latrd) multiplies
// the symmetric trailing matrix by the current reflector once per column —
// the only O(n³) term of the reduction that cannot be deferred into a GEMM.
// Routing it through the general GEMV path costs twice: the full square is
// streamed although the matrix is symmetric, and a single-accumulator dot
// chain leaves the core latency-bound. This kernel reads each lower-triangle
// element once, applies it to both y[i] and y[j], and splits the reduction
// across independent accumulators so the loop is throughput-bound.
//
// Above kStripDim rows the triangle is cut into row strips and run on the
// shared task runtime (parallel.h). The scatter side of a strip's rows
// lands on y entries owned by EARLIER strips, so each strip accumulates
// those contributions into a private partial row instead, and a second
// phase folds the partials into y in ascending strip order. The strip
// count and boundaries depend only on n — never on the thread count — and
// both phases sum in fixed orders, so results are bitwise identical for
// every LRM_GEMM_THREADS setting (though not to the single-strip layout,
// which small n keeps unchanged).

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/kernels/kernels.h"
#include "linalg/kernels/parallel.h"

namespace lrm::linalg::kernels {

namespace {

constexpr Index kStripDim = 256;  // rows per strip (and strip threshold)
constexpr Index kMaxStrips = 16;

// Fused dot + scatter over columns [j0, j1) of one triangle row: returns
// sum(row[j] * x[j]) accumulated 4-wide and adds row[j] * xi into out[j].
inline double DotScatter(const double* row, const double* x, Index j0,
                         Index j1, double xi, double* out) {
  double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
  Index j = j0;
  for (; j + 4 <= j1; j += 4) {
    const double a0 = row[j], a1 = row[j + 1];
    const double a2 = row[j + 2], a3 = row[j + 3];
    s0 += a0 * x[j];
    s1 += a1 * x[j + 1];
    s2 += a2 * x[j + 2];
    s3 += a3 * x[j + 3];
    out[j] += a0 * xi;
    out[j + 1] += a1 * xi;
    out[j + 2] += a2 * xi;
    out[j + 3] += a3 * xi;
  }
  for (; j < j1; ++j) {
    s0 += row[j] * x[j];
    out[j] += row[j] * xi;
  }
  return (s0 + s1) + (s2 + s3);
}

// Partial-row scratch (kMaxStrips × n doubles per call), recycled through
// a process-wide free list — latrd issues one SymvLower per column, and
// concurrent factorizations on the shared pool must not share buffers.
class PartialPool {
 public:
  std::unique_ptr<std::vector<double>> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<std::vector<double>>();
    std::unique_ptr<std::vector<double>> buffer = std::move(free_.back());
    free_.pop_back();
    return buffer;
  }

  void Release(std::unique_ptr<std::vector<double>> buffer) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(buffer));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<std::vector<double>>> free_;
};

PartialPool& GlobalPartialPool() {
  static PartialPool* pool = new PartialPool;  // leaked: outlive all threads
  return *pool;
}

void SymvLowerSingle(Index n, double alpha, const double* a, Index lda,
                     const double* x, double beta, double* y) {
  if (beta == 0.0) {
    for (Index i = 0; i < n; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (Index i = 0; i < n; ++i) y[i] *= beta;
  }
  for (Index i = 0; i < n; ++i) {
    const double* row = a + i * lda;
    const double xi = alpha * x[i];
    const double dot = DotScatter(row, x, 0, i, xi, y);
    y[i] += alpha * dot + row[i] * xi;
  }
}

}  // namespace

void SymvLower(Index n, double alpha, const double* a, Index lda,
               const double* x, double beta, double* y) {
  const Index strips = std::min<Index>(kMaxStrips, n / kStripDim);
  if (strips < 2) {
    SymvLowerSingle(n, alpha, a, lda, x, beta, y);
    return;
  }

  // Equal-work boundaries: rows [0, r) of the triangle hold ~r²/2 entries,
  // so r_s = n·sqrt(s/S) balances the strips. Shape-only, so the same n
  // always produces the same partition.
  Index bounds[kMaxStrips + 1];
  bounds[0] = 0;
  for (Index s = 1; s < strips; ++s) {
    const Index r = static_cast<Index>(std::llround(
        static_cast<double>(n) *
        std::sqrt(static_cast<double>(s) / static_cast<double>(strips))));
    bounds[s] = std::min(n, std::max(bounds[s - 1], r));
  }
  bounds[strips] = n;

  std::unique_ptr<std::vector<double>> lease = GlobalPartialPool().Acquire();
  std::vector<double>& partials = *lease;
  if (static_cast<Index>(partials.size()) < strips * n) {
    partials.resize(static_cast<std::size_t>(strips * n));
  }
  double* scratch = partials.data();

  // Phase 1: each strip scales its own y rows, then walks its rows fusing
  // the dot with the scatter — columns owned by earlier strips go to the
  // private partial row, columns inside the strip go straight to y.
  ParallelFor(strips, [&](Index s) {
    const Index r0 = bounds[s];
    const Index r1 = bounds[s + 1];
    double* part = scratch + s * n;
    std::fill(part, part + r0, 0.0);
    if (beta == 0.0) {
      for (Index i = r0; i < r1; ++i) y[i] = 0.0;
    } else if (beta != 1.0) {
      for (Index i = r0; i < r1; ++i) y[i] *= beta;
    }
    for (Index i = r0; i < r1; ++i) {
      const double* row = a + i * lda;
      const double xi = alpha * x[i];
      double dot = DotScatter(row, x, 0, r0, xi, part);
      dot += DotScatter(row, x, r0, i, xi, y);
      y[i] += alpha * dot + row[i] * xi;
    }
  });

  // Phase 2: fold the partial rows into y, each strip summing over its own
  // y range in ascending strip order (a fixed reduction order).
  ParallelFor(strips, [&](Index s) {
    const Index r0 = bounds[s];
    const Index r1 = bounds[s + 1];
    for (Index t = s + 1; t < strips; ++t) {
      if (bounds[t + 1] == bounds[t]) continue;  // scattered nothing
      const double* part = scratch + t * n;
      for (Index j = r0; j < r1; ++j) y[j] += part[j];
    }
  });

  GlobalPartialPool().Release(std::move(lease));
}

}  // namespace lrm::linalg::kernels
