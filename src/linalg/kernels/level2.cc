// Level-2 kernels: symmetric matrix–vector product.
//
// SymvLower exists because the tridiagonalization panel (latrd) multiplies
// the symmetric trailing matrix by the current reflector once per column —
// the only O(n³) term of the reduction that cannot be deferred into a GEMM.
// Routing it through the general GEMV path costs twice: the full square is
// streamed although the matrix is symmetric, and a single-accumulator dot
// chain leaves the core latency-bound. This kernel reads each lower-triangle
// element once, applies it to both y[i] and y[j], and splits the reduction
// across independent accumulators so the loop is throughput-bound.

#include "linalg/kernels/kernels.h"

namespace lrm::linalg::kernels {

void SymvLower(Index n, double alpha, const double* a, Index lda,
               const double* x, double beta, double* y) {
  if (beta == 0.0) {
    for (Index i = 0; i < n; ++i) y[i] = 0.0;
  } else if (beta != 1.0) {
    for (Index i = 0; i < n; ++i) y[i] *= beta;
  }
  for (Index i = 0; i < n; ++i) {
    const double* row = a + i * lda;
    const double xi = alpha * x[i];
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    Index j = 0;
    for (; j + 4 <= i; j += 4) {
      const double a0 = row[j], a1 = row[j + 1];
      const double a2 = row[j + 2], a3 = row[j + 3];
      s0 += a0 * x[j];
      s1 += a1 * x[j + 1];
      s2 += a2 * x[j + 2];
      s3 += a3 * x[j + 3];
      y[j] += a0 * xi;
      y[j + 1] += a1 * xi;
      y[j + 2] += a2 * xi;
      y[j + 3] += a3 * xi;
    }
    for (; j < i; ++j) {
      s0 += row[j] * x[j];
      y[j] += row[j] * xi;
    }
    y[i] += alpha * ((s0 + s1) + (s2 + s3)) + row[i] * xi;
  }
}

}  // namespace lrm::linalg::kernels
