// Raw pointer-level compute kernels behind the linalg layer.
//
// Everything in this namespace operates on row-major double buffers with an
// explicit leading dimension (`lda` = distance in doubles between the starts
// of consecutive rows), so both owning `Matrix` storage and strided
// `MatrixView`s lower to the same calls. Two GEMM implementations exist:
//
//  * GemmReference — the scalar i-k-j triple loop. Obviously correct; the
//                    validation oracle for kernels_test and the fallback for
//                    tiny shapes where packing overhead dominates.
//  * GemmBlocked   — cache-blocked (BLIS-style mc/kc/nc panels), register-
//                    tiled micro-kernel, optionally multithreaded by row
//                    strips. All four transpose variants share one packed
//                    micro-kernel.
//
// Gemm() dispatches between them from runtime configuration (see below) and
// problem size. The remaining level-3 kernels (Syrk, Trsm in level3.cc)
// follow the same pattern: a scalar reference flavor plus a blocked flavor
// whose bulk work lowers to Gemm().
//
// Threading runs on the shared task-parallel runtime in parallel.h
// (ParallelFor / TaskGroup over one persistent process-wide thread pool) —
// GEMM row strips, the symv strip reduction, QR panel columns, latrd
// trailing updates, and the Cuppen D&C subtree forks all draw workers from
// the same pool, capped by GemmThreads(). Task partitions depend only on
// problem shape, never on worker count, so every threaded kernel is
// bitwise deterministic across LRM_GEMM_THREADS settings. Dispatch knobs,
// resolved once on first use:
//
//   LRM_GEMM_THREADS   — worker thread cap (default: hardware concurrency);
//                        SetGemmThreads() overrides programmatically.
//   LRM_GEMM_KERNEL    — "auto" (default), "reference", or "blocked".
//   LRM_FACTOR_KERNEL  — "auto" / "reference" / "blocked" / "dc" /
//                        "partial", for the factorization tier built on
//                        these kernels (qr/cholesky/eigen_sym; "dc"
//                        additionally swaps the tridiagonal QL iteration for
//                        divide-and-conquer, "partial" forces the
//                        bisection + inverse-iteration subset eigensolver
//                        inside PartialSymmetricEigen).

#ifndef LRM_LINALG_KERNELS_KERNELS_H_
#define LRM_LINALG_KERNELS_KERNELS_H_

#include <cstddef>

namespace lrm::linalg::kernels {

using Index = std::ptrdiff_t;

/// Whether a GEMM operand is used as stored or transposed.
enum class Op { kNone, kTranspose };

/// Which side a triangular operand multiplies from (Trsm).
enum class Side { kLeft, kRight };

/// GEMM implementation selector (see Gemm() dispatch rules).
enum class GemmImpl { kAuto, kReference, kBlocked };

/// Factorization-tier implementation selector (blocked QR / Cholesky /
/// tridiagonalization in linalg/{qr,cholesky,eigen_sym}.cc). Mirrors
/// GemmImpl: kReference forces the scalar loops, kBlocked forces the
/// GEMM-rich blocked algorithms, kAuto picks by problem size. kDc
/// additionally selects the divide-and-conquer tridiagonal eigensolver
/// (linalg/eigen_dc.h) inside SymmetricEigen; QR and Cholesky treat it
/// like kBlocked (they have no QL-vs-D&C split). kPartial forces the
/// Sturm-bisection + inverse-iteration subset path inside
/// PartialSymmetricEigen even below its auto threshold; full-spectrum
/// solves and the other factorizations treat it like kDc.
enum class FactorImpl { kAuto, kReference, kBlocked, kDc, kPartial };

/// \brief Worker threads GEMM may use. Resolved once from LRM_GEMM_THREADS
/// (falling back to std::thread::hardware_concurrency), unless overridden.
int GemmThreads();

/// \brief Overrides GemmThreads(); `threads` <= 0 restores the environment
/// default. Thread-safe.
void SetGemmThreads(int threads);

/// \brief Active implementation choice. Resolved once from LRM_GEMM_KERNEL
/// unless overridden.
GemmImpl ActiveGemmImpl();

/// \brief Overrides ActiveGemmImpl() (tests/benchmarks); `kAuto` restores
/// the LRM_GEMM_KERNEL environment default. Thread-safe.
void SetGemmImpl(GemmImpl impl);

/// \brief Active factorization-tier choice. Resolved once from
/// LRM_FACTOR_KERNEL ("auto" | "reference" | "blocked" | "dc" | "partial")
/// unless overridden.
FactorImpl ActiveFactorImpl();

/// \brief Overrides ActiveFactorImpl() (tests/benchmarks); `kAuto` restores
/// the LRM_FACTOR_KERNEL environment default. Thread-safe.
void SetFactorImpl(FactorImpl impl);

/// \brief Resolves the factorization dispatch for one call site:
/// kReference → false, kBlocked/kDc → true, kAuto → `auto_blocked` (the
/// caller's own size heuristic). Keeps the multi-way switch in one place.
bool UseBlockedFactor(bool auto_blocked);

/// \brief C = alpha·op(A)·op(B) + beta·C with op(A) m×k, op(B) k×n, C m×n.
///
/// A is stored m×k when op_a == kNone and k×m when kTranspose (analogously
/// for B); leading dimensions refer to the stored layout. beta == 0
/// overwrites C without reading it (so C may start uninitialized). Dispatch:
/// the reference kernel for tiny products or when configured, otherwise the
/// blocked kernel, threaded when the flop count and GemmThreads() allow.
void Gemm(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
          const double* a, Index lda, const double* b, Index ldb, double beta,
          double* c, Index ldc);

/// \brief Scalar reference GEMM; same contract as Gemm(). The validation
/// oracle — keep it boring.
void GemmReference(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                   const double* a, Index lda, const double* b, Index ldb,
                   double beta, double* c, Index ldc);

/// \brief Cache-blocked GEMM; same contract as Gemm(). `threads` <= 1 runs
/// on the calling thread; results are bitwise independent of `threads`
/// (the row partition never splits a dot product).
void GemmBlocked(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                 const double* a, Index lda, const double* b, Index ldb,
                 double beta, double* c, Index ldc, int threads);

/// \brief Symmetric matrix–vector product y = alpha·A·x + beta·y where A is
/// n×n symmetric and ONLY its lower triangle (including the diagonal) is
/// read — the strict upper triangle may hold garbage. beta == 0 overwrites
/// y without reading it. Single-pass over the stored triangle with each
/// element applied to both sides (BLAS dsymv semantics, lower storage);
/// the tridiagonalization panel is the hot caller.
void SymvLower(Index n, double alpha, const double* a, Index lda,
               const double* x, double beta, double* y);

/// \brief Symmetric rank-k update, lower triangle only:
/// C = alpha·op(A)·op(A)ᵀ + beta·C with op(A) n×k and C n×n. Only the lower
/// triangle of C (including the diagonal) is read or written; the strict
/// upper triangle is never touched. beta == 0 overwrites without reading.
/// Dispatches like Gemm (reference for tiny updates or when configured,
/// otherwise tiled: GEMM off-diagonal blocks + scalar diagonal tiles).
void Syrk(Op op_a, Index n, Index k, double alpha, const double* a, Index lda,
          double beta, double* c, Index ldc);

/// \brief Scalar reference Syrk; same contract as Syrk().
void SyrkReference(Op op_a, Index n, Index k, double alpha, const double* a,
                   Index lda, double beta, double* c, Index ldc);

/// \brief Tiled Syrk; same contract as Syrk(). Off-diagonal blocks lower to
/// Gemm() (so they inherit its dispatch), diagonal tiles stay scalar.
void SyrkBlocked(Op op_a, Index n, Index k, double alpha, const double* a,
                 Index lda, double beta, double* c, Index ldc);

/// \brief Triangular solve with a lower-triangular matrix and multiple
/// right-hand sides, in place:
///
///   side == kLeft:   op(L)·X = alpha·B   (L is m×m)
///   side == kRight:  X·op(L) = alpha·B   (L is n×n)
///
/// B is m×n and is overwritten with X. Only the lower triangle of L's
/// storage is read (the strict upper triangle is ignored); the diagonal is
/// non-unit and must be nonzero. Dispatches like Gemm: block substitution
/// with GEMM trailing updates for large solves, scalar loops otherwise.
void Trsm(Side side, Op op_l, Index m, Index n, double alpha, const double* l,
          Index ldl, double* b, Index ldb);

/// \brief Scalar reference Trsm; same contract as Trsm().
void TrsmReference(Side side, Op op_l, Index m, Index n, double alpha,
                   const double* l, Index ldl, double* b, Index ldb);

/// \brief Blocked Trsm (diagonal-block reference solves + GEMM updates);
/// same contract as Trsm().
void TrsmBlocked(Side side, Op op_l, Index m, Index n, double alpha,
                 const double* l, Index ldl, double* b, Index ldb);

/// \brief y += alpha·x over n entries.
void Axpy(Index n, double alpha, const double* x, double* y);

/// \brief y = alpha·x + beta·y over n entries (fused scale-and-add).
void Axpby(Index n, double alpha, const double* x, double beta, double* y);

/// \brief x *= alpha over n entries.
void Scale(Index n, double alpha, double* x);

/// \brief Σᵢ xᵢ·yᵢ.
double Dot(Index n, const double* x, const double* y);

/// \brief Σᵢ xᵢ².
double SquaredNorm(Index n, const double* x);

/// \brief out[j] = Σᵢ |a(i,j)| for a row-major m×n matrix `a` with leading
/// dimension lda. `out` has n entries and is overwritten.
void ColumnAbsSums(Index m, Index n, const double* a, Index lda, double* out);

/// \brief out[j] = Σᵢ a(i,j)²; same layout contract as ColumnAbsSums.
void ColumnSquaredNorms(Index m, Index n, const double* a, Index lda,
                        double* out);

}  // namespace lrm::linalg::kernels

#endif  // LRM_LINALG_KERNELS_KERNELS_H_
