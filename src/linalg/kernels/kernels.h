// Raw pointer-level compute kernels behind the linalg layer.
//
// Everything in this namespace operates on row-major double buffers with an
// explicit leading dimension (`lda` = distance in doubles between the starts
// of consecutive rows), so both owning `Matrix` storage and strided
// `MatrixView`s lower to the same calls. Two GEMM implementations exist:
//
//  * GemmReference — the scalar i-k-j triple loop. Obviously correct; the
//                    validation oracle for kernels_test and the fallback for
//                    tiny shapes where packing overhead dominates.
//  * GemmBlocked   — cache-blocked (BLIS-style mc/kc/nc panels), register-
//                    tiled micro-kernel, optionally multithreaded by row
//                    strips. All four transpose variants share one packed
//                    micro-kernel.
//
// Gemm() dispatches between them from runtime configuration (see below) and
// problem size. Dispatch knobs, resolved once on first use:
//
//   LRM_GEMM_THREADS  — worker thread cap (default: hardware concurrency);
//                       SetGemmThreads() overrides programmatically.
//   LRM_GEMM_KERNEL   — "auto" (default), "reference", or "blocked".

#ifndef LRM_LINALG_KERNELS_KERNELS_H_
#define LRM_LINALG_KERNELS_KERNELS_H_

#include <cstddef>

namespace lrm::linalg::kernels {

using Index = std::ptrdiff_t;

/// Whether a GEMM operand is used as stored or transposed.
enum class Op { kNone, kTranspose };

/// GEMM implementation selector (see Gemm() dispatch rules).
enum class GemmImpl { kAuto, kReference, kBlocked };

/// \brief Worker threads GEMM may use. Resolved once from LRM_GEMM_THREADS
/// (falling back to std::thread::hardware_concurrency), unless overridden.
int GemmThreads();

/// \brief Overrides GemmThreads(); `threads` <= 0 restores the environment
/// default. Thread-safe.
void SetGemmThreads(int threads);

/// \brief Active implementation choice. Resolved once from LRM_GEMM_KERNEL
/// unless overridden.
GemmImpl ActiveGemmImpl();

/// \brief Overrides ActiveGemmImpl() (tests/benchmarks); `kAuto` restores
/// the LRM_GEMM_KERNEL environment default. Thread-safe.
void SetGemmImpl(GemmImpl impl);

/// \brief C = alpha·op(A)·op(B) + beta·C with op(A) m×k, op(B) k×n, C m×n.
///
/// A is stored m×k when op_a == kNone and k×m when kTranspose (analogously
/// for B); leading dimensions refer to the stored layout. beta == 0
/// overwrites C without reading it (so C may start uninitialized). Dispatch:
/// the reference kernel for tiny products or when configured, otherwise the
/// blocked kernel, threaded when the flop count and GemmThreads() allow.
void Gemm(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
          const double* a, Index lda, const double* b, Index ldb, double beta,
          double* c, Index ldc);

/// \brief Scalar reference GEMM; same contract as Gemm(). The validation
/// oracle — keep it boring.
void GemmReference(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                   const double* a, Index lda, const double* b, Index ldb,
                   double beta, double* c, Index ldc);

/// \brief Cache-blocked GEMM; same contract as Gemm(). `threads` <= 1 runs
/// on the calling thread; results are bitwise independent of `threads`
/// (the row partition never splits a dot product).
void GemmBlocked(Op op_a, Op op_b, Index m, Index n, Index k, double alpha,
                 const double* a, Index lda, const double* b, Index ldb,
                 double beta, double* c, Index ldc, int threads);

/// \brief y += alpha·x over n entries.
void Axpy(Index n, double alpha, const double* x, double* y);

/// \brief y = alpha·x + beta·y over n entries (fused scale-and-add).
void Axpby(Index n, double alpha, const double* x, double beta, double* y);

/// \brief x *= alpha over n entries.
void Scale(Index n, double alpha, double* x);

/// \brief Σᵢ xᵢ·yᵢ.
double Dot(Index n, const double* x, const double* y);

/// \brief Σᵢ xᵢ².
double SquaredNorm(Index n, const double* x);

/// \brief out[j] = Σᵢ |a(i,j)| for a row-major m×n matrix `a` with leading
/// dimension lda. `out` has n entries and is overwritten.
void ColumnAbsSums(Index m, Index n, const double* a, Index lda, double* out);

/// \brief out[j] = Σᵢ a(i,j)²; same layout contract as ColumnAbsSums.
void ColumnSquaredNorms(Index m, Index n, const double* a, Index lda,
                        double* out);

}  // namespace lrm::linalg::kernels

#endif  // LRM_LINALG_KERNELS_KERNELS_H_
