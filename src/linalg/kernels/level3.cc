// Level-3 kernels beyond GEMM: symmetric rank-k update (Syrk) and
// triangular solve with multiple right-hand sides (Trsm), both restricted to
// lower-triangular storage — the only form the blocked factorizations need.
//
// The blocked flavors do not re-implement cache blocking: they carve the
// problem into tiles whose bulk work is a plain GEMM and let Gemm() bring
// the packed micro-kernel (and its dispatch rules) along. Only the
// triangular tiles — a vanishing fraction of the flops — stay scalar.

#include <algorithm>

#include "base/check.h"
#include "linalg/kernels/kernels.h"

namespace lrm::linalg::kernels {

namespace {

// Tile edge for both Syrk and Trsm. Large enough that off-diagonal GEMM
// calls clear Gemm()'s own blocked-dispatch threshold once k is nontrivial.
constexpr Index kTileSize = 64;

// Entry (i, k) of op(A) for A stored with leading dimension lda.
inline double OpAt(const double* a, Index lda, Op op, Index i, Index k) {
  return op == Op::kNone ? a[i * lda + k] : a[k * lda + i];
}

// Row i of op(A) as a (pointer, stride) pair so dot products can stream.
inline const double* OpRow(const double* a, Index lda, Op op, Index i) {
  return op == Op::kNone ? a + i * lda : a + i;
}
inline Index OpRowStride(Index lda, Op op) { return op == Op::kNone ? 1 : lda; }

}  // namespace

void SyrkReference(Op op_a, Index n, Index k, double alpha, const double* a,
                   Index lda, double beta, double* c, Index ldc) {
  LRM_CHECK_GE(n, 0);
  LRM_CHECK_GE(k, 0);
  const Index stride = OpRowStride(lda, op_a);
  for (Index i = 0; i < n; ++i) {
    const double* row_i = OpRow(a, lda, op_a, i);
    double* c_row = c + i * ldc;
    for (Index j = 0; j <= i; ++j) {
      const double* row_j = OpRow(a, lda, op_a, j);
      double dot = 0.0;
      for (Index l = 0; l < k; ++l) {
        dot += row_i[l * stride] * row_j[l * stride];
      }
      const double prior = beta == 0.0 ? 0.0 : beta * c_row[j];
      c_row[j] = prior + alpha * dot;
    }
  }
}

void SyrkBlocked(Op op_a, Index n, Index k, double alpha, const double* a,
                 Index lda, double beta, double* c, Index ldc) {
  LRM_CHECK_GE(n, 0);
  LRM_CHECK_GE(k, 0);
  for (Index i0 = 0; i0 < n; i0 += kTileSize) {
    const Index ib = std::min(kTileSize, n - i0);
    // Strictly-left part of this block row: complete rectangles, one GEMM.
    if (i0 > 0) {
      const double* a_i = op_a == Op::kNone ? a + i0 * lda : a + i0;
      Gemm(op_a, op_a == Op::kNone ? Op::kTranspose : Op::kNone, ib, i0, k,
           alpha, a_i, lda, a, lda, beta, c + i0 * ldc, ldc);
    }
    // Triangular diagonal tile stays scalar.
    const double* a_d = op_a == Op::kNone ? a + i0 * lda : a + i0;
    SyrkReference(op_a, ib, k, alpha, a_d, lda, beta, c + i0 * ldc + i0, ldc);
  }
}

void Syrk(Op op_a, Index n, Index k, double alpha, const double* a, Index lda,
          double beta, double* c, Index ldc) {
  if (n == 0) return;
  const GemmImpl impl = ActiveGemmImpl();
  // Same small-shape rule as Gemm: below ~32³ multiply-adds the tiling and
  // GEMM packing overhead exceed the compute.
  constexpr Index kBlockedThreshold = 2 * 32 * 32 * 32;
  if (impl == GemmImpl::kReference ||
      (impl == GemmImpl::kAuto && n * n * k < kBlockedThreshold)) {
    SyrkReference(op_a, n, k, alpha, a, lda, beta, c, ldc);
    return;
  }
  SyrkBlocked(op_a, n, k, alpha, a, lda, beta, c, ldc);
}

void TrsmReference(Side side, Op op_l, Index m, Index n, double alpha,
                   const double* l, Index ldl, double* b, Index ldb) {
  LRM_CHECK_GE(m, 0);
  LRM_CHECK_GE(n, 0);
  if (m == 0 || n == 0) return;
  if (alpha != 1.0) {
    for (Index i = 0; i < m; ++i) {
      double* b_row = b + i * ldb;
      for (Index j = 0; j < n; ++j) b_row[j] *= alpha;
    }
  }
  if (side == Side::kLeft) {
    if (op_l == Op::kNone) {
      // L·X = B: forward substitution over rows, all columns at once.
      for (Index i = 0; i < m; ++i) {
        double* b_i = b + i * ldb;
        const double* l_row = l + i * ldl;
        for (Index r = 0; r < i; ++r) {
          const double l_ir = l_row[r];
          if (l_ir == 0.0) continue;
          const double* b_r = b + r * ldb;
          for (Index j = 0; j < n; ++j) b_i[j] -= l_ir * b_r[j];
        }
        const double inv = 1.0 / l_row[i];
        for (Index j = 0; j < n; ++j) b_i[j] *= inv;
      }
    } else {
      // Lᵀ·X = B: back substitution over rows.
      for (Index i = m - 1; i >= 0; --i) {
        double* b_i = b + i * ldb;
        for (Index r = i + 1; r < m; ++r) {
          const double l_ri = l[r * ldl + i];
          if (l_ri == 0.0) continue;
          const double* b_r = b + r * ldb;
          for (Index j = 0; j < n; ++j) b_i[j] -= l_ri * b_r[j];
        }
        const double inv = 1.0 / l[i * ldl + i];
        for (Index j = 0; j < n; ++j) b_i[j] *= inv;
      }
    }
    return;
  }
  // side == kRight: each row of B solves independently against the n×n L.
  for (Index i = 0; i < m; ++i) {
    double* x = b + i * ldb;
    if (op_l == Op::kNone) {
      // x·L = b: (x·L)_j = Σ_{r≥j} x_r·L(r, j) — back substitution.
      for (Index j = n - 1; j >= 0; --j) {
        double sum = x[j];
        for (Index r = j + 1; r < n; ++r) sum -= x[r] * l[r * ldl + j];
        x[j] = sum / l[j * ldl + j];
      }
    } else {
      // x·Lᵀ = b: (x·Lᵀ)_j = Σ_{r≤j} L(j, r)·x_r — forward substitution.
      for (Index j = 0; j < n; ++j) {
        double sum = x[j];
        const double* l_row = l + j * ldl;
        for (Index r = 0; r < j; ++r) sum -= x[r] * l_row[r];
        x[j] = sum / l_row[j];
      }
    }
  }
}

void TrsmBlocked(Side side, Op op_l, Index m, Index n, double alpha,
                 const double* l, Index ldl, double* b, Index ldb) {
  LRM_CHECK_GE(m, 0);
  LRM_CHECK_GE(n, 0);
  if (m == 0 || n == 0) return;
  // Fold alpha in once up front; every step below then runs at alpha == 1
  // (a per-step beta=alpha in the GEMM would rescale untouched rows again
  // on every iteration).
  if (alpha != 1.0) {
    for (Index i = 0; i < m; ++i) {
      double* b_row = b + i * ldb;
      for (Index j = 0; j < n; ++j) b_row[j] *= alpha;
    }
  }
  // The triangular dimension: block substitution runs along it, with each
  // diagonal block solved by the reference kernel and the remaining
  // right-hand-side panel updated by one GEMM per step.
  if (side == Side::kLeft) {
    if (op_l == Op::kNone) {
      for (Index i0 = 0; i0 < m; i0 += kTileSize) {
        const Index ib = std::min(kTileSize, m - i0);
        TrsmReference(side, op_l, ib, n, 1.0, l + i0 * ldl + i0, ldl,
                      b + i0 * ldb, ldb);
        const Index rest = m - i0 - ib;
        if (rest > 0) {
          // B(i0+ib:, :) −= L(i0+ib:, i0:i0+ib)·X_block.
          Gemm(Op::kNone, Op::kNone, rest, n, ib, -1.0,
               l + (i0 + ib) * ldl + i0, ldl, b + i0 * ldb, ldb, 1.0,
               b + (i0 + ib) * ldb, ldb);
        }
      }
    } else {
      for (Index i0 = ((m - 1) / kTileSize) * kTileSize; i0 >= 0;
           i0 -= kTileSize) {
        const Index ib = std::min(kTileSize, m - i0);
        TrsmReference(side, op_l, ib, n, 1.0, l + i0 * ldl + i0, ldl,
                      b + i0 * ldb, ldb);
        if (i0 > 0) {
          // B(0:i0, :) −= L(i0:i0+ib, 0:i0)ᵀ·X_block.
          Gemm(Op::kTranspose, Op::kNone, i0, n, ib, -1.0, l + i0 * ldl, ldl,
               b + i0 * ldb, ldb, 1.0, b, ldb);
        }
        if (i0 == 0) break;
      }
    }
    return;
  }
  if (op_l == Op::kNone) {
    for (Index j0 = ((n - 1) / kTileSize) * kTileSize; j0 >= 0;
         j0 -= kTileSize) {
      const Index jb = std::min(kTileSize, n - j0);
      TrsmReference(side, op_l, m, jb, 1.0, l + j0 * ldl + j0, ldl, b + j0,
                    ldb);
      if (j0 > 0) {
        // B(:, 0:j0) −= X_block·L(j0:j0+jb, 0:j0).
        Gemm(Op::kNone, Op::kNone, m, j0, jb, -1.0, b + j0, ldb,
             l + j0 * ldl, ldl, 1.0, b, ldb);
      }
      if (j0 == 0) break;
    }
    return;
  }
  for (Index j0 = 0; j0 < n; j0 += kTileSize) {
    const Index jb = std::min(kTileSize, n - j0);
    TrsmReference(side, op_l, m, jb, 1.0, l + j0 * ldl + j0, ldl, b + j0,
                  ldb);
    const Index rest = n - j0 - jb;
    if (rest > 0) {
      // B(:, j0+jb:) −= X_block·L(j0+jb:, j0:j0+jb)ᵀ.
      Gemm(Op::kNone, Op::kTranspose, m, rest, jb, -1.0, b + j0, ldb,
           l + (j0 + jb) * ldl + j0, ldl, 1.0, b + j0 + jb, ldb);
    }
  }
}

void Trsm(Side side, Op op_l, Index m, Index n, double alpha, const double* l,
          Index ldl, double* b, Index ldb) {
  if (m == 0 || n == 0) return;
  const Index tri = side == Side::kLeft ? m : n;
  const Index rhs = side == Side::kLeft ? n : m;
  const GemmImpl impl = ActiveGemmImpl();
  constexpr Index kBlockedThreshold = 2 * 32 * 32 * 32;
  // A single-tile triangle can't amortize any GEMM, but only kAuto may take
  // that shortcut — a forced kBlocked must exercise the blocked flavor,
  // exactly like Gemm and Syrk.
  if (impl == GemmImpl::kReference ||
      (impl == GemmImpl::kAuto &&
       (tri <= kTileSize || tri * tri * rhs < kBlockedThreshold))) {
    TrsmReference(side, op_l, m, n, alpha, l, ldl, b, ldb);
    return;
  }
  TrsmBlocked(side, op_l, m, n, alpha, l, ldl, b, ldb);
}

}  // namespace lrm::linalg::kernels
