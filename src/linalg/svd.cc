#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "base/string_util.h"
#include "linalg/eigen_sym.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"

namespace lrm::linalg {

namespace {

// Sorts the columns of (u, s, v) by descending singular value.
void SortSvdDescending(Matrix& u, Vector& s, Matrix& v) {
  const Index k = s.size();
  std::vector<Index> order(static_cast<std::size_t>(k));
  std::iota(order.begin(), order.end(), Index{0});
  std::sort(order.begin(), order.end(),
            [&s](Index a, Index b) { return s[a] > s[b]; });

  Matrix u_sorted(u.rows(), k);
  Matrix v_sorted(v.rows(), k);
  Vector s_sorted(k);
  for (Index dst = 0; dst < k; ++dst) {
    const Index src = order[static_cast<std::size_t>(dst)];
    s_sorted[dst] = s[src];
    for (Index i = 0; i < u.rows(); ++i) u_sorted(i, dst) = u(i, src);
    for (Index i = 0; i < v.rows(); ++i) v_sorted(i, dst) = v(i, src);
  }
  u = std::move(u_sorted);
  s = std::move(s_sorted);
  v = std::move(v_sorted);
}

// One-sided Jacobi on a tall (m >= n) matrix: orthogonalizes the columns of
// `work` by plane rotations, accumulating them into `v` (n×n).
Status JacobiOrthogonalize(Matrix& work, Matrix& v,
                           const SvdOptions& options) {
  const Index m = work.rows();
  const Index n = work.cols();
  v = Matrix::Identity(n);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    bool rotated = false;
    for (Index p = 0; p < n - 1; ++p) {
      for (Index q = p + 1; q < n; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (Index i = 0; i < m; ++i) {
          const double wp = work(i, p);
          const double wq = work(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        if (std::abs(gamma) <=
            options.tolerance * std::sqrt(alpha * beta) + 1e-300) {
          continue;
        }
        rotated = true;
        // Jacobi rotation zeroing the (p,q) inner product.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t =
            ((zeta >= 0.0) ? 1.0 : -1.0) /
            (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (Index i = 0; i < m; ++i) {
          const double wp = work(i, p);
          const double wq = work(i, q);
          work(i, p) = c * wp - s * wq;
          work(i, q) = s * wp + c * wq;
        }
        for (Index i = 0; i < n; ++i) {
          const double vp = v(i, p);
          const double vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) return Status::OK();
  }
  return Status::NotConverged(StrFormat(
      "JacobiSvd: not converged after %d sweeps", options.max_sweeps));
}

// Converts an ascending symmetric eigen factorization of the Gram matrix
// (AAᵀ when use_aat, AᵀA otherwise) into descending singular triplets of A
// and recovers the other factor as Aᵀ·U·Σ⁻¹ (resp. A·V·Σ⁻¹). `eig` may hold
// the full spectrum or any top-k suffix — the recovery is per-column.
SvdResult RecoverSvdFromGramEigen(const Matrix& a, bool use_aat,
                                  const SymmetricEigenResult& eig) {
  const Index p = eig.eigenvectors.rows();
  const Index k = eig.eigenvalues.size();
  // Eigenvalues ascending; convert to descending singular values.
  Vector s(k);
  Matrix w(p, k);  // eigenvectors reordered descending
  for (Index j = 0; j < k; ++j) {
    const Index src = k - 1 - j;
    const double lambda = std::max(eig.eigenvalues[src], 0.0);
    s[j] = std::sqrt(lambda);
    for (Index i = 0; i < p; ++i) w(i, j) = eig.eigenvectors(i, src);
  }

  // Recover the other factor: if W holds eigenvectors of AAᵀ (i.e. U), then
  // V = Aᵀ U Σ⁻¹; symmetric in the other case.
  const double cutoff =
      (k > 0 ? s[0] : 0.0) * std::numeric_limits<double>::epsilon() *
      static_cast<double>(std::max(a.rows(), a.cols()));
  if (use_aat) {
    Matrix u = std::move(w);            // m×k
    Matrix v = MultiplyAtB(a, u);       // n×k = Aᵀ·U
    for (Index j = 0; j < k; ++j) {
      const double inv = s[j] > cutoff ? 1.0 / s[j] : 0.0;
      for (Index i = 0; i < v.rows(); ++i) v(i, j) *= inv;
    }
    return SvdResult{std::move(u), std::move(s), std::move(v)};
  }
  Matrix v = std::move(w);         // n×k
  Matrix u = a * v;                // m×k = A·V
  for (Index j = 0; j < k; ++j) {
    const double inv = s[j] > cutoff ? 1.0 / s[j] : 0.0;
    for (Index i = 0; i < u.rows(); ++i) u(i, j) *= inv;
  }
  return SvdResult{std::move(u), std::move(s), std::move(v)};
}

}  // namespace

Matrix SvdResult::Reconstruct() const {
  Matrix scaled = u;  // scale columns by singular values
  for (Index j = 0; j < singular_values.size(); ++j) {
    for (Index i = 0; i < u.rows(); ++i) {
      scaled(i, j) *= singular_values[j];
    }
  }
  return MultiplyABt(scaled, v);
}

StatusOr<SvdResult> JacobiSvd(const Matrix& a, const SvdOptions& options) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("JacobiSvd: empty matrix");
  }
  const bool transposed = a.rows() < a.cols();
  Matrix work = transposed ? Transpose(a) : a;
  const Index m = work.rows();
  const Index n = work.cols();

  Matrix v;
  Status status = JacobiOrthogonalize(work, v, options);
  if (!status.ok() && status.code() != StatusCode::kNotConverged) {
    return status;
  }

  // Column norms are the singular values; normalized columns form U.
  Vector s(n);
  Matrix u(m, n);
  for (Index j = 0; j < n; ++j) {
    double norm = 0.0;
    for (Index i = 0; i < m; ++i) norm += work(i, j) * work(i, j);
    norm = std::sqrt(norm);
    s[j] = norm;
    if (norm > 0.0) {
      const double inv = 1.0 / norm;
      for (Index i = 0; i < m; ++i) u(i, j) = work(i, j) * inv;
    }
  }
  SortSvdDescending(u, s, v);

  if (transposed) {
    return SvdResult{std::move(v), std::move(s), std::move(u)};
  }
  return SvdResult{std::move(u), std::move(s), std::move(v)};
}

StatusOr<SvdResult> GramSvd(const Matrix& a) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("GramSvd: empty matrix");
  }
  const bool use_aat = a.rows() <= a.cols();
  const Matrix gram = use_aat ? GramAAt(a) : GramAtA(a);
  LRM_ASSIGN_OR_RETURN(SymmetricEigenResult eig, SymmetricEigen(gram));
  return RecoverSvdFromGramEigen(a, use_aat, eig);
}

StatusOr<SvdResult> PartialGramSvd(const Matrix& a, Index k) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("PartialGramSvd: empty matrix");
  }
  if (k <= 0) {
    return Status::InvalidArgument("PartialGramSvd: k must be > 0");
  }
  const bool use_aat = a.rows() <= a.cols();
  const Matrix gram = use_aat ? GramAAt(a) : GramAtA(a);
  LRM_ASSIGN_OR_RETURN(SymmetricEigenResult eig,
                       PartialSymmetricEigen(gram, k));
  return RecoverSvdFromGramEigen(a, use_aat, eig);
}

StatusOr<SvdResult> PartialGramSvdWithRank(const Matrix& a, double rel_tol,
                                           double growth, Index* rank) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("PartialGramSvdWithRank: empty matrix");
  }
  const bool use_aat = a.rows() <= a.cols();
  const Matrix gram = use_aat ? GramAAt(a) : GramAtA(a);
  // σ > tol·σ₁ on A is λ > tol²·λ_max on the Gram matrix.
  const double tol = GramRankTolerance(rel_tol);
  Index count = 0;
  LRM_ASSIGN_OR_RETURN(
      SymmetricEigenResult eig,
      PartialSymmetricEigenAboveCutoff(gram, tol * tol, growth, &count));
  if (rank != nullptr) *rank = count;
  return RecoverSvdFromGramEigen(a, use_aat, eig);
}

StatusOr<SvdResult> RandomizedSvd(const Matrix& a, Index target_rank,
                                  const RandomizedSvdOptions& options,
                                  RandomizedSvdWorkspace* workspace) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("RandomizedSvd: empty matrix");
  }
  if (target_rank <= 0) {
    return Status::InvalidArgument("RandomizedSvd: target_rank must be > 0");
  }
  const Index max_rank = std::min(a.rows(), a.cols());
  const Index sketch =
      std::min(max_rank, target_rank + std::max<Index>(options.oversample, 0));

  RandomizedSvdWorkspace local;
  RandomizedSvdWorkspace& ws = workspace != nullptr ? *workspace : local;

  rng::Engine engine(options.seed);
  RandomGaussianMatrixInto(engine, a.cols(), sketch, &ws.omega);
  return RandomizedSvdWithTestMatrix(a, target_rank, ws.omega, options,
                                     &ws);
}

StatusOr<SvdResult> RandomizedSvdWithTestMatrix(
    const Matrix& a, Index target_rank, const Matrix& omega,
    const RandomizedSvdOptions& options, RandomizedSvdWorkspace* workspace) {
  if (a.rows() == 0 || a.cols() == 0) {
    return Status::InvalidArgument("RandomizedSvd: empty matrix");
  }
  if (target_rank <= 0) {
    return Status::InvalidArgument("RandomizedSvd: target_rank must be > 0");
  }
  if (omega.rows() != a.cols()) {
    return Status::InvalidArgument(
        "RandomizedSvd: test matrix must have a.cols() rows");
  }
  if (omega.cols() <= 0 || omega.cols() > std::min(a.rows(), a.cols())) {
    return Status::InvalidArgument(
        "RandomizedSvd: test matrix width must be in [1, min(m, n)]");
  }

  RandomizedSvdWorkspace local;
  RandomizedSvdWorkspace& ws = workspace != nullptr ? *workspace : local;

  // Range finder: Y = A·Ω, then orthonormalize. Every product below writes
  // into a workspace buffer and every orthonormalization reuses the shared
  // QR scratch, so passes after the first allocate nothing. (`omega` may
  // alias ws.omega — it is only read, never resized, in this function.)
  MultiplyInto(a, omega, &ws.y);
  LRM_RETURN_IF_ERROR(OrthonormalizeColumnsInto(ws.y, &ws.q, &ws.qr));

  // Power iterations sharpen the spectrum: Q ← orth(A·orth(Aᵀ·Q)).
  for (int it = 0; it < options.power_iterations; ++it) {
    MultiplyAtBInto(a, ws.q, &ws.z);
    LRM_RETURN_IF_ERROR(OrthonormalizeColumnsInto(ws.z, &ws.z, &ws.qr));
    MultiplyInto(a, ws.z, &ws.y);
    LRM_RETURN_IF_ERROR(OrthonormalizeColumnsInto(ws.y, &ws.q, &ws.qr));
  }

  // Project and decompose the small matrix B = Qᵀ·A (sketch×n).
  MultiplyAtBInto(ws.q, a, &ws.b);
  LRM_ASSIGN_OR_RETURN(SvdResult small, JacobiSvd(ws.b));

  MultiplyInto(ws.q, small.u, &ws.u_full);  // m×sketch
  const Index k = std::min(target_rank, small.singular_values.size());
  SvdResult result;
  result.u = SliceCols(ws.u_full, 0, k);
  result.v = SliceCols(small.v, 0, k);
  result.singular_values = Vector(k);
  for (Index i = 0; i < k; ++i) {
    result.singular_values[i] = small.singular_values[i];
  }
  return result;
}

StatusOr<SvdResult> Svd(const Matrix& a) {
  if (std::min(a.rows(), a.cols()) <= kSvdJacobiDispatchLimit) {
    return JacobiSvd(a);
  }
  return GramSvd(a);
}

Index NumericalRank(const SvdResult& svd, double rel_tol) {
  if (svd.singular_values.size() == 0) return 0;
  const double cutoff = svd.singular_values[0] * rel_tol;
  Index rank = 0;
  for (Index i = 0; i < svd.singular_values.size(); ++i) {
    if (svd.singular_values[i] > cutoff) ++rank;
  }
  return rank;
}

StatusOr<Index> EstimateRank(const Matrix& a, double rel_tol) {
  if (std::min(a.rows(), a.cols()) <= kSvdJacobiDispatchLimit) {
    LRM_ASSIGN_OR_RETURN(SvdResult svd, JacobiSvd(a));
    return NumericalRank(svd, rel_tol);
  }
  // At size, count instead of decompose: σ > tol·σ₁ on A is λ > tol²·λ_max
  // on the Gram matrix, and a Sturm count answers that with one
  // tridiagonalization and two bisections — no eigenvectors at all. The
  // tolerance floor compensates the squared condition number (singular
  // values below ~√ε·σ₁ are numerical noise; tighter cutoffs would
  // overcount).
  const double tol = GramRankTolerance(rel_tol);
  const bool use_aat = a.rows() <= a.cols();
  const Matrix gram = use_aat ? GramAAt(a) : GramAtA(a);
  return SymmetricEigenCountAbove(gram, tol * tol);
}

Matrix PseudoInverseFromSvd(const SvdResult& svd, double rel_tol) {
  const Index k = svd.singular_values.size();
  const double cutoff =
      (k > 0 ? svd.singular_values[0] : 0.0) * rel_tol;
  // A⁺ = V·diag(1/σ)·Uᵀ.
  Matrix v_scaled = svd.v;
  for (Index j = 0; j < k; ++j) {
    const double inv =
        svd.singular_values[j] > cutoff ? 1.0 / svd.singular_values[j] : 0.0;
    for (Index i = 0; i < v_scaled.rows(); ++i) v_scaled(i, j) *= inv;
  }
  return MultiplyABt(v_scaled, svd.u);
}

StatusOr<Matrix> PseudoInverse(const Matrix& a, double rel_tol) {
  LRM_ASSIGN_OR_RETURN(SvdResult svd, Svd(a));
  return PseudoInverseFromSvd(svd, rel_tol);
}

}  // namespace lrm::linalg
