// Partial spectrum of a symmetric tridiagonal matrix: the top-k eigenpairs
// without touching the rest of the spectrum.
//
// Eigenvalues come from bisection on Sturm-sequence counts (the LAPACK
// dstebz recipe): the count of eigenvalues below x is the number of negative
// pivots in the LDLᵀ recurrence of T − x·I, so each eigenvalue is located
// independently to full precision in O(n·log(range/ulp)) — and the k
// bisections are embarrassingly parallel. Eigenvectors come from inverse
// iteration on (T − λ·I) with partial-pivoting tridiagonal LU (the dstein
// recipe), reorthogonalized inside clusters of nearby eigenvalues so
// repeated/close eigenvalues still yield an orthonormal basis. Total cost is
// O(n·k) plus the bisections — the O(n²·k) term of a partial *dense* solve
// lives entirely in the tridiagonalization and back-transformation
// (eigen_sym.cc), never here.
//
// Determinism: bisection tasks and per-cluster inverse iterations run on
// kernels::ParallelFor with one task per eigenvalue/cluster and disjoint
// outputs, and inverse-iteration start vectors are derived from a SplitMix64
// stream keyed by the output column — results are bitwise identical across
// LRM_GEMM_THREADS settings.

#ifndef LRM_LINALG_TRIDIAG_PARTIAL_H_
#define LRM_LINALG_TRIDIAG_PARTIAL_H_

#include <cstddef>
#include <vector>

#include "base/status_or.h"
#include "linalg/matrix.h"

namespace lrm::linalg::internal {

using Index = std::ptrdiff_t;

/// \brief Number of eigenvalues of the symmetric tridiagonal (d, e) that are
/// strictly below `x` (up to the pivot safeguard). `d` has n entries, `e`
/// follows the eigen_sym convention: e[i] couples rows i-1 and i, e[0] is
/// ignored. O(n).
Index TridiagCountBelow(Index n, const double* d, const double* e, double x);

/// \brief Largest eigenvalue of the symmetric tridiagonal (d, e), located by
/// bisection inside the Gershgorin bound. Same conventions as
/// TridiagCountBelow.
double TridiagMaxEigenvalue(Index n, const double* d, const double* e);

/// \brief Reusable scratch for TridiagTopKEigen (candidate eigenvalue
/// buffers, block/cluster bookkeeping). Value-semantic plain vectors; reuse
/// across solves keeps the candidate phase allocation-free at steady state.
struct TridiagPartialWorkspace {
  std::vector<double> cand_value;   // bisected candidate eigenvalues
  std::vector<Index> cand_block;    // candidate → block id
  std::vector<Index> cand_index;    // candidate → index within its block
  std::vector<Index> order;         // candidate sort permutation
  std::vector<Index> selected;      // global top-k candidate ids, ascending
  std::vector<double> solve_lambda; // cluster-adjusted shifts, per column
};

/// \brief Computes the k largest eigenpairs of the symmetric tridiagonal
/// (d, e): `eigenvalues` receives λ_{n-k} ≤ … ≤ λ_{n-1} (ascending, aligned
/// with SymmetricEigen's tail) and `z` the corresponding orthonormal
/// eigenvectors as its k columns (z is resized to n×k). Requires
/// 1 ≤ k ≤ n. The matrix is split into independent blocks where the
/// coupling |e[i]| is negligible; eigenvectors of distinct blocks have
/// disjoint support and are exactly orthogonal.
Status TridiagTopKEigen(Index n, const double* d, const double* e, Index k,
                        Vector* eigenvalues, Matrix* z,
                        TridiagPartialWorkspace* ws);

}  // namespace lrm::linalg::internal

#endif  // LRM_LINALG_TRIDIAG_PARTIAL_H_
