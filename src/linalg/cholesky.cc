#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "base/string_util.h"
#include "linalg/kernels/kernels.h"

namespace lrm::linalg {

namespace {

namespace kernels = lrm::linalg::kernels;

// Block edge of the right-looking factorization; matches the level-3
// kernels' tile size so the Trsm/Syrk calls land on full tiles.
constexpr Index kCholeskyBlock = 64;

bool UseBlockedCholesky(Index n) {
  return kernels::UseBlockedFactor(n >= 2 * kCholeskyBlock);
}

// In-place scalar factorization of the nb×nb diagonal block at l[0] (leading
// dimension ld), whose entries already carry all updates from earlier block
// columns. `pivot_base` only labels the error message.
Status FactorDiagonalBlock(double* l, Index ld, Index nb, Index pivot_base) {
  for (Index c = 0; c < nb; ++c) {
    double* row_c = l + c * ld;
    double diag = row_c[c];
    for (Index t = 0; t < c; ++t) diag -= row_c[t] * row_c[t];
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(StrFormat(
          "CholeskyFactor: matrix not positive definite at pivot %td "
          "(value %g)",
          pivot_base + c, diag));
    }
    const double l_cc = std::sqrt(diag);
    row_c[c] = l_cc;
    const double inv = 1.0 / l_cc;
    for (Index r = c + 1; r < nb; ++r) {
      double* row_r = l + r * ld;
      double sum = row_r[c];
      for (Index t = 0; t < c; ++t) sum -= row_r[t] * row_c[t];
      row_r[c] = sum * inv;
    }
  }
  return Status::OK();
}

// Right-looking blocked factorization: diagonal block scalar, panel below
// via Trsm, trailing matrix via Syrk — all three level-3-rich.
StatusOr<Matrix> BlockedCholeskyFactor(const Matrix& a) {
  const Index n = a.rows();
  Matrix l = a;
  for (Index j = 0; j < n; j += kCholeskyBlock) {
    const Index jb = std::min(kCholeskyBlock, n - j);
    double* diag = l.data() + j * n + j;
    LRM_RETURN_IF_ERROR(FactorDiagonalBlock(diag, n, jb, j));
    const Index rest = n - j - jb;
    if (rest > 0) {
      double* panel = l.data() + (j + jb) * n + j;
      // L21 = A21·L11⁻ᵀ.
      kernels::Trsm(kernels::Side::kRight, kernels::Op::kTranspose, rest, jb,
                    1.0, diag, n, panel, n);
      // A22 (lower) −= L21·L21ᵀ.
      kernels::Syrk(kernels::Op::kNone, rest, jb, -1.0, panel, n, 1.0,
                    l.data() + (j + jb) * n + (j + jb), n);
    }
  }
  // The factorization never touched the strict upper triangle; clear the
  // copied-in A values so the result matches the scalar path's layout.
  for (Index i = 0; i < n; ++i) {
    double* row = l.RowPtr(i);
    for (Index j = i + 1; j < n; ++j) row[j] = 0.0;
  }
  return l;
}

}  // namespace

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("CholeskyFactor: matrix is %td x %td, expected square",
                  a.rows(), a.cols()));
  }
  const Index n = a.rows();
  if (UseBlockedCholesky(n)) {
    return BlockedCholeskyFactor(a);
  }
  // Scalar path: one whole-matrix "diagonal block" — same in-place kernel
  // the blocked path uses per panel, so the pivot logic exists once.
  Matrix l = a;
  LRM_RETURN_IF_ERROR(FactorDiagonalBlock(l.data(), n, n, 0));
  for (Index i = 0; i < n; ++i) {
    double* row = l.RowPtr(i);
    for (Index j = i + 1; j < n; ++j) row[j] = 0.0;
  }
  return l;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  const Index n = l.rows();
  LRM_CHECK_EQ(l.cols(), n);
  LRM_CHECK_EQ(b.size(), n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = l.RowPtr(i);
    for (Index k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  // Back substitution: Lᵀ x = y.
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (Index k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b) {
  const Index n = l.rows();
  LRM_CHECK_EQ(l.cols(), n);
  LRM_CHECK_EQ(b.rows(), n);
  const Index ncols = b.cols();
  // L·Y = B then Lᵀ·X = Y, both in place on one copy. The Trsm kernel
  // block-substitutes with GEMM trailing updates for large solves and falls
  // back to the streaming scalar loops otherwise.
  Matrix x = b;
  kernels::Trsm(kernels::Side::kLeft, kernels::Op::kNone, n, ncols, 1.0,
                l.data(), n, x.data(), ncols);
  kernels::Trsm(kernels::Side::kLeft, kernels::Op::kTranspose, n, ncols, 1.0,
                l.data(), n, x.data(), ncols);
  return x;
}

StatusOr<Matrix> SolveSpd(const Matrix& a, const Matrix& b) {
  LRM_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskySolveMatrix(l, b);
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  LRM_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskySolve(l, b);
}

StatusOr<Matrix> SpdInverse(const Matrix& a) {
  return SolveSpd(a, Matrix::Identity(a.rows()));
}

}  // namespace lrm::linalg
