#include "linalg/cholesky.h"

#include <cmath>

#include "base/string_util.h"

namespace lrm::linalg {

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument(
        StrFormat("CholeskyFactor: matrix is %td x %td, expected square",
                  a.rows(), a.cols()));
  }
  const Index n = a.rows();
  Matrix l(n, n);
  for (Index j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (Index k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) {
      return Status::NumericalError(StrFormat(
          "CholeskyFactor: matrix not positive definite at pivot %td "
          "(value %g)",
          j, diag));
    }
    const double l_jj = std::sqrt(diag);
    l(j, j) = l_jj;
    const double inv_l_jj = 1.0 / l_jj;
    for (Index i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (Index k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      l(i, j) = sum * inv_l_jj;
    }
  }
  return l;
}

Vector CholeskySolve(const Matrix& l, const Vector& b) {
  const Index n = l.rows();
  LRM_CHECK_EQ(l.cols(), n);
  LRM_CHECK_EQ(b.size(), n);
  // Forward substitution: L y = b.
  Vector y(n);
  for (Index i = 0; i < n; ++i) {
    double sum = b[i];
    const double* row = l.RowPtr(i);
    for (Index k = 0; k < i; ++k) sum -= row[k] * y[k];
    y[i] = sum / row[i];
  }
  // Back substitution: Lᵀ x = y.
  Vector x(n);
  for (Index i = n - 1; i >= 0; --i) {
    double sum = y[i];
    for (Index k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

Matrix CholeskySolveMatrix(const Matrix& l, const Matrix& b) {
  const Index n = l.rows();
  LRM_CHECK_EQ(l.cols(), n);
  LRM_CHECK_EQ(b.rows(), n);
  const Index ncols = b.cols();
  // Solve all right-hand sides together, iterating row-wise so that the
  // inner loops stream contiguously over the row-major storage.
  Matrix y(n, ncols);
  for (Index i = 0; i < n; ++i) {
    double* y_i = y.RowPtr(i);
    std::copy(b.RowPtr(i), b.RowPtr(i) + ncols, y_i);
    const double* l_row = l.RowPtr(i);
    for (Index k = 0; k < i; ++k) {
      const double l_ik = l_row[k];
      if (l_ik == 0.0) continue;
      const double* y_k = y.RowPtr(k);
      for (Index j = 0; j < ncols; ++j) y_i[j] -= l_ik * y_k[j];
    }
    const double inv = 1.0 / l_row[i];
    for (Index j = 0; j < ncols; ++j) y_i[j] *= inv;
  }
  Matrix x(n, ncols);
  for (Index i = n - 1; i >= 0; --i) {
    double* x_i = x.RowPtr(i);
    std::copy(y.RowPtr(i), y.RowPtr(i) + ncols, x_i);
    for (Index k = i + 1; k < n; ++k) {
      const double l_ki = l(k, i);
      if (l_ki == 0.0) continue;
      const double* x_k = x.RowPtr(k);
      for (Index j = 0; j < ncols; ++j) x_i[j] -= l_ki * x_k[j];
    }
    const double inv = 1.0 / l(i, i);
    for (Index j = 0; j < ncols; ++j) x_i[j] *= inv;
  }
  return x;
}

StatusOr<Matrix> SolveSpd(const Matrix& a, const Matrix& b) {
  LRM_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskySolveMatrix(l, b);
}

StatusOr<Vector> SolveSpd(const Matrix& a, const Vector& b) {
  LRM_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(a));
  return CholeskySolve(l, b);
}

StatusOr<Matrix> SpdInverse(const Matrix& a) {
  return SolveSpd(a, Matrix::Identity(a.rows()));
}

}  // namespace lrm::linalg
