#include "linalg/matrix_view.h"

#include "linalg/kernels/kernels.h"

namespace lrm::linalg {

namespace {

// Resizes *c to rows×cols when beta == 0 (fresh output); with beta != 0 the
// existing contents participate, so the shape must already agree.
void PrepareGemmOutput(Index rows, Index cols, double beta, Matrix* c) {
  if (beta == 0.0) {
    if (c->rows() != rows || c->cols() != cols) c->Resize(rows, cols);
  } else {
    LRM_CHECK_EQ(c->rows(), rows);
    LRM_CHECK_EQ(c->cols(), cols);
  }
}

}  // namespace

Matrix ConstMatrixView::ToMatrix() const {
  Matrix result;
  CopyInto(*this, &result);
  return result;
}

bool ViewsOverlap(ConstMatrixView a, ConstMatrixView b) {
  if (a.empty() || b.empty()) return false;
  const double* a_end = a.RowPtr(a.rows() - 1) + a.cols();
  const double* b_end = b.RowPtr(b.rows() - 1) + b.cols();
  return a.data() < b_end && b.data() < a_end;
}

void GemmInto(double alpha, ConstMatrixView a, bool transpose_a,
              ConstMatrixView b, bool transpose_b, double beta, Matrix* c) {
  LRM_CHECK(c != nullptr);
  const Index m = transpose_a ? a.cols() : a.rows();
  const Index k = transpose_a ? a.rows() : a.cols();
  const Index k_b = transpose_b ? b.cols() : b.rows();
  const Index n = transpose_b ? b.rows() : b.cols();
  LRM_CHECK_EQ(k, k_b);
  // Writing C in place while A or B still feeds the product would corrupt
  // the result; require distinct buffers.
  LRM_CHECK(!ViewsOverlap(*c, a));
  LRM_CHECK(!ViewsOverlap(*c, b));
  PrepareGemmOutput(m, n, beta, c);
  kernels::Gemm(transpose_a ? kernels::Op::kTranspose : kernels::Op::kNone,
                transpose_b ? kernels::Op::kTranspose : kernels::Op::kNone, m,
                n, k, alpha, a.data(), a.stride(), b.data(), b.stride(), beta,
                c->data(), c->cols());
}

void MultiplyInto(ConstMatrixView a, ConstMatrixView b, Matrix* c) {
  GemmInto(1.0, a, false, b, false, 0.0, c);
}

void MultiplyAtBInto(ConstMatrixView a, ConstMatrixView b, Matrix* c) {
  GemmInto(1.0, a, true, b, false, 0.0, c);
}

void MultiplyABtInto(ConstMatrixView a, ConstMatrixView b, Matrix* c) {
  GemmInto(1.0, a, false, b, true, 0.0, c);
}

void MultiplyAtBtInto(ConstMatrixView a, ConstMatrixView b, Matrix* c) {
  GemmInto(1.0, a, true, b, true, 0.0, c);
}

void GramAtAInto(ConstMatrixView a, Matrix* c) {
  GemmInto(1.0, a, true, a, false, 0.0, c);
}

void GramAAtInto(ConstMatrixView a, Matrix* c) {
  GemmInto(1.0, a, false, a, true, 0.0, c);
}

void TransposeInto(ConstMatrixView a, Matrix* c) {
  LRM_CHECK(c != nullptr);
  LRM_CHECK(!ViewsOverlap(*c, a));
  if (c->rows() != a.cols() || c->cols() != a.rows()) {
    c->Resize(a.cols(), a.rows());
  }
  for (Index i = 0; i < a.rows(); ++i) {
    const double* row = a.RowPtr(i);
    for (Index j = 0; j < a.cols(); ++j) (*c)(j, i) = row[j];
  }
}

void CopyInto(ConstMatrixView a, Matrix* c) {
  LRM_CHECK(c != nullptr);
  LRM_CHECK(!ViewsOverlap(*c, a));
  if (c->rows() != a.rows() || c->cols() != a.cols()) {
    c->Resize(a.rows(), a.cols());
  }
  for (Index i = 0; i < a.rows(); ++i) {
    const double* src = a.RowPtr(i);
    double* dst = c->RowPtr(i);
    for (Index j = 0; j < a.cols(); ++j) dst[j] = src[j];
  }
}

void MultiplyInto(ConstMatrixView a, const Vector& x, Vector* y) {
  LRM_CHECK(y != nullptr);
  LRM_CHECK_EQ(a.cols(), x.size());
  LRM_CHECK(y->data() != x.data());
  if (y->size() != a.rows()) *y = Vector(a.rows());
  for (Index i = 0; i < a.rows(); ++i) {
    (*y)[i] = kernels::Dot(a.cols(), a.RowPtr(i), x.data());
  }
}

void MultiplyAtXInto(ConstMatrixView a, const Vector& x, Vector* y) {
  LRM_CHECK(y != nullptr);
  LRM_CHECK_EQ(a.rows(), x.size());
  LRM_CHECK(y->data() != x.data());
  if (y->size() != a.cols()) *y = Vector(a.cols());
  y->Fill(0.0);
  for (Index i = 0; i < a.rows(); ++i) {
    const double x_i = x[i];
    if (x_i == 0.0) continue;
    kernels::Axpy(a.cols(), x_i, a.RowPtr(i), y->data());
  }
}

}  // namespace lrm::linalg
