// Implicit-shift QL iteration on a symmetric tridiagonal matrix — the
// shared tridiagonal backend of the eigen tier. SymmetricEigen's reference
// and blocked paths run it on the full reduced matrix; the divide-and-
// conquer solver (linalg/eigen_dc.h) runs it on the leaf blocks of its
// merge tree and keeps it as the oracle the D&C results are tested against.

#ifndef LRM_LINALG_TRIDIAG_QL_H_
#define LRM_LINALG_TRIDIAG_QL_H_

#include "linalg/matrix.h"

namespace lrm::linalg::internal {

/// \brief Implicit-shift QL iteration on the tridiagonal (d, e); both point
/// at vt.rows() entries, d holding the diagonal and e[1:] the subdiagonal
/// (e[0] is ignored, e is destroyed). The rotations are accumulated into
/// the ROWS of `vt` (row i of vt ends up as eigenvector i, so callers pass
/// the transposed starting basis and transpose back). Port of EISPACK tql2,
/// re-oriented so the innermost rotation loop streams two contiguous rows
/// instead of striding down two columns — the accumulation is the dominant
/// O(n³) term of a full eigensolve and runs several times faster on
/// contiguous memory. On return d holds the eigenvalues ascending and vt's
/// rows are permuted along. Returns false on non-convergence.
bool TridiagQlRows(Matrix& vt, double* d, double* e);

}  // namespace lrm::linalg::internal

#endif  // LRM_LINALG_TRIDIAG_QL_H_
