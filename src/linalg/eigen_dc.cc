#include "linalg/eigen_dc.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "base/check.h"
#include "base/string_util.h"
#include "linalg/kernels/kernels.h"
#include "linalg/kernels/parallel.h"
#include "linalg/tridiag_ql.h"

namespace lrm::linalg {

namespace {

namespace kernels = lrm::linalg::kernels;

// Subproblems at or below this size are solved by the QL iteration directly;
// the merge machinery only pays off once its GEMM outweighs rotation work
// (LAPACK draws the same line at SMLSIZ = 25).
constexpr Index kDcLeafSize = 32;

// Spans at least this large run their two children concurrently (left on a
// shared-pool worker, right on the calling thread) when LRM_GEMM_THREADS
// allows. Below it the fork bookkeeping outweighs the subtree.
constexpr Index kDcParallelMin = 128;

// Merge-phase loops hand work to the shared runtime in chunks of this many
// roots/columns — a shape-only partition, so the split never depends on
// the thread count.
constexpr Index kDcChunk = 64;

// Column support classes for the merge GEMM split (LAPACK dlaed2's COLTYP):
// a column inherited from the first half has support in rows [lo, mid) only,
// one from the second half in [mid, hi); a deflation rotation across the
// split makes both columns dense. The two merge GEMMs below skip the
// structurally-zero half of the top/bottom classes.
enum ColType { kColTop = 0, kColDense = 1, kColBottom = 2 };

// The full problem threaded through the recursion: d/e are the caller's
// tridiagonal buffers (indexed globally), v the n×n eigenvector matrix kept
// block-diagonal per recursion span. The merge scratch travels separately —
// concurrent subtrees each carry their own workspace.
struct DcProblem {
  double* d;
  double* e;
  Matrix* v;
};

// ---------------------------------------------------------------------------
// Secular equation
// ---------------------------------------------------------------------------

// Solves 1 + rho·Σᵢ zᵢ²/(dl[i] − λ) = 0 for its j-th root (ascending).
// Interlacing puts root j strictly inside (dl[j], dl[j+1]), and the last one
// inside (dl[kk-1], dl[kk-1] + rho·‖z‖²]. The iteration works in the
// coordinate mu = λ − dl[origin], with origin the nearer bracket end, so
// dl[i] − λ = (dl[i] − dl[origin]) − mu is formed without cancellation for
// every pole — that difference array is what the Löwner refresh and the
// eigenvector assembly consume, and its accuracy (not the root's) is what
// orthogonality rests on. A Newton step is safeguarded by a sign-tracking
// bisection bracket; the secular function is strictly increasing between
// consecutive poles, so the bracket always converges.
//
// Writes λ_j to *lambda_out and dl[i] − λ_j for all i into delta_row.
void SecularRoot(Index kk, Index j, const double* dl, const double* z,
                 double rho, double* lambda_out, double* delta_row) {
  const double eps = std::numeric_limits<double>::epsilon();
  double zsq = 0.0;
  for (Index i = 0; i < kk; ++i) zsq += z[i] * z[i];

  // Pick the origin pole and the initial bracket [a, b] for mu.
  Index origin = j;
  double a = 0.0;
  double b = rho * zsq;  // f(dl[kk-1] + rho·‖z‖²) ≥ 0: valid last-root bound
  if (j < kk - 1) {
    const double gap = dl[j + 1] - dl[j];
    // The sign of f at the interval midpoint decides which half holds the
    // root, i.e. which end is the nearer (cancellation-free) origin.
    double fmid = 1.0;
    for (Index i = 0; i < kk; ++i) {
      const double diff = (dl[i] - dl[j]) - 0.5 * gap;
      fmid += rho * z[i] * z[i] / diff;
    }
    if (fmid >= 0.0) {
      origin = j;
      a = 0.0;
      b = 0.5 * gap;
    } else {
      origin = j + 1;
      a = -0.5 * gap;
      b = 0.0;
    }
  }

  double mu = 0.5 * (a + b);
  for (int iter = 0; iter < 100; ++iter) {
    double f = 1.0;
    double fp = 0.0;
    double fabs_sum = 1.0;
    for (Index i = 0; i < kk; ++i) {
      const double diff = (dl[i] - dl[origin]) - mu;
      const double term = rho * z[i] * z[i] / diff;
      f += term;
      fp += term / diff;
      fabs_sum += std::abs(term);
    }
    if (std::abs(f) <= 8.0 * eps * fabs_sum) break;
    if (f > 0.0) {
      b = mu;
    } else {
      a = mu;
    }
    double next = mu;
    if (std::isfinite(f) && fp > 0.0) next = mu - f / fp;
    if (!(next > a && next < b)) next = 0.5 * (a + b);  // Newton left bracket
    if (next == mu) break;  // bracket exhausted at working precision
    mu = next;
  }

  *lambda_out = dl[origin] + mu;
  for (Index i = 0; i < kk; ++i) {
    delta_row[i] = (dl[i] - dl[origin]) - mu;
  }
}

// ---------------------------------------------------------------------------
// Merge step (LAPACK dlaed1/dlaed2/dlaed3 structure)
// ---------------------------------------------------------------------------

// Merges the solved children [lo, mid) and [mid, hi): the span entries of d
// hold both children's eigenvalues (each run ascending) and v's span block
// is block-diagonal with the children's eigenvectors. `beta` is the original
// subdiagonal coupling e[mid] whose rank-one contribution was subtracted
// before the children were solved. On return d[lo, hi) is ascending and v's
// span block holds the merged eigenvectors.
void MergeSpan(const DcProblem& p, Index lo, Index mid, Index hi, double beta,
               TridiagDcWorkspace& ws) {
  Matrix& v = *p.v;
  const Index m = hi - lo;
  const Index n1 = mid - lo;
  const double eps = std::numeric_limits<double>::epsilon();

  // z = Qᵀu for u = e_{mid-1} + sign(beta)·e_mid, scaled to unit norm
  // (‖u‖² = 2); the rank-one weight doubles in exchange.
  const double rho = 2.0 * std::abs(beta);
  const double ssign = beta >= 0.0 ? 1.0 : -1.0;
  const double inv_sqrt2 = 1.0 / std::sqrt(2.0);
  ws.z.resize(static_cast<std::size_t>(m));
  for (Index k = 0; k < n1; ++k) {
    ws.z[static_cast<std::size_t>(k)] = inv_sqrt2 * v(mid - 1, lo + k);
  }
  for (Index k = n1; k < m; ++k) {
    ws.z[static_cast<std::size_t>(k)] = inv_sqrt2 * ssign * v(mid, lo + k);
  }

  // Merge the two ascending runs into one sorted order.
  ws.perm.resize(static_cast<std::size_t>(m));
  {
    Index ia = 0, ib = n1, t = 0;
    while (ia < n1 || ib < m) {
      const bool take_a =
          ib >= m || (ia < n1 && p.d[lo + ia] <= p.d[lo + ib]);
      ws.perm[static_cast<std::size_t>(t++)] = take_a ? ia++ : ib++;
    }
  }
  ws.dsort.resize(static_cast<std::size_t>(m));
  ws.zsort.resize(static_cast<std::size_t>(m));
  ws.cols.resize(static_cast<std::size_t>(m));
  ws.ctype.resize(static_cast<std::size_t>(m));
  double zmax = 0.0, dmax = 0.0;
  for (Index i = 0; i < m; ++i) {
    const Index src = ws.perm[static_cast<std::size_t>(i)];
    ws.dsort[static_cast<std::size_t>(i)] = p.d[lo + src];
    ws.zsort[static_cast<std::size_t>(i)] = ws.z[static_cast<std::size_t>(src)];
    ws.cols[static_cast<std::size_t>(i)] = lo + src;
    ws.ctype[static_cast<std::size_t>(i)] = src < n1 ? kColTop : kColBottom;
    zmax = std::max(zmax, std::abs(ws.zsort[static_cast<std::size_t>(i)]));
    dmax = std::max(dmax, std::abs(ws.dsort[static_cast<std::size_t>(i)]));
  }

  // --- Deflation (dlaed2) -------------------------------------------------
  // Entry i deflates when its z-component contributes nothing at working
  // precision (rho·|z_i| ≤ tol: its subproblem eigenpair is already an
  // eigenpair of the merged problem), or when two merged eigenvalues are
  // close enough that a Givens rotation can zero one z-component while
  // perturbing the matrix by at most |t·c·s| ≤ tol.
  const double tol = 8.0 * eps * std::max(dmax, zmax);
  ws.dl.resize(static_cast<std::size_t>(m));
  ws.zsec.resize(static_cast<std::size_t>(m));
  ws.scol.resize(static_cast<std::size_t>(m));
  ws.stype.resize(static_cast<std::size_t>(m));
  ws.ddefl.resize(static_cast<std::size_t>(m));
  ws.dcol.resize(static_cast<std::size_t>(m));
  Index nsurv = 0;
  Index ndefl = 0;
  const auto deflate = [&](Index i) {
    ws.ddefl[static_cast<std::size_t>(ndefl)] =
        ws.dsort[static_cast<std::size_t>(i)];
    ws.dcol[static_cast<std::size_t>(ndefl)] =
        ws.cols[static_cast<std::size_t>(i)];
    ++ndefl;
  };
  const auto survive = [&](Index i) {
    ws.dl[static_cast<std::size_t>(nsurv)] =
        ws.dsort[static_cast<std::size_t>(i)];
    ws.zsec[static_cast<std::size_t>(nsurv)] =
        ws.zsort[static_cast<std::size_t>(i)];
    ws.scol[static_cast<std::size_t>(nsurv)] =
        ws.cols[static_cast<std::size_t>(i)];
    ws.stype[static_cast<std::size_t>(nsurv)] =
        ws.ctype[static_cast<std::size_t>(i)];
    ++nsurv;
  };
  Index prev = -1;
  for (Index i = 0; i < m; ++i) {
    if (rho * std::abs(ws.zsort[static_cast<std::size_t>(i)]) <= tol) {
      deflate(i);
      continue;
    }
    if (prev < 0) {
      prev = i;
      continue;
    }
    // Candidate pair (prev, i): try to rotate z_prev away.
    double c = ws.zsort[static_cast<std::size_t>(i)];
    double s = ws.zsort[static_cast<std::size_t>(prev)];
    const double tau = std::hypot(c, s);
    const double t = ws.dsort[static_cast<std::size_t>(i)] -
                     ws.dsort[static_cast<std::size_t>(prev)];
    c /= tau;
    s = -s / tau;
    if (std::abs(t * c * s) <= tol) {
      ws.zsort[static_cast<std::size_t>(i)] = tau;
      ws.zsort[static_cast<std::size_t>(prev)] = 0.0;
      const Index cp = ws.cols[static_cast<std::size_t>(prev)];
      const Index ci = ws.cols[static_cast<std::size_t>(i)];
      for (Index r = lo; r < hi; ++r) {
        const double x = v(r, cp);
        const double y = v(r, ci);
        v(r, cp) = c * x + s * y;
        v(r, ci) = c * y - s * x;
      }
      if (ws.ctype[static_cast<std::size_t>(prev)] !=
          ws.ctype[static_cast<std::size_t>(i)]) {
        ws.ctype[static_cast<std::size_t>(prev)] = kColDense;
        ws.ctype[static_cast<std::size_t>(i)] = kColDense;
      }
      const double dp = ws.dsort[static_cast<std::size_t>(prev)] * c * c +
                        ws.dsort[static_cast<std::size_t>(i)] * s * s;
      ws.dsort[static_cast<std::size_t>(i)] =
          ws.dsort[static_cast<std::size_t>(prev)] * s * s +
          ws.dsort[static_cast<std::size_t>(i)] * c * c;
      ws.dsort[static_cast<std::size_t>(prev)] = dp;
      deflate(prev);
      prev = i;
    } else {
      survive(prev);
      prev = i;
    }
  }
  if (prev >= 0) survive(prev);
  const Index kk = nsurv;

  if (kk > 0) {
    // --- Secular roots + Löwner z-refresh (dlaed4 / dlaed3) ---------------
    // Each root's iteration is independent (it reads only dl/zsec and
    // writes its own lambda slot and delta row), so the kk roots run as
    // kDcChunk-sized tasks on the shared runtime; every root is computed
    // by the same arithmetic as the sequential walk, so the bits are
    // thread-count independent.
    ws.lambda.resize(static_cast<std::size_t>(kk));
    ws.delta.Resize(kk, kk);  // delta(j, i) = dl[i] − λ_j
    kernels::ParallelFor((kk + kDcChunk - 1) / kDcChunk, [&](Index task) {
      const Index j1 = std::min(kk, (task + 1) * kDcChunk);
      for (Index j = task * kDcChunk; j < j1; ++j) {
        SecularRoot(kk, j, ws.dl.data(), ws.zsec.data(), rho,
                    &ws.lambda[static_cast<std::size_t>(j)],
                    ws.delta.RowPtr(j));
      }
    });
    // Refresh z so that the λ just computed are EXACT eigenvalues of
    // D + rho·ẑẑᵀ (Gu–Eisenstat): ẑᵢ² = Πⱼ(λⱼ−dᵢ) / (rho·Π_{j≠i}(dⱼ−dᵢ)),
    // evaluated as interleaved ratios of interlacing quantities so every
    // partial product stays O(1).
    ws.zhat.resize(static_cast<std::size_t>(kk));
    kernels::ParallelFor((kk + kDcChunk - 1) / kDcChunk, [&](Index task) {
      const Index i1 = std::min(kk, (task + 1) * kDcChunk);
      for (Index i = task * kDcChunk; i < i1; ++i) {
        double prod = -ws.delta(i, i) / rho;  // (λᵢ − dᵢ)/rho > 0
        for (Index j = 0; j < kk; ++j) {
          if (j == i) continue;
          prod *= ws.delta(j, i) / (ws.dl[static_cast<std::size_t>(i)] -
                                    ws.dl[static_cast<std::size_t>(j)]);
        }
        ws.zhat[static_cast<std::size_t>(i)] = std::copysign(
            std::sqrt(std::max(prod, 0.0)),
            ws.zsec[static_cast<std::size_t>(i)]);
      }
    });

    // --- Eigenvector assembly ---------------------------------------------
    // Group survivors by column support so each GEMM skips the structurally
    // zero half (dlaed3's two-multiply scheme).
    ws.pack.resize(static_cast<std::size_t>(kk));
    Index kt = 0, kd = 0, kb = 0;
    for (Index i = 0; i < kk; ++i) {
      const int ty = ws.stype[static_cast<std::size_t>(i)];
      kt += ty == kColTop;
      kd += ty == kColDense;
      kb += ty == kColBottom;
    }
    {
      Index at = 0, ad = kt, ab = kt + kd;
      for (Index i = 0; i < kk; ++i) {
        switch (ws.stype[static_cast<std::size_t>(i)]) {
          case kColTop:
            ws.pack[static_cast<std::size_t>(at++)] = i;
            break;
          case kColDense:
            ws.pack[static_cast<std::size_t>(ad++)] = i;
            break;
          default:
            ws.pack[static_cast<std::size_t>(ab++)] = i;
            break;
        }
      }
    }
    // Secular eigenvector c of root j: ẑᵢ/(dᵢ − λⱼ), normalized. Rows follow
    // the packed survivor order so they line up with q_pack's columns.
    ws.s_pack.Resize(kk, kk);
    kernels::ParallelFor((kk + kDcChunk - 1) / kDcChunk, [&](Index task) {
      const Index jend = std::min(kk, (task + 1) * kDcChunk);
      for (Index j = task * kDcChunk; j < jend; ++j) {
        double norm_sq = 0.0;
        for (Index c2 = 0; c2 < kk; ++c2) {
          const Index i = ws.pack[static_cast<std::size_t>(c2)];
          const double w =
              ws.zhat[static_cast<std::size_t>(i)] / ws.delta(j, i);
          ws.s_pack(c2, j) = w;
          norm_sq += w * w;
        }
        const double inv = 1.0 / std::sqrt(norm_sq);
        for (Index c2 = 0; c2 < kk; ++c2) ws.s_pack(c2, j) *= inv;
      }
    });
    ws.q_pack.Resize(m, kk);
    for (Index c2 = 0; c2 < kk; ++c2) {
      const Index surv = ws.pack[static_cast<std::size_t>(c2)];
      const Index src_col = ws.scol[static_cast<std::size_t>(surv)];
      for (Index r = 0; r < m; ++r) ws.q_pack(r, c2) = v(lo + r, src_col);
    }
    // u = Q·S in two support-aware GEMMs: top rows see top+dense columns,
    // bottom rows see dense+bottom columns. Resize zero-fills, so row bands
    // with an empty inner dimension are already correct.
    ws.u.Resize(m, kk);
    if (n1 > 0 && kt + kd > 0) {
      kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, n1, kk, kt + kd,
                    1.0, ws.q_pack.data(), kk, ws.s_pack.data(), kk, 0.0,
                    ws.u.data(), kk);
    }
    if (m - n1 > 0 && kd + kb > 0) {
      kernels::Gemm(kernels::Op::kNone, kernels::Op::kNone, m - n1, kk,
                    kd + kb, 1.0, ws.q_pack.RowPtr(n1) + kt, kk,
                    ws.s_pack.RowPtr(kt), kk, 0.0, ws.u.RowPtr(n1), kk);
    }
  }

  // --- Write back in globally ascending order -----------------------------
  ws.staged.Resize(m, ndefl);
  for (Index t = 0; t < ndefl; ++t) {
    const Index src_col = ws.dcol[static_cast<std::size_t>(t)];
    for (Index r = 0; r < m; ++r) ws.staged(r, t) = v(lo + r, src_col);
  }
  const auto value = [&](Index idx) {
    return idx < kk ? ws.lambda[static_cast<std::size_t>(idx)]
                    : ws.ddefl[static_cast<std::size_t>(idx - kk)];
  };
  ws.order.resize(static_cast<std::size_t>(m));
  for (Index i = 0; i < m; ++i) ws.order[static_cast<std::size_t>(i)] = i;
  std::stable_sort(ws.order.begin(), ws.order.end(),
                   [&](Index x, Index y) { return value(x) < value(y); });
  // Each output position owns its own column of v and slot of d, so the
  // O(m²) write-back runs as column-chunk tasks.
  kernels::ParallelFor((m + kDcChunk - 1) / kDcChunk, [&](Index task) {
    const Index pend = std::min(m, (task + 1) * kDcChunk);
    for (Index pos = task * kDcChunk; pos < pend; ++pos) {
      const Index idx = ws.order[static_cast<std::size_t>(pos)];
      p.d[lo + pos] = value(idx);
      if (idx < kk) {
        for (Index r = 0; r < m; ++r) v(lo + r, lo + pos) = ws.u(r, idx);
      } else {
        for (Index r = 0; r < m; ++r) {
          v(lo + r, lo + pos) = ws.staged(r, idx - kk);
        }
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Recursion
// ---------------------------------------------------------------------------

// `depth` counts forks along the right spine that kept using `ws`: the
// fork at depth d parks its left child on ws.fork_children[d], so no two
// concurrently-live subtrees ever share a workspace (the left subtree of
// the fork at depth d runs concurrently with the whole remaining right
// spine, including that spine's own deeper forks).
Status SolveSpan(const DcProblem& p, Index lo, Index hi,
                 TridiagDcWorkspace& ws, int depth) {
  const Index m = hi - lo;
  if (m <= kDcLeafSize) {
    // QL leaf: rotations accumulate into rows of an identity basis, so row i
    // of the result is eigenvector i of the leaf block. The eigenvalues land
    // directly in the caller's d span; only the (destroyed) subdiagonal
    // needs a scratch copy.
    ws.leaf_e.resize(static_cast<std::size_t>(m));
    ws.leaf_vt.Resize(m, m);
    for (Index i = 0; i < m; ++i) {
      ws.leaf_vt(i, i) = 1.0;
      ws.leaf_e[static_cast<std::size_t>(i)] = i > 0 ? p.e[lo + i] : 0.0;
    }
    if (!internal::TridiagQlRows(ws.leaf_vt, p.d + lo, ws.leaf_e.data())) {
      return Status::NumericalError(
          "TridiagEigenDc: leaf QL iteration failed to converge");
    }
    for (Index i = 0; i < m; ++i) {
      for (Index r = 0; r < m; ++r) {
        (*p.v)(lo + r, lo + i) = ws.leaf_vt(i, r);
      }
    }
    return Status::OK();
  }

  // Cuppen's splitting: T = diag(T₁', T₂') + |β|·u·uᵀ with β = e[mid] and
  // u = e_{mid-1} + sign(β)·e_mid; the children solve the boundary-corrected
  // blocks, the merge adds the rank-one coupling back.
  const Index mid = lo + m / 2;
  const double beta = p.e[mid];
  p.d[mid - 1] -= std::abs(beta);
  p.d[mid] -= std::abs(beta);
  // The children touch disjoint spans of d/e/v, so they can run
  // concurrently: the left subtree goes to the shared pool with its own
  // workspace chain while this thread descends right. Every workspace
  // buffer is fully (re)written before it is read within a solve, so which
  // workspace object a subtree uses never changes the arithmetic — results
  // stay bitwise identical whether the fork happens or not.
  if (m >= kDcParallelMin && kernels::GemmThreads() > 1) {
    if (static_cast<int>(ws.fork_children.size()) <= depth) {
      ws.fork_children.resize(static_cast<std::size_t>(depth) + 1);
    }
    if (ws.fork_children[static_cast<std::size_t>(depth)] == nullptr) {
      ws.fork_children[static_cast<std::size_t>(depth)] =
          std::make_unique<TridiagDcWorkspace>();
    }
    // Raw pointer: deeper right-spine forks may resize fork_children, but
    // the pointee never moves.
    TridiagDcWorkspace* left_ws =
        ws.fork_children[static_cast<std::size_t>(depth)].get();
    Status left_status = Status::OK();
    kernels::TaskGroup group;
    group.Run([&p, lo, mid, left_ws, &left_status] {
      left_status = SolveSpan(p, lo, mid, *left_ws, /*depth=*/0);
    });
    const Status right_status = SolveSpan(p, mid, hi, ws, depth + 1);
    group.Wait();
    LRM_RETURN_IF_ERROR(left_status);
    LRM_RETURN_IF_ERROR(right_status);
  } else {
    LRM_RETURN_IF_ERROR(SolveSpan(p, lo, mid, ws, depth));
    LRM_RETURN_IF_ERROR(SolveSpan(p, mid, hi, ws, depth));
  }
  MergeSpan(p, lo, mid, hi, beta, ws);
  return Status::OK();
}

}  // namespace

Status TridiagEigenDc(Vector& d, Vector& e, Matrix* v,
                      TridiagDcWorkspace* workspace) {
  LRM_CHECK(v != nullptr);
  const Index n = d.size();
  if (e.size() != n) {
    return Status::InvalidArgument(
        StrFormat("TridiagEigenDc: diagonal has %td entries, subdiagonal "
                  "buffer %td (want equal sizes, e[0] ignored)",
                  n, e.size()));
  }
  v->Resize(n, n);  // zero-fills: the recursion only writes span blocks
  if (n == 0) return Status::OK();
  TridiagDcWorkspace local;
  TridiagDcWorkspace& ws = workspace != nullptr ? *workspace : local;
  const DcProblem problem{d.data(), e.data(), v};
  return SolveSpan(problem, 0, n, ws, /*depth=*/0);
}

}  // namespace lrm::linalg
