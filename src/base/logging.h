// Minimal leveled logging to stderr. Solvers use LRM_VLOG for per-iteration
// traces that are silent unless the caller raises the verbosity.

#ifndef LRM_BASE_LOGGING_H_
#define LRM_BASE_LOGGING_H_

#include <sstream>
#include <string>

namespace lrm {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// \brief Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// \brief Sets the process-wide minimum level. Defaults to kWarning so that
/// library internals stay quiet in tests and benchmarks.
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and emits it on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is below threshold.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define LRM_LOG(level)                                                 \
  (::lrm::GetLogLevel() > ::lrm::LogLevel::level)                      \
      ? static_cast<void>(0)                                           \
      : static_cast<void>(                                             \
            ::lrm::internal::LogMessage(::lrm::LogLevel::level,        \
                                        __FILE__, __LINE__)            \
            << "")

// LRM_LOG cannot chain <<s through the ternary, so provide macros that
// expand to a live stream object directly.
#define LRM_LOG_INFO                                                  \
  ::lrm::internal::LogMessage(::lrm::LogLevel::kInfo, __FILE__, __LINE__)
#define LRM_LOG_WARNING                                               \
  ::lrm::internal::LogMessage(::lrm::LogLevel::kWarning, __FILE__, __LINE__)
#define LRM_LOG_ERROR                                                 \
  ::lrm::internal::LogMessage(::lrm::LogLevel::kError, __FILE__, __LINE__)
#define LRM_LOG_DEBUG                                                 \
  ::lrm::internal::LogMessage(::lrm::LogLevel::kDebug, __FILE__, __LINE__)

}  // namespace lrm

#endif  // LRM_BASE_LOGGING_H_
