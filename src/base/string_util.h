// Small string helpers shared by the eval harness and examples.

#ifndef LRM_BASE_STRING_UTIL_H_
#define LRM_BASE_STRING_UTIL_H_

#include <string>
#include <vector>

namespace lrm {

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Renders a double in compact scientific form, e.g. "3.21e+07".
std::string SciFormat(double value, int precision = 3);

/// \brief Joins `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& separator);

/// \brief Splits `s` at each occurrence of `delimiter`.
///
/// Matches absl::StrSplit semantics: the empty string yields {""}; adjacent
/// delimiters and leading/trailing delimiters yield empty pieces, so
/// StrJoin(StrSplit(s, d), d) round-trips any input.
std::vector<std::string> StrSplit(const std::string& s, char delimiter);

/// \brief Pads `s` on the left with spaces to at least `width` characters.
std::string PadLeft(const std::string& s, std::size_t width);

/// \brief Pads `s` on the right with spaces to at least `width` characters.
std::string PadRight(const std::string& s, std::size_t width);

}  // namespace lrm

#endif  // LRM_BASE_STRING_UTIL_H_
