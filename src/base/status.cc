#include "base/status.h"

namespace lrm {

namespace {
const std::string& EmptyString() {
  static const std::string* empty = new std::string();
  return *empty;
}
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kNotConverged:
      return "NOT_CONVERGED";
    case StatusCode::kNumericalError:
      return "NUMERICAL_ERROR";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

Status::Status(StatusCode code, std::string_view message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_unique<Rep>(Rep{code, std::string(message)});
  }
}

Status::Status(const Status& other) {
  if (other.rep_) {
    rep_ = std::make_unique<Rep>(*other.rep_);
  }
}

Status& Status::operator=(const Status& other) {
  if (this != &other) {
    rep_ = other.rep_ ? std::make_unique<Rep>(*other.rep_) : nullptr;
  }
  return *this;
}

const std::string& Status::message() const {
  return rep_ ? rep_->message : EmptyString();
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

bool operator==(const Status& a, const Status& b) {
  return a.code() == b.code() && a.message() == b.message();
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace lrm
