// Wall-clock timing for the experiment harness and benchmarks.

#ifndef LRM_BASE_TIMER_H_
#define LRM_BASE_TIMER_H_

#include <chrono>

namespace lrm {

/// \brief Measures elapsed wall-clock time. Starts on construction.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lrm

#endif  // LRM_BASE_TIMER_H_
