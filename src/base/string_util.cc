#include "base/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace lrm {

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string result(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

std::string SciFormat(double value, int precision) {
  return StrFormat("%.*e", precision, value);
}

std::string StrJoin(const std::vector<std::string>& parts,
                    const std::string& separator) {
  std::string result;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += separator;
    result += parts[i];
  }
  return result;
}

std::vector<std::string> StrSplit(const std::string& s, char delimiter) {
  std::vector<std::string> pieces;
  std::size_t begin = 0;
  while (true) {
    const std::size_t end = s.find(delimiter, begin);
    if (end == std::string::npos) {
      pieces.push_back(s.substr(begin));
      return pieces;
    }
    pieces.push_back(s.substr(begin, end - begin));
    begin = end + 1;
  }
}

std::string PadLeft(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string PadRight(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace lrm
