// Cooperative cancellation: a CancelSource owns the decision to stop
// (an explicit Cancel() or a wall-clock deadline), and the CancelTokens it
// hands out are cheap, copyable views that long-running work polls at its
// natural checkpoints.
//
// The library never preempts a thread: cancellation only takes effect where
// the work chooses to check — e.g. the ALM solver tests its token between
// outer iterations (core/alm_solver.h), so an expired request aborts within
// one iteration, with every invariant intact. A default-constructed token
// is never cancelled and costs one null check per poll, so APIs can accept
// a token unconditionally.
//
// Check() maps the two cancellation causes onto the two typed codes the
// service tier's failure contract is written in: an explicit Cancel() →
// StatusCode::kCancelled, a passed deadline → StatusCode::kDeadlineExceeded.

#ifndef LRM_BASE_CANCEL_H_
#define LRM_BASE_CANCEL_H_

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <string_view>

#include "base/status.h"

namespace lrm {

class CancelSource;

/// \brief Read-only view of a CancelSource. Copyable, thread-safe; a
/// default-constructed token can never be cancelled.
class CancelToken {
 public:
  CancelToken() = default;

  /// True if this token is connected to a source that could still cancel
  /// it (i.e. not default-constructed).
  bool can_be_cancelled() const { return state_ != nullptr; }

  /// True once the source was cancelled or its deadline passed.
  bool cancelled() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_acquire) !=
        static_cast<int>(StatusCode::kOk)) {
      return true;
    }
    return state_->has_deadline &&
           std::chrono::steady_clock::now() >= state_->deadline;
  }

  /// OK while live; a typed kCancelled / kDeadlineExceeded status —
  /// prefixed with `what` — once cancelled. Long-running work returns this
  /// status straight up the stack.
  Status Check(std::string_view what) const {
    if (state_ == nullptr) return Status::OK();
    const int reason = state_->cancelled.load(std::memory_order_acquire);
    if (reason == static_cast<int>(StatusCode::kCancelled)) {
      return Status::Cancelled(std::string(what) + ": cancelled");
    }
    if (reason == static_cast<int>(StatusCode::kDeadlineExceeded) ||
        (state_->has_deadline &&
         std::chrono::steady_clock::now() >= state_->deadline)) {
      return Status::DeadlineExceeded(std::string(what) +
                                      ": deadline exceeded");
    }
    return Status::OK();
  }

  /// The deadline, if the source carries one (steady clock).
  bool has_deadline() const {
    return state_ != nullptr && state_->has_deadline;
  }
  std::chrono::steady_clock::time_point deadline() const {
    return state_ != nullptr ? state_->deadline
                             : std::chrono::steady_clock::time_point::max();
  }

 private:
  friend class CancelSource;

  struct State {
    // StatusCode of the cancellation, kOk while live. Only ever transitions
    // away from kOk (first cause wins).
    std::atomic<int> cancelled{static_cast<int>(StatusCode::kOk)};
    bool has_deadline = false;  // immutable after construction
    std::chrono::steady_clock::time_point deadline;
  };

  explicit CancelToken(std::shared_ptr<const State> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const State> state_;
};

/// \brief Owner side: create one per unit of cancellable work, pass
/// token() down the call stack, call Cancel() (or let the deadline pass)
/// to stop it.
class CancelSource {
 public:
  /// A source with no deadline; cancels only via Cancel().
  CancelSource() : state_(std::make_shared<CancelToken::State>()) {}

  /// A source whose tokens expire at `deadline` (steady clock).
  static CancelSource WithDeadline(
      std::chrono::steady_clock::time_point deadline) {
    CancelSource source;
    auto* state = const_cast<CancelToken::State*>(source.state_.get());
    state->has_deadline = true;
    state->deadline = deadline;
    return source;
  }

  /// A source whose tokens expire `seconds` from now. Non-finite or
  /// negative budgets are the caller's bug to validate; a zero/negative
  /// budget yields an already-expired token.
  static CancelSource WithTimeout(double seconds) {
    return WithDeadline(std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(seconds)));
  }

  /// Cancels every token (idempotent; the first cause wins, so a deadline
  /// that already fired is recorded as the deadline, not as this Cancel()).
  void Cancel() const {
    auto* state = const_cast<CancelToken::State*>(state_.get());
    const int cause =
        state->has_deadline &&
                std::chrono::steady_clock::now() >= state->deadline
            ? static_cast<int>(StatusCode::kDeadlineExceeded)
            : static_cast<int>(StatusCode::kCancelled);
    int expected = static_cast<int>(StatusCode::kOk);
    state->cancelled.compare_exchange_strong(expected, cause,
                                             std::memory_order_acq_rel);
  }

  CancelToken token() const { return CancelToken(state_); }

 private:
  std::shared_ptr<const CancelToken::State> state_;
};

}  // namespace lrm

#endif  // LRM_BASE_CANCEL_H_
