#include "base/thread_pool.h"

#include <utility>

namespace lrm {

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) return;
    queue_.push_back(std::move(task));
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
    error = std::exchange(first_error_, nullptr);
  }
  if (error) std::rethrow_exception(error);
}

int ThreadPool::EnsureThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) return 0;
  int added = 0;
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { WorkerLoop(); });
    ++added;
  }
  return added;
}

int ThreadPool::num_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock,
                       [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        // shutdown_ with a drained queue: exit. (Shutdown still drains
        // whatever was queued first — destructor semantics above.)
        return;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error && !first_error_) first_error_ = std::move(error);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace lrm
