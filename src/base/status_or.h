// StatusOr<T>: a value or the error explaining why there is no value.

#ifndef LRM_BASE_STATUS_OR_H_
#define LRM_BASE_STATUS_OR_H_

#include <cstdlib>
#include <iostream>
#include <utility>
#include <variant>

#include "base/status.h"

namespace lrm {

/// \brief Holds either a T (success) or a non-OK Status (failure).
///
/// Typical use:
/// \code
///   StatusOr<Matrix> result = CholeskyFactor(a);
///   if (!result.ok()) return result.status();
///   Matrix l = std::move(result).value();
/// \endcode
template <typename T>
class StatusOr {
 public:
  /// Constructs from a success value.
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from an error status. Aborts if `status` is OK, since an OK
  /// StatusOr must carry a value.
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    if (std::get<Status>(rep_).ok()) {
      std::cerr << "StatusOr constructed from OK status without a value\n";
      std::abort();
    }
  }

  /// True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is present, the error otherwise.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Accessors for the contained value. Abort if !ok(); callers must check
  /// ok() (or use LRM_ASSIGN_OR_RETURN) first.
  const T& value() const& {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T& value() & {
    EnsureOk();
    return std::get<T>(rep_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void EnsureOk() const {
    if (!ok()) {
      std::cerr << "StatusOr::value() on error: "
                << std::get<Status>(rep_).ToString() << "\n";
      std::abort();
    }
  }

  std::variant<T, Status> rep_;
};

#define LRM_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define LRM_STATUS_MACROS_CONCAT_(x, y) LRM_STATUS_MACROS_CONCAT_INNER_(x, y)

/// \brief Evaluates `rexpr` (a StatusOr); on error returns the status from
/// the enclosing function, otherwise assigns the value to `lhs`.
#define LRM_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  LRM_ASSIGN_OR_RETURN_IMPL_(                                              \
      LRM_STATUS_MACROS_CONCAT_(lrm_statusor_, __LINE__), lhs, rexpr)

#define LRM_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                               \
  if (!statusor.ok()) {                                  \
    return statusor.status();                            \
  }                                                      \
  lhs = std::move(statusor).value()

}  // namespace lrm

#endif  // LRM_BASE_STATUS_OR_H_
