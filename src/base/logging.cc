#include "base/logging.h"

#include <atomic>
#include <iostream>

namespace lrm {

namespace {
std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_log_level.load(std::memory_order_relaxed));
}

void SetLogLevel(LogLevel level) {
  g_log_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelTag(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel()) {
    std::cerr << stream_.str() << std::endl;
  }
}

}  // namespace internal
}  // namespace lrm
