// Fixed-size worker pool shared by the compute and service tiers.
//
// Deliberately minimal: a locked FIFO of std::function tasks drained by N
// long-lived threads. Nothing here orders tasks — determinism is always the
// caller's job. The two in-tree users solve it differently: the answering
// service assigns each request its RNG stream at submission time, and the
// kernels tier (linalg/kernels/parallel.h) partitions work by problem shape
// so any scheduling of the disjoint pieces produces identical bits.
//
// Lived in src/service/ until the factorization tier needed the same
// primitive; service/thread_pool.h re-exports it unchanged.

#ifndef LRM_BASE_THREAD_POOL_H_
#define LRM_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lrm {

/// \brief Fixed pool of worker threads draining a FIFO task queue.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains outstanding tasks, then joins the workers. An exception
  /// captured from a task but never observed via Wait() is dropped.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Tasks submitted after shutdown began are rejected
  /// silently (owners only shut the pool down in their destructor, after
  /// all submissions have completed).
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished executing. If
  /// any task threw since the last Wait(), rethrows the first such
  /// exception (subsequent ones are dropped); the worker that caught it
  /// keeps running, so the pool stays usable afterwards.
  void Wait();

  /// Grows the pool to `num_threads` workers if it currently has fewer
  /// (never shrinks). Returns the number of workers added. Thread-safe
  /// against concurrent Submit/Wait.
  int EnsureThreads(int num_threads);

  int num_threads() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable task_ready_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_error_;  // first uncollected task exception
  int in_flight_ = 0;               // tasks popped but not yet finished
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lrm

#endif  // LRM_BASE_THREAD_POOL_H_
