// Status: lightweight error propagation without exceptions.
//
// The library never throws across public API boundaries. Fallible operations
// return Status (or StatusOr<T>, see status_or.h). This mirrors the idiom
// used by RocksDB and Apache Arrow.

#ifndef LRM_BASE_STATUS_H_
#define LRM_BASE_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>

namespace lrm {

/// \brief Canonical error categories used throughout the library.
enum class StatusCode : int {
  kOk = 0,
  /// The caller passed an argument that violates the documented contract
  /// (e.g. mismatched matrix dimensions, negative rank).
  kInvalidArgument = 1,
  /// The object is not in a state where the operation is allowed
  /// (e.g. Answer() before Prepare()).
  kFailedPrecondition = 2,
  /// An index or parameter lies outside the valid range.
  kOutOfRange = 3,
  /// An iterative solver exhausted its iteration budget without meeting the
  /// requested tolerance. Results may still be usable; inspect the payload.
  kNotConverged = 4,
  /// A numerical operation failed (singular matrix, loss of positive
  /// definiteness, NaN encountered).
  kNumericalError = 5,
  /// An invariant the library itself maintains was violated; indicates a bug.
  kInternal = 6,
  /// The requested feature/configuration combination is not implemented.
  kUnimplemented = 7,
  /// A metered resource is exhausted — most importantly a tenant's privacy
  /// budget (service/budget_manager.h). Callers must treat this as a typed
  /// refusal: the request was well-formed but MUST NOT be served, and no
  /// partial or noiseless answer accompanies it.
  kResourceExhausted = 8,
  /// The operation's deadline passed before it could complete. The work was
  /// aborted cooperatively (base/cancel.h) and nothing was released; in the
  /// service tier the request's budget charge is refunded.
  kDeadlineExceeded = 9,
  /// The component is temporarily unable to accept the request — e.g. the
  /// answering service shed it because its worker queue is at capacity.
  /// Retrying after a backoff is expected to succeed; the message carries a
  /// retry-after hint.
  kUnavailable = 10,
  /// The operation was cancelled by its owner (explicit CancelSource::
  /// Cancel(), or a service shutting down with the request still pending).
  /// Nothing was released.
  kCancelled = 11,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation: either OK or a code plus a message.
///
/// The OK state carries no allocation; error states store their message on
/// the heap, so passing Status by value is cheap in the common path.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message. Prefer the named
  /// factory functions (Status::InvalidArgument etc.) in new code.
  Status(StatusCode code, std::string_view message);

  Status(const Status& other);
  Status& operator=(const Status& other);
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Returns an OK status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status NotConverged(std::string_view msg) {
    return Status(StatusCode::kNotConverged, msg);
  }
  static Status NumericalError(std::string_view msg) {
    return Status(StatusCode::kNumericalError, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status ResourceExhausted(std::string_view msg) {
    return Status(StatusCode::kResourceExhausted, msg);
  }
  static Status DeadlineExceeded(std::string_view msg) {
    return Status(StatusCode::kDeadlineExceeded, msg);
  }
  static Status Unavailable(std::string_view msg) {
    return Status(StatusCode::kUnavailable, msg);
  }
  static Status Cancelled(std::string_view msg) {
    return Status(StatusCode::kCancelled, msg);
  }

  /// True iff the status is OK.
  bool ok() const { return rep_ == nullptr; }

  /// The status code (kOk when ok()).
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The error message; empty for OK statuses.
  const std::string& message() const;

  /// Renders "CODE: message" (or "OK").
  std::string ToString() const;

  /// Two statuses compare equal iff code and message match.
  friend bool operator==(const Status& a, const Status& b);

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK.
  std::unique_ptr<Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// \brief Propagates errors: evaluates `expr`; if the resulting Status is not
/// OK, returns it from the enclosing function.
#define LRM_RETURN_IF_ERROR(expr)                          \
  do {                                                     \
    ::lrm::Status lrm_status_internal_ = (expr);           \
    if (!lrm_status_internal_.ok()) {                      \
      return lrm_status_internal_;                         \
    }                                                      \
  } while (false)

}  // namespace lrm

#endif  // LRM_BASE_STATUS_H_
