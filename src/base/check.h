// CHECK macros for programmer-error invariants (not recoverable conditions —
// those use Status). A failed check prints the location and aborts.

#ifndef LRM_BASE_CHECK_H_
#define LRM_BASE_CHECK_H_

#include <cstdlib>
#include <iostream>

namespace lrm::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* condition) {
  std::cerr << "CHECK failed at " << file << ":" << line << ": " << condition
            << std::endl;
  std::abort();
}

}  // namespace lrm::internal

/// \brief Aborts with a diagnostic if `condition` is false. Always enabled
/// (release builds included): these guard memory safety, so the cost is paid
/// deliberately. Hot inner loops use unchecked accessors instead.
#define LRM_CHECK(condition)                                        \
  do {                                                              \
    if (!(condition)) {                                             \
      ::lrm::internal::CheckFailed(__FILE__, __LINE__, #condition); \
    }                                                               \
  } while (false)

#define LRM_CHECK_EQ(a, b) LRM_CHECK((a) == (b))
#define LRM_CHECK_NE(a, b) LRM_CHECK((a) != (b))
#define LRM_CHECK_LT(a, b) LRM_CHECK((a) < (b))
#define LRM_CHECK_LE(a, b) LRM_CHECK((a) <= (b))
#define LRM_CHECK_GT(a, b) LRM_CHECK((a) > (b))
#define LRM_CHECK_GE(a, b) LRM_CHECK((a) >= (b))

/// \brief Like LRM_CHECK but compiled out of release builds; use in hot code.
#ifdef NDEBUG
#define LRM_DCHECK(condition) \
  do {                        \
  } while (false)
#else
#define LRM_DCHECK(condition) LRM_CHECK(condition)
#endif

#endif  // LRM_BASE_CHECK_H_
