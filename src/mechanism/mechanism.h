// Abstract interface every differentially private batch-query mechanism in
// this library implements.
//
// The two-phase contract matters for privacy: Prepare() may look only at the
// workload W (public), never at the data, so the strategy search consumes no
// privacy budget. Answer() is the randomized release and is the only place
// the data vector is touched.

#ifndef LRM_MECHANISM_MECHANISM_H_
#define LRM_MECHANISM_MECHANISM_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "base/status_or.h"
#include "linalg/vector.h"
#include "rng/engine.h"
#include "workload/workload.h"

namespace lrm::mechanism {

/// \brief An ε-differentially private mechanism for answering a batch of
/// linear queries.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Short display name ("LRM", "LM", "WM", "HM", "MM", …).
  virtual std::string_view name() const = 0;

  /// Binds the mechanism to a workload and runs any (data-independent)
  /// strategy optimization. Must be called before Answer().
  Status Prepare(const workload::Workload& workload);

  /// Releases ε-differentially private answers to all m queries.
  ///
  /// `data` is the unit-count vector (length = domain size), `epsilon` the
  /// privacy budget, `engine` the noise source. Unit-count sensitivity is 1
  /// (adding/removing one record changes one count by 1), matching the
  /// paper's setting.
  StatusOr<linalg::Vector> Answer(const linalg::Vector& data, double epsilon,
                                  rng::Engine& engine) const;

  /// Analytic expected total squared error Σᵢ E[(ỹᵢ − yᵢ)²] where known;
  /// nullopt if only empirical measurement is possible. Data-independent for
  /// every mechanism except relaxed LRM (which adds a structural term; see
  /// LowRankMechanism::StructuralError).
  virtual std::optional<double> ExpectedSquaredError(double epsilon) const {
    (void)epsilon;
    return std::nullopt;
  }

  /// True once Prepare() has succeeded.
  bool prepared() const { return prepared_; }

 protected:
  /// Mechanism-specific preparation; `workload()` is already set.
  virtual Status PrepareImpl() = 0;

  /// Mechanism-specific answering; preconditions already validated.
  virtual StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                              double epsilon,
                                              rng::Engine& engine) const = 0;

  /// The workload bound by Prepare(). Only valid when prepared().
  const workload::Workload& workload() const { return workload_; }

 private:
  workload::Workload workload_;
  bool prepared_ = false;
};

}  // namespace lrm::mechanism

#endif  // LRM_MECHANISM_MECHANISM_H_
