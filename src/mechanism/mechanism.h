// Abstract interface every differentially private batch-query mechanism in
// this library implements.
//
// The two-phase contract matters for privacy: Prepare() may look only at the
// workload W (public), never at the data, so the strategy search consumes no
// privacy budget. Answer() is the randomized release and is the only place
// the data vector is touched.

#ifndef LRM_MECHANISM_MECHANISM_H_
#define LRM_MECHANISM_MECHANISM_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "base/status_or.h"
#include "linalg/vector.h"
#include "rng/engine.h"
#include "workload/workload.h"

namespace lrm::mechanism {

/// \brief An ε-differentially private mechanism for answering a batch of
/// linear queries.
class Mechanism {
 public:
  virtual ~Mechanism() = default;

  /// Short display name ("LRM", "LM", "WM", "HM", "MM", …).
  virtual std::string_view name() const = 0;

  /// Binds the mechanism to a workload and runs any (data-independent)
  /// strategy optimization. Must be called before Answer().
  ///
  /// The workload is held through a shared immutable handle, so the three
  /// overloads differ only in how it gets there: the lvalue overload copies
  /// once, the rvalue overload moves, and the shared_ptr overload shares —
  /// a sweep that fans one large W out to several mechanisms (or many
  /// sweep cells) should build the workload once with
  /// `std::make_shared<const workload::Workload>(...)` and pass the handle,
  /// paying zero per-mechanism copies.
  ///
  /// Failure contract (the prepared-mechanism cache fingerprints a
  /// mechanism by workload_handle(), so the handle must never name a
  /// workload the mechanism did not prepare): a rejected *argument* leaves
  /// any previous successful binding fully intact — prepared() stays true
  /// and the old workload keeps answering; a failure inside the
  /// mechanism-specific preparation unbinds completely — prepared() is
  /// false and workload_handle() is null.
  Status Prepare(const workload::Workload& workload);
  Status Prepare(workload::Workload&& workload);
  Status Prepare(std::shared_ptr<const workload::Workload> workload);

  /// Releases ε-differentially private answers to all m queries.
  ///
  /// `data` is the unit-count vector (length = domain size), `epsilon` the
  /// privacy budget, `engine` the noise source. Unit-count sensitivity is 1
  /// (adding/removing one record changes one count by 1), matching the
  /// paper's setting. ε must be positive and FINITE: ε = NaN would flow
  /// into sensitivity/ε and ε = +Inf would release noiseless answers.
  ///
  /// Thread safety: Answer is const and implementations must not mutate
  /// any member state — after one successful Prepare(), concurrent
  /// Answer() calls from many threads (each with its own Engine) are safe
  /// and deterministic per engine stream. This is what lets the serving
  /// layer (src/service/) share one prepared mechanism across its worker
  /// pool.
  StatusOr<linalg::Vector> Answer(const linalg::Vector& data, double epsilon,
                                  rng::Engine& engine) const;

  /// Analytic expected total squared error Σᵢ E[(ỹᵢ − yᵢ)²] where known;
  /// nullopt if only empirical measurement is possible. Data-independent for
  /// every mechanism except relaxed LRM (which adds a structural term; see
  /// LowRankMechanism::StructuralError).
  virtual std::optional<double> ExpectedSquaredError(double epsilon) const {
    (void)epsilon;
    return std::nullopt;
  }

  /// True once Prepare() has succeeded.
  bool prepared() const { return prepared_; }

  /// The shared handle behind the bound workload; lets a caller hand the
  /// same W to another mechanism without a copy. Null before the first
  /// Prepare().
  const std::shared_ptr<const workload::Workload>& workload_handle() const {
    return workload_;
  }

  /// The argument checks Prepare() runs before binding (null/empty/
  /// non-finite workload). Exposed so callers that must pay a cost before
  /// Prepare — e.g. LowRankMechanism::PrepareWithHint deep-copying an
  /// lvalue W — can reject malformed workloads first.
  static Status ValidateWorkload(const workload::Workload* workload);

 protected:
  /// Mechanism-specific preparation; `workload()` is already set.
  virtual Status PrepareImpl() = 0;

  /// Mechanism-specific answering; preconditions already validated.
  virtual StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                              double epsilon,
                                              rng::Engine& engine) const = 0;

  /// The workload bound by Prepare(). Only valid when prepared().
  const workload::Workload& workload() const { return *workload_; }

 private:
  std::shared_ptr<const workload::Workload> workload_;
  bool prepared_ = false;
};

}  // namespace lrm::mechanism

#endif  // LRM_MECHANISM_MECHANISM_H_
