#include "mechanism/mechanism.h"

#include "base/string_util.h"

namespace lrm::mechanism {

Status Mechanism::Prepare(const workload::Workload& workload) {
  return Prepare(std::make_shared<const workload::Workload>(workload));
}

Status Mechanism::Prepare(workload::Workload&& workload) {
  return Prepare(
      std::make_shared<const workload::Workload>(std::move(workload)));
}

Status Mechanism::Prepare(std::shared_ptr<const workload::Workload> workload) {
  // Unbind first: after a failed (re-)Prepare the mechanism must report
  // unprepared rather than silently answer from stale state.
  prepared_ = false;
  if (workload == nullptr) {
    return Status::InvalidArgument("Mechanism::Prepare: null workload");
  }
  if (workload->num_queries() == 0 || workload->domain_size() == 0) {
    return Status::InvalidArgument("Mechanism::Prepare: empty workload");
  }
  if (!linalg::AllFinite(workload->matrix())) {
    return Status::InvalidArgument(
        "Mechanism::Prepare: workload contains NaN or Inf");
  }
  workload_ = std::move(workload);
  LRM_RETURN_IF_ERROR(PrepareImpl());
  prepared_ = true;
  return Status::OK();
}

StatusOr<linalg::Vector> Mechanism::Answer(const linalg::Vector& data,
                                           double epsilon,
                                           rng::Engine& engine) const {
  if (!prepared_) {
    return Status::FailedPrecondition(
        "Mechanism::Answer called before Prepare()");
  }
  if (data.size() != workload_->domain_size()) {
    return Status::InvalidArgument(StrFormat(
        "Mechanism::Answer: data has %td entries, workload domain is %td",
        data.size(), workload_->domain_size()));
  }
  if (epsilon <= 0.0) {
    return Status::InvalidArgument(
        "Mechanism::Answer: epsilon must be positive");
  }
  if (!linalg::AllFinite(data)) {
    return Status::InvalidArgument(
        "Mechanism::Answer: data contains NaN or Inf");
  }
  return AnswerImpl(data, epsilon, engine);
}

}  // namespace lrm::mechanism
