#include "mechanism/mechanism.h"

#include <cmath>

#include "base/string_util.h"

namespace lrm::mechanism {

Status Mechanism::Prepare(const workload::Workload& workload) {
  return Prepare(std::make_shared<const workload::Workload>(workload));
}

Status Mechanism::Prepare(workload::Workload&& workload) {
  return Prepare(
      std::make_shared<const workload::Workload>(std::move(workload)));
}

Status Mechanism::ValidateWorkload(const workload::Workload* workload) {
  if (workload == nullptr) {
    return Status::InvalidArgument("Mechanism::Prepare: null workload");
  }
  if (workload->num_queries() == 0 || workload->domain_size() == 0) {
    return Status::InvalidArgument("Mechanism::Prepare: empty workload");
  }
  if (!linalg::AllFinite(workload->matrix())) {
    return Status::InvalidArgument(
        "Mechanism::Prepare: workload contains NaN or Inf");
  }
  return Status::OK();
}

Status Mechanism::Prepare(std::shared_ptr<const workload::Workload> workload) {
  // A rejected argument must not disturb an existing binding: callers (and
  // the prepared-mechanism cache, which fingerprints by workload_handle())
  // rely on a failed re-Prepare never leaving the mechanism associated with
  // a workload it did not prepare.
  LRM_RETURN_IF_ERROR(ValidateWorkload(workload.get()));
  // Past this point PrepareImpl overwrites mechanism state, so the old
  // binding is gone either way: unbind up front, and on PrepareImpl failure
  // clear the handle too — the half-prepared state matches neither the old
  // workload nor the new one.
  prepared_ = false;
  workload_ = std::move(workload);
  const Status status = PrepareImpl();
  if (!status.ok()) {
    workload_.reset();
    return status;
  }
  prepared_ = true;
  return Status::OK();
}

StatusOr<linalg::Vector> Mechanism::Answer(const linalg::Vector& data,
                                           double epsilon,
                                           rng::Engine& engine) const {
  if (!prepared_) {
    return Status::FailedPrecondition(
        "Mechanism::Answer called before Prepare()");
  }
  if (data.size() != workload_->domain_size()) {
    return Status::InvalidArgument(StrFormat(
        "Mechanism::Answer: data has %td entries, workload domain is %td",
        data.size(), workload_->domain_size()));
  }
  // NaN compares false against everything, so `epsilon <= 0.0` alone lets
  // ε = NaN through into sensitivity/ε (all-NaN "answers"), and ε = +Inf
  // would scale the noise to zero — a silent noiseless release. Both must
  // be refused before any data is touched.
  if (!std::isfinite(epsilon) || epsilon <= 0.0) {
    return Status::InvalidArgument(
        "Mechanism::Answer: epsilon must be positive and finite");
  }
  if (!linalg::AllFinite(data)) {
    return Status::InvalidArgument(
        "Mechanism::Answer: data contains NaN or Inf");
  }
  return AnswerImpl(data, epsilon, engine);
}

}  // namespace lrm::mechanism
