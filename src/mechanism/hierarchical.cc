#include "mechanism/hierarchical.h"

#include <cmath>
#include <vector>

#include "base/check.h"
#include "base/string_util.h"
#include "rng/distributions.h"

namespace lrm::mechanism {

using linalg::Index;
using linalg::Vector;

namespace {

// Tree stored as one std::vector<double> per level; level 0 is the root,
// the last level holds the leaves.
using Tree = std::vector<std::vector<double>>;

double PowInt(Index base, Index exp) {
  double result = 1.0;
  for (Index i = 0; i < exp; ++i) result *= static_cast<double>(base);
  return result;
}

}  // namespace

Status HierarchicalMechanism::PrepareImpl() {
  if (options_.fanout < 2) {
    return Status::InvalidArgument(
        StrFormat("HierarchicalMechanism: fanout %td < 2", options_.fanout));
  }
  const Index n = workload().domain_size();
  padded_size_ = 1;
  num_levels_ = 1;
  while (padded_size_ < n) {
    padded_size_ *= options_.fanout;
    ++num_levels_;
  }
  return Status::OK();
}

StatusOr<Vector> HierarchicalMechanism::AnswerImpl(
    const Vector& data, double epsilon, rng::Engine& engine) const {
  const Index k = options_.fanout;
  const Index n = data.size();
  const Index levels = num_levels_;

  // Exact node sums, bottom-up.
  Tree exact(static_cast<std::size_t>(levels));
  {
    auto& leaves = exact[static_cast<std::size_t>(levels - 1)];
    leaves.assign(static_cast<std::size_t>(padded_size_), 0.0);
    for (Index i = 0; i < n; ++i) {
      leaves[static_cast<std::size_t>(i)] = data[i];
    }
  }
  for (Index l = levels - 2; l >= 0; --l) {
    const auto& below = exact[static_cast<std::size_t>(l + 1)];
    auto& here = exact[static_cast<std::size_t>(l)];
    here.assign(below.size() / static_cast<std::size_t>(k), 0.0);
    for (std::size_t i = 0; i < here.size(); ++i) {
      double sum = 0.0;
      for (Index c = 0; c < k; ++c) {
        sum += below[i * static_cast<std::size_t>(k) +
                     static_cast<std::size_t>(c)];
      }
      here[i] = sum;
    }
  }

  // One record touches one node per level, so the L1 sensitivity of the
  // whole tree release is `levels`; every node gets Lap(levels/ε).
  const double scale = static_cast<double>(levels) / epsilon;
  Tree noisy = exact;
  for (auto& level : noisy) {
    for (double& value : level) {
      value += rng::SampleLaplace(engine, scale);
    }
  }

  std::vector<double> estimate;
  if (!options_.constrained_inference) {
    estimate = noisy.back();
  } else {
    // Pass 1 — bottom-up weighted averaging. Height ℓ counts from the
    // leaves (ℓ = 1); node v at height ℓ blends its own noisy count with
    // the sum of its children's z-values.
    Tree z = noisy;
    for (Index l = levels - 2; l >= 0; --l) {
      const Index height = levels - l;  // leaves are height 1
      const double k_pow_h = PowInt(k, height);
      const double k_pow_h1 = PowInt(k, height - 1);
      const double own_weight = (k_pow_h - k_pow_h1) / (k_pow_h - 1.0);
      const double child_weight = (k_pow_h1 - 1.0) / (k_pow_h - 1.0);
      const auto& z_below = z[static_cast<std::size_t>(l + 1)];
      auto& z_here = z[static_cast<std::size_t>(l)];
      for (std::size_t i = 0; i < z_here.size(); ++i) {
        double child_sum = 0.0;
        for (Index c = 0; c < k; ++c) {
          child_sum += z_below[i * static_cast<std::size_t>(k) +
                               static_cast<std::size_t>(c)];
        }
        z_here[i] = own_weight *
                        noisy[static_cast<std::size_t>(l)][i] +
                    child_weight * child_sum;
      }
    }

    // Pass 2 — top-down mean consistency: distribute each node's surplus
    // equally among its children.
    Tree u = z;
    for (Index l = 0; l < levels - 1; ++l) {
      const auto& u_here = u[static_cast<std::size_t>(l)];
      const auto& z_below = z[static_cast<std::size_t>(l + 1)];
      auto& u_below = u[static_cast<std::size_t>(l + 1)];
      for (std::size_t i = 0; i < u_here.size(); ++i) {
        double child_sum = 0.0;
        for (Index c = 0; c < k; ++c) {
          child_sum += z_below[i * static_cast<std::size_t>(k) +
                               static_cast<std::size_t>(c)];
        }
        const double surplus =
            (u_here[i] - child_sum) / static_cast<double>(k);
        for (Index c = 0; c < k; ++c) {
          const std::size_t child =
              i * static_cast<std::size_t>(k) + static_cast<std::size_t>(c);
          u_below[child] = z_below[child] + surplus;
        }
      }
    }
    estimate = u.back();
  }

  Vector counts(n);
  for (Index i = 0; i < n; ++i) {
    counts[i] = estimate[static_cast<std::size_t>(i)];
  }
  return workload().Answer(counts);
}

}  // namespace lrm::mechanism
