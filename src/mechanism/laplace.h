// The two Laplace-mechanism baselines from paper §3.2:
//
//   NoiseOnDataMechanism    (M_D, "NOD")  — perturb each unit count with
//       Lap(1/ε) and evaluate W on the noisy counts (Eq. 4). This is the
//       "LM" series in the paper's figures.
//   NoiseOnResultsMechanism (M_R, "NOR")  — evaluate W exactly, then perturb
//       each answer with Lap(Δ'/ε) where Δ' is the workload L1 sensitivity
//       (Eq. 5). Called "noise on queries"/NOQ in the introduction.

#ifndef LRM_MECHANISM_LAPLACE_H_
#define LRM_MECHANISM_LAPLACE_H_

#include "mechanism/mechanism.h"

namespace lrm::mechanism {

/// \brief M_D: adds Lap(1/ε) to every unit count, then evaluates the
/// workload on the noisy vector. Expected squared error
/// 2/ε² · Σᵢⱼ Wᵢⱼ² (paper §3.2).
class NoiseOnDataMechanism : public Mechanism {
 public:
  std::string_view name() const override { return "LM"; }

  std::optional<double> ExpectedSquaredError(double epsilon) const override;

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;
};

/// \brief M_R: evaluates the workload exactly and adds Lap(Δ'/ε) to each of
/// the m answers, Δ' = maxⱼ Σᵢ |Wᵢⱼ|. Expected squared error 2m·Δ'²/ε².
class NoiseOnResultsMechanism : public Mechanism {
 public:
  std::string_view name() const override { return "NOR"; }

  std::optional<double> ExpectedSquaredError(double epsilon) const override;

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;

 private:
  double sensitivity_ = 0.0;
};

}  // namespace lrm::mechanism

#endif  // LRM_MECHANISM_LAPLACE_H_
