#include "mechanism/laplace.h"

#include "linalg/random_matrix.h"

namespace lrm::mechanism {

using linalg::Vector;

Status NoiseOnDataMechanism::PrepareImpl() { return Status::OK(); }

StatusOr<Vector> NoiseOnDataMechanism::AnswerImpl(const Vector& data,
                                                  double epsilon,
                                                  rng::Engine& engine) const {
  // D' = D + Lap(1/ε)^n; release W·D' (paper Eq. 4; unit-count
  // sensitivity Δ = 1).
  Vector noisy = data;
  noisy += linalg::RandomLaplaceVector(engine, data.size(), 1.0 / epsilon);
  return workload().Answer(noisy);
}

std::optional<double> NoiseOnDataMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return workload::ExpectedErrorNoiseOnData(workload(), epsilon);
}

Status NoiseOnResultsMechanism::PrepareImpl() {
  sensitivity_ = workload().L1Sensitivity();
  return Status::OK();
}

StatusOr<Vector> NoiseOnResultsMechanism::AnswerImpl(
    const Vector& data, double epsilon, rng::Engine& engine) const {
  // W·D + Lap(Δ'/ε)^m (paper Eq. 5).
  Vector answers = workload().Answer(data);
  answers += linalg::RandomLaplaceVector(engine, answers.size(),
                                         sensitivity_ / epsilon);
  return answers;
}

std::optional<double> NoiseOnResultsMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return workload::ExpectedErrorNoiseOnResults(workload(), epsilon);
}

}  // namespace lrm::mechanism
