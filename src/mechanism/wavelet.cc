#include "mechanism/wavelet.h"

#include <cmath>

#include "base/check.h"
#include "base/string_util.h"
#include "rng/distributions.h"

namespace lrm::mechanism {

using linalg::Index;
using linalg::Vector;

namespace {

bool IsPowerOfTwo(Index n) { return n > 0 && (n & (n - 1)) == 0; }

Index Log2(Index n) {
  Index result = 0;
  while ((Index{1} << result) < n) ++result;
  return result;
}

}  // namespace

Index NextPowerOfTwo(Index n) {
  LRM_CHECK_GT(n, 0);
  Index p = 1;
  while (p < n) p <<= 1;
  return p;
}

Vector HaarTransform(const Vector& x) {
  const Index n = x.size();
  LRM_CHECK(IsPowerOfTwo(n));
  Vector coefficients(n);
  Vector averages = x;
  Index len = n;
  // Bottom-up: averages halve in length each level; differences land at
  // coefficient slots [len/2, len).
  while (len > 1) {
    const Index half = len / 2;
    for (Index i = 0; i < half; ++i) {
      const double left = averages[2 * i];
      const double right = averages[2 * i + 1];
      averages[i] = 0.5 * (left + right);
      coefficients[half + i] = 0.5 * (left - right);
    }
    len = half;
  }
  coefficients[0] = averages[0];
  return coefficients;
}

Vector InverseHaarTransform(const Vector& c) {
  const Index n = c.size();
  LRM_CHECK(IsPowerOfTwo(n));
  Vector values(n);
  values[0] = c[0];
  Index len = 1;
  // Top-down: expand each average into (avg + diff, avg − diff).
  while (len < n) {
    for (Index i = len - 1; i >= 0; --i) {
      const double avg = values[i];
      const double diff = c[len + i];
      values[2 * i] = avg + diff;
      values[2 * i + 1] = avg - diff;
    }
    len *= 2;
  }
  return values;
}

double HaarCoefficientWeight(Index index, Index n) {
  LRM_CHECK(IsPowerOfTwo(n));
  LRM_CHECK(index >= 0 && index < n);
  if (index == 0) return static_cast<double>(n);
  // Coefficient 2^l + i sits at level l = floor(log2(index)); its subtree
  // covers n / 2^l leaves.
  Index l = 0;
  while ((Index{2} << l) <= index) ++l;
  return static_cast<double>(n >> l);
}

double HaarGeneralizedSensitivity(Index n) {
  LRM_CHECK(IsPowerOfTwo(n));
  return 1.0 + static_cast<double>(Log2(n));
}

Status WaveletMechanism::PrepareImpl() {
  const Index n = workload().domain_size();
  padded_size_ = NextPowerOfTwo(n);
  const Index big_n = padded_size_;
  const double rho = HaarGeneralizedSensitivity(big_n);

  // Precompute the analytic unit error: for each workload row w, the signed
  // subtree sums v = (H⁻¹)ᵀ·w give the row's exposure to each coefficient's
  // noise; accumulate Σ v_c²·(ρ/weight_c)².
  unit_error_ = 0.0;
  std::vector<double> sums(static_cast<std::size_t>(big_n));
  const auto& w = workload().matrix();
  for (Index row = 0; row < w.rows(); ++row) {
    std::fill(sums.begin(), sums.end(), 0.0);
    for (Index j = 0; j < n; ++j) {
      sums[static_cast<std::size_t>(j)] = w(row, j);
    }
    Index len = big_n;
    while (len > 1) {
      const Index half = len / 2;
      for (Index i = 0; i < half; ++i) {
        const double left = sums[static_cast<std::size_t>(2 * i)];
        const double right = sums[static_cast<std::size_t>(2 * i + 1)];
        // Exposure to the difference coefficient at slot half+i.
        const double v = left - right;
        const double weight =
            HaarCoefficientWeight(half + i, big_n);
        unit_error_ += v * v * (rho / weight) * (rho / weight);
        sums[static_cast<std::size_t>(i)] = left + right;
      }
      len = half;
    }
    const double v0 = sums[0];
    unit_error_ += v0 * v0 * (rho / static_cast<double>(big_n)) *
                   (rho / static_cast<double>(big_n));
  }
  return Status::OK();
}

StatusOr<Vector> WaveletMechanism::AnswerImpl(const Vector& data,
                                              double epsilon,
                                              rng::Engine& engine) const {
  const Index n = data.size();
  const Index big_n = padded_size_;
  Vector padded(big_n);
  for (Index i = 0; i < n; ++i) padded[i] = data[i];

  Vector coefficients = HaarTransform(padded);
  const double rho = HaarGeneralizedSensitivity(big_n);
  for (Index c = 0; c < big_n; ++c) {
    const double scale = rho / (epsilon * HaarCoefficientWeight(c, big_n));
    coefficients[c] += rng::SampleLaplace(engine, scale);
  }
  const Vector reconstructed = InverseHaarTransform(coefficients);

  Vector estimate(n);
  for (Index i = 0; i < n; ++i) estimate[i] = reconstructed[i];
  return workload().Answer(estimate);
}

std::optional<double> WaveletMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return 2.0 * unit_error_ / (epsilon * epsilon);
}

}  // namespace lrm::mechanism
