// Wavelet Mechanism ("WM") — Privelet (Xiao, Wang, Gehrke, ICDE 2010).
//
// Publishes the Haar wavelet coefficients of the count vector, each
// perturbed with Laplace noise inversely proportional to its Privelet
// weight. The weighted transform has generalized sensitivity
// ρ = 1 + log₂ n, so range queries enjoy polylog noise variance while the
// release remains ε-differentially private. Arbitrary linear workloads are
// answered by reconstructing the noisy counts and applying W.
//
// The transform helpers are exposed for testing and reuse.

#ifndef LRM_MECHANISM_WAVELET_H_
#define LRM_MECHANISM_WAVELET_H_

#include "mechanism/mechanism.h"

namespace lrm::mechanism {

/// \brief Forward Haar wavelet transform; x.size() must be a power of two.
///
/// Coefficient layout: c[0] is the overall average; c[2^l + i] is the
/// difference coefficient (mean of left half − mean of right half)/2 of the
/// i-th node at tree level l (l = 0 is the root split).
linalg::Vector HaarTransform(const linalg::Vector& x);

/// \brief Inverse of HaarTransform.
linalg::Vector InverseHaarTransform(const linalg::Vector& c);

/// \brief Privelet weight of coefficient `index` for (power-of-two) domain
/// size n: the base coefficient has weight n; a difference coefficient whose
/// subtree covers s leaves has weight s. One unit change in a count moves
/// coefficient c by at most 1/weight(c), so Σ weight·|Δc| = 1 + log₂ n = ρ.
double HaarCoefficientWeight(linalg::Index index, linalg::Index n);

/// \brief The Privelet generalized sensitivity ρ = 1 + log₂ n.
double HaarGeneralizedSensitivity(linalg::Index n);

/// \brief Smallest power of two ≥ n.
linalg::Index NextPowerOfTwo(linalg::Index n);

/// \brief The Privelet wavelet mechanism.
///
/// Domains that are not powers of two are padded with zero counts; padding
/// is part of the (public) domain definition, so privacy is unaffected.
class WaveletMechanism : public Mechanism {
 public:
  std::string_view name() const override { return "WM"; }

  /// Exact analytic expected squared error: the release is x̂ = x + H⁻¹ξ
  /// with independent coefficient noise ξ, so the error is a weighted sum
  /// of per-coefficient variances (computed in PrepareImpl).
  std::optional<double> ExpectedSquaredError(double epsilon) const override;

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;

 private:
  /// Padded (power-of-two) domain size.
  linalg::Index padded_size_ = 0;
  /// Σ over coefficients c of (Σ workload-row adjoint weight²)·(ρ/weight_c)²
  /// so that ExpectedSquaredError = 2·unit_error_/ε².
  double unit_error_ = 0.0;
};

}  // namespace lrm::mechanism

#endif  // LRM_MECHANISM_WAVELET_H_
