// Hierarchical Mechanism ("HM") — Hay, Rastogi, Miklau, Suciu (PVLDB 2010),
// "Boosting the accuracy of differentially private histograms through
// consistency".
//
// Builds a complete k-ary interval tree over the domain, answers every node
// count with Laplace noise calibrated to the tree height (each record
// appears once per level), then post-processes the noisy tree into the
// least-squares consistent estimate with Hay's two linear passes:
//
//   1. bottom-up weighted averaging:
//        z[v] = (k^ℓ − k^{ℓ−1})/(k^ℓ − 1)·y[v]
//             + (k^{ℓ−1} − 1)/(k^ℓ − 1)·Σ_children z[c]      (leaves: z = y)
//   2. top-down mean consistency:
//        u[root] = z[root],
//        u[v] = z[v] + (u[parent] − Σ_siblings z[w]) / k
//
// The consistent leaves answer any linear workload via W·x̂.

#ifndef LRM_MECHANISM_HIERARCHICAL_H_
#define LRM_MECHANISM_HIERARCHICAL_H_

#include "mechanism/mechanism.h"

namespace lrm::mechanism {

/// \brief Options for HierarchicalMechanism.
struct HierarchicalOptions {
  /// Tree fanout k ≥ 2 (Hay et al. use binary trees; k is exposed because
  /// larger fanouts trade tree height against per-level resolution).
  linalg::Index fanout = 2;
  /// If false, skips constrained inference and uses the noisy leaves
  /// directly — kept for the ablation benchmark.
  bool constrained_inference = true;
};

/// \brief The hierarchical-histogram mechanism.
///
/// Domains that are not powers of the fanout are padded with zero counts
/// (public knowledge, so privacy is unaffected).
class HierarchicalMechanism : public Mechanism {
 public:
  HierarchicalMechanism() = default;
  explicit HierarchicalMechanism(HierarchicalOptions options)
      : options_(options) {}

  std::string_view name() const override { return "HM"; }

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;

 private:
  HierarchicalOptions options_;
  /// Padded domain size (a power of the fanout).
  linalg::Index padded_size_ = 0;
  /// Number of tree levels including the leaves.
  linalg::Index num_levels_ = 0;
};

}  // namespace lrm::mechanism

#endif  // LRM_MECHANISM_HIERARCHICAL_H_
