// Matrix Mechanism ("MM") — Li, Hay, Rastogi, Miklau, McGregor (PODS 2010),
// implemented the way the LRM paper's Appendix B re-implements it:
//
//   min_{M ≻ 0}  max(diag(M)) · tr(WᵀW·M⁻¹)        (M = AᵀA)
//
// The non-smooth max(diag(M)) is replaced by the log-sum-exp smoothing
// fμ (opt/smooth_max.h) and the program is solved with the nonmonotone
// spectral projected gradient method over the PSD cone (opt/spg.h). The
// strategy matrix is recovered as A = Σᵢ √λᵢ·vᵢvᵢᵀ = M^{1/2}; queries are
// answered by A with Laplace noise and recovered by the (full-rank) inverse.
//
// As the paper stresses (§2.2, §6.2), this mechanism optimizes an L2
// approximation of the true L1-sensitivity objective and is restricted to
// full-rank strategies, which is why it never beats noise-on-data in
// practice. It is included as the headline competitor.

#ifndef LRM_MECHANISM_MATRIX_MECHANISM_H_
#define LRM_MECHANISM_MATRIX_MECHANISM_H_

#include "linalg/matrix.h"
#include "mechanism/mechanism.h"

namespace lrm::mechanism {

/// \brief Options for MatrixMechanism.
struct MatrixMechanismOptions {
  /// Iteration budget for the spectral projected gradient solver.
  int max_iterations = 40;
  /// Smoothing parameter μ of the log-sum-exp max approximation. The
  /// iterate is renormalized to max(diag(M)) = 1 inside the projection
  /// (the objective is scale-invariant), so μ is an absolute value.
  double mu = 1e-2;
  /// Eigenvalue floor of the PSD projection, relative to the largest
  /// eigenvalue; keeps M invertible.
  double psd_floor_relative = 1e-6;
  /// SPG movement tolerance.
  double tolerance = 1e-6;
};

/// \brief The matrix mechanism with the Appendix-B optimizer.
class MatrixMechanism : public Mechanism {
 public:
  MatrixMechanism() = default;
  explicit MatrixMechanism(MatrixMechanismOptions options)
      : options_(options) {}

  std::string_view name() const override { return "MM"; }

  /// 2·Δ_A²/ε² · tr(WᵀW·M⁻¹): Laplace noise on the n strategy queries,
  /// propagated through the linear recovery.
  std::optional<double> ExpectedSquaredError(double epsilon) const override;

  /// The optimized strategy matrix A = M^{1/2} (valid after Prepare()).
  const linalg::Matrix& strategy() const { return strategy_; }

 protected:
  Status PrepareImpl() override;
  StatusOr<linalg::Vector> AnswerImpl(const linalg::Vector& data,
                                      double epsilon,
                                      rng::Engine& engine) const override;

 private:
  MatrixMechanismOptions options_;
  linalg::Matrix strategy_;          // A, n×n SPD
  linalg::Matrix strategy_cholesky_; // Cholesky factor of A for recovery
  double sensitivity_ = 0.0;         // Δ_A = max column abs sum of A
  double unit_error_ = 0.0;          // tr(WᵀW·M⁻¹)
};

}  // namespace lrm::mechanism

#endif  // LRM_MECHANISM_MATRIX_MECHANISM_H_
