#include "mechanism/matrix_mechanism.h"

#include <cmath>

#include "base/logging.h"
#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/random_matrix.h"
#include "opt/smooth_max.h"
#include "opt/spg.h"

namespace lrm::mechanism {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

namespace {

Vector Diag(const Matrix& m) {
  Vector d(m.rows());
  for (Index i = 0; i < m.rows(); ++i) d[i] = m(i, i);
  return d;
}

}  // namespace

Status MatrixMechanism::PrepareImpl() {
  const Index n = workload().domain_size();
  const Matrix wtw = linalg::GramAtA(workload().matrix());
  const double mu = options_.mu;

  // tr(WᵀW·M⁻¹) via an SPD solve; returns +inf on loss of definiteness so
  // the line search backs off instead of aborting.
  auto trace_term = [&wtw](const Matrix& m) -> double {
    StatusOr<Matrix> solved = linalg::SolveSpd(m, wtw);
    if (!solved.ok()) return std::numeric_limits<double>::infinity();
    return linalg::Trace(*solved);
  };

  auto objective = [&, mu](const Matrix& m) -> double {
    const double t = trace_term(m);
    if (!std::isfinite(t)) return t;
    return opt::SmoothMax(Diag(m), mu) * t;
  };

  auto gradient = [&, mu](const Matrix& m) -> Matrix {
    // ∇[fμ(diag M)·g(M)] = g·diag(∇fμ) − fμ·M⁻¹WᵀWM⁻¹.
    const Vector d = Diag(m);
    const double f = opt::SmoothMax(d, mu);
    StatusOr<Matrix> inv = linalg::SpdInverse(m);
    if (!inv.ok()) {
      // Gradient at an infeasible point: steer back by identity descent.
      return Matrix::Identity(m.rows());
    }
    const Matrix k = (*inv) * wtw * (*inv);
    const double g = linalg::Trace((*inv) * wtw);
    Matrix grad = -f * k;
    const Vector softmax = opt::SmoothMaxGradient(d, mu);
    for (Index i = 0; i < m.rows(); ++i) grad(i, i) += g * softmax[i];
    return grad;
  };

  auto projection = [this](Matrix& m) {
    // Symmetrize, clamp the spectrum, and renormalize max(diag) to 1 (the
    // objective is scale-invariant, so this only conditions the iterate).
    StatusOr<linalg::SymmetricEigenResult> eig = linalg::SymmetricEigen(m);
    if (!eig.ok()) return;
    const Index n_local = m.rows();
    double lambda_max = 0.0;
    for (Index i = 0; i < n_local; ++i) {
      lambda_max = std::max(lambda_max, eig->eigenvalues[i]);
    }
    const double floor =
        std::max(lambda_max * options_.psd_floor_relative, 1e-12);
    Matrix scaled = eig->eigenvectors;
    for (Index j = 0; j < n_local; ++j) {
      const double lambda = std::max(eig->eigenvalues[j], floor);
      for (Index i = 0; i < n_local; ++i) scaled(i, j) *= lambda;
    }
    m = linalg::MultiplyABt(scaled, eig->eigenvectors);
    double max_diag = 0.0;
    for (Index i = 0; i < n_local; ++i) max_diag = std::max(max_diag, m(i, i));
    if (max_diag > 0.0) m /= max_diag;
  };

  opt::SpgOptions spg_options;
  spg_options.max_iterations = options_.max_iterations;
  spg_options.tolerance = options_.tolerance;
  LRM_ASSIGN_OR_RETURN(
      opt::SpgResult spg,
      opt::SpectralProjectedGradient(objective, gradient, projection,
                                     Matrix::Identity(n), spg_options));
  LRM_LOG_DEBUG << "MatrixMechanism SPG: " << spg.iterations
                << " iterations, objective " << spg.final_objective;

  // Strategy A = M^{1/2} = Σ √λᵢ·vᵢvᵢᵀ (Appendix B).
  Matrix m_star = spg.solution;
  LRM_ASSIGN_OR_RETURN(linalg::SymmetricEigenResult eig,
                       linalg::SymmetricEigen(m_star));
  Matrix scaled = eig.eigenvectors;
  for (Index j = 0; j < n; ++j) {
    const double lambda = std::max(eig.eigenvalues[j], 0.0);
    const double root = std::sqrt(lambda);
    for (Index i = 0; i < n; ++i) scaled(i, j) *= root;
  }
  strategy_ = linalg::MultiplyABt(scaled, eig.eigenvectors);

  LRM_ASSIGN_OR_RETURN(strategy_cholesky_, linalg::CholeskyFactor(strategy_));
  sensitivity_ = linalg::MaxColumnAbsSum(strategy_);
  unit_error_ = trace_term(m_star);
  if (!std::isfinite(unit_error_)) {
    return Status::NumericalError(
        "MatrixMechanism: optimized strategy is numerically singular");
  }
  return Status::OK();
}

StatusOr<Vector> MatrixMechanism::AnswerImpl(const Vector& data,
                                             double epsilon,
                                             rng::Engine& engine) const {
  // y = A·x + Lap(Δ_A/ε)^n; x̂ = A⁻¹·y; release W·x̂.
  Vector y = strategy_ * data;
  y += linalg::RandomLaplaceVector(engine, y.size(),
                                   sensitivity_ / epsilon);
  const Vector estimate = linalg::CholeskySolve(strategy_cholesky_, y);
  return workload().Answer(estimate);
}

std::optional<double> MatrixMechanism::ExpectedSquaredError(
    double epsilon) const {
  if (!prepared()) return std::nullopt;
  return 2.0 * sensitivity_ * sensitivity_ * unit_error_ /
         (epsilon * epsilon);
}

}  // namespace lrm::mechanism
