// Scalar samplers on top of rng::Engine.
//
// The Laplace sampler is the privacy-critical primitive: the Laplace
// mechanism (paper Eq. 3) and every derived mechanism draw their noise here.

#ifndef LRM_RNG_DISTRIBUTIONS_H_
#define LRM_RNG_DISTRIBUTIONS_H_

#include <cstdint>
#include <vector>

#include "rng/engine.h"

namespace lrm::rng {

/// \brief Uniform double in [lo, hi).
double SampleUniform(Engine& engine, double lo, double hi);

/// \brief Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
std::int64_t SampleUniformInt(Engine& engine, std::int64_t lo,
                              std::int64_t hi);

/// \brief Bernoulli trial with success probability p in [0, 1].
bool SampleBernoulli(Engine& engine, double p);

/// \brief Standard normal via the Marsaglia polar method.
double SampleGaussian(Engine& engine);

/// \brief Zero-mean Laplace with scale b: density (1/2b)·exp(−|x|/b),
/// variance 2b². Sampled by inverse CDF; requires b >= 0 (b == 0 returns 0,
/// matching the ε→∞ no-noise limit).
double SampleLaplace(Engine& engine, double scale);

/// \brief n i.i.d. Laplace(scale) draws.
std::vector<double> SampleLaplaceVector(Engine& engine, std::size_t n,
                                        double scale);

/// \brief Exponential with rate lambda (> 0).
double SampleExponential(Engine& engine, double lambda);

/// \brief Zipf-distributed integers over {1, …, n} with P(k) ∝ k^(−exponent).
///
/// Precomputes the CDF once (O(n)) so each draw is a binary search; used by
/// the Net Trace dataset synthesizer where n is the key universe.
class ZipfSampler {
 public:
  /// \param n        support size, >= 1
  /// \param exponent skew parameter, > 0
  ZipfSampler(std::size_t n, double exponent);

  /// Draws a value in [1, n].
  std::size_t Sample(Engine& engine) const;

  /// Probability mass of value k (1-based).
  double Pmf(std::size_t k) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace lrm::rng

#endif  // LRM_RNG_DISTRIBUTIONS_H_
