// Deterministic, splittable random number engine (xoshiro256++).
//
// All randomness in the library flows through rng::Engine so that every
// experiment is reproducible bit-for-bit from a single seed. The engine is
// std::uniform_random_bit_generator-compatible.

#ifndef LRM_RNG_ENGINE_H_
#define LRM_RNG_ENGINE_H_

#include <array>
#include <cstdint>
#include <limits>

namespace lrm::rng {

/// \brief xoshiro256++ pseudo-random generator (Blackman & Vigna).
///
/// Period 2^256 − 1, 4×64-bit state, seeded through SplitMix64 so that any
/// 64-bit seed — including 0 — yields a well-mixed state.
class Engine {
 public:
  using result_type = std::uint64_t;

  /// Constructs an engine from a 64-bit seed.
  explicit Engine(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next 64 uniformly distributed bits.
  std::uint64_t Next();

  /// Returns a double uniformly distributed in [0, 1) with 53 random bits.
  double NextDouble();

  /// Derives an independent child engine. The parent advances, so successive
  /// Split() calls yield distinct streams; used to hand each repetition of an
  /// experiment its own stream.
  Engine Split();

  /// Advances the state by 2^128 steps; combined with copying, provides
  /// non-overlapping parallel subsequences.
  void Jump();

  // std::uniform_random_bit_generator interface.
  std::uint64_t operator()() { return Next(); }
  static constexpr std::uint64_t min() { return 0; }
  static constexpr std::uint64_t max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::array<std::uint64_t, 4> state_;
};

/// \brief SplitMix64 step: mixes a 64-bit value; used for seeding and for
/// deriving per-index deterministic sub-seeds.
std::uint64_t SplitMix64(std::uint64_t& state);

}  // namespace lrm::rng

#endif  // LRM_RNG_ENGINE_H_
