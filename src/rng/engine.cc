#include "rng/engine.h"

namespace lrm::rng {

namespace {

inline std::uint64_t RotL(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Engine::Engine(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = SplitMix64(sm);
  }
}

std::uint64_t Engine::Next() {
  const std::uint64_t result = RotL(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

double Engine::NextDouble() {
  // Take the top 53 bits; 2^-53 spacing covers [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

Engine Engine::Split() {
  // Seed the child from two parent draws folded through SplitMix64 so the
  // child stream is decorrelated from the parent's future output.
  std::uint64_t s = Next();
  std::uint64_t mixed = SplitMix64(s) ^ Next();
  return Engine(mixed);
}

void Engine::Jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ULL << b)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      Next();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace lrm::rng
