#include "rng/distributions.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace lrm::rng {

double SampleUniform(Engine& engine, double lo, double hi) {
  LRM_DCHECK(lo <= hi);
  return lo + (hi - lo) * engine.NextDouble();
}

std::int64_t SampleUniformInt(Engine& engine, std::int64_t lo,
                              std::int64_t hi) {
  LRM_CHECK(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(engine.Next());
  }
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit =
      std::numeric_limits<std::uint64_t>::max() -
      std::numeric_limits<std::uint64_t>::max() % range;
  std::uint64_t draw;
  do {
    draw = engine.Next();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % range);
}

bool SampleBernoulli(Engine& engine, double p) {
  LRM_DCHECK(p >= 0.0 && p <= 1.0);
  return engine.NextDouble() < p;
}

double SampleGaussian(Engine& engine) {
  // Marsaglia polar method; rejects ~21.5% of candidate pairs.
  while (true) {
    const double u = 2.0 * engine.NextDouble() - 1.0;
    const double v = 2.0 * engine.NextDouble() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double SampleLaplace(Engine& engine, double scale) {
  LRM_DCHECK(scale >= 0.0);
  if (scale == 0.0) return 0.0;
  // Inverse CDF: u uniform in (-1/2, 1/2],
  // x = -b * sgn(u) * ln(1 - 2|u|).
  const double u = engine.NextDouble() - 0.5;
  const double sign = (u >= 0.0) ? 1.0 : -1.0;
  const double magnitude = std::min(std::abs(u) * 2.0,
                                    1.0 - 1e-16);  // avoid log(0)
  return -scale * sign * std::log1p(-magnitude);
}

std::vector<double> SampleLaplaceVector(Engine& engine, std::size_t n,
                                        double scale) {
  std::vector<double> result(n);
  for (double& value : result) {
    value = SampleLaplace(engine, scale);
  }
  return result;
}

double SampleExponential(Engine& engine, double lambda) {
  LRM_DCHECK(lambda > 0.0);
  // 1 - NextDouble() is in (0, 1], so the log argument never hits zero.
  return -std::log(1.0 - engine.NextDouble()) / lambda;
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  LRM_CHECK(n >= 1);
  LRM_CHECK(exponent > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (std::size_t k = 1; k <= n; ++k) {
    total += std::pow(static_cast<double>(k), -exponent);
    cdf_[k - 1] = total;
  }
  for (double& value : cdf_) {
    value /= total;
  }
  cdf_.back() = 1.0;  // guard against accumulated rounding
}

std::size_t ZipfSampler::Sample(Engine& engine) const {
  const double u = engine.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin()) + 1;
}

double ZipfSampler::Pmf(std::size_t k) const {
  LRM_CHECK(k >= 1 && k <= cdf_.size());
  if (k == 1) return cdf_[0];
  return cdf_[k - 1] - cdf_[k - 2];
}

}  // namespace lrm::rng
