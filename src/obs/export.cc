#include "obs/export.h"

#include <chrono>
#include <cmath>
#include <sstream>
#include <utility>

#include "base/check.h"
#include "base/logging.h"

namespace lrm::obs {
namespace {

// Metric names are dotted identifiers by convention, but the exporter must
// not produce invalid JSON for a hostile name either.
void AppendJsonString(std::ostringstream* out, const std::string& s) {
  *out << '"';
  for (const char c : s) {
    switch (c) {
      case '"':
        *out << "\\\"";
        break;
      case '\\':
        *out << "\\\\";
        break;
      case '\n':
        *out << "\\n";
        break;
      case '\t':
        *out << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out << buf;
        } else {
          *out << c;
        }
    }
  }
  *out << '"';
}

// JSON has no NaN/Inf literals; render them as null.
void AppendJsonNumber(std::ostringstream* out, double value) {
  if (std::isfinite(value)) {
    *out << value;
  } else {
    *out << "null";
  }
}

void AppendHistogramJson(std::ostringstream* out,
                         const HistogramSnapshot& h) {
  *out << "{\"count\": " << h.count << ", \"sum\": ";
  AppendJsonNumber(out, h.sum);
  *out << ", \"min\": ";
  AppendJsonNumber(out, h.min);
  *out << ", \"max\": ";
  AppendJsonNumber(out, h.max);
  *out << ", \"mean\": ";
  AppendJsonNumber(out, h.Mean());
  *out << ", \"p50\": ";
  AppendJsonNumber(out, h.Quantile(0.50));
  *out << ", \"p90\": ";
  AppendJsonNumber(out, h.Quantile(0.90));
  *out << ", \"p99\": ";
  AppendJsonNumber(out, h.Quantile(0.99));
  *out << ", \"edges\": [";
  for (std::size_t i = 0; i < h.edges.size(); ++i) {
    if (i > 0) *out << ", ";
    AppendJsonNumber(out, h.edges[i]);
  }
  *out << "], \"bucket_counts\": [";
  for (std::size_t i = 0; i < h.counts.size(); ++i) {
    if (i > 0) *out << ", ";
    *out << h.counts[i];
  }
  *out << "]}";
}

}  // namespace

std::string ToText(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  out.precision(6);
  for (const auto& [name, value] : snapshot.counters) {
    out << "counter   " << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out << "gauge     " << name << ' ' << value << '\n';
  }
  for (const auto& [name, h] : snapshot.histograms) {
    out << "histogram " << name << " count=" << h.count;
    if (h.count > 0) {
      out << " mean=" << h.Mean() << " min=" << h.min << " max=" << h.max
          << " p50=" << h.Quantile(0.50) << " p90=" << h.Quantile(0.90)
          << " p99=" << h.Quantile(0.99);
    }
    out << '\n';
  }
  return out.str();
}

std::string ToJson(const RegistrySnapshot& snapshot) {
  std::ostringstream out;
  out.precision(17);
  out << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snapshot.counters) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(&out, name);
    out << ": " << value;
  }
  out << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snapshot.gauges) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(&out, name);
    out << ": ";
    AppendJsonNumber(&out, value);
  }
  out << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snapshot.histograms) {
    if (!first) out << ", ";
    first = false;
    AppendJsonString(&out, name);
    out << ": ";
    AppendHistogramJson(&out, h);
  }
  out << "}}";
  return out.str();
}

PeriodicReporter::PeriodicReporter(const MetricRegistry* registry,
                                   PeriodicReporterOptions options)
    : registry_(registry), options_(std::move(options)) {
  LRM_CHECK(registry_ != nullptr);
  LRM_CHECK(std::isfinite(options_.period_seconds) &&
            options_.period_seconds > 0.0);
  if (!options_.format) options_.format = ToText;
  if (!options_.sink) {
    options_.sink = [](const std::string& report) {
      LRM_LOG_INFO << "metrics report\n" << report;
    };
  }
  thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lock(mu_);
    const auto period = std::chrono::duration<double>(
        options_.period_seconds);
    while (!stop_) {
      if (cv_.wait_for(lock, period, [this] { return stop_; })) break;
      lock.unlock();
      ReportNow();
      lock.lock();
    }
  });
}

PeriodicReporter::~PeriodicReporter() { Stop(); }

void PeriodicReporter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stop_ = true;
    stopped_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  if (options_.report_on_stop) ReportNow();
}

void PeriodicReporter::ReportNow() const {
  options_.sink(options_.format(registry_->Snapshot()));
  reports_emitted_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace lrm::obs
