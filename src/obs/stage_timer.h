// RAII stage-timing span: times a scope into a Histogram and (optionally)
// counts entries into a Counter. Null metric pointers make the span a
// no-op, so instrumentation sites stay unconditional — a component built
// without a registry simply passes nullptr through and pays two branch
// instructions.
//
// Stages form a hierarchy by naming convention, not by runtime nesting:
// "service.serve_seconds" encloses "service.prepare_seconds" and
// "service.answer_seconds", which enclose "alm.iteration_seconds" — see
// the span table in src/service/README.md.

#ifndef LRM_OBS_STAGE_TIMER_H_
#define LRM_OBS_STAGE_TIMER_H_

#include "base/timer.h"
#include "obs/metrics.h"

namespace lrm::obs {

/// \brief Times its own lifetime into `histogram` (seconds). Records
/// exactly once: at destruction, or earlier via Stop(). Movable-from
/// nothing, copyable-from nothing — it is a scope marker.
class ScopedStageTimer {
 public:
  /// `entered`, when given, is incremented immediately — a stage-entry
  /// counter snapshot readers can compare against the histogram count to
  /// see how many spans are currently in flight.
  explicit ScopedStageTimer(Histogram* histogram,
                            Counter* entered = nullptr)
      : histogram_(histogram) {
    if (entered != nullptr) entered->Increment();
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  ~ScopedStageTimer() { Stop(); }

  /// Records the elapsed span now (idempotent) and returns the elapsed
  /// seconds, so call sites that also report the duration elsewhere
  /// measure it exactly once.
  double Stop() {
    const double elapsed = timer_.ElapsedSeconds();
    if (!done_) {
      done_ = true;
      if (histogram_ != nullptr) histogram_->Record(elapsed);
    }
    return elapsed;
  }

  /// Abandons the span: nothing is recorded at destruction. For paths
  /// that turn out not to be the stage they started as (e.g. a request
  /// refused at admission should not pollute the serve histogram).
  void Cancel() { done_ = true; }

  /// Elapsed seconds so far without recording anything.
  double ElapsedSeconds() const { return timer_.ElapsedSeconds(); }

 private:
  Histogram* histogram_;
  WallTimer timer_;
  bool done_ = false;
};

}  // namespace lrm::obs

#endif  // LRM_OBS_STAGE_TIMER_H_
