// In-process metrics: named counters, gauges, and log-bucketed latency
// histograms behind a MetricRegistry.
//
// Design constraints (this substrate sits on the service request path):
//
//   * The hot path is lock-free. Counter::Add and Histogram::Record are a
//     handful of relaxed atomic operations — never a mutex — so recording a
//     latency sample cannot contend with the admission path the way the old
//     copy-the-struct-under-the-service-mutex counters did.
//   * Histograms shard their buckets per thread. Each recording thread is
//     assigned (round-robin, on first touch) one of kHistogramShards shard
//     slots; threads sharing a slot still only contend on atomic adds.
//     Snapshot() merges the shards, so a merged histogram's total count is
//     exactly the number of Record() calls that happened-before the
//     snapshot.
//   * Metrics are created once and never removed: the registry hands out
//     stable pointers its callers cache at wiring time, so steady-state
//     recording never touches the registry mutex either.
//
// Quantiles are estimated from the log-spaced bucket boundaries by linear
// interpolation inside the bucket containing the requested rank; the
// estimate is always inside that bucket, so its error against the exact
// sorted-sample percentile is at most one bucket width (~`growth`-factor
// relative error). That is the precision contract bench_service's p50/p99
// and the latency gates in compare_benchmarks.py rely on.
//
// Stage timing spans are layered on top in stage_timer.h; text/JSON export
// and the periodic reporter live in export.h.

#ifndef LRM_OBS_METRICS_H_
#define LRM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lrm::obs {

/// \brief Monotonically increasing counter. All operations are relaxed
/// atomics: safe from any thread, never blocking.
class Counter {
 public:
  void Increment() { Add(1); }
  void Add(std::int64_t n) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// \brief Last-write-wins instantaneous value (queue depth, cache size).
class Gauge {
 public:
  void Set(double value) {
    value_.store(value, std::memory_order_relaxed);
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Histogram bucket layout: `buckets` finite buckets with
/// geometrically growing upper edges edge[i] = min_value·growthⁱ, plus one
/// overflow bucket. Bucket i spans (edge[i−1], edge[i]] with edge[−1] = 0;
/// values ≤ min_value land in bucket 0, values beyond the last edge in the
/// overflow bucket. The defaults cover 1 µs … ~9 min at 2× resolution —
/// tuned for latency in seconds, the registry's dominant unit.
struct HistogramOptions {
  double min_value = 1e-6;
  double growth = 2.0;
  int buckets = 29;
};

/// \brief One merged, immutable view of a histogram. Cheap value type.
struct HistogramSnapshot {
  /// Upper edges of the finite buckets (size = options.buckets).
  std::vector<double> edges;
  /// Per-bucket counts, size edges.size() + 1; the last entry is the
  /// overflow bucket.
  std::vector<std::int64_t> counts;
  std::int64_t count = 0;
  double sum = 0.0;
  /// Exact extremes of the recorded samples (not bucket edges). When the
  /// snapshot is empty min > max.
  double min = 0.0;
  double max = 0.0;

  bool empty() const { return count == 0; }

  /// Arithmetic mean of the recorded samples (exact — from sum/count, not
  /// buckets). NaN when empty.
  double Mean() const;

  /// The q-quantile (q in [0, 1]) estimated from the buckets: the rank
  /// q·(count−1) — the same linear-interpolation convention as
  /// eval::Percentile — is located in its bucket and linearly interpolated
  /// across that bucket's span, clamped to [min, max]. The estimate lies
  /// within the bucket holding the true order statistic, so the error
  /// against an exact sorted-sample percentile is at most that bucket's
  /// width. NaN when empty.
  double Quantile(double q) const;

  /// Width of the bucket that Quantile(q) falls in — the quantile
  /// estimation error bound at q. NaN when empty.
  double QuantileErrorBound(double q) const;

  /// The samples recorded between `earlier` and this snapshot, as a
  /// snapshot: counts/count/sum subtract. `earlier` must be an older
  /// snapshot of the SAME histogram. min/max cannot be subtracted, so the
  /// delta's extremes are widened to the edges of its outermost non-empty
  /// buckets (clamped to this snapshot's exact extremes) — quantile error
  /// stays ≤ one bucket width. This is how an interval p50/p99 (periodic
  /// reports, bench arms that exclude warmup) is derived from cumulative
  /// histograms.
  HistogramSnapshot DeltaSince(const HistogramSnapshot& earlier) const;
};

/// \brief Log-bucketed, thread-sharded histogram. Record() is lock-free;
/// Snapshot() merges the shards.
class Histogram {
 public:
  explicit Histogram(HistogramOptions options = {});
  ~Histogram();  // out of line: Shard is incomplete here

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Records one sample: a relaxed atomic add on this thread's shard.
  /// NaN samples are dropped (counted in nan_dropped); negative samples
  /// clamp into the first bucket (min/max still record the true value).
  void Record(double value);

  HistogramSnapshot Snapshot() const;

  /// NaN samples dropped by Record (a recording-site bug, never silent).
  std::int64_t nan_dropped() const {
    return nan_dropped_.load(std::memory_order_relaxed);
  }

  const std::vector<double>& edges() const { return edges_; }

 private:
  struct Shard;

  static constexpr int kShards = 8;

  std::vector<double> edges_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> nan_dropped_{0};
};

/// \brief Everything a registry held at one instant. std::map so exports
/// and test expectations see a deterministic (sorted) order.
struct RegistrySnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;
};

/// \brief Owner of named metrics. Lookup-or-create takes a mutex; the
/// returned pointers are stable for the registry's lifetime, so callers
/// resolve them once at wiring time and record lock-free afterwards.
///
/// Names are dotted paths ("service.serve_seconds"); the convention — and
/// the stage-span hierarchy the service registers — is documented in
/// src/service/README.md.
class MetricRegistry {
 public:
  MetricRegistry() = default;
  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  /// Returns the named metric, creating it on first use. A histogram's
  /// options only apply at creation; later callers get the existing
  /// instance regardless of the options they pass.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       const HistogramOptions& options = {});

  /// Point-in-time view of every metric (histogram shards merged).
  RegistrySnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace lrm::obs

#endif  // LRM_OBS_METRICS_H_
