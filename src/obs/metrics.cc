#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "base/check.h"

namespace lrm::obs {
namespace {

// Round-robin shard assignment: each thread gets a stable slot on first
// touch. Modulo happens at use so one process-wide counter serves every
// histogram.
std::size_t ThisThreadSlot() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed);
  return slot;
}

// Relaxed CAS add for atomic doubles (no fetch_add for FP in C++17).
void AtomicAdd(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(current, current + value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value < current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double current = target->load(std::memory_order_relaxed);
  while (value > current &&
         !target->compare_exchange_weak(current, value,
                                        std::memory_order_relaxed)) {
  }
}

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

}  // namespace

// One shard: a private copy of the bucket array plus sum/min/max, so
// threads mapped to different shards never touch the same cache lines on
// the Record path. Merged (in fixed shard order) by Snapshot().
struct Histogram::Shard {
  explicit Shard(std::size_t buckets)
      : counts(new std::atomic<std::int64_t>[buckets]) {
    for (std::size_t i = 0; i < buckets; ++i) {
      counts[i].store(0, std::memory_order_relaxed);
    }
  }
  std::unique_ptr<std::atomic<std::int64_t>[]> counts;
  std::atomic<double> sum{0.0};
  std::atomic<double> min{kInf};
  std::atomic<double> max{-kInf};
};

Histogram::Histogram(HistogramOptions options) {
  LRM_CHECK_GT(options.min_value, 0.0);
  LRM_CHECK_GT(options.growth, 1.0);
  LRM_CHECK_GT(options.buckets, 0);
  edges_.reserve(options.buckets);
  double edge = options.min_value;
  for (int i = 0; i < options.buckets; ++i) {
    edges_.push_back(edge);
    edge *= options.growth;
  }
  shards_.reserve(kShards);
  for (int s = 0; s < kShards; ++s) {
    shards_.push_back(std::make_unique<Shard>(edges_.size() + 1));
  }
}

Histogram::~Histogram() = default;

void Histogram::Record(double value) {
  if (std::isnan(value)) {
    nan_dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First bucket whose upper edge covers the value; past-the-end = the
  // overflow bucket. ~5 comparisons over a ~30-entry array — cheaper and
  // exactly boundary-consistent vs. a log() followed by fix-ups.
  const std::size_t bucket =
      std::lower_bound(edges_.begin(), edges_.end(), value) - edges_.begin();
  Shard& shard = *shards_[ThisThreadSlot() % kShards];
  shard.counts[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(&shard.sum, value);
  AtomicMin(&shard.min, value);
  AtomicMax(&shard.max, value);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.edges = edges_;
  snapshot.counts.assign(edges_.size() + 1, 0);
  snapshot.min = kInf;
  snapshot.max = -kInf;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (std::size_t i = 0; i < snapshot.counts.size(); ++i) {
      snapshot.counts[i] +=
          shard->counts[i].load(std::memory_order_relaxed);
    }
    snapshot.sum += shard->sum.load(std::memory_order_relaxed);
    snapshot.min =
        std::min(snapshot.min, shard->min.load(std::memory_order_relaxed));
    snapshot.max =
        std::max(snapshot.max, shard->max.load(std::memory_order_relaxed));
  }
  for (const std::int64_t c : snapshot.counts) snapshot.count += c;
  if (snapshot.count == 0) {
    snapshot.min = 0.0;
    snapshot.max = 0.0;
    snapshot.sum = 0.0;
  }
  return snapshot;
}

double HistogramSnapshot::Mean() const {
  return count > 0 ? sum / static_cast<double>(count) : kNaN;
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0) return kNaN;
  q = std::min(std::max(q, 0.0), 1.0);
  // The same rank convention as eval::Percentile / numpy: the q-quantile
  // of N samples sits at fractional order statistic q·(N−1).
  const double rank = q * static_cast<double>(count - 1);
  std::int64_t before = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double last_in_bucket =
        static_cast<double>(before + counts[i] - 1);
    if (rank <= last_in_bucket) {
      const double lower = i == 0 ? 0.0 : edges[i - 1];
      const double upper = i < edges.size() ? edges[i] : max;
      // Linear interpolation across the bucket by rank position: sample
      // j of c (0-based) sits at lower + (j+1)/c · width. Stays inside
      // (lower, upper], hence within one bucket width of the true order
      // statistic; the [min, max] clamp sharpens the edge buckets.
      const double position =
          (rank - static_cast<double>(before) + 1.0) /
          static_cast<double>(counts[i]);
      const double estimate = lower + position * (upper - lower);
      return std::min(std::max(estimate, min), max);
    }
    before += counts[i];
  }
  return max;
}

double HistogramSnapshot::QuantileErrorBound(double q) const {
  if (count == 0) return kNaN;
  q = std::min(std::max(q, 0.0), 1.0);
  const double rank = q * static_cast<double>(count - 1);
  std::int64_t before = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    if (rank <= static_cast<double>(before + counts[i] - 1)) {
      const double lower = i == 0 ? 0.0 : edges[i - 1];
      const double upper = i < edges.size() ? edges[i] : max;
      return upper - lower;
    }
    before += counts[i];
  }
  return edges.empty() ? 0.0 : max - edges.back();
}

HistogramSnapshot HistogramSnapshot::DeltaSince(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot delta;
  delta.edges = edges;
  delta.counts.assign(counts.size(), 0);
  LRM_CHECK_EQ(earlier.counts.size(), counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    delta.counts[i] = counts[i] - earlier.counts[i];
    LRM_CHECK_GE(delta.counts[i], 0);
    delta.count += delta.counts[i];
  }
  delta.sum = sum - earlier.sum;
  if (delta.count == 0) return delta;
  // Exact per-interval extremes are unrecoverable from cumulative
  // snapshots; bound them by the outermost non-empty delta buckets,
  // clamped to the cumulative extremes.
  std::size_t first = 0;
  while (delta.counts[first] == 0) ++first;
  std::size_t last = delta.counts.size() - 1;
  while (delta.counts[last] == 0) --last;
  delta.min = std::max(first == 0 ? 0.0 : edges[first - 1], min);
  delta.max = std::min(last < edges.size() ? edges[last] : max, max);
  return delta;
}

Counter* MetricRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricRegistry::histogram(const std::string& name,
                                     const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(options);
  return slot.get();
}

RegistrySnapshot MetricRegistry::Snapshot() const {
  RegistrySnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace(name, counter->value());
  }
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace(name, gauge->value());
  }
  for (const auto& [name, histogram] : histograms_) {
    snapshot.histograms.emplace(name, histogram->Snapshot());
  }
  return snapshot;
}

}  // namespace lrm::obs
