// Snapshot exporters (text and JSON) and the periodic reporter thread.
//
// Both exporters render a RegistrySnapshot — call MetricRegistry::Snapshot()
// (or HistogramSnapshot::DeltaSince for interval views) and hand the result
// over; they never touch live metrics. Formats are documented with examples
// in src/service/README.md (observability section).

#ifndef LRM_OBS_EXPORT_H_
#define LRM_OBS_EXPORT_H_

#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.h"

namespace lrm::obs {

/// \brief Human-oriented text rendering, one metric per line:
///
///   counter   service.requests_admitted 128
///   gauge     service.in_flight 3
///   histogram service.serve_seconds count=128 mean=0.0021 min=0.0018
///       max=0.0102 p50=0.0020 p90=0.0024 p99=0.0087
std::string ToText(const RegistrySnapshot& snapshot);

/// \brief Machine-oriented JSON rendering:
///
///   {"counters": {...}, "gauges": {...},
///    "histograms": {"service.serve_seconds": {
///        "count": N, "sum": s, "min": m, "max": M, "mean": µ,
///        "p50": ..., "p90": ..., "p99": ...,
///        "edges": [...], "bucket_counts": [...]}}}
///
/// edges are the finite-bucket upper bounds; bucket_counts has one extra
/// trailing entry (the overflow bucket). Non-finite numbers render as null
/// (JSON has no NaN/Inf).
std::string ToJson(const RegistrySnapshot& snapshot);

/// \brief Options for PeriodicReporter.
struct PeriodicReporterOptions {
  /// Interval between reports. Must be positive and finite.
  double period_seconds = 60.0;
  /// Receives each rendered report. Defaults to the process log at INFO
  /// level (visible once SetLogLevel(kInfo) or lower).
  std::function<void(const std::string&)> sink;
  /// Renders snapshots; defaults to ToText.
  std::function<std::string(const RegistrySnapshot&)> format;
  /// Emit one last report from Stop()/the destructor, so a short-lived
  /// process still reports its final state.
  bool report_on_stop = true;
};

/// \brief Background thread that snapshots a registry every
/// period_seconds and hands the rendered report to the sink. Stop() (and
/// the destructor) joins the thread; the registry must outlive the
/// reporter.
class PeriodicReporter {
 public:
  PeriodicReporter(const MetricRegistry* registry,
                   PeriodicReporterOptions options = {});
  ~PeriodicReporter();

  PeriodicReporter(const PeriodicReporter&) = delete;
  PeriodicReporter& operator=(const PeriodicReporter&) = delete;

  /// Stops and joins the reporter thread. Idempotent.
  void Stop();

  /// Snapshots, renders and emits one report immediately (also callable
  /// after Stop()).
  void ReportNow() const;

  /// Reports emitted so far (periodic + ReportNow + the stop report).
  std::int64_t reports_emitted() const {
    return reports_emitted_.load(std::memory_order_relaxed);
  }

 private:
  const MetricRegistry* registry_;
  PeriodicReporterOptions options_;

  mutable std::atomic<std::int64_t> reports_emitted_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace lrm::obs

#endif  // LRM_OBS_EXPORT_H_
