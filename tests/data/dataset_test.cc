#include "data/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace lrm::data {
namespace {

using linalg::Index;

TEST(DatasetTest, KindNamesMatchPaper) {
  EXPECT_EQ(DatasetKindName(DatasetKind::kSearchLogs), "Search Logs");
  EXPECT_EQ(DatasetKindName(DatasetKind::kNetTrace), "Net Trace");
  EXPECT_EQ(DatasetKindName(DatasetKind::kSocialNetwork), "Social Network");
}

TEST(DatasetTest, NativeSizesMatchPaper) {
  EXPECT_EQ(NativeDatasetSize(DatasetKind::kSearchLogs), 65536);
  EXPECT_EQ(NativeDatasetSize(DatasetKind::kNetTrace), 32768);
  EXPECT_EQ(NativeDatasetSize(DatasetKind::kSocialNetwork), 11342);
}

class DatasetGeneratorTest : public ::testing::TestWithParam<DatasetKind> {};

TEST_P(DatasetGeneratorTest, CountsAreNonNegativeAndFinite) {
  const Dataset d = GenerateDataset(GetParam(), 2048, 1);
  ASSERT_EQ(d.size(), 2048);
  for (Index i = 0; i < d.size(); ++i) {
    EXPECT_TRUE(std::isfinite(d.counts[i]));
    EXPECT_GE(d.counts[i], 0.0);
  }
}

TEST_P(DatasetGeneratorTest, NotAllZero) {
  const Dataset d = GenerateDataset(GetParam(), 1024, 2);
  EXPECT_GT(linalg::Sum(d.counts), 0.0);
}

TEST_P(DatasetGeneratorTest, DeterministicBySeed) {
  const Dataset a = GenerateDataset(GetParam(), 512, 99);
  const Dataset b = GenerateDataset(GetParam(), 512, 99);
  EXPECT_TRUE(linalg::ApproxEqual(a.counts, b.counts, 0.0));
}

TEST_P(DatasetGeneratorTest, DifferentSeedsDiffer) {
  const Dataset a = GenerateDataset(GetParam(), 512, 1);
  const Dataset b = GenerateDataset(GetParam(), 512, 2);
  EXPECT_FALSE(linalg::ApproxEqual(a.counts, b.counts, 1e-9));
}

TEST_P(DatasetGeneratorTest, SquaredSumMatchesDefinition) {
  const Dataset d = GenerateDataset(GetParam(), 256, 3);
  double expected = 0.0;
  for (Index i = 0; i < d.size(); ++i) {
    expected += d.counts[i] * d.counts[i];
  }
  EXPECT_DOUBLE_EQ(d.SquaredSum(), expected);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, DatasetGeneratorTest,
                         ::testing::Values(DatasetKind::kSearchLogs,
                                           DatasetKind::kNetTrace,
                                           DatasetKind::kSocialNetwork));

TEST(DatasetCharacterTest, NetTraceIsSparse) {
  const Dataset d = GenerateNetTrace(4096, 5);
  Index zeros = 0;
  for (Index i = 0; i < d.size(); ++i) {
    if (d.counts[i] == 0.0) ++zeros;
  }
  // ~65% of addresses are silent by construction.
  EXPECT_GT(zeros, d.size() / 3);
}

TEST(DatasetCharacterTest, SocialNetworkIsHeavyTailedDecreasing) {
  const Dataset d = GenerateSocialNetwork(1000, 7);
  // Power law: the first decile carries most of the mass.
  double head = 0.0, tail = 0.0;
  for (Index i = 0; i < 100; ++i) head += d.counts[i];
  for (Index i = 900; i < 1000; ++i) tail += d.counts[i];
  EXPECT_GT(head, 100.0 * (tail + 1.0));
}

TEST(DatasetCharacterTest, SearchLogsHasSeasonalStructure) {
  const Dataset d = GenerateSearchLogs(2048, 9);
  // Mean should sit near the generator baseline, not at zero.
  const double mean = linalg::Sum(d.counts) / static_cast<double>(d.size());
  EXPECT_GT(mean, 50.0);
}

TEST(MergeTest, PreservesTotalMass) {
  const Dataset d = GenerateSearchLogs(1000, 11);
  const StatusOr<Dataset> merged = MergeToDomainSize(d, 128);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), 128);
  EXPECT_NEAR(linalg::Sum(merged->counts), linalg::Sum(d.counts), 1e-6);
}

TEST(MergeTest, ExactDivisionMergesEvenly) {
  Dataset d{"unit", linalg::Vector{1.0, 2.0, 3.0, 4.0, 5.0, 6.0}};
  const StatusOr<Dataset> merged = MergeToDomainSize(d, 3);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(linalg::ApproxEqual(merged->counts,
                                  linalg::Vector{3.0, 7.0, 11.0}, 1e-12));
}

TEST(MergeTest, UnevenDivisionCoversAllEntries) {
  Dataset d{"unit", linalg::Vector{1.0, 1.0, 1.0, 1.0, 1.0}};
  const StatusOr<Dataset> merged = MergeToDomainSize(d, 2);
  ASSERT_TRUE(merged.ok());
  EXPECT_NEAR(linalg::Sum(merged->counts), 5.0, 1e-12);
}

TEST(MergeTest, IdentityWhenTargetEqualsSize) {
  Dataset d{"unit", linalg::Vector{1.0, 2.0, 3.0}};
  const StatusOr<Dataset> merged = MergeToDomainSize(d, 3);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(linalg::ApproxEqual(merged->counts, d.counts, 0.0));
}

TEST(MergeTest, RejectsBadTargets) {
  Dataset d{"unit", linalg::Vector{1.0, 2.0}};
  EXPECT_EQ(MergeToDomainSize(d, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(MergeToDomainSize(d, 3).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MergeTest, MergeToOneBucketSumsEverything) {
  const Dataset d = GenerateNetTrace(100, 13);
  const StatusOr<Dataset> merged = MergeToDomainSize(d, 1);
  ASSERT_TRUE(merged.ok());
  EXPECT_NEAR(merged->counts[0], linalg::Sum(d.counts), 1e-9);
}

}  // namespace
}  // namespace lrm::data
