// Property sweep of the domain-merging operator (paper §6's domain-size
// reduction): mass conservation, bucket-boundary monotonicity, and
// composition behaviour across arbitrary source/target size pairs.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "data/dataset.h"
#include "rng/distributions.h"
#include "rng/engine.h"

namespace lrm::data {
namespace {

using linalg::Index;

class MergePropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MergePropertyTest, MassIsConserved) {
  const auto [source, target] = GetParam();
  const Dataset d = GenerateNetTrace(source, 11);
  const StatusOr<Dataset> merged = MergeToDomainSize(d, target);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->size(), target);
  EXPECT_NEAR(linalg::Sum(merged->counts), linalg::Sum(d.counts),
              1e-9 * (1.0 + std::abs(linalg::Sum(d.counts))));
}

TEST_P(MergePropertyTest, BucketsAreContiguousPrefixSums) {
  // The prefix sums of the merged vector must be a subsequence of the
  // source prefix sums — merging only ever fuses *consecutive* counts.
  const auto [source, target] = GetParam();
  const Dataset d = GenerateSearchLogs(source, 13);
  const StatusOr<Dataset> merged = MergeToDomainSize(d, target);
  ASSERT_TRUE(merged.ok());

  std::vector<double> source_prefix(static_cast<std::size_t>(source) + 1,
                                    0.0);
  for (Index i = 0; i < source; ++i) {
    source_prefix[static_cast<std::size_t>(i) + 1] =
        source_prefix[static_cast<std::size_t>(i)] + d.counts[i];
  }
  double running = 0.0;
  for (Index b = 0; b < target; ++b) {
    running += merged->counts[b];
    // Find `running` among the source prefix sums (within rounding).
    bool found = false;
    for (double p : source_prefix) {
      if (std::abs(p - running) <= 1e-6 * (1.0 + std::abs(p))) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "bucket " << b;
  }
}

TEST_P(MergePropertyTest, NonNegativityIsPreserved) {
  const auto [source, target] = GetParam();
  const Dataset d = GenerateSocialNetwork(source, 17);
  const StatusOr<Dataset> merged = MergeToDomainSize(d, target);
  ASSERT_TRUE(merged.ok());
  for (Index i = 0; i < merged->size(); ++i) {
    EXPECT_GE(merged->counts[i], 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SizePairs, MergePropertyTest,
    ::testing::Values(std::make_tuple(100, 100), std::make_tuple(100, 64),
                      std::make_tuple(100, 7), std::make_tuple(1000, 128),
                      std::make_tuple(33, 32), std::make_tuple(1024, 1),
                      std::make_tuple(11342, 512)));

TEST(MergeCompositionTest, TwoStepMergeEqualsDirectWhenAligned) {
  // Merging 1024 → 256 → 64 equals 1024 → 64 when every stage divides
  // evenly (bucket boundaries align).
  const Dataset d = GenerateNetTrace(1024, 19);
  const StatusOr<Dataset> two_a = MergeToDomainSize(d, 256);
  ASSERT_TRUE(two_a.ok());
  const StatusOr<Dataset> two_b = MergeToDomainSize(*two_a, 64);
  const StatusOr<Dataset> direct = MergeToDomainSize(d, 64);
  ASSERT_TRUE(two_b.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_TRUE(linalg::ApproxEqual(two_b->counts, direct->counts, 1e-9));
}

}  // namespace
}  // namespace lrm::data
