// BudgetManager: sequential composition accounting with typed refusals.

#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <thread>
#include <vector>

#include "service/budget_manager.h"

namespace lrm::service {
namespace {

TEST(BudgetManagerTest, RegisterChargeRemaining) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  EXPECT_EQ(budget.tenant_count(), 1);
  EXPECT_DOUBLE_EQ(budget.Remaining("acme").value(), 1.0);

  ASSERT_TRUE(budget.Charge("acme", 0.25).ok());
  ASSERT_TRUE(budget.Charge("acme", 0.25).ok());
  EXPECT_DOUBLE_EQ(budget.Spent("acme").value(), 0.5);
  EXPECT_DOUBLE_EQ(budget.Remaining("acme").value(), 0.5);
}

TEST(BudgetManagerTest, RegistrationValidatesBudget) {
  BudgetManager budget;
  EXPECT_EQ(budget.RegisterTenant("a", 0.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(budget.RegisterTenant("a", -1.0).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(
      budget.RegisterTenant("a", std::numeric_limits<double>::infinity())
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      budget.RegisterTenant("a", std::numeric_limits<double>::quiet_NaN())
          .code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(budget.tenant_count(), 0);
}

TEST(BudgetManagerTest, ReRegistrationRefused) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  ASSERT_TRUE(budget.Charge("acme", 0.9).ok());
  // A re-register must not reset a nearly exhausted tenant.
  EXPECT_EQ(budget.RegisterTenant("acme", 100.0).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_DOUBLE_EQ(budget.Remaining("acme").value(), 0.1);
}

TEST(BudgetManagerTest, UnknownTenantIsFailedPrecondition) {
  BudgetManager budget;
  EXPECT_EQ(budget.Charge("ghost", 0.1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(budget.Remaining("ghost").status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(budget.Spent("ghost").status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(BudgetManagerTest, InvalidEpsilonRejected) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  const double bad[] = {0.0, -0.5,
                        std::numeric_limits<double>::quiet_NaN(),
                        std::numeric_limits<double>::infinity()};
  for (const double epsilon : bad) {
    EXPECT_EQ(budget.Charge("acme", epsilon).code(),
              StatusCode::kInvalidArgument)
        << epsilon;
  }
  EXPECT_DOUBLE_EQ(budget.Spent("acme").value(), 0.0);
}

TEST(BudgetManagerTest, OverdrawIsTypedAndLeavesLedgerUntouched) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  ASSERT_TRUE(budget.Charge("acme", 0.8).ok());

  const Status refusal = budget.Charge("acme", 0.5);
  EXPECT_EQ(refusal.code(), StatusCode::kResourceExhausted);
  // No partial spend: the failed charge cost nothing.
  EXPECT_DOUBLE_EQ(budget.Spent("acme").value(), 0.8);
  // A smaller request that does fit still succeeds afterwards.
  EXPECT_TRUE(budget.Charge("acme", 0.2).ok());
}

TEST(BudgetManagerTest, ExactExhaustionIsAllowed) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  // Ten charges of 0.1 must sum to exactly the budget despite float
  // round-off in the accumulator.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(budget.Charge("acme", 0.1).ok()) << i;
  }
  EXPECT_EQ(budget.Charge("acme", 0.01).code(),
            StatusCode::kResourceExhausted);
}

TEST(BudgetManagerTest, RefundRestoresAndOverRefundIsRefused) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  ASSERT_TRUE(budget.Charge("acme", 0.6).ok());
  ASSERT_TRUE(budget.Refund("acme", 0.6).ok());
  EXPECT_DOUBLE_EQ(budget.Spent("acme").value(), 0.0);
  EXPECT_EQ(budget.over_refund_count(), 0);
  // Refunding more than was spent is a charge/refund pairing bug in the
  // caller: typed refusal, ledger untouched, incident counted. The old
  // silent clamp-at-zero would have erased the 0.2 of recorded spend.
  ASSERT_TRUE(budget.Charge("acme", 0.2).ok());
  const Status refused = budget.Refund("acme", 5.0);
  EXPECT_EQ(refused.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(refused.message().find("exceeds recorded spend"),
            std::string::npos)
      << refused.message();
  EXPECT_DOUBLE_EQ(budget.Spent("acme").value(), 0.2);
  EXPECT_EQ(budget.over_refund_count(), 1);
  // A correctly paired refund still works afterwards.
  ASSERT_TRUE(budget.Refund("acme", 0.2).ok());
  EXPECT_DOUBLE_EQ(budget.Remaining("acme").value(), 1.0);
}

TEST(BudgetManagerTest, ExactChargeRefundPairSurvivesAccumulatedDrift) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  // 0.1 is not representable in binary; after ten charges the accumulator
  // holds round-off. Refunding exactly what was charged must still
  // succeed — the refusal threshold carries the same 1e-12·budget slack
  // the Charge path uses, so FP drift never turns a correct pairing into
  // a FAILED_PRECONDITION.
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(budget.Charge("acme", 0.1).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(budget.Refund("acme", 0.1).ok()) << i;
  }
  EXPECT_EQ(budget.over_refund_count(), 0);
  EXPECT_DOUBLE_EQ(budget.Remaining("acme").value(), 1.0);
}

TEST(BudgetManagerTest, ConcurrentRefundsAndChargesConserveTheLedger) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 10.0).ok());
  // Half the threads run the service's failure path (charge, then refund
  // the same ε), half run the success path (charge only). However the
  // operations interleave, the end state must be exactly the successful
  // charges: refunds may never mint budget and never erase another
  // thread's spend.
  constexpr int kPairs = 4;
  constexpr int kRounds = 50;
  constexpr double kEpsilon = 0.01;
  std::atomic<int> kept{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2 * kPairs; ++t) {
    const bool refunder = (t % 2 == 0);
    threads.emplace_back([&budget, &kept, refunder] {
      for (int i = 0; i < kRounds; ++i) {
        if (!budget.Charge("acme", kEpsilon).ok()) continue;
        if (refunder) {
          ASSERT_TRUE(budget.Refund("acme", kEpsilon).ok());
        } else {
          ++kept;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_NEAR(budget.Spent("acme").value(), kept.load() * kEpsilon, 1e-9);
}

TEST(BudgetManagerTest, ConcurrentDoubleRefundsOnlyOneSucceeds) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  ASSERT_TRUE(budget.Charge("acme", 0.5).ok());
  // Many threads race to refund the one 0.5 charge several times over.
  // Exactly one refund can pair with the charge; every other attempt is a
  // counted FAILED_PRECONDITION refusal, and however the threads
  // interleave the ledger balances instead of silently clamping.
  constexpr int kThreads = 8;
  constexpr int kAttempts = 20;
  std::atomic<int> succeeded{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&budget, &succeeded] {
      for (int i = 0; i < kAttempts; ++i) {
        const Status status = budget.Refund("acme", 0.5);
        if (status.ok()) {
          ++succeeded;
        } else {
          ASSERT_EQ(status.code(), StatusCode::kFailedPrecondition);
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(succeeded.load(), 1);
  EXPECT_EQ(budget.over_refund_count(), kThreads * kAttempts - 1);
  EXPECT_DOUBLE_EQ(budget.Spent("acme").value(), 0.0);
  EXPECT_DOUBLE_EQ(budget.Remaining("acme").value(), 1.0);
}

TEST(BudgetManagerTest, RefundAfterExhaustionReopensTheLedger) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  ASSERT_TRUE(budget.Charge("acme", 1.0).ok());
  EXPECT_EQ(budget.Charge("acme", 0.1).code(),
            StatusCode::kResourceExhausted);
  // The service's failure path refunds an exhausted tenant: subsequent
  // charges that fit the restored headroom succeed again.
  ASSERT_TRUE(budget.Refund("acme", 0.4).ok());
  EXPECT_TRUE(budget.Charge("acme", 0.4).ok());
  EXPECT_EQ(budget.Charge("acme", 0.1).code(),
            StatusCode::kResourceExhausted);
}

TEST(BudgetManagerTest, ConcurrentChargesNeverJointlyOverdraw) {
  BudgetManager budget;
  ASSERT_TRUE(budget.RegisterTenant("acme", 1.0).ok());
  // 8 threads each try 10 charges of 0.025: 2.0 requested against a budget
  // of 1.0 — exactly 40 must succeed no matter the interleaving.
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&budget, &granted] {
      for (int i = 0; i < 10; ++i) {
        if (budget.Charge("acme", 0.025).ok()) ++granted;
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(granted.load(), 40);
  EXPECT_EQ(budget.Charge("acme", 0.025).code(),
            StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace lrm::service
