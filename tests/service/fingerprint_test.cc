// Workload fingerprinting: the cache key must identify the matrix exactly
// (shape + every coefficient bit) and nothing else — in particular not the
// workload's display name.

#include <gtest/gtest.h>

#include <unordered_map>

#include "base/check.h"
#include "linalg/matrix.h"
#include "service/fingerprint.h"
#include "workload/generators.h"

namespace lrm::service {
namespace {

workload::Workload MakeWorkload(const std::string& name,
                                std::uint64_t seed) {
  auto w = workload::GenerateWRange(8, 24, seed);
  LRM_CHECK(w.ok());
  return workload::Workload(name, w.value().matrix());
}

TEST(FingerprintTest, EqualMatricesAgreeRegardlessOfName) {
  const WorkloadFingerprint a = FingerprintWorkload(MakeWorkload("a", 1));
  const WorkloadFingerprint b =
      FingerprintWorkload(MakeWorkload("totally different name", 1));
  EXPECT_EQ(a, b);
  EXPECT_EQ(WorkloadFingerprintHash()(a), WorkloadFingerprintHash()(b));
}

TEST(FingerprintTest, DifferentMatricesDisagree) {
  const WorkloadFingerprint a = FingerprintWorkload(MakeWorkload("w", 1));
  const WorkloadFingerprint b = FingerprintWorkload(MakeWorkload("w", 2));
  EXPECT_FALSE(a == b);
}

TEST(FingerprintTest, SingleEntryFlipChangesDigest) {
  workload::Workload base = MakeWorkload("w", 3);
  linalg::Matrix perturbed = base.matrix();
  perturbed(3, 7) += 1e-15;  // least-significant-bit-scale change
  const WorkloadFingerprint a = FingerprintWorkload(base);
  const WorkloadFingerprint b =
      FingerprintWorkload(workload::Workload("w", std::move(perturbed)));
  EXPECT_FALSE(a == b);
}

TEST(FingerprintTest, ShapeIsPartOfTheKey) {
  // A 2x6 and a 3x4 matrix with identical storage must not collide.
  linalg::Matrix flat(2, 6);
  linalg::Matrix tall(3, 4);
  for (linalg::Index i = 0; i < 12; ++i) {
    flat(i / 6, i % 6) = static_cast<double>(i);
    tall(i / 4, i % 4) = static_cast<double>(i);
  }
  const WorkloadFingerprint a =
      FingerprintWorkload(workload::Workload("flat", std::move(flat)));
  const WorkloadFingerprint b =
      FingerprintWorkload(workload::Workload("tall", std::move(tall)));
  EXPECT_FALSE(a == b);
  EXPECT_EQ(a.rows, 2);
  EXPECT_EQ(a.cols, 6);
}

TEST(FingerprintTest, UsableAsUnorderedMapKey) {
  std::unordered_map<WorkloadFingerprint, int, WorkloadFingerprintHash> map;
  map[FingerprintWorkload(MakeWorkload("a", 1))] = 1;
  map[FingerprintWorkload(MakeWorkload("b", 1))] = 2;  // same matrix
  map[FingerprintWorkload(MakeWorkload("c", 9))] = 3;
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.at(FingerprintWorkload(MakeWorkload("z", 1))), 2);
}

TEST(FingerprintTest, ToStringMentionsShape) {
  const WorkloadFingerprint fp = FingerprintWorkload(MakeWorkload("w", 1));
  const std::string text = fp.ToString();
  EXPECT_NE(text.find("8x24"), std::string::npos) << text;
}

}  // namespace
}  // namespace lrm::service
