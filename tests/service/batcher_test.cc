// QueryBatcher: admission validation, per-(tenant, ε) grouping, and cut
// semantics. Batching across tenants (or across ε levels) must never
// happen — a batch is one release charged to one ledger.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <limits>

#include "linalg/vector.h"
#include "service/batcher.h"
#include "tests/support/matchers.h"

namespace lrm::service {
namespace {

using linalg::Index;
using linalg::Vector;

Vector UnitQuery(Index n, Index coordinate) {
  Vector q(n, 0.0);
  q[coordinate] = 1.0;
  return q;
}

QueryBatcher MakeBatcher(Index domain = 8, Index max_batch = 3) {
  return QueryBatcher(QueryBatcherOptions{domain, max_batch});
}

TEST(QueryBatcherTest, AddValidatesEpsilonShapeAndFiniteness) {
  QueryBatcher batcher = MakeBatcher();
  EXPECT_EQ(batcher.Add("t", 0.0, UnitQuery(8, 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(batcher
                .Add("t", std::numeric_limits<double>::quiet_NaN(),
                     UnitQuery(8, 0))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(batcher.Add("t", 0.5, UnitQuery(5, 0)).status().code(),
            StatusCode::kInvalidArgument);
  Vector poisoned = UnitQuery(8, 0);
  poisoned[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(batcher.Add("t", 0.5, std::move(poisoned)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(batcher.pending_queries(), 0);
}

TEST(QueryBatcherTest, TicketsNumberRowsInAdmissionOrder) {
  QueryBatcher batcher = MakeBatcher();
  const auto t0 = batcher.Add("t", 0.5, UnitQuery(8, 0));
  const auto t1 = batcher.Add("t", 0.5, UnitQuery(8, 1));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  EXPECT_EQ(t0->batch_sequence, t1->batch_sequence);
  EXPECT_EQ(t0->row, 0);
  EXPECT_EQ(t1->row, 1);
  EXPECT_EQ(batcher.pending_queries(), 2);
}

TEST(QueryBatcherTest, GroupCutsExactlyAtMaxBatchQueries) {
  QueryBatcher batcher = MakeBatcher(/*domain=*/8, /*max_batch=*/3);
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 0)).ok());
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 1)).ok());
  EXPECT_TRUE(batcher.TakeReady().empty());

  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 2)).ok());
  const auto ready = batcher.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].tenant, "t");
  EXPECT_DOUBLE_EQ(ready[0].epsilon, 0.5);
  ASSERT_NE(ready[0].workload, nullptr);
  EXPECT_EQ(ready[0].workload->num_queries(), 3);
  EXPECT_EQ(ready[0].workload->domain_size(), 8);
  // Row i of the batch matrix is the i-th admitted query.
  for (Index i = 0; i < 3; ++i) {
    EXPECT_VECTOR_NEAR(ready[0].workload->matrix().Row(i), UnitQuery(8, i),
                       0.0);
  }
  EXPECT_EQ(batcher.pending_queries(), 0);
}

TEST(QueryBatcherTest, TenantsAndEpsilonsNeverCoalesce) {
  QueryBatcher batcher = MakeBatcher(/*domain=*/8, /*max_batch=*/2);
  ASSERT_TRUE(batcher.Add("alice", 0.5, UnitQuery(8, 0)).ok());
  ASSERT_TRUE(batcher.Add("bob", 0.5, UnitQuery(8, 1)).ok());
  ASSERT_TRUE(batcher.Add("alice", 0.1, UnitQuery(8, 2)).ok());
  // Three groups of one query each: nothing reached max_batch.
  EXPECT_TRUE(batcher.TakeReady().empty());
  EXPECT_EQ(batcher.pending_queries(), 3);

  const auto all = batcher.Flush();
  ASSERT_EQ(all.size(), 3u);
  // Flush is ordered by group-creation sequence.
  EXPECT_EQ(all[0].tenant, "alice");
  EXPECT_DOUBLE_EQ(all[0].epsilon, 0.5);
  EXPECT_EQ(all[1].tenant, "bob");
  EXPECT_EQ(all[2].tenant, "alice");
  EXPECT_DOUBLE_EQ(all[2].epsilon, 0.1);
  EXPECT_LT(all[0].sequence, all[1].sequence);
  EXPECT_LT(all[1].sequence, all[2].sequence);
}

TEST(QueryBatcherTest, NearEqualEpsilonsCoalesceIntoOneGroup) {
  // Regression: grouping used to key on the exact double bit pattern, so
  // a tenant computing ε = 1.0 / 10 for one query and 0.1 for the next —
  // or accumulating ε in a loop — silently lost all batching (every query
  // became a singleton batch, a full prepare each). Keys are now
  // quantized to a 2^-40 relative grid.
  QueryBatcher batcher = MakeBatcher(/*domain=*/8, /*max_batch=*/3);
  double accumulated = 0.0;
  for (int i = 0; i < 10; ++i) accumulated += 0.01;  // 0.1 + ~1e-17 drift
  ASSERT_TRUE(batcher.Add("t", 1.0 / 10, UnitQuery(8, 0)).ok());
  ASSERT_TRUE(batcher.Add("t", 0.1, UnitQuery(8, 1)).ok());
  ASSERT_TRUE(batcher.Add("t", accumulated, UnitQuery(8, 2)).ok());
  const auto ready = batcher.TakeReady();
  ASSERT_EQ(ready.size(), 1u);
  EXPECT_EQ(ready[0].workload->num_queries(), 3);
  // The whole group is charged the MINIMUM member ε, so no member ever
  // exceeds the privacy loss it asked for.
  EXPECT_DOUBLE_EQ(ready[0].epsilon,
                   std::min({1.0 / 10, 0.1, accumulated}));
  EXPECT_LE(ready[0].epsilon, 0.1);
}

TEST(QueryBatcherTest, DistinctEpsilonsStillNeverCoalesce) {
  // The quantization grid is ~12 orders of magnitude finer than any
  // privacy-meaningful distinction: 0.1 vs 0.1000001 are different
  // privacy levels and must stay different groups.
  QueryBatcher batcher = MakeBatcher(/*domain=*/8, /*max_batch=*/2);
  ASSERT_TRUE(batcher.Add("t", 0.1, UnitQuery(8, 0)).ok());
  ASSERT_TRUE(batcher.Add("t", 0.1000001, UnitQuery(8, 1)).ok());
  EXPECT_TRUE(batcher.TakeReady().empty());
  EXPECT_EQ(batcher.pending_queries(), 2);
  const auto all = batcher.Flush();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_DOUBLE_EQ(all[0].epsilon, 0.1);
  EXPECT_DOUBLE_EQ(all[1].epsilon, 0.1000001);
}

TEST(QueryBatcherTest, TakeExpiredCutsOnlyGroupsPastTheLingerBound) {
  QueryBatcherOptions options{/*domain_size=*/8, /*max_batch_queries=*/10};
  options.max_linger_seconds = 0.5;
  QueryBatcher batcher(options);
  // TakeExpired takes `now` as a parameter, so the linger decision is
  // tested without sleeping: the group's clock started at Add time.
  const auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 0)).ok());
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 1)).ok());

  // Not yet: the group is younger than the bound.
  EXPECT_TRUE(batcher.TakeExpired(start).empty());
  EXPECT_EQ(batcher.pending_queries(), 2);

  // Well past the bound: the partial group is cut.
  const auto expired =
      batcher.TakeExpired(start + std::chrono::seconds(2));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].workload->num_queries(), 2);
  EXPECT_EQ(batcher.pending_queries(), 0);
}

TEST(QueryBatcherTest, LingerClockRestartsWithEachNewGroup) {
  QueryBatcherOptions options{/*domain_size=*/8, /*max_batch_queries=*/10};
  options.max_linger_seconds = 0.5;
  QueryBatcher batcher(options);
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 0)).ok());
  const auto later = std::chrono::steady_clock::now() +
                     std::chrono::seconds(2);
  ASSERT_EQ(batcher.TakeExpired(later).size(), 1u);
  // The same key starts a NEW group with a fresh linger clock: queries
  // added after a cut are not penalized by the old group's age.
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 1)).ok());
  EXPECT_TRUE(batcher.TakeExpired(std::chrono::steady_clock::now()).empty());
  EXPECT_EQ(batcher.pending_queries(), 1);
}

TEST(QueryBatcherTest, InfiniteLingerDisablesTimeBasedCuts) {
  QueryBatcher batcher = MakeBatcher(/*domain=*/8, /*max_batch=*/3);
  ASSERT_TRUE(batcher.Add("t", 0.5, UnitQuery(8, 0)).ok());
  // Default options: no linger bound, so even a far-future `now` cuts
  // nothing (a full group still would).
  EXPECT_TRUE(batcher
                  .TakeExpired(std::chrono::steady_clock::now() +
                               std::chrono::hours(24 * 365))
                  .empty());
  EXPECT_EQ(batcher.pending_queries(), 1);
}

TEST(QueryBatcherTest, SequenceAdvancesAcrossCuts) {
  QueryBatcher batcher = MakeBatcher(/*domain=*/8, /*max_batch=*/1);
  const auto t0 = batcher.Add("t", 0.5, UnitQuery(8, 0));
  ASSERT_EQ(batcher.TakeReady().size(), 1u);
  const auto t1 = batcher.Add("t", 0.5, UnitQuery(8, 1));
  ASSERT_TRUE(t0.ok());
  ASSERT_TRUE(t1.ok());
  // The same (tenant, ε) key starts a NEW batch after the cut.
  EXPECT_LT(t0->batch_sequence, t1->batch_sequence);
}

}  // namespace
}  // namespace lrm::service
