// AnswerService end-to-end: admission, budget charging/refusals/refunds,
// cache behavior surfaced per request, async submission, the single-query
// batching path, and seed-determinism of the released answers.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "linalg/vector.h"
#include "service/answer_service.h"
#include "tests/support/matchers.h"
#include "workload/generators.h"

namespace lrm::service {
namespace {

using linalg::Index;
using linalg::Vector;

constexpr Index kDomain = 24;

AnswerServiceOptions FastOptions(int num_threads = 2) {
  AnswerServiceOptions options;
  options.num_threads = num_threads;
  auto& d = options.cache.mechanism.decomposition;
  d.max_outer_iterations = 10;
  d.max_inner_iterations = 2;
  d.l_max_iterations = 8;
  d.polish_patience = 2;
  return options;
}

Vector ServiceData() {
  Vector data(kDomain);
  for (Index i = 0; i < kDomain; ++i) data[i] = 10.0 + i;
  return data;
}

std::shared_ptr<const workload::Workload> MakeWorkload(std::uint64_t seed) {
  auto w = workload::GenerateWRange(12, kDomain, seed);
  LRM_CHECK(w.ok());
  return std::make_shared<const workload::Workload>(std::move(w).value());
}

BatchAnswerRequest MakeRequest(const std::string& tenant, double epsilon,
                               std::uint64_t seed) {
  BatchAnswerRequest request;
  request.tenant = tenant;
  request.epsilon = epsilon;
  request.workload = MakeWorkload(seed);
  return request;
}

TEST(AnswerServiceTest, AnswerChargesAndReportsCacheBehavior) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  const auto first = service.Answer(MakeRequest("acme", 0.25, 1));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->answers.size(), 12);
  EXPECT_FALSE(first->cache_hit);
  EXPECT_DOUBLE_EQ(first->remaining_budget, 0.75);
  EXPECT_VECTOR_FINITE(first->answers);

  const auto second = service.Answer(MakeRequest("acme", 0.25, 1));
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_DOUBLE_EQ(second->remaining_budget, 0.5);
  EXPECT_GT(second->request_id, first->request_id);
  // The hit skipped the strategy search but still drew fresh noise.
  EXPECT_FALSE(
      test::VectorNearPred("a", "b", "0", first->answers, second->answers,
                           0.0));

  const AnswerServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_admitted, 2);
  EXPECT_EQ(stats.cache.hits, 1);
  EXPECT_EQ(stats.cache.misses, 1);
}

TEST(AnswerServiceTest, BudgetExhaustionIsTypedAndChargesNothing) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 0.3).ok());
  ASSERT_TRUE(service.Answer(MakeRequest("acme", 0.25, 1)).ok());

  const auto refused = service.Answer(MakeRequest("acme", 0.25, 1));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 0.05);
  EXPECT_EQ(service.stats().refused_budget, 1);
  EXPECT_EQ(service.stats().refused_validation, 0);

  // The typed refusal also surfaces through the async path, immediately.
  auto future = service.Submit(MakeRequest("acme", 0.25, 1));
  EXPECT_EQ(future.get().status().code(), StatusCode::kResourceExhausted);
}

TEST(AnswerServiceTest, AdmissionValidatesRequests) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  BatchAnswerRequest null_workload;
  null_workload.tenant = "acme";
  null_workload.epsilon = 0.1;
  EXPECT_EQ(service.Answer(null_workload).status().code(),
            StatusCode::kInvalidArgument);

  BatchAnswerRequest wrong_domain = MakeRequest("acme", 0.1, 1);
  auto small = workload::GenerateWRange(4, kDomain / 2, 1);
  ASSERT_TRUE(small.ok());
  wrong_domain.workload = std::make_shared<const workload::Workload>(
      std::move(small).value());
  EXPECT_EQ(service.Answer(wrong_domain).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ(service.Answer(MakeRequest("ghost", 0.1, 1)).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(service
                .Answer(MakeRequest(
                    "acme", std::numeric_limits<double>::quiet_NaN(), 1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  BatchAnswerRequest bad_timeout = MakeRequest("acme", 0.1, 1);
  bad_timeout.timeout_seconds = -2.0;
  EXPECT_EQ(service.Answer(bad_timeout).status().code(),
            StatusCode::kInvalidArgument);

  // None of the rejected requests consumed budget, and all were counted as
  // validation refusals (the unknown tenant included: it never should have
  // reached the ledger).
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
  EXPECT_EQ(service.stats().refused_validation, 5);
  EXPECT_EQ(service.stats().refused_budget, 0);
}

TEST(AnswerServiceTest, FailedPrepareRefundsTheCharge) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  BatchAnswerRequest request;
  request.tenant = "acme";
  request.epsilon = 0.25;
  linalg::Matrix poisoned(4, kDomain);
  poisoned(2, 3) = std::numeric_limits<double>::quiet_NaN();
  request.workload =
      std::make_shared<const workload::Workload>("bad", std::move(poisoned));

  EXPECT_EQ(service.Answer(request).status().code(),
            StatusCode::kInvalidArgument);
  // The request was admitted (right tenant, right shape, valid ε) but no
  // answer was released, so the charge was refunded.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
}

TEST(AnswerServiceTest, FixedSeedAndOrderGiveBitwiseIdenticalAnswers) {
  const auto run = [](bool async) {
    AnswerService service(ServiceData(), FastOptions(/*num_threads=*/3));
    LRM_CHECK(service.RegisterTenant("acme", 10.0).ok());
    // Pin the strategies first: prepare both workloads sequentially (ids 0
    // and 1) so the cold/warm prepare order — and hence the cached factors
    // — is identical in both runs. Warm-started factors depend on what the
    // cache already holds, so only the pinned-strategy part of the request
    // stream is claimed bitwise-deterministic across interleavings.
    LRM_CHECK(service.Answer(MakeRequest("acme", 0.5, 0)).ok());
    LRM_CHECK(service.Answer(MakeRequest("acme", 0.5, 1)).ok());
    std::vector<Vector> answers;
    if (async) {
      std::vector<std::future<StatusOr<BatchAnswerResponse>>> futures;
      for (int i = 0; i < 4; ++i) {
        futures.push_back(service.Submit(MakeRequest("acme", 0.5, i % 2)));
      }
      for (auto& f : futures) {
        auto response = f.get();
        LRM_CHECK(response.ok());
        answers.push_back(std::move(response).value().answers);
      }
    } else {
      for (int i = 0; i < 4; ++i) {
        auto response = service.Answer(MakeRequest("acme", 0.5, i % 2));
        LRM_CHECK(response.ok());
        answers.push_back(std::move(response).value().answers);
      }
    }
    return answers;
  };

  // Same seed + same submission order ⇒ identical releases, regardless of
  // sync vs. pool execution or worker interleaving.
  const auto serial = run(/*async=*/false);
  const auto threaded = run(/*async=*/true);
  ASSERT_EQ(serial.size(), threaded.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_VECTOR_NEAR(serial[i], threaded[i], 0.0);
  }
  // Distinct requests use distinct noise streams even for equal workloads.
  EXPECT_FALSE(test::VectorNearPred("a", "b", "0", serial[0], serial[2],
                                    0.0));
}

TEST(AnswerServiceTest, SingleQueriesBatchIntoOneCharge) {
  AnswerServiceOptions options = FastOptions();
  options.max_batch_queries = 3;
  AnswerService service(ServiceData(), options);
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  std::vector<std::future<StatusOr<double>>> futures;
  for (Index i = 0; i < 3; ++i) {
    Vector query(kDomain, 0.0);
    query[i] = 1.0;
    futures.push_back(service.SubmitQuery("acme", 0.25, std::move(query)));
  }
  std::vector<double> answers;
  for (auto& f : futures) {
    auto a = f.get();
    ASSERT_TRUE(a.ok());
    answers.push_back(a.value());
  }
  service.Drain();

  // One batch, charged ε ONCE for all three queries.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 0.75);
  EXPECT_EQ(service.stats().batches_dispatched, 1);
  // Noisy answers track the true counts at ε=0.25 without being exact.
  const Vector data = ServiceData();
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR(answers[i], data[i], 400.0) << i;
  }
}

TEST(AnswerServiceTest, FlushReleasesPartialGroupsAndRefusalsReachWaiters) {
  AnswerServiceOptions options = FastOptions();
  options.max_batch_queries = 64;  // nothing cuts on its own
  AnswerService service(ServiceData(), options);
  ASSERT_TRUE(service.RegisterTenant("acme", 0.2).ok());

  auto ok_future = service.SubmitQuery("acme", 0.15, Vector(kDomain, 1.0));
  auto poor_future = service.SubmitQuery("acme", 0.10, Vector(kDomain, 0.5));
  auto bad = service.SubmitQuery("acme", -1.0, Vector(kDomain, 1.0));
  EXPECT_EQ(bad.get().status().code(), StatusCode::kInvalidArgument);

  service.FlushQueries();
  service.Drain();

  // First group fits the budget; the 0.10 group overdraws what remains and
  // its waiter receives the typed refusal.
  ASSERT_TRUE(ok_future.get().ok());
  EXPECT_EQ(poor_future.get().status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 0.05);
}

TEST(AnswerServiceTest, DestructorResolvesPendingQueryFuturesCancelled) {
  // Destruction with a half-full batch group: every undispatched future
  // must resolve with the typed CANCELLED status — not hang, not throw
  // broken_promise, and not spend budget on a strategy search during
  // teardown (the group was never cut, so nothing was ever charged).
  std::vector<std::future<StatusOr<double>>> futures;
  double remaining_at_death = -1.0;
  {
    AnswerServiceOptions options = FastOptions();
    options.max_batch_queries = 64;  // nothing cuts on its own
    AnswerService service(ServiceData(), options);
    LRM_CHECK(service.RegisterTenant("acme", 1.0).ok());
    for (int i = 0; i < 3; ++i) {
      futures.push_back(
          service.SubmitQuery("acme", 0.25, Vector(kDomain, 1.0)));
    }
    remaining_at_death = service.RemainingBudget("acme").value();
  }
  for (auto& future : futures) {
    const auto result = future.get();
    EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  }
  EXPECT_DOUBLE_EQ(remaining_at_death, 1.0);
}

TEST(AnswerServiceTest, DeadlineAbortsPrepareAndRefundsWhenNotDegradable) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  BatchAnswerRequest request = MakeRequest("acme", 0.25, 1);
  request.timeout_seconds = 1e-9;  // expired before the strategy search
  request.allow_degraded = false;
  const auto refused = service.Answer(request);
  EXPECT_EQ(refused.status().code(), StatusCode::kDeadlineExceeded);
  // Nothing was released, so the admission charge was refunded.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
  EXPECT_EQ(service.stats().refused_deadline, 1);
  EXPECT_EQ(service.stats().degraded_releases, 0);
}

TEST(AnswerServiceTest, DeadlineDegradesToLaplaceWhenAllowed) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  BatchAnswerRequest request = MakeRequest("acme", 0.25, 1);
  request.timeout_seconds = 1e-9;
  const auto degraded = service.Answer(request);  // allow_degraded default
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded->degraded);
  EXPECT_EQ(degraded->answers.size(), 12);
  EXPECT_VECTOR_FINITE(degraded->answers);
  // The fallback release spent the SAME ε the low-rank release would have.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 0.75);
  EXPECT_EQ(service.stats().degraded_releases, 1);
  EXPECT_EQ(service.stats().refused_deadline, 0);
}

TEST(AnswerServiceTest, DegradedReleaseIsBitwiseReproducible) {
  const auto run = [] {
    AnswerService service(ServiceData(), FastOptions());
    LRM_CHECK(service.RegisterTenant("acme", 1.0).ok());
    BatchAnswerRequest request = MakeRequest("acme", 0.25, 7);
    request.timeout_seconds = 1e-9;
    auto response = service.Answer(request);
    LRM_CHECK(response.ok());
    LRM_CHECK(response->degraded);
    return std::move(response).value().answers;
  };
  // Same seed, same submission order ⇒ the degraded release draws from the
  // same per-request stream and is bitwise identical.
  EXPECT_VECTOR_NEAR(run(), run(), 0.0);
}

TEST(AnswerServiceTest, OverloadShedsSubmitWithTypedUnavailable) {
  AnswerServiceOptions options = FastOptions(/*num_threads=*/1);
  options.max_pending_requests = 1;
  AnswerService service(ServiceData(), options);
  ASSERT_TRUE(service.RegisterTenant("acme", 100.0).ok());

  // Burst past the single slot: everything beyond it is shed synchronously
  // with UNAVAILABLE, before any budget charge. Budget is ample and the
  // requests are valid, so UNAVAILABLE is the only possible failure.
  std::vector<std::future<StatusOr<BatchAnswerResponse>>> futures;
  for (int i = 0; i < 9; ++i) {
    futures.push_back(service.Submit(MakeRequest("acme", 0.25, 1)));
  }
  service.Drain();

  int served = 0;
  int shed = 0;
  for (auto& future : futures) {
    const auto result = future.get();
    if (result.ok()) {
      ++served;
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
      // The refusal carries a retry-after hint.
      EXPECT_NE(result.status().message().find("retry after"),
                std::string::npos);
      ++shed;
    }
  }
  EXPECT_GT(served, 0);
  EXPECT_GT(shed, 0);
  EXPECT_EQ(service.stats().refused_shed, shed);
  // ε was spent exactly by the requests that released answers.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(),
                   100.0 - 0.25 * served);
}

TEST(AnswerServiceTest, LingerTickerCutsStaleGroups) {
  AnswerServiceOptions options = FastOptions();
  options.max_batch_queries = 64;  // count-based cuts never fire
  options.batch_linger_seconds = 0.02;
  AnswerService service(ServiceData(), options);
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  auto future = service.SubmitQuery("acme", 0.25, Vector(kDomain, 1.0));
  // Without FlushQueries, only the linger ticker can cut this group.
  const auto answer = future.get();
  ASSERT_TRUE(answer.ok());
  service.Drain();
  EXPECT_EQ(service.stats().batches_dispatched, 1);
  EXPECT_GE(service.stats().batches_cut_by_linger, 1);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 0.75);
}

}  // namespace
}  // namespace lrm::service
