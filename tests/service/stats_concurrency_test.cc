// stats()/MetricsSnapshot() racing live traffic — the suite the TSan CI job
// exists for (the `service/` pattern in .github/workflows/ci.yml picks it
// up). The obs rewire replaced the mutex-guarded stats struct with
// registry-backed counters and sharded histograms; these tests pin down the
// guarantees observers now rely on while Submit storms run:
//
//   * every read is race-free (TSan proves this part),
//   * each individual counter is monotonic across repeated stats() calls,
//   * a histogram snapshot never over-counts: serve_seconds.count observed
//     BEFORE reading requests_admitted can never exceed it (each serve's
//     Record happens-after its own admission increment),
//   * at quiescence the shard-merged totals are exact — serve/answer
//     histogram counts equal the number of admitted requests.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/check.h"
#include "linalg/vector.h"
#include "obs/metrics.h"
#include "service/answer_service.h"
#include "workload/generators.h"

namespace lrm::service {
namespace {

using linalg::Index;
using linalg::Vector;

constexpr Index kDomain = 16;

AnswerServiceOptions FastOptions() {
  AnswerServiceOptions options;
  options.num_threads = 3;
  options.max_pending_requests = 0;  // no shedding: every submit is admitted
  auto& d = options.cache.mechanism.decomposition;
  d.max_outer_iterations = 6;
  d.max_inner_iterations = 2;
  d.l_max_iterations = 6;
  d.polish_patience = 2;
  return options;
}

Vector ServiceData() {
  Vector data(kDomain);
  for (Index i = 0; i < kDomain; ++i) data[i] = 5.0 + i;
  return data;
}

BatchAnswerRequest MakeRequest(const std::string& tenant, double epsilon) {
  auto w = workload::GenerateWRange(8, kDomain, /*seed=*/91);
  LRM_CHECK(w.ok());
  BatchAnswerRequest request;
  request.tenant = tenant;
  request.epsilon = epsilon;
  request.workload =
      std::make_shared<const workload::Workload>(std::move(w).value());
  return request;
}

TEST(StatsConcurrencyTest, SnapshotsRaceSubmitStormWithoutTearing) {
  constexpr int kWriters = 3;
  constexpr int kPerWriter = 24;

  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1e6).ok());

  // Warm the cache synchronously so the storm below is all-hits and the
  // readers get plenty of interleavings instead of one long cold prepare.
  const auto warm = service.Answer(MakeRequest("acme", 0.1));
  ASSERT_TRUE(warm.ok());

  std::atomic<bool> done{false};
  std::atomic<std::int64_t> reads{0};

  // Readers hammer both snapshot surfaces while writers submit.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&service, &done, &reads] {
      std::int64_t last_admitted = 0;
      std::int64_t last_serves = 0;
      while (!done.load(std::memory_order_acquire)) {
        // Histogram first, counter second: each serve's Record
        // happens-after its own admission increment, so this read order
        // can only under-count serves relative to admissions.
        const obs::RegistrySnapshot metrics = service.MetricsSnapshot();
        const AnswerServiceStats stats = service.stats();
        const auto it = metrics.histograms.find("service.serve_seconds");
        const std::int64_t serves =
            it == metrics.histograms.end() ? 0 : it->second.count;
        ASSERT_LE(serves, stats.requests_admitted);
        // Monotonic counters: no snapshot ever travels backwards.
        ASSERT_GE(stats.requests_admitted, last_admitted);
        ASSERT_GE(serves, last_serves);
        ASSERT_EQ(stats.refused_shed, 0);
        last_admitted = stats.requests_admitted;
        last_serves = serves;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  std::vector<std::thread> writers;
  std::vector<std::future<StatusOr<BatchAnswerResponse>>> futures(
      kWriters * kPerWriter);
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&service, &futures, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        futures[w * kPerWriter + i] =
            service.Submit(MakeRequest("acme", 0.01));
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  for (auto& future : futures) {
    const auto response = future.get();
    ASSERT_TRUE(response.ok()) << response.status().message();
  }
  service.Drain();
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_GT(reads.load(), 0);

  // Quiescent: the shard merge must be exact, not approximately right.
  const std::int64_t expected_admitted = 1 + kWriters * kPerWriter;
  const AnswerServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_admitted, expected_admitted);
  const obs::RegistrySnapshot metrics = service.MetricsSnapshot();
  EXPECT_EQ(metrics.histograms.at("service.serve_seconds").count,
            expected_admitted);
  EXPECT_EQ(metrics.histograms.at("service.answer_seconds").count,
            expected_admitted);
  EXPECT_EQ(metrics.counters.at("service.requests_admitted"),
            expected_admitted);
  // The storm was all cache hits; the one warmup request was the miss.
  EXPECT_EQ(stats.cache.hits, expected_admitted - 1);
  EXPECT_EQ(stats.cache.misses, 1);
  EXPECT_EQ(service.over_refund_count(), 0);
}

TEST(StatsConcurrencyTest, RegistrySnapshotRacesBatcherTraffic) {
  AnswerService service(ServiceData(), FastOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", 1e6).ok());

  std::atomic<bool> done{false};
  std::thread reader([&service, &done] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::RegistrySnapshot metrics = service.MetricsSnapshot();
      const auto admitted = metrics.counters.find("batcher.queries_admitted");
      const auto cut = metrics.counters.find("batcher.batches_cut");
      if (admitted != metrics.counters.end() &&
          cut != metrics.counters.end()) {
        // A cut batch implies at least one admitted query per batch.
        ASSERT_LE(cut->second, admitted->second);
      }
    }
  });

  constexpr int kQueries = 96;
  std::vector<std::future<StatusOr<double>>> futures;
  futures.reserve(kQueries);
  for (int i = 0; i < kQueries; ++i) {
    Vector query(kDomain);
    for (Index j = 0; j < kDomain; ++j) query[j] = (i + j) % 3 == 0;
    futures.push_back(service.SubmitQuery("acme", 0.05, std::move(query)));
  }
  service.FlushQueries();
  for (auto& future : futures) {
    const auto answer = future.get();
    ASSERT_TRUE(answer.ok()) << answer.status().message();
  }
  service.Drain();
  done.store(true, std::memory_order_release);
  reader.join();

  const obs::RegistrySnapshot metrics = service.MetricsSnapshot();
  EXPECT_EQ(metrics.counters.at("batcher.queries_admitted"), kQueries);
  EXPECT_GE(metrics.counters.at("batcher.batches_cut"), 1);
  EXPECT_EQ(metrics.histograms.at("batcher.batch_rows").count,
            metrics.counters.at("batcher.batches_cut"));
}

}  // namespace
}  // namespace lrm::service
