// ThreadPool: tasks run, Wait() is a full barrier, and the destructor
// drains the queue instead of dropping submitted work.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "service/thread_pool.h"

namespace lrm::service {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { ++count; });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  std::atomic<int> count{0};
  ThreadPool pool(0);
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  std::atomic<int> count{0};
  ThreadPool pool(2);
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 1);
  pool.Submit([&count] { ++count; });
  pool.Submit([&count] { ++count; });
  pool.Wait();
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { ++count; });
    }
    // No Wait(): destruction itself must run everything already submitted.
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, SubmitFromManyThreads) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&pool, &count] {
      for (int i = 0; i < 25; ++i) {
        pool.Submit([&count] { ++count; });
      }
    });
  }
  for (std::thread& t : producers) t.join();
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

}  // namespace
}  // namespace lrm::service
