// Multi-threaded stress on the answering service: concurrent Submit
// bursts, SubmitQuery + FlushQueries races, destruction with work still in
// flight, and concurrent submission under a tight shedding limit. These
// run under `ctest -L stress` (and under TSan in CI); the assertions are
// the service's global invariants — every future resolves with a typed
// status and the tenant ledger balances against the answers actually
// released — not any particular interleaving.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "base/check.h"
#include "linalg/vector.h"
#include "service/answer_service.h"
#include "workload/generators.h"

namespace lrm::service {
namespace {

using linalg::Index;
using linalg::Vector;

constexpr Index kDomain = 16;

Vector ServiceData() {
  Vector data(kDomain);
  for (Index i = 0; i < kDomain; ++i) data[i] = 5.0 + i;
  return data;
}

std::shared_ptr<const workload::Workload> MakeWorkload(std::uint64_t seed) {
  auto w = workload::GenerateWRange(8, kDomain, seed);
  LRM_CHECK(w.ok());
  return std::make_shared<const workload::Workload>(std::move(w).value());
}

AnswerServiceOptions StressOptions(int num_threads = 4) {
  AnswerServiceOptions options;
  options.num_threads = num_threads;
  auto& d = options.cache.mechanism.decomposition;
  d.max_outer_iterations = 6;
  d.max_inner_iterations = 2;
  d.l_max_iterations = 6;
  d.polish_patience = 2;
  return options;
}

TEST(ServiceStressTest, ConcurrentSubmittersLedgerBalances) {
  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 8;
  constexpr double kEpsilon = 0.125;
  constexpr double kBudget = 3.0;  // < 32·ε = 4.0: some requests refuse

  AnswerService service(ServiceData(), StressOptions());
  ASSERT_TRUE(service.RegisterTenant("acme", kBudget).ok());

  std::vector<std::vector<std::future<StatusOr<BatchAnswerResponse>>>>
      futures(kSubmitters);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&service, &futures, t] {
        for (int i = 0; i < kPerThread; ++i) {
          BatchAnswerRequest request;
          request.tenant = "acme";
          request.epsilon = kEpsilon;
          request.workload =
              MakeWorkload(static_cast<unsigned>(i % 3));  // cache contention
          futures[t].push_back(service.Submit(std::move(request)));
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  service.Drain();

  int released = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      const auto result = future.get();  // every future resolves, typed
      if (result.ok()) {
        ++released;
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
      }
    }
  }
  // ε was spent by exactly the requests that released.
  EXPECT_NEAR(service.RemainingBudget("acme").value(),
              kBudget - kEpsilon * released, 1e-9);
  const AnswerServiceStats stats = service.stats();
  EXPECT_EQ(stats.requests_admitted, released);
  EXPECT_EQ(stats.refused_budget,
            kSubmitters * kPerThread - released);
}

TEST(ServiceStressTest, ConcurrentSingleQueriesAndFlushes) {
  constexpr int kSubmitters = 3;
  constexpr int kPerThread = 20;

  AnswerServiceOptions options = StressOptions();
  options.max_batch_queries = 4;
  AnswerService service(ServiceData(), options);
  ASSERT_TRUE(service.RegisterTenant("acme", 1000.0).ok());

  std::vector<std::vector<std::future<StatusOr<double>>>> futures(
      kSubmitters);
  std::atomic<bool> keep_flushing{true};
  std::thread flusher([&service, &keep_flushing] {
    // Race FlushQueries against concurrent Adds and count-based cuts.
    while (keep_flushing.load()) {
      service.FlushQueries();
      std::this_thread::yield();
    }
  });
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&service, &futures, t] {
        for (int i = 0; i < kPerThread; ++i) {
          Vector query(kDomain, 0.0);
          query[(t * kPerThread + i) % kDomain] = 1.0;
          futures[t].push_back(
              service.SubmitQuery("acme", 0.25, std::move(query)));
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  keep_flushing.store(false);
  flusher.join();
  service.FlushQueries();
  service.Drain();

  // Every admitted query resolves with an answer (budget is ample), no
  // matter how Adds, cuts and flushes interleaved.
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      const auto result = future.get();
      EXPECT_TRUE(result.ok()) << result.status().message();
    }
  }
}

TEST(ServiceStressTest, DestructionWithWorkInFlightResolvesEverything) {
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<StatusOr<BatchAnswerResponse>>> submitted;
    std::vector<std::future<StatusOr<double>>> queries;
    {
      AnswerServiceOptions options = StressOptions(/*num_threads=*/2);
      options.max_batch_queries = 64;  // the query groups stay uncut
      AnswerService service(ServiceData(), options);
      LRM_CHECK(service.RegisterTenant("acme", 100.0).ok());
      for (int i = 0; i < 6; ++i) {
        BatchAnswerRequest request;
        request.tenant = "acme";
        request.epsilon = 0.25;
        request.workload = MakeWorkload(static_cast<unsigned>(i));
        submitted.push_back(service.Submit(std::move(request)));
        queries.push_back(
            service.SubmitQuery("acme", 0.5, Vector(kDomain, 1.0)));
      }
      // Destructor runs with Submit work in flight and query groups uncut.
    }
    for (auto& future : submitted) {
      EXPECT_TRUE(future.get().ok());  // in-flight work completed normally
    }
    for (auto& future : queries) {
      // Undispatched queries were resolved typed, not abandoned.
      EXPECT_EQ(future.get().status().code(), StatusCode::kCancelled);
    }
  }
}

TEST(ServiceStressTest, ConcurrentSubmitUnderSheddingNeverLosesAFuture) {
  AnswerServiceOptions options = StressOptions(/*num_threads=*/2);
  options.max_pending_requests = 2;
  AnswerService service(ServiceData(), options);
  ASSERT_TRUE(service.RegisterTenant("acme", 1000.0).ok());

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 10;
  std::vector<std::vector<std::future<StatusOr<BatchAnswerResponse>>>>
      futures(kSubmitters);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&service, &futures, t] {
        for (int i = 0; i < kPerThread; ++i) {
          BatchAnswerRequest request;
          request.tenant = "acme";
          request.epsilon = 0.1;
          request.workload = MakeWorkload(static_cast<unsigned>(t));
          futures[t].push_back(service.Submit(std::move(request)));
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }
  service.Drain();

  int released = 0;
  std::int64_t shed = 0;
  for (auto& per_thread : futures) {
    for (auto& future : per_thread) {
      const auto result = future.get();
      if (result.ok()) {
        ++released;
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
        ++shed;
      }
    }
  }
  EXPECT_EQ(released + shed, kSubmitters * kPerThread);
  EXPECT_NEAR(service.RemainingBudget("acme").value(),
              1000.0 - 0.1 * released, 1e-9);
  EXPECT_EQ(service.stats().refused_shed, shed);
}

}  // namespace
}  // namespace lrm::service
