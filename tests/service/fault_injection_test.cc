// Deterministic fault injection against the answering service, proving the
// two failure-model invariants under arbitrary failure placement:
//
//   * ledger conservation — ε spent == Σ ε of the requests that actually
//     released an answer (degraded releases included), no matter where a
//     fault fired, and
//   * typed resolution — every future resolves with a typed status; no
//     broken promise, no hang, no exception escaping a worker.
//
// The injector is count-based (no RNG) and the storms run on ONE worker
// thread, so every run replays the same faults against the same requests —
// which also lets the degraded releases be compared bitwise across runs.

#include <gtest/gtest.h>

#include <cstdint>
#include <future>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "base/check.h"
#include "linalg/vector.h"
#include "service/answer_service.h"
#include "service/fault_injection.h"
#include "tests/support/matchers.h"
#include "workload/generators.h"

namespace lrm::service {
namespace {

using linalg::Index;
using linalg::Vector;

constexpr Index kDomain = 24;

Vector ServiceData() {
  Vector data(kDomain);
  for (Index i = 0; i < kDomain; ++i) data[i] = 10.0 + i;
  return data;
}

std::shared_ptr<const workload::Workload> MakeWorkload(std::uint64_t seed) {
  auto w = workload::GenerateWRange(12, kDomain, seed);
  LRM_CHECK(w.ok());
  return std::make_shared<const workload::Workload>(std::move(w).value());
}

BatchAnswerRequest MakeRequest(const std::string& tenant, double epsilon,
                               std::uint64_t seed) {
  BatchAnswerRequest request;
  request.tenant = tenant;
  request.epsilon = epsilon;
  request.workload = MakeWorkload(seed);
  return request;
}

AnswerServiceOptions FaultyOptions(FaultInjector* injector,
                                   int num_threads = 1) {
  AnswerServiceOptions options;
  options.num_threads = num_threads;
  options.fault_injector = injector;
  auto& d = options.cache.mechanism.decomposition;
  d.max_outer_iterations = 10;
  d.max_inner_iterations = 2;
  d.l_max_iterations = 8;
  d.polish_patience = 2;
  return options;
}

TEST(FaultInjectorTest, CountedPlansFireDeterministically) {
  FaultInjector injector;
  EXPECT_TRUE(injector.Check("s").ok());  // unarmed sites never fire

  injector.FailAt("s", Status::Internal("boom"), /*skip=*/1, /*times=*/2);
  EXPECT_TRUE(injector.Check("s").ok());  // skipped
  EXPECT_EQ(injector.Check("s").code(), StatusCode::kInternal);
  EXPECT_EQ(injector.Check("s").code(), StatusCode::kInternal);
  EXPECT_TRUE(injector.Check("s").ok());  // plan exhausted
  EXPECT_EQ(injector.hits("s"), 5);
  EXPECT_EQ(injector.fired("s"), 2);

  injector.ThrowAt("s", "kaboom");
  EXPECT_THROW((void)injector.Check("s"), std::runtime_error);
  EXPECT_TRUE(injector.Check("s").ok());

  injector.FailAt("s", Status::Internal("forever"), /*skip=*/0,
                  /*times=*/-1);
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(injector.Check("s").ok());
  injector.Disarm("s");
  EXPECT_TRUE(injector.Check("s").ok());

  injector.Reset();
  EXPECT_EQ(injector.hits("s"), 0);
  EXPECT_EQ(injector.fired("s"), 0);
}

TEST(FaultInjectionTest, PrepareFailureDegradesAndStillSpendsEpsilon) {
  FaultInjector injector;
  injector.FailAt(kFaultSitePrepare,
                  Status::Internal("injected prepare failure"));
  AnswerService service(ServiceData(), FaultyOptions(&injector));
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  const auto response = service.Answer(MakeRequest("acme", 0.25, 1));
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->degraded);
  EXPECT_VECTOR_FINITE(response->answers);
  // A degraded release is a release: the charge stands.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 0.75);
  EXPECT_EQ(service.stats().degraded_releases, 1);
  EXPECT_EQ(injector.fired(kFaultSitePrepare), 1);
}

TEST(FaultInjectionTest, PrepareFailureWithoutDegradationRefunds) {
  FaultInjector injector;
  injector.FailAt(kFaultSitePrepare,
                  Status::Internal("injected prepare failure"));
  AnswerService service(ServiceData(), FaultyOptions(&injector));
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  BatchAnswerRequest request = MakeRequest("acme", 0.25, 1);
  request.allow_degraded = false;
  const auto response = service.Answer(request);
  EXPECT_EQ(response.status().code(), StatusCode::kInternal);
  // Nothing was released, so the admitted charge was refunded in full.
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
  EXPECT_EQ(service.stats().degraded_releases, 0);
}

TEST(FaultInjectionTest, DegradedFallbackFailureRefundsOriginalCause) {
  // Both the prepare AND the fallback release fail: the service must fall
  // through to the refund path and surface the original cause.
  FaultInjector injector;
  injector.FailAt(kFaultSitePrepare,
                  Status::DeadlineExceeded("injected deadline"));
  injector.FailAt(kFaultSiteDegraded,
                  Status::Internal("injected fallback failure"));
  AnswerService service(ServiceData(), FaultyOptions(&injector));
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  const auto response = service.Answer(MakeRequest("acme", 0.25, 1));
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
  EXPECT_EQ(service.stats().refused_deadline, 1);
}

TEST(FaultInjectionTest, WorkerDeathByExceptionResolvesTypedAndRefunds) {
  FaultInjector injector;
  injector.ThrowAt(kFaultSiteServe, "injected worker death");
  AnswerService service(ServiceData(), FaultyOptions(&injector));
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  auto future = service.Submit(MakeRequest("acme", 0.25, 1));
  const auto result = future.get();  // resolves: the exception was caught
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
  EXPECT_NE(result.status().message().find("injected worker death"),
            std::string::npos);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
  // The pool captured no exception either: Drain() must not throw.
  EXPECT_NO_THROW(service.Drain());
}

TEST(FaultInjectionTest, DeadlineGateFaultCountsAndRefundsAsDeadline) {
  FaultInjector injector;
  injector.FailAt(kFaultSiteDeadlineBeforeAnswer,
                  Status::DeadlineExceeded("injected: expired after "
                                           "prepare, before answer"));
  AnswerService service(ServiceData(), FaultyOptions(&injector));
  ASSERT_TRUE(service.RegisterTenant("acme", 1.0).ok());

  BatchAnswerRequest request = MakeRequest("acme", 0.25, 1);
  request.allow_degraded = false;
  const auto response = service.Answer(request);
  EXPECT_EQ(response.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_DOUBLE_EQ(service.RemainingBudget("acme").value(), 1.0);
  EXPECT_EQ(service.stats().refused_deadline, 1);
  // The strategy search DID run (the fault fired after it) and its result
  // is cached: a retry hits the cache and releases normally.
  const auto retry = service.Answer(MakeRequest("acme", 0.25, 1));
  ASSERT_TRUE(retry.ok());
  EXPECT_TRUE(retry->cache_hit);
}

// One storm: 8 async requests on ONE worker (so serve order == submission
// order and the count-based faults land on the same requests every run).
// Request 4 dies by a thrown exception at serve entry; requests 1 and 2
// fail their strategy search (request 1 forbids degradation and is
// refunded, request 2 degrades and still spends).
struct StormOutcome {
  std::vector<StatusOr<BatchAnswerResponse>> results;
  double spent = 0.0;
  std::int64_t over_refunds = 0;
  AnswerServiceStats stats;
};

StormOutcome RunFaultStorm() {
  constexpr double kBudget = 100.0;
  constexpr double kEpsilon = 0.25;
  FaultInjector injector;
  injector.FailAt(kFaultSitePrepare,
                  Status::Internal("injected prepare failure"), /*skip=*/1,
                  /*times=*/2);
  injector.ThrowAt(kFaultSiteServe, "injected worker death", /*skip=*/4,
                   /*times=*/1);
  StormOutcome outcome;
  {
    AnswerService service(ServiceData(),
                          FaultyOptions(&injector, /*num_threads=*/1));
    LRM_CHECK(service.RegisterTenant("acme", kBudget).ok());
    std::vector<std::future<StatusOr<BatchAnswerResponse>>> futures;
    for (int i = 0; i < 8; ++i) {
      BatchAnswerRequest request =
          MakeRequest("acme", kEpsilon, /*seed=*/static_cast<unsigned>(i));
      request.allow_degraded = (i % 2 == 0);
      futures.push_back(service.Submit(std::move(request)));
    }
    for (auto& future : futures) {
      // Typed resolution: get() returns a value for every request.
      outcome.results.push_back(future.get());
    }
    outcome.spent = kBudget - service.RemainingBudget("acme").value();
    outcome.over_refunds = service.over_refund_count();
    outcome.stats = service.stats();
  }
  return outcome;
}

TEST(FaultInjectionTest, LedgerBalancesAndEveryFutureResolvesUnderStorm) {
  const StormOutcome outcome = RunFaultStorm();
  ASSERT_EQ(outcome.results.size(), 8u);

  // The ledger invariant: ε was spent by exactly the requests that
  // released an answer (normal or degraded), and nothing else.
  double released_epsilon = 0.0;
  for (const auto& result : outcome.results) {
    if (result.ok()) released_epsilon += 0.25;
  }
  EXPECT_DOUBLE_EQ(outcome.spent, released_epsilon);

  // The deterministic fault placement: request 4 died at serve entry,
  // request 1 failed prepare un-degradable, request 2 degraded.
  EXPECT_FALSE(outcome.results[1].ok());
  EXPECT_EQ(outcome.results[1].status().code(), StatusCode::kInternal);
  EXPECT_FALSE(outcome.results[4].ok());
  EXPECT_NE(outcome.results[4].status().message().find(
                "injected worker death"),
            std::string::npos);
  ASSERT_TRUE(outcome.results[2].ok());
  EXPECT_TRUE(outcome.results[2].value().degraded);
  for (const int i : {0, 3, 5, 6, 7}) {
    ASSERT_TRUE(outcome.results[i].ok()) << i;
    EXPECT_FALSE(outcome.results[i].value().degraded) << i;
  }
  EXPECT_EQ(outcome.stats.degraded_releases, 1);
  EXPECT_EQ(outcome.stats.requests_admitted, 8);

  // Refund now REFUSES anything exceeding recorded spend instead of
  // clamping, so a balanced ledger is only possible if every failure-path
  // refund in the storm was correctly paired with its charge. Zero
  // refused refunds proves the pairing — not a clamp — kept the books.
  EXPECT_EQ(outcome.over_refunds, 0);
}

TEST(FaultInjectionTest, StormReleasesAreBitwiseReproducible) {
  // Same seed, same submission order, same (deterministic) faults ⇒ every
  // released vector — the degraded one included — is bitwise identical
  // across runs.
  const StormOutcome first = RunFaultStorm();
  const StormOutcome second = RunFaultStorm();
  ASSERT_EQ(first.results.size(), second.results.size());
  for (std::size_t i = 0; i < first.results.size(); ++i) {
    ASSERT_EQ(first.results[i].ok(), second.results[i].ok()) << i;
    if (!first.results[i].ok()) continue;
    EXPECT_EQ(first.results[i].value().degraded,
              second.results[i].value().degraded)
        << i;
    EXPECT_VECTOR_NEAR(first.results[i].value().answers,
                       second.results[i].value().answers, 0.0);
  }
}

}  // namespace
}  // namespace lrm::service
