// PreparedMechanismCache: fingerprint-keyed reuse of prepared strategies,
// LRU eviction, warm-started misses, and coalescing of concurrent prepares.

#include <gtest/gtest.h>

#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "base/check.h"
#include "rng/engine.h"
#include "service/prepared_cache.h"
#include "tests/support/matchers.h"
#include "workload/generators.h"

namespace lrm::service {
namespace {

using linalg::Index;
using linalg::Vector;

// Solver budget small enough that a cold prepare is milliseconds at the
// 12x24 test scale; the cache semantics under test do not depend on how
// polished the decomposition is.
PreparedCacheOptions FastOptions() {
  PreparedCacheOptions options;
  auto& d = options.mechanism.decomposition;
  d.max_outer_iterations = 10;
  d.max_inner_iterations = 2;
  d.l_max_iterations = 8;
  d.polish_patience = 2;
  return options;
}

std::shared_ptr<const workload::Workload> MakeWorkload(std::uint64_t seed) {
  auto w = workload::GenerateWRange(12, 24, seed);
  LRM_CHECK(w.ok());
  return std::make_shared<const workload::Workload>(std::move(w).value());
}

TEST(PreparedCacheTest, MissThenHitSharesOnePreparedMechanism) {
  PreparedMechanismCache cache(FastOptions());
  const auto workload = MakeWorkload(1);

  const auto first = cache.GetOrPrepare(workload);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first->cache_hit);
  ASSERT_NE(first->mechanism, nullptr);
  EXPECT_TRUE(first->mechanism->prepared());

  // A DIFFERENT Workload object with the same matrix (and a different
  // name) must hit: the fingerprint covers content, not identity.
  auto copy = std::make_shared<const workload::Workload>(
      "another name", workload->matrix());
  const auto second = cache.GetOrPrepare(copy);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second->cache_hit);
  EXPECT_EQ(second->mechanism.get(), first->mechanism.get());

  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PreparedCacheTest, CachedMechanismAnswers) {
  PreparedMechanismCache cache(FastOptions());
  const auto lease = cache.GetOrPrepare(MakeWorkload(1));
  ASSERT_TRUE(lease.ok());
  rng::Engine a(99), b(99);
  const auto first = lease->mechanism->Answer(Vector(24, 2.0), 1.0, a);
  const auto again = lease->mechanism->Answer(Vector(24, 2.0), 1.0, b);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(first->size(), 12);
  EXPECT_VECTOR_NEAR(first.value(), again.value(), 0.0);
}

TEST(PreparedCacheTest, SameShapeMissWarmStartsFromNeighbor) {
  PreparedMechanismCache cache(FastOptions());
  const auto cold = cache.GetOrPrepare(MakeWorkload(1));
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm_started);

  const auto warm = cache.GetOrPrepare(MakeWorkload(2));
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm->cache_hit);
  EXPECT_TRUE(warm->warm_started);
  EXPECT_TRUE(warm->mechanism->prepared());

  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2);
  EXPECT_EQ(stats.warm_misses, 1);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PreparedCacheTest, WarmStartDisabledPreparesCold) {
  PreparedCacheOptions options = FastOptions();
  options.warm_start_misses = false;
  PreparedMechanismCache cache(options);
  ASSERT_TRUE(cache.GetOrPrepare(MakeWorkload(1)).ok());
  const auto second = cache.GetOrPrepare(MakeWorkload(2));
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->warm_started);
  EXPECT_EQ(cache.stats().warm_misses, 0);
}

TEST(PreparedCacheTest, LruEviction) {
  PreparedCacheOptions options = FastOptions();
  options.capacity = 1;
  PreparedMechanismCache cache(options);
  const auto w1 = MakeWorkload(1);
  ASSERT_TRUE(cache.GetOrPrepare(w1).ok());
  ASSERT_TRUE(cache.GetOrPrepare(MakeWorkload(2)).ok());  // evicts w1
  EXPECT_EQ(cache.size(), 1u);
  const auto again = cache.GetOrPrepare(w1);  // miss: w1 was evicted
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);
  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 2);
}

TEST(PreparedCacheTest, CapacityZeroDisablesCaching) {
  PreparedCacheOptions options = FastOptions();
  options.capacity = 0;
  PreparedMechanismCache cache(options);
  const auto workload = MakeWorkload(1);
  ASSERT_TRUE(cache.GetOrPrepare(workload).ok());
  const auto second = cache.GetOrPrepare(workload);
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second->cache_hit);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().misses, 2);
}

TEST(PreparedCacheTest, PrepareErrorsPropagateAndAreNotCached) {
  PreparedMechanismCache cache(FastOptions());
  auto poisoned = [] {
    auto w = workload::GenerateWRange(12, 24, 7);
    LRM_CHECK(w.ok());
    linalg::Matrix m = w->matrix();
    m(0, 0) = std::numeric_limits<double>::quiet_NaN();
    return std::make_shared<const workload::Workload>("bad", std::move(m));
  }();
  EXPECT_EQ(cache.GetOrPrepare(poisoned).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.GetOrPrepare(poisoned).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.GetOrPrepare(nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PreparedCacheTest, ConcurrentRequestsForOneWorkloadCoalesce) {
  PreparedMechanismCache cache(FastOptions());
  const auto workload = MakeWorkload(5);
  constexpr int kThreads = 4;
  std::vector<StatusOr<PreparedLease>> leases(
      kThreads, StatusOr<PreparedLease>(Status::Internal("unset")));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &workload, &leases, t] {
      leases[t] = cache.GetOrPrepare(workload);
    });
  }
  for (std::thread& t : threads) t.join();

  for (int t = 0; t < kThreads; ++t) {
    ASSERT_TRUE(leases[t].ok()) << t;
    // Everyone shares the single prepared instance.
    EXPECT_EQ(leases[t]->mechanism.get(), leases[0]->mechanism.get());
  }
  // Exactly one prepare ran; every request was either that prepare, a
  // coalesced waiter, or a plain hit.
  const PreparedCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PreparedCacheTest, ExpiredTokenAbortsTypedAndIsNotCached) {
  PreparedMechanismCache cache(FastOptions());
  const auto workload = MakeWorkload(6);
  const auto aborted = cache.GetOrPrepare(
      workload, CancelSource::WithTimeout(-1.0).token());
  EXPECT_EQ(aborted.status().code(), StatusCode::kDeadlineExceeded);
  // The cancelled prepare was not cached: a later unbounded retry runs a
  // real strategy search and succeeds.
  EXPECT_EQ(cache.size(), 0u);
  const auto retry = cache.GetOrPrepare(workload);
  ASSERT_TRUE(retry.ok());
  EXPECT_FALSE(retry->cache_hit);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(PreparedCacheTest, InjectedPrepareFaultPropagatesToCoalescedWaiters) {
  FaultInjector injector;
  injector.FailAt(kFaultSitePrepare,
                  Status::Internal("injected prepare failure"));
  PreparedCacheOptions options = FastOptions();
  options.fault_injector = &injector;
  PreparedMechanismCache cache(options);
  const auto workload = MakeWorkload(7);

  // The owner hits the armed fault; nothing is cached.
  const auto failed = cache.GetOrPrepare(workload);
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  EXPECT_EQ(cache.size(), 0u);
  // The plan fired once: the retry prepares normally.
  const auto retry = cache.GetOrPrepare(workload);
  ASSERT_TRUE(retry.ok());
  EXPECT_EQ(injector.fired(kFaultSitePrepare), 1);
}

}  // namespace
}  // namespace lrm::service
