// Concurrent Answer() on one prepared LowRankMechanism: Answer is const and
// must not mutate any member state, so after a single successful Prepare()
// many threads — each with its own rng::Engine — may release answers in
// parallel. Run under TSan/ASan this locks the data-race freedom of the
// contract; the bitwise comparison against a serial replay locks the
// split-stream determinism the answering service builds on.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "base/check.h"
#include "core/low_rank_mechanism.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"
#include "workload/generators.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Vector;

constexpr int kThreads = 8;
constexpr int kAnswersPerThread = 4;

rng::Engine ThreadEngine(int thread) {
  // Fixed per-thread seeds, disjoint from each other by construction.
  return rng::Engine(0xC0FFEEULL + 0x9E3779B97F4A7C15ULL *
                                       static_cast<std::uint64_t>(thread));
}

TEST(ConcurrentAnswerTest, ParallelAnswersMatchSerialReplayBitwise) {
  LowRankMechanismOptions options;
  options.decomposition.max_outer_iterations = 10;
  options.decomposition.max_inner_iterations = 2;
  options.decomposition.l_max_iterations = 8;
  options.decomposition.polish_patience = 2;
  LowRankMechanism mechanism(options);

  auto workload = workload::GenerateWRange(16, 32, 11);
  ASSERT_TRUE(workload.ok());
  ASSERT_TRUE(mechanism
                  .Prepare(std::make_shared<const workload::Workload>(
                      std::move(workload).value()))
                  .ok());

  Vector data(32);
  for (Index i = 0; i < 32; ++i) data[i] = 5.0 + i;

  // Parallel phase: kThreads threads share the one prepared mechanism,
  // each drawing from its own engine.
  std::vector<std::vector<Vector>> parallel(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&mechanism, &data, &parallel, t] {
      rng::Engine engine = ThreadEngine(t);
      for (int i = 0; i < kAnswersPerThread; ++i) {
        auto noisy = mechanism.Answer(data, 1.0, engine);
        LRM_CHECK(noisy.ok());
        parallel[t].push_back(std::move(noisy).value());
      }
    });
  }
  for (std::thread& t : threads) t.join();

  // Serial replay with freshly constructed engines in the same states: the
  // outputs must agree bit for bit — concurrency may not perturb anyone's
  // noise stream.
  for (int t = 0; t < kThreads; ++t) {
    rng::Engine engine = ThreadEngine(t);
    ASSERT_EQ(parallel[t].size(),
              static_cast<std::size_t>(kAnswersPerThread));
    for (int i = 0; i < kAnswersPerThread; ++i) {
      auto noisy = mechanism.Answer(data, 1.0, engine);
      ASSERT_TRUE(noisy.ok());
      EXPECT_VECTOR_NEAR(parallel[t][i], noisy.value(), 0.0)
          << "thread " << t << " answer " << i;
    }
  }

  // Distinct engines produced distinct streams (the threads were not all
  // sampling one accidental shared sequence).
  EXPECT_FALSE(lrm::test::VectorNearPred("a", "b", "0", parallel[0][0],
                                         parallel[1][0], 0.0));
}

}  // namespace
}  // namespace lrm::core
