#include "core/alm_solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "workload/generators.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Matrix;

Matrix LowRankMatrix(std::uint64_t seed, Index m, Index n, Index rank) {
  rng::Engine engine(seed);
  return linalg::RandomGaussianMatrix(engine, m, rank) *
         linalg::RandomGaussianMatrix(engine, rank, n);
}

// The contracts every returned decomposition must satisfy regardless of how
// it was seeded: columns of L in the unit L1 ball, residual as reported,
// residual ≤ γ when converged.
void ExpectContracts(const Matrix& w, const Decomposition& d, double gamma,
                     double tol = 1e-6) {
  for (Index j = 0; j < d.l.cols(); ++j) {
    EXPECT_LE(linalg::ColumnAbsSum(d.l, j), 1.0 + tol) << "column " << j;
  }
  EXPECT_LE(d.sensitivity, 1.0 + tol);
  EXPECT_NEAR(linalg::FrobeniusNorm(w - d.b * d.l), d.residual,
              1e-6 * (1.0 + d.residual));
  if (d.converged) {
    EXPECT_LE(d.residual, gamma + tol);
  }
}

TEST(ValidateDecompositionOptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateDecompositionOptions({}, 16, 24).ok());
}

TEST(ValidateDecompositionOptionsTest, RejectsEveryBadKnob) {
  const auto expect_invalid = [](DecompositionOptions options) {
    const Status status = ValidateDecompositionOptions(options, 16, 24);
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument)
        << status.ToString();
  };
  {
    DecompositionOptions o;
    o.gamma = -1e-9;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.rank = -1;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.rank = 25;  // > max(m, n) = 24
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.beta_initial = 0.0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.beta_growth = 1.0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.beta_max = 0.5;  // < beta_initial = 1
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.beta_update_every = 0;  // would be a modulo-by-zero in the schedule
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.stagnation_ratio = 0.0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.max_outer_iterations = 0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.max_inner_iterations = 0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.l_max_iterations = 0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.inner_tolerance = -1.0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.l_tolerance = -1.0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.polish_patience = 0;
    expect_invalid(o);
  }
  {
    DecompositionOptions o;
    o.rank_tolerance = 0.0;
    expect_invalid(o);
  }
}

TEST(ValidateDecompositionOptionsTest, RankMayExceedMinDimension) {
  // The paper's §1 example decomposes a 3×4 workload with r = 4 > m;
  // noise-on-data itself is the r = n case. Only r > max(m, n) is absurd.
  DecompositionOptions options;
  options.rank = 24;
  EXPECT_TRUE(ValidateDecompositionOptions(options, 16, 24).ok());
}

TEST(DecompositionSolverTest, ColdSolveMatchesDecomposeWorkload) {
  const Matrix w = LowRankMatrix(1, 20, 30, 4);
  DecompositionOptions options;
  options.gamma = 1e-3;
  DecompositionSolver solver(options);
  const StatusOr<Decomposition> from_solver = solver.Solve(w);
  const StatusOr<Decomposition> from_wrapper = DecomposeWorkload(w, options);
  ASSERT_TRUE(from_solver.ok());
  ASSERT_TRUE(from_wrapper.ok());
  EXPECT_FALSE(from_solver->warm_started);
  EXPECT_FALSE(solver.last_was_warm());
  // The wrapper is a throwaway solver: identical inputs, identical bits.
  EXPECT_TRUE(ApproxEqual(from_solver->b, from_wrapper->b, 0.0));
  EXPECT_TRUE(ApproxEqual(from_solver->l, from_wrapper->l, 0.0));
  EXPECT_EQ(from_solver->outer_iterations, from_wrapper->outer_iterations);
}

TEST(DecompositionSolverTest, ManualPhaseLoopReproducesSolve) {
  // The public phases ARE the solver: driving them by hand must reproduce
  // Solve() bit for bit (minus factor retention, which only Solve does).
  const Matrix w = LowRankMatrix(2, 18, 26, 5);
  DecompositionOptions options;
  options.gamma = 1e-2;

  DecompositionSolver manual(options);
  StatusOr<AlmState> state = manual.InitializeState(w);
  ASSERT_TRUE(state.ok());
  for (int outer = 1; outer <= options.max_outer_iterations; ++outer) {
    ASSERT_TRUE(manual.RunAlternation(w, &*state).ok());
    if (manual.RecordIterateAndAdvanceSchedule(w, &*state) ==
        DecompositionSolver::OuterAction::kStop) {
      break;
    }
  }
  const Decomposition from_phases = manual.Finalize(&*state);
  EXPECT_FALSE(manual.has_retained_factors());

  DecompositionSolver solver(options);
  const StatusOr<Decomposition> from_solve = solver.Solve(w);
  ASSERT_TRUE(from_solve.ok());
  EXPECT_TRUE(solver.has_retained_factors());
  EXPECT_TRUE(ApproxEqual(from_phases.b, from_solve->b, 0.0));
  EXPECT_TRUE(ApproxEqual(from_phases.l, from_solve->l, 0.0));
  EXPECT_EQ(from_phases.outer_iterations, from_solve->outer_iterations);
  EXPECT_EQ(from_phases.converged, from_solve->converged);
}

TEST(DecompositionSolverTest, WarmResolveBeatsColdAcrossWorkloadFamilies) {
  // The tentpole contract: a warm re-solve of the same W reconverges in
  // fewer outer iterations to an equal-or-better Lemma-1 error, and never
  // violates the feasibility contracts.
  for (auto kind : {workload::WorkloadKind::kWDiscrete,
                    workload::WorkloadKind::kWRange,
                    workload::WorkloadKind::kWRelated}) {
    SCOPED_TRACE(workload::WorkloadKindName(kind));
    const StatusOr<workload::Workload> w =
        workload::GenerateWorkload(kind, 24, 48, 5, 11);
    ASSERT_TRUE(w.ok());
    DecompositionOptions options;
    options.gamma = 0.1;
    DecompositionSolver solver(options);

    const StatusOr<Decomposition> cold = solver.Solve(w->matrix());
    ASSERT_TRUE(cold.ok());
    EXPECT_FALSE(cold->warm_started);
    ExpectContracts(w->matrix(), *cold, options.gamma, 1e-5);

    const StatusOr<Decomposition> warm = solver.Solve(w->matrix());
    ASSERT_TRUE(warm.ok());
    EXPECT_TRUE(warm->warm_started);
    EXPECT_TRUE(solver.last_was_warm());
    ExpectContracts(w->matrix(), *warm, options.gamma, 1e-5);

    EXPECT_LT(warm->outer_iterations, cold->outer_iterations);
    // The feasible seed is recorded as the initial best, so the warm
    // result can only match or improve on the cold one.
    ASSERT_TRUE(cold->converged);
    EXPECT_TRUE(warm->converged);
    EXPECT_LE(warm->ExpectedNoiseError(1.0),
              cold->ExpectedNoiseError(1.0) * (1.0 + 1e-9));
  }
}

TEST(DecompositionSolverTest, WarmStartAcrossGammaChangeKeepsContracts) {
  const StatusOr<workload::Workload> w =
      workload::GenerateWRange(20, 40, 21);
  ASSERT_TRUE(w.ok());
  DecompositionOptions options;
  options.gamma = 0.05;
  DecompositionSolver solver(options);
  const StatusOr<Decomposition> tight = solver.Solve(w->matrix());
  ASSERT_TRUE(tight.ok());

  options.gamma = 0.5;
  solver.set_options(options);
  EXPECT_TRUE(solver.has_retained_factors());
  const StatusOr<Decomposition> loose = solver.Solve(w->matrix());
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->warm_started);
  EXPECT_TRUE(loose->converged);
  ExpectContracts(w->matrix(), *loose, 0.5, 1e-5);
  // The γ = 0.05 solution is feasible at γ = 0.5, so the warm solve can
  // only match or improve on it.
  EXPECT_LE(loose->ExpectedNoiseError(1.0),
            tight->ExpectedNoiseError(1.0) * (1.0 + 1e-9));
}

TEST(DecompositionSolverTest, WarmStartOnPerturbedWorkload) {
  const Matrix w1 = LowRankMatrix(3, 24, 36, 6);
  rng::Engine engine(17);
  Matrix w2 = w1;
  w2.Axpy(0.01, linalg::RandomGaussianMatrix(engine, 24, 36));

  DecompositionOptions options;
  options.gamma = 0.5;
  DecompositionSolver solver(options);
  ASSERT_TRUE(solver.Solve(w1).ok());

  const StatusOr<Decomposition> warm = solver.Solve(w2);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_TRUE(warm->converged);
  ExpectContracts(w2, *warm, options.gamma, 1e-5);
}

TEST(DecompositionSolverTest, SeedFactorsWarmStartsAFreshSolver) {
  const Matrix w = LowRankMatrix(4, 20, 28, 4);
  DecompositionOptions options;
  options.gamma = 0.05;
  DecompositionSolver donor(options);
  const StatusOr<Decomposition> cold = donor.Solve(w);
  ASSERT_TRUE(cold.ok());

  DecompositionSolver recipient(options);
  ASSERT_TRUE(recipient.SeedFactors(cold->b, cold->l).ok());
  const StatusOr<Decomposition> warm = recipient.Solve(w);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_LT(warm->outer_iterations, cold->outer_iterations);
  EXPECT_LE(warm->ExpectedNoiseError(1.0),
            cold->ExpectedNoiseError(1.0) * (1.0 + 1e-9));
}

TEST(DecompositionSolverTest, SeedFactorsRescalesInfeasibleSeeds) {
  // A seed with Δ(L) > 1 would start outside the L1 constraint set; the
  // Lemma 2 rescaling restores feasibility without moving B·L.
  const Matrix w = LowRankMatrix(5, 12, 16, 3);
  DecompositionOptions options;
  options.gamma = 0.5;
  DecompositionSolver donor(options);
  const StatusOr<Decomposition> cold = donor.Solve(w);
  ASSERT_TRUE(cold.ok());

  Matrix b = cold->b;
  Matrix l = cold->l;
  l *= 7.0;  // Δ(L) now ≈ 7
  b /= 7.0;  // same product
  DecompositionSolver recipient(options);
  ASSERT_TRUE(recipient.SeedFactors(std::move(b), std::move(l)).ok());
  const StatusOr<Decomposition> warm = recipient.Solve(w);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  ExpectContracts(w, *warm, options.gamma, 1e-5);
  EXPECT_LE(warm->ExpectedNoiseError(1.0),
            cold->ExpectedNoiseError(1.0) * (1.0 + 1e-9));
}

TEST(DecompositionSolverTest, SeedFactorsRejectsNonConformingFactors) {
  DecompositionSolver solver;
  EXPECT_EQ(solver.SeedFactors(Matrix(3, 2), Matrix(3, 4)).code(),
            StatusCode::kInvalidArgument);  // b.cols != l.rows
  EXPECT_EQ(solver.SeedFactors(Matrix(), Matrix()).code(),
            StatusCode::kInvalidArgument);
  Matrix nan_b(3, 2);
  nan_b(0, 0) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(solver.SeedFactors(std::move(nan_b), Matrix(2, 4)).code(),
            StatusCode::kInvalidArgument);
}

TEST(DecompositionSolverTest, MismatchedSeedIsAnErrorAndDoesNotPoison) {
  const Matrix w = LowRankMatrix(6, 10, 14, 3);
  DecompositionOptions options;
  options.gamma = 0.5;
  DecompositionSolver solver(options);
  // 5×2 · 2×7 seed against a 10×14 workload: hard seeds must not silently
  // fall back — the caller asserted conformance.
  ASSERT_TRUE(solver.SeedFactors(Matrix(5, 2), Matrix(2, 7)).ok());
  EXPECT_EQ(solver.Solve(w).status().code(), StatusCode::kInvalidArgument);
  // The bad seed is consumed: the next solve runs cold and succeeds.
  const StatusOr<Decomposition> cold = solver.Solve(w);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm_started);
}

TEST(DecompositionSolverTest, SaturatedPenaltyDoesNotPoisonTheSession) {
  // An infeasible pane (r < rank(W), tiny γ) saturates β at beta_max.
  // Resuming that dual state would stop every later warm solve after one
  // outer iteration forever; the session must re-enter with a fresh
  // penalty schedule instead.
  const Matrix w = LowRankMatrix(12, 12, 18, 6);
  DecompositionOptions options;
  options.rank = 2;
  options.gamma = 1e-6;
  options.beta_max = 1e4;
  options.max_outer_iterations = 80;
  DecompositionSolver solver(options);
  const StatusOr<Decomposition> saturated = solver.Solve(w);
  ASSERT_TRUE(saturated.ok());
  EXPECT_FALSE(saturated->converged);

  options.gamma = 1e3;  // trivially feasible even at rank 2
  solver.set_options(options);
  const StatusOr<Decomposition> warm = solver.Solve(w);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->warm_started);
  EXPECT_TRUE(warm->converged);
  // A poisoned (saturated) resume would report exactly one outer
  // iteration.
  EXPECT_GT(warm->outer_iterations, 1);
}

TEST(DecompositionSolverTest, AbsurdSeedRankRejected) {
  // Hard seeds get the same resource guard as the rank knob (widened by
  // the automatic-rank headroom): r = 100 on a 16×24 workload must be an
  // error, not a silent blow-up.
  const Matrix w = LowRankMatrix(13, 16, 24, 3);
  DecompositionSolver solver;
  ASSERT_TRUE(solver.SeedFactors(Matrix(16, 100), Matrix(100, 24)).ok());
  EXPECT_EQ(solver.Solve(w).status().code(), StatusCode::kInvalidArgument);
  // The bad seed is consumed; the next solve runs cold.
  const StatusOr<Decomposition> cold = solver.Solve(w);
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->warm_started);
}

TEST(DecompositionSolverTest, ResetForcesColdSolve) {
  const Matrix w = LowRankMatrix(7, 16, 20, 4);
  DecompositionOptions options;
  options.gamma = 0.1;
  DecompositionSolver solver(options);
  ASSERT_TRUE(solver.Solve(w).ok());
  EXPECT_TRUE(solver.has_retained_factors());
  solver.Reset();
  EXPECT_FALSE(solver.has_retained_factors());
  const StatusOr<Decomposition> again = solver.Solve(w);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->warm_started);
}

TEST(DecompositionSolverTest, ShapeChangeFallsBackToColdSolve) {
  DecompositionOptions options;
  options.gamma = 0.1;
  DecompositionSolver solver(options);
  ASSERT_TRUE(solver.Solve(LowRankMatrix(8, 16, 20, 4)).ok());
  // A session re-bound to a differently shaped workload must keep working
  // (retained factors are a soft seed).
  const StatusOr<Decomposition> other =
      solver.Solve(LowRankMatrix(9, 8, 12, 2));
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->warm_started);
}

TEST(DecompositionSolverTest, ExplicitRankChangeForcesColdSolve) {
  const Matrix w = LowRankMatrix(10, 16, 20, 4);
  DecompositionOptions options;
  options.gamma = 0.1;
  options.rank = 5;
  DecompositionSolver solver(options);
  ASSERT_TRUE(solver.Solve(w).ok());
  options.rank = 8;  // retained factors have r = 5: they cannot seed this
  solver.set_options(options);
  const StatusOr<Decomposition> resized = solver.Solve(w);
  ASSERT_TRUE(resized.ok());
  EXPECT_FALSE(resized->warm_started);
  EXPECT_EQ(resized->b.cols(), 8);
}

TEST(DecompositionSolverTest, CancelledTokenAbortsSolveTyped) {
  const Matrix w = LowRankMatrix(12, 16, 20, 4);
  DecompositionOptions options;
  options.gamma = 0.1;
  DecompositionSolver solver(options);

  CancelSource source;
  source.Cancel();
  solver.set_cancel_token(source.token());
  const StatusOr<Decomposition> aborted = solver.Solve(w);
  EXPECT_EQ(aborted.status().code(), StatusCode::kCancelled);
  // An aborted solve retains nothing.
  EXPECT_FALSE(solver.has_retained_factors());

  // An expired deadline maps to the other typed cause.
  solver.set_cancel_token(CancelSource::WithTimeout(-1.0).token());
  EXPECT_EQ(solver.Solve(w).status().code(),
            StatusCode::kDeadlineExceeded);

  // Clearing the token (tokens persist across solves) restores service.
  solver.set_cancel_token(CancelToken());
  EXPECT_TRUE(solver.Solve(w).ok());
}

TEST(DecompositionSolverTest, AbortedSolveKeepsEarlierRetainedFactors) {
  const Matrix w = LowRankMatrix(13, 16, 20, 4);
  DecompositionOptions options;
  options.gamma = 0.1;
  DecompositionSolver solver(options);
  ASSERT_TRUE(solver.Solve(w).ok());
  ASSERT_TRUE(solver.has_retained_factors());

  solver.set_cancel_token(CancelSource::WithTimeout(-1.0).token());
  EXPECT_FALSE(solver.Solve(w).ok());
  // Factors from the earlier successful solve survive the abort, so the
  // session warm-starts again once the token is cleared.
  EXPECT_TRUE(solver.has_retained_factors());
  solver.set_cancel_token(CancelToken());
  const StatusOr<Decomposition> resumed = solver.Solve(w);
  ASSERT_TRUE(resumed.ok());
  EXPECT_TRUE(resumed->warm_started);
}

TEST(DecompositionSolverTest, WarmSolveIsDeterministic) {
  const Matrix w = LowRankMatrix(11, 20, 26, 5);
  DecompositionOptions options;
  options.gamma = 0.1;
  DecompositionSolver s1(options), s2(options);
  ASSERT_TRUE(s1.Solve(w).ok());
  ASSERT_TRUE(s2.Solve(w).ok());
  const StatusOr<Decomposition> w1 = s1.Solve(w);
  const StatusOr<Decomposition> w2 = s2.Solve(w);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_TRUE(ApproxEqual(w1->b, w2->b, 0.0));
  EXPECT_TRUE(ApproxEqual(w1->l, w2->l, 0.0));
}

}  // namespace
}  // namespace lrm::core
