#include "core/theory.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/decomposition.h"
#include "linalg/random_matrix.h"
#include "linalg/svd.h"
#include "rng/engine.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Vector;

TEST(Lemma3Test, FlatSpectrumClosedForm) {
  // r equal singular values λ: bound = r·r·λ²/ε².
  const Vector spectrum{2.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(Lemma3UpperBound(spectrum, 3, 1.0), 36.0);
}

TEST(Lemma3Test, UsesOnlyTopRValues) {
  const Vector spectrum{3.0, 2.0, 1.0};
  // r = 2: 2·(9+4)/ε².
  EXPECT_DOUBLE_EQ(Lemma3UpperBound(spectrum, 2, 1.0), 26.0);
}

TEST(Lemma3Test, EpsilonScaling) {
  const Vector spectrum{1.0, 1.0};
  EXPECT_NEAR(Lemma3UpperBound(spectrum, 2, 0.1) /
                  Lemma3UpperBound(spectrum, 2, 1.0),
              100.0, 1e-9);
}

TEST(Lemma4Test, ZeroSingularValueCollapsesBound) {
  const Vector spectrum{2.0, 0.0};
  EXPECT_DOUBLE_EQ(Lemma4LowerBound(spectrum, 2, 1.0), 0.0);
}

TEST(Lemma4Test, FlatSpectrumValue) {
  // r = 2, λ = 1: ((4/2)·1)^(2/2)·8 = 16 (Γ-ball volume 2^r/r! = 2).
  const Vector spectrum{1.0, 1.0};
  EXPECT_NEAR(Lemma4LowerBound(spectrum, 2, 1.0), 16.0, 1e-9);
}

TEST(Lemma4Test, SurvivesLargeRankWithoutOverflow) {
  // 2^r/r! underflows past r ≈ 170 if computed naively; the log-space path
  // must return a finite value.
  const Index r = 400;
  Vector spectrum(r, 3.0);
  const double bound = Lemma4LowerBound(spectrum, r, 0.1);
  EXPECT_TRUE(std::isfinite(bound));
  EXPECT_GT(bound, 0.0);
}

TEST(BoundOrderingTest, Theorem2RatioBoundsUpperOverLower) {
  // The provable relationship (Theorem 2's proof): for r > 5,
  //   Lemma3/Lemma4 ≤ C²/((2^r/r!)^{2/r}·r) ≤ (C/4)²·r.
  // (A raw Lemma3 ≥ Lemma4 ordering does NOT hold numerically — Lemma 4 is
  // an Ω() bound whose constant the paper leaves unspecified.)
  rng::Engine engine(1);
  for (int trial = 0; trial < 30; ++trial) {
    const Index r = 6 + static_cast<Index>(engine.Next() % 10);
    Vector spectrum(r);
    for (Index i = 0; i < r; ++i) {
      spectrum[i] = std::exp(2.0 * engine.NextDouble());
    }
    std::sort(spectrum.begin(), spectrum.end(), std::greater<double>());
    const double upper = Lemma3UpperBound(spectrum, r, 0.5);
    const double lower = Lemma4LowerBound(spectrum, r, 0.5);
    ASSERT_GT(lower, 0.0);
    const StatusOr<double> ratio = Theorem2ApproximationRatio(spectrum, r);
    ASSERT_TRUE(ratio.ok());
    EXPECT_LE(upper / lower, *ratio * (1.0 + 1e-9)) << "r=" << r;
  }
}

TEST(BoundOrderingTest, LrmNoiseErrorRespectsLemma3) {
  // End-to-end theory check: the ALM decomposition can never do worse than
  // the Lemma-3 feasible construction it is seeded with.
  rng::Engine engine(2);
  const Index m = 14, n = 20, rank = 4;
  const linalg::Matrix w =
      linalg::RandomGaussianMatrix(engine, m, rank) *
      linalg::RandomGaussianMatrix(engine, rank, n);
  const StatusOr<linalg::SvdResult> svd = linalg::JacobiSvd(w);
  ASSERT_TRUE(svd.ok());

  DecompositionOptions options;
  options.rank = rank;
  options.gamma = 1e-3;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());

  const double epsilon = 1.0;
  const double error = d->ExpectedNoiseError(epsilon);
  const double upper = 2.0 * Lemma3UpperBound(svd->singular_values, rank,
                                              epsilon);
  // (Lemma 3 bounds tr(BᵀB)/ε²; the mechanism error is 2·tr(BᵀB)·Δ²/ε².)
  EXPECT_LE(error, upper * 1.05);
  // The Hardt–Talwar bound is finite and positive for this full-spectrum
  // workload (its Ω-constant precludes a direct dominance check).
  const double lower = Lemma4LowerBound(svd->singular_values, rank, epsilon);
  EXPECT_GT(lower, 0.0);
  EXPECT_TRUE(std::isfinite(lower));
}

TEST(Theorem2Test, RejectsSmallRank) {
  const Vector spectrum{1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
  EXPECT_FALSE(Theorem2ApproximationRatio(spectrum, 5).ok());
  EXPECT_TRUE(Theorem2ApproximationRatio(spectrum, 6).ok());
}

TEST(Theorem2Test, FlatSpectrumGivesROverSixteen) {
  // C = 1: ratio = r/16.
  const Vector spectrum(8, 2.5);
  const StatusOr<double> ratio = Theorem2ApproximationRatio(spectrum, 8);
  ASSERT_TRUE(ratio.ok());
  EXPECT_NEAR(*ratio, 0.5, 1e-12);
}

TEST(Theorem2Test, GrowsWithConditionNumber) {
  Vector spread{10.0, 5.0, 4.0, 3.0, 2.0, 2.0, 1.0};
  Vector flat(7, 10.0);
  const StatusOr<double> r_spread = Theorem2ApproximationRatio(spread, 7);
  const StatusOr<double> r_flat = Theorem2ApproximationRatio(flat, 7);
  ASSERT_TRUE(r_spread.ok());
  ASSERT_TRUE(r_flat.ok());
  EXPECT_GT(*r_spread, *r_flat);
}

TEST(Theorem2Test, RejectsZeroTailValue) {
  Vector spectrum(7, 1.0);
  spectrum[6] = 0.0;
  EXPECT_FALSE(Theorem2ApproximationRatio(spectrum, 7).ok());
}

TEST(Theorem3Test, CombinesNoiseAndStructuralTerms) {
  // 2·tr/ε² + residual²·Σx²: 2·5/1 + 0.01·100 = 11.
  EXPECT_DOUBLE_EQ(Theorem3ErrorBound(5.0, 0.1, 100.0, 1.0), 11.0);
}

TEST(Theorem3Test, ZeroResidualLeavesOnlyNoise) {
  EXPECT_DOUBLE_EQ(Theorem3ErrorBound(7.0, 0.0, 1e9, 1.0), 14.0);
}

TEST(Theorem3Test, BoundIsMonotoneInEachArgument) {
  const double base = Theorem3ErrorBound(5.0, 0.1, 100.0, 1.0);
  EXPECT_GT(Theorem3ErrorBound(6.0, 0.1, 100.0, 1.0), base);
  EXPECT_GT(Theorem3ErrorBound(5.0, 0.2, 100.0, 1.0), base);
  EXPECT_GT(Theorem3ErrorBound(5.0, 0.1, 200.0, 1.0), base);
  EXPECT_GT(Theorem3ErrorBound(5.0, 0.1, 100.0, 0.5), base);
}

}  // namespace
}  // namespace lrm::core
