// Focused tests of the relaxed decomposition program (paper Formula 8 and
// Theorem 3): the γ knob's semantics and the structural-error accounting.

#include <gtest/gtest.h>

#include <cmath>

#include "core/low_rank_mechanism.h"
#include "core/theory.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "workload/generators.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

Matrix DenseWorkload(std::uint64_t seed, Index m, Index n) {
  rng::Engine engine(seed);
  return linalg::RandomGaussianMatrix(engine, m, n);
}

class GammaSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(GammaSweepTest, ConvergedResidualRespectsGamma) {
  const double gamma = GetParam();
  DecompositionOptions options;
  options.gamma = gamma;
  const StatusOr<Decomposition> d =
      DecomposeWorkload(DenseWorkload(1, 10, 14), options);
  ASSERT_TRUE(d.ok());
  if (d->converged) {
    EXPECT_LE(d->residual, gamma + 1e-9);
  }
  // Feasibility of L is unconditional.
  for (Index j = 0; j < d->l.cols(); ++j) {
    EXPECT_LE(linalg::ColumnAbsSum(d->l, j), 1.0 + 1e-9);
  }
}

TEST_P(GammaSweepTest, Theorem3BoundsTheActualTotalError) {
  const double gamma = GetParam();
  LowRankMechanismOptions options;
  options.decomposition.gamma = gamma;
  LowRankMechanism mech(options);
  const workload::Workload w("dense", DenseWorkload(2, 8, 12));
  ASSERT_TRUE(mech.Prepare(w).ok());

  rng::Engine engine(3);
  const Vector data = linalg::RandomGaussianVector(engine, 12) * 10.0;
  const double epsilon = 1.0;

  // Theorem 3 with the achieved residual: noise + structural must not
  // exceed 2·tr(BᵀB)/ε² + ρ²Σx².
  const double bound = Theorem3ErrorBound(
      mech.decomposition().scale, mech.decomposition().residual,
      linalg::SquaredNorm(data), epsilon);
  const double noise = *mech.ExpectedSquaredError(epsilon);
  const double structural = mech.StructuralError(data);
  EXPECT_LE(noise + structural, bound * (1.0 + 1e-9))
      << "gamma=" << gamma;
}

INSTANTIATE_TEST_SUITE_P(Gammas, GammaSweepTest,
                         ::testing::Values(1e-4, 1e-2, 0.5, 2.0, 10.0));

TEST(RelaxationTest, WiderToleranceNeverIncreasesScale) {
  // The feasible set of Formula 8 grows with γ, so the optimal tr(BᵀB) is
  // non-increasing; the solver should track that (with solver slack).
  const Matrix w = DenseWorkload(4, 12, 16);
  double previous_scale = std::numeric_limits<double>::infinity();
  for (double gamma : {1e-3, 0.5, 5.0}) {
    DecompositionOptions options;
    options.gamma = gamma;
    const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
    ASSERT_TRUE(d.ok());
    EXPECT_LE(d->scale, previous_scale * 1.25) << "gamma=" << gamma;
    previous_scale = std::min(previous_scale, d->scale);
  }
}

TEST(RelaxationTest, HugeGammaAdmitsTheZeroDecomposition) {
  // With γ ≥ ‖W‖_F the program's optimum is B = 0 (answer everything as
  // zero); the solver must find something at least that good in scale and
  // the structural accounting must absorb it.
  const Matrix w = DenseWorkload(5, 6, 9);
  DecompositionOptions options;
  options.gamma = linalg::FrobeniusNorm(w) * 2.0;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->converged);
  // The returned decomposition is feasible; scale near zero is legal here.
  EXPECT_LE(d->residual, options.gamma + 1e-9);
}

TEST(RelaxationTest, StructuralErrorMatchesResidualOnWorstCaseData) {
  // ‖(W−BL)x‖ is maximized (over unit x) at the residual's top singular
  // vector; on random data it is bounded by residual²·Σx² (Cauchy–
  // Schwarz), which is what Theorem 3 uses.
  LowRankMechanismOptions options;
  options.decomposition.gamma = 3.0;
  LowRankMechanism mech(options);
  const workload::Workload w("dense", DenseWorkload(6, 10, 10));
  ASSERT_TRUE(mech.Prepare(w).ok());
  rng::Engine engine(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Vector data = linalg::RandomGaussianVector(engine, 10) * 5.0;
    EXPECT_LE(mech.StructuralError(data),
              mech.decomposition().residual * mech.decomposition().residual *
                      linalg::SquaredNorm(data) +
                  1e-9);
  }
}

TEST(RelaxationTest, ZeroWorkloadYieldsZeroFactors) {
  DecompositionOptions options;
  options.rank = 2;
  const StatusOr<Decomposition> d = DecomposeWorkload(Matrix(4, 6), options);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->converged);
  EXPECT_NEAR(d->scale, 0.0, 1e-18);
  EXPECT_NEAR(d->residual, 0.0, 1e-18);
}

}  // namespace
}  // namespace lrm::core
