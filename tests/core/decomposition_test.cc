#include "core/decomposition.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/decomposition_init.h"
#include "linalg/random_matrix.h"
#include "linalg/svd.h"
#include "rng/engine.h"
#include "workload/generators.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Matrix;

Matrix LowRankMatrix(std::uint64_t seed, Index m, Index n, Index rank) {
  rng::Engine engine(seed);
  return linalg::RandomGaussianMatrix(engine, m, rank) *
         linalg::RandomGaussianMatrix(engine, rank, n);
}

void ExpectFeasible(const Matrix& w, const Decomposition& d,
                    double gamma, double tol = 1e-6) {
  // Sensitivity constraint: every column of L in the unit L1 ball.
  for (Index j = 0; j < d.l.cols(); ++j) {
    EXPECT_LE(linalg::ColumnAbsSum(d.l, j), 1.0 + tol) << "column " << j;
  }
  EXPECT_LE(d.sensitivity, 1.0 + tol);
  // Residual constraint.
  EXPECT_NEAR(linalg::FrobeniusNorm(w - d.b * d.l), d.residual,
              1e-6 * (1.0 + d.residual));
  if (d.converged) {
    EXPECT_LE(d.residual, gamma + tol);
  }
}

TEST(DecompositionTest, RejectsInvalidInputs) {
  EXPECT_FALSE(DecomposeWorkload(Matrix()).ok());
  DecompositionOptions bad_gamma;
  bad_gamma.gamma = -1.0;
  EXPECT_FALSE(DecomposeWorkload(Matrix::Identity(3), bad_gamma).ok());
  DecompositionOptions bad_beta;
  bad_beta.beta_growth = 0.5;
  EXPECT_FALSE(DecomposeWorkload(Matrix::Identity(3), bad_beta).ok());
}

TEST(DecompositionTest, ExactlyFactorsLowRankWorkload) {
  const Matrix w = LowRankMatrix(1, 20, 30, 4);
  DecompositionOptions options;
  options.gamma = 1e-3;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  EXPECT_TRUE(d->converged);
  ExpectFeasible(w, *d, options.gamma);
  EXPECT_LE(d->residual, 1e-3);
}

TEST(DecompositionTest, AutoRankUsesOnePointTwoTimesRank) {
  const Matrix w = LowRankMatrix(2, 16, 24, 5);
  const StatusOr<Decomposition> d = DecomposeWorkload(w);
  ASSERT_TRUE(d.ok());
  // r = ceil(1.2·5) = 6.
  EXPECT_EQ(d->b.cols(), 6);
  EXPECT_EQ(d->l.rows(), 6);
}

TEST(DecompositionTest, ScaleBoundedByLemma3Construction) {
  // Lemma 3's feasible point has tr(BᵀB) = r·Σσ²; the ALM optimum must do
  // at least as well (allowing solver slack).
  const Matrix w = LowRankMatrix(3, 15, 25, 3);
  const StatusOr<linalg::SvdResult> svd = linalg::JacobiSvd(w);
  ASSERT_TRUE(svd.ok());
  DecompositionOptions options;
  options.rank = 3;
  options.gamma = 1e-2;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  double sum_sq = 0.0;
  for (Index i = 0; i < 3; ++i) {
    sum_sq += svd->singular_values[i] * svd->singular_values[i];
  }
  EXPECT_LE(d->scale * d->sensitivity * d->sensitivity,
            3.0 * sum_sq * 1.05);
}

TEST(DecompositionTest, RankBelowTrueRankCannotConverge) {
  // Figure 3's left side: r < rank(W) leaves an irreducible residual.
  const Matrix w = LowRankMatrix(4, 12, 18, 6);
  DecompositionOptions options;
  options.rank = 3;
  options.gamma = 1e-4;
  options.max_outer_iterations = 60;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  EXPECT_FALSE(d->converged);
  // Residual at least the Frobenius tail σ₄..σ₆ of the best rank-3 approx.
  const StatusOr<linalg::SvdResult> svd = linalg::JacobiSvd(w);
  ASSERT_TRUE(svd.ok());
  double tail = 0.0;
  for (Index i = 3; i < 6; ++i) {
    tail += svd->singular_values[i] * svd->singular_values[i];
  }
  EXPECT_GE(d->residual, std::sqrt(tail) * 0.99);
}

TEST(DecompositionTest, LargerGammaStopsEarlier) {
  const Matrix w = LowRankMatrix(5, 20, 20, 8);
  DecompositionOptions tight;
  tight.gamma = 1e-4;
  DecompositionOptions loose;
  loose.gamma = 1.0;
  const StatusOr<Decomposition> d_tight = DecomposeWorkload(w, tight);
  const StatusOr<Decomposition> d_loose = DecomposeWorkload(w, loose);
  ASSERT_TRUE(d_tight.ok());
  ASSERT_TRUE(d_loose.ok());
  EXPECT_LE(d_loose->outer_iterations, d_tight->outer_iterations);
  EXPECT_TRUE(d_loose->converged);
}

TEST(DecompositionTest, IdentityWorkloadKeepsUnitSensitivity) {
  const Matrix w = Matrix::Identity(8);
  DecompositionOptions options;
  options.rank = 8;
  options.gamma = 1e-3;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  ExpectFeasible(w, *d, options.gamma);
  // For W = I with Δ = 1, the optimal noise error is Φ = n (NOD); ALM must
  // land in that ballpark.
  EXPECT_LE(d->ExpectedNoiseError(1.0), 2.0 * 8.0 * 1.3);
}

TEST(DecompositionTest, Lemma2RescalingKeepsProductError) {
  // The invariance the optimization builds on: scaling (B, L) by (α, 1/α)
  // leaves both the product and Φ·Δ² unchanged.
  const Matrix w = LowRankMatrix(6, 10, 14, 3);
  DecompositionOptions options;
  options.rank = 4;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  const double alpha = 3.7;
  Matrix b2 = d->b;
  b2 *= alpha;
  Matrix l2 = d->l;
  l2 /= alpha;
  EXPECT_TRUE(ApproxEqual(b2 * l2, d->b * d->l, 1e-9));
  const double phi2 = linalg::SquaredFrobeniusNorm(b2);
  const double delta2 = linalg::MaxColumnAbsSum(l2);
  EXPECT_NEAR(phi2 * delta2 * delta2,
              d->scale * d->sensitivity * d->sensitivity,
              1e-6 * d->scale);
}

TEST(DecompositionTest, GradientBUpdateAblationAlsoConverges) {
  const Matrix w = LowRankMatrix(7, 12, 16, 3);
  DecompositionOptions options;
  options.use_closed_form_b = false;
  options.gamma = 0.05;
  options.max_outer_iterations = 400;
  options.max_inner_iterations = 10;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  ExpectFeasible(w, *d, options.gamma, 1e-5);
  EXPECT_LE(d->residual, 0.6);  // slower path, looser bar
}

TEST(DecompositionTest, DeterministicGivenSeed) {
  const Matrix w = LowRankMatrix(8, 30, 40, 5);
  DecompositionOptions options;
  options.rank = 6;  // < min/2 → randomized SVD init path
  const StatusOr<Decomposition> d1 = DecomposeWorkload(w, options);
  const StatusOr<Decomposition> d2 = DecomposeWorkload(w, options);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_TRUE(ApproxEqual(d1->b, d2->b, 0.0));
  EXPECT_TRUE(ApproxEqual(d1->l, d2->l, 0.0));
}

// Sketch-doubling rank confirmation: rank 100 saturates the 96-column
// starting sketch, forcing one doubling (to the 128-column cap). The lock:
// (a) the search is bitwise deterministic across runs, and (b) its result
// equals a single batch solve over a test matrix drawn AT FINAL WIDTH from
// a fresh engine — which can only hold because widening appends columns to
// the persistent test matrix in a prefix-stable draw order instead of
// redrawing it (AppendGaussianColumns contract).
TEST(DecompositionInitTest, SketchDoublingReusesTestColumnsDeterministically) {
  const Index m = 256;
  const Matrix w = LowRankMatrix(17, m, m, 100);
  DecompositionOptions options;

  linalg::SvdResult first, second;
  Index r1 = 0, r2 = 0;
  ASSERT_TRUE(TrySketchedInit(w, options, &first, &r1));
  ASSERT_TRUE(TrySketchedInit(w, options, &second, &r2));
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, 120);  // ⌈1.2·100⌉
  EXPECT_TRUE(ApproxEqual(first.u, second.u, 0.0));
  EXPECT_TRUE(ApproxEqual(first.v, second.v, 0.0));

  // Replay: widths are min(m, sketch + oversample) for sketch = 96, then
  // min(m/2, 192) = 128 — so 104 then 136 columns of one engine(seed).
  rng::Engine engine(options.seed);
  Matrix omega;
  linalg::AppendGaussianColumns(engine, m, 136, &omega);
  linalg::RandomizedSvdOptions rsvd;
  rsvd.seed = options.seed;
  const StatusOr<linalg::SvdResult> batch =
      linalg::RandomizedSvdWithTestMatrix(w, 128, omega, rsvd);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(ApproxEqual(first.u, batch->u, 0.0));
  EXPECT_TRUE(ApproxEqual(first.v, batch->v, 0.0));
}

// The at-size exact fallback (randomized init off) rides the partial
// Gram SVD: automatic rank must land on ⌈1.2·rank(W)⌉ and the Lemma-3
// factors must reproduce a workload whose rank fits inside them.
TEST(DecompositionInitTest, PartialExactFallbackMatchesAutoRank) {
  const Matrix w = LowRankMatrix(19, 200, 220, 12);
  DecompositionOptions options;
  options.use_randomized_init = false;
  const StatusOr<InitFactors> init = ColdInit(w, options);
  ASSERT_TRUE(init.ok());
  EXPECT_EQ(init->rank, 15);  // ⌈1.2·12⌉
  EXPECT_EQ(init->b.cols(), 15);
  EXPECT_EQ(init->l.rows(), 15);
  EXPECT_LE(linalg::FrobeniusNorm(w - init->b * init->l),
            1e-6 * linalg::FrobeniusNorm(w));
  EXPECT_NEAR(linalg::MaxColumnAbsSum(init->l), 1.0, 1e-12);

  // Caller-pinned rank takes the top-r partial path and stays consistent
  // with the automatic one on the shared prefix.
  DecompositionOptions pinned = options;
  pinned.rank = 15;
  const StatusOr<InitFactors> pinned_init = ColdInit(w, pinned);
  ASSERT_TRUE(pinned_init.ok());
  EXPECT_TRUE(ApproxEqual(init->b, pinned_init->b, 1e-8));
  EXPECT_TRUE(ApproxEqual(init->l, pinned_init->l, 1e-8));
}

TEST(DecompositionTest, ExpectedNoiseErrorFormula) {
  Decomposition d;
  d.scale = 10.0;
  d.sensitivity = 0.5;
  // 2·10·0.25/ε² at ε = 0.5 → 20.
  EXPECT_DOUBLE_EQ(d.ExpectedNoiseError(0.5), 20.0);
}

TEST(DecompositionTest, PerQueryVariancesSumToTotal) {
  const Matrix w = LowRankMatrix(11, 12, 20, 4);
  DecompositionOptions options;
  options.gamma = 0.01;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  const linalg::Vector per_query = d->PerQueryNoiseVariance(0.5);
  ASSERT_EQ(per_query.size(), 12);
  for (Index i = 0; i < per_query.size(); ++i) {
    EXPECT_GE(per_query[i], 0.0);
  }
  EXPECT_NEAR(linalg::Sum(per_query), d->ExpectedNoiseError(0.5),
              1e-9 * d->ExpectedNoiseError(0.5));
}

TEST(DecompositionTest, PerQueryVarianceMatchesHandComputation) {
  Decomposition d;
  d.b = Matrix{{1.0, 1.0}, {2.0, 0.0}};
  d.l = Matrix(2, 3);
  d.sensitivity = 1.0;
  d.scale = linalg::SquaredFrobeniusNorm(d.b);
  const linalg::Vector v = d.PerQueryNoiseVariance(1.0);
  EXPECT_DOUBLE_EQ(v[0], 4.0);  // 2·(1+1)
  EXPECT_DOUBLE_EQ(v[1], 8.0);  // 2·4
}

TEST(DecompositionTest, RandomizedInitMatchesExactInitAtScale) {
  // Large enough (min dim ≥ kRandomizedInitMinDim) that the sketched
  // automatic-rank path engages; the decomposition must still meet γ and
  // land on the same r as the exact spectrum.
  const Matrix w = LowRankMatrix(17, 200, 260, 10);
  DecompositionOptions options;
  options.gamma = 0.05;

  ASSERT_GE(std::min(w.rows(), w.cols()), kRandomizedInitMinDim);
  options.use_randomized_init = true;
  const StatusOr<Decomposition> sketched = DecomposeWorkload(w, options);
  ASSERT_TRUE(sketched.ok());
  EXPECT_TRUE(sketched->converged);
  ExpectFeasible(w, *sketched, options.gamma, 1e-5);
  EXPECT_EQ(sketched->b.cols(), 12);  // ⌈1.2·rank⌉

  options.use_randomized_init = false;
  const StatusOr<Decomposition> exact = DecomposeWorkload(w, options);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(exact->converged);
  ExpectFeasible(w, *exact, options.gamma, 1e-5);
  // At this size the exact path runs through GramSvd, whose squared
  // condition number inflates the 1e-9 rank estimate with noise; the
  // sketch's clamped cutoff recovers the true rank — never a larger r.
  EXPECT_LE(sketched->b.cols(), exact->b.cols());
}

TEST(DecompositionTest, RandomizedInitKeepsExactPathBelowSizeThreshold) {
  // Below kRandomizedInitMinDim the flag is moot: small problems stay on
  // the exact SVD, whose rank estimate is authoritative.
  rng::Engine engine(23);
  const Matrix w = linalg::RandomGaussianMatrix(engine, 32, 32);
  DecompositionOptions options;
  options.gamma = 5.0;
  options.use_randomized_init = true;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  ExpectFeasible(w, *d, options.gamma, 1e-5);
  // r = ⌈1.2·32⌉ proves the exact rank estimate ran.
  EXPECT_EQ(d->b.cols(), 39);
}

TEST(DecompositionTest, RandomizedInitFallsBackWhenSketchSaturates) {
  // Large enough to engage the sketched path, but full rank: every sketch
  // up to min(m, n)/2 stays saturated (no resolvable tail), so the init
  // must fall back to the exact SVD instead of truncating the spectrum.
  rng::Engine engine(29);
  const Matrix w = linalg::RandomGaussianMatrix(engine, 200, 200);
  ASSERT_GE(std::min(w.rows(), w.cols()), kRandomizedInitMinDim);
  DecompositionOptions options;
  options.gamma = 50.0;  // generous: only the init path is under test
  options.max_outer_iterations = 3;
  options.use_randomized_init = true;
  const StatusOr<Decomposition> d = DecomposeWorkload(w, options);
  ASSERT_TRUE(d.ok());
  // r = ⌈1.2·200⌉ is only reachable through the exact full-spectrum
  // estimate; a truncated sketch would have produced r ≤ 120.
  EXPECT_EQ(d->b.cols(), 240);
  for (Index j = 0; j < d->l.cols(); ++j) {
    EXPECT_LE(linalg::ColumnAbsSum(d->l, j), 1.0 + 1e-5);
  }
}

TEST(DecompositionTest, WorksOnGeneratedWorkloads) {
  for (auto kind : {workload::WorkloadKind::kWDiscrete,
                    workload::WorkloadKind::kWRange,
                    workload::WorkloadKind::kWRelated}) {
    const StatusOr<workload::Workload> w =
        workload::GenerateWorkload(kind, 16, 24, 4, 9);
    ASSERT_TRUE(w.ok());
    DecompositionOptions options;
    options.gamma = 0.1;
    const StatusOr<Decomposition> d =
        DecomposeWorkload(w->matrix(), options);
    ASSERT_TRUE(d.ok()) << workload::WorkloadKindName(kind);
    ExpectFeasible(w->matrix(), *d, options.gamma, 1e-5);
  }
}

}  // namespace
}  // namespace lrm::core
