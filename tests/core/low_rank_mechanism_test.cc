#include "core/low_rank_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "linalg/random_matrix.h"
#include "mechanism/laplace.h"
#include "workload/generators.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

workload::Workload IntroWorkload() {
  return workload::Workload("intro", Matrix{{1.0, 1.0, 1.0, 1.0},
                                            {1.0, 1.0, 0.0, 0.0},
                                            {0.0, 0.0, 1.0, 1.0}});
}

LowRankMechanismOptions TightOptions() {
  LowRankMechanismOptions options;
  options.decomposition.gamma = 1e-3;
  return options;
}

TEST(LowRankMechanismTest, PrepareExposesDecomposition) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Decomposition& d = mech.decomposition();
  EXPECT_GT(d.b.rows(), 0);
  EXPECT_LE(d.sensitivity, 1.0 + 1e-9);
  EXPECT_LE(d.residual, 1e-3 + 1e-9);
}

TEST(LowRankMechanismTest, AnswerShape) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  rng::Engine engine(1);
  const StatusOr<Vector> noisy =
      mech.Answer(Vector{82700.0, 19000.0, 67000.0, 5900.0}, 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 3);
}

TEST(LowRankMechanismTest, UnbiasedOverManyRuns) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Vector data{100.0, 50.0, 70.0, 30.0};
  const Vector exact = IntroWorkload().Answer(data);
  rng::Engine engine(2);
  Vector mean(3);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 2.0, engine);
    ASSERT_TRUE(noisy.ok());
    mean += *noisy;
  }
  mean /= static_cast<double>(reps);
  for (Index i = 0; i < 3; ++i) EXPECT_NEAR(mean[i], exact[i], 1.0);
}

TEST(LowRankMechanismTest, EmpiricalErrorMatchesLemma1) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double epsilon = 1.0;
  const auto analytic = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(analytic.has_value());

  const Vector data{10.0, 20.0, 30.0, 40.0};
  const Vector exact = IntroWorkload().Answer(data);
  rng::Engine engine(3);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 6000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, epsilon, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(exact, *noisy));
  }
  // Small structural error possible at γ = 1e-3; fold it into tolerance.
  EXPECT_NEAR(acc.Mean() / (*analytic + mech.StructuralError(data)), 1.0,
              0.12);
}

TEST(LowRankMechanismTest, BeatsBothBaselinesOnIntroWorkload) {
  // §1 promises a strategy with SSE below both NOD (16/ε²) and NOR
  // (24/ε²) for the intro workload; LRM must find one at least as good as
  // the better baseline.
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double lrm = *mech.ExpectedSquaredError(1.0);
  EXPECT_LE(lrm, 16.0 * 1.05);
}

TEST(LowRankMechanismTest, CrushesNoiseOnDataForLowRankWorkloads) {
  // The headline behaviour (Figures 6, 8): on WRelated with s ≪ min(m,n)
  // LRM wins by a large factor.
  const StatusOr<workload::Workload> w =
      workload::GenerateWRelated(48, 128, 3, 5);
  ASSERT_TRUE(w.ok());
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.05;
  LowRankMechanism mech(options);
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const double lrm = *mech.ExpectedSquaredError(0.1);
  const double nod = workload::ExpectedErrorNoiseOnData(*w, 0.1);
  EXPECT_LT(lrm, nod / 3.0);
}

TEST(LowRankMechanismTest, StructuralErrorIsZeroForExactDecomposition) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Vector data{5.0, 6.0, 7.0, 8.0};
  // γ = 1e-3 residual on O(10) data: structural error ≈ residual²·Σx².
  EXPECT_LE(mech.StructuralError(data), 1e-4);
}

TEST(LowRankMechanismTest, RelaxedDecompositionTradesStructuralError) {
  rng::Engine engine(7);
  const Matrix dense =
      linalg::RandomGaussianMatrix(engine, 12, 16);
  workload::Workload w("dense", dense);

  LowRankMechanismOptions loose;
  loose.decomposition.gamma = 5.0;
  LowRankMechanism mech(loose);
  ASSERT_TRUE(mech.Prepare(w).ok());
  const Vector data = linalg::RandomGaussianVector(engine, 16);
  // Residual ≤ γ ⇒ structural error ≤ γ²‖x‖² (Cauchy–Schwarz, Theorem 3).
  EXPECT_LE(mech.StructuralError(data),
            25.0 * linalg::SquaredNorm(data) + 1e-9);
}

TEST(LowRankMechanismTest, ErrorScalesInverseQuadraticallyInEpsilon) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  EXPECT_NEAR(*mech.ExpectedSquaredError(0.01) /
                  *mech.ExpectedSquaredError(0.1),
              100.0, 1e-6);
}

TEST(LowRankMechanismTest, NameIsLrm) {
  EXPECT_EQ(LowRankMechanism().name(), "LRM");
}

}  // namespace
}  // namespace lrm::core
