#include "core/low_rank_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "eval/metrics.h"
#include "linalg/random_matrix.h"
#include "mechanism/laplace.h"
#include "workload/generators.h"

namespace lrm::core {
namespace {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

workload::Workload IntroWorkload() {
  return workload::Workload("intro", Matrix{{1.0, 1.0, 1.0, 1.0},
                                            {1.0, 1.0, 0.0, 0.0},
                                            {0.0, 0.0, 1.0, 1.0}});
}

LowRankMechanismOptions TightOptions() {
  LowRankMechanismOptions options;
  options.decomposition.gamma = 1e-3;
  return options;
}

TEST(LowRankMechanismTest, PrepareExposesDecomposition) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Decomposition& d = mech.decomposition();
  EXPECT_GT(d.b.rows(), 0);
  EXPECT_LE(d.sensitivity, 1.0 + 1e-9);
  EXPECT_LE(d.residual, 1e-3 + 1e-9);
}

TEST(LowRankMechanismTest, AnswerShape) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  rng::Engine engine(1);
  const StatusOr<Vector> noisy =
      mech.Answer(Vector{82700.0, 19000.0, 67000.0, 5900.0}, 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 3);
}

TEST(LowRankMechanismTest, UnbiasedOverManyRuns) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Vector data{100.0, 50.0, 70.0, 30.0};
  const Vector exact = IntroWorkload().Answer(data);
  rng::Engine engine(2);
  Vector mean(3);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 2.0, engine);
    ASSERT_TRUE(noisy.ok());
    mean += *noisy;
  }
  mean /= static_cast<double>(reps);
  for (Index i = 0; i < 3; ++i) EXPECT_NEAR(mean[i], exact[i], 1.0);
}

TEST(LowRankMechanismTest, EmpiricalErrorMatchesLemma1) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double epsilon = 1.0;
  const auto analytic = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(analytic.has_value());

  const Vector data{10.0, 20.0, 30.0, 40.0};
  const Vector exact = IntroWorkload().Answer(data);
  rng::Engine engine(3);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 6000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, epsilon, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(exact, *noisy));
  }
  // Small structural error possible at γ = 1e-3; fold it into tolerance.
  EXPECT_NEAR(acc.Mean() / (*analytic + mech.StructuralError(data)), 1.0,
              0.12);
}

TEST(LowRankMechanismTest, BeatsBothBaselinesOnIntroWorkload) {
  // §1 promises a strategy with SSE below both NOD (16/ε²) and NOR
  // (24/ε²) for the intro workload; LRM must find one at least as good as
  // the better baseline.
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double lrm = *mech.ExpectedSquaredError(1.0);
  EXPECT_LE(lrm, 16.0 * 1.05);
}

TEST(LowRankMechanismTest, CrushesNoiseOnDataForLowRankWorkloads) {
  // The headline behaviour (Figures 6, 8): on WRelated with s ≪ min(m,n)
  // LRM wins by a large factor.
  const StatusOr<workload::Workload> w =
      workload::GenerateWRelated(48, 128, 3, 5);
  ASSERT_TRUE(w.ok());
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.05;
  LowRankMechanism mech(options);
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const double lrm = *mech.ExpectedSquaredError(0.1);
  const double nod = workload::ExpectedErrorNoiseOnData(*w, 0.1);
  EXPECT_LT(lrm, nod / 3.0);
}

TEST(LowRankMechanismTest, StructuralErrorIsZeroForExactDecomposition) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Vector data{5.0, 6.0, 7.0, 8.0};
  // γ = 1e-3 residual on O(10) data: structural error ≈ residual²·Σx².
  EXPECT_LE(mech.StructuralError(data), 1e-4);
}

TEST(LowRankMechanismTest, RelaxedDecompositionTradesStructuralError) {
  rng::Engine engine(7);
  const Matrix dense =
      linalg::RandomGaussianMatrix(engine, 12, 16);
  workload::Workload w("dense", dense);

  LowRankMechanismOptions loose;
  loose.decomposition.gamma = 5.0;
  LowRankMechanism mech(loose);
  ASSERT_TRUE(mech.Prepare(w).ok());
  const Vector data = linalg::RandomGaussianVector(engine, 16);
  // Residual ≤ γ ⇒ structural error ≤ γ²‖x‖² (Cauchy–Schwarz, Theorem 3).
  EXPECT_LE(mech.StructuralError(data),
            25.0 * linalg::SquaredNorm(data) + 1e-9);
}

TEST(LowRankMechanismTest, ErrorScalesInverseQuadraticallyInEpsilon) {
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  EXPECT_NEAR(*mech.ExpectedSquaredError(0.01) /
                  *mech.ExpectedSquaredError(0.1),
              100.0, 1e-6);
}

TEST(LowRankMechanismTest, NameIsLrm) {
  EXPECT_EQ(LowRankMechanism().name(), "LRM");
}

TEST(LowRankMechanismTest, WarmSessionResumesAcrossPrepares) {
  const StatusOr<workload::Workload> w =
      workload::GenerateWRange(24, 48, 19);
  ASSERT_TRUE(w.ok());
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.1;
  options.warm_start = true;
  LowRankMechanism session(options);

  ASSERT_TRUE(session.Prepare(*w).ok());
  const Decomposition cold = session.decomposition();
  EXPECT_FALSE(cold.warm_started);

  // Re-preparing under a looser γ resumes from the retained factors.
  DecompositionOptions looser = options.decomposition;
  looser.gamma = 0.5;
  session.set_decomposition_options(looser);
  ASSERT_TRUE(session.Prepare(*w).ok());
  EXPECT_TRUE(session.decomposition().warm_started);
  EXPECT_TRUE(session.solver().last_was_warm());
  EXPECT_LT(session.decomposition().outer_iterations, cold.outer_iterations);
  EXPECT_LE(session.decomposition().ExpectedNoiseError(1.0),
            cold.ExpectedNoiseError(1.0) * (1.0 + 1e-9));
}

TEST(LowRankMechanismTest, DefaultPrepareStaysCold) {
  // Without warm_start the mechanism keeps the stateless semantics: every
  // Prepare() is an independent cold solve, so repeated prepares are
  // bit-identical.
  const StatusOr<workload::Workload> w =
      workload::GenerateWRange(16, 32, 23);
  ASSERT_TRUE(w.ok());
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const Decomposition first = mech.decomposition();
  ASSERT_TRUE(mech.Prepare(*w).ok());
  EXPECT_FALSE(mech.decomposition().warm_started);
  EXPECT_TRUE(ApproxEqual(mech.decomposition().b, first.b, 0.0));
  EXPECT_TRUE(ApproxEqual(mech.decomposition().l, first.l, 0.0));
}

TEST(LowRankMechanismTest, PrepareWithHintWarmStartsColdMechanism) {
  const StatusOr<workload::Workload> w =
      workload::GenerateWRange(20, 40, 29);
  ASSERT_TRUE(w.ok());
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.1;

  LowRankMechanism donor(options);
  ASSERT_TRUE(donor.Prepare(*w).ok());

  LowRankMechanism recipient(options);  // warm_start stays false
  ASSERT_TRUE(recipient.PrepareWithHint(*w, donor.decomposition()).ok());
  EXPECT_TRUE(recipient.decomposition().warm_started);
  EXPECT_LT(recipient.decomposition().outer_iterations,
            donor.decomposition().outer_iterations);
  EXPECT_LE(recipient.decomposition().ExpectedNoiseError(1.0),
            donor.decomposition().ExpectedNoiseError(1.0) * (1.0 + 1e-9));

  rng::Engine engine(31);
  const StatusOr<Vector> noisy =
      recipient.Answer(Vector(40, 1.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 20);
}

TEST(LowRankMechanismTest, FailedPrepareImplClearsBinding) {
  // The counterpart of the contract test's argument-rejection case: when
  // the failure happens INSIDE preparation (here: invalid decomposition
  // options diagnosed by the solver), the mechanism state is half
  // overwritten, so the binding must be fully cleared — never left naming
  // the workload that failed.
  const StatusOr<workload::Workload> w = workload::GenerateWRange(8, 16, 41);
  ASSERT_TRUE(w.ok());
  LowRankMechanism mech(TightOptions());
  ASSERT_TRUE(mech.Prepare(*w).ok());

  DecompositionOptions bad = TightOptions().decomposition;
  bad.gamma = -1.0;  // rejected by ValidateDecompositionOptions in Solve()
  mech.set_decomposition_options(bad);
  const auto other = workload::GenerateWRange(8, 16, 43);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(mech.Prepare(*other).code(), StatusCode::kInvalidArgument);

  EXPECT_FALSE(mech.prepared());
  EXPECT_EQ(mech.workload_handle(), nullptr);
  rng::Engine engine(17);
  EXPECT_EQ(mech.Answer(Vector(16, 1.0), 1.0, engine).status().code(),
            StatusCode::kFailedPrecondition);

  // And the mechanism recovers: valid options + workload re-bind cleanly.
  mech.set_decomposition_options(TightOptions().decomposition);
  ASSERT_TRUE(mech.Prepare(*w).ok());
  EXPECT_TRUE(mech.prepared());
}

TEST(LowRankMechanismTest, PrepareWithHintReusesBoundHandle) {
  // Handing PrepareWithHint the workload the mechanism already holds (the
  // cache's warm re-prepare path) must reuse the bound shared handle, not
  // deep-copy W again.
  const StatusOr<workload::Workload> w =
      workload::GenerateWRange(20, 40, 53);
  ASSERT_TRUE(w.ok());
  const auto handle = std::make_shared<const workload::Workload>(*w);
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.1;
  LowRankMechanism mech(options);
  ASSERT_TRUE(mech.Prepare(handle).ok());
  const Decomposition hint = mech.decomposition();

  ASSERT_TRUE(mech.PrepareWithHint(*handle, hint).ok());
  EXPECT_EQ(mech.workload_handle().get(), handle.get());
  EXPECT_TRUE(mech.decomposition().warm_started);
}

TEST(LowRankMechanismTest, PrepareWithHintValidatesBeforeBinding) {
  // A malformed workload must be rejected up front (before the lvalue
  // overload's deep copy) and must not disturb the existing binding.
  const StatusOr<workload::Workload> w =
      workload::GenerateWRange(20, 40, 59);
  ASSERT_TRUE(w.ok());
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.1;
  LowRankMechanism mech(options);
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const auto bound = mech.workload_handle();
  const Decomposition hint = mech.decomposition();

  linalg::Matrix poisoned(20, 40, 1.0);
  poisoned(3, 7) = std::numeric_limits<double>::quiet_NaN();
  const workload::Workload bad("poisoned", std::move(poisoned));
  EXPECT_EQ(mech.PrepareWithHint(bad, hint).code(),
            StatusCode::kInvalidArgument);
  EXPECT_TRUE(mech.prepared());
  EXPECT_EQ(mech.workload_handle().get(), bound.get());
}

TEST(LowRankMechanismTest, PrepareWithHintRejectsMismatchedHint) {
  const StatusOr<workload::Workload> small =
      workload::GenerateWRange(6, 12, 37);
  const StatusOr<workload::Workload> large =
      workload::GenerateWRange(20, 40, 37);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  LowRankMechanismOptions options;
  options.decomposition.gamma = 0.1;
  LowRankMechanism donor(options);
  ASSERT_TRUE(donor.Prepare(*small).ok());

  LowRankMechanism recipient(options);
  EXPECT_EQ(
      recipient.PrepareWithHint(*large, donor.decomposition()).code(),
      StatusCode::kInvalidArgument);
  EXPECT_FALSE(recipient.prepared());
  // The failed hint must not poison the next plain Prepare.
  ASSERT_TRUE(recipient.Prepare(*large).ok());
  EXPECT_FALSE(recipient.decomposition().warm_started);
}

}  // namespace
}  // namespace lrm::core
