// Exporter (text/JSON) and PeriodicReporter tests.

#include "obs/export.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace lrm::obs {
namespace {

RegistrySnapshot SampleSnapshot(MetricRegistry* registry) {
  registry->counter("service.requests_admitted")->Add(128);
  registry->gauge("service.in_flight")->Set(3.0);
  Histogram* histogram = registry->histogram("service.serve_seconds");
  for (int i = 0; i < 100; ++i) histogram->Record(0.002);
  histogram->Record(0.1);
  return registry->Snapshot();
}

TEST(ToTextTest, OneLinePerMetric) {
  MetricRegistry registry;
  const std::string text = ToText(SampleSnapshot(&registry));
  EXPECT_NE(text.find("counter   service.requests_admitted 128"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge     service.in_flight 3"), std::string::npos);
  EXPECT_NE(text.find("histogram service.serve_seconds count=101"),
            std::string::npos);
  EXPECT_NE(text.find("p99="), std::string::npos);
}

TEST(ToTextTest, EmptyHistogramPrintsOnlyCount) {
  MetricRegistry registry;
  registry.histogram("lat");
  const std::string text = ToText(registry.Snapshot());
  EXPECT_NE(text.find("histogram lat count=0"), std::string::npos);
  // No NaN quantiles leak into the report.
  EXPECT_EQ(text.find("nan"), std::string::npos);
}

TEST(ToJsonTest, ContainsSectionsAndHistogramFields) {
  MetricRegistry registry;
  const std::string json = ToJson(SampleSnapshot(&registry));
  EXPECT_NE(json.find("\"counters\": {"), std::string::npos);
  EXPECT_NE(json.find("\"service.requests_admitted\": 128"),
            std::string::npos);
  EXPECT_NE(json.find("\"gauges\": {"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\": {"), std::string::npos);
  for (const char* field :
       {"\"count\"", "\"sum\"", "\"mean\"", "\"p50\"", "\"p90\"",
        "\"p99\"", "\"edges\"", "\"bucket_counts\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(ToJsonTest, NonFiniteRendersAsNull) {
  RegistrySnapshot snapshot;
  snapshot.gauges["bad"] = std::nan("");
  // An empty histogram has NaN mean/quantiles.
  snapshot.histograms["empty"] = HistogramSnapshot{};
  const std::string json = ToJson(snapshot);
  EXPECT_NE(json.find("\"bad\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos) << json;
  // Never the bare tokens JSON parsers reject.
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_EQ(json.find("inf"), std::string::npos);
}

TEST(ToJsonTest, EscapesHostileNames) {
  RegistrySnapshot snapshot;
  snapshot.counters["we\"ird\\name\n"] = 1;
  const std::string json = ToJson(snapshot);
  EXPECT_NE(json.find("we\\\"ird\\\\name\\n"), std::string::npos) << json;
}

TEST(PeriodicReporterTest, EmitsPeriodicallyAndOnStop) {
  MetricRegistry registry;
  registry.counter("ticks")->Add(5);

  std::mutex mu;
  std::vector<std::string> reports;
  PeriodicReporterOptions options;
  options.period_seconds = 0.005;
  options.sink = [&mu, &reports](const std::string& report) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(report);
  };
  PeriodicReporter reporter(&registry, options);
  // Wait (bounded) for at least two periodic reports.
  for (int i = 0; i < 1000 && reporter.reports_emitted() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(reporter.reports_emitted(), 2);
  reporter.Stop();
  const std::int64_t after_stop = reporter.reports_emitted();
  EXPECT_GE(after_stop, 3);  // report_on_stop adds a final one
  // Idempotent: a second Stop emits nothing more.
  reporter.Stop();
  EXPECT_EQ(reporter.reports_emitted(), after_stop);
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_FALSE(reports.empty());
  EXPECT_NE(reports.front().find("ticks 5"), std::string::npos);
}

TEST(PeriodicReporterTest, ReportNowWorksAfterStop) {
  MetricRegistry registry;
  std::atomic<int> sunk{0};
  PeriodicReporterOptions options;
  options.period_seconds = 60.0;
  options.report_on_stop = false;
  options.sink = [&sunk](const std::string&) { ++sunk; };
  PeriodicReporter reporter(&registry, options);
  reporter.Stop();
  EXPECT_EQ(sunk.load(), 0);
  reporter.ReportNow();
  EXPECT_EQ(sunk.load(), 1);
}

}  // namespace
}  // namespace lrm::obs
