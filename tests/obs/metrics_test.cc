// MetricRegistry / Histogram unit suite.
//
// The load-bearing property is the quantile precision contract: for any
// sample set, HistogramSnapshot::Quantile(q) differs from the exact
// sorted-sample percentile (eval::Percentile, the convention bench_service
// used to compute by sorting) by at most QuantileErrorBound(q) — one bucket
// width. The service benchmark and the latency gates in
// compare_benchmarks.py rely on it.

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <thread>
#include <vector>

#include "eval/metrics.h"
#include "obs/stage_timer.h"

namespace lrm::obs {
namespace {

TEST(CounterTest, StartsAtZeroAndAccumulates) {
  Counter counter;
  EXPECT_EQ(counter.value(), 0);
  counter.Increment();
  counter.Add(41);
  EXPECT_EQ(counter.value(), 42);
}

TEST(GaugeTest, LastWriteWins) {
  Gauge gauge;
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.Set(3.5);
  gauge.Set(-1.25);
  EXPECT_EQ(gauge.value(), -1.25);
}

TEST(HistogramTest, EmptySnapshot) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_TRUE(snapshot.empty());
  EXPECT_EQ(snapshot.count, 0);
  EXPECT_TRUE(std::isnan(snapshot.Mean()));
  EXPECT_TRUE(std::isnan(snapshot.Quantile(0.5)));
  EXPECT_TRUE(std::isnan(snapshot.QuantileErrorBound(0.5)));
}

TEST(HistogramTest, SingleSampleEveryQuantileIsTheSample) {
  Histogram histogram;
  histogram.Record(0.00321);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 1);
  EXPECT_DOUBLE_EQ(snapshot.min, 0.00321);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.00321);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 0.00321);
  // The [min, max] clamp collapses a single-sample histogram to the exact
  // value at every quantile.
  for (const double q : {0.0, 0.25, 0.5, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(snapshot.Quantile(q), 0.00321) << "q=" << q;
  }
}

TEST(HistogramTest, NanSamplesAreDroppedAndCounted) {
  Histogram histogram;
  histogram.Record(std::nan(""));
  histogram.Record(1.0);
  EXPECT_EQ(histogram.nan_dropped(), 1);
  EXPECT_EQ(histogram.Snapshot().count, 1);
}

TEST(HistogramTest, NegativeAndZeroSamplesLandInFirstBucket) {
  Histogram histogram;
  histogram.Record(-3.0);
  histogram.Record(0.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 2);
  EXPECT_EQ(snapshot.counts[0], 2);
  // min/max still record the true values.
  EXPECT_DOUBLE_EQ(snapshot.min, -3.0);
  EXPECT_DOUBLE_EQ(snapshot.max, 0.0);
}

TEST(HistogramTest, OverflowBucketCatchesValuesBeyondLastEdge) {
  HistogramOptions options;
  options.min_value = 1.0;
  options.growth = 2.0;
  options.buckets = 4;  // edges 1, 2, 4, 8
  Histogram histogram(options);
  histogram.Record(100.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.counts.back(), 1);
  EXPECT_DOUBLE_EQ(snapshot.Quantile(1.0), 100.0);
}

// The precision contract, cross-checked against the exact sorted-sample
// percentile on several synthetic shapes.
void ExpectQuantilesWithinOneBucket(const std::vector<double>& samples) {
  Histogram histogram;
  for (const double sample : samples) histogram.Record(sample);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, static_cast<std::int64_t>(samples.size()));
  for (const double q :
       {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1.0}) {
    const double exact = eval::Percentile(samples, 100.0 * q);
    const double estimate = snapshot.Quantile(q);
    const double bound = snapshot.QuantileErrorBound(q);
    EXPECT_LE(std::abs(estimate - exact), bound + 1e-12)
        << "q=" << q << " exact=" << exact << " estimate=" << estimate
        << " bound=" << bound;
  }
}

TEST(HistogramTest, QuantileWithinOneBucketOfExactUniform) {
  std::mt19937_64 rng(20120827);
  std::uniform_real_distribution<double> uniform(1e-5, 0.5);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) samples.push_back(uniform(rng));
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(HistogramTest, QuantileWithinOneBucketOfExactLogNormal) {
  // Latency-shaped: long right tail spanning several decades.
  std::mt19937_64 rng(42);
  std::lognormal_distribution<double> lognormal(-7.0, 1.5);
  std::vector<double> samples;
  samples.reserve(5000);
  for (int i = 0; i < 5000; ++i) samples.push_back(lognormal(rng));
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(HistogramTest, QuantileWithinOneBucketOfExactBimodal) {
  // Hit/miss-shaped: a fast mode and a 1000× slower mode.
  std::mt19937_64 rng(7);
  std::normal_distribution<double> fast(2e-4, 3e-5);
  std::normal_distribution<double> slow(0.2, 0.03);
  std::vector<double> samples;
  samples.reserve(4000);
  for (int i = 0; i < 4000; ++i) {
    samples.push_back(std::abs(i % 10 == 0 ? slow(rng) : fast(rng)));
  }
  ExpectQuantilesWithinOneBucket(samples);
}

TEST(HistogramSnapshotTest, DeltaSinceIsolatesTheInterval) {
  Histogram histogram;
  histogram.Record(0.001);
  histogram.Record(0.002);
  const HistogramSnapshot warmup = histogram.Snapshot();
  for (int i = 0; i < 100; ++i) histogram.Record(0.05);
  const HistogramSnapshot delta =
      histogram.Snapshot().DeltaSince(warmup);
  EXPECT_EQ(delta.count, 100);
  EXPECT_NEAR(delta.sum, 5.0, 1e-9);
  EXPECT_NEAR(delta.Mean(), 0.05, 1e-9);
  // The warmup samples (1–2 ms) must not drag the interval quantiles: all
  // interval samples are 50 ms, so every quantile estimate lies in the
  // bucket containing 0.05.
  const double p50 = delta.Quantile(0.5);
  EXPECT_LE(std::abs(p50 - 0.05), delta.QuantileErrorBound(0.5) + 1e-12);
  EXPECT_GT(p50, 0.01);
}

TEST(HistogramSnapshotTest, DeltaOfIdenticalSnapshotsIsEmpty) {
  Histogram histogram;
  histogram.Record(1.0);
  const HistogramSnapshot snapshot = histogram.Snapshot();
  const HistogramSnapshot delta = snapshot.DeltaSince(snapshot);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.sum, 0.0);
}

TEST(HistogramTest, ConcurrentRecordsMergeToExactTotals) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Histogram histogram;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram.Record(1e-4 * (1 + t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const HistogramSnapshot snapshot = histogram.Snapshot();
  // Shard merge must lose nothing: total count == Record() calls.
  EXPECT_EQ(snapshot.count, kThreads * kPerThread);
  EXPECT_NEAR(snapshot.sum,
              kPerThread * 1e-4 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8), 1e-6);
  EXPECT_DOUBLE_EQ(snapshot.min, 1e-4);
  EXPECT_DOUBLE_EQ(snapshot.max, 8e-4);
}

TEST(MetricRegistryTest, PointersAreStableAndShared) {
  MetricRegistry registry;
  Counter* counter = registry.counter("service.requests_admitted");
  EXPECT_EQ(counter, registry.counter("service.requests_admitted"));
  Histogram* histogram = registry.histogram("service.serve_seconds");
  EXPECT_EQ(histogram, registry.histogram("service.serve_seconds"));
  // Options only apply at creation.
  HistogramOptions other;
  other.buckets = 3;
  EXPECT_EQ(histogram, registry.histogram("service.serve_seconds", other));
  EXPECT_NE(histogram->edges().size(), 3u);
}

TEST(MetricRegistryTest, SnapshotCoversEveryMetricSorted) {
  MetricRegistry registry;
  registry.counter("b.count")->Add(2);
  registry.counter("a.count")->Add(1);
  registry.gauge("depth")->Set(4.0);
  registry.histogram("lat")->Record(0.01);
  const RegistrySnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters.begin()->first, "a.count");  // sorted
  EXPECT_EQ(snapshot.counters.at("b.count"), 2);
  EXPECT_EQ(snapshot.gauges.at("depth"), 4.0);
  EXPECT_EQ(snapshot.histograms.at("lat").count, 1);
}

TEST(ScopedStageTimerTest, RecordsOnceAndCountsEntry) {
  Histogram histogram;
  Counter entered;
  {
    ScopedStageTimer span(&histogram, &entered);
    EXPECT_EQ(entered.value(), 1);  // counted at entry, not exit
    EXPECT_EQ(histogram.Snapshot().count, 0);
  }
  EXPECT_EQ(histogram.Snapshot().count, 1);
}

TEST(ScopedStageTimerTest, StopIsIdempotentAndReturnsElapsed) {
  Histogram histogram;
  ScopedStageTimer span(&histogram);
  const double first = span.Stop();
  EXPECT_GE(first, 0.0);
  span.Stop();
  EXPECT_EQ(histogram.Snapshot().count, 1);
}

TEST(ScopedStageTimerTest, CancelRecordsNothing) {
  Histogram histogram;
  {
    ScopedStageTimer span(&histogram);
    span.Cancel();
  }
  EXPECT_EQ(histogram.Snapshot().count, 0);
}

TEST(ScopedStageTimerTest, NullMetricsAreANoOp) {
  ScopedStageTimer span(nullptr, nullptr);
  EXPECT_GE(span.Stop(), 0.0);
}

}  // namespace
}  // namespace lrm::obs
