#include "tests/support/statistics.h"

#include <algorithm>
#include <cmath>

namespace lrm::test {

SampleStats Summarize(const std::vector<double>& samples) {
  SampleStats stats;
  double m2 = 0.0;
  for (const double x : samples) {
    if (stats.count == 0) {
      stats.min = x;
      stats.max = x;
    } else {
      stats.min = std::min(stats.min, x);
      stats.max = std::max(stats.max, x);
    }
    ++stats.count;
    const double delta = x - stats.mean;
    stats.mean += delta / static_cast<double>(stats.count);
    m2 += delta * (x - stats.mean);
  }
  if (stats.count >= 2) {
    stats.variance = m2 / static_cast<double>(stats.count - 1);
  }
  return stats;
}

::testing::AssertionResult SampleMeanNearPred(
    const char* samples_expr, const char* mean_expr, const char* stddev_expr,
    const char* sigmas_expr, const std::vector<double>& samples,
    double expected_mean, double expected_stddev, double sigmas) {
  if (samples.empty()) {
    return ::testing::AssertionFailure() << samples_expr << " is empty";
  }
  const SampleStats stats = Summarize(samples);
  const double standard_error =
      expected_stddev / std::sqrt(static_cast<double>(stats.count));
  const double bound = sigmas * standard_error;
  const double diff = std::abs(stats.mean - expected_mean);
  if (diff <= bound) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "mean(" << samples_expr << ") = " << stats.mean << " is "
         << diff / (standard_error > 0 ? standard_error : 1.0)
         << " standard errors from " << mean_expr << " = " << expected_mean
         << " (allowed " << sigmas_expr << " = " << sigmas << " with stddev "
         << stddev_expr << " = " << expected_stddev << ", n = " << stats.count
         << ")";
}

::testing::AssertionResult SampleVarianceNearPred(
    const char* samples_expr, const char* var_expr, const char* tol_expr,
    const std::vector<double>& samples, double expected_variance,
    double rel_tol) {
  if (samples.size() < 2) {
    return ::testing::AssertionFailure()
           << samples_expr << " needs at least 2 samples, has "
           << samples.size();
  }
  const SampleStats stats = Summarize(samples);
  const double bound = rel_tol * std::abs(expected_variance);
  const double diff = std::abs(stats.variance - expected_variance);
  if (diff <= bound) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "variance(" << samples_expr << ") = " << stats.variance
         << " differs from " << var_expr << " = " << expected_variance
         << " by " << diff << ", exceeding " << tol_expr << " = " << rel_tol
         << " relative (" << bound << " absolute, n = " << stats.count << ")";
}

::testing::AssertionResult SamplesInRangePred(
    const char* samples_expr, const char* lo_expr, const char* hi_expr,
    const std::vector<double>& samples, double lo, double hi) {
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (!(samples[i] >= lo && samples[i] <= hi)) {
      return ::testing::AssertionFailure()
             << samples_expr << "[" << i << "] = " << samples[i]
             << " is outside [" << lo_expr << ", " << hi_expr << "] = [" << lo
             << ", " << hi << "]";
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace lrm::test
