// Statistical assertion helpers for randomized tests (Laplace noise, RNG
// distribution checks). All bounds are deterministic given a fixed seed; the
// sigma-based helpers size their tolerance from the CLT so tests stay robust
// to sample count changes:
//
//   std::vector<double> samples = Draw(100000);
//   // |mean(samples) - 0.0| <= 6 * (2.0 / sqrt(n))
//   EXPECT_SAMPLE_MEAN_NEAR(samples, 0.0, /*stddev=*/2.0, /*sigmas=*/6.0);
//   EXPECT_SAMPLE_VARIANCE_NEAR(samples, 4.0, /*rel_tol=*/0.1);

#ifndef LRM_TESTS_SUPPORT_STATISTICS_H_
#define LRM_TESTS_SUPPORT_STATISTICS_H_

#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

namespace lrm::test {

/// Moments of a sample, computed in one pass (Welford).
struct SampleStats {
  std::size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  // unbiased (n-1 denominator); 0 for n < 2
  double min = 0.0;
  double max = 0.0;
};

SampleStats Summarize(const std::vector<double>& samples);

// Predicate-formatters behind the macros below.
::testing::AssertionResult SampleMeanNearPred(
    const char* samples_expr, const char* mean_expr, const char* stddev_expr,
    const char* sigmas_expr, const std::vector<double>& samples,
    double expected_mean, double expected_stddev, double sigmas);

::testing::AssertionResult SampleVarianceNearPred(
    const char* samples_expr, const char* var_expr, const char* tol_expr,
    const std::vector<double>& samples, double expected_variance,
    double rel_tol);

::testing::AssertionResult SamplesInRangePred(
    const char* samples_expr, const char* lo_expr, const char* hi_expr,
    const std::vector<double>& samples, double lo, double hi);

}  // namespace lrm::test

// Sample mean within `sigmas` standard errors (stddev/sqrt(n)) of
// `expected_mean`. sigmas = 6 gives a ~1e-9 flake rate.
#define EXPECT_SAMPLE_MEAN_NEAR(samples, expected_mean, stddev, sigmas)   \
  EXPECT_PRED_FORMAT4(::lrm::test::SampleMeanNearPred, samples,           \
                      expected_mean, stddev, sigmas)

// Unbiased sample variance within rel_tol (relative) of expected_variance.
#define EXPECT_SAMPLE_VARIANCE_NEAR(samples, expected_variance, rel_tol) \
  EXPECT_PRED_FORMAT3(::lrm::test::SampleVarianceNearPred, samples,      \
                      expected_variance, rel_tol)

// Every sample lies in [lo, hi].
#define EXPECT_SAMPLES_IN_RANGE(samples, lo, hi) \
  EXPECT_PRED_FORMAT3(::lrm::test::SamplesInRangePred, samples, lo, hi)

#endif  // LRM_TESTS_SUPPORT_STATISTICS_H_
