#include "tests/support/matchers.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace lrm::test {
namespace {

// Renders small containers in full; large ones report only the worst entry,
// so a failing 1000×1000 comparison stays readable.
constexpr linalg::Index kMaxRenderedSize = 64;

}  // namespace

::testing::AssertionResult VectorNearPred(const char* actual_expr,
                                          const char* expected_expr,
                                          const char* tol_expr,
                                          const linalg::Vector& actual,
                                          const linalg::Vector& expected,
                                          double tol) {
  if (actual.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << "dimension mismatch: " << actual_expr << " has size "
           << actual.size() << ", " << expected_expr << " has size "
           << expected.size();
  }
  linalg::Index worst = -1;
  double worst_diff = 0.0;
  for (linalg::Index i = 0; i < actual.size(); ++i) {
    const double diff = std::abs(actual[i] - expected[i]);
    if (std::isnan(diff) || diff > worst_diff) {
      worst = i;
      worst_diff = diff;
      if (std::isnan(diff)) break;
    }
  }
  if (worst < 0 || worst_diff <= tol) return ::testing::AssertionSuccess();

  std::ostringstream os;
  os << actual_expr << " and " << expected_expr << " differ by " << worst_diff
     << " at index " << worst << " (" << actual[worst] << " vs "
     << expected[worst] << "), exceeding " << tol_expr << " = " << tol;
  if (actual.size() <= kMaxRenderedSize) {
    os << "\n  actual:   " << actual.ToString()
       << "\n  expected: " << expected.ToString();
  }
  return ::testing::AssertionFailure() << os.str();
}

::testing::AssertionResult MatrixNearPred(const char* actual_expr,
                                          const char* expected_expr,
                                          const char* tol_expr,
                                          const linalg::Matrix& actual,
                                          const linalg::Matrix& expected,
                                          double tol) {
  if (actual.rows() != expected.rows() || actual.cols() != expected.cols()) {
    return ::testing::AssertionFailure()
           << "shape mismatch: " << actual_expr << " is " << actual.rows()
           << "x" << actual.cols() << ", " << expected_expr << " is "
           << expected.rows() << "x" << expected.cols();
  }
  linalg::Index worst_i = -1;
  linalg::Index worst_j = -1;
  double worst_diff = 0.0;
  bool saw_nan = false;
  for (linalg::Index i = 0; i < actual.rows() && !saw_nan; ++i) {
    for (linalg::Index j = 0; j < actual.cols(); ++j) {
      const double diff = std::abs(actual(i, j) - expected(i, j));
      if (std::isnan(diff) || diff > worst_diff) {
        worst_i = i;
        worst_j = j;
        worst_diff = diff;
        if (std::isnan(diff)) {
          saw_nan = true;
          break;
        }
      }
    }
  }
  if (worst_i < 0 || (!saw_nan && worst_diff <= tol)) {
    return ::testing::AssertionSuccess();
  }

  std::ostringstream os;
  os << actual_expr << " and " << expected_expr << " differ by " << worst_diff
     << " at (" << worst_i << ", " << worst_j << ") ("
     << actual(worst_i, worst_j) << " vs " << expected(worst_i, worst_j)
     << "), exceeding " << tol_expr << " = " << tol;
  if (actual.size() <= kMaxRenderedSize) {
    os << "\n  actual:\n" << actual.ToString()
       << "  expected:\n" << expected.ToString();
  }
  return ::testing::AssertionFailure() << os.str();
}

::testing::AssertionResult MatrixFinitePred(const char* expr,
                                            const linalg::Matrix& m) {
  for (linalg::Index i = 0; i < m.rows(); ++i) {
    for (linalg::Index j = 0; j < m.cols(); ++j) {
      if (!std::isfinite(m(i, j))) {
        return ::testing::AssertionFailure()
               << expr << " has non-finite entry " << m(i, j) << " at (" << i
               << ", " << j << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult VectorFinitePred(const char* expr,
                                            const linalg::Vector& v) {
  for (linalg::Index i = 0; i < v.size(); ++i) {
    if (!std::isfinite(v[i])) {
      return ::testing::AssertionFailure()
             << expr << " has non-finite entry " << v[i] << " at index " << i;
    }
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult MatrixSymmetricPred(const char* expr,
                                               const char* tol_expr,
                                               const linalg::Matrix& m,
                                               double tol) {
  if (m.rows() != m.cols()) {
    return ::testing::AssertionFailure()
           << expr << " is not square: " << m.rows() << "x" << m.cols();
  }
  for (linalg::Index i = 0; i < m.rows(); ++i) {
    for (linalg::Index j = i + 1; j < m.cols(); ++j) {
      const double diff = std::abs(m(i, j) - m(j, i));
      if (!(diff <= tol)) {
        return ::testing::AssertionFailure()
               << expr << " is asymmetric at (" << i << ", " << j << "): "
               << m(i, j) << " vs " << m(j, i) << " (|diff| = " << diff
               << " > " << tol_expr << " = " << tol << ")";
      }
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace lrm::test
