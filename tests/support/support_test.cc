// Self-tests for the shared test-support library: the matchers must accept
// what they should accept, reject what they should reject, and the
// statistical helpers must agree with closed-form moments.

#include <gtest/gtest-spi.h>
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "tests/support/matchers.h"
#include "tests/support/rng_fixture.h"
#include "tests/support/statistics.h"

namespace lrm::test {
namespace {

using linalg::Matrix;
using linalg::Vector;

TEST(VectorNearTest, AcceptsWithinTolerance) {
  EXPECT_VECTOR_NEAR((Vector{1.0, 2.0}), (Vector{1.0, 2.0 + 1e-13}), 1e-12);
}

TEST(VectorNearTest, RejectsBeyondTolerance) {
  EXPECT_NONFATAL_FAILURE(
      EXPECT_VECTOR_NEAR((Vector{1.0, 2.0}), (Vector{1.0, 2.1}), 1e-12),
      "differ by");
}

TEST(VectorNearTest, RejectsDimensionMismatch) {
  EXPECT_NONFATAL_FAILURE(
      EXPECT_VECTOR_NEAR((Vector{1.0}), (Vector{1.0, 2.0}), 1.0),
      "dimension mismatch");
}

TEST(VectorNearTest, RejectsNaN) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NONFATAL_FAILURE(
      EXPECT_VECTOR_NEAR((Vector{nan}), (Vector{0.0}), 1e9), "differ by");
}

TEST(MatrixNearTest, AcceptsWithinTolerance) {
  EXPECT_MATRIX_NEAR(Matrix::Identity(3), Matrix::Identity(3), 0.0);
}

TEST(MatrixNearTest, RejectsBeyondTolerance) {
  Matrix a = Matrix::Identity(2);
  Matrix b = Matrix::Identity(2);
  b(1, 0) = 0.5;
  EXPECT_NONFATAL_FAILURE(EXPECT_MATRIX_NEAR(a, b, 1e-9), "at (1, 0)");
}

TEST(MatrixNearTest, RejectsShapeMismatch) {
  EXPECT_NONFATAL_FAILURE(
      EXPECT_MATRIX_NEAR(Matrix(2, 3), Matrix(3, 2), 1.0), "shape mismatch");
}

TEST(FiniteTest, AcceptsFiniteRejectsInf) {
  Matrix m(2, 2, 1.0);
  EXPECT_MATRIX_FINITE(m);
  m(0, 1) = std::numeric_limits<double>::infinity();
  EXPECT_NONFATAL_FAILURE(EXPECT_MATRIX_FINITE(m), "non-finite");

  Vector v{1.0, 2.0};
  EXPECT_VECTOR_FINITE(v);
  v[0] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_NONFATAL_FAILURE(EXPECT_VECTOR_FINITE(v), "non-finite");
}

TEST(SymmetricTest, AcceptsSymmetricRejectsAsymmetric) {
  Matrix s{{1.0, 2.0}, {2.0, 5.0}};
  EXPECT_MATRIX_SYMMETRIC(s, 1e-12);
  s(0, 1) = 2.5;
  EXPECT_NONFATAL_FAILURE(EXPECT_MATRIX_SYMMETRIC(s, 1e-12), "asymmetric");
}

TEST(SummarizeTest, MatchesClosedForm) {
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0};
  const SampleStats stats = Summarize(samples);
  EXPECT_EQ(stats.count, 4u);
  EXPECT_DOUBLE_EQ(stats.mean, 2.5);
  EXPECT_DOUBLE_EQ(stats.variance, 5.0 / 3.0);
  EXPECT_DOUBLE_EQ(stats.min, 1.0);
  EXPECT_DOUBLE_EQ(stats.max, 4.0);
}

TEST(SummarizeTest, EmptyAndSingleton) {
  EXPECT_EQ(Summarize({}).count, 0u);
  const SampleStats one = Summarize({7.0});
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.mean, 7.0);
  EXPECT_DOUBLE_EQ(one.variance, 0.0);
}

TEST(SampleMeanTest, AcceptsUniformMoments) {
  // Uniform[0,1): mean 1/2, stddev 1/sqrt(12).
  rng::Engine engine(123);
  std::vector<double> samples(20000);
  for (double& x : samples) x = engine.NextDouble();
  EXPECT_SAMPLE_MEAN_NEAR(samples, 0.5, std::sqrt(1.0 / 12.0), 6.0);
  EXPECT_SAMPLE_VARIANCE_NEAR(samples, 1.0 / 12.0, 0.1);
  EXPECT_SAMPLES_IN_RANGE(samples, 0.0, 1.0);
}

TEST(SampleMeanTest, RejectsWrongMean) {
  std::vector<double> samples(1000, 1.0);
  EXPECT_NONFATAL_FAILURE(
      EXPECT_SAMPLE_MEAN_NEAR(samples, 0.0, 1.0, 6.0), "standard errors");
}

TEST(SamplesInRangeTest, ReportsOffendingIndex) {
  const std::vector<double> samples = {0.5, 1.5};
  EXPECT_NONFATAL_FAILURE(EXPECT_SAMPLES_IN_RANGE(samples, 0.0, 1.0),
                          "[1] = 1.5");
}

class RngFixtureTest : public DeterministicRngTest {};

TEST_F(RngFixtureTest, StreamsAreDeterministic) {
  rng::Engine fresh(seed());
  EXPECT_EQ(engine().Next(), fresh.Next());
}

TEST_F(RngFixtureTest, SaltedEnginesDiffer) {
  rng::Engine a = MakeEngine(1);
  rng::Engine b = MakeEngine(2);
  rng::Engine a2 = MakeEngine(1);
  EXPECT_NE(a.Next(), b.Next());
  EXPECT_EQ(MakeEngine(1).Next(), a2.Next());
}

}  // namespace
}  // namespace lrm::test
