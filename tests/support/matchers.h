// Gtest assertion helpers for linalg types with explicit tolerance control.
//
// These are predicate-formatters (not gmock matchers) so they work with the
// gtest-only fallback build and print full shape/entry diagnostics on
// failure:
//
//   EXPECT_VECTOR_NEAR(actual, expected, 1e-12);
//   EXPECT_MATRIX_NEAR(product, Matrix::Identity(4), 1e-9);
//   EXPECT_MATRIX_FINITE(decomposition.b);

#ifndef LRM_TESTS_SUPPORT_MATCHERS_H_
#define LRM_TESTS_SUPPORT_MATCHERS_H_

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace lrm::test {

// Predicate-formatters. Use through the macros below; the exprs arguments are
// the stringified caller expressions gtest passes in.
::testing::AssertionResult VectorNearPred(const char* actual_expr,
                                          const char* expected_expr,
                                          const char* tol_expr,
                                          const linalg::Vector& actual,
                                          const linalg::Vector& expected,
                                          double tol);

::testing::AssertionResult MatrixNearPred(const char* actual_expr,
                                          const char* expected_expr,
                                          const char* tol_expr,
                                          const linalg::Matrix& actual,
                                          const linalg::Matrix& expected,
                                          double tol);

::testing::AssertionResult MatrixFinitePred(const char* expr,
                                            const linalg::Matrix& m);

::testing::AssertionResult VectorFinitePred(const char* expr,
                                            const linalg::Vector& v);

// True iff `m` equals its transpose within `tol`; reports the worst pair.
::testing::AssertionResult MatrixSymmetricPred(const char* expr,
                                               const char* tol_expr,
                                               const linalg::Matrix& m,
                                               double tol);

}  // namespace lrm::test

// Entrywise |actual - expected| <= tol, with matching dimensions.
#define EXPECT_VECTOR_NEAR(actual, expected, tol) \
  EXPECT_PRED_FORMAT3(::lrm::test::VectorNearPred, actual, expected, tol)
#define ASSERT_VECTOR_NEAR(actual, expected, tol) \
  ASSERT_PRED_FORMAT3(::lrm::test::VectorNearPred, actual, expected, tol)

// Entrywise |actual - expected| <= tol, with matching shapes.
#define EXPECT_MATRIX_NEAR(actual, expected, tol) \
  EXPECT_PRED_FORMAT3(::lrm::test::MatrixNearPred, actual, expected, tol)
#define ASSERT_MATRIX_NEAR(actual, expected, tol) \
  ASSERT_PRED_FORMAT3(::lrm::test::MatrixNearPred, actual, expected, tol)

// Every entry is finite (no NaN/Inf).
#define EXPECT_MATRIX_FINITE(m) \
  EXPECT_PRED_FORMAT1(::lrm::test::MatrixFinitePred, m)
#define EXPECT_VECTOR_FINITE(v) \
  EXPECT_PRED_FORMAT1(::lrm::test::VectorFinitePred, v)

// m == Transpose(m) within tol.
#define EXPECT_MATRIX_SYMMETRIC(m, tol) \
  EXPECT_PRED_FORMAT2(::lrm::test::MatrixSymmetricPred, m, tol)

#endif  // LRM_TESTS_SUPPORT_MATCHERS_H_
