// Deterministic RNG fixture: every test gets bit-for-bit reproducible
// randomness, and each test case gets an independent stream derived from the
// fixture seed plus a caller-chosen salt.
//
//   class MyTest : public lrm::test::DeterministicRngTest {};
//   TEST_F(MyTest, Foo) {
//     auto noise = rng::SampleLaplace(engine(), 1.0);   // fixture stream
//     auto other = MakeEngine(42);                      // salted substream
//   }

#ifndef LRM_TESTS_SUPPORT_RNG_FIXTURE_H_
#define LRM_TESTS_SUPPORT_RNG_FIXTURE_H_

#include <gtest/gtest.h>

#include <cstdint>

#include "rng/engine.h"

namespace lrm::test {

class DeterministicRngTest : public ::testing::Test {
 protected:
  // Fixed default; override per-fixture by passing a seed up from a subclass.
  static constexpr std::uint64_t kDefaultSeed = 0x5EEDBA5EBA11ULL;

  DeterministicRngTest() : DeterministicRngTest(kDefaultSeed) {}
  explicit DeterministicRngTest(std::uint64_t seed)
      : seed_(seed), engine_(seed) {}

  /// The fixture's primary engine (fresh per test, since gtest constructs a
  /// new fixture object for every TEST_F).
  rng::Engine& engine() { return engine_; }

  std::uint64_t seed() const { return seed_; }

  /// Independent engine deterministically derived from (seed, salt). Use when
  /// a test needs several uncorrelated streams.
  rng::Engine MakeEngine(std::uint64_t salt) const {
    std::uint64_t state = seed_ ^ (salt * 0x9E3779B97F4A7C15ULL);
    return rng::Engine(rng::SplitMix64(state));
  }

 private:
  std::uint64_t seed_;
  rng::Engine engine_;
};

}  // namespace lrm::test

#endif  // LRM_TESTS_SUPPORT_RNG_FIXTURE_H_
