#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

// Random SPD matrix A = GᵀG + n·I (well conditioned by construction).
Matrix RandomSpd(rng::Engine& engine, Index n) {
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = GramAtA(g);
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(CholeskyTest, FactorOfKnownMatrix) {
  // A = [[4, 2], [2, 3]] = L·Lᵀ with L = [[2, 0], [1, √2]].
  const Matrix a{{4.0, 2.0}, {2.0, 3.0}};
  const StatusOr<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_NEAR((*l)(0, 1), 0.0, 1e-15);
}

TEST(CholeskyTest, RejectsNonSquare) {
  EXPECT_EQ(CholeskyFactor(Matrix(2, 3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CholeskyTest, RejectsIndefinite) {
  const Matrix indefinite{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_EQ(CholeskyFactor(indefinite).status().code(),
            StatusCode::kNumericalError);
}

TEST(CholeskyTest, RejectsNegativeDefinite) {
  EXPECT_EQ(CholeskyFactor(Matrix{{-1.0}}).status().code(),
            StatusCode::kNumericalError);
}

class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, FactorReconstructs) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 7919);
  const Matrix a = RandomSpd(engine, n);
  const StatusOr<Matrix> l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_MATRIX_NEAR(MultiplyABt(*l, *l), a, 1e-8 * n);
  // L is lower triangular.
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) EXPECT_EQ((*l)(i, j), 0.0);
  }
}

TEST_P(CholeskyPropertyTest, SolveResidualIsTiny) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 104729);
  const Matrix a = RandomSpd(engine, n);
  const Vector b = RandomGaussianVector(engine, n);
  const StatusOr<Vector> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_VECTOR_NEAR(a * (*x), b, 1e-8 * n);
}

TEST_P(CholeskyPropertyTest, BlockSolveMatchesColumnwise) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 1299709);
  const Matrix a = RandomSpd(engine, n);
  const Matrix b = RandomGaussianMatrix(engine, n, 3);
  const StatusOr<Matrix> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_MATRIX_NEAR(a * (*x), b, 1e-8 * n);

  // Each column independently matches the vector solve.
  LRM_CHECK(x.ok());
  for (Index j = 0; j < 3; ++j) {
    const StatusOr<Vector> col = SolveSpd(a, b.Column(j));
    ASSERT_TRUE(col.ok());
    EXPECT_VECTOR_NEAR(x->Column(j), *col, 1e-8 * n);
  }
}

TEST_P(CholeskyPropertyTest, InverseSatisfiesDefinition) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 15485863);
  const Matrix a = RandomSpd(engine, n);
  const StatusOr<Matrix> inv = SpdInverse(a);
  ASSERT_TRUE(inv.ok());
  EXPECT_MATRIX_NEAR(a * (*inv), Matrix::Identity(n), 1e-8 * n);
  EXPECT_MATRIX_NEAR((*inv) * a, Matrix::Identity(n), 1e-8 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 40));

TEST(CholeskyTest, IdentitySolveIsIdentity) {
  const Matrix i5 = Matrix::Identity(5);
  const StatusOr<Matrix> inv = SpdInverse(i5);
  ASSERT_TRUE(inv.ok());
  EXPECT_MATRIX_NEAR(*inv, i5, 1e-14);
}

}  // namespace
}  // namespace lrm::linalg
