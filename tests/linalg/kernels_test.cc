// Cross-checks the blocked/threaded GEMM and the level-1 kernels against
// the scalar reference on random rectangular shapes, including empty and
// single-row/column edges. The blocked kernel is validated to a tight
// floating-point tolerance against the reference (their accumulation
// associativity differs by design); the threaded kernel is validated
// bitwise against the single-threaded blocked kernel, which the row-strip
// partition guarantees.

#include "linalg/kernels/kernels.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg::kernels {
namespace {

struct Shape {
  Index m, n, k;
};

const Shape kShapes[] = {
    {0, 5, 3},   {5, 0, 3},   {4, 4, 0},    {1, 1, 1},    {1, 7, 3},
    {7, 1, 3},   {3, 3, 3},   {17, 13, 11}, {64, 48, 80}, {129, 65, 33},
    {97, 101, 257},  // spills every blocking dimension at least once
};

const double kAlphaBeta[][2] = {{1.0, 0.0}, {2.5, 0.0}, {1.0, 1.0},
                                {0.5, -0.25}};

// Row-major buffer of op-independent storage for an operand that is m×k
// after op is applied.
std::vector<double> StoredOperand(Op op, Index m, Index k, rng::Engine& rng) {
  const Index rows = op == Op::kNone ? m : k;
  const Index cols = op == Op::kNone ? k : m;
  std::vector<double> data(static_cast<std::size_t>(rows * cols));
  for (double& x : data) x = rng.NextDouble() * 2.0 - 1.0;
  return data;
}

double MaxAbsDiff(const std::vector<double>& a, const std::vector<double>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

class KernelsGemmTest : public ::testing::TestWithParam<int> {};

TEST(KernelsGemmTest, BlockedMatchesReferenceAcrossShapesOpsAndScalars) {
  rng::Engine rng(1234);
  for (const Shape& shape : kShapes) {
    for (Op op_a : {Op::kNone, Op::kTranspose}) {
      for (Op op_b : {Op::kNone, Op::kTranspose}) {
        for (const auto& ab : kAlphaBeta) {
          const double alpha = ab[0], beta = ab[1];
          const auto a = StoredOperand(op_a, shape.m, shape.k, rng);
          const auto b = StoredOperand(op_b, shape.k, shape.n, rng);
          const Index lda = op_a == Op::kNone ? shape.k : shape.m;
          const Index ldb = op_b == Op::kNone ? shape.n : shape.k;

          std::vector<double> c_init(
              static_cast<std::size_t>(shape.m * shape.n));
          for (double& x : c_init) x = rng.NextDouble() * 2.0 - 1.0;

          std::vector<double> c_ref = c_init;
          GemmReference(op_a, op_b, shape.m, shape.n, shape.k, alpha,
                        a.data(), lda, b.data(), ldb, beta, c_ref.data(),
                        shape.n);
          std::vector<double> c_blk = c_init;
          GemmBlocked(op_a, op_b, shape.m, shape.n, shape.k, alpha, a.data(),
                      lda, b.data(), ldb, beta, c_blk.data(), shape.n,
                      /*threads=*/1);

          const double tol =
              1e-13 * static_cast<double>(shape.k + 1) * std::abs(alpha) +
              1e-13;
          EXPECT_LE(MaxAbsDiff(c_ref, c_blk), tol)
              << "shape " << shape.m << "x" << shape.n << "x" << shape.k
              << " op_a=" << static_cast<int>(op_a)
              << " op_b=" << static_cast<int>(op_b) << " alpha=" << alpha
              << " beta=" << beta;
        }
      }
    }
  }
}

TEST(KernelsGemmTest, ThreadedIsBitwiseIdenticalToSingleThread) {
  rng::Engine rng(99);
  // Row counts straddling several kMc strips so the partition is exercised.
  for (Index m : {Index{1}, Index{97}, Index{190}, Index{301}}) {
    const Index n = 65, k = 130;
    const auto a = StoredOperand(Op::kNone, m, k, rng);
    const auto b = StoredOperand(Op::kNone, k, n, rng);
    std::vector<double> c1(static_cast<std::size_t>(m * n));
    std::vector<double> c4(c1.size());
    GemmBlocked(Op::kNone, Op::kNone, m, n, k, 1.0, a.data(), k, b.data(), n,
                0.0, c1.data(), n, /*threads=*/1);
    GemmBlocked(Op::kNone, Op::kNone, m, n, k, 1.0, a.data(), k, b.data(), n,
                0.0, c4.data(), n, /*threads=*/4);
    EXPECT_EQ(0, std::memcmp(c1.data(), c4.data(), c1.size() * sizeof(double)))
        << "thread partition changed results at m=" << m;
  }
}

// Restores the environment-default thread count on scope exit.
struct ScopedGemmThreads {
  explicit ScopedGemmThreads(int threads) { SetGemmThreads(threads); }
  ~ScopedGemmThreads() { SetGemmThreads(0); }
};

TEST(KernelsGemmTest, DispatchIsBitwiseIdenticalAcrossThreadCounts) {
  // Full Gemm() dispatch at awkward shapes: a single column (threaded GEMV
  // row chunks), a single row (column chunks), and row counts that are not
  // multiples of the blocked kernel's strip size. Shapes are big enough to
  // cross both thread thresholds, so the parallel paths really run; the
  // shape-only partitions must keep the bits identical to threads == 1.
  struct GemmCase {
    Index m, n, k;
  };
  const GemmCase cases[] = {
      {2048, 1, 600},  // n == 1: row-chunked reference GEMV
      {1, 2048, 600},  // m == 1: column-chunked reference GEMV
      {301, 160, 64},  // blocked, m not a multiple of the task strip
      {97, 257, 101},  // blocked, spills every blocking dimension
  };
  rng::Engine rng(2024);
  for (const GemmCase& c : cases) {
    const auto a = StoredOperand(Op::kNone, c.m, c.k, rng);
    const auto b = StoredOperand(Op::kNone, c.k, c.n, rng);
    std::vector<double> baseline(static_cast<std::size_t>(c.m * c.n));
    {
      ScopedGemmThreads scoped(1);
      Gemm(Op::kNone, Op::kNone, c.m, c.n, c.k, 1.25, a.data(), c.k, b.data(),
           c.n, 0.0, baseline.data(), c.n);
    }
    for (int threads : {2, 8}) {
      ScopedGemmThreads scoped(threads);
      std::vector<double> got(baseline.size(), -1.0);
      Gemm(Op::kNone, Op::kNone, c.m, c.n, c.k, 1.25, a.data(), c.k, b.data(),
           c.n, 0.0, got.data(), c.n);
      EXPECT_EQ(0, std::memcmp(baseline.data(), got.data(),
                               got.size() * sizeof(double)))
          << "shape " << c.m << "x" << c.n << "x" << c.k << " at " << threads
          << " threads";
    }
  }
}

TEST(KernelsSymvTest, StripPartitionIsBitwiseIdenticalAcrossThreadCounts) {
  // n = 700 crosses the strip threshold (two strips), n = 1500 uses more;
  // the strip count and boundaries depend only on n, so every thread count
  // must reproduce the threads == 1 bits exactly.
  rng::Engine rng(501);
  for (Index n : {Index{700}, Index{1500}}) {
    std::vector<double> a(static_cast<std::size_t>(n * n));
    for (double& v : a) v = rng.NextDouble() * 2.0 - 1.0;
    std::vector<double> x(static_cast<std::size_t>(n));
    for (double& v : x) v = rng.NextDouble() * 2.0 - 1.0;
    std::vector<double> baseline(static_cast<std::size_t>(n), 0.5);
    {
      ScopedGemmThreads scoped(1);
      SymvLower(n, 1.5, a.data(), n, x.data(), -0.5, baseline.data());
    }
    for (int threads : {2, 8}) {
      ScopedGemmThreads scoped(threads);
      std::vector<double> got(static_cast<std::size_t>(n), 0.5);
      SymvLower(n, 1.5, a.data(), n, x.data(), -0.5, got.data());
      EXPECT_EQ(0, std::memcmp(baseline.data(), got.data(),
                               got.size() * sizeof(double)))
          << "n=" << n << " at " << threads << " threads";
    }
  }
}

TEST(KernelsSymvTest, StripPartitionMatchesGemvReference) {
  // Accuracy of the multi-strip path (the small-n test above only covers
  // the single-strip layout): compare against the full symmetric GEMV.
  const Index n = 700;
  rng::Engine rng(502);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  for (double& v : a) v = rng.NextDouble() * 2.0 - 1.0;
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      a[static_cast<std::size_t>(i * n + j)] =
          a[static_cast<std::size_t>(j * n + i)];
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.NextDouble() * 2.0 - 1.0;
  std::vector<double> want(static_cast<std::size_t>(n));
  GemmReference(Op::kNone, Op::kNone, n, 1, n, 1.0, a.data(), n, x.data(), 1,
                0.0, want.data(), 1);
  std::vector<double> got(static_cast<std::size_t>(n), 1e300);
  SymvLower(n, 1.0, a.data(), n, x.data(), 0.0, got.data());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-11)
        << i;
  }
}

TEST(KernelsGemmTest, BetaZeroOverwritesUninitializedOutput) {
  // beta == 0 must not read C: signaling garbage (NaN) must be overwritten.
  const Index m = 5, n = 6, k = 4;
  rng::Engine rng(7);
  const auto a = StoredOperand(Op::kNone, m, k, rng);
  const auto b = StoredOperand(Op::kNone, k, n, rng);
  std::vector<double> c(static_cast<std::size_t>(m * n),
                        std::numeric_limits<double>::quiet_NaN());
  GemmBlocked(Op::kNone, Op::kNone, m, n, k, 1.0, a.data(), k, b.data(), n,
              0.0, c.data(), n, 1);
  for (double x : c) EXPECT_TRUE(std::isfinite(x));
}

TEST(KernelsGemmTest, StridedOperandsAndOutput) {
  // Operate on an interior block of larger buffers: lda/ldb/ldc > cols.
  const Index m = 9, n = 7, k = 8;
  const Index lda = 13, ldb = 11, ldc = 19;
  rng::Engine rng(21);
  std::vector<double> a(static_cast<std::size_t>(m * lda));
  std::vector<double> b(static_cast<std::size_t>(k * ldb));
  for (double& x : a) x = rng.NextDouble();
  for (double& x : b) x = rng.NextDouble();
  std::vector<double> c_ref(static_cast<std::size_t>(m * ldc), 3.25);
  std::vector<double> c_blk = c_ref;
  GemmReference(Op::kNone, Op::kNone, m, n, k, 1.0, a.data(), lda, b.data(),
                ldb, 0.0, c_ref.data(), ldc);
  GemmBlocked(Op::kNone, Op::kNone, m, n, k, 1.0, a.data(), lda, b.data(),
              ldb, 0.0, c_blk.data(), ldc, 1);
  EXPECT_LE(MaxAbsDiff(c_ref, c_blk), 1e-12);
  // Entries beyond each row's n columns are padding and must be untouched.
  for (Index i = 0; i < m; ++i) {
    for (Index j = n; j < ldc; ++j) {
      EXPECT_EQ(c_blk[static_cast<std::size_t>(i * ldc + j)], 3.25);
    }
  }
}

TEST(KernelsDispatchTest, ImplOverrideRoutesToBothKernels) {
  const Index n = 40;
  rng::Engine rng(5);
  const auto a = StoredOperand(Op::kNone, n, n, rng);
  const auto b = StoredOperand(Op::kNone, n, n, rng);
  std::vector<double> c_auto(static_cast<std::size_t>(n * n));
  std::vector<double> c_ref(c_auto.size());
  std::vector<double> c_blk(c_auto.size());

  SetGemmImpl(GemmImpl::kReference);
  Gemm(Op::kNone, Op::kNone, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
       c_ref.data(), n);
  SetGemmImpl(GemmImpl::kBlocked);
  Gemm(Op::kNone, Op::kNone, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
       c_blk.data(), n);
  SetGemmImpl(GemmImpl::kAuto);
  Gemm(Op::kNone, Op::kNone, n, n, n, 1.0, a.data(), n, b.data(), n, 0.0,
       c_auto.data(), n);

  EXPECT_LE(MaxAbsDiff(c_ref, c_blk), 1e-12);
  EXPECT_LE(MaxAbsDiff(c_ref, c_auto), 1e-12);
}

TEST(KernelsDispatchTest, ThreadOverrideRoundTrips) {
  SetGemmThreads(3);
  EXPECT_EQ(GemmThreads(), 3);
  SetGemmThreads(0);  // back to the environment default
  EXPECT_GE(GemmThreads(), 1);
}

TEST(KernelsSyrkTest, BlockedMatchesReferenceAndLeavesUpperUntouched) {
  rng::Engine rng(71);
  for (Index n : {Index{1}, Index{7}, Index{63}, Index{64}, Index{130}}) {
    for (Index k : {Index{0}, Index{1}, Index{33}, Index{96}}) {
      for (Op op : {Op::kNone, Op::kTranspose}) {
        for (const auto& ab : kAlphaBeta) {
          const double alpha = ab[0], beta = ab[1];
          const auto a = StoredOperand(op, n, k, rng);
          const Index lda = op == Op::kNone ? std::max<Index>(k, 1) : n;
          // Sentinel-filled C: the strict upper triangle must survive.
          std::vector<double> c_ref(static_cast<std::size_t>(n * n), 7.5);
          std::vector<double> c_blk = c_ref;
          SyrkReference(op, n, k, alpha, a.data(), lda, beta, c_ref.data(),
                        n);
          SyrkBlocked(op, n, k, alpha, a.data(), lda, beta, c_blk.data(), n);
          const double tol =
              1e-13 * static_cast<double>(k + 1) * std::abs(alpha) + 1e-13;
          EXPECT_LE(MaxAbsDiff(c_ref, c_blk), tol)
              << "n=" << n << " k=" << k << " op=" << static_cast<int>(op)
              << " alpha=" << alpha << " beta=" << beta;
          for (Index i = 0; i < n; ++i) {
            for (Index j = i + 1; j < n; ++j) {
              ASSERT_EQ(c_blk[static_cast<std::size_t>(i * n + j)], 7.5)
                  << "upper triangle touched at " << i << "," << j;
            }
          }
        }
      }
    }
  }
}

TEST(KernelsSyrkTest, MatchesExplicitGemmOnLowerTriangle) {
  const Index n = 50, k = 20;
  rng::Engine rng(73);
  const auto a = StoredOperand(Op::kNone, n, k, rng);
  std::vector<double> full(static_cast<std::size_t>(n * n));
  GemmReference(Op::kNone, Op::kTranspose, n, n, k, 2.0, a.data(), k,
                a.data(), k, 0.0, full.data(), n);
  std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
  Syrk(Op::kNone, n, k, 2.0, a.data(), k, 0.0, c.data(), n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j <= i; ++j) {
      EXPECT_NEAR(c[static_cast<std::size_t>(i * n + j)],
                  full[static_cast<std::size_t>(i * n + j)], 1e-11);
    }
  }
}

// Random lower-triangular matrix with garbage in the strict upper triangle
// (which Trsm must ignore) and a diagonal dominating both its row and its
// column, so every substitution direction is well conditioned and the
// recover-known-X check stays meaningful at n ≈ 100.
std::vector<double> RandomLowerTriangular(Index n, Index ldl,
                                          rng::Engine& rng) {
  std::vector<double> l(static_cast<std::size_t>(n * ldl));
  for (double& x : l) x = rng.NextDouble() * 2.0 - 1.0;
  for (Index i = 0; i < n; ++i) {
    double dominance = 2.0 + rng.NextDouble();
    for (Index j = 0; j < i; ++j) {
      dominance += std::abs(l[static_cast<std::size_t>(i * ldl + j)]);
    }
    for (Index r = i + 1; r < n; ++r) {
      dominance += std::abs(l[static_cast<std::size_t>(r * ldl + i)]);
    }
    l[static_cast<std::size_t>(i * ldl + i)] = dominance;
  }
  return l;
}

TEST(KernelsTrsmTest, RecoversKnownSolutionAllVariants) {
  rng::Engine rng(79);
  for (Index m : {Index{1}, Index{5}, Index{65}, Index{130}}) {
    for (Index n : {Index{1}, Index{9}, Index{70}, Index{129}}) {
      for (Side side : {Side::kLeft, Side::kRight}) {
        for (Op op : {Op::kNone, Op::kTranspose}) {
          const Index tri = side == Side::kLeft ? m : n;
          const auto l = RandomLowerTriangular(tri, tri, rng);
          std::vector<double> x(static_cast<std::size_t>(m * n));
          for (double& v : x) v = rng.NextDouble() * 2.0 - 1.0;
          // B = op(L)·X (left) or X·op(L) (right), built with the GEMM
          // oracle on the lower-triangularized L.
          std::vector<double> l_clean = l;
          for (Index i = 0; i < tri; ++i) {
            for (Index j = i + 1; j < tri; ++j) {
              l_clean[static_cast<std::size_t>(i * tri + j)] = 0.0;
            }
          }
          std::vector<double> b(static_cast<std::size_t>(m * n));
          if (side == Side::kLeft) {
            GemmReference(op, Op::kNone, m, n, m, 1.0, l_clean.data(), tri,
                          x.data(), n, 0.0, b.data(), n);
          } else {
            GemmReference(Op::kNone, op, m, n, n, 1.0, x.data(), n,
                          l_clean.data(), tri, 0.0, b.data(), n);
          }
          std::vector<double> solved_ref = b;
          TrsmReference(side, op, m, n, 1.0, l.data(), tri,
                        solved_ref.data(), n);
          std::vector<double> solved_blk = b;
          TrsmBlocked(side, op, m, n, 1.0, l.data(), tri, solved_blk.data(),
                      n);
          const double tol = 1e-10 * static_cast<double>(tri);
          EXPECT_LE(MaxAbsDiff(solved_ref, x), tol)
              << "reference m=" << m << " n=" << n
              << " side=" << static_cast<int>(side)
              << " op=" << static_cast<int>(op);
          EXPECT_LE(MaxAbsDiff(solved_blk, x), tol)
              << "blocked m=" << m << " n=" << n
              << " side=" << static_cast<int>(side)
              << " op=" << static_cast<int>(op);
        }
      }
    }
  }
}

TEST(KernelsTrsmTest, AlphaScalesAndStridedBuffersWork) {
  const Index m = 40, n = 30, ldb = 37, ldl = 45;
  rng::Engine rng(83);
  const auto l = RandomLowerTriangular(m, ldl, rng);
  std::vector<double> b(static_cast<std::size_t>(m * ldb));
  for (double& v : b) v = rng.NextDouble();
  std::vector<double> b_ref = b;
  std::vector<double> b_blk = b;
  TrsmReference(Side::kLeft, Op::kNone, m, n, 0.5, l.data(), ldl,
                b_ref.data(), ldb);
  TrsmBlocked(Side::kLeft, Op::kNone, m, n, 0.5, l.data(), ldl, b_blk.data(),
              ldb);
  EXPECT_LE(MaxAbsDiff(b_ref, b_blk), 1e-12);
  // Padding columns beyond n must be untouched.
  for (Index i = 0; i < m; ++i) {
    for (Index j = n; j < ldb; ++j) {
      EXPECT_EQ(b_blk[static_cast<std::size_t>(i * ldb + j)],
                b[static_cast<std::size_t>(i * ldb + j)]);
    }
  }
}

TEST(KernelsDispatchTest, FactorImplOverrideRoundTrips) {
  SetFactorImpl(FactorImpl::kReference);
  EXPECT_EQ(ActiveFactorImpl(), FactorImpl::kReference);
  SetFactorImpl(FactorImpl::kBlocked);
  EXPECT_EQ(ActiveFactorImpl(), FactorImpl::kBlocked);
  SetFactorImpl(FactorImpl::kDc);
  EXPECT_EQ(ActiveFactorImpl(), FactorImpl::kDc);
  SetFactorImpl(FactorImpl::kPartial);
  EXPECT_EQ(ActiveFactorImpl(), FactorImpl::kPartial);
  SetFactorImpl(FactorImpl::kAuto);  // back to the environment default
}

TEST(KernelsLevel1Test, AxpyAxpbyScale) {
  const Index n = 257;
  std::vector<double> x(static_cast<std::size_t>(n));
  std::vector<double> y(static_cast<std::size_t>(n));
  std::vector<double> expected(static_cast<std::size_t>(n));
  rng::Engine rng(11);
  for (Index i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = rng.NextDouble();
    y[static_cast<std::size_t>(i)] = rng.NextDouble();
  }

  expected = y;
  for (Index i = 0; i < n; ++i) {
    expected[static_cast<std::size_t>(i)] +=
        1.5 * x[static_cast<std::size_t>(i)];
  }
  Axpy(n, 1.5, x.data(), y.data());
  EXPECT_EQ(y, expected);

  for (Index i = 0; i < n; ++i) {
    expected[static_cast<std::size_t>(i)] =
        -2.0 * x[static_cast<std::size_t>(i)] +
        0.5 * y[static_cast<std::size_t>(i)];
  }
  Axpby(n, -2.0, x.data(), 0.5, y.data());
  EXPECT_EQ(y, expected);

  for (double& v : expected) v *= 3.0;
  Scale(n, 3.0, y.data());
  EXPECT_EQ(y, expected);
}

TEST(KernelsLevel1Test, DotAndSquaredNorm) {
  const std::vector<double> x = {1.0, -2.0, 3.0};
  const std::vector<double> y = {4.0, 5.0, -6.0};
  EXPECT_DOUBLE_EQ(Dot(3, x.data(), y.data()), 4.0 - 10.0 - 18.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(3, x.data()), 14.0);
  EXPECT_DOUBLE_EQ(Dot(0, x.data(), y.data()), 0.0);
}

TEST(KernelsSymvTest, MatchesFullGemvReadingOnlyLowerTriangle) {
  const Index n = 37, lda = 41;
  rng::Engine rng(47);
  std::vector<double> a(static_cast<std::size_t>(n * lda));
  for (double& v : a) v = rng.NextDouble() * 2.0 - 1.0;
  // Symmetrize the lower triangle into a full reference copy, then poison
  // the strict upper triangle of the kernel's input: SymvLower must never
  // read it.
  std::vector<double> full(static_cast<std::size_t>(n * lda));
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      const Index lo = std::max(i, j) * lda + std::min(i, j);
      full[static_cast<std::size_t>(i * lda + j)] =
          a[static_cast<std::size_t>(lo)];
    }
    for (Index j = i + 1; j < n; ++j) {
      a[static_cast<std::size_t>(i * lda + j)] =
          std::numeric_limits<double>::quiet_NaN();
    }
  }
  std::vector<double> x(static_cast<std::size_t>(n));
  for (double& v : x) v = rng.NextDouble() * 2.0 - 1.0;

  std::vector<double> want(static_cast<std::size_t>(n));
  GemmReference(Op::kNone, Op::kNone, n, 1, n, 0.75, full.data(), lda,
                x.data(), 1, 0.0, want.data(), 1);

  // beta == 0 overwrites garbage.
  std::vector<double> got(static_cast<std::size_t>(n), 1e300);
  SymvLower(n, 0.75, a.data(), lda, x.data(), 0.0, got.data());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(got[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)], 1e-12)
        << i;
  }

  // beta == 1 accumulates; beta == -2 scales.
  std::vector<double> acc(static_cast<std::size_t>(n), 3.0);
  SymvLower(n, 0.75, a.data(), lda, x.data(), 1.0, acc.data());
  std::vector<double> scaled(static_cast<std::size_t>(n), 3.0);
  SymvLower(n, 0.75, a.data(), lda, x.data(), -2.0, scaled.data());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(acc[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)] + 3.0, 1e-12);
    EXPECT_NEAR(scaled[static_cast<std::size_t>(i)],
                want[static_cast<std::size_t>(i)] - 6.0, 1e-12);
  }

  // n == 0 and n == 1 degenerate shapes.
  SymvLower(0, 1.0, a.data(), lda, x.data(), 0.0, got.data());
  double y1 = -7.0;
  SymvLower(1, 2.0, a.data(), lda, x.data(), 0.0, &y1);
  EXPECT_NEAR(y1, 2.0 * a[0] * x[0], 1e-15);
}

TEST(KernelsLevel1Test, ColumnReductionsMatchNaiveLoops) {
  const Index m = 23, n = 17, lda = 21;
  std::vector<double> a(static_cast<std::size_t>(m * lda));
  rng::Engine rng(31);
  for (double& v : a) v = rng.NextDouble() * 2.0 - 1.0;

  std::vector<double> abs_sums(static_cast<std::size_t>(n), -1.0);
  std::vector<double> sq_norms(static_cast<std::size_t>(n), -1.0);
  ColumnAbsSums(m, n, a.data(), lda, abs_sums.data());
  ColumnSquaredNorms(m, n, a.data(), lda, sq_norms.data());

  for (Index j = 0; j < n; ++j) {
    double want_abs = 0.0, want_sq = 0.0;
    for (Index i = 0; i < m; ++i) {
      const double v = a[static_cast<std::size_t>(i * lda + j)];
      want_abs += std::abs(v);
      want_sq += v * v;
    }
    EXPECT_NEAR(abs_sums[static_cast<std::size_t>(j)], want_abs, 1e-12);
    EXPECT_NEAR(sq_norms[static_cast<std::size_t>(j)], want_sq, 1e-12);
  }
  // m == 0 must still clear the output.
  ColumnAbsSums(0, n, a.data(), lda, abs_sums.data());
  for (Index j = 0; j < n; ++j) {
    EXPECT_EQ(abs_sums[static_cast<std::size_t>(j)], 0.0);
  }
}

}  // namespace
}  // namespace lrm::linalg::kernels
