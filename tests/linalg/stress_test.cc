// Numerics stress tests: ill-conditioned and structured inputs that expose
// weaknesses textbook implementations often have.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "linalg/svd.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

// Hilbert matrix H_ij = 1/(i+j+1): symmetric positive definite but
// catastrophically ill-conditioned (cond ≈ e^{3.5n}).
Matrix Hilbert(Index n) {
  Matrix h(n, n);
  for (Index i = 0; i < n; ++i) {
    for (Index j = 0; j < n; ++j) {
      h(i, j) = 1.0 / static_cast<double>(i + j + 1);
    }
  }
  return h;
}

TEST(StressTest, HilbertCholeskySucceedsThroughN10) {
  // cond(H_10) ~ 1e13 — still within double Cholesky's reach.
  for (Index n : {2, 4, 8, 10}) {
    const StatusOr<Matrix> l = CholeskyFactor(Hilbert(n));
    ASSERT_TRUE(l.ok()) << "n=" << n;
    EXPECT_MATRIX_NEAR(MultiplyABt(*l, *l), Hilbert(n), 1e-10);
  }
}

TEST(StressTest, HilbertEigenvaluesArePositiveAndTiny) {
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(Hilbert(8));
  ASSERT_TRUE(eig.ok());
  // Known: λ_min(H_8) ≈ 1.1e-10, λ_max ≈ 1.696.
  EXPECT_GT(eig->eigenvalues[0], 0.0);
  EXPECT_LT(eig->eigenvalues[0], 1e-9);
  EXPECT_NEAR(eig->eigenvalues[7], 1.6959, 1e-3);
}

TEST(StressTest, SvdOfGradedMatrix) {
  // Singular values spanning 12 orders of magnitude: Jacobi must keep
  // relative accuracy on the large end.
  const Index n = 6;
  Vector spectrum(n);
  for (Index i = 0; i < n; ++i) {
    spectrum[i] = std::pow(10.0, -2.0 * static_cast<double>(i));
  }
  const Matrix a = Matrix::Diagonal(spectrum);
  const StatusOr<SvdResult> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(svd->singular_values[i] / spectrum[i], 1.0, 1e-10) << i;
  }
}

TEST(StressTest, SvdWithRepeatedSingularValues) {
  // A degenerate spectrum (σ = 2, 2, 2) still needs orthonormal factors
  // and exact reconstruction even though the subspace is not unique.
  Matrix a = Matrix::Identity(3) * 2.0;
  const StatusOr<SvdResult> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  for (Index i = 0; i < 3; ++i) {
    EXPECT_NEAR(svd->singular_values[i], 2.0, 1e-12);
  }
  EXPECT_MATRIX_NEAR(svd->Reconstruct(), a, 1e-12);
  EXPECT_MATRIX_NEAR(GramAtA(svd->u), Matrix::Identity(3), 1e-12);
}

TEST(StressTest, EigenOfZeroMatrix) {
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(Matrix(5, 5));
  ASSERT_TRUE(eig.ok());
  for (Index i = 0; i < 5; ++i) {
    EXPECT_NEAR(eig->eigenvalues[i], 0.0, 1e-14);
  }
  // Eigenvectors must still be orthonormal.
  EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(5), 1e-12);
}

TEST(StressTest, SvdOfSingleColumnAndRow) {
  const Matrix column{{3.0}, {4.0}};
  const StatusOr<SvdResult> c = JacobiSvd(column);
  ASSERT_TRUE(c.ok());
  EXPECT_NEAR(c->singular_values[0], 5.0, 1e-12);

  const Matrix row{{3.0, 4.0}};
  const StatusOr<SvdResult> r = JacobiSvd(row);
  ASSERT_TRUE(r.ok());
  EXPECT_NEAR(r->singular_values[0], 5.0, 1e-12);
}

TEST(StressTest, AllFiniteDetectors) {
  Matrix m(2, 2, 1.0);
  EXPECT_TRUE(AllFinite(m));
  m(1, 1) = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(AllFinite(m));
  m(1, 1) = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(m));

  Vector v{1.0, 2.0};
  EXPECT_TRUE(AllFinite(v));
  v[0] = -std::numeric_limits<double>::infinity();
  EXPECT_FALSE(AllFinite(v));
}

TEST(StressTest, CholeskyNearSingularStillFactorsOrFailsCleanly) {
  // A = diag(1, δ) for shrinking δ: must either factor correctly or
  // return kNumericalError — never crash or emit NaN.
  for (double delta : {1e-8, 1e-12, 1e-16, 0.0}) {
    Matrix a = Matrix::Diagonal(Vector{1.0, delta});
    const StatusOr<Matrix> l = CholeskyFactor(a);
    if (l.ok()) {
      EXPECT_MATRIX_FINITE(*l);
      EXPECT_MATRIX_NEAR(MultiplyABt(*l, *l), a, 1e-12);
    } else {
      EXPECT_EQ(l.status().code(), StatusCode::kNumericalError);
    }
  }
}

}  // namespace
}  // namespace lrm::linalg
