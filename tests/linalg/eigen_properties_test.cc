// Property-based spectral suite for the symmetric eigensolver tier.
//
// Matrices are GENERATED per spectral shape (random symmetric, clustered
// eigenvalues, rank-deficient Grams, graded spectra, Wilkinson pairs,
// ±pairs straddling the deflation threshold) and every implementation
// behind the LRM_FACTOR_KERNEL dispatch (scalar QL, blocked QL, divide-and-
// conquer) must satisfy the defining properties on all of them:
//
//   * residual:       ‖A·V − V·Λ‖_max ≤ tol·‖A‖
//   * orthonormality: ‖VᵀV − I‖_max  ≤ tol
//   * ordering:       λ₀ ≤ λ₁ ≤ … ≤ λ_{n-1}
//
// plus cross-implementation eigenvalue agreement: the dc spectrum must
// match the QL oracle at 1e-10 scale (eigenvalues are unique, so they
// compare directly even where eigenvectors do not).

#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/eigen_sym.h"
#include "linalg/kernels/kernels.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

namespace kernels = lrm::linalg::kernels;

class ScopedFactorImpl {
 public:
  explicit ScopedFactorImpl(kernels::FactorImpl impl) {
    kernels::SetFactorImpl(impl);
  }
  ~ScopedFactorImpl() { kernels::SetFactorImpl(kernels::FactorImpl::kAuto); }
};

// Conjugates diag(spectrum) by a random orthogonal factor so the matrix is
// dense but the spectrum is exactly known by construction.
Matrix FromSpectrum(rng::Engine& engine, const Vector& spectrum) {
  const Index n = spectrum.size();
  const StatusOr<Matrix> q =
      OrthonormalizeColumns(RandomGaussianMatrix(engine, n, n));
  LRM_CHECK(q.ok());
  Matrix scaled = *q;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) scaled(i, j) *= spectrum[j];
  }
  return MultiplyABt(scaled, *q);
}

Matrix RandomSymmetric(rng::Engine& engine, Index n) {
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = g + Transpose(g);
  a *= 0.5;
  return a;
}

// A few tight clusters of exactly-repeated eigenvalues — the shape that
// drives the D&C merge through heavy Givens deflation.
Matrix ClusteredSpectrum(rng::Engine& engine, Index n) {
  Vector spectrum(n);
  const double centers[] = {-3.0, 0.0, 1.0, 7.5};
  for (Index i = 0; i < n; ++i) {
    spectrum[i] = centers[i % 4];
  }
  return FromSpectrum(engine, spectrum);
}

// Rank-deficient PSD Gram matrix: most of the spectrum collapses to zero,
// exercising the tiny-z deflation branch en masse.
Matrix RankDeficientGram(rng::Engine& engine, Index n) {
  const Index r = std::max<Index>(2, n / 8);
  const Matrix g = RandomGaussianMatrix(engine, n, r);
  return MultiplyABt(g, g);
}

// Eigenvalues spanning ~12 orders of magnitude.
Matrix GradedSpectrum(rng::Engine& engine, Index n) {
  Vector spectrum(n);
  for (Index i = 0; i < n; ++i) {
    spectrum[i] = std::pow(10.0, -12.0 * static_cast<double>(i) /
                                     static_cast<double>(std::max<Index>(
                                         n - 1, 1)));
  }
  return FromSpectrum(engine, spectrum);
}

// Wilkinson-style W⁺ tridiagonal: diagonal |i − (n−1)/2| with unit
// off-diagonals. Its large eigenvalues come in famously close (but not
// equal) pairs that sit right at deflation tolerances.
Matrix Wilkinson(Index n) {
  Matrix w(n, n);
  const double center = static_cast<double>(n - 1) / 2.0;
  for (Index i = 0; i < n; ++i) {
    w(i, i) = std::abs(static_cast<double>(i) - center);
    if (i + 1 < n) {
      w(i, i + 1) = 1.0;
      w(i + 1, i) = 1.0;
    }
  }
  return w;
}

// ± pairs split by perturbations straddling the deflation threshold
// (~8·eps·‖A‖): exact ties, ties broken at 1e-15, 1e-12, and 1e-8 — the
// deflate / don't-deflate decision must not cost correctness either way.
Matrix PlusMinusPairs(rng::Engine& engine, Index n) {
  Vector spectrum(n);
  const double splits[] = {0.0, 1e-15, 1e-12, 1e-8};
  for (Index i = 0; i < n; i += 2) {
    const double base = 1.0 + static_cast<double>(i) / n;
    const double split = splits[(i / 2) % 4];
    spectrum[i] = base;
    if (i + 1 < n) spectrum[i + 1] = -(base + split);
  }
  return FromSpectrum(engine, spectrum);
}

using Generator = Matrix (*)(rng::Engine&, Index);

Matrix WilkinsonAdapter(rng::Engine&, Index n) { return Wilkinson(n); }

struct SpectralCase {
  const char* name;
  Generator generate;
};

constexpr SpectralCase kCases[] = {
    {"RandomSymmetric", &RandomSymmetric},
    {"ClusteredSpectrum", &ClusteredSpectrum},
    {"RankDeficientGram", &RankDeficientGram},
    {"GradedSpectrum", &GradedSpectrum},
    {"Wilkinson", &WilkinsonAdapter},
    {"PlusMinusPairs", &PlusMinusPairs},
};

void CheckSpectralProperties(const Matrix& a, const SymmetricEigenResult& eig,
                             const char* label) {
  SCOPED_TRACE(label);
  const Index n = a.rows();
  ASSERT_EQ(eig.eigenvalues.size(), n);
  ASSERT_EQ(eig.eigenvectors.rows(), n);
  ASSERT_EQ(eig.eigenvectors.cols(), n);
  const double norm = std::max(MaxAbs(a), 1e-300);
  const double tol = 1e-12 * static_cast<double>(n);

  // A·V = V·Λ.
  const Matrix av = a * eig.eigenvectors;
  Matrix vl = eig.eigenvectors;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) vl(i, j) *= eig.eigenvalues[j];
  }
  EXPECT_MATRIX_NEAR(av, vl, tol * norm);

  // VᵀV = I.
  EXPECT_MATRIX_NEAR(GramAtA(eig.eigenvectors), Matrix::Identity(n), tol);

  // Ascending order.
  for (Index i = 1; i < n; ++i) {
    EXPECT_GE(eig.eigenvalues[i], eig.eigenvalues[i - 1]) << "position " << i;
  }
}

class EigenSpectralPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EigenSpectralPropertyTest, AllImplementationsSatisfyProperties) {
  const auto [case_index, n] = GetParam();
  const SpectralCase& spectral_case = kCases[case_index];
  SCOPED_TRACE(spectral_case.name);
  rng::Engine engine(static_cast<std::uint64_t>(case_index) * 7919 + n);
  const Matrix a = spectral_case.generate(engine, n);

  StatusOr<SymmetricEigenResult> ql = Status::InvalidArgument("unset");
  StatusOr<SymmetricEigenResult> dc = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kReference);
    const StatusOr<SymmetricEigenResult> scalar = SymmetricEigen(a);
    ASSERT_TRUE(scalar.ok());
    CheckSpectralProperties(a, *scalar, "scalar QL");
  }
  {
    ScopedFactorImpl force(kernels::FactorImpl::kBlocked);
    ql = SymmetricEigen(a);
    ASSERT_TRUE(ql.ok());
    CheckSpectralProperties(a, *ql, "blocked QL");
  }
  {
    ScopedFactorImpl force(kernels::FactorImpl::kDc);
    dc = SymmetricEigen(a);
    ASSERT_TRUE(dc.ok());
    CheckSpectralProperties(a, *dc, "divide-and-conquer");
  }

  // Eigenvalues are unique: dc must match the QL oracle at 1e-10 scale.
  const double scale = std::max(MaxAbs(a), 1.0) * n;
  for (Index i = 0; i < n; ++i) {
    EXPECT_NEAR(dc->eigenvalues[i], ql->eigenvalues[i], 1e-10 * scale)
        << "eigenvalue " << i;
  }
}

// Sizes below, at, and above the leaf size (32) and the auto-dispatch
// threshold (128), including odd splits and multi-level merge trees.
INSTANTIATE_TEST_SUITE_P(
    Shapes, EigenSpectralPropertyTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(16, 33, 64, 97, 160, 257)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kCases[std::get<0>(info.param)].name) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// Restores the environment-default GEMM thread count on scope exit.
class ScopedGemmThreads {
 public:
  explicit ScopedGemmThreads(int threads) { kernels::SetGemmThreads(threads); }
  ~ScopedGemmThreads() { kernels::SetGemmThreads(0); }
};

// Every spectral shape, solved by the dc path at n = 257 (multi-level
// merge tree past the parallel-fork threshold): the eigenpairs must be
// BITWISE identical across thread counts — the runtime's determinism
// contract, not a tolerance statement.
class EigenThreadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenThreadSweepTest, DcEigenpairsAreBitwiseThreadCountInvariant) {
  const int case_index = GetParam();
  const SpectralCase& spectral_case = kCases[case_index];
  SCOPED_TRACE(spectral_case.name);
  const Index n = 257;
  rng::Engine engine(static_cast<std::uint64_t>(case_index) * 6211 + n);
  const Matrix a = spectral_case.generate(engine, n);
  ScopedFactorImpl force(kernels::FactorImpl::kDc);

  StatusOr<SymmetricEigenResult> baseline = Status::InvalidArgument("unset");
  {
    ScopedGemmThreads threads(1);
    baseline = SymmetricEigen(a);
  }
  ASSERT_TRUE(baseline.ok());

  for (int count : {2, 8}) {
    SCOPED_TRACE(count);
    ScopedGemmThreads threads(count);
    const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
    ASSERT_TRUE(eig.ok());
    EXPECT_VECTOR_NEAR(eig->eigenvalues, baseline->eigenvalues, 0.0);
    EXPECT_MATRIX_NEAR(eig->eigenvectors, baseline->eigenvectors, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, EigenThreadSweepTest, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kCases[info.param].name);
                         });

// The partial solver (bisection + cluster-reorthogonalized inverse
// iteration, forced via kPartial) over the same generated-spectra matrix:
// its top-k must agree with the full D&C oracle at 1e-10 scale, its columns
// must be orthonormal even inside clusters, and the eigenpairs must satisfy
// the residual property. k spans a singleton, the rank-search regime, and
// half the spectrum so the cluster detector sees cuts at every shape.
class PartialEigenSpectralPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartialEigenSpectralPropertyTest, PartialSolverMatchesDcOracle) {
  const auto [case_index, n] = GetParam();
  const SpectralCase& spectral_case = kCases[case_index];
  SCOPED_TRACE(spectral_case.name);
  rng::Engine engine(static_cast<std::uint64_t>(case_index) * 4409 + n);
  const Matrix a = spectral_case.generate(engine, n);

  StatusOr<SymmetricEigenResult> dc = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kDc);
    dc = SymmetricEigen(a);
  }
  ASSERT_TRUE(dc.ok());

  const double norm = std::max(MaxAbs(a), 1e-300);
  const double scale = std::max(MaxAbs(a), 1.0) * n;
  const double tol = 1e-12 * static_cast<double>(n);
  ScopedFactorImpl force(kernels::FactorImpl::kPartial);
  const Index dim = n;
  for (Index k : {Index{1}, std::max<Index>(1, dim / 8), dim / 2}) {
    SCOPED_TRACE(k);
    const StatusOr<SymmetricEigenResult> part = PartialSymmetricEigen(a, k);
    ASSERT_TRUE(part.ok()) << part.status().message();
    ASSERT_EQ(part->eigenvalues.size(), k);

    for (Index i = 0; i < k; ++i) {
      EXPECT_NEAR(part->eigenvalues[i], dc->eigenvalues[n - k + i],
                  1e-10 * scale)
          << "eigenvalue " << i;
    }

    const Matrix av = a * part->eigenvectors;
    Matrix vl = part->eigenvectors;
    for (Index j = 0; j < k; ++j) {
      for (Index i = 0; i < n; ++i) vl(i, j) *= part->eigenvalues[j];
    }
    EXPECT_MATRIX_NEAR(av, vl, tol * norm);
    EXPECT_MATRIX_NEAR(GramAtA(part->eigenvectors), Matrix::Identity(k), tol);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartialEigenSpectralPropertyTest,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(64, 97, 160, 257)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return std::string(kCases[std::get<0>(info.param)].name) + "_" +
             std::to_string(std::get<1>(info.param));
    });

// Same determinism contract as the dc sweep, for the subset path: bisection
// candidates and cluster solves are partitioned by shape only, so the
// eigenpairs must be BITWISE identical across thread counts.
class PartialThreadSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(PartialThreadSweepTest, EigenpairsAreBitwiseThreadCountInvariant) {
  const int case_index = GetParam();
  const SpectralCase& spectral_case = kCases[case_index];
  SCOPED_TRACE(spectral_case.name);
  const Index n = 257;
  const Index k = 32;
  rng::Engine engine(static_cast<std::uint64_t>(case_index) * 9973 + n);
  const Matrix a = spectral_case.generate(engine, n);
  ScopedFactorImpl force(kernels::FactorImpl::kPartial);

  StatusOr<SymmetricEigenResult> baseline = Status::InvalidArgument("unset");
  {
    ScopedGemmThreads threads(1);
    baseline = PartialSymmetricEigen(a, k);
  }
  ASSERT_TRUE(baseline.ok());

  for (int count : {2, 8}) {
    SCOPED_TRACE(count);
    ScopedGemmThreads threads(count);
    const StatusOr<SymmetricEigenResult> eig = PartialSymmetricEigen(a, k);
    ASSERT_TRUE(eig.ok());
    EXPECT_VECTOR_NEAR(eig->eigenvalues, baseline->eigenvalues, 0.0);
    EXPECT_MATRIX_NEAR(eig->eigenvectors, baseline->eigenvectors, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, PartialThreadSweepTest, ::testing::Range(0, 6),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return std::string(kCases[info.param].name);
                         });

}  // namespace
}  // namespace lrm::linalg
