// MatrixView/ConstMatrixView semantics and the buffer-reusing `*Into`
// operations: correctness against the allocating forms, buffer reuse
// (no reallocation when shapes repeat), sub-block views as operands, and
// the aliasing guards that keep an output from overlapping an input.

#include "linalg/matrix_view.h"

#include <gtest/gtest.h>

#include "linalg/matrix.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

Matrix MakeRandom(Index rows, Index cols, std::uint64_t seed) {
  rng::Engine engine(seed);
  return RandomGaussianMatrix(engine, rows, cols);
}

TEST(MatrixViewTest, WholeMatrixViewAccessors) {
  const Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  ConstMatrixView view = m;
  EXPECT_EQ(view.rows(), 2);
  EXPECT_EQ(view.cols(), 3);
  EXPECT_EQ(view.stride(), 3);
  EXPECT_EQ(view.data(), m.data());
  EXPECT_EQ(view(1, 2), 6.0);
  EXPECT_FALSE(view.empty());
}

TEST(MatrixViewTest, BlockSharesStorageAndStride) {
  Matrix m(4, 5);
  for (Index i = 0; i < 4; ++i) {
    for (Index j = 0; j < 5; ++j) m(i, j) = 10.0 * i + j;
  }
  ConstMatrixView block = ConstMatrixView(m).Block(1, 2, 2, 3);
  EXPECT_EQ(block.rows(), 2);
  EXPECT_EQ(block.cols(), 3);
  EXPECT_EQ(block.stride(), 5);
  EXPECT_EQ(block(0, 0), 12.0);
  EXPECT_EQ(block(1, 2), 24.0);

  const Matrix copy = block.ToMatrix();
  EXPECT_MATRIX_NEAR(copy, (Matrix{{12.0, 13.0, 14.0}, {22.0, 23.0, 24.0}}),
                     0.0);
}

TEST(MatrixViewTest, MutableViewWritesThrough) {
  Matrix m(3, 3);
  MatrixView view = m;
  view(1, 1) = 42.0;
  view.Block(0, 2, 2, 1)(0, 0) = 7.0;
  EXPECT_EQ(m(1, 1), 42.0);
  EXPECT_EQ(m(0, 2), 7.0);
}

TEST(MatrixViewTest, ViewsOverlapIsConservativeOnRanges) {
  Matrix m(4, 4);
  Matrix other(4, 4);
  EXPECT_TRUE(ViewsOverlap(m, m));
  EXPECT_FALSE(ViewsOverlap(m, other));
  EXPECT_FALSE(ViewsOverlap(m, ConstMatrixView()));
  // Disjoint row blocks of one matrix do not overlap.
  ConstMatrixView top = ConstMatrixView(m).Block(0, 0, 2, 4);
  ConstMatrixView bottom = ConstMatrixView(m).Block(2, 0, 2, 4);
  EXPECT_FALSE(ViewsOverlap(top, bottom));
  EXPECT_TRUE(ViewsOverlap(top, m));
}

TEST(MultiplyIntoTest, MatchesAllocatingFormsForAllTransposeVariants) {
  const Matrix a = MakeRandom(7, 5, 1);
  const Matrix b = MakeRandom(5, 6, 2);
  const Matrix at = Transpose(a);
  const Matrix bt = Transpose(b);
  const Matrix want = a * b;

  Matrix c;
  MultiplyInto(a, b, &c);
  EXPECT_MATRIX_NEAR(c, want, 1e-12);
  MultiplyAtBInto(at, b, &c);
  EXPECT_MATRIX_NEAR(c, want, 1e-12);
  MultiplyABtInto(a, bt, &c);
  EXPECT_MATRIX_NEAR(c, want, 1e-12);
  MultiplyAtBtInto(at, bt, &c);
  EXPECT_MATRIX_NEAR(c, want, 1e-12);
}

TEST(MultiplyIntoTest, GramAndTransposeAndCopy) {
  const Matrix a = MakeRandom(6, 4, 3);
  Matrix c;
  GramAtAInto(a, &c);
  EXPECT_MATRIX_NEAR(c, GramAtA(a), 1e-12);
  GramAAtInto(a, &c);
  EXPECT_MATRIX_NEAR(c, GramAAt(a), 1e-12);
  TransposeInto(a, &c);
  EXPECT_MATRIX_NEAR(c, Transpose(a), 0.0);
  CopyInto(a, &c);
  EXPECT_MATRIX_NEAR(c, a, 0.0);
}

TEST(MultiplyIntoTest, GemmIntoAccumulatesWithBeta) {
  const Matrix a = MakeRandom(4, 3, 4);
  const Matrix b = MakeRandom(3, 5, 5);
  Matrix c = MakeRandom(4, 5, 6);
  Matrix want = c;
  want *= 0.5;
  want.Axpy(2.0, a * b);

  GemmInto(2.0, a, false, b, false, 0.5, &c);
  EXPECT_MATRIX_NEAR(c, want, 1e-12);
}

TEST(MultiplyIntoTest, ReusesOutputBufferAcrossRepeatedShapes) {
  const Matrix a = MakeRandom(8, 8, 7);
  const Matrix b = MakeRandom(8, 8, 8);
  Matrix c;
  MultiplyInto(a, b, &c);
  const double* buffer = c.data();
  MultiplyInto(a, b, &c);  // same shape: must not reallocate
  EXPECT_EQ(c.data(), buffer);
}

TEST(MultiplyIntoTest, SubBlockOperandsOfOneParentAreLegal) {
  // Both operands view into the same parent; only the output must be
  // distinct storage.
  const Matrix parent = MakeRandom(10, 10, 9);
  ConstMatrixView left = ConstMatrixView(parent).Block(0, 0, 4, 6);
  ConstMatrixView right = ConstMatrixView(parent).Block(4, 0, 6, 5);
  Matrix c;
  MultiplyInto(left, right, &c);
  EXPECT_MATRIX_NEAR(
      c, SliceRows(SliceCols(parent, 0, 6), 0, 4) *
             SliceCols(SliceRows(parent, 4, 10), 0, 5),
      1e-12);
}

TEST(MultiplyIntoTest, VectorForms) {
  const Matrix a = MakeRandom(6, 4, 10);
  rng::Engine engine(11);
  Vector x(4);
  for (Index i = 0; i < 4; ++i) x[i] = engine.NextDouble();
  Vector y_long(6);
  for (Index i = 0; i < 6; ++i) y_long[i] = engine.NextDouble();

  Vector y;
  MultiplyInto(a, x, &y);
  EXPECT_VECTOR_NEAR(y, a * x, 1e-12);
  Vector z;
  MultiplyAtXInto(a, y_long, &z);
  EXPECT_VECTOR_NEAR(z, MultiplyAtX(a, y_long), 1e-12);
}

using MatrixViewDeathTest = ::testing::Test;

TEST(MatrixViewDeathTest, OutputAliasingAnInputAborts) {
  Matrix a = MakeRandom(4, 4, 12);
  Matrix b = MakeRandom(4, 4, 13);
  EXPECT_DEATH(MultiplyInto(a, b, &a), "CHECK failed");
  EXPECT_DEATH(MultiplyInto(a, b, &b), "CHECK failed");
  EXPECT_DEATH(TransposeInto(a, &a), "CHECK failed");
  EXPECT_DEATH(CopyInto(a, &a), "CHECK failed");
}

TEST(MatrixViewDeathTest, OutputAliasingAnInputSubBlockAborts) {
  // Even a partial overlap (output vs. a block view of itself) must abort.
  Matrix parent = MakeRandom(8, 8, 14);
  ConstMatrixView block = ConstMatrixView(parent).Block(2, 2, 4, 4);
  Matrix b = MakeRandom(4, 8, 15);
  EXPECT_DEATH(MultiplyInto(block, b, &parent), "CHECK failed");
}

TEST(MatrixViewDeathTest, GemmIntoShapeMismatchWithBetaAborts) {
  const Matrix a = MakeRandom(4, 3, 16);
  const Matrix b = MakeRandom(3, 5, 17);
  Matrix c(2, 2);  // wrong shape: beta != 0 must not silently resize
  EXPECT_DEATH(GemmInto(1.0, a, false, b, false, 1.0, &c), "CHECK failed");
}

}  // namespace
}  // namespace lrm::linalg
