#include "linalg/qr.h"

#include <gtest/gtest.h>

#include <tuple>

#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

TEST(QrTest, RejectsEmpty) {
  EXPECT_EQ(HouseholderQr(Matrix()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(QrTest, IdentityFactorsTrivially) {
  const StatusOr<QrResult> qr = HouseholderQr(Matrix::Identity(3));
  ASSERT_TRUE(qr.ok());
  EXPECT_MATRIX_NEAR(qr->q * qr->r, Matrix::Identity(3), 1e-12);
}

class QrPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrPropertyTest, ReconstructsAndQOrthonormal) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 131 + n));
  const Matrix a = RandomGaussianMatrix(engine, m, n);
  const StatusOr<QrResult> qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());

  const Index k = std::min<Index>(m, n);
  EXPECT_EQ(qr->q.rows(), m);
  EXPECT_EQ(qr->q.cols(), k);
  EXPECT_EQ(qr->r.rows(), k);
  EXPECT_EQ(qr->r.cols(), n);

  EXPECT_MATRIX_NEAR(qr->q * qr->r, a, 1e-9 * std::max(m, n));
  EXPECT_MATRIX_NEAR(GramAtA(qr->q), Matrix::Identity(k), 1e-10 * k);

  // R upper triangular.
  for (Index i = 0; i < k; ++i) {
    for (Index j = 0; j < std::min<Index>(i, n); ++j) {
      EXPECT_EQ(qr->r(i, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrPropertyTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(4, 4),
                      std::make_tuple(10, 4), std::make_tuple(4, 10),
                      std::make_tuple(25, 25), std::make_tuple(60, 20)));

TEST(OrthonormalizeColumnsTest, SpansSameSpace) {
  rng::Engine engine(77);
  // Rank-2 matrix: 5×2 random times 2×4 random.
  const Matrix basis = RandomGaussianMatrix(engine, 5, 2);
  const Matrix coeff = RandomGaussianMatrix(engine, 2, 4);
  const Matrix a = basis * coeff;

  const StatusOr<Matrix> q = OrthonormalizeColumns(SliceCols(a, 0, 2));
  ASSERT_TRUE(q.ok());
  EXPECT_MATRIX_NEAR(GramAtA(*q), Matrix::Identity(2), 1e-10);
  // Every column of `a` lies in span(Q): (I − QQᵀ)a ≈ 0.
  const Matrix residual = a - (*q) * MultiplyAtB(*q, a);
  EXPECT_LT(FrobeniusNorm(residual), 1e-8 * FrobeniusNorm(a));
}

TEST(OrthonormalizeColumnsTest, HandlesRankDeficientInput) {
  // Two identical columns: Q still has orthonormal columns and Q·R = A.
  Matrix a(3, 2);
  a.SetColumn(0, Vector{1.0, 2.0, 3.0});
  a.SetColumn(1, Vector{1.0, 2.0, 3.0});
  const StatusOr<QrResult> qr = HouseholderQr(a);
  ASSERT_TRUE(qr.ok());
  EXPECT_MATRIX_NEAR(qr->q * qr->r, a, 1e-10);
}

}  // namespace
}  // namespace lrm::linalg
