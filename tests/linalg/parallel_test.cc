// The kernels task runtime: ParallelFor covers every task exactly once at
// any worker count (including nested regions), exceptions propagate to the
// caller, and TaskGroup joins its forks — inline fallback included, so the
// suite is meaningful even on a single-core box.

#include "linalg/kernels/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace lrm::linalg::kernels {
namespace {

TEST(ParallelForTest, RunsEveryTaskExactlyOnce) {
  for (int workers : {1, 2, 4, 8}) {
    const Index num_tasks = 103;  // not a multiple of any worker count
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(num_tasks));
    for (auto& h : hits) h = 0;
    ParallelFor(num_tasks, workers,
                [&hits](Index t) { ++hits[static_cast<std::size_t>(t)]; });
    for (Index t = 0; t < num_tasks; ++t) {
      EXPECT_EQ(hits[static_cast<std::size_t>(t)].load(), 1)
          << "task " << t << " at " << workers << " workers";
    }
  }
}

TEST(ParallelForTest, MoreWorkersThanTasks) {
  std::atomic<int> sum{0};
  ParallelFor(3, 16, [&sum](Index t) { sum += static_cast<int>(t); });
  EXPECT_EQ(sum.load(), 3);
}

TEST(ParallelForTest, ZeroAndNegativeTaskCountsAreNoOps) {
  std::atomic<int> calls{0};
  ParallelFor(0, 4, [&calls](Index) { ++calls; });
  ParallelFor(-5, 4, [&calls](Index) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, SingleWorkerRunsInAscendingOrder) {
  std::vector<Index> seen;
  ParallelFor(17, 1, [&seen](Index t) { seen.push_back(t); });
  ASSERT_EQ(seen.size(), 17u);
  for (Index t = 0; t < 17; ++t) EXPECT_EQ(seen[static_cast<std::size_t>(t)], t);
}

TEST(ParallelForTest, PropagatesBodyException) {
  std::atomic<int> calls{0};
  EXPECT_THROW(ParallelFor(64, 4,
                           [&calls](Index t) {
                             ++calls;
                             if (t == 5) throw std::runtime_error("boom");
                           }),
               std::runtime_error);
  // The failing claim poisons the counter, so the region winds down without
  // necessarily running all 64 tasks.
  EXPECT_LE(calls.load(), 64);
  EXPECT_GE(calls.load(), 1);
}

TEST(ParallelForTest, NestedRegionsComplete) {
  const Index outer = 8, inner = 16;
  std::vector<std::atomic<int>> hits(static_cast<std::size_t>(outer * inner));
  for (auto& h : hits) h = 0;
  ParallelFor(outer, 4, [&hits, inner](Index o) {
    ParallelFor(inner, 4, [&hits, inner, o](Index i) {
      ++hits[static_cast<std::size_t>(o * inner + i)];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(TaskGroupTest, WaitJoinsAllForks) {
  std::atomic<int> count{0};
  TaskGroup group;
  for (int i = 0; i < 20; ++i) {
    group.Run([&count] { ++count; });
  }
  group.Wait();
  EXPECT_EQ(count.load(), 20);
}

TEST(TaskGroupTest, WaitRethrowsForkException) {
  TaskGroup group;
  group.Run([] { throw std::runtime_error("fork failed"); });
  EXPECT_THROW(group.Wait(), std::runtime_error);
}

TEST(TaskGroupTest, ReusableAfterWait) {
  std::atomic<int> count{0};
  TaskGroup group;
  group.Run([&count] { ++count; });
  group.Wait();
  group.Run([&count] { ++count; });
  group.Run([&count] { ++count; });
  group.Wait();
  EXPECT_EQ(count.load(), 3);
}

}  // namespace
}  // namespace lrm::linalg::kernels
