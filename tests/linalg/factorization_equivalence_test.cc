// Blocked-vs-scalar equivalence suite for the factorization tier. Every
// factorization is run twice through the public API with the dispatch
// forced to each implementation (kernels::SetFactorImpl), and the results
// are compared: directly where the factorization is unique (Cholesky,
// eigenvalues, sign-normalized QR of full-rank inputs) and through the
// defining properties (reconstruction, orthonormality, triangularity)
// where it is not (rank-deficient and ill-conditioned inputs).

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/eigen_dc.h"
#include "linalg/eigen_sym.h"
#include "linalg/kernels/kernels.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"
#include "linalg/svd.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

namespace kernels = lrm::linalg::kernels;

// Forces one factorization implementation for the duration of a scope and
// always restores the environment default.
class ScopedFactorImpl {
 public:
  explicit ScopedFactorImpl(kernels::FactorImpl impl) {
    kernels::SetFactorImpl(impl);
  }
  ~ScopedFactorImpl() { kernels::SetFactorImpl(kernels::FactorImpl::kAuto); }
};

Matrix RandomSymmetric(rng::Engine& engine, Index n) {
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = g + Transpose(g);
  a *= 0.5;
  return a;
}

Matrix RandomSpd(rng::Engine& engine, Index n) {
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = GramAtA(g);
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

// Columns scaled by 10^{-j/4}: spans ~25 orders of magnitude at 100 cols.
Matrix GradedColumns(rng::Engine& engine, Index m, Index n) {
  Matrix a = RandomGaussianMatrix(engine, m, n);
  for (Index j = 0; j < n; ++j) {
    const double scale = std::pow(10.0, -static_cast<double>(j) / 4.0);
    for (Index i = 0; i < m; ++i) a(i, j) *= scale;
  }
  return a;
}

// Verifies the defining QR properties for one implementation's result.
void CheckQrProperties(const Matrix& a, const QrResult& qr,
                       const char* label) {
  SCOPED_TRACE(label);
  const Index m = a.rows(), n = a.cols();
  const Index k = std::min(m, n);
  ASSERT_EQ(qr.q.rows(), m);
  ASSERT_EQ(qr.q.cols(), k);
  ASSERT_EQ(qr.r.rows(), k);
  ASSERT_EQ(qr.r.cols(), n);
  const double scale = std::max(1.0, MaxAbs(a));
  EXPECT_MATRIX_NEAR(qr.q * qr.r, a, 1e-12 * scale * std::max(m, n));
  EXPECT_MATRIX_NEAR(GramAtA(qr.q), Matrix::Identity(k), 1e-12 * m);
  for (Index i = 0; i < k; ++i) {
    for (Index j = 0; j < std::min(i, n); ++j) {
      EXPECT_EQ(qr.r(i, j), 0.0) << "R not triangular at " << i << "," << j;
    }
  }
}

// Flips the signs of both results so every R diagonal is non-negative; for
// full-column-rank inputs the factorization is then unique and the two
// implementations must agree entrywise.
void NormalizeQrSigns(QrResult& qr) {
  for (Index i = 0; i < qr.r.rows(); ++i) {
    if (qr.r(i, i) < 0.0) {
      for (Index j = i; j < qr.r.cols(); ++j) qr.r(i, j) = -qr.r(i, j);
      for (Index r = 0; r < qr.q.rows(); ++r) qr.q(r, i) = -qr.q(r, i);
    }
  }
}

class QrEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(QrEquivalenceTest, BlockedMatchesScalarOnRandomInput) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 977 + n));
  const Matrix a = RandomGaussianMatrix(engine, m, n);

  StatusOr<QrResult> scalar_qr = Status::InvalidArgument("unset");
  StatusOr<QrResult> blocked_qr = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kReference);
    scalar_qr = HouseholderQr(a);
  }
  {
    ScopedFactorImpl force(kernels::FactorImpl::kBlocked);
    blocked_qr = HouseholderQr(a);
  }
  ASSERT_TRUE(scalar_qr.ok());
  ASSERT_TRUE(blocked_qr.ok());
  CheckQrProperties(a, *scalar_qr, "scalar");
  CheckQrProperties(a, *blocked_qr, "blocked");

  // Gaussian input is full rank almost surely: after fixing the sign
  // convention the two factorizations must agree entry by entry.
  NormalizeQrSigns(*scalar_qr);
  NormalizeQrSigns(*blocked_qr);
  const double tol = 1e-10 * std::max(m, n);
  EXPECT_MATRIX_NEAR(blocked_qr->q, scalar_qr->q, tol);
  EXPECT_MATRIX_NEAR(blocked_qr->r, scalar_qr->r, tol);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, QrEquivalenceTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(1, 9),
                      std::make_tuple(9, 1), std::make_tuple(5, 5),
                      std::make_tuple(33, 33), std::make_tuple(64, 48),
                      std::make_tuple(48, 64), std::make_tuple(130, 70),
                      std::make_tuple(70, 130), std::make_tuple(200, 37),
                      std::make_tuple(97, 97)));

TEST(QrEquivalenceTest, RankDeficientInput) {
  // Rank-3 matrix, 80×40: Q·R and orthonormality must hold for both paths
  // even though the factor pair is not unique past the rank.
  rng::Engine engine(4242);
  const Matrix a = RandomGaussianMatrix(engine, 80, 3) *
                   RandomGaussianMatrix(engine, 3, 40);
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kReference, kernels::FactorImpl::kBlocked}) {
    ScopedFactorImpl force(impl);
    const StatusOr<QrResult> qr = HouseholderQr(a);
    ASSERT_TRUE(qr.ok());
    CheckQrProperties(a, *qr,
                      impl == kernels::FactorImpl::kBlocked ? "blocked"
                                                            : "scalar");
  }
}

TEST(QrEquivalenceTest, IllConditionedInput) {
  rng::Engine engine(7);
  const Matrix a = GradedColumns(engine, 90, 50);
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kReference, kernels::FactorImpl::kBlocked}) {
    ScopedFactorImpl force(impl);
    const StatusOr<QrResult> qr = HouseholderQr(a);
    ASSERT_TRUE(qr.ok());
    CheckQrProperties(a, *qr,
                      impl == kernels::FactorImpl::kBlocked ? "blocked"
                                                            : "scalar");
  }
}

TEST(QrEquivalenceTest, OrthonormalizeColumnsIntoMatchesAndReusesBuffers) {
  rng::Engine engine(99);
  const Matrix a = RandomGaussianMatrix(engine, 150, 40);
  ScopedFactorImpl force(kernels::FactorImpl::kBlocked);

  const StatusOr<Matrix> direct = OrthonormalizeColumns(a);
  ASSERT_TRUE(direct.ok());

  QrWorkspace ws;
  Matrix q;
  ASSERT_TRUE(OrthonormalizeColumnsInto(a, &q, &ws).ok());
  EXPECT_MATRIX_NEAR(q, *direct, 1e-12);

  // Second pass through the same workspace: identical result, and the
  // output may alias the input (orthonormalize in place).
  Matrix in_place = a;
  ASSERT_TRUE(OrthonormalizeColumnsInto(in_place, &in_place, &ws).ok());
  EXPECT_MATRIX_NEAR(in_place, *direct, 1e-12);
}

class CholeskyEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyEquivalenceTest, BlockedMatchesScalar) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 31 + 5);
  const Matrix a = RandomSpd(engine, n);

  StatusOr<Matrix> scalar_l = Status::InvalidArgument("unset");
  StatusOr<Matrix> blocked_l = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kReference);
    scalar_l = CholeskyFactor(a);
  }
  {
    ScopedFactorImpl force(kernels::FactorImpl::kBlocked);
    blocked_l = CholeskyFactor(a);
  }
  ASSERT_TRUE(scalar_l.ok());
  ASSERT_TRUE(blocked_l.ok());
  // The Cholesky factor is unique: compare directly.
  const double scale = std::max(1.0, MaxAbs(a));
  EXPECT_MATRIX_NEAR(*blocked_l, *scalar_l, 1e-10 * scale);
  EXPECT_MATRIX_NEAR(MultiplyABt(*blocked_l, *blocked_l), a,
                     1e-11 * scale * n);
  // The strict upper triangle must be exactly zero in both layouts.
  for (Index i = 0; i < n; ++i) {
    for (Index j = i + 1; j < n; ++j) {
      EXPECT_EQ((*blocked_l)(i, j), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyEquivalenceTest,
                         ::testing::Values(1, 2, 5, 63, 64, 65, 100, 129,
                                           200));

TEST(CholeskyEquivalenceTest, IllConditionedReconstructs) {
  // Gram matrix of graded columns: condition number ~1e12 at this size.
  rng::Engine engine(11);
  Matrix g = GradedColumns(engine, 200, 150);
  Matrix a = GramAtA(g);
  for (Index i = 0; i < a.rows(); ++i) a(i, i) += 1e-10;
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kReference, kernels::FactorImpl::kBlocked}) {
    ScopedFactorImpl force(impl);
    const StatusOr<Matrix> l = CholeskyFactor(a);
    ASSERT_TRUE(l.ok());
    EXPECT_MATRIX_NEAR(MultiplyABt(*l, *l), a, 1e-9 * MaxAbs(a));
  }
}

TEST(CholeskyEquivalenceTest, NonPositiveDefiniteFailsInBothPaths) {
  rng::Engine engine(13);
  Matrix a = RandomSymmetric(engine, 160);  // indefinite almost surely
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kReference, kernels::FactorImpl::kBlocked}) {
    ScopedFactorImpl force(impl);
    EXPECT_EQ(CholeskyFactor(a).status().code(),
              StatusCode::kNumericalError);
  }
}

TEST(CholeskyEquivalenceTest, BlockedSolveMatchesDirectSubstitution) {
  const Index n = 180, rhs = 70;
  rng::Engine engine(17);
  const Matrix a = RandomSpd(engine, n);
  const Matrix b = RandomGaussianMatrix(engine, n, rhs);
  const StatusOr<Matrix> x = SolveSpd(a, b);
  ASSERT_TRUE(x.ok());
  EXPECT_MATRIX_NEAR(a * (*x), b, 1e-8 * n);
}

class EigenEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(EigenEquivalenceTest, BlockedAndDcMatchScalar) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 131 + 3);
  const Matrix a = RandomSymmetric(engine, n);

  StatusOr<SymmetricEigenResult> scalar_eig = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kReference);
    scalar_eig = SymmetricEigen(a);
  }
  ASSERT_TRUE(scalar_eig.ok());

  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kBlocked, kernels::FactorImpl::kDc}) {
    SCOPED_TRACE(impl == kernels::FactorImpl::kDc ? "dc" : "blocked");
    StatusOr<SymmetricEigenResult> eig = Status::InvalidArgument("unset");
    {
      ScopedFactorImpl force(impl);
      eig = SymmetricEigen(a);
    }
    ASSERT_TRUE(eig.ok());

    // Eigenvalues are unique: compare directly at 1e-10 scale.
    const double scale = std::max(1.0, MaxAbs(a)) * n;
    ASSERT_EQ(eig->eigenvalues.size(), n);
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(eig->eigenvalues[i], scalar_eig->eigenvalues[i],
                  1e-11 * scale)
          << "eigenvalue " << i;
    }
    // Eigenvectors are unique only up to sign (and rotation in repeated
    // eigenspaces): check the defining properties instead.
    EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(n),
                       1e-11 * n);
    Matrix scaled = eig->eigenvectors;
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) scaled(i, j) *= eig->eigenvalues[j];
    }
    EXPECT_MATRIX_NEAR(MultiplyABt(scaled, eig->eigenvectors), a,
                       1e-11 * scale);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenEquivalenceTest,
                         ::testing::Values(1, 2, 3, 5, 33, 64, 100, 129,
                                           170));

TEST(EigenEquivalenceTest, RankDeficientInput) {
  // Rank-4 PSD matrix at a size where kAuto already picks the dc path.
  rng::Engine engine(23);
  const Matrix g = RandomGaussianMatrix(engine, 140, 4);
  const Matrix a = MultiplyABt(g, g);
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kReference, kernels::FactorImpl::kBlocked,
        kernels::FactorImpl::kDc}) {
    ScopedFactorImpl force(impl);
    const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
    ASSERT_TRUE(eig.ok());
    // 136 of the 140 eigenvalues are zero (to roundoff).
    for (Index i = 0; i < 136; ++i) {
      EXPECT_NEAR(eig->eigenvalues[i], 0.0, 1e-9 * MaxAbs(a));
    }
    EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(140),
                       1e-9);
  }
}

TEST(EigenEquivalenceTest, GradedSpectrum) {
  // Eigenvalues spanning 12 orders of magnitude: both paths must agree on
  // the large end to full precision.
  const Index n = 140;
  Vector spectrum(n);
  for (Index i = 0; i < n; ++i) {
    spectrum[i] = std::pow(10.0, -12.0 * static_cast<double>(i) /
                                     static_cast<double>(n - 1));
  }
  // Conjugate by a random orthogonal factor so the matrix is dense.
  rng::Engine engine(29);
  const StatusOr<Matrix> q_or =
      OrthonormalizeColumns(RandomGaussianMatrix(engine, n, n));
  ASSERT_TRUE(q_or.ok());
  Matrix scaled = *q_or;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) scaled(i, j) *= spectrum[j];
  }
  const Matrix a = MultiplyABt(scaled, *q_or);

  StatusOr<SymmetricEigenResult> scalar_eig = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kReference);
    scalar_eig = SymmetricEigen(a);
  }
  ASSERT_TRUE(scalar_eig.ok());
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kBlocked, kernels::FactorImpl::kDc}) {
    SCOPED_TRACE(impl == kernels::FactorImpl::kDc ? "dc" : "blocked");
    StatusOr<SymmetricEigenResult> eig = Status::InvalidArgument("unset");
    {
      ScopedFactorImpl force(impl);
      eig = SymmetricEigen(a);
    }
    ASSERT_TRUE(eig.ok());
    for (Index i = 0; i < n; ++i) {
      EXPECT_NEAR(eig->eigenvalues[i], scalar_eig->eigenvalues[i], 1e-12 * n)
          << "eigenvalue " << i;
    }
  }
}

// --- Divide-and-conquer deflation branches --------------------------------
//
// The merge step has three escape hatches ahead of any secular work: tiny
// z-components (the subproblem eigenpair is already an eigenpair of the
// merged problem), a Givens rotation for (near-)equal eigenvalue pairs, and
// the rho = 0 short-circuit when the halves are exactly decoupled. Each test
// constructs a tridiagonal that provably forces one branch and checks the
// solution against the defining properties and the dense QL oracle.

Matrix DenseTridiagonal(const Vector& d, const Vector& e) {
  const Index n = d.size();
  Matrix t(n, n);
  for (Index i = 0; i < n; ++i) {
    t(i, i) = d[i];
    if (i > 0) {
      t(i, i - 1) = e[i];
      t(i - 1, i) = e[i];
    }
  }
  return t;
}

void CheckTridiagDcAgainstOracle(const Vector& d0, const Vector& e0,
                                 const char* label) {
  SCOPED_TRACE(label);
  const Index n = d0.size();
  Vector d = d0;
  Vector e = e0;
  Matrix v;
  ASSERT_TRUE(TridiagEigenDc(d, e, &v).ok());

  const Matrix t = DenseTridiagonal(d0, e0);
  StatusOr<SymmetricEigenResult> oracle = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kReference);
    oracle = SymmetricEigen(t);
  }
  ASSERT_TRUE(oracle.ok());

  const double scale = std::max(1.0, MaxAbs(t)) * n;
  for (Index i = 0; i < n; ++i) {
    if (i > 0) {
      EXPECT_GE(d[i], d[i - 1]) << "ordering at " << i;
    }
    EXPECT_NEAR(d[i], oracle->eigenvalues[i], 1e-11 * scale)
        << "eigenvalue " << i;
  }
  EXPECT_MATRIX_NEAR(GramAtA(v), Matrix::Identity(n), 1e-11 * n);
  const Matrix tv = t * v;
  Matrix vl = v;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) vl(i, j) *= d[j];
  }
  EXPECT_MATRIX_NEAR(tv, vl, 1e-11 * scale);
}

TEST(TridiagDcDeflationTest, ZeroCouplingDeflatesEveryMerge) {
  // All subdiagonals zero: rho = 0 at every merge, so every entry takes the
  // tiny-z branch and no secular equation is ever solved. The result must
  // be the sorted diagonal with unit eigenvector columns.
  const Index n = 80;
  Vector d(n), e(n);
  for (Index i = 0; i < n; ++i) {
    d[i] = static_cast<double>((i * 37) % n) - static_cast<double>(n) / 2.0;
  }
  CheckTridiagDcAgainstOracle(d, e, "rho = 0 everywhere");

  Vector dd = d;
  Vector ee = e;
  Matrix v;
  ASSERT_TRUE(TridiagEigenDc(dd, ee, &v).ok());
  // Eigenvectors of a diagonal matrix with distinct entries are signed unit
  // vectors: every column has exactly one ±1 entry.
  for (Index j = 0; j < n; ++j) {
    Index support = 0;
    for (Index i = 0; i < n; ++i) {
      if (v(i, j) != 0.0) {
        ++support;
        EXPECT_NEAR(std::abs(v(i, j)), 1.0, 0.0);
      }
    }
    EXPECT_EQ(support, 1) << "column " << j;
  }
}

TEST(TridiagDcDeflationTest, IdenticalHalvesForceGivensBranch) {
  // Two bitwise-identical 40-blocks joined by a coupling: the half spectra
  // are exactly equal pairwise, and the survivor rule forbids equal poles,
  // so every pair must go through the Givens rotation branch.
  const Index half = 40, n = 2 * half;
  Vector d(n), e(n);
  for (Index i = 0; i < half; ++i) {
    const double di = std::cos(static_cast<double>(i) * 1.7) * 3.0;
    const double ei = 0.5 + 0.4 * std::sin(static_cast<double>(i) * 2.3);
    d[i] = di;
    d[half + i] = di;
    if (i > 0) {
      e[i] = ei;
      e[half + i] = ei;
    }
  }
  e[half] = 0.7;  // the Cuppen coupling between the identical halves
  CheckTridiagDcAgainstOracle(d, e, "identical halves");
}

TEST(TridiagDcDeflationTest, InteriorDecouplingForcesExactZeroZ) {
  // A zero subdiagonal INSIDE the first half decouples rows [0, 24): the
  // eigenvectors of that sub-block have exactly zero weight on the merge
  // boundary row, so their z-components are exactly zero at the top merge —
  // the tiny-z branch with rho > 0.
  const Index n = 96;
  Vector d(n), e(n);
  for (Index i = 0; i < n; ++i) {
    d[i] = std::sin(static_cast<double>(i) * 0.9) * 2.0;
    if (i > 0) e[i] = 0.3 + 0.2 * std::cos(static_cast<double>(i) * 1.1);
  }
  e[24] = 0.0;
  CheckTridiagDcAgainstOracle(d, e, "interior decoupling");
}

TEST(TridiagDcDeflationTest, NearEqualPairsAtDeflationThreshold) {
  // Eigenvalue pairs split by 0, 1e-15, 1e-12, 1e-8: straddles the
  // |t·c·s| ≤ tol decision, so both outcomes of the Givens test occur.
  const Index n = 64;
  Vector d(n), e(n);
  const double splits[] = {0.0, 1e-15, 1e-12, 1e-8};
  for (Index i = 0; i < n; i += 2) {
    const double base = 1.0 + static_cast<double>(i) * 0.1;
    d[i] = base;
    if (i + 1 < n) d[i + 1] = base + splits[(i / 2) % 4];
  }
  for (Index i = 1; i < n; ++i) e[i] = 1e-14;  // whisper-weak couplings
  CheckTridiagDcAgainstOracle(d, e, "near-equal pairs");
}

TEST(TridiagDcDeflationTest, MismatchedBufferSizesRejected) {
  Vector d(4), e(3);
  Matrix v;
  EXPECT_EQ(TridiagEigenDc(d, e, &v).code(), StatusCode::kInvalidArgument);
}

// Restores the environment-default GEMM thread count on scope exit.
class ScopedGemmThreads {
 public:
  explicit ScopedGemmThreads(int threads) { kernels::SetGemmThreads(threads); }
  ~ScopedGemmThreads() { kernels::SetGemmThreads(0); }
};

TEST(ThreadSweepEquivalenceTest, EigenDcIsBitwiseIdenticalAcrossThreadCounts) {
  // n = 300 crosses the parallel-fork threshold (128) twice, so the sweep
  // exercises concurrent Cuppen subtrees with per-subtree workspaces, the
  // chunked secular solves, and the threaded GEMM underneath — all of
  // which promise bitwise thread-count independence.
  rng::Engine engine(77);
  const Matrix a = RandomSymmetric(engine, 300);
  ScopedFactorImpl force(kernels::FactorImpl::kDc);

  StatusOr<SymmetricEigenResult> baseline = Status::InvalidArgument("unset");
  {
    ScopedGemmThreads threads(1);
    baseline = SymmetricEigen(a);
  }
  ASSERT_TRUE(baseline.ok());

  for (int count : {2, 8}) {
    SCOPED_TRACE(count);
    ScopedGemmThreads threads(count);
    const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
    ASSERT_TRUE(eig.ok());
    EXPECT_VECTOR_NEAR(eig->eigenvalues, baseline->eigenvalues, 0.0);
    EXPECT_MATRIX_NEAR(eig->eigenvectors, baseline->eigenvectors, 0.0);
  }
}

TEST(ThreadSweepEquivalenceTest, BlockedQrIsBitwiseIdenticalAcrossThreadCounts) {
  // Tall panel QR: the threaded panel reflectors, block-T dots, and the
  // trailing GEMMs must reproduce the single-thread bits exactly.
  rng::Engine engine(78);
  const Matrix a = RandomGaussianMatrix(engine, 500, 120);
  ScopedFactorImpl force(kernels::FactorImpl::kBlocked);

  StatusOr<Matrix> baseline = Status::InvalidArgument("unset");
  {
    ScopedGemmThreads threads(1);
    baseline = OrthonormalizeColumns(a);
  }
  ASSERT_TRUE(baseline.ok());

  for (int count : {2, 8}) {
    SCOPED_TRACE(count);
    ScopedGemmThreads threads(count);
    const StatusOr<Matrix> q = OrthonormalizeColumns(a);
    ASSERT_TRUE(q.ok());
    EXPECT_MATRIX_NEAR(*q, *baseline, 0.0);
  }
}

TEST(ThreadSweepEquivalenceTest, EigenWorkspaceReuseIsDeterministicThreaded) {
  // Workspace reuse at 8 threads: repeated solves through one workspace
  // (including the lazily-grown left_child chain) must stay bit-identical
  // to the workspace-free call.
  rng::Engine engine(79);
  const Matrix a = RandomSymmetric(engine, 200);
  ScopedFactorImpl force(kernels::FactorImpl::kDc);
  ScopedGemmThreads threads(8);

  const StatusOr<SymmetricEigenResult> plain = SymmetricEigen(a);
  ASSERT_TRUE(plain.ok());
  SymmetricEigenWorkspace ws;
  for (int pass = 0; pass < 3; ++pass) {
    SCOPED_TRACE(pass);
    const StatusOr<SymmetricEigenResult> reused = SymmetricEigen(a, &ws);
    ASSERT_TRUE(reused.ok());
    EXPECT_VECTOR_NEAR(reused->eigenvalues, plain->eigenvalues, 0.0);
    EXPECT_MATRIX_NEAR(reused->eigenvectors, plain->eigenvectors, 0.0);
  }
}

TEST(RandomizedSvdEquivalenceTest, WorkspaceReuseIsDeterministic) {
  // The workspace-reusing path must produce bit-identical results across
  // repeated calls (same seed) and match the workspace-free call.
  rng::Engine engine(31);
  const Matrix a = RandomGaussianMatrix(engine, 120, 12) *
                   RandomGaussianMatrix(engine, 12, 300);
  const StatusOr<SvdResult> plain = RandomizedSvd(a, 12);
  ASSERT_TRUE(plain.ok());

  RandomizedSvdWorkspace ws;
  for (int pass = 0; pass < 3; ++pass) {
    const StatusOr<SvdResult> reused = RandomizedSvd(a, 12, {}, &ws);
    ASSERT_TRUE(reused.ok());
    EXPECT_MATRIX_NEAR(reused->u, plain->u, 0.0);
    EXPECT_MATRIX_NEAR(reused->v, plain->v, 0.0);
    EXPECT_VECTOR_NEAR(reused->singular_values, plain->singular_values, 0.0);
  }
  EXPECT_MATRIX_NEAR(plain->Reconstruct(), a, 1e-9 * MaxAbs(a) * 300);
}

}  // namespace
}  // namespace lrm::linalg
