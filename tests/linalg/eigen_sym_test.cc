#include "linalg/eigen_sym.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/kernels/kernels.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

namespace kernels = lrm::linalg::kernels;

Matrix RandomSymmetric(rng::Engine& engine, Index n) {
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = g + Transpose(g);
  a *= 0.5;
  return a;
}

TEST(SymmetricEigenTest, DiagonalMatrix) {
  const StatusOr<SymmetricEigenResult> eig =
      SymmetricEigen(Matrix::Diagonal(Vector{3.0, 1.0, 2.0}));
  ASSERT_TRUE(eig.ok());
  // Ascending order.
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[2], 3.0, 1e-12);
}

TEST(SymmetricEigenTest, KnownTwoByTwo) {
  // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
  const StatusOr<SymmetricEigenResult> eig =
      SymmetricEigen(Matrix{{2.0, 1.0}, {1.0, 2.0}});
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig->eigenvalues[1], 3.0, 1e-12);
}

TEST(SymmetricEigenTest, RejectsNonSquare) {
  EXPECT_EQ(SymmetricEigen(Matrix(2, 3)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(SymmetricEigenTest, EmptyMatrix) {
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(Matrix());
  ASSERT_TRUE(eig.ok());
  EXPECT_EQ(eig->eigenvalues.size(), 0);
}

class SymmetricEigenPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricEigenPropertyTest, ReconstructsInput) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 2654435761ULL);
  const Matrix a = RandomSymmetric(engine, n);
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());

  // V·diag(λ)·Vᵀ = A.
  Matrix scaled = eig->eigenvectors;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) scaled(i, j) *= eig->eigenvalues[j];
  }
  EXPECT_MATRIX_NEAR(MultiplyABt(scaled, eig->eigenvectors), a, 1e-9 * n);
}

TEST_P(SymmetricEigenPropertyTest, EigenvectorsAreOrthonormal) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 40503ULL + 1);
  const Matrix a = RandomSymmetric(engine, n);
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(n),
                     1e-10 * n);
}

TEST_P(SymmetricEigenPropertyTest, EigenvaluesAscendAndMatchTrace) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 7777ULL + 3);
  const Matrix a = RandomSymmetric(engine, n);
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  double sum = 0.0;
  for (Index i = 0; i < n; ++i) {
    sum += eig->eigenvalues[i];
    if (i > 0) {
      EXPECT_GE(eig->eigenvalues[i], eig->eigenvalues[i - 1]);
    }
  }
  EXPECT_NEAR(sum, Trace(a), 1e-9 * n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetricEigenPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 8, 17, 33, 64));

// Repeated eigenvalues make the eigenvectors non-unique (any orthonormal
// basis of the eigenspace is valid), which is exactly when orthogonality is
// easiest to lose — rotations inside a degenerate cluster cost nothing in
// the residual. Every implementation must still return an orthonormal V.
TEST(SymmetricEigenTest, RepeatedEigenvaluesKeepEigenvectorsOrthonormal) {
  for (const Index n : {24, 160}) {
    // Three distinct eigenvalues, each with multiplicity n/3 (n not
    // divisible by 3 pads the last cluster), conjugated by a random
    // orthogonal basis so the degeneracy is not axis-aligned.
    Vector spectrum(n);
    const double values[] = {2.0, -1.0, 5.0};
    for (Index i = 0; i < n; ++i) spectrum[i] = values[(3 * i) / n];
    rng::Engine engine(static_cast<std::uint64_t>(n) * 613 + 11);
    const StatusOr<Matrix> q =
        OrthonormalizeColumns(RandomGaussianMatrix(engine, n, n));
    ASSERT_TRUE(q.ok());
    Matrix scaled = *q;
    for (Index j = 0; j < n; ++j) {
      for (Index i = 0; i < n; ++i) scaled(i, j) *= spectrum[j];
    }
    const Matrix a = MultiplyABt(scaled, *q);

    for (kernels::FactorImpl impl :
         {kernels::FactorImpl::kReference, kernels::FactorImpl::kBlocked,
          kernels::FactorImpl::kDc}) {
      SCOPED_TRACE(static_cast<int>(impl));
      kernels::SetFactorImpl(impl);
      const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
      kernels::SetFactorImpl(kernels::FactorImpl::kAuto);
      ASSERT_TRUE(eig.ok());
      EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(n),
                         1e-11 * n);
      // The repeated eigenvalues themselves must come out exact-ish.
      Matrix vl = eig->eigenvectors;
      for (Index j = 0; j < n; ++j) {
        for (Index i = 0; i < n; ++i) vl(i, j) *= eig->eigenvalues[j];
      }
      EXPECT_MATRIX_NEAR(a * eig->eigenvectors, vl, 1e-11 * n);
    }
  }
}

TEST(ProjectToPsdConeTest, PsdInputUnchanged) {
  rng::Engine engine(5);
  const Matrix g = RandomGaussianMatrix(engine, 4, 4);
  Matrix spd = GramAtA(g);
  for (Index i = 0; i < 4; ++i) spd(i, i) += 4.0;
  const StatusOr<Matrix> projected = ProjectToPsdCone(spd);
  ASSERT_TRUE(projected.ok());
  EXPECT_MATRIX_NEAR(*projected, spd, 1e-8);
}

TEST(ProjectToPsdConeTest, ClampsNegativeEigenvalues) {
  // diag(2, -3) projects to diag(2, 0).
  const StatusOr<Matrix> projected =
      ProjectToPsdCone(Matrix::Diagonal(Vector{2.0, -3.0}));
  ASSERT_TRUE(projected.ok());
  EXPECT_MATRIX_NEAR(*projected, (Matrix::Diagonal(Vector{2.0, 0.0})), 1e-10);
}

TEST(ProjectToPsdConeTest, FloorRaisesSpectrum) {
  const StatusOr<Matrix> projected =
      ProjectToPsdCone(Matrix::Diagonal(Vector{5.0, 0.001}), 0.5);
  ASSERT_TRUE(projected.ok());
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(*projected);
  ASSERT_TRUE(eig.ok());
  EXPECT_GE(eig->eigenvalues[0], 0.5 - 1e-12);
}

}  // namespace
}  // namespace lrm::linalg
