#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <tuple>

#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

// Textbook triple-loop reference used to validate the optimized kernels.
Matrix NaiveMultiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (Index i = 0; i < a.rows(); ++i) {
    for (Index j = 0; j < b.cols(); ++j) {
      double acc = 0.0;
      for (Index k = 0; k < a.cols(); ++k) acc += a(i, k) * b(k, j);
      c(i, j) = acc;
    }
  }
  return c;
}

TEST(MatrixTest, ConstructionAndAccess) {
  Matrix zero(2, 3);
  EXPECT_EQ(zero.rows(), 2);
  EXPECT_EQ(zero.cols(), 3);
  EXPECT_EQ(zero.size(), 6);
  EXPECT_EQ(zero(1, 2), 0.0);

  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m(0, 1), 2.0);
  EXPECT_EQ(m(1, 0), 3.0);

  Matrix filled(2, 2, 5.0);
  EXPECT_EQ(filled(0, 0), 5.0);

  Matrix empty;
  EXPECT_TRUE(empty.empty());
}

TEST(MatrixTest, IdentityAndDiagonal) {
  const Matrix i3 = Matrix::Identity(3);
  EXPECT_EQ(i3(0, 0), 1.0);
  EXPECT_EQ(i3(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(Trace(i3), 3.0);

  const Matrix d = Matrix::Diagonal(Vector{2.0, 3.0});
  EXPECT_EQ(d(0, 0), 2.0);
  EXPECT_EQ(d(1, 1), 3.0);
  EXPECT_EQ(d(0, 1), 0.0);
}

TEST(MatrixTest, FromRowMajorAdoptsBuffer) {
  const Matrix m = Matrix::FromRowMajor(2, 2, {1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, RowColumnAccessors) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  EXPECT_VECTOR_NEAR(m.Row(1), (Vector{4.0, 5.0, 6.0}), 1e-15);
  EXPECT_VECTOR_NEAR(m.Column(2), (Vector{3.0, 6.0}), 1e-15);

  m.SetRow(0, Vector{7.0, 8.0, 9.0});
  EXPECT_EQ(m(0, 0), 7.0);
  m.SetColumn(1, Vector{0.0, 0.0});
  EXPECT_EQ(m(1, 1), 0.0);
}

TEST(MatrixTest, ArithmeticOperators) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_MATRIX_NEAR(a + b, (Matrix{{6.0, 8.0}, {10.0, 12.0}}), 1e-15);
  EXPECT_MATRIX_NEAR(b - a, (Matrix{{4.0, 4.0}, {4.0, 4.0}}), 1e-15);
  EXPECT_MATRIX_NEAR(a * 2.0, (Matrix{{2.0, 4.0}, {6.0, 8.0}}), 1e-15);
  EXPECT_MATRIX_NEAR(-a, (Matrix{{-1.0, -2.0}, {-3.0, -4.0}}), 1e-15);
}

TEST(MatrixTest, MatrixVectorProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Vector x{1.0, -1.0};
  EXPECT_VECTOR_NEAR(a * x, (Vector{-1.0, -1.0, -1.0}), 1e-15);
}

TEST(MatrixTest, KnownMatrixProduct) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  EXPECT_MATRIX_NEAR(a * b, (Matrix{{19.0, 22.0}, {43.0, 50.0}}), 1e-15);
}

TEST(MatrixTest, TransposeInvolution) {
  const Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix at = Transpose(a);
  EXPECT_EQ(at.rows(), 3);
  EXPECT_EQ(at.cols(), 2);
  EXPECT_EQ(at(2, 1), 6.0);
  EXPECT_MATRIX_NEAR(Transpose(at), a, 1e-15);
}

TEST(MatrixTest, NormsAndReductions) {
  const Matrix a{{3.0, 0.0}, {-4.0, 0.0}};
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 5.0);
  EXPECT_DOUBLE_EQ(SquaredFrobeniusNorm(a), 25.0);
  EXPECT_DOUBLE_EQ(MaxColumnAbsSum(a), 7.0);
  EXPECT_DOUBLE_EQ(ColumnAbsSum(a, 0), 7.0);
  EXPECT_DOUBLE_EQ(ColumnAbsSum(a, 1), 0.0);
  EXPECT_DOUBLE_EQ(MaxAbs(a), 4.0);
}

TEST(MatrixTest, MaxColumnAbsSumIsThePaperSensitivity) {
  // Intro example (§1): the workload {q1, q2, q3} over 4 states has
  // sensitivity 2 (a record affects q1 plus one of q2/q3).
  const Matrix w{{1.0, 1.0, 1.0, 1.0},   // q1 = NY+NJ+CA+WA
                 {1.0, 1.0, 0.0, 0.0},   // q2 = NY+NJ
                 {0.0, 0.0, 1.0, 1.0}};  // q3 = CA+WA
  EXPECT_DOUBLE_EQ(MaxColumnAbsSum(w), 2.0);
}

TEST(MatrixTest, SymmetryDetection) {
  EXPECT_TRUE(IsSymmetric(Matrix{{1.0, 2.0}, {2.0, 3.0}}));
  EXPECT_FALSE(IsSymmetric(Matrix{{1.0, 2.0}, {2.1, 3.0}}));
  EXPECT_FALSE(IsSymmetric(Matrix(2, 3)));
}

TEST(MatrixTest, StackAndSlice) {
  const Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix b{{5.0, 6.0}};
  const Matrix v = VStack(a, b);
  EXPECT_EQ(v.rows(), 3);
  EXPECT_EQ(v(2, 1), 6.0);

  const Matrix h = HStack(a, Transpose(b));
  EXPECT_EQ(h.cols(), 3);
  EXPECT_EQ(h(1, 2), 6.0);

  EXPECT_MATRIX_NEAR(SliceRows(v, 1, 3), (Matrix{{3.0, 4.0}, {5.0, 6.0}}),
                     1e-15);
  EXPECT_MATRIX_NEAR(SliceCols(a, 1, 2), (Matrix{{2.0}, {4.0}}), 1e-15);
}

TEST(MatrixTest, AxpyAndFill) {
  Matrix a(2, 2, 1.0);
  a.Axpy(2.0, Matrix{{1.0, 0.0}, {0.0, 1.0}});
  EXPECT_MATRIX_NEAR(a, (Matrix{{3.0, 1.0}, {1.0, 3.0}}), 1e-15);
  a.Fill(0.0);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 0.0);
}

TEST(MatrixTest, ResizeZeroFillsAndReusesCapacity) {
  Matrix a(8, 8, 5.0);
  const double* buffer = a.data();

  // Shrinking (or refitting within capacity) must not reallocate, and the
  // contents are discarded to zero either way.
  a.Resize(4, 6);
  EXPECT_EQ(a.rows(), 4);
  EXPECT_EQ(a.cols(), 6);
  EXPECT_EQ(a.data(), buffer);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 0.0);

  a(0, 0) = 9.0;
  a.Resize(8, 8);  // still within the original 64-entry capacity
  EXPECT_EQ(a.data(), buffer);
  EXPECT_DOUBLE_EQ(FrobeniusNorm(a), 0.0);

  a.Resize(0, 3);  // degenerate shapes stay legal
  EXPECT_EQ(a.rows(), 0);
  EXPECT_TRUE(a.empty());
}

TEST(MatrixTest, EntryCountOverflowAborts) {
  // rows·cols overflowing ptrdiff_t must abort instead of wrapping into a
  // small allocation that out-of-bounds every accessor afterwards.
  const Index huge = Index{1} << 40;
  EXPECT_DEATH(Matrix(huge, huge), "CHECK failed");
  Matrix a;
  EXPECT_DEATH(a.Resize(huge, huge), "CHECK failed");
}

// Property suite: the fast kernels must agree with the naive reference on
// random rectangular shapes.
class GemmPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmPropertyTest, AllKernelVariantsMatchNaive) {
  const auto [m, k, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 10007 + k * 101 + n));
  const Matrix a = RandomGaussianMatrix(engine, m, k);
  const Matrix b = RandomGaussianMatrix(engine, k, n);

  const Matrix expected = NaiveMultiply(a, b);
  EXPECT_MATRIX_NEAR(a * b, expected, 1e-9);
  EXPECT_MATRIX_NEAR(MultiplyAtB(Transpose(a), b), expected, 1e-9);
  EXPECT_MATRIX_NEAR(MultiplyABt(a, Transpose(b)), expected, 1e-9);

  // Matrix-vector against matrix-matrix with a single column.
  const Vector x = RandomGaussianVector(engine, n);
  Matrix x_col(n, 1);
  x_col.SetColumn(0, x);
  const Matrix bx = NaiveMultiply(b, x_col);
  const Vector y = b * x;
  for (Index i = 0; i < k; ++i) EXPECT_NEAR(y[i], bx(i, 0), 1e-9);

  // MultiplyAtX against the reference.
  const Vector z = RandomGaussianVector(engine, m);
  const Vector aty = MultiplyAtX(a, z);
  const Matrix at = Transpose(a);
  const Vector expected_aty = at * z;
  EXPECT_VECTOR_NEAR(aty, expected_aty, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmPropertyTest,
    ::testing::Values(std::make_tuple(1, 1, 1), std::make_tuple(2, 3, 4),
                      std::make_tuple(5, 1, 7), std::make_tuple(16, 16, 16),
                      std::make_tuple(33, 17, 9), std::make_tuple(7, 64, 3),
                      std::make_tuple(50, 40, 60)));

class GramPropertyTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(GramPropertyTest, GramMatricesAreSymmetricAndCorrect) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 31 + n));
  const Matrix a = RandomGaussianMatrix(engine, m, n);

  const Matrix ata = GramAtA(a);
  const Matrix aat = GramAAt(a);
  EXPECT_MATRIX_SYMMETRIC(ata, 1e-10);
  EXPECT_MATRIX_SYMMETRIC(aat, 1e-10);
  EXPECT_MATRIX_NEAR(ata, NaiveMultiply(Transpose(a), a), 1e-9);
  EXPECT_MATRIX_NEAR(aat, NaiveMultiply(a, Transpose(a)), 1e-9);
  // tr(AᵀA) = tr(AAᵀ) = ‖A‖_F².
  EXPECT_NEAR(Trace(ata), SquaredFrobeniusNorm(a), 1e-8);
  EXPECT_NEAR(Trace(aat), SquaredFrobeniusNorm(a), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GramPropertyTest,
                         ::testing::Values(std::make_tuple(3, 5),
                                           std::make_tuple(10, 10),
                                           std::make_tuple(20, 4),
                                           std::make_tuple(1, 8)));

}  // namespace
}  // namespace lrm::linalg
