#include "linalg/vector.h"

#include <gtest/gtest.h>

#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

TEST(VectorTest, ConstructionVariants) {
  Vector zero(4);
  EXPECT_EQ(zero.size(), 4);
  for (Index i = 0; i < 4; ++i) EXPECT_EQ(zero[i], 0.0);

  Vector filled(3, 2.5);
  for (Index i = 0; i < 3; ++i) EXPECT_EQ(filled[i], 2.5);

  Vector list{1.0, 2.0, 3.0};
  EXPECT_EQ(list.size(), 3);
  EXPECT_EQ(list[1], 2.0);

  Vector adopted(std::vector<double>{4.0, 5.0});
  EXPECT_EQ(adopted[0], 4.0);

  Vector empty;
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0);
}

TEST(VectorTest, ElementwiseArithmetic) {
  Vector a{1.0, 2.0, 3.0};
  Vector b{10.0, 20.0, 30.0};
  EXPECT_VECTOR_NEAR(a + b, (Vector{11.0, 22.0, 33.0}), 1e-15);
  EXPECT_VECTOR_NEAR(b - a, (Vector{9.0, 18.0, 27.0}), 1e-15);
  EXPECT_VECTOR_NEAR(a * 2.0, (Vector{2.0, 4.0, 6.0}), 1e-15);
  EXPECT_VECTOR_NEAR(2.0 * a, (Vector{2.0, 4.0, 6.0}), 1e-15);
  EXPECT_VECTOR_NEAR(-a, (Vector{-1.0, -2.0, -3.0}), 1e-15);
}

TEST(VectorTest, CompoundOperators) {
  Vector a{1.0, 1.0};
  a += Vector{2.0, 3.0};
  EXPECT_VECTOR_NEAR(a, (Vector{3.0, 4.0}), 1e-15);
  a -= Vector{1.0, 1.0};
  EXPECT_VECTOR_NEAR(a, (Vector{2.0, 3.0}), 1e-15);
  a *= 3.0;
  EXPECT_VECTOR_NEAR(a, (Vector{6.0, 9.0}), 1e-15);
  a /= 3.0;
  EXPECT_VECTOR_NEAR(a, (Vector{2.0, 3.0}), 1e-15);
}

TEST(VectorTest, AxpyFusesMultiplyAdd) {
  Vector a{1.0, 2.0};
  a.Axpy(0.5, Vector{4.0, 8.0});
  EXPECT_VECTOR_NEAR(a, (Vector{3.0, 6.0}), 1e-15);
}

TEST(VectorTest, NormsAndReductions) {
  const Vector v{3.0, -4.0};
  EXPECT_DOUBLE_EQ(Dot(v, v), 25.0);
  EXPECT_DOUBLE_EQ(Norm2(v), 5.0);
  EXPECT_DOUBLE_EQ(SquaredNorm(v), 25.0);
  EXPECT_DOUBLE_EQ(Norm1(v), 7.0);
  EXPECT_DOUBLE_EQ(NormInf(v), 4.0);
  EXPECT_DOUBLE_EQ(Sum(v), -1.0);
}

TEST(VectorTest, DotIsBilinear) {
  const Vector a{1.0, 2.0, 3.0};
  const Vector b{4.0, 5.0, 6.0};
  const Vector c{7.0, 8.0, 9.0};
  EXPECT_DOUBLE_EQ(Dot(a + b, c), Dot(a, c) + Dot(b, c));
  EXPECT_DOUBLE_EQ(Dot(a * 2.0, b), 2.0 * Dot(a, b));
}

TEST(VectorTest, FillOverwrites) {
  Vector v{1.0, 2.0, 3.0};
  v.Fill(7.0);
  EXPECT_VECTOR_NEAR(v, (Vector{7.0, 7.0, 7.0}), 1e-15);
}

TEST(VectorTest, ApproxEqualRespectsTolerance) {
  EXPECT_TRUE(ApproxEqual(Vector{1.0}, Vector{1.0 + 1e-12}, 1e-9));
  EXPECT_FALSE(ApproxEqual(Vector{1.0}, Vector{1.1}, 1e-9));
  EXPECT_FALSE(ApproxEqual(Vector{1.0}, Vector{1.0, 2.0}, 1e-9));
}

TEST(VectorTest, ToStringRendersEntries) {
  EXPECT_EQ((Vector{1.0, 2.5}).ToString(), "[1, 2.5]");
  EXPECT_EQ(Vector().ToString(), "[]");
}

TEST(VectorTest, IteratorsSupportRangeFor) {
  const Vector v{1.0, 2.0, 3.0};
  double total = 0.0;
  for (double x : v) total += x;
  EXPECT_DOUBLE_EQ(total, 6.0);
}

}  // namespace
}  // namespace lrm::linalg
