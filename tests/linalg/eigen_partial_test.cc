// Partial-spectrum eigensolver suite (PartialSymmetricEigen and friends):
// dispatch behavior across every LRM_FACTOR_KERNEL flavor, agreement with
// the full divide-and-conquer oracle, the rank-adaptive AboveCutoff /
// CountAbove entry points, workspace-reuse and thread-count determinism,
// and the argument-validation edges. The generated-spectra property matrix
// (clustered, Wilkinson, ± pairs, rank-deficient, …) lives in
// eigen_properties_test.cc; this file owns everything dispatch- and
// API-shaped.

#include <algorithm>
#include <cmath>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/eigen_sym.h"
#include "linalg/kernels/kernels.h"
#include "linalg/matrix.h"
#include "linalg/qr.h"
#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

namespace kernels = lrm::linalg::kernels;

class ScopedFactorImpl {
 public:
  explicit ScopedFactorImpl(kernels::FactorImpl impl) {
    kernels::SetFactorImpl(impl);
  }
  ~ScopedFactorImpl() { kernels::SetFactorImpl(kernels::FactorImpl::kAuto); }
};

// Restores the environment-default GEMM thread count on scope exit.
class ScopedGemmThreads {
 public:
  explicit ScopedGemmThreads(int threads) { kernels::SetGemmThreads(threads); }
  ~ScopedGemmThreads() { kernels::SetGemmThreads(0); }
};

// Conjugates diag(spectrum) by a random orthogonal factor so the matrix is
// dense but the spectrum is exactly known by construction.
Matrix FromSpectrum(rng::Engine& engine, const Vector& spectrum) {
  const Index n = spectrum.size();
  const StatusOr<Matrix> q =
      OrthonormalizeColumns(RandomGaussianMatrix(engine, n, n));
  LRM_CHECK(q.ok());
  Matrix scaled = *q;
  for (Index j = 0; j < n; ++j) {
    for (Index i = 0; i < n; ++i) scaled(i, j) *= spectrum[j];
  }
  return MultiplyABt(scaled, *q);
}

Matrix RandomSymmetric(rng::Engine& engine, Index n) {
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = g + Transpose(g);
  a *= 0.5;
  return a;
}

// Defining subset properties: k ascending eigenvalues matching the tail of
// the full D&C spectrum, unit residuals, orthonormal columns.
void CheckPartialAgainstOracle(const Matrix& a, const SymmetricEigenResult& eig,
                               const SymmetricEigenResult& oracle, Index k,
                               const char* label) {
  SCOPED_TRACE(label);
  const Index n = a.rows();
  ASSERT_EQ(eig.eigenvalues.size(), k);
  ASSERT_EQ(eig.eigenvectors.rows(), n);
  ASSERT_EQ(eig.eigenvectors.cols(), k);
  const double norm = std::max(MaxAbs(a), 1e-300);
  const double tol = 1e-12 * static_cast<double>(n);

  // Top-k eigenvalue agreement with the full solve, ascending tail order.
  const double scale = std::max(MaxAbs(a), 1.0) * static_cast<double>(n);
  for (Index i = 0; i < k; ++i) {
    EXPECT_NEAR(eig.eigenvalues[i], oracle.eigenvalues[n - k + i],
                1e-10 * scale)
        << "eigenvalue " << i;
    if (i > 0) {
      EXPECT_GE(eig.eigenvalues[i], eig.eigenvalues[i - 1]);
    }
  }

  // A·V = V·Λ.
  const Matrix av = a * eig.eigenvectors;
  Matrix vl = eig.eigenvectors;
  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < n; ++i) vl(i, j) *= eig.eigenvalues[j];
  }
  EXPECT_MATRIX_NEAR(av, vl, tol * norm);

  // VᵀV = I (across clusters too — the reorthogonalization contract).
  EXPECT_MATRIX_NEAR(GramAtA(eig.eigenvectors), Matrix::Identity(k), tol);
}

// Every dispatch flavor must agree with the full D&C oracle on the top-k:
// kReference/kBlocked/kDc slice a full solve, kPartial forces bisection +
// inverse iteration at any size, kAuto picks by shape. Sizes straddle the
// blocked threshold (128); k values hit singletons, the rank-search regime,
// and the half-spectrum boundary.
class PartialDispatchTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartialDispatchTest, AllDispatchFlavorsMatchOracle) {
  const auto [n_int, k_int] = GetParam();
  const Index n = n_int;
  const Index k = std::min<Index>(k_int, n);
  rng::Engine engine(static_cast<std::uint64_t>(n) * 31337 + k);
  const Matrix a = RandomSymmetric(engine, n);

  StatusOr<SymmetricEigenResult> oracle = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kDc);
    oracle = SymmetricEigen(a);
  }
  ASSERT_TRUE(oracle.ok());

  const struct {
    kernels::FactorImpl impl;
    const char* name;
  } flavors[] = {
      {kernels::FactorImpl::kReference, "reference"},
      {kernels::FactorImpl::kBlocked, "blocked"},
      {kernels::FactorImpl::kDc, "dc"},
      {kernels::FactorImpl::kPartial, "partial"},
      {kernels::FactorImpl::kAuto, "auto"},
  };
  for (const auto& flavor : flavors) {
    ScopedFactorImpl force(flavor.impl);
    const StatusOr<SymmetricEigenResult> eig = PartialSymmetricEigen(a, k);
    ASSERT_TRUE(eig.ok()) << flavor.name << ": " << eig.status().message();
    CheckPartialAgainstOracle(a, *eig, *oracle, k, flavor.name);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PartialDispatchTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(2, 1),
                      std::make_tuple(2, 2), std::make_tuple(5, 2),
                      std::make_tuple(33, 4), std::make_tuple(64, 64),
                      std::make_tuple(97, 13), std::make_tuple(160, 20),
                      std::make_tuple(257, 1), std::make_tuple(257, 32),
                      std::make_tuple(257, 129)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_k" +
             std::to_string(std::get<1>(info.param));
    });

TEST(PartialSymmetricEigenTest, KLargerThanNClampsToFullSpectrum) {
  rng::Engine engine(7);
  const Matrix a = RandomSymmetric(engine, 40);
  StatusOr<SymmetricEigenResult> oracle = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kDc);
    oracle = SymmetricEigen(a);
  }
  ASSERT_TRUE(oracle.ok());
  const StatusOr<SymmetricEigenResult> eig = PartialSymmetricEigen(a, 100);
  ASSERT_TRUE(eig.ok());
  CheckPartialAgainstOracle(a, *eig, *oracle, 40, "clamped");
}

TEST(PartialSymmetricEigenTest, RejectsBadArguments) {
  rng::Engine engine(11);
  const Matrix a = RandomSymmetric(engine, 8);
  EXPECT_EQ(PartialSymmetricEigen(a, 0).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PartialSymmetricEigen(Matrix(3, 5), 1).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PartialSymmetricEigen(Matrix(), 1).status().code(),
            StatusCode::kInvalidArgument);
  Index count = 0;
  EXPECT_EQ(
      PartialSymmetricEigenAboveCutoff(a, -0.5, 1.2, &count).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      PartialSymmetricEigenAboveCutoff(a, 0.5, 0.0, &count).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(SymmetricEigenCountAbove(Matrix(3, 5), 0.5).status().code(),
            StatusCode::kInvalidArgument);
}

// The subset path must be bitwise reproducible: reusing one workspace
// across solves, or solving through a fresh one, yields identical bits
// (start vectors are keyed by output column, not by any global state).
TEST(PartialSymmetricEigenTest, WorkspaceReuseIsBitwiseDeterministic) {
  ScopedFactorImpl force(kernels::FactorImpl::kPartial);
  rng::Engine engine(23);
  const Matrix a = RandomSymmetric(engine, 150);
  const Index k = 18;

  SymmetricEigenWorkspace ws;
  const StatusOr<SymmetricEigenResult> first = PartialSymmetricEigen(a, k, &ws);
  ASSERT_TRUE(first.ok());
  const StatusOr<SymmetricEigenResult> reused =
      PartialSymmetricEigen(a, k, &ws);
  ASSERT_TRUE(reused.ok());
  const StatusOr<SymmetricEigenResult> fresh = PartialSymmetricEigen(a, k);
  ASSERT_TRUE(fresh.ok());

  EXPECT_VECTOR_NEAR(reused->eigenvalues, first->eigenvalues, 0.0);
  EXPECT_MATRIX_NEAR(reused->eigenvectors, first->eigenvectors, 0.0);
  EXPECT_VECTOR_NEAR(fresh->eigenvalues, first->eigenvalues, 0.0);
  EXPECT_MATRIX_NEAR(fresh->eigenvectors, first->eigenvectors, 0.0);
}

// Bisection intervals and cluster solves are partitioned by shape only, so
// the bits must not depend on LRM_GEMM_THREADS.
TEST(PartialSymmetricEigenTest, EigenpairsAreBitwiseThreadCountInvariant) {
  ScopedFactorImpl force(kernels::FactorImpl::kPartial);
  rng::Engine engine(29);
  const Matrix a = RandomSymmetric(engine, 257);
  const Index k = 32;

  StatusOr<SymmetricEigenResult> baseline = Status::InvalidArgument("unset");
  {
    ScopedGemmThreads threads(1);
    baseline = PartialSymmetricEigen(a, k);
  }
  ASSERT_TRUE(baseline.ok());
  for (int count : {2, 8}) {
    SCOPED_TRACE(count);
    ScopedGemmThreads threads(count);
    const StatusOr<SymmetricEigenResult> eig = PartialSymmetricEigen(a, k);
    ASSERT_TRUE(eig.ok());
    EXPECT_VECTOR_NEAR(eig->eigenvalues, baseline->eigenvalues, 0.0);
    EXPECT_MATRIX_NEAR(eig->eigenvectors, baseline->eigenvectors, 0.0);
  }
}

// Rank-adaptive entry point on a spectrum with a known gap structure: the
// Sturm count must report exactly the eigenvalues above the cutoff, and the
// returned subset must be the grown top-k.
class AboveCutoffTest : public ::testing::TestWithParam<int> {};

TEST_P(AboveCutoffTest, CountsAndGrowsKnownSpectrum) {
  const Index n = GetParam();  // straddles the blocked/Tred2 boundary
  rng::Engine engine(static_cast<std::uint64_t>(n) * 101);
  Vector spectrum(n);  // zero-filled
  spectrum[n - 1] = 1.0;
  spectrum[n - 2] = 0.5;
  spectrum[n - 3] = 0.1;
  spectrum[n - 4] = 1e-3;
  spectrum[n - 5] = 1e-9;
  const Matrix a = FromSpectrum(engine, spectrum);

  // 1.0, 0.5, 0.1 sit above 1e-2·λ_max; 1e-3 and below do not.
  Index count = 0;
  const StatusOr<SymmetricEigenResult> eig =
      PartialSymmetricEigenAboveCutoff(a, 1e-2, 1.5, &count);
  ASSERT_TRUE(eig.ok());
  EXPECT_EQ(count, 3);
  ASSERT_EQ(eig->eigenvalues.size(), 5);  // ⌈1.5·3⌉
  EXPECT_NEAR(eig->eigenvalues[4], 1.0, 1e-10 * n);
  EXPECT_NEAR(eig->eigenvalues[3], 0.5, 1e-10 * n);
  EXPECT_NEAR(eig->eigenvalues[2], 0.1, 1e-10 * n);
  EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(5),
                     1e-12 * n);

  // The count-only probe agrees without computing any vectors.
  const StatusOr<Index> probed = SymmetricEigenCountAbove(a, 1e-2);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(*probed, 3);

  // Forced full-solve flavors report the same count.
  for (kernels::FactorImpl impl :
       {kernels::FactorImpl::kReference, kernels::FactorImpl::kDc}) {
    ScopedFactorImpl force(impl);
    Index forced_count = 0;
    const StatusOr<SymmetricEigenResult> forced =
        PartialSymmetricEigenAboveCutoff(a, 1e-2, 1.5, &forced_count);
    ASSERT_TRUE(forced.ok());
    EXPECT_EQ(forced_count, 3);
    EXPECT_EQ(forced->eigenvalues.size(), 5);
  }

  // Oversized growth clamps k to n (near-full-spectrum fallback path).
  Index clamped_count = 0;
  const StatusOr<SymmetricEigenResult> clamped =
      PartialSymmetricEigenAboveCutoff(a, 1e-2, 1e9, &clamped_count);
  ASSERT_TRUE(clamped.ok());
  EXPECT_EQ(clamped_count, 3);
  EXPECT_EQ(clamped->eigenvalues.size(), n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AboveCutoffTest, ::testing::Values(33, 160),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "n" + std::to_string(info.param);
                         });

TEST(AboveCutoffTest, ZeroMatrixCountsZeroAndReturnsOnePair) {
  const Matrix a(96, 96);  // all zeros
  Index count = 99;
  const StatusOr<SymmetricEigenResult> eig =
      PartialSymmetricEigenAboveCutoff(a, 1e-7, 1.2, &count);
  ASSERT_TRUE(eig.ok());
  EXPECT_EQ(count, 0);
  ASSERT_EQ(eig->eigenvalues.size(), 1);  // k = max(1, ⌈1.2·0⌉)
  EXPECT_NEAR(eig->eigenvalues[0], 0.0, 1e-14);
  EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(1), 1e-12);

  const StatusOr<Index> probed = SymmetricEigenCountAbove(a, 1e-7);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(*probed, 0);
}

// AboveCutoff agrees with a brute-force count on the full D&C spectrum for
// a spectrum with eigenvalues scattered around the threshold.
TEST(AboveCutoffTest, MatchesBruteForceCountNearThreshold) {
  const Index n = 160;
  rng::Engine engine(1234);
  Vector spectrum(n);
  for (Index i = 0; i < n; ++i) {
    // Geometric decay crossing 1e-4·λ_max around i ≈ 61.
    spectrum[i] = std::pow(0.87, static_cast<double>(i));
  }
  const Matrix a = FromSpectrum(engine, spectrum);

  StatusOr<SymmetricEigenResult> full = Status::InvalidArgument("unset");
  {
    ScopedFactorImpl force(kernels::FactorImpl::kDc);
    full = SymmetricEigen(a);
  }
  ASSERT_TRUE(full.ok());
  const double cutoff = 1e-4;
  const double threshold = cutoff * full->eigenvalues[n - 1];
  Index expected = 0;
  for (Index i = 0; i < n; ++i) {
    if (full->eigenvalues[i] > threshold) ++expected;
  }

  const StatusOr<Index> probed = SymmetricEigenCountAbove(a, cutoff);
  ASSERT_TRUE(probed.ok());
  EXPECT_EQ(*probed, expected);
}

// The tridiagonal internals: Sturm counts and the extreme-eigenvalue probe
// on a matrix whose spectrum is known in closed form (the free Laplacian
// [-1, 2, -1] has λ_j = 2 − 2·cos(π·j/(n+1))).
TEST(TridiagInternalsTest, SturmCountMatchesClosedFormLaplacian) {
  const Index n = 64;
  std::vector<double> d(static_cast<std::size_t>(n), 2.0);
  std::vector<double> e(static_cast<std::size_t>(n), -1.0);
  e[0] = 0.0;  // e[0] unused by convention

  std::vector<double> lambda(static_cast<std::size_t>(n));
  for (Index j = 0; j < n; ++j) {
    lambda[static_cast<std::size_t>(j)] =
        2.0 - 2.0 * std::cos(M_PI * static_cast<double>(j + 1) /
                             static_cast<double>(n + 1));
  }
  // Count below a point between every pair of adjacent eigenvalues.
  for (Index j = 0; j + 1 < n; ++j) {
    const double mid = 0.5 * (lambda[static_cast<std::size_t>(j)] +
                              lambda[static_cast<std::size_t>(j + 1)]);
    EXPECT_EQ(internal::TridiagCountBelow(n, d.data(), e.data(), mid), j + 1)
        << "between eigenvalues " << j << " and " << j + 1;
  }
  EXPECT_NEAR(internal::TridiagMaxEigenvalue(n, d.data(), e.data()),
              lambda[static_cast<std::size_t>(n - 1)], 1e-12);
}

}  // namespace
}  // namespace lrm::linalg
