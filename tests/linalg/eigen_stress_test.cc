// Stress tier for the divide-and-conquer eigensolver: the n = 2048 regime
// that the QL iteration could not reach in tolerable time, plus the first
// n = 4096 eigen run, bitwise workspace-reuse determinism, and the first
// n = 8192 rank-search runs (partial-spectrum only — a full solve at 8192
// would need hours and gigabytes the subset path never touches).
//
// Runtime budget: the full sizes (2048 / 4096 / 8192) are reserved for
// optimized builds — roughly 10 s for the 2048 solves, ~40 s for the 4096
// one, and a few minutes (dominated by one blocked tridiagonalization) for
// the 8192 rank search on the baseline box. Under sanitizers or -O0 those
// would balloon into tens of minutes of instrumented GEMM, so
// LRM_SANITIZED_BUILD (set by the CMake sanitizer option) and NDEBUG-less
// builds scale the sizes down; the same code paths (leaf QL, multi-level
// merges, deflation, packed GEMMs, Sturm bisection, cluster inverse
// iteration) are exercised either way, which is what the sanitizers are
// there to check.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/eigen_sym.h"
#include "linalg/matrix.h"
#include "linalg/random_matrix.h"
#include "linalg/svd.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

#if defined(LRM_SANITIZED_BUILD) || !defined(NDEBUG)
constexpr Index kLargeN = 384;   // sanitizer / unoptimized budget
constexpr Index kHugeN = 512;
constexpr Index kRankSearchN = 640;
#else
constexpr Index kLargeN = 2048;  // the size this PR unlocks
constexpr Index kHugeN = 4096;   // paper-scale domains (ROADMAP item 1)
constexpr Index kRankSearchN = 8192;  // partial-spectrum rank search only
#endif

Matrix MakeSpd(Index n, std::uint64_t seed) {
  rng::Engine engine(seed);
  const Matrix g = RandomGaussianMatrix(engine, n, n);
  Matrix a = GramAtA(g);
  for (Index i = 0; i < n; ++i) a(i, i) += static_cast<double>(n);
  return a;
}

TEST(EigenStressTest, SymmetricEigenAtLargeN) {
  const Matrix a = MakeSpd(kLargeN, 21);
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());

  const double scale = MaxAbs(a) * static_cast<double>(kLargeN);
  // Full defining-property checks: A·V = V·Λ and VᵀV = I.
  Matrix vl = eig->eigenvectors;
  for (Index j = 0; j < kLargeN; ++j) {
    for (Index i = 0; i < kLargeN; ++i) vl(i, j) *= eig->eigenvalues[j];
  }
  EXPECT_MATRIX_NEAR(a * eig->eigenvectors, vl, 1e-12 * scale);
  EXPECT_MATRIX_NEAR(GramAtA(eig->eigenvectors), Matrix::Identity(kLargeN),
                     1e-12 * kLargeN);
  double trace_sum = 0.0;
  for (Index i = 0; i < kLargeN; ++i) {
    if (i > 0) {
      ASSERT_GE(eig->eigenvalues[i], eig->eigenvalues[i - 1]);
    }
    trace_sum += eig->eigenvalues[i];
  }
  EXPECT_NEAR(trace_sum, Trace(a), 1e-10 * scale);
}

TEST(EigenStressTest, GramSvdAtLargeN) {
  // The exact-SVD fallback shape: a tall workload whose Gram eigensolve
  // rides the dc dispatch.
  rng::Engine engine(22);
  const Matrix a = RandomGaussianMatrix(engine, kLargeN, kLargeN / 2);
  const StatusOr<SvdResult> svd = GramSvd(a);
  ASSERT_TRUE(svd.ok());

  const Index k = kLargeN / 2;
  ASSERT_EQ(svd->singular_values.size(), k);
  for (Index i = 0; i < k; ++i) {
    ASSERT_GE(svd->singular_values[i], 0.0);
    if (i > 0) {
      ASSERT_LE(svd->singular_values[i], svd->singular_values[i - 1]);
    }
  }
  EXPECT_MATRIX_NEAR(GramAtA(svd->u), Matrix::Identity(k), 1e-9 * kLargeN);
  EXPECT_MATRIX_NEAR(GramAtA(svd->v), Matrix::Identity(k), 1e-9 * kLargeN);
  // A·V = U·Σ ties the three factors together in one GEMM pass.
  Matrix us = svd->u;
  for (Index j = 0; j < k; ++j) {
    for (Index i = 0; i < us.rows(); ++i) us(i, j) *= svd->singular_values[j];
  }
  EXPECT_MATRIX_NEAR(a * svd->v, us, 1e-9 * MaxAbs(a) * kLargeN);
}

TEST(EigenStressTest, WorkspaceReuseIsBitwiseDeterministic) {
  // Two solves through one workspace must be bit-identical to each other
  // AND to the workspace-free call: the merge scratch is fully overwritten
  // before every read, so buffer history can never leak into results.
  const Index n = 512;
  const Matrix a = MakeSpd(n, 23);
  const StatusOr<SymmetricEigenResult> fresh = SymmetricEigen(a);
  ASSERT_TRUE(fresh.ok());

  SymmetricEigenWorkspace ws;
  for (int pass = 0; pass < 2; ++pass) {
    SCOPED_TRACE(pass);
    const StatusOr<SymmetricEigenResult> reused = SymmetricEigen(a, &ws);
    ASSERT_TRUE(reused.ok());
    EXPECT_VECTOR_NEAR(reused->eigenvalues, fresh->eigenvalues, 0.0);
    EXPECT_MATRIX_NEAR(reused->eigenvectors, fresh->eigenvectors, 0.0);
  }
}

TEST(EigenStressTest, SymmetricEigenAtHugeNCompletes) {
  // The n = 4096 run the QL wall made impossible: assert completion plus
  // O(n²) checks (ordering, trace identity, sampled eigenpair residuals) —
  // the full O(n³) property GEMMs are already covered at kLargeN.
  const Matrix a = MakeSpd(kHugeN, 29);
  const StatusOr<SymmetricEigenResult> eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());

  double trace_sum = 0.0;
  for (Index i = 0; i < kHugeN; ++i) {
    if (i > 0) {
      ASSERT_GE(eig->eigenvalues[i], eig->eigenvalues[i - 1]);
    }
    trace_sum += eig->eigenvalues[i];
  }
  const double scale = MaxAbs(a) * static_cast<double>(kHugeN);
  EXPECT_NEAR(trace_sum, Trace(a), 1e-10 * scale);

  // Sampled residuals ‖A·v_j − λ_j·v_j‖∞ and pairwise orthogonality.
  rng::Engine engine(31);
  for (int s = 0; s < 16; ++s) {
    const Index j =
        static_cast<Index>(engine.Next() % static_cast<std::uint64_t>(kHugeN));
    double norm_sq = 0.0;
    for (Index i = 0; i < kHugeN; ++i) {
      norm_sq += eig->eigenvectors(i, j) * eig->eigenvectors(i, j);
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-10 * kHugeN);
    double max_resid = 0.0;
    for (Index i = 0; i < kHugeN; ++i) {
      double av = 0.0;
      for (Index k2 = 0; k2 < kHugeN; ++k2) {
        av += a(i, k2) * eig->eigenvectors(k2, j);
      }
      max_resid = std::max(
          max_resid,
          std::abs(av - eig->eigenvalues[j] * eig->eigenvectors(i, j)));
    }
    EXPECT_LE(max_resid, 1e-12 * scale) << "eigenpair " << j;
  }
}

TEST(EigenStressTest, PartialRankSearchAtRankSearchN) {
  // The run the full solvers cannot do: rank search on an n = 8192
  // symmetric matrix. One blocked tridiagonalization, a Sturm count, and
  // k ≪ n inverse iterations — never a full eigenvector accumulation.
  const Index rank = kRankSearchN / 85;  // 96 at full size
  rng::Engine engine(37);
  const Matrix g = RandomGaussianMatrix(engine, kRankSearchN, rank);
  const Matrix a = MultiplyABt(g, g);  // PSD, exactly rank `rank`

  Index count = 0;
  const StatusOr<SymmetricEigenResult> eig =
      PartialSymmetricEigenAboveCutoff(a, 1e-9, 1.2, &count);
  ASSERT_TRUE(eig.ok()) << eig.status().message();
  EXPECT_EQ(count, rank);
  const Index k = eig->eigenvalues.size();
  ASSERT_EQ(k, static_cast<Index>(std::ceil(1.2 * rank)));

  // The nonzero spectrum is entirely inside the subset, so the partial
  // eigenvalue sum must reproduce the trace (an O(n) full-matrix check).
  double top_sum = 0.0;
  for (Index i = 0; i < k; ++i) {
    if (i > 0) {
      ASSERT_GE(eig->eigenvalues[i], eig->eigenvalues[i - 1]);
    }
    top_sum += eig->eigenvalues[i];
  }
  const double scale = MaxAbs(a) * static_cast<double>(kRankSearchN);
  EXPECT_NEAR(top_sum, Trace(a), 1e-10 * scale);

  // Sampled eigenpair residuals ‖A·v_j − λ_j·v_j‖∞ across the subset.
  for (Index j : {Index{0}, k / 2, k - 1}) {
    double norm_sq = 0.0;
    for (Index i = 0; i < kRankSearchN; ++i) {
      norm_sq += eig->eigenvectors(i, j) * eig->eigenvectors(i, j);
    }
    EXPECT_NEAR(norm_sq, 1.0, 1e-10 * kRankSearchN);
    double max_resid = 0.0;
    for (Index i = 0; i < kRankSearchN; ++i) {
      double av = 0.0;
      for (Index k2 = 0; k2 < kRankSearchN; ++k2) {
        av += a(i, k2) * eig->eigenvectors(k2, j);
      }
      max_resid = std::max(
          max_resid,
          std::abs(av - eig->eigenvalues[j] * eig->eigenvectors(i, j)));
    }
    EXPECT_LE(max_resid, 1e-12 * scale) << "eigenpair " << j;
  }
}

TEST(EigenStressTest, PartialGramRankSearchAtPaperScaleDomain) {
  // The decomposition's exact-fallback shape at an 8192-column domain: a
  // wide low-rank workload whose rank search and Lemma-3 triplets come out
  // of one PartialGramSvdWithRank call (Gram side is the small m×m).
  const Index m = kRankSearchN / 16;  // 512 queries at full size
  const Index true_rank = m / 12;
  rng::Engine engine(41);
  const Matrix w = RandomGaussianMatrix(engine, m, true_rank) *
                   RandomGaussianMatrix(engine, true_rank, kRankSearchN);

  Index rank = 0;
  const StatusOr<SvdResult> svd =
      PartialGramSvdWithRank(w, 1e-9, 1.2, &rank);
  ASSERT_TRUE(svd.ok()) << svd.status().message();
  EXPECT_EQ(rank, true_rank);
  const Index k = svd->singular_values.size();
  ASSERT_EQ(k, static_cast<Index>(std::ceil(1.2 * true_rank)));
  // The subset covers the whole nonzero spectrum: the truncated triplets
  // reconstruct W.
  EXPECT_MATRIX_NEAR(svd->Reconstruct(), w, 1e-7 * FrobeniusNorm(w));
}

}  // namespace
}  // namespace lrm::linalg
