#include "linalg/svd.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "linalg/random_matrix.h"
#include "rng/engine.h"
#include "tests/support/matchers.h"

namespace lrm::linalg {
namespace {

Matrix RandomLowRank(rng::Engine& engine, Index m, Index n, Index rank) {
  const Matrix u = RandomGaussianMatrix(engine, m, rank);
  const Matrix v = RandomGaussianMatrix(engine, rank, n);
  return u * v;
}

void ExpectValidThinSvd(const Matrix& a, const SvdResult& svd, double tol) {
  const Index k = svd.singular_values.size();
  ASSERT_EQ(svd.u.cols(), k);
  ASSERT_EQ(svd.v.cols(), k);
  ASSERT_EQ(svd.u.rows(), a.rows());
  ASSERT_EQ(svd.v.rows(), a.cols());
  // Non-increasing, non-negative spectrum.
  for (Index i = 0; i < k; ++i) {
    EXPECT_GE(svd.singular_values[i], 0.0);
    if (i > 0) {
      EXPECT_LE(svd.singular_values[i], svd.singular_values[i - 1] + 1e-12);
    }
  }
  EXPECT_MATRIX_NEAR(svd.Reconstruct(), a, tol);
}

TEST(JacobiSvdTest, RejectsEmpty) {
  EXPECT_EQ(JacobiSvd(Matrix()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(JacobiSvdTest, DiagonalMatrixSpectrumIsKnown) {
  const StatusOr<SvdResult> svd =
      JacobiSvd(Matrix::Diagonal(Vector{3.0, 5.0, 1.0}));
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 5.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[1], 3.0, 1e-12);
  EXPECT_NEAR(svd->singular_values[2], 1.0, 1e-12);
}

TEST(JacobiSvdTest, KnownSingularValues) {
  // A = [[3, 0], [4, 5]]: σ = (√45 ± √5)/... — classic example with
  // σ₁ = 3√5, σ₂ = √5.
  const Matrix a{{3.0, 0.0}, {4.0, 5.0}};
  const StatusOr<SvdResult> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  EXPECT_NEAR(svd->singular_values[0], 3.0 * std::sqrt(5.0), 1e-10);
  EXPECT_NEAR(svd->singular_values[1], std::sqrt(5.0), 1e-10);
}

class SvdPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SvdPropertyTest, JacobiReconstructsWithOrthonormalFactors) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 997 + n));
  const Matrix a = RandomGaussianMatrix(engine, m, n);
  const StatusOr<SvdResult> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  ExpectValidThinSvd(a, *svd, 1e-9 * std::max(m, n));

  const Index k = svd->singular_values.size();
  EXPECT_MATRIX_NEAR(GramAtA(svd->u), Matrix::Identity(k), 1e-9 * k);
  EXPECT_MATRIX_NEAR(GramAtA(svd->v), Matrix::Identity(k), 1e-9 * k);
}

TEST_P(SvdPropertyTest, GramSvdAgreesWithJacobiOnSpectrum) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 31 + n * 7 + 5));
  const Matrix a = RandomGaussianMatrix(engine, m, n);
  const StatusOr<SvdResult> jacobi = JacobiSvd(a);
  const StatusOr<SvdResult> gram = GramSvd(a);
  ASSERT_TRUE(jacobi.ok());
  ASSERT_TRUE(gram.ok());
  ExpectValidThinSvd(a, *gram, 1e-7 * std::max(m, n));
  const Index k = std::min(jacobi->singular_values.size(),
                           gram->singular_values.size());
  for (Index i = 0; i < k; ++i) {
    EXPECT_NEAR(gram->singular_values[i], jacobi->singular_values[i],
                1e-7 * (1.0 + jacobi->singular_values[0]));
  }
}

TEST_P(SvdPropertyTest, FrobeniusNormEqualsSpectrumNorm) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 11 + n * 3 + 1));
  const Matrix a = RandomGaussianMatrix(engine, m, n);
  const StatusOr<SvdResult> svd = JacobiSvd(a);
  ASSERT_TRUE(svd.ok());
  double spectrum_sq = 0.0;
  for (Index i = 0; i < svd->singular_values.size(); ++i) {
    spectrum_sq += svd->singular_values[i] * svd->singular_values[i];
  }
  EXPECT_NEAR(spectrum_sq, SquaredFrobeniusNorm(a),
              1e-8 * (1.0 + SquaredFrobeniusNorm(a)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdPropertyTest,
    ::testing::Values(std::make_tuple(1, 1), std::make_tuple(3, 3),
                      std::make_tuple(8, 3), std::make_tuple(3, 8),
                      std::make_tuple(20, 20), std::make_tuple(40, 15),
                      std::make_tuple(15, 40)));

TEST(RandomizedSvdTest, RecoversLowRankExactly) {
  rng::Engine engine(42);
  const Matrix a = RandomLowRank(engine, 60, 80, 5);
  const StatusOr<SvdResult> sketch = RandomizedSvd(a, 5);
  ASSERT_TRUE(sketch.ok());
  EXPECT_EQ(sketch->singular_values.size(), 5);
  // Exact rank-5 matrix: the rank-5 sketch reconstructs it.
  EXPECT_MATRIX_NEAR(sketch->Reconstruct(), a, 1e-7 * FrobeniusNorm(a));
}

TEST(RandomizedSvdTest, TopSingularValuesMatchFullSvd) {
  rng::Engine engine(43);
  const Matrix a = RandomGaussianMatrix(engine, 50, 70);
  const StatusOr<SvdResult> full = JacobiSvd(a);
  const StatusOr<SvdResult> sketch = RandomizedSvd(a, 8);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(sketch.ok());
  for (Index i = 0; i < 8; ++i) {
    // Sketched values never exceed the true ones and are close for the top.
    EXPECT_LE(sketch->singular_values[i],
              full->singular_values[i] + 1e-9);
  }
  EXPECT_NEAR(sketch->singular_values[0], full->singular_values[0],
              0.05 * full->singular_values[0]);
}

TEST(RandomizedSvdTest, RejectsBadRank) {
  EXPECT_EQ(RandomizedSvd(Matrix::Identity(4), 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(RandomizedSvdTest, DeterministicGivenSeed) {
  rng::Engine engine(44);
  const Matrix a = RandomGaussianMatrix(engine, 30, 30);
  RandomizedSvdOptions options;
  options.seed = 1234;
  const StatusOr<SvdResult> s1 = RandomizedSvd(a, 4, options);
  const StatusOr<SvdResult> s2 = RandomizedSvd(a, 4, options);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  EXPECT_MATRIX_NEAR(s1->u, s2->u, 0.0);
  EXPECT_VECTOR_NEAR(s1->singular_values, s2->singular_values, 0.0);
}

TEST(RankTest, ExactRankOfConstructedMatrices) {
  rng::Engine engine(45);
  for (Index rank : {1, 2, 5, 9}) {
    const Matrix a = RandomLowRank(engine, 20, 30, rank);
    const StatusOr<Index> estimated = EstimateRank(a);
    ASSERT_TRUE(estimated.ok());
    EXPECT_EQ(*estimated, rank) << "constructed rank " << rank;
  }
}

TEST(RankTest, FullRankRandomMatrix) {
  rng::Engine engine(46);
  const Matrix a = RandomGaussianMatrix(engine, 12, 25);
  const StatusOr<Index> estimated = EstimateRank(a);
  ASSERT_TRUE(estimated.ok());
  EXPECT_EQ(*estimated, 12);
}

TEST(RankTest, ZeroMatrixHasRankZero) {
  const StatusOr<Index> estimated = EstimateRank(Matrix(4, 6));
  ASSERT_TRUE(estimated.ok());
  EXPECT_EQ(*estimated, 0);
}

class PinvPropertyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PinvPropertyTest, MoorePenroseConditions) {
  const auto [m, n] = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(m * 13 + n * 17));
  const Matrix a = RandomGaussianMatrix(engine, m, n);
  const StatusOr<Matrix> pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  const Matrix& ap = *pinv;
  const double tol = 1e-8 * std::max(m, n);
  // (1) A·A⁺·A = A, (2) A⁺·A·A⁺ = A⁺, (3)(4) both products symmetric.
  EXPECT_MATRIX_NEAR(a * ap * a, a, tol);
  EXPECT_MATRIX_NEAR(ap * a * ap, ap, tol);
  EXPECT_TRUE(IsSymmetric(a * ap, tol));
  EXPECT_TRUE(IsSymmetric(ap * a, tol));
}

INSTANTIATE_TEST_SUITE_P(Shapes, PinvPropertyTest,
                         ::testing::Values(std::make_tuple(4, 4),
                                           std::make_tuple(10, 6),
                                           std::make_tuple(6, 10)));

TEST(PinvTest, RankDeficientMatrix) {
  rng::Engine engine(47);
  const Matrix a = RandomLowRank(engine, 8, 8, 3);
  const StatusOr<Matrix> pinv = PseudoInverse(a);
  ASSERT_TRUE(pinv.ok());
  EXPECT_MATRIX_NEAR(a * (*pinv) * a, a, 1e-7 * FrobeniusNorm(a));
}

// Dense orthogonal-conjugation construction with an exactly known spectrum:
// A = Q₁·diag(σ)·Q₂ᵀ with random orthogonal factors.
Matrix FromSingularValues(rng::Engine& engine, Index m, Index n,
                          const Vector& sigma) {
  const StatusOr<Matrix> q1 =
      OrthonormalizeColumns(RandomGaussianMatrix(engine, m, m));
  const StatusOr<Matrix> q2 =
      OrthonormalizeColumns(RandomGaussianMatrix(engine, n, n));
  LRM_CHECK(q1.ok() && q2.ok());
  Matrix scaled(m, n);
  for (Index j = 0; j < std::min(m, n); ++j) {
    const double s = j < sigma.size() ? sigma[j] : 0.0;
    for (Index i = 0; i < m; ++i) scaled(i, j) = (*q1)(i, j) * s;
  }
  return MultiplyABt(scaled, *q2);
}

TEST(PartialGramSvdTest, TopKAgreesWithGramSvd) {
  rng::Engine engine(51);
  const Matrix a = RandomGaussianMatrix(engine, 210, 200);
  const StatusOr<SvdResult> full = GramSvd(a);
  const StatusOr<SvdResult> part = PartialGramSvd(a, 12);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->singular_values.size(), 12);
  ASSERT_EQ(part->u.rows(), 210);
  ASSERT_EQ(part->v.rows(), 200);
  for (Index i = 0; i < 12; ++i) {
    EXPECT_NEAR(part->singular_values[i], full->singular_values[i],
                1e-7 * (1.0 + full->singular_values[0]))
        << "singular value " << i;
  }
  EXPECT_MATRIX_NEAR(GramAtA(part->u), Matrix::Identity(12), 1e-8 * 200);
  EXPECT_MATRIX_NEAR(GramAtA(part->v), Matrix::Identity(12), 1e-8 * 200);
}

TEST(PartialGramSvdTest, LowRankReconstructsFromTopK) {
  rng::Engine engine(52);
  const Matrix a = RandomLowRank(engine, 200, 220, 9);
  const StatusOr<SvdResult> part = PartialGramSvd(a, 9);
  ASSERT_TRUE(part.ok());
  EXPECT_MATRIX_NEAR(part->Reconstruct(), a, 1e-6 * FrobeniusNorm(a));
}

TEST(PartialGramSvdTest, RejectsBadArguments) {
  EXPECT_EQ(PartialGramSvd(Matrix(), 3).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PartialGramSvd(Matrix::Identity(4), 0).status().code(),
            StatusCode::kInvalidArgument);
  Index rank = 0;
  EXPECT_EQ(PartialGramSvdWithRank(Matrix(), 1e-9, 1.2, &rank)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

// Graded spectrum straddling the tolerance — the regression lock for the
// relative-tolerance convention (svd.h NumericalRank): on the Gram path a
// requested tolerance below kGramRankTolFloor is clamped to it, and
// tolerances above the floor are honored as given. The same matrix, probed
// at two tolerances, must produce the two different documented counts from
// both EstimateRank and PartialGramSvdWithRank.
TEST(PartialGramSvdTest, WithRankHonorsGradedSpectrumTolerances) {
  rng::Engine engine(53);
  const Index p = 200;
  Vector sigma(6);
  sigma[0] = 1.0;
  sigma[1] = 1e-2;
  sigma[2] = 1e-4;
  sigma[3] = 1e-6;
  sigma[4] = 1e-8;  // below the 1e-7 Gram floor: never countable at size
  sigma[5] = 1e-10;
  const Matrix a = FromSingularValues(engine, p, p + 16, sigma);

  // rel_tol below the floor clamps to 1e-7: counts {1, 1e-2, 1e-4, 1e-6}.
  Index rank = 0;
  const StatusOr<SvdResult> fine =
      PartialGramSvdWithRank(a, 1e-9, 1.2, &rank);
  ASSERT_TRUE(fine.ok());
  EXPECT_EQ(rank, 4);
  ASSERT_EQ(fine->singular_values.size(), 5);  // ⌈1.2·4⌉
  EXPECT_NEAR(fine->singular_values[0], 1.0, 1e-7);
  EXPECT_NEAR(fine->singular_values[3], 1e-6, 1e-9);

  // rel_tol above the floor is honored raw: counts {1, 1e-2, 1e-4}.
  const StatusOr<SvdResult> coarse =
      PartialGramSvdWithRank(a, 1e-5, 1.2, &rank);
  ASSERT_TRUE(coarse.ok());
  EXPECT_EQ(rank, 3);
  EXPECT_EQ(coarse->singular_values.size(), 4);

  // EstimateRank follows the same convention on the same matrix.
  const StatusOr<Index> est_fine = EstimateRank(a, 1e-9);
  const StatusOr<Index> est_coarse = EstimateRank(a, 1e-5);
  ASSERT_TRUE(est_fine.ok());
  ASSERT_TRUE(est_coarse.ok());
  EXPECT_EQ(*est_fine, 4);
  EXPECT_EQ(*est_coarse, 3);
}

TEST(AppendGaussianColumnsTest, AppendsArePrefixStable) {
  rng::Engine piecewise(7001);
  Matrix in_pieces;
  AppendGaussianColumns(piecewise, 17, 3, &in_pieces);
  const Matrix after_first = in_pieces;
  AppendGaussianColumns(piecewise, 17, 2, &in_pieces);

  rng::Engine batch(7001);
  Matrix at_once;
  AppendGaussianColumns(batch, 17, 5, &at_once);

  ASSERT_EQ(in_pieces.rows(), 17);
  ASSERT_EQ(in_pieces.cols(), 5);
  EXPECT_MATRIX_NEAR(in_pieces, at_once, 0.0);
  // The widened matrix keeps the original columns bitwise.
  for (Index j = 0; j < 3; ++j) {
    for (Index i = 0; i < 17; ++i) {
      EXPECT_EQ(in_pieces(i, j), after_first(i, j));
    }
  }
}

TEST(RandomizedSvdWithTestMatrixTest, MatchesInternalDrawAndValidates) {
  rng::Engine engine(54);
  const Matrix a = RandomLowRank(engine, 60, 80, 5);
  RandomizedSvdOptions options;
  options.seed = 99;

  // Reproduce the internal draw by hand: same engine, same width, same
  // row-major fill — the overload must give bitwise the same factors.
  const StatusOr<SvdResult> internal_draw = RandomizedSvd(a, 5, options);
  rng::Engine omega_engine(options.seed);
  Matrix omega;
  RandomGaussianMatrixInto(omega_engine, 80, 13, &omega);  // 5 + oversample 8
  const StatusOr<SvdResult> supplied =
      RandomizedSvdWithTestMatrix(a, 5, omega, options);
  ASSERT_TRUE(internal_draw.ok());
  ASSERT_TRUE(supplied.ok());
  EXPECT_MATRIX_NEAR(supplied->u, internal_draw->u, 0.0);
  EXPECT_VECTOR_NEAR(supplied->singular_values,
                     internal_draw->singular_values, 0.0);
  EXPECT_MATRIX_NEAR(supplied->v, internal_draw->v, 0.0);

  // Shape validation: rows must equal a.cols(), width within [1, min(m,n)].
  EXPECT_EQ(RandomizedSvdWithTestMatrix(a, 5, Matrix(79, 13), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(RandomizedSvdWithTestMatrix(a, 5, Matrix(80, 61), options)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SvdDispatchTest, LargeMatrixUsesGramPath) {
  rng::Engine engine(48);
  // min(m,n) = 200 > kSvdJacobiDispatchLimit; exercises the GramSvd
  // dispatch, whose noise floor EstimateRank accounts for.
  static_assert(200 > kSvdJacobiDispatchLimit);
  const Matrix a = RandomLowRank(engine, 200, 210, 10);
  const StatusOr<Index> rank = EstimateRank(a);
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 10);
}

}  // namespace
}  // namespace lrm::linalg
