#include "mechanism/matrix_mechanism.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "linalg/eigen_sym.h"
#include "workload/generators.h"
#include "workload/workload.h"

namespace lrm::mechanism {
namespace {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

MatrixMechanismOptions FastOptions() {
  MatrixMechanismOptions options;
  options.max_iterations = 25;
  return options;
}

TEST(MatrixMechanismTest, PreparesOnSmallWorkload) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w = workload::GenerateWRange(10, 16, 1);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  EXPECT_TRUE(mech.prepared());
}

TEST(MatrixMechanismTest, StrategyIsSymmetricPositiveDefinite) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w =
      workload::GenerateWDiscrete(8, 12, 2);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());

  const Matrix& a = mech.strategy();
  ASSERT_EQ(a.rows(), 12);
  ASSERT_EQ(a.cols(), 12);
  EXPECT_TRUE(IsSymmetric(a, 1e-8));
  const StatusOr<linalg::SymmetricEigenResult> eig =
      linalg::SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());
  EXPECT_GT(eig->eigenvalues[0], 0.0);  // ascending: smallest first
}

TEST(MatrixMechanismTest, AnswerShapeAndFiniteness) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w = workload::GenerateWRange(6, 10, 3);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  rng::Engine engine(1);
  const StatusOr<Vector> noisy = mech.Answer(Vector(10, 4.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  ASSERT_EQ(noisy->size(), 6);
  for (Index i = 0; i < 6; ++i) EXPECT_TRUE(std::isfinite((*noisy)[i]));
}

TEST(MatrixMechanismTest, EmpiricalErrorMatchesAnalytic) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w = workload::GenerateWRange(5, 8, 4);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const double epsilon = 1.0;
  const auto analytic = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(analytic.has_value());

  const Vector data{1.0, 3.0, 5.0, 7.0, 9.0, 11.0, 13.0, 15.0};
  const Vector exact = w->Answer(data);
  rng::Engine engine(2);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 4000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, epsilon, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(exact, *noisy));
  }
  EXPECT_NEAR(acc.Mean() / *analytic, 1.0, 0.15);
}

TEST(MatrixMechanismTest, UnbiasedRecovery) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w = workload::GenerateWRange(4, 8, 5);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const Vector data{2.0, 4.0, 6.0, 8.0, 1.0, 3.0, 5.0, 7.0};
  const Vector exact = w->Answer(data);
  rng::Engine engine(3);
  Vector mean(4);
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 2.0, engine);
    ASSERT_TRUE(noisy.ok());
    mean += *noisy;
  }
  mean /= static_cast<double>(reps);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(mean[i], exact[i], 0.1 * std::abs(exact[i]) + 2.0);
  }
}

// The paper's headline observation (§6.2): MM never beats plain
// noise-on-data in practice because of its L2-approximated objective and
// full-rank restriction.
TEST(MatrixMechanismTest, DoesNotBeatNoiseOnDataOnDiscreteWorkloads) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w =
      workload::GenerateWDiscrete(16, 24, 6);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const double mm_error = *mech.ExpectedSquaredError(0.1);
  const double nod_error = workload::ExpectedErrorNoiseOnData(*w, 0.1);
  EXPECT_GE(mm_error, 0.5 * nod_error);  // at best comparable, never ≪
}

TEST(MatrixMechanismTest, IdentityWorkloadStrategyStaysNearIdentity) {
  // For W = I the optimal strategy is (a scalar multiple of) the identity;
  // the optimizer must not wander into a worse full matrix.
  MatrixMechanism mech(FastOptions());
  workload::Workload w("identity", Matrix::Identity(6));
  ASSERT_TRUE(mech.Prepare(w).ok());
  const double mm_error = *mech.ExpectedSquaredError(1.0);
  const double identity_error = workload::ExpectedErrorNoiseOnData(w, 1.0);
  EXPECT_LE(mm_error, identity_error * 1.5);
}

TEST(MatrixMechanismTest, ErrorScalesWithInverseEpsilonSquared) {
  MatrixMechanism mech(FastOptions());
  const StatusOr<workload::Workload> w = workload::GenerateWRange(5, 8, 7);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  EXPECT_NEAR(*mech.ExpectedSquaredError(0.1) /
                  *mech.ExpectedSquaredError(1.0),
              100.0, 1e-6);
}

}  // namespace
}  // namespace lrm::mechanism
