// Contract tests every Mechanism implementation must satisfy, run
// parameterized over all six mechanisms in the library. These guard the
// interface invariants the eval harness and the privacy argument rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>

#include "core/low_rank_mechanism.h"
#include "eval/metrics.h"
#include "mechanism/hierarchical.h"
#include "mechanism/laplace.h"
#include "mechanism/matrix_mechanism.h"
#include "mechanism/wavelet.h"
#include "tests/support/matchers.h"
#include "workload/generators.h"

namespace lrm {
namespace {

using linalg::Index;
using linalg::Vector;

struct MechanismCase {
  std::string name;
  std::function<std::unique_ptr<mechanism::Mechanism>()> make;
};

std::vector<MechanismCase> AllCases() {
  std::vector<MechanismCase> cases;
  cases.push_back({"NOD", [] {
                     return std::make_unique<
                         mechanism::NoiseOnDataMechanism>();
                   }});
  cases.push_back({"NOR", [] {
                     return std::make_unique<
                         mechanism::NoiseOnResultsMechanism>();
                   }});
  cases.push_back({"WM", [] {
                     return std::make_unique<mechanism::WaveletMechanism>();
                   }});
  cases.push_back({"HM", [] {
                     return std::make_unique<
                         mechanism::HierarchicalMechanism>();
                   }});
  cases.push_back({"MM", [] {
                     mechanism::MatrixMechanismOptions options;
                     options.max_iterations = 10;
                     return std::make_unique<mechanism::MatrixMechanism>(
                         options);
                   }});
  cases.push_back({"LRM", [] {
                     core::LowRankMechanismOptions options;
                     options.decomposition.gamma = 0.01;
                     return std::make_unique<core::LowRankMechanism>(
                         options);
                   }});
  return cases;
}

class MechanismContractTest
    : public ::testing::TestWithParam<MechanismCase> {
 protected:
  workload::Workload SmallWorkload() {
    auto w = workload::GenerateWRange(6, 16, 77);
    LRM_CHECK(w.ok());
    return *std::move(w);
  }
};

TEST_P(MechanismContractTest, AnswerBeforePrepareIsFailedPrecondition) {
  auto mech = GetParam().make();
  rng::Engine engine(1);
  EXPECT_EQ(mech->Answer(Vector(16, 1.0), 1.0, engine).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_P(MechanismContractTest, EmptyWorkloadRejected) {
  auto mech = GetParam().make();
  EXPECT_EQ(mech->Prepare(workload::Workload("empty", linalg::Matrix()))
                .code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(mech->prepared());
}

TEST_P(MechanismContractTest, WrongDataDimensionRejected) {
  auto mech = GetParam().make();
  ASSERT_TRUE(mech->Prepare(SmallWorkload()).ok());
  rng::Engine engine(2);
  EXPECT_EQ(mech->Answer(Vector(7, 0.0), 1.0, engine).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_P(MechanismContractTest, NonPositiveEpsilonRejected) {
  auto mech = GetParam().make();
  ASSERT_TRUE(mech->Prepare(SmallWorkload()).ok());
  rng::Engine engine(3);
  EXPECT_FALSE(mech->Answer(Vector(16, 1.0), 0.0, engine).ok());
  EXPECT_FALSE(mech->Answer(Vector(16, 1.0), -2.0, engine).ok());
}

TEST_P(MechanismContractTest, NonFiniteEpsilonRejected) {
  // Regression: `epsilon <= 0.0` is false for NaN, so ε = NaN used to flow
  // into sensitivity/ε and come back as all-NaN "answers"; ε = +Inf scaled
  // the noise to zero — a silent noiseless release of the data.
  auto mech = GetParam().make();
  ASSERT_TRUE(mech->Prepare(SmallWorkload()).ok());
  rng::Engine engine(8);
  const Vector data(16, 1.0);
  for (const double eps :
       {std::numeric_limits<double>::quiet_NaN(),
        std::numeric_limits<double>::infinity(),
        -std::numeric_limits<double>::infinity()}) {
    const auto noisy = mech->Answer(data, eps, engine);
    EXPECT_EQ(noisy.status().code(), StatusCode::kInvalidArgument)
        << GetParam().name << " accepted epsilon = " << eps;
  }
}

TEST_P(MechanismContractTest, FailedRePrepareKeepsPreviousBinding) {
  // Regression: a failed re-Prepare used to leave workload_handle() bound
  // to the *rejected* workload while prepared() was false — a cache
  // fingerprinting mechanisms by their handle would have associated this
  // mechanism with a workload it never prepared. A rejected argument must
  // leave the previous successful binding fully usable.
  auto mech = GetParam().make();
  ASSERT_TRUE(mech->Prepare(SmallWorkload()).ok());
  const auto previous = mech->workload_handle();
  ASSERT_NE(previous, nullptr);

  linalg::Matrix poisoned(4, 16, 1.0);
  poisoned(1, 3) = std::numeric_limits<double>::quiet_NaN();
  const auto bad =
      std::make_shared<const workload::Workload>("poisoned",
                                                 std::move(poisoned));
  EXPECT_EQ(mech->Prepare(bad).code(), StatusCode::kInvalidArgument);

  EXPECT_TRUE(mech->prepared()) << GetParam().name;
  EXPECT_EQ(mech->workload_handle().get(), previous.get())
      << GetParam().name << " rebound to a workload it never prepared";
  rng::Engine engine(9);
  const auto noisy = mech->Answer(Vector(16, 1.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok()) << GetParam().name;
  EXPECT_EQ(noisy->size(), 6);
}

TEST_P(MechanismContractTest, AnswerHasOneEntryPerQuery) {
  auto mech = GetParam().make();
  ASSERT_TRUE(mech->Prepare(SmallWorkload()).ok());
  rng::Engine engine(4);
  const auto noisy = mech->Answer(Vector(16, 3.0), 0.5, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 6);
  for (Index i = 0; i < noisy->size(); ++i) {
    EXPECT_TRUE(std::isfinite((*noisy)[i])) << GetParam().name;
  }
}

TEST_P(MechanismContractTest, DeterministicGivenEngineState) {
  auto m1 = GetParam().make();
  auto m2 = GetParam().make();
  const workload::Workload w = SmallWorkload();
  ASSERT_TRUE(m1->Prepare(w).ok());
  ASSERT_TRUE(m2->Prepare(w).ok());
  rng::Engine e1(42), e2(42);
  const auto a = m1->Answer(Vector(16, 2.0), 1.0, e1);
  const auto b = m2->Answer(Vector(16, 2.0), 1.0, e2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_VECTOR_NEAR(*a, *b, 0.0) << GetParam().name;
}

TEST_P(MechanismContractTest, ApproximatelyUnbiased) {
  auto mech = GetParam().make();
  const workload::Workload w = SmallWorkload();
  ASSERT_TRUE(mech->Prepare(w).ok());
  Vector data(16);
  for (Index i = 0; i < 16; ++i) data[i] = 10.0 + static_cast<double>(i);
  const Vector exact = w.Answer(data);
  rng::Engine engine(5);
  Vector mean(6);
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    const auto noisy = mech->Answer(data, 2.0, engine);
    ASSERT_TRUE(noisy.ok());
    mean += *noisy;
  }
  mean /= static_cast<double>(reps);
  for (Index i = 0; i < 6; ++i) {
    EXPECT_NEAR(mean[i], exact[i], 0.05 * std::abs(exact[i]) + 2.0)
        << GetParam().name << " query " << i;
  }
}

TEST_P(MechanismContractTest, MoreBudgetNeverHurts) {
  auto mech = GetParam().make();
  const workload::Workload w = SmallWorkload();
  ASSERT_TRUE(mech->Prepare(w).ok());
  const Vector data(16, 50.0);
  const Vector exact = w.Answer(data);
  rng::Engine e1(6), e2(6);
  eval::ErrorAccumulator strict, loose;
  for (int rep = 0; rep < 600; ++rep) {
    const auto a = mech->Answer(data, 0.05, e1);
    const auto b = mech->Answer(data, 5.0, e2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    strict.Add(eval::TotalSquaredError(exact, *a));
    loose.Add(eval::TotalSquaredError(exact, *b));
  }
  EXPECT_GT(strict.Mean(), loose.Mean()) << GetParam().name;
}

TEST_P(MechanismContractTest, RePrepareRebindsCleanly) {
  auto mech = GetParam().make();
  ASSERT_TRUE(mech->Prepare(SmallWorkload()).ok());
  const auto other = workload::GenerateWRange(3, 8, 99);
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(mech->Prepare(*other).ok());
  rng::Engine engine(7);
  const auto noisy = mech->Answer(Vector(8, 1.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 3);
}

INSTANTIATE_TEST_SUITE_P(
    AllMechanisms, MechanismContractTest, ::testing::ValuesIn(AllCases()),
    [](const ::testing::TestParamInfo<MechanismCase>& info) {
      return info.param.name;
    });

TEST_P(MechanismContractTest, SharedWorkloadPrepareSharesStorage) {
  // Sweeps fan one (possibly huge) W out to several mechanisms; the
  // shared-handle overload must bind the same object, not deep-copy it.
  const auto w = std::make_shared<const workload::Workload>(SmallWorkload());
  auto m1 = GetParam().make();
  auto m2 = GetParam().make();
  ASSERT_TRUE(m1->Prepare(w).ok());
  ASSERT_TRUE(m2->Prepare(w).ok());
  EXPECT_EQ(m1->workload_handle().get(), w.get());
  EXPECT_EQ(m2->workload_handle().get(), w.get());
  EXPECT_EQ(w.use_count(), 3);

  rng::Engine engine(11);
  const auto noisy = m1->Answer(Vector(16, 1.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 6);
}

TEST_P(MechanismContractTest, MoveOverloadPreparesWithoutCopy) {
  auto mech = GetParam().make();
  workload::Workload w = SmallWorkload();
  const double* storage = w.matrix().data();
  ASSERT_TRUE(mech->Prepare(std::move(w)).ok());
  // The moved-from matrix's storage now lives inside the mechanism.
  EXPECT_EQ(mech->workload_handle()->matrix().data(), storage);
  rng::Engine engine(12);
  EXPECT_TRUE(mech->Answer(Vector(16, 1.0), 1.0, engine).ok());
}

TEST(MechanismWorkloadHandleTest, NullHandleRejected) {
  mechanism::NoiseOnDataMechanism mech;
  EXPECT_EQ(
      mech.Prepare(std::shared_ptr<const workload::Workload>()).code(),
      StatusCode::kInvalidArgument);
  EXPECT_FALSE(mech.prepared());
}

}  // namespace
}  // namespace lrm
