#include "mechanism/laplace.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "eval/metrics.h"
#include "tests/support/matchers.h"
#include "tests/support/statistics.h"
#include "workload/generators.h"

namespace lrm::mechanism {
namespace {

using linalg::Matrix;
using linalg::Vector;

workload::Workload IntroWorkload() {
  return workload::Workload("intro", Matrix{{1.0, 1.0, 1.0, 1.0},
                                            {1.0, 1.0, 0.0, 0.0},
                                            {0.0, 0.0, 1.0, 1.0}});
}

TEST(MechanismContractTest, AnswerBeforePrepareFails) {
  NoiseOnDataMechanism mech;
  rng::Engine engine(1);
  EXPECT_EQ(mech.Answer(Vector{1.0}, 1.0, engine).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(mech.prepared());
}

TEST(MechanismContractTest, RejectsEmptyWorkload) {
  NoiseOnDataMechanism mech;
  EXPECT_EQ(mech.Prepare(workload::Workload("empty", Matrix())).code(),
            StatusCode::kInvalidArgument);
}

TEST(MechanismContractTest, RejectsMismatchedData) {
  NoiseOnDataMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  rng::Engine engine(2);
  EXPECT_EQ(mech.Answer(Vector{1.0, 2.0}, 1.0, engine).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(MechanismContractTest, RejectsNonPositiveEpsilon) {
  NoiseOnDataMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  rng::Engine engine(3);
  const Vector data{1.0, 2.0, 3.0, 4.0};
  EXPECT_EQ(mech.Answer(data, 0.0, engine).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(mech.Answer(data, -1.0, engine).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(NoiseOnDataTest, AnswerHasRightShapeAndIsUnbiasedish) {
  NoiseOnDataMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Vector data{100.0, 50.0, 80.0, 20.0};
  const Vector exact = IntroWorkload().Answer(data);

  rng::Engine engine(4);
  const int reps = 4000;
  std::vector<std::vector<double>> samples(3);
  for (int rep = 0; rep < reps; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 1.0, engine);
    ASSERT_TRUE(noisy.ok());
    ASSERT_EQ(noisy->size(), 3);
    for (linalg::Index i = 0; i < 3; ++i) samples[i].push_back((*noisy)[i]);
  }
  // Paper §1: NOD per-query variances for the intro workload are 8/ε², 4/ε²,
  // 4/ε² at ε = 1.
  const double stddevs[] = {std::sqrt(8.0), 2.0, 2.0};
  for (linalg::Index i = 0; i < 3; ++i) {
    EXPECT_SAMPLE_MEAN_NEAR(samples[i], exact[i], stddevs[i], 6.0);
    EXPECT_SAMPLE_VARIANCE_NEAR(samples[i], stddevs[i] * stddevs[i], 0.15);
  }
}

// Paper §1 works out NOD per-query variances 8/ε², 4/ε², 4/ε² for the intro
// workload: total expected squared error 16/ε². Empirical must match.
TEST(NoiseOnDataTest, EmpiricalErrorMatchesAnalyticFormula) {
  NoiseOnDataMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double epsilon = 1.0;
  const auto analytic = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(analytic.has_value());
  EXPECT_DOUBLE_EQ(*analytic, 16.0);

  const Vector data{10.0, 20.0, 30.0, 40.0};
  const Vector exact = IntroWorkload().Answer(data);
  rng::Engine engine(5);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 6000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, epsilon, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(exact, *noisy));
  }
  EXPECT_NEAR(acc.Mean() / *analytic, 1.0, 0.1);
}

TEST(NoiseOnResultsTest, EmpiricalErrorMatchesAnalyticFormula) {
  NoiseOnResultsMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double epsilon = 0.5;
  const auto analytic = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(analytic.has_value());
  // 2·m·Δ'²/ε² = 2·3·4/0.25 = 96.
  EXPECT_DOUBLE_EQ(*analytic, 96.0);

  const Vector data{10.0, 20.0, 30.0, 40.0};
  const Vector exact = IntroWorkload().Answer(data);
  rng::Engine engine(6);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 6000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, epsilon, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(exact, *noisy));
  }
  EXPECT_NEAR(acc.Mean() / *analytic, 1.0, 0.1);
}

TEST(LaplaceMechanismsTest, ErrorScalesWithInverseEpsilonSquared) {
  NoiseOnDataMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const double e1 = *mech.ExpectedSquaredError(1.0);
  const double e01 = *mech.ExpectedSquaredError(0.1);
  EXPECT_NEAR(e01 / e1, 100.0, 1e-9);
}

TEST(LaplaceMechanismsTest, ExpectedErrorUnavailableBeforePrepare) {
  NoiseOnDataMechanism nod;
  NoiseOnResultsMechanism nor;
  EXPECT_FALSE(nod.ExpectedSquaredError(1.0).has_value());
  EXPECT_FALSE(nor.ExpectedSquaredError(1.0).has_value());
}

TEST(LaplaceMechanismsTest, NamesMatchPaperLabels) {
  EXPECT_EQ(NoiseOnDataMechanism().name(), "LM");
  EXPECT_EQ(NoiseOnResultsMechanism().name(), "NOR");
}

TEST(LaplaceMechanismsTest, DeterministicGivenSameEngineState) {
  NoiseOnDataMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const Vector data{1.0, 2.0, 3.0, 4.0};
  rng::Engine e1(42), e2(42);
  const StatusOr<Vector> a = mech.Answer(data, 1.0, e1);
  const StatusOr<Vector> b = mech.Answer(data, 1.0, e2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_VECTOR_NEAR(*a, *b, 0.0);
}

TEST(LaplaceMechanismsTest, RePrepareSwitchesWorkload) {
  NoiseOnResultsMechanism mech;
  ASSERT_TRUE(mech.Prepare(IntroWorkload()).ok());
  const StatusOr<workload::Workload> bigger =
      workload::GenerateWRange(8, 16, 9);
  ASSERT_TRUE(bigger.ok());
  ASSERT_TRUE(mech.Prepare(*bigger).ok());
  rng::Engine engine(7);
  const StatusOr<Vector> noisy =
      mech.Answer(Vector(16, 1.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 8);
}

}  // namespace
}  // namespace lrm::mechanism
