// Deeper validation of the wavelet mechanism's analytic error machinery:
// the O(n)-per-row adjoint trick in WaveletMechanism::PrepareImpl must
// agree with the brute-force dense computation, and the mechanism must
// exhibit Privelet's polylogarithmic range-query error growth.

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/matrix.h"
#include "mechanism/wavelet.h"
#include "workload/generators.h"
#include "workload/workload.h"

namespace lrm::mechanism {
namespace {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

// Dense reference: build H⁻¹ column by column via InverseHaarTransform,
// form G = W·H⁻¹, and sum G²·Var per coefficient.
double BruteForceExpectedError(const workload::Workload& w, double epsilon) {
  const Index n = w.domain_size();
  const Index big_n = NextPowerOfTwo(n);
  const double rho = HaarGeneralizedSensitivity(big_n);

  // H⁻¹ as a dense matrix (big_n × big_n).
  Matrix h_inv(big_n, big_n);
  for (Index c = 0; c < big_n; ++c) {
    Vector e(big_n);
    e[c] = 1.0;
    const Vector column = InverseHaarTransform(e);
    for (Index i = 0; i < big_n; ++i) h_inv(i, c) = column[i];
  }

  double total = 0.0;
  for (Index row = 0; row < w.num_queries(); ++row) {
    for (Index c = 0; c < big_n; ++c) {
      double g = 0.0;
      for (Index j = 0; j < n; ++j) {
        g += w.matrix()(row, j) * h_inv(j, c);
      }
      const double scale =
          rho / (epsilon * HaarCoefficientWeight(c, big_n));
      total += g * g * 2.0 * scale * scale;
    }
  }
  return total;
}

class WaveletAnalyticTest : public ::testing::TestWithParam<int> {};

TEST_P(WaveletAnalyticTest, AdjointTrickMatchesBruteForce) {
  const int seed = GetParam();
  const auto w = workload::GenerateWRange(7, 20, seed);  // non-power-of-2
  ASSERT_TRUE(w.ok());
  WaveletMechanism mech;
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const double epsilon = 0.7;
  const auto fast = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(fast.has_value());
  const double reference = BruteForceExpectedError(*w, epsilon);
  EXPECT_NEAR(*fast / reference, 1.0, 1e-9);
}

TEST_P(WaveletAnalyticTest, AdjointTrickMatchesBruteForceOnDenseWorkload) {
  const int seed = GetParam();
  const auto w = workload::GenerateWDiscrete(5, 16, seed);
  ASSERT_TRUE(w.ok());
  WaveletMechanism mech;
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const auto fast = mech.ExpectedSquaredError(1.0);
  ASSERT_TRUE(fast.has_value());
  EXPECT_NEAR(*fast / BruteForceExpectedError(*w, 1.0), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WaveletAnalyticTest,
                         ::testing::Values(1, 2, 3));

TEST(WaveletPolylogTest, FullRangeQueryErrorGrowsPolylogarithmically) {
  // Privelet's headline: a range query's noise variance is O(log³ n),
  // versus Θ(n) for noise-on-data. Doubling n must multiply the error of
  // the all-ones query by ~(log 2n / log n)³ — far less than 2.
  double previous = 0.0;
  for (Index n : {64, 128, 256, 512, 1024}) {
    workload::Workload w("full", Matrix(1, n, 1.0));
    WaveletMechanism mech;
    ASSERT_TRUE(mech.Prepare(w).ok());
    const double error = *mech.ExpectedSquaredError(1.0);
    if (previous > 0.0) {
      EXPECT_LT(error / previous, 1.6) << "n=" << n;
    }
    previous = error;
  }
}

TEST(WaveletPolylogTest, NoiseOnDataGrowsLinearlyOnSameQuery) {
  // Contrast for the test above.
  for (Index n : {64, 128}) {
    workload::Workload w("full", Matrix(1, n, 1.0));
    const double ratio =
        workload::ExpectedErrorNoiseOnData(
            workload::Workload("d", Matrix(1, 2 * n, 1.0)), 1.0) /
        workload::ExpectedErrorNoiseOnData(w, 1.0);
    EXPECT_NEAR(ratio, 2.0, 1e-12);
  }
}

TEST(WaveletAnalyticTest, PaddingKeepsAnalyticErrorConsistent) {
  // A domain of 17 pads to 32; the analytic error must describe the padded
  // release exactly (validated empirically elsewhere) and be finite.
  const auto w = workload::GenerateWRange(4, 17, 9);
  ASSERT_TRUE(w.ok());
  WaveletMechanism mech;
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const auto error = mech.ExpectedSquaredError(0.5);
  ASSERT_TRUE(error.has_value());
  EXPECT_TRUE(std::isfinite(*error));
  EXPECT_NEAR(*error / BruteForceExpectedError(*w, 0.5), 1.0, 1e-9);
}

}  // namespace
}  // namespace lrm::mechanism
