#include "mechanism/wavelet.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "linalg/random_matrix.h"
#include "tests/support/matchers.h"
#include "workload/generators.h"

namespace lrm::mechanism {
namespace {

using linalg::Index;
using linalg::Vector;

TEST(HaarTransformTest, KnownSmallTransform) {
  // x = (5, 1): base = 3, diff = 2.
  const Vector c = HaarTransform(Vector{5.0, 1.0});
  EXPECT_NEAR(c[0], 3.0, 1e-12);
  EXPECT_NEAR(c[1], 2.0, 1e-12);
}

TEST(HaarTransformTest, SizeFourLayout) {
  // x = (4, 2, 6, 0): averages (3, 3) → base 3, root diff 0;
  // level-1 diffs: (4−2)/2 = 1 and (6−0)/2 = 3.
  const Vector c = HaarTransform(Vector{4.0, 2.0, 6.0, 0.0});
  EXPECT_NEAR(c[0], 3.0, 1e-12);
  EXPECT_NEAR(c[1], 0.0, 1e-12);
  EXPECT_NEAR(c[2], 1.0, 1e-12);
  EXPECT_NEAR(c[3], 3.0, 1e-12);
}

class HaarRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(HaarRoundTripTest, InverseUndoesForward) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 17 + 1);
  const Vector x = linalg::RandomGaussianVector(engine, n) * 100.0;
  const Vector restored = InverseHaarTransform(HaarTransform(x));
  EXPECT_VECTOR_NEAR(restored, x, 1e-9);
}

TEST_P(HaarRoundTripTest, ForwardUndoesInverse) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 23 + 2);
  const Vector c = linalg::RandomGaussianVector(engine, n);
  const Vector round = HaarTransform(InverseHaarTransform(c));
  EXPECT_VECTOR_NEAR(round, c, 1e-9);
}

TEST_P(HaarRoundTripTest, TransformIsLinear) {
  const Index n = GetParam();
  rng::Engine engine(static_cast<std::uint64_t>(n) * 29 + 3);
  const Vector x = linalg::RandomGaussianVector(engine, n);
  const Vector y = linalg::RandomGaussianVector(engine, n);
  const Vector lhs = HaarTransform(x + y * 2.0);
  const Vector rhs = HaarTransform(x) + HaarTransform(y) * 2.0;
  EXPECT_VECTOR_NEAR(lhs, rhs, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, HaarRoundTripTest,
                         ::testing::Values(1, 2, 4, 8, 32, 128, 1024));

TEST(HaarWeightTest, WeightsFollowSubtreeSizes) {
  // n = 8: base weight 8; root diff (index 1) weight 8; level-1 (2, 3)
  // weight 4; level-2 (4..7) weight 2.
  EXPECT_DOUBLE_EQ(HaarCoefficientWeight(0, 8), 8.0);
  EXPECT_DOUBLE_EQ(HaarCoefficientWeight(1, 8), 8.0);
  EXPECT_DOUBLE_EQ(HaarCoefficientWeight(2, 8), 4.0);
  EXPECT_DOUBLE_EQ(HaarCoefficientWeight(3, 8), 4.0);
  for (Index i = 4; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(HaarCoefficientWeight(i, 8), 2.0);
  }
}

TEST(HaarWeightTest, GeneralizedSensitivityIsOnePlusLogN) {
  EXPECT_DOUBLE_EQ(HaarGeneralizedSensitivity(1), 1.0);
  EXPECT_DOUBLE_EQ(HaarGeneralizedSensitivity(2), 2.0);
  EXPECT_DOUBLE_EQ(HaarGeneralizedSensitivity(1024), 11.0);
}

TEST(HaarWeightTest, UnitChangeSensitivityHoldsCoefficientwise) {
  // Privelet's invariant: changing one count by 1 changes coefficient c by
  // at most 1/weight(c), so Σ weight·|Δc| = ρ.
  const Index n = 16;
  for (Index j = 0; j < n; ++j) {
    Vector x(n);
    Vector x2(n);
    x2[j] = 1.0;
    const Vector c1 = HaarTransform(x);
    const Vector c2 = HaarTransform(x2);
    double weighted_change = 0.0;
    for (Index i = 0; i < n; ++i) {
      weighted_change += HaarCoefficientWeight(i, n) * std::abs(c2[i] - c1[i]);
    }
    EXPECT_NEAR(weighted_change, HaarGeneralizedSensitivity(n), 1e-9)
        << "unit change at " << j;
  }
}

TEST(NextPowerOfTwoTest, RoundsUp) {
  EXPECT_EQ(NextPowerOfTwo(1), 1);
  EXPECT_EQ(NextPowerOfTwo(2), 2);
  EXPECT_EQ(NextPowerOfTwo(3), 4);
  EXPECT_EQ(NextPowerOfTwo(1000), 1024);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024);
}

TEST(WaveletMechanismTest, AnswersHaveRightShape) {
  WaveletMechanism mech;
  const StatusOr<workload::Workload> w = workload::GenerateWRange(12, 50, 3);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  rng::Engine engine(11);
  const StatusOr<Vector> noisy = mech.Answer(Vector(50, 2.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 12);
}

TEST(WaveletMechanismTest, NonPowerOfTwoDomainIsPadded) {
  WaveletMechanism mech;
  const StatusOr<workload::Workload> w = workload::GenerateWRange(5, 13, 5);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  rng::Engine engine(12);
  EXPECT_TRUE(mech.Answer(Vector(13, 1.0), 1.0, engine).ok());
}

TEST(WaveletMechanismTest, UnbiasedOverManyRuns) {
  WaveletMechanism mech;
  const StatusOr<workload::Workload> w = workload::GenerateWRange(4, 16, 7);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  rng::Engine engine(13);
  Vector data(16);
  for (Index i = 0; i < 16; ++i) data[i] = static_cast<double>(i * i);
  const Vector exact = w->Answer(data);
  Vector mean(4);
  const int reps = 3000;
  for (int rep = 0; rep < reps; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 2.0, engine);
    ASSERT_TRUE(noisy.ok());
    mean += *noisy;
  }
  mean /= static_cast<double>(reps);
  for (Index i = 0; i < 4; ++i) {
    EXPECT_NEAR(mean[i], exact[i], 0.12 * std::abs(exact[i]) + 2.0);
  }
}

TEST(WaveletMechanismTest, EmpiricalErrorMatchesAnalytic) {
  WaveletMechanism mech;
  const StatusOr<workload::Workload> w = workload::GenerateWRange(6, 32, 17);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  const double epsilon = 1.0;
  const auto analytic = mech.ExpectedSquaredError(epsilon);
  ASSERT_TRUE(analytic.has_value());
  ASSERT_GT(*analytic, 0.0);

  const Vector data(32, 5.0);
  const Vector exact = w->Answer(data);
  rng::Engine engine(14);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 4000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, epsilon, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(exact, *noisy));
  }
  EXPECT_NEAR(acc.Mean() / *analytic, 1.0, 0.15);
}

TEST(WaveletMechanismTest, BeatsNoiseOnDataForLargeRangeQueries) {
  // Privelet's raison d'être: long range queries see polylog noise instead
  // of linear-in-length noise.
  const Index n = 256;
  linalg::Matrix full_range(1, n, 1.0);  // one query summing everything
  workload::Workload w("full-range", std::move(full_range));

  WaveletMechanism wavelet;
  ASSERT_TRUE(wavelet.Prepare(w).ok());
  const double wavelet_error = *wavelet.ExpectedSquaredError(1.0);
  const double nod_error = workload::ExpectedErrorNoiseOnData(w, 1.0);
  EXPECT_LT(wavelet_error, nod_error / 2.0);
}

}  // namespace
}  // namespace lrm::mechanism
