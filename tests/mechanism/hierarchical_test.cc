#include "mechanism/hierarchical.h"

#include <gtest/gtest.h>

#include <cmath>

#include "eval/metrics.h"
#include "workload/generators.h"

namespace lrm::mechanism {
namespace {

using linalg::Index;
using linalg::Matrix;
using linalg::Vector;

// Workload whose rows are the unit counts themselves (identity), so the
// mechanism's output is directly the consistent histogram estimate.
workload::Workload IdentityWorkload(Index n) {
  return workload::Workload("identity", Matrix::Identity(n));
}

// A hierarchy-probing workload: for every internal interval of the binary
// tree over [0, n), one row summing it, plus all leaves.
workload::Workload TreeIntervalWorkload(Index n) {
  std::vector<std::pair<Index, Index>> intervals;
  for (Index width = n; width >= 1; width /= 2) {
    for (Index start = 0; start + width <= n; start += width) {
      intervals.emplace_back(start, start + width);
    }
  }
  Matrix w(static_cast<Index>(intervals.size()), n);
  for (Index i = 0; i < w.rows(); ++i) {
    for (Index j = intervals[static_cast<std::size_t>(i)].first;
         j < intervals[static_cast<std::size_t>(i)].second; ++j) {
      w(i, j) = 1.0;
    }
  }
  return workload::Workload("tree-intervals", std::move(w));
}

TEST(HierarchicalTest, RejectsBadFanout) {
  HierarchicalOptions options;
  options.fanout = 1;
  HierarchicalMechanism mech(options);
  EXPECT_EQ(mech.Prepare(IdentityWorkload(8)).code(),
            StatusCode::kInvalidArgument);
}

TEST(HierarchicalTest, AnswersHaveRightShape) {
  HierarchicalMechanism mech;
  ASSERT_TRUE(mech.Prepare(IdentityWorkload(16)).ok());
  rng::Engine engine(1);
  const StatusOr<Vector> noisy = mech.Answer(Vector(16, 3.0), 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 16);
}

TEST(HierarchicalTest, NonPowerOfTwoDomainIsPadded) {
  HierarchicalMechanism mech;
  ASSERT_TRUE(mech.Prepare(IdentityWorkload(11)).ok());
  rng::Engine engine(2);
  EXPECT_TRUE(mech.Answer(Vector(11, 1.0), 1.0, engine).ok());
}

TEST(HierarchicalTest, UnbiasedOverManyRuns) {
  HierarchicalMechanism mech;
  const workload::Workload w = IdentityWorkload(8);
  ASSERT_TRUE(mech.Prepare(w).ok());
  Vector data{10.0, 0.0, 5.0, 20.0, 0.0, 1.0, 7.0, 2.0};
  rng::Engine engine(3);
  Vector mean(8);
  const int reps = 4000;
  for (int rep = 0; rep < reps; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 2.0, engine);
    ASSERT_TRUE(noisy.ok());
    mean += *noisy;
  }
  mean /= static_cast<double>(reps);
  for (Index i = 0; i < 8; ++i) EXPECT_NEAR(mean[i], data[i], 0.25);
}

TEST(HierarchicalTest, ConstrainedInferenceReducesIntervalError) {
  // The whole point of Hay et al.'s consistency pass: interval queries get
  // strictly more accurate.
  const workload::Workload w = TreeIntervalWorkload(32);
  Vector data(32);
  for (Index i = 0; i < 32; ++i) data[i] = static_cast<double>((i * 13) % 40);
  const Vector exact = w.Answer(data);

  HierarchicalOptions with_inference;  // default: true
  HierarchicalOptions without_inference;
  without_inference.constrained_inference = false;

  HierarchicalMechanism smart(with_inference);
  HierarchicalMechanism naive(without_inference);
  ASSERT_TRUE(smart.Prepare(w).ok());
  ASSERT_TRUE(naive.Prepare(w).ok());

  rng::Engine e1(4), e2(4);
  eval::ErrorAccumulator smart_errors, naive_errors;
  for (int rep = 0; rep < 400; ++rep) {
    const StatusOr<Vector> a = smart.Answer(data, 1.0, e1);
    const StatusOr<Vector> b = naive.Answer(data, 1.0, e2);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    smart_errors.Add(eval::TotalSquaredError(exact, *a));
    naive_errors.Add(eval::TotalSquaredError(exact, *b));
  }
  EXPECT_LT(smart_errors.Mean(), naive_errors.Mean());
}

TEST(HierarchicalTest, LeafVarianceMatchesTreeHeightScaling) {
  // Without inference, each leaf estimate is the noisy leaf count: variance
  // 2·(levels/ε)². With n = 16 (5 levels) and ε = 1 that is 50.
  HierarchicalOptions options;
  options.constrained_inference = false;
  HierarchicalMechanism mech(options);
  const workload::Workload w = IdentityWorkload(16);
  ASSERT_TRUE(mech.Prepare(w).ok());
  const Vector data(16, 7.0);
  rng::Engine engine(5);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 4000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 1.0, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(w.Answer(data), *noisy));
  }
  const double per_leaf = acc.Mean() / 16.0;
  EXPECT_NEAR(per_leaf / 50.0, 1.0, 0.15);
}

TEST(HierarchicalTest, LargerFanoutShrinksTreeHeight) {
  // Fanout 4 over n = 16 gives 3 levels instead of 5; per-node noise drops.
  HierarchicalOptions quad;
  quad.fanout = 4;
  quad.constrained_inference = false;
  HierarchicalMechanism mech(quad);
  const workload::Workload w = IdentityWorkload(16);
  ASSERT_TRUE(mech.Prepare(w).ok());
  const Vector data(16, 1.0);
  rng::Engine engine(6);
  eval::ErrorAccumulator acc;
  for (int rep = 0; rep < 3000; ++rep) {
    const StatusOr<Vector> noisy = mech.Answer(data, 1.0, engine);
    ASSERT_TRUE(noisy.ok());
    acc.Add(eval::TotalSquaredError(w.Answer(data), *noisy));
  }
  // Variance 2·(3/ε)² = 18 per leaf.
  EXPECT_NEAR(acc.Mean() / 16.0 / 18.0, 1.0, 0.15);
}

TEST(HierarchicalTest, WorksOnGeneratedRangeWorkloads) {
  HierarchicalMechanism mech;
  const StatusOr<workload::Workload> w = workload::GenerateWRange(20, 64, 9);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(mech.Prepare(*w).ok());
  rng::Engine engine(7);
  const StatusOr<Vector> noisy = mech.Answer(Vector(64, 2.0), 0.5, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 20);
  for (Index i = 0; i < noisy->size(); ++i) {
    EXPECT_TRUE(std::isfinite((*noisy)[i]));
  }
}

TEST(HierarchicalTest, SingleBucketDomain) {
  HierarchicalMechanism mech;
  ASSERT_TRUE(mech.Prepare(IdentityWorkload(1)).ok());
  rng::Engine engine(8);
  const StatusOr<Vector> noisy = mech.Answer(Vector{5.0}, 1.0, engine);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 1);
}

}  // namespace
}  // namespace lrm::mechanism
