#include "rng/engine.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace lrm::rng {
namespace {

TEST(EngineTest, DeterministicForSameSeed) {
  Engine a(123);
  Engine b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(EngineTest, DifferentSeedsDiverge) {
  Engine a(1);
  Engine b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(EngineTest, ZeroSeedIsUsable) {
  // SplitMix64 seeding must avoid the all-zero state trap.
  Engine e(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 50; ++i) values.insert(e.Next());
  EXPECT_GT(values.size(), 45u);
}

TEST(EngineTest, NextDoubleInUnitInterval) {
  Engine e(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = e.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(EngineTest, NextDoubleRoughlyUniform) {
  Engine e(11);
  const int n = 100000;
  double sum = 0.0;
  int below_half = 0;
  for (int i = 0; i < n; ++i) {
    const double x = e.NextDouble();
    sum += x;
    if (x < 0.5) ++below_half;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(below_half) / n, 0.5, 0.01);
}

TEST(EngineTest, SplitStreamsAreDecorrelated) {
  Engine parent(99);
  Engine child1 = parent.Split();
  Engine child2 = parent.Split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (child1.Next() == child2.Next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(EngineTest, SplitIsDeterministic) {
  Engine p1(5);
  Engine p2(5);
  Engine c1 = p1.Split();
  Engine c2 = p2.Split();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(c1.Next(), c2.Next());
}

TEST(EngineTest, JumpChangesState) {
  Engine a(17);
  Engine b(17);
  b.Jump();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(EngineTest, SatisfiesUniformRandomBitGenerator) {
  static_assert(Engine::min() == 0);
  static_assert(Engine::max() == ~std::uint64_t{0});
  Engine e(3);
  const std::uint64_t v = e();  // operator()
  (void)v;
}

TEST(SplitMix64Test, KnownSequenceProperties) {
  std::uint64_t state = 0;
  const std::uint64_t first = SplitMix64(state);
  const std::uint64_t second = SplitMix64(state);
  EXPECT_NE(first, second);
  EXPECT_NE(first, 0u);
  // Reference value of SplitMix64 with seed 0 (widely published).
  std::uint64_t check = 0;
  EXPECT_EQ(SplitMix64(check), 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace lrm::rng
