#include "rng/distributions.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "rng/engine.h"
#include "tests/support/statistics.h"

namespace lrm::rng {
namespace {

TEST(UniformTest, WithinBounds) {
  Engine e(1);
  for (int i = 0; i < 10000; ++i) {
    const double x = SampleUniform(e, -3.0, 5.0);
    EXPECT_GE(x, -3.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(UniformIntTest, CoversFullRangeInclusive) {
  Engine e(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t x = SampleUniformInt(e, 0, 9);
    ASSERT_GE(x, 0);
    ASSERT_LE(x, 9);
    saw_lo |= (x == 0);
    saw_hi |= (x == 9);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(UniformIntTest, DegenerateRange) {
  Engine e(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SampleUniformInt(e, 4, 4), 4);
}

TEST(UniformIntTest, NegativeRange) {
  Engine e(4);
  for (int i = 0; i < 1000; ++i) {
    const std::int64_t x = SampleUniformInt(e, -5, -1);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, -1);
  }
}

TEST(BernoulliTest, MatchesProbability) {
  Engine e(5);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (SampleBernoulli(e, 0.02)) ++hits;
  }
  // p = 0.02: stderr ≈ sqrt(0.02·0.98/1e5) ≈ 4.4e-4; allow 5 sigma.
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.02, 0.0025);
}

TEST(BernoulliTest, ExtremeProbabilities) {
  Engine e(6);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(SampleBernoulli(e, 0.0));
    EXPECT_TRUE(SampleBernoulli(e, 1.0));
  }
}

TEST(GaussianTest, FirstTwoMoments) {
  Engine e(7);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = SampleGaussian(e);
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

// The privacy-critical property: Laplace(b) must have mean 0 and variance
// 2b² (paper §3.1 relies on Var[Lap(s)] = 2s²). Checked across scales.
class LaplaceVarianceTest : public ::testing::TestWithParam<double> {};

TEST_P(LaplaceVarianceTest, MeanZeroVarianceTwoBSquared) {
  const double scale = GetParam();
  Engine e(static_cast<std::uint64_t>(scale * 1000) + 11);
  const int n = 200000;
  std::vector<double> samples(n);
  for (double& x : samples) x = SampleLaplace(e, scale);
  // Var[Lap(b)] = 2b², so stddev = sqrt(2)·b.
  EXPECT_SAMPLE_MEAN_NEAR(samples, 0.0, std::sqrt(2.0) * scale, 6.0);
  EXPECT_SAMPLE_VARIANCE_NEAR(samples, 2.0 * scale * scale, 0.06);
}

INSTANTIATE_TEST_SUITE_P(Scales, LaplaceVarianceTest,
                         ::testing::Values(0.1, 0.5, 1.0, 4.0, 25.0));

TEST(LaplaceTest, ZeroScaleIsNoiseless) {
  Engine e(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(SampleLaplace(e, 0.0), 0.0);
}

TEST(LaplaceTest, SymmetricAroundZero) {
  Engine e(17);
  const int n = 100000;
  int positive = 0;
  for (int i = 0; i < n; ++i) {
    if (SampleLaplace(e, 2.0) > 0.0) ++positive;
  }
  EXPECT_NEAR(static_cast<double>(positive) / n, 0.5, 0.01);
}

TEST(LaplaceVectorTest, SizeAndIndependence) {
  Engine e(19);
  const std::vector<double> v = SampleLaplaceVector(e, 1000, 1.0);
  ASSERT_EQ(v.size(), 1000u);
  // Neighboring draws should be uncorrelated.
  double corr = 0.0;
  for (std::size_t i = 0; i + 1 < v.size(); ++i) corr += v[i] * v[i + 1];
  corr /= static_cast<double>(v.size() - 1);
  EXPECT_NEAR(corr, 0.0, 0.5);
}

TEST(ExponentialTest, MeanIsOneOverLambda) {
  Engine e(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += SampleExponential(e, 4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(ZipfTest, PmfSumsToOne) {
  const ZipfSampler zipf(100, 1.5);
  double total = 0.0;
  for (std::size_t k = 1; k <= 100; ++k) total += zipf.Pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ZipfTest, PmfIsDecreasing) {
  const ZipfSampler zipf(50, 1.2);
  for (std::size_t k = 2; k <= 50; ++k) {
    EXPECT_LE(zipf.Pmf(k), zipf.Pmf(k - 1));
  }
}

TEST(ZipfTest, SamplesMatchPmf) {
  const ZipfSampler zipf(10, 1.0);
  Engine e(29);
  const int n = 200000;
  std::vector<int> histogram(11, 0);
  for (int i = 0; i < n; ++i) {
    const std::size_t k = zipf.Sample(e);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 10u);
    ++histogram[k];
  }
  for (std::size_t k = 1; k <= 10; ++k) {
    EXPECT_NEAR(static_cast<double>(histogram[k]) / n, zipf.Pmf(k), 0.01)
        << "k=" << k;
  }
}

TEST(ZipfTest, SupportSizeOne) {
  const ZipfSampler zipf(1, 2.0);
  Engine e(31);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(e), 1u);
  EXPECT_NEAR(zipf.Pmf(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace lrm::rng
