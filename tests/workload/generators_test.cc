#include "workload/generators.h"

#include <gtest/gtest.h>

#include "linalg/svd.h"

namespace lrm::workload {
namespace {

using linalg::Index;

TEST(WDiscreteTest, EntriesArePlusMinusOne) {
  const StatusOr<Workload> w = GenerateWDiscrete(20, 50, 1);
  ASSERT_TRUE(w.ok());
  for (Index i = 0; i < w->num_queries(); ++i) {
    for (Index j = 0; j < w->domain_size(); ++j) {
      const double value = w->matrix()(i, j);
      EXPECT_TRUE(value == 1.0 || value == -1.0);
    }
  }
}

TEST(WDiscreteTest, PositiveFractionNearProbability) {
  const StatusOr<Workload> w = GenerateWDiscrete(100, 500, 2);
  ASSERT_TRUE(w.ok());
  Index positives = 0;
  for (Index i = 0; i < w->num_queries(); ++i) {
    for (Index j = 0; j < w->domain_size(); ++j) {
      if (w->matrix()(i, j) == 1.0) ++positives;
    }
  }
  const double fraction =
      static_cast<double>(positives) / static_cast<double>(100 * 500);
  EXPECT_NEAR(fraction, 0.02, 0.005);  // paper default p = 0.02
}

TEST(WDiscreteTest, CustomProbability) {
  WDiscreteOptions options;
  options.positive_probability = 0.5;
  const StatusOr<Workload> w = GenerateWDiscrete(50, 200, 3, options);
  ASSERT_TRUE(w.ok());
  Index positives = 0;
  for (Index i = 0; i < 50; ++i) {
    for (Index j = 0; j < 200; ++j) {
      if (w->matrix()(i, j) == 1.0) ++positives;
    }
  }
  EXPECT_NEAR(static_cast<double>(positives) / 10000.0, 0.5, 0.05);
}

TEST(WDiscreteTest, RejectsInvalidArguments) {
  EXPECT_FALSE(GenerateWDiscrete(0, 10, 1).ok());
  EXPECT_FALSE(GenerateWDiscrete(10, 0, 1).ok());
  WDiscreteOptions bad;
  bad.positive_probability = 1.5;
  EXPECT_FALSE(GenerateWDiscrete(10, 10, 1, bad).ok());
}

TEST(WRangeTest, RowsAreContiguousRanges) {
  const StatusOr<Workload> w = GenerateWRange(50, 64, 4);
  ASSERT_TRUE(w.ok());
  for (Index i = 0; i < w->num_queries(); ++i) {
    // Each row must be 0…0 1…1 0…0 with at least one 1.
    Index first = -1, last = -1;
    for (Index j = 0; j < w->domain_size(); ++j) {
      const double value = w->matrix()(i, j);
      ASSERT_TRUE(value == 0.0 || value == 1.0);
      if (value == 1.0) {
        if (first < 0) first = j;
        last = j;
      }
    }
    ASSERT_GE(first, 0) << "empty range in row " << i;
    for (Index j = first; j <= last; ++j) {
      EXPECT_EQ(w->matrix()(i, j), 1.0) << "hole in range at row " << i;
    }
  }
}

TEST(WRangeTest, SensitivityGrowsWithQueries) {
  // More overlapping ranges → larger column sums.
  const StatusOr<Workload> small = GenerateWRange(10, 64, 5);
  const StatusOr<Workload> large = GenerateWRange(200, 64, 5);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(large->L1Sensitivity(), small->L1Sensitivity());
}

TEST(WRelatedTest, RankEqualsBaseRank) {
  const StatusOr<Workload> w = GenerateWRelated(30, 40, 6, 6);
  ASSERT_TRUE(w.ok());
  const StatusOr<Index> rank = linalg::EstimateRank(w->matrix());
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 6);
}

TEST(WRelatedTest, RankSaturatesAtMinDimension) {
  const StatusOr<Workload> w = GenerateWRelated(10, 40, 25, 7);
  ASSERT_TRUE(w.ok());
  const StatusOr<Index> rank = linalg::EstimateRank(w->matrix());
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 10);  // min(m, n, s) = m = 10
}

TEST(WRelatedTest, RejectsInvalidBaseRank) {
  EXPECT_FALSE(GenerateWRelated(10, 10, 0, 1).ok());
}

class GeneratorDeterminismTest
    : public ::testing::TestWithParam<WorkloadKind> {};

TEST_P(GeneratorDeterminismTest, SameSeedSameWorkload) {
  const StatusOr<Workload> a = GenerateWorkload(GetParam(), 16, 32, 4, 77);
  const StatusOr<Workload> b = GenerateWorkload(GetParam(), 16, 32, 4, 77);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(linalg::ApproxEqual(a->matrix(), b->matrix(), 0.0));
}

TEST_P(GeneratorDeterminismTest, DifferentSeedsDiffer) {
  const StatusOr<Workload> a = GenerateWorkload(GetParam(), 16, 32, 4, 1);
  const StatusOr<Workload> b = GenerateWorkload(GetParam(), 16, 32, 4, 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(linalg::ApproxEqual(a->matrix(), b->matrix(), 1e-12));
}

TEST_P(GeneratorDeterminismTest, ShapeMatchesRequest) {
  const StatusOr<Workload> w = GenerateWorkload(GetParam(), 16, 32, 4, 3);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_queries(), 16);
  EXPECT_EQ(w->domain_size(), 32);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, GeneratorDeterminismTest,
                         ::testing::Values(WorkloadKind::kWDiscrete,
                                           WorkloadKind::kWRange,
                                           WorkloadKind::kWRelated));

TEST(PrefixSumsTest, LowerTriangularStructure) {
  const StatusOr<Workload> w = GeneratePrefixSums(5);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_queries(), 5);
  for (Index i = 0; i < 5; ++i) {
    for (Index j = 0; j < 5; ++j) {
      EXPECT_EQ(w->matrix()(i, j), j <= i ? 1.0 : 0.0);
    }
  }
  // Every count appears in the suffix of queries: sensitivity n (first
  // column: all n queries contain x_1).
  EXPECT_DOUBLE_EQ(w->L1Sensitivity(), 5.0);
}

TEST(PrefixSumsTest, FullRank) {
  const StatusOr<Workload> w = GeneratePrefixSums(12);
  ASSERT_TRUE(w.ok());
  const StatusOr<Index> rank = linalg::EstimateRank(w->matrix());
  ASSERT_TRUE(rank.ok());
  EXPECT_EQ(*rank, 12);  // the prefix matrix is invertible
}

TEST(AllRangesTest, CountAndStructure) {
  const StatusOr<Workload> w = GenerateAllRanges(4);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->num_queries(), 10);  // 4·5/2
  // Each row is one contiguous run of ones; all rows distinct.
  for (Index i = 0; i < w->num_queries(); ++i) {
    Index first = -1, last = -1;
    for (Index j = 0; j < 4; ++j) {
      if (w->matrix()(i, j) == 1.0) {
        if (first < 0) first = j;
        last = j;
      } else {
        EXPECT_EQ(w->matrix()(i, j), 0.0);
      }
    }
    ASSERT_GE(first, 0);
    for (Index j = first; j <= last; ++j) {
      EXPECT_EQ(w->matrix()(i, j), 1.0);
    }
  }
}

TEST(AllRangesTest, MiddleColumnHasMaxSensitivity) {
  // x_j appears in (j+1)·(n−j) ranges; the middle column maximizes it.
  const StatusOr<Workload> w = GenerateAllRanges(5);
  ASSERT_TRUE(w.ok());
  EXPECT_DOUBLE_EQ(w->L1Sensitivity(), 9.0);  // 3·3 at the center
}

TEST(ExtendedWorkloadsTest, RejectBadSizes) {
  EXPECT_FALSE(GeneratePrefixSums(0).ok());
  EXPECT_FALSE(GenerateAllRanges(-1).ok());
}

TEST(WorkloadKindTest, NamesMatchPaper) {
  EXPECT_EQ(WorkloadKindName(WorkloadKind::kWDiscrete), "WDiscrete");
  EXPECT_EQ(WorkloadKindName(WorkloadKind::kWRange), "WRange");
  EXPECT_EQ(WorkloadKindName(WorkloadKind::kWRelated), "WRelated");
}

}  // namespace
}  // namespace lrm::workload
