#include "workload/workload.h"

#include <gtest/gtest.h>

namespace lrm::workload {
namespace {

using linalg::Matrix;
using linalg::Vector;

Workload IntroWorkload() {
  // The paper's §1 example: q1 = q2 + q3 over four states.
  return Workload("intro", Matrix{{1.0, 1.0, 1.0, 1.0},
                                  {1.0, 1.0, 0.0, 0.0},
                                  {0.0, 0.0, 1.0, 1.0}});
}

TEST(WorkloadTest, DimensionsAndName) {
  const Workload w = IntroWorkload();
  EXPECT_EQ(w.name(), "intro");
  EXPECT_EQ(w.num_queries(), 3);
  EXPECT_EQ(w.domain_size(), 4);
}

TEST(WorkloadTest, AnswerComputesExactResults) {
  const Workload w = IntroWorkload();
  // Patient counts from Figure 1(b): NY, NJ, CA, WA.
  const Vector data{82700.0, 19000.0, 67000.0, 5900.0};
  const Vector answers = w.Answer(data);
  EXPECT_DOUBLE_EQ(answers[0], 174600.0);  // q1: all four states
  EXPECT_DOUBLE_EQ(answers[1], 101700.0);  // q2: NY + NJ
  EXPECT_DOUBLE_EQ(answers[2], 72900.0);   // q3: CA + WA
}

TEST(WorkloadTest, IntroExampleSensitivityIsTwo) {
  // §1: "the query set {q1, q2, q3} has a sensitivity of 2".
  EXPECT_DOUBLE_EQ(IntroWorkload().L1Sensitivity(), 2.0);
}

TEST(WorkloadTest, SubsetSensitivityIsOne) {
  // §1: "the sensitivity of the query set {q2, q3} is 1".
  const Workload w("subset", Matrix{{1.0, 1.0, 0.0, 0.0},
                                    {0.0, 0.0, 1.0, 1.0}});
  EXPECT_DOUBLE_EQ(w.L1Sensitivity(), 1.0);
}

TEST(WorkloadTest, SecondIntroExampleSensitivityIsFive) {
  // §1's harder example: a WA record affects q1 by 1 and q2, q3 by 2 each.
  const Workload w("intro2", Matrix{{0.0, 2.0, 1.0, 1.0},
                                    {0.0, 1.0, 0.0, 2.0},
                                    {1.0, 0.0, 2.0, 2.0}});
  EXPECT_DOUBLE_EQ(w.L1Sensitivity(), 5.0);
}

TEST(WorkloadTest, SquaredFrobeniusNorm) {
  const Workload w("f", Matrix{{1.0, -2.0}, {2.0, 0.0}});
  EXPECT_DOUBLE_EQ(w.SquaredFrobeniusNorm(), 9.0);
}

TEST(ExpectedErrorTest, NoiseOnDataFormula) {
  // §3.2: E = 2Δ²/ε²·ΣWᵢⱼ² with Δ = 1.
  const Workload w = IntroWorkload();
  // ΣW² = 8 → at ε = 0.5: 2·8/0.25 = 64.
  EXPECT_DOUBLE_EQ(ExpectedErrorNoiseOnData(w, 0.5), 64.0);
}

TEST(ExpectedErrorTest, NoiseOnResultsFormula) {
  // §3.2: E = 2m·Δ'²/ε².
  const Workload w = IntroWorkload();
  // m = 3, Δ' = 2 → at ε = 1: 2·3·4 = 24.
  EXPECT_DOUBLE_EQ(ExpectedErrorNoiseOnResults(w, 1.0), 24.0);
}

TEST(ExpectedErrorTest, IntroNodBeatsNorOnThisWorkload) {
  // §1 computes NOD per-query variances 8/ε², 4/ε², 4/ε² (total 16/ε²)
  // for the intro workload; NOR costs 2·3·4/ε² = 24/ε².
  const Workload w = IntroWorkload();
  EXPECT_DOUBLE_EQ(ExpectedErrorNoiseOnData(w, 1.0), 16.0);
  EXPECT_LT(ExpectedErrorNoiseOnData(w, 1.0),
            ExpectedErrorNoiseOnResults(w, 1.0));
}

TEST(ExpectedErrorTest, CrossoverMatchesTheory) {
  // §3.2: NOR beats NOD iff m·maxⱼΣᵢWᵢⱼ² < ΣⱼΣᵢWᵢⱼ². A single-row
  // workload over many columns is such a case.
  const Workload wide("wide", Matrix{{1.0, 1.0, 1.0, 1.0, 1.0, 1.0}});
  EXPECT_LT(ExpectedErrorNoiseOnResults(wide, 1.0),
            ExpectedErrorNoiseOnData(wide, 1.0));
}

TEST(ExpectedErrorTest, ScalesInverseQuadraticallyWithEpsilon) {
  const Workload w = IntroWorkload();
  EXPECT_NEAR(ExpectedErrorNoiseOnData(w, 0.1) /
                  ExpectedErrorNoiseOnData(w, 1.0),
              100.0, 1e-9);
}

}  // namespace
}  // namespace lrm::workload
