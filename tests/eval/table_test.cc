#include "eval/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace lrm::eval {
namespace {

TEST(TableTest, RendersHeaderUnderlineAndRows) {
  Table table({"n", "LRM", "LM"});
  table.AddRow({"128", "1.0e+05", "3.2e+06"});
  table.AddRow({"256", "1.1e+05", "6.4e+06"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("n"), std::string::npos);
  EXPECT_NE(rendered.find("---"), std::string::npos);
  EXPECT_NE(rendered.find("1.0e+05"), std::string::npos);
  EXPECT_NE(rendered.find("256"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, ColumnsAreAligned) {
  Table table({"x", "value"});
  table.AddRow({"1", "short"});
  table.AddRow({"1000", "longer-cell"});
  std::istringstream lines(table.ToString());
  std::string header, underline, row1, row2;
  std::getline(lines, header);
  std::getline(lines, underline);
  std::getline(lines, row1);
  std::getline(lines, row2);
  EXPECT_EQ(header.size(), underline.size());
  EXPECT_EQ(row1.size(), row2.size());
}

TEST(TableTest, PrintWritesToStream) {
  Table table({"a"});
  table.AddRow({"42"});
  std::ostringstream os;
  table.Print(os);
  EXPECT_EQ(os.str(), table.ToString());
}

TEST(TableTest, EmptyTableStillRendersHeader) {
  Table table({"only", "headers"});
  const std::string rendered = table.ToString();
  EXPECT_NE(rendered.find("only"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 0u);
}

}  // namespace
}  // namespace lrm::eval
