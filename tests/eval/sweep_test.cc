#include "eval/sweep.h"

#include <gtest/gtest.h>

#include <memory>

#include "workload/generators.h"

namespace lrm::eval {
namespace {

using linalg::Vector;

std::shared_ptr<const workload::Workload> RangeWorkload(
    linalg::Index m = 16, linalg::Index n = 32, std::uint64_t seed = 7) {
  auto w = workload::GenerateWRange(m, n, seed);
  LRM_CHECK(w.ok());
  return std::make_shared<const workload::Workload>(*std::move(w));
}

SweepOptions SmallSweepOptions(bool warm) {
  SweepOptions options;
  options.warm_start = warm;
  options.run.repetitions = 3;
  options.run.seed = 99;
  return options;
}

TEST(SweepRunnerTest, GridShapeOrderingAndPrepareAccounting) {
  SweepRunner runner(SmallSweepOptions(/*warm=*/true));
  const auto w = RangeWorkload();
  const StatusOr<SweepSummary> summary =
      runner.Run(w, Vector(32, 2.0), {0.1, 0.5}, {1.0, 0.5});
  ASSERT_TRUE(summary.ok());

  ASSERT_EQ(summary->cells.size(), 4);
  ASSERT_EQ(summary->prepares, 2);
  EXPECT_EQ(summary->warm_prepares, 1);

  // (workload, γ, ε) lexicographic order.
  EXPECT_DOUBLE_EQ(summary->cells[0].gamma, 0.1);
  EXPECT_DOUBLE_EQ(summary->cells[0].epsilon, 1.0);
  EXPECT_DOUBLE_EQ(summary->cells[1].gamma, 0.1);
  EXPECT_DOUBLE_EQ(summary->cells[1].epsilon, 0.5);
  EXPECT_DOUBLE_EQ(summary->cells[3].gamma, 0.5);

  // First pane cold, second warm (the session retained the factors).
  EXPECT_FALSE(summary->cells[0].warm_started);
  EXPECT_TRUE(summary->cells[2].warm_started);

  // Prepare time is attributed to the first ε cell of each pane; the other
  // ε cells reuse the strategy outright (prepare_seconds == 0 contract).
  EXPECT_GT(summary->cells[0].run.prepare_seconds, 0.0);
  EXPECT_EQ(summary->cells[1].run.prepare_seconds, 0.0);
  EXPECT_GT(summary->cells[2].run.prepare_seconds, 0.0);
  EXPECT_EQ(summary->cells[3].run.prepare_seconds, 0.0);
  EXPECT_GE(summary->total_prepare_seconds,
            summary->cells[0].run.prepare_seconds +
                summary->cells[2].run.prepare_seconds);

  // Every cell carries the analytic error and solver effort of its pane.
  for (const SweepCellResult& cell : summary->cells) {
    EXPECT_GT(cell.expected_squared_error, 0.0);
    EXPECT_GT(cell.outer_iterations, 0);
    EXPECT_EQ(cell.run.repetitions, 3);
  }
}

TEST(SweepRunnerTest, ColdModeNeverWarmStarts) {
  SweepRunner runner(SmallSweepOptions(/*warm=*/false));
  const StatusOr<SweepSummary> summary =
      runner.Run(RangeWorkload(), Vector(32, 1.0), {0.1, 0.5, 2.0}, {1.0});
  ASSERT_TRUE(summary.ok());
  EXPECT_EQ(summary->prepares, 3);
  EXPECT_EQ(summary->warm_prepares, 0);
  for (const SweepCellResult& cell : summary->cells) {
    EXPECT_FALSE(cell.warm_started);
  }
}

TEST(SweepRunnerTest, WarmSessionNoWorseErrorAndNoMoreIterations) {
  const auto w = RangeWorkload(16, 32, 13);
  const Vector data(32, 3.0);
  const std::vector<double> gammas = {0.05, 0.5};
  const std::vector<double> epsilons = {1.0, 0.1};

  SweepRunner warm_runner(SmallSweepOptions(/*warm=*/true));
  SweepRunner cold_runner(SmallSweepOptions(/*warm=*/false));
  const StatusOr<SweepSummary> warm =
      warm_runner.Run(w, data, gammas, epsilons);
  const StatusOr<SweepSummary> cold =
      cold_runner.Run(w, data, gammas, epsilons);
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cold.ok());

  // Cell-by-cell: the warm session spends no more solver effort and lands
  // an equal-or-better analytic error on every pane (the warm seed is the
  // previous pane's polished solution, recorded as the initial best).
  ASSERT_EQ(warm->cells.size(), cold->cells.size());
  for (std::size_t i = 0; i < warm->cells.size(); ++i) {
    EXPECT_LE(warm->cells[i].outer_iterations,
              cold->cells[i].outer_iterations)
        << "cell " << i;
  }
  EXPECT_LE(warm->total_expected_squared_error,
            cold->total_expected_squared_error * 1.05);
  // The second pane actually warm-started and was strictly cheaper.
  EXPECT_TRUE(warm->cells[2].warm_started);
  EXPECT_LT(warm->cells[2].outer_iterations,
            cold->cells[2].outer_iterations);
}

TEST(SweepRunnerTest, SessionPersistsAcrossRunCalls) {
  SweepRunner runner(SmallSweepOptions(/*warm=*/true));
  const auto w = RangeWorkload();
  const Vector data(32, 1.0);
  ASSERT_TRUE(runner.Run(w, data, {0.5}, {1.0}).ok());
  const StatusOr<SweepSummary> second = runner.Run(w, data, {0.5}, {1.0});
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->warm_prepares, 1);
  EXPECT_TRUE(second->cells[0].warm_started);
}

TEST(SweepRunnerTest, FactorsChainAcrossRelatedWorkloads) {
  // Same-shaped workloads in one sweep: the second workload's first pane
  // resumes from the first workload's factors.
  const auto w1 = RangeWorkload(16, 32, 5);
  const auto w2 = RangeWorkload(16, 32, 6);
  SweepRunner runner(SmallSweepOptions(/*warm=*/true));
  const StatusOr<SweepSummary> summary =
      runner.Run({w1, w2}, Vector(32, 1.0), {0.5}, {1.0});
  ASSERT_TRUE(summary.ok());
  ASSERT_EQ(summary->cells.size(), 2);
  EXPECT_EQ(summary->cells[1].workload_index, 1);
  EXPECT_TRUE(summary->cells[1].warm_started);
  EXPECT_EQ(summary->warm_prepares, 1);
}

TEST(SweepRunnerTest, SharesWorkloadStorageWithTheSession) {
  const auto w = RangeWorkload();
  SweepRunner runner(SmallSweepOptions(/*warm=*/true));
  ASSERT_TRUE(runner.Run(w, Vector(32, 1.0), {0.5}, {1.0}).ok());
  // The session mechanism holds the same Workload object, not a copy.
  EXPECT_EQ(runner.mechanism().workload_handle().get(), w.get());
}

TEST(SweepRunnerTest, RejectsDegenerateGrids) {
  SweepRunner runner;
  const auto w = RangeWorkload();
  const Vector data(32, 1.0);
  EXPECT_FALSE(
      runner
          .Run(std::vector<std::shared_ptr<const workload::Workload>>{},
               data, {0.5}, {1.0})
          .ok());
  EXPECT_FALSE(runner.Run(w, data, {}, {1.0}).ok());
  EXPECT_FALSE(runner.Run(w, data, {0.5}, {}).ok());
  EXPECT_EQ(runner
                .Run(std::vector<std::shared_ptr<const workload::Workload>>{
                         nullptr},
                     data, {0.5}, {1.0})
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(SweepRunnerTest, PropagatesEvaluationErrors) {
  SweepRunner runner(SmallSweepOptions(/*warm=*/true));
  // Data/domain mismatch surfaces from the evaluation layer.
  EXPECT_FALSE(runner.Run(RangeWorkload(), Vector(7, 1.0), {0.5}, {1.0}).ok());
  // Invalid γ surfaces from the solver's options validation.
  EXPECT_FALSE(
      runner.Run(RangeWorkload(), Vector(32, 1.0), {-1.0}, {1.0}).ok());
}

}  // namespace
}  // namespace lrm::eval
